// RPC: a remote key-value store built on request/reply active messages —
// the "low-level explicitly parallel programming" workload of the paper's
// Section 2.1. Eight nodes issue lookups against a server node; every
// request and reply is a single-packet active message, so the per-operation
// software cost is exactly two Table 1 round trips (94 instructions), and
// nothing protects against loss or reordering — the trade-off the paper
// quantifies.
package main

import (
	"fmt"
	"log"

	"msglayer"
)

const (
	serverNode                    = 0
	hGet       msglayer.HandlerID = 1
	hPut       msglayer.HandlerID = 2
	hReply     msglayer.HandlerID = 3
)

type client struct {
	ep      *msglayer.Endpoint
	pending int
	got     map[msglayer.Word]msglayer.Word
}

func main() {
	const nodes = 8
	m, err := msglayer.NewCM5Machine(msglayer.CM5Options{Nodes: nodes})
	if err != nil {
		log.Fatal(err)
	}

	// The server: an in-memory table served by active-message handlers.
	table := map[msglayer.Word]msglayer.Word{}
	server := msglayer.NewEndpoint(m.Node(serverNode))
	server.Register(hPut, func(src int, args []msglayer.Word) {
		table[args[0]] = args[1]
	})
	server.Register(hGet, func(src int, args []msglayer.Word) {
		// The handler replies through the same endpoint: key, value.
		if err := server.AM4(src, hReply, args[0], table[args[0]]); err != nil {
			log.Fatal(err)
		}
	})

	// Clients on the remaining nodes.
	clients := make([]*client, 0, nodes-1)
	for id := 1; id < nodes; id++ {
		c := &client{ep: msglayer.NewEndpoint(m.Node(id)), got: map[msglayer.Word]msglayer.Word{}}
		c.ep.Register(hReply, func(src int, args []msglayer.Word) {
			c.got[args[0]] = args[1]
			c.pending--
		})
		clients = append(clients, c)
	}

	// Each client stores then fetches a few keys.
	const opsPerClient = 4
	for i, c := range clients {
		for k := 0; k < opsPerClient; k++ {
			key := msglayer.Word((i+1)*100 + k)
			if err := c.ep.AM4(serverNode, hPut, key, key*2); err != nil {
				log.Fatal(err)
			}
			if err := c.ep.AM4(serverNode, hGet, key); err != nil {
				log.Fatal(err)
			}
			c.pending++
		}
	}

	// Drive the machine: the server and clients poll until all replies
	// are in.
	done := func() bool {
		for _, c := range clients {
			if c.pending > 0 {
				return false
			}
		}
		return true
	}
	steppers := []msglayer.Stepper{
		msglayer.StepFunc(func() (bool, error) {
			_, err := server.Poll(0)
			return done(), err
		}),
	}
	for _, c := range clients {
		c := c
		steppers = append(steppers, msglayer.StepFunc(func() (bool, error) {
			_, err := c.ep.Poll(0)
			return done(), err
		}))
	}
	if err := msglayer.Run(10000, steppers...); err != nil {
		log.Fatal(err)
	}

	// Check and report.
	lookups := 0
	for i, c := range clients {
		for k := 0; k < opsPerClient; k++ {
			key := msglayer.Word((i+1)*100 + k)
			if c.got[key] != key*2 {
				log.Fatalf("client %d: wrong value for key %d: %d", i+1, key, c.got[key])
			}
			lookups++
		}
	}
	fmt.Printf("key-value store: %d puts + %d gets served over active messages\n",
		lookups, lookups)
	fmt.Printf("server handled %d packets; total machine cost %d instructions\n",
		m.Net.Stats().Delivered, m.TotalGauge().Total().Total())
	fmt.Println("\nper-operation messaging cost: one AM4 out (20) + poll in (27) each way")
	fmt.Println("— cheap, but unordered, overflow-unsafe, and unreliable (paper §3.2).")
}
