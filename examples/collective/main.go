// Collective: a miniature data-parallel computation — distribute matrix
// blocks, compute locally, reduce a global result, synchronize — built
// from the collectives layer (scatter, all-reduce, barrier) the paper's
// Section 2.1 positions as what "higher level approaches to programming
// parallel systems" need from a messaging layer. Every operation's
// instruction cost decomposes into the paper's Table 1 and Table 2
// primitives, which this example prints.
package main

import (
	"fmt"
	"log"

	"msglayer"
)

const (
	nodes      = 8
	blockWords = 64
)

func main() {
	m, err := msglayer.NewCM5Machine(msglayer.CM5Options{Nodes: nodes})
	if err != nil {
		log.Fatal(err)
	}
	m.Node(0).SetRole(msglayer.RoleSource)
	for i := 1; i < nodes; i++ {
		m.Node(i).SetRole(msglayer.RoleDestination)
	}

	comms := make([]*msglayer.Comm, nodes)
	for i := 0; i < nodes; i++ {
		c, err := msglayer.NewComm(msglayer.NewEndpoint(m.Node(i)), nodes)
		if err != nil {
			log.Fatal(err)
		}
		comms[i] = c
	}
	run := func(done func() bool) {
		steppers := make([]msglayer.Stepper, nodes)
		for i, c := range comms {
			steppers[i] = c.Stepper(done)
		}
		if err := msglayer.Run(100000, steppers...); err != nil {
			log.Fatal(err)
		}
	}

	// Root builds the dataset: rank r's block holds r*blockWords+i.
	blocks := make([][]msglayer.Word, nodes)
	for r := range blocks {
		blocks[r] = make([]msglayer.Word, blockWords)
		for i := range blocks[r] {
			blocks[r][i] = msglayer.Word(r*blockWords + i)
		}
	}

	// Scatter the blocks (finite-sequence bulk transfers).
	local := make([][]msglayer.Word, nodes)
	rootScatter, err := comms[0].ScatterBegin(blocks)
	if err != nil {
		log.Fatal(err)
	}
	leafRecv := make([]func() ([]msglayer.Word, bool), nodes)
	for r := 1; r < nodes; r++ {
		leafRecv[r] = comms[r].BroadcastRecv()
	}
	run(func() bool {
		if b, ok := rootScatter(); ok {
			local[0] = b
		} else {
			return false
		}
		for r := 1; r < nodes; r++ {
			if local[r] == nil {
				if b, ok := leafRecv[r](); ok {
					local[r] = b
				} else {
					return false
				}
			}
		}
		return true
	})
	fmt.Printf("scatter: %d words to each of %d ranks\n", blockWords, nodes)

	// Each rank computes its partial sum, then all-reduce (single-packet
	// active messages through the root).
	partial := make([]msglayer.Word, nodes)
	for r := 0; r < nodes; r++ {
		for _, w := range local[r] {
			partial[r] += w
		}
	}
	preds := make([]func() (msglayer.Word, bool), nodes)
	for r := 0; r < nodes; r++ {
		p, err := comms[r].ReduceBegin(partial[r], msglayer.ReduceSum)
		if err != nil {
			log.Fatal(err)
		}
		preds[r] = p
	}
	run(func() bool {
		for _, p := range preds {
			if _, ok := p(); !ok {
				return false
			}
		}
		return true
	})
	global, _ := preds[3]() // any rank holds the result now
	n := nodes * blockWords
	want := msglayer.Word(n * (n - 1) / 2)
	if global != want {
		log.Fatalf("all-reduce = %d, want %d", global, want)
	}
	fmt.Printf("all-reduce: global sum %d on every rank\n", global)

	// Barrier before the next phase.
	bpreds := make([]func() bool, nodes)
	for r := 0; r < nodes; r++ {
		p, err := comms[r].BarrierBegin()
		if err != nil {
			log.Fatal(err)
		}
		bpreds[r] = p
	}
	run(func() bool {
		for _, p := range bpreds {
			if !p() {
				return false
			}
		}
		return true
	})
	fmt.Println("barrier: all ranks synchronized")

	total := m.TotalGauge()
	fmt.Printf("\ntotal messaging cost: %d instructions (%d weighted CM-5 cycles)\n",
		total.Total().Total(), total.Weighted(msglayer.CM5Model))
	cells := msglayer.BreakdownOf(total)
	fmt.Print(msglayer.RenderFeatureTable("cost by messaging-layer feature:", cells))
	fmt.Println("\nthe bulk scatter pays Table 2's buffer-management and fault-tolerance")
	fmt.Println("costs per block; reduce and barrier are pure Table 1 round trips.")
}
