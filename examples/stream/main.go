// Stream: a socket-like ordered channel carrying a lossy, reordered message
// stream — the paper's indefinite-sequence workload — run over both
// substrates. On the CM-5-like network the messaging layer pays for
// sequence numbers, reorder buffering, source buffering, acknowledgements,
// and retransmission; on the Compressionless-Routing network the same
// application-level guarantees cost nothing beyond data movement. This is
// the paper's central comparison (Figures 4, 6, and 7), here with real
// faults injected.
package main

import (
	"fmt"
	"log"

	"msglayer"
)

const packets = 64

func main() {
	cmTotal, cmBreakdown := runCM5()
	crTotal := runCR()

	fmt.Println()
	fmt.Println(msglayer.RenderFeatureTable(
		"CM-5 substrate: 64-packet stream, half out of order, 1/16 packets lost",
		cmBreakdown))
	improvement := 100 * (1 - float64(crTotal)/float64(cmTotal))
	fmt.Printf("CM-5 substrate total:              %6d instructions\n", cmTotal)
	fmt.Printf("Compressionless Routing total:     %6d instructions (-%.0f%%)\n", crTotal, improvement)
	fmt.Println("\nOn CR the ordering and reliability the application needs are hardware")
	fmt.Println("services; the messaging layer keeps only the base data-movement cost.")
}

// runCM5 streams over the CM-5-like substrate with reordering and loss.
func runCM5() (uint64, msglayer.Cells) {
	m, err := msglayer.NewCM5Machine(msglayer.CM5Options{
		Nodes:          2,
		HalfOutOfOrder: true,
		Faults:         msglayer.NewEveryNthDropPlan(16),
	})
	if err != nil {
		log.Fatal(err)
	}
	m.Node(0).SetRole(msglayer.RoleSource)
	m.Node(1).SetRole(msglayer.RoleDestination)

	src, err := msglayer.NewStream(msglayer.NewEndpoint(m.Node(0)), msglayer.StreamConfig{
		NackThreshold:   3,
		RetransmitAfter: 64,
	})
	if err != nil {
		log.Fatal(err)
	}
	var received []msglayer.Word
	dst, err := msglayer.NewStream(msglayer.NewEndpoint(m.Node(1)), msglayer.StreamConfig{
		NackThreshold: 3,
		OnDeliver: func(_ int, _ uint8, data []msglayer.Word) {
			received = append(received, data...)
		},
	})
	if err != nil {
		log.Fatal(err)
	}

	conn := src.Open(1, 0)
	for i := 0; i < packets; i++ {
		if err := conn.Send(msglayer.Word(i), msglayer.Word(i), msglayer.Word(i), msglayer.Word(i)); err != nil {
			log.Fatal(err)
		}
	}
	err = msglayer.Run(100000,
		msglayer.StepFunc(func() (bool, error) { return conn.Idle(), src.Pump() }),
		msglayer.StepFunc(func() (bool, error) { return conn.Idle(), dst.Pump() }),
	)
	if err != nil {
		log.Fatal(err)
	}
	verify(received)

	g := m.Node(0).Gauge
	fmt.Printf("CM-5 substrate: %d packets sent, %d out-of-order arrivals, %d drops recovered (%d retransmissions)\n",
		g.Events("stream.packet.sent"),
		m.Node(1).Gauge.Events("stream.outoforder"),
		m.Net.Stats().Dropped,
		g.Events("stream.retransmit")+g.Events("stream.timeout"))
	cells := msglayer.MergeRoles(m.Node(0).Gauge, m.Node(1).Gauge)
	return m.TotalGauge().Total().Total(), cells
}

// runCR streams the same data over the CR substrate; the injected faults
// become transparent hardware retries.
func runCR() uint64 {
	m, err := msglayer.NewCRMachine(msglayer.CROptions{Nodes: 2})
	if err != nil {
		log.Fatal(err)
	}
	m.Node(0).SetRole(msglayer.RoleSource)
	m.Node(1).SetRole(msglayer.RoleDestination)

	src, err := msglayer.NewCRStream(msglayer.NewEndpoint(m.Node(0)), msglayer.CRStreamConfig{})
	if err != nil {
		log.Fatal(err)
	}
	var received []msglayer.Word
	dst, err := msglayer.NewCRStream(msglayer.NewEndpoint(m.Node(1)), msglayer.CRStreamConfig{
		OnDeliver: func(_ int, _ uint8, data []msglayer.Word) {
			received = append(received, data...)
		},
	})
	if err != nil {
		log.Fatal(err)
	}

	conn := src.Open(1, 0)
	for i := 0; i < packets; i++ {
		if err := conn.Send(msglayer.Word(i), msglayer.Word(i), msglayer.Word(i), msglayer.Word(i)); err != nil {
			log.Fatal(err)
		}
	}
	got := func() bool { return len(received) == packets*4 }
	err = msglayer.Run(100000,
		msglayer.StepFunc(func() (bool, error) { return conn.Idle() && got(), src.Pump() }),
		msglayer.StepFunc(func() (bool, error) { return conn.Idle() && got(), dst.Pump() }),
	)
	if err != nil {
		log.Fatal(err)
	}
	verify(received)
	fmt.Printf("CR substrate:   %d packets sent, 0 software retransmissions, 0 reorder buffering\n", packets)
	return m.TotalGauge().Total().Total()
}

// verify checks the stream arrived complete and in order.
func verify(received []msglayer.Word) {
	if len(received) != packets*4 {
		log.Fatalf("received %d words, want %d", len(received), packets*4)
	}
	for i, w := range received {
		if w != msglayer.Word(i/4) {
			log.Fatalf("word %d = %d: order violated", i, w)
		}
	}
}
