// Bulk: distributing matrix row blocks from a master node to workers via
// finite-sequence memory-to-memory transfers — the CMAM_xfer workload of
// the paper's Section 3.2 — followed by a packet-size sweep showing how the
// buffer-management handshake is amortized by message size while the
// per-message overhead never disappears (Table 2 and Figure 8).
package main

import (
	"fmt"
	"log"

	"msglayer"
)

const (
	workers   = 4
	rowsEach  = 8
	rowWords  = 32
	blockSize = rowsEach * rowWords
)

func main() {
	m, err := msglayer.NewCM5Machine(msglayer.CM5Options{Nodes: workers + 1})
	if err != nil {
		log.Fatal(err)
	}
	m.Node(0).SetRole(msglayer.RoleSource)
	for w := 1; w <= workers; w++ {
		m.Node(w).SetRole(msglayer.RoleDestination)
	}

	// The master's matrix: workers * rowsEach rows of rowWords words.
	matrix := make([]msglayer.Word, workers*blockSize)
	for i := range matrix {
		matrix[i] = msglayer.Word(i)
	}

	master := msglayer.NewFinite(msglayer.NewEndpoint(m.Node(0)))
	received := make([][]msglayer.Word, workers+1)
	services := []*msglayer.Finite{master}
	for w := 1; w <= workers; w++ {
		w := w
		svc := msglayer.NewFinite(msglayer.NewEndpoint(m.Node(w)))
		svc.OnReceive = func(src int, buf []msglayer.Word) { received[w] = buf }
		services = append(services, svc)
	}

	// Start one block transfer per worker; all proceed concurrently.
	transfers := make([]*msglayer.FiniteTransfer, 0, workers)
	for w := 1; w <= workers; w++ {
		block := matrix[(w-1)*blockSize : w*blockSize]
		tr, err := master.Start(w, block)
		if err != nil {
			log.Fatal(err)
		}
		transfers = append(transfers, tr)
	}

	done := func() bool {
		for _, tr := range transfers {
			if !tr.Done() {
				return false
			}
		}
		return true
	}
	var steppers []msglayer.Stepper
	for _, svc := range services {
		svc := svc
		steppers = append(steppers, msglayer.StepFunc(func() (bool, error) {
			return done(), svc.Pump()
		}))
	}
	if err := msglayer.Run(100000, steppers...); err != nil {
		log.Fatal(err)
	}

	// Verify every worker's block.
	for w := 1; w <= workers; w++ {
		block := received[w]
		if len(block) != blockSize {
			log.Fatalf("worker %d received %d words", w, len(block))
		}
		for i, v := range block {
			if v != msglayer.Word((w-1)*blockSize+i) {
				log.Fatalf("worker %d word %d corrupted", w, i)
			}
		}
	}
	fmt.Printf("distributed %d words to %d workers in %d-word blocks\n",
		workers*blockSize, workers, blockSize)
	fmt.Printf("total messaging cost: %d instructions (%d per block)\n\n",
		m.TotalGauge().Total().Total(),
		m.TotalGauge().Total().Total()/uint64(workers))

	// How does the block transfer cost scale with the hardware packet
	// size? Rerun one block at each size (the Figure 8 experiment on this
	// workload).
	fmt.Println("one block, swept over hardware packet payload sizes:")
	fmt.Printf("%8s %12s %12s\n", "n(words)", "instr", "overhead")
	for _, n := range []int{4, 8, 16, 32, 64, 128} {
		total, oh, err := oneBlock(n)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%8d %12d %11.1f%%\n", n, total, 100*oh)
	}
	fmt.Println("\nthe allocation handshake and acknowledgement amortize with size, but the")
	fmt.Println("paper's point stands: messaging overhead never reaches zero in software.")
}

// oneBlock transfers a single block at the given packet size and returns
// the total cost and overhead fraction.
func oneBlock(packetWords int) (uint64, float64, error) {
	m, err := msglayer.NewCM5Machine(msglayer.CM5Options{Nodes: 2, PacketWords: packetWords})
	if err != nil {
		return 0, 0, err
	}
	m.Node(0).SetRole(msglayer.RoleSource)
	m.Node(1).SetRole(msglayer.RoleDestination)
	src := msglayer.NewFinite(msglayer.NewEndpoint(m.Node(0)))
	dst := msglayer.NewFinite(msglayer.NewEndpoint(m.Node(1)))
	var got []msglayer.Word
	dst.OnReceive = func(_ int, buf []msglayer.Word) { got = buf }

	block := make([]msglayer.Word, blockSize)
	tr, err := src.Start(1, block)
	if err != nil {
		return 0, 0, err
	}
	err = msglayer.Run(100000,
		msglayer.StepFunc(func() (bool, error) { return tr.Done(), src.Pump() }),
		msglayer.StepFunc(func() (bool, error) { return tr.Done(), dst.Pump() }),
	)
	if err != nil {
		return 0, 0, err
	}
	if len(got) != blockSize {
		return 0, 0, fmt.Errorf("received %d words", len(got))
	}

	cells := msglayer.MergeRoles(m.Node(0).Gauge, m.Node(1).Gauge)
	total := m.TotalGauge().Total().Total()
	base := cells[msglayer.RoleSource][msglayer.Base].
		Add(cells[msglayer.RoleDestination][msglayer.Base]).Total()
	return total, 1 - float64(base)/float64(total), nil
}
