// Quickstart: boot a simulated CM-5-like machine, send an active message,
// and print the instruction-cost breakdown the paper's Table 1 reports.
package main

import (
	"fmt"
	"log"

	"msglayer"
)

func main() {
	// A four-node machine over the CM-5-like substrate, with the paper's
	// calibrated instruction-cost schedule (4-word packets).
	m, err := msglayer.NewCM5Machine(msglayer.CM5Options{Nodes: 4})
	if err != nil {
		log.Fatal(err)
	}
	// For accounting, node 0 is the transfer's source and node 3 its
	// destination.
	m.Node(0).SetRole(msglayer.RoleSource)
	m.Node(3).SetRole(msglayer.RoleDestination)

	// Attach active-message endpoints (the CMAM layer).
	sender := msglayer.NewEndpoint(m.Node(0))
	receiver := msglayer.NewEndpoint(m.Node(3))

	// Register a handler — the computation an active message carries.
	const hSum msglayer.HandlerID = 1
	receiver.Register(hSum, func(src int, args []msglayer.Word) {
		var sum msglayer.Word
		for _, w := range args {
			sum += w
		}
		fmt.Printf("node 3: active message from node %d, sum(%v) = %d\n", src, args, sum)
	})

	// CMAM_4: a single-packet active message with four data words...
	if err := sender.AM4(3, hSum, 10, 20, 30, 40); err != nil {
		log.Fatal(err)
	}
	// ...polled in at the receiver.
	if _, err := receiver.PollSingle(); err != nil {
		log.Fatal(err)
	}

	// The costs are the paper's Table 1: 20 instructions at the source,
	// 27 at the destination, all base cost — and, as Section 3 stresses,
	// this cheapest protocol provides no ordering, overflow safety, or
	// reliability.
	fmt.Println()
	fmt.Println("Table 1: instruction counts for single-packet delivery")
	fmt.Print(msglayer.RenderTable1(m.TotalGauge()))
	fmt.Println()
	fmt.Printf("weighted cycles (CM-5 model, dev=5): %d\n",
		m.TotalGauge().Weighted(msglayer.CM5Model))
}
