// Package report renders instruction-count results in the layouts of the
// paper's tables and figures: Table 1's subcategory breakdown, Table 2's
// feature × role panels, Table 3's reg/mem/dev panels, Figure 6's paired
// bars, and Figure 8's series — all as plain text (with CSV escape hatches
// for plotting).
package report

import (
	"fmt"
	"strings"

	"msglayer/internal/cost"
)

// Cells is a role × feature breakdown, the shape shared by measured gauges
// and the analytic model.
type Cells map[cost.Role]map[cost.Feature]cost.Vec

// FromGauge extracts a breakdown from a measured gauge.
func FromGauge(g *cost.Gauge) Cells {
	c := Cells{}
	for _, r := range cost.Roles() {
		c[r] = map[cost.Feature]cost.Vec{}
		for _, f := range cost.Features() {
			c[r][f] = g.Cell(r, f)
		}
	}
	return c
}

// MergeRoles combines two gauges, taking the Source column from src's gauge
// and the Destination column from dst's — the usual two-node experiment
// where each node accumulates one role.
func MergeRoles(src, dst *cost.Gauge) Cells {
	c := Cells{}
	c[cost.Source] = FromGauge(src)[cost.Source]
	c[cost.Destination] = FromGauge(dst)[cost.Destination]
	return c
}

// RoleTotal sums a column.
func (c Cells) RoleTotal(r cost.Role) cost.Vec {
	var v cost.Vec
	for _, cell := range c[r] {
		v = v.Add(cell)
	}
	return v
}

// Total sums everything.
func (c Cells) Total() cost.Vec {
	return c.RoleTotal(cost.Source).Add(c.RoleTotal(cost.Destination))
}

// Table1 renders the single-packet delivery breakdown in the layout of the
// paper's Table 1, from a gauge holding one send and one receive.
func Table1(g *cost.Gauge) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-18s %8s %12s\n", "Description", "Source", "Destination")
	var srcTotal, dstTotal uint64
	for _, s := range cost.Subs() {
		src := g.SubCell(cost.Source, s).Total()
		dst := g.SubCell(cost.Destination, s).Total()
		if src == 0 && dst == 0 {
			continue
		}
		fmt.Fprintf(&b, "%-18s %8s %12s\n", s, dash(src), dash(dst))
		srcTotal += src
		dstTotal += dst
	}
	fmt.Fprintf(&b, "%-18s %8d %12d\n", "Total", srcTotal, dstTotal)
	return b.String()
}

// FeatureTable renders a Table 2 panel: feature rows, Source / Destination
// / Total columns, unit-cost instruction counts.
func FeatureTable(title string, c Cells) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	fmt.Fprintf(&b, "%-14s %10s %12s %10s\n", "Feature", "Source", "Destination", "Total")
	for _, f := range cost.Features() {
		src := c[cost.Source][f].Total()
		dst := c[cost.Destination][f].Total()
		fmt.Fprintf(&b, "%-14s %10s %12s %10s\n", f, dash(src), dash(dst), dash(src+dst))
	}
	src := c.RoleTotal(cost.Source).Total()
	dst := c.RoleTotal(cost.Destination).Total()
	fmt.Fprintf(&b, "%-14s %10d %12d %10d\n", "Total", src, dst, src+dst)
	return b.String()
}

// CategoryTable renders a Table 3 panel: feature rows with reg/mem/dev
// columns for each role.
func CategoryTable(title string, c Cells) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	fmt.Fprintf(&b, "%-14s %21s   %21s\n", "", "Source", "Destination")
	fmt.Fprintf(&b, "%-14s %6s %6s %6s   %6s %6s %6s\n", "Feature", "reg", "mem", "dev", "reg", "mem", "dev")
	var srcSum, dstSum cost.Vec
	for _, f := range cost.Features() {
		src := c[cost.Source][f]
		dst := c[cost.Destination][f]
		fmt.Fprintf(&b, "%-14s %6s %6s %6s   %6s %6s %6s\n", f,
			dash(src.Reg), dash(src.Mem), dash(src.Dev),
			dash(dst.Reg), dash(dst.Mem), dash(dst.Dev))
		srcSum = srcSum.Add(src)
		dstSum = dstSum.Add(dst)
	}
	fmt.Fprintf(&b, "%-14s %6d %6d %6d   %6d %6d %6d\n", "Total",
		srcSum.Reg, srcSum.Mem, srcSum.Dev, dstSum.Reg, dstSum.Mem, dstSum.Dev)
	return b.String()
}

// WeightedLine summarizes a breakdown under a cycle model, the Appendix A
// usage.
func WeightedLine(c Cells, m cost.Model) string {
	return fmt.Sprintf("weighted cycles under %s: source %d, destination %d, total %d",
		m, m.Cost(c.RoleTotal(cost.Source)), m.Cost(c.RoleTotal(cost.Destination)),
		m.Cost(c.Total()))
}

// BarPair is one labeled comparison of Figure 6: a CMAM cost next to its
// high-level-feature (CR) counterpart.
type BarPair struct {
	Label string
	CMAM  uint64
	CR    uint64
}

// Comparison renders Figure 6-style paired horizontal bars with the
// improvement percentage.
func Comparison(title string, pairs []BarPair) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	var max uint64 = 1
	for _, p := range pairs {
		if p.CMAM > max {
			max = p.CMAM
		}
		if p.CR > max {
			max = p.CR
		}
	}
	const width = 44
	for _, p := range pairs {
		improvement := 0.0
		if p.CMAM > 0 {
			improvement = 100 * (1 - float64(p.CR)/float64(p.CMAM))
		}
		fmt.Fprintf(&b, "  %-24s\n", p.Label)
		fmt.Fprintf(&b, "    CMAM %7d |%s\n", p.CMAM, bar(p.CMAM, max, width))
		fmt.Fprintf(&b, "    CR   %7d |%s  (-%.0f%%)\n", p.CR, bar(p.CR, max, width), improvement)
	}
	return b.String()
}

// SeriesPoint is one row of a Figure 8-style series.
type SeriesPoint struct {
	X      int
	Label  string
	Values []float64
}

// Series renders a multi-column series with a header, one row per X.
func Series(title string, xName string, colNames []string, points []SeriesPoint) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	fmt.Fprintf(&b, "%8s", xName)
	for _, c := range colNames {
		fmt.Fprintf(&b, " %18s", c)
	}
	b.WriteByte('\n')
	for _, p := range points {
		fmt.Fprintf(&b, "%8d", p.X)
		for _, v := range p.Values {
			fmt.Fprintf(&b, " %18.4f", v)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// CSV renders a series as comma-separated values for external plotting.
func CSV(xName string, colNames []string, points []SeriesPoint) string {
	var b strings.Builder
	b.WriteString(xName)
	for _, c := range colNames {
		b.WriteByte(',')
		b.WriteString(c)
	}
	b.WriteByte('\n')
	for _, p := range points {
		fmt.Fprintf(&b, "%d", p.X)
		for _, v := range p.Values {
			fmt.Fprintf(&b, ",%g", v)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// PaperVsMeasured renders one EXPERIMENTS.md-style comparison row.
func PaperVsMeasured(name string, paper, measured uint64) string {
	verdict := "match"
	if paper != measured {
		delta := 100 * (float64(measured) - float64(paper)) / float64(paper)
		verdict = fmt.Sprintf("%+.1f%%", delta)
	}
	return fmt.Sprintf("%-44s paper %8d   measured %8d   %s", name, paper, measured, verdict)
}

func bar(v, max uint64, width int) string {
	n := int(v * uint64(width) / max)
	if v > 0 && n == 0 {
		n = 1
	}
	return strings.Repeat("#", n)
}

func dash(v uint64) string {
	if v == 0 {
		return "-"
	}
	return fmt.Sprintf("%d", v)
}

// MarkdownFeatureTable renders a Table 2 panel as a GitHub-flavored
// markdown table, for embedding results in documentation.
func MarkdownFeatureTable(c Cells) string {
	var b strings.Builder
	b.WriteString("| Feature | Source | Destination | Total |\n")
	b.WriteString("|---|---|---|---|\n")
	for _, f := range cost.Features() {
		src := c[cost.Source][f].Total()
		dst := c[cost.Destination][f].Total()
		fmt.Fprintf(&b, "| %s | %s | %s | %s |\n", f, dash(src), dash(dst), dash(src+dst))
	}
	src := c.RoleTotal(cost.Source).Total()
	dst := c.RoleTotal(cost.Destination).Total()
	fmt.Fprintf(&b, "| **Total** | %d | %d | %d |\n", src, dst, src+dst)
	return b.String()
}

// MarkdownComparisons renders paper-vs-measured rows as a markdown table.
func MarkdownComparisons(rows []BarPair) string {
	var b strings.Builder
	b.WriteString("| Case | CMAM | CR | Improvement |\n|---|---|---|---|\n")
	for _, r := range rows {
		improvement := 0.0
		if r.CMAM > 0 {
			improvement = 100 * (1 - float64(r.CR)/float64(r.CMAM))
		}
		fmt.Fprintf(&b, "| %s | %d | %d | %.0f%% |\n", r.Label, r.CMAM, r.CR, improvement)
	}
	return b.String()
}
