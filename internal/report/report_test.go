package report

import (
	"strings"
	"testing"

	"msglayer/internal/cost"
)

func sampleGauge() *cost.Gauge {
	g := cost.NewGauge()
	s := cost.MustPaperSchedule(4)
	g.Charge(cost.Source, cost.Base, s.SendSingle)
	g.Charge(cost.Destination, cost.Base, s.RecvSingle)
	return g
}

func TestTable1Layout(t *testing.T) {
	out := Table1(sampleGauge())
	for _, want := range []string{
		"Call/Return", "NI setup", "Write to NI", "Read from NI",
		"Check NI status", "Control flow", "Total", "20", "27",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("Table1 missing %q:\n%s", want, out)
		}
	}
	// Source has no NI reads: the row shows a dash in the source column.
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "Read from NI") && !strings.Contains(line, "-") {
			t.Errorf("expected dash for absent source reads: %q", line)
		}
	}
}

func TestFromGaugeAndMergeRoles(t *testing.T) {
	g := sampleGauge()
	c := FromGauge(g)
	if c[cost.Source][cost.Base].Total() != 20 {
		t.Errorf("FromGauge source base = %v", c[cost.Source][cost.Base])
	}

	src := cost.NewGauge()
	src.Charge(cost.Source, cost.Base, cost.Items{{Cat: cost.Reg, Sub: cost.SubCallRet, N: 5}})
	src.Charge(cost.Destination, cost.Base, cost.Items{{Cat: cost.Reg, Sub: cost.SubCallRet, N: 99}}) // ignored
	dst := cost.NewGauge()
	dst.Charge(cost.Destination, cost.FaultTol, cost.Items{{Cat: cost.Mem, Sub: cost.SubBookkeeping, N: 7}})
	merged := MergeRoles(src, dst)
	if merged[cost.Source][cost.Base].Total() != 5 {
		t.Errorf("merged source = %v", merged[cost.Source][cost.Base])
	}
	if merged[cost.Destination][cost.FaultTol].Total() != 7 {
		t.Errorf("merged destination = %v", merged[cost.Destination][cost.FaultTol])
	}
	if merged[cost.Destination][cost.Base].Total() != 0 {
		t.Errorf("merged took wrong column")
	}
	if got := merged.Total().Total(); got != 12 {
		t.Errorf("merged total = %d", got)
	}
}

func TestFeatureTable(t *testing.T) {
	c := Cells{
		cost.Source: {
			cost.Base:       cost.V(80, 0, 0),
			cost.InOrder:    cost.V(20, 0, 0),
			cost.FaultTol:   cost.V(116, 0, 0),
			cost.BufferMgmt: {},
		},
		cost.Destination: {
			cost.Base:     cost.V(69, 0, 0),
			cost.InOrder:  cost.V(116, 0, 0),
			cost.FaultTol: cost.V(80, 0, 0),
		},
	}
	out := FeatureTable("Indefinite sequence, 16 words", c)
	for _, want := range []string{"Base Cost", "In-order Del.", "Fault-toler.", "216", "265", "481"} {
		if !strings.Contains(out, want) {
			t.Errorf("FeatureTable missing %q:\n%s", want, out)
		}
	}
	// Buffer management is all dashes, as in the paper.
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "Buffer Mgmt.") {
			if strings.Count(line, "-") != 3 {
				t.Errorf("buffer mgmt row should be dashes: %q", line)
			}
		}
	}
}

func TestCategoryTable(t *testing.T) {
	c := Cells{
		cost.Source:      {cost.Base: cost.V(62, 9, 20)},
		cost.Destination: {cost.Base: cost.V(62, 11, 17)},
	}
	out := CategoryTable("Finite, 16 words", c)
	for _, want := range []string{"reg", "mem", "dev", "62", "9", "20", "11", "17", "Total"} {
		if !strings.Contains(out, want) {
			t.Errorf("CategoryTable missing %q:\n%s", want, out)
		}
	}
}

func TestWeightedLine(t *testing.T) {
	c := Cells{
		cost.Source:      {cost.Base: cost.V(17, 0, 3)},
		cost.Destination: {cost.Base: cost.V(22, 0, 5)},
	}
	out := WeightedLine(c, cost.CM5)
	if !strings.Contains(out, "source 32") || !strings.Contains(out, "destination 47") {
		t.Errorf("WeightedLine = %q", out)
	}
}

func TestComparison(t *testing.T) {
	out := Comparison("Figure 6", []BarPair{
		{Label: "finite, 16 words", CMAM: 397, CR: 187},
		{Label: "indefinite, 16 words", CMAM: 481, CR: 143},
	})
	for _, want := range []string{"finite, 16 words", "397", "187", "-53%", "-70%", "#"} {
		if !strings.Contains(out, want) {
			t.Errorf("Comparison missing %q:\n%s", want, out)
		}
	}
	// Zero-CMAM pairs must not divide by zero.
	_ = Comparison("degenerate", []BarPair{{Label: "x", CMAM: 0, CR: 0}})
}

func TestSeriesAndCSV(t *testing.T) {
	pts := []SeriesPoint{
		{X: 4, Values: []float64{0.70, 0.12}},
		{X: 128, Values: []float64{0.50, 0.09}},
	}
	out := Series("Figure 8", "n", []string{"indefinite", "finite"}, pts)
	for _, want := range []string{"Figure 8", "indefinite", "finite", "0.7000", "128"} {
		if !strings.Contains(out, want) {
			t.Errorf("Series missing %q:\n%s", want, out)
		}
	}
	csv := CSV("n", []string{"a", "b"}, pts)
	if !strings.HasPrefix(csv, "n,a,b\n4,0.7,0.12\n") {
		t.Errorf("CSV = %q", csv)
	}
}

func TestPaperVsMeasured(t *testing.T) {
	if out := PaperVsMeasured("totals", 100, 100); !strings.Contains(out, "match") {
		t.Errorf("exact = %q", out)
	}
	if out := PaperVsMeasured("totals", 100, 110); !strings.Contains(out, "+10.0%") {
		t.Errorf("delta = %q", out)
	}
}

func TestMarkdownFeatureTable(t *testing.T) {
	c := Cells{
		cost.Source:      {cost.Base: cost.V(20, 0, 0)},
		cost.Destination: {cost.Base: cost.V(27, 0, 0)},
	}
	out := MarkdownFeatureTable(c)
	for _, want := range []string{"| Feature |", "| Base Cost | 20 | 27 | 47 |", "| **Total** | 20 | 27 | 47 |"} {
		if !strings.Contains(out, want) {
			t.Errorf("markdown missing %q:\n%s", want, out)
		}
	}
	// Empty features render dashes.
	if !strings.Contains(out, "| Buffer Mgmt. | - | - | - |") {
		t.Errorf("empty rows not dashed:\n%s", out)
	}
}

func TestMarkdownComparisons(t *testing.T) {
	out := MarkdownComparisons([]BarPair{{Label: "finite 16w", CMAM: 397, CR: 187}, {Label: "zero", CMAM: 0, CR: 0}})
	if !strings.Contains(out, "| finite 16w | 397 | 187 | 53% |") {
		t.Errorf("markdown:\n%s", out)
	}
	if !strings.Contains(out, "| zero | 0 | 0 | 0% |") {
		t.Errorf("zero row:\n%s", out)
	}
}
