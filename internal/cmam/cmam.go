// Package cmam implements the messaging-layer mechanism of the CM-5 active
// messages layer (CMAM), the substrate of the paper's Section 3 analysis.
//
// The basic primitive is the active message: a packet carrying a handler
// identifier that is invoked at the receiver with the packet's data (the
// CMAM_4 interface). Bulk memory-to-memory transfers are supported by
// communication segments: a receiver associates a segment number with a
// target buffer, and incoming transfer packets carry (segment, offset) so
// data lands at the right position regardless of arrival order (the
// CMAM_xfer / CMAM_handle_left_xfer interface).
//
// The package provides mechanism only; instruction-cost attribution is the
// protocols' job (see internal/protocols), because the same physical send
// counts as Base cost in one protocol step and Fault-tolerance cost in
// another. Sends accept an optional charge bundle, and received packets are
// costed by the invoked handler or segment hooks.
package cmam

import (
	"errors"
	"fmt"

	"msglayer/internal/cost"
	"msglayer/internal/machine"
	"msglayer/internal/network"
	"msglayer/internal/ni"
)

// Hardware message tags used to vector received packets.
const (
	// TagAM marks a handler-carrying active message (CMAM_4); the head
	// word holds the HandlerID.
	TagAM network.Tag = 1
	// TagXfer marks a bulk-transfer data packet (CMAM_xfer); the head
	// word holds the segment id and word offset.
	TagXfer network.Tag = 2
)

// HandlerID names a registered active-message handler, playing the role of
// the handler function pointer a real CMAM packet carries.
type HandlerID uint16

// Handler is the computation associated with an active message. It runs at
// the receiver when the message is polled and is responsible for charging
// its own reception cost against the endpoint's node.
type Handler func(src int, args []network.Word)

// SegmentID names an allocated communication segment.
type SegmentID uint16

const (
	maxOffset  = 1 << 16 // the head word packs a 16-bit word offset
	maxSegment = 1 << 16 // and a 16-bit segment id
)

// Segment is a receiver-side communication segment: a target buffer plus
// completion tracking. Arrivals are idempotent per offset: a retransmitted
// packet overwrites the same words without double-counting, so reliable
// transfer protocols can blindly resend.
type segment struct {
	buf       []network.Word
	remaining int
	received  map[int]bool // offsets already counted
	onPacket  func(offset, words int)
	onDone    func()
}

// TagSink receives every packet carrying a tag registered with RegisterTag,
// letting higher layers (the indefinite-sequence stream protocol, the
// Compressionless-Routing layer) define their own packet formats on top of
// the endpoint's dispatch loop.
type TagSink func(src int, head network.Word, data []network.Word) error

// Endpoint is one node's CMAM layer instance.
type Endpoint struct {
	node       *machine.Node
	handlers   map[HandlerID]Handler
	segments   map[SegmentID]*segment
	tombstones map[SegmentID]bool // freed segments; late duplicates are dropped
	sinks      map[network.Tag]TagSink
	nextSeg    SegmentID
}

// Package errors.
var (
	ErrNoHandler      = errors.New("cmam: message for unregistered handler")
	ErrNoSegment      = errors.New("cmam: packet for unknown segment")
	ErrSegmentOverrun = errors.New("cmam: transfer packet overruns segment buffer")
)

// NewEndpoint attaches a CMAM layer to a node.
func NewEndpoint(node *machine.Node) *Endpoint {
	return &Endpoint{
		node:       node,
		handlers:   make(map[HandlerID]Handler),
		segments:   make(map[SegmentID]*segment),
		tombstones: make(map[SegmentID]bool),
		sinks:      make(map[network.Tag]TagSink),
	}
}

// Node returns the underlying machine node.
func (ep *Endpoint) Node() *machine.Node { return ep.node }

// Register installs a handler; re-registering an id replaces it.
func (ep *Endpoint) Register(id HandlerID, h Handler) {
	ep.handlers[id] = h
}

// RegisterTag installs a sink for a custom hardware tag. TagAM and TagXfer
// keep their built-in dispatch and cannot be overridden.
func (ep *Endpoint) RegisterTag(tag network.Tag, sink TagSink) error {
	if tag == TagAM || tag == TagXfer {
		return fmt.Errorf("cmam: tag %d is reserved", tag)
	}
	ep.sinks[tag] = sink
	return nil
}

// Send stages and pushes one packet, charging the bundle (if any) against
// the feature. Network backpressure and rejection are returned to the
// caller with the charge already applied — the instructions to attempt the
// send were really spent.
func (ep *Endpoint) Send(dst int, tag network.Tag, head network.Word, data []network.Word, f cost.Feature, charge cost.Items) error {
	if charge != nil {
		ep.node.Charge(f, charge)
	}
	fresh := ep.originate()
	sp := ep.node.Obs.StartSpan("cmam.send")
	nic := ep.node.NI
	nic.StageDest(dst, tag)
	nic.StageHead(head)
	if len(data) > 0 {
		nic.StageData(data...)
	}
	ep.stageTrace(nic)
	err := nic.Push()
	sp.End()
	if fresh {
		ep.node.Obs.SwapMsg(0)
	}
	if err == nil {
		ep.node.Obs.PacketSent()
	}
	return err
}

// originate gives a top-level send — one issued outside any protocol
// transfer or handler context — its own message identity, so even bare
// active messages (the single-packet delivery protocol) reconstruct as
// causal messages. Returns true when an identity was allocated; the caller
// clears the context after the send so it does not leak to later sends.
func (ep *Endpoint) originate() bool {
	obsScope := ep.node.Obs
	if obsScope.CurrentMsg() != 0 {
		return false
	}
	return obsScope.NewMsg() != 0
}

// stageTrace stamps the node's current message context into the staged
// packet: the message id, the innermost open span (which the cmam.send
// span just opened, making it the packet's causal parent at the receiver),
// and a fresh packet id. All zeros with no observer attached.
func (ep *Endpoint) stageTrace(nic *ni.NI) {
	msg, span := ep.node.Obs.MsgContext()
	if msg == 0 && span == 0 {
		return
	}
	nic.StageTrace(msg, span, ep.node.Obs.NewPkt())
}

// AM4 sends a CMAM_4 active message carrying up to four words, charging the
// paper's Table 1 source cost (20 instructions, Base).
func (ep *Endpoint) AM4(dst int, h HandlerID, args ...network.Word) error {
	if len(args) > ep.node.Sched.PacketWords {
		return fmt.Errorf("cmam: AM4 with %d args exceeds packet payload %d", len(args), ep.node.Sched.PacketWords)
	}
	return ep.Send(dst, TagAM, network.Word(h), args, cost.Base, ep.node.Sched.SendSingle)
}

// SendAM sends an active message charging an explicit bundle instead of the
// Table 1 cost — protocols use this for handshake and acknowledgement
// messages whose sends are attributed to buffer management or fault
// tolerance.
func (ep *Endpoint) SendAM(dst int, h HandlerID, f cost.Feature, charge cost.Items, args ...network.Word) error {
	return ep.Send(dst, TagAM, network.Word(h), args, f, charge)
}

// ReplyAM4 sends an active message on the node's reply network when one
// exists (falling back to the primary otherwise), charging the Table 1
// source cost. Sending replies on a separate network is how CMAM makes
// round-trip protocols deadlock-safe on the CM-5's finite buffering: a
// handler can always emit its reply even when the request network is
// completely full (the paper's footnote 6).
func (ep *Endpoint) ReplyAM4(dst int, h HandlerID, args ...network.Word) error {
	if len(args) > ep.node.Sched.PacketWords {
		return fmt.Errorf("cmam: ReplyAM4 with %d args exceeds packet payload %d", len(args), ep.node.Sched.PacketWords)
	}
	nic := ep.node.ReplyNI
	if nic == nil {
		nic = ep.node.NI
	}
	ep.node.Charge(cost.Base, ep.node.Sched.SendSingle)
	fresh := ep.originate()
	sp := ep.node.Obs.StartSpan("cmam.send")
	nic.StageDest(dst, TagAM)
	nic.StageHead(network.Word(h))
	if len(args) > 0 {
		nic.StageData(args...)
	}
	ep.stageTrace(nic)
	err := nic.Push()
	sp.End()
	if fresh {
		ep.node.Obs.SwapMsg(0)
	}
	if err == nil {
		ep.node.Obs.PacketSent()
	}
	return err
}

// AllocSegment associates a fresh segment id with a target buffer expecting
// expectWords words. The hooks run per arriving packet and at completion;
// either may be nil.
func (ep *Endpoint) AllocSegment(buf []network.Word, expectWords int, onPacket func(offset, words int), onDone func()) (SegmentID, error) {
	if expectWords < 0 || expectWords > len(buf) {
		return 0, fmt.Errorf("cmam: segment expects %d words into a %d-word buffer", expectWords, len(buf))
	}
	// Find a free id; segment ids are 16-bit like the head-word packing.
	for tries := 0; tries < maxSegment; tries++ {
		id := ep.nextSeg
		ep.nextSeg++
		if _, taken := ep.segments[id]; !taken {
			delete(ep.tombstones, id) // the id's previous life is over
			ep.segments[id] = &segment{
				buf:       buf,
				remaining: expectWords,
				received:  make(map[int]bool),
				onPacket:  onPacket,
				onDone:    onDone,
			}
			ep.node.Obs.SegmentAlloc()
			return id, nil
		}
	}
	return 0, errors.New("cmam: no free segment ids")
}

// FreeSegment disassociates a segment id. The id is tombstoned: transfer
// packets that were retransmitted and arrive after the segment completed
// are silently discarded rather than treated as protocol errors. (Ids
// recycle after the 16-bit space wraps, the usual sequence-reuse caveat.)
func (ep *Endpoint) FreeSegment(id SegmentID) error {
	if _, ok := ep.segments[id]; !ok {
		return fmt.Errorf("%w: %d", ErrNoSegment, id)
	}
	delete(ep.segments, id)
	ep.tombstones[id] = true
	ep.node.Obs.SegmentFree()
	return nil
}

// SegmentRemaining reports the words a segment still expects.
func (ep *Endpoint) SegmentRemaining(id SegmentID) (int, error) {
	s, ok := ep.segments[id]
	if !ok {
		return 0, fmt.Errorf("%w: %d", ErrNoSegment, id)
	}
	return s.remaining, nil
}

// XferHead packs a segment id and word offset into a head word, the
// paper's trick for cheap in-order delivery: carrying the offset eliminates
// sequence numbers.
func XferHead(seg SegmentID, offset int) (network.Word, error) {
	if offset < 0 || offset >= maxOffset {
		return 0, fmt.Errorf("cmam: xfer offset %d outside the 16-bit head field", offset)
	}
	return network.Word(seg)<<16 | network.Word(offset), nil
}

// SendXfer sends one bulk-transfer data packet into (dst, seg) at a word
// offset, charging the bundle against the feature.
func (ep *Endpoint) SendXfer(dst int, seg SegmentID, offset int, data []network.Word, f cost.Feature, charge cost.Items) error {
	head, err := XferHead(seg, offset)
	if err != nil {
		return err
	}
	return ep.Send(dst, TagXfer, head, data, f, charge)
}

// Poll receives and dispatches waiting packets — the CMAM_request_poll /
// CMAM_handle_left / CMAM_got_left reception path. Up to budget packets are
// processed (budget <= 0 means all waiting), draining the reply network's
// interface as well when the node has one. Reception costs are charged by
// the dispatched handlers and segment hooks, keeping attribution with the
// protocol. Poll returns the number of packets dispatched.
func (ep *Endpoint) Poll(budget int) (int, error) {
	count := 0
	for budget <= 0 || count < budget {
		nic := ep.node.NI
		if !nic.RecvReady() {
			if ep.node.ReplyNI == nil || !ep.node.ReplyNI.RecvReady() {
				return count, nil
			}
			nic = ep.node.ReplyNI
		}
		if err := ep.dispatch(nic); err != nil {
			return count, err
		}
		ep.node.Obs.PacketReceived()
		count++
	}
	return count, nil
}

// dispatch consumes and routes the packet staged on one interface. When the
// packet carries observability identity, the handler runs inside a dispatch
// context: everything it records — including replies and acknowledgements it
// sends — is attributed to the packet's originating message, which is how
// causal identity crosses the network without per-protocol plumbing.
func (ep *Endpoint) dispatch(nic *ni.NI) error {
	msg, span, pkt := nic.RecvTrace()
	if msg == 0 && span == 0 {
		return ep.dispatchPacket(nic)
	}
	ctx := ep.node.HandleBegin(msg, span, pkt)
	err := ep.dispatchPacket(nic)
	ep.node.HandleEnd(ctx)
	return err
}

// dispatchPacket consumes and routes the packet staged on one interface.
func (ep *Endpoint) dispatchPacket(nic *ni.NI) error {
	src, tag, head := nic.ReadMeta()
	switch tag {
	case TagAM:
		h, ok := ep.handlers[HandlerID(head)]
		if !ok {
			nic.Discard()
			return fmt.Errorf("%w: id %d from node %d", ErrNoHandler, head, src)
		}
		data := nic.ReadData()
		h(src, data)
	case TagXfer:
		seg := SegmentID(head >> 16)
		offset := int(head & (maxOffset - 1))
		s, ok := ep.segments[seg]
		if !ok {
			if ep.tombstones[seg] {
				// A retransmission landing after completion.
				nic.Discard()
				ep.node.Event("cmam.stale.xfer")
				return nil
			}
			nic.Discard()
			return fmt.Errorf("%w: %d from node %d", ErrNoSegment, seg, src)
		}
		data := nic.ReadData()
		if offset+len(data) > len(s.buf) {
			return fmt.Errorf("%w: offset %d + %d words into %d-word segment %d",
				ErrSegmentOverrun, offset, len(data), len(s.buf), seg)
		}
		copy(s.buf[offset:], data)
		if !s.received[offset] {
			s.received[offset] = true
			s.remaining -= len(data)
		}
		if s.onPacket != nil {
			s.onPacket(offset, len(data))
		}
		if s.remaining <= 0 && s.onDone != nil {
			done := s.onDone
			s.onDone = nil
			done()
		}
	default:
		sink, ok := ep.sinks[tag]
		if !ok {
			nic.Discard()
			return fmt.Errorf("cmam: packet with unknown tag %d from node %d", tag, src)
		}
		data := nic.ReadData()
		if err := sink(src, head, data); err != nil {
			return err
		}
	}
	return nil
}

// PollSingle receives and dispatches at most one waiting packet, charging
// the paper's Table 1 destination cost (27 instructions, Base) when a
// packet was processed. It is the single-packet delivery protocol's
// reception path.
func (ep *Endpoint) PollSingle() (bool, error) {
	n, err := ep.Poll(1)
	if n > 0 {
		ep.node.Charge(cost.Base, ep.node.Sched.RecvSingle)
	}
	return n > 0, err
}
