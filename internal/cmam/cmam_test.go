package cmam

import (
	"errors"
	"testing"

	"msglayer/internal/cost"
	"msglayer/internal/machine"
	"msglayer/internal/network"
)

// pair builds a two-node CM-5 machine with endpoints.
func pair(t *testing.T, cfg network.CM5Config) (*Endpoint, *Endpoint, *machine.Machine) {
	t.Helper()
	cfg.Nodes = 2
	m := machine.MustNew(network.MustCM5Net(cfg), cost.MustPaperSchedule(4))
	m.Node(0).SetRole(cost.Source)
	m.Node(1).SetRole(cost.Destination)
	return NewEndpoint(m.Node(0)), NewEndpoint(m.Node(1)), m
}

func TestAM4DeliveryAndTable1Costs(t *testing.T) {
	src, dst, _ := pair(t, network.CM5Config{})

	var got []network.Word
	var from int
	dst.Register(1, func(s int, args []network.Word) {
		from = s
		got = append(got, args...)
	})

	if err := src.AM4(1, 1, 10, 20, 30, 40); err != nil {
		t.Fatal(err)
	}
	ok, err := dst.PollSingle()
	if err != nil || !ok {
		t.Fatalf("PollSingle = %v, %v", ok, err)
	}

	if from != 0 || len(got) != 4 || got[0] != 10 || got[3] != 40 {
		t.Errorf("handler saw src=%d args=%v", from, got)
	}

	// The costs are exactly Table 1: 20 at the source, 27 at the
	// destination, all Base.
	sg := src.Node().Gauge.Cell(cost.Source, cost.Base)
	dg := dst.Node().Gauge.Cell(cost.Destination, cost.Base)
	if sg.Total() != 20 {
		t.Errorf("source cost = %d, want 20", sg.Total())
	}
	if dg.Total() != 27 {
		t.Errorf("destination cost = %d, want 27", dg.Total())
	}
}

func TestAM4RejectsOversizeArgs(t *testing.T) {
	src, _, _ := pair(t, network.CM5Config{})
	if err := src.AM4(1, 1, 1, 2, 3, 4, 5); err == nil {
		t.Error("AM4 accepted five args on a four-word packet")
	}
}

func TestPollSingleWithNothingWaiting(t *testing.T) {
	_, dst, _ := pair(t, network.CM5Config{})
	ok, err := dst.PollSingle()
	if err != nil || ok {
		t.Errorf("PollSingle on empty network = %v, %v", ok, err)
	}
	if got := dst.Node().Gauge.Total(); !got.IsZero() {
		t.Errorf("empty poll charged %v", got)
	}
}

func TestUnregisteredHandlerErrors(t *testing.T) {
	src, dst, _ := pair(t, network.CM5Config{})
	if err := src.AM4(1, 42, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := dst.Poll(0); !errors.Is(err, ErrNoHandler) {
		t.Errorf("Poll = %v, want ErrNoHandler", err)
	}
}

func TestUnknownTagErrors(t *testing.T) {
	src, dst, _ := pair(t, network.CM5Config{})
	if err := src.Send(1, network.Tag(9), 0, nil, cost.Base, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := dst.Poll(0); err == nil {
		t.Error("Poll accepted unknown tag")
	}
}

func TestSendChargesOptionalBundle(t *testing.T) {
	src, _, _ := pair(t, network.CM5Config{})
	if err := src.Send(1, TagAM, 0, nil, cost.FaultTol, src.Node().Sched.XferAckSend); err != nil {
		t.Fatal(err)
	}
	if got := src.Node().Gauge.Cell(cost.Source, cost.FaultTol).Total(); got != 20 {
		t.Errorf("fault-tolerance charge = %d, want 20", got)
	}
	// nil bundle charges nothing.
	if err := src.Send(1, TagAM, 0, nil, cost.Base, nil); err != nil {
		t.Fatal(err)
	}
	if got := src.Node().Gauge.Cell(cost.Source, cost.Base).Total(); got != 0 {
		t.Errorf("nil bundle charged %d", got)
	}
}

func TestSegmentTransfer(t *testing.T) {
	src, dst, _ := pair(t, network.CM5Config{})

	buf := make([]network.Word, 8)
	var packets, doneCalls int
	seg, err := dst.AllocSegment(buf, 8, func(off, words int) { packets++ }, func() { doneCalls++ })
	if err != nil {
		t.Fatal(err)
	}

	// Send two four-word packets at offsets 4 and 0 (out of order is fine;
	// offsets place the data).
	if err := src.SendXfer(1, seg, 4, []network.Word{5, 6, 7, 8}, cost.Base, nil); err != nil {
		t.Fatal(err)
	}
	if err := src.SendXfer(1, seg, 0, []network.Word{1, 2, 3, 4}, cost.Base, nil); err != nil {
		t.Fatal(err)
	}
	if n, err := dst.Poll(0); err != nil || n != 2 {
		t.Fatalf("Poll = %d, %v", n, err)
	}

	for i, want := range []network.Word{1, 2, 3, 4, 5, 6, 7, 8} {
		if buf[i] != want {
			t.Errorf("buf[%d] = %d, want %d", i, buf[i], want)
		}
	}
	if packets != 2 || doneCalls != 1 {
		t.Errorf("hooks: packets=%d done=%d", packets, doneCalls)
	}
	if rem, err := dst.SegmentRemaining(seg); err != nil || rem != 0 {
		t.Errorf("remaining = %d, %v", rem, err)
	}

	if err := dst.FreeSegment(seg); err != nil {
		t.Fatal(err)
	}
	if err := dst.FreeSegment(seg); !errors.Is(err, ErrNoSegment) {
		t.Errorf("double free = %v, want ErrNoSegment", err)
	}
	if _, err := dst.SegmentRemaining(seg); !errors.Is(err, ErrNoSegment) {
		t.Errorf("SegmentRemaining after free = %v", err)
	}
}

func TestSegmentUnknownAndOverrun(t *testing.T) {
	src, dst, _ := pair(t, network.CM5Config{})

	// Packet for a segment that was never allocated.
	if err := src.SendXfer(1, 99, 0, []network.Word{1}, cost.Base, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := dst.Poll(0); !errors.Is(err, ErrNoSegment) {
		t.Errorf("Poll = %v, want ErrNoSegment", err)
	}

	// Packet overrunning the segment buffer.
	buf := make([]network.Word, 2)
	seg, err := dst.AllocSegment(buf, 2, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := src.SendXfer(1, seg, 1, []network.Word{1, 2, 3}, cost.Base, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := dst.Poll(0); !errors.Is(err, ErrSegmentOverrun) {
		t.Errorf("Poll = %v, want ErrSegmentOverrun", err)
	}
}

func TestAllocSegmentValidates(t *testing.T) {
	_, dst, _ := pair(t, network.CM5Config{})
	if _, err := dst.AllocSegment(make([]network.Word, 2), 4, nil, nil); err == nil {
		t.Error("accepted expectation beyond buffer")
	}
	if _, err := dst.AllocSegment(nil, -1, nil, nil); err == nil {
		t.Error("accepted negative expectation")
	}
}

func TestSegmentIDsRecycle(t *testing.T) {
	_, dst, _ := pair(t, network.CM5Config{})
	a, err := dst.AllocSegment(make([]network.Word, 4), 4, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := dst.AllocSegment(make([]network.Word, 4), 4, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if a == b {
		t.Fatalf("distinct segments share id %d", a)
	}
	if err := dst.FreeSegment(a); err != nil {
		t.Fatal(err)
	}
	if _, err := dst.AllocSegment(make([]network.Word, 4), 4, nil, nil); err != nil {
		t.Fatal(err)
	}
}

func TestXferHeadPacking(t *testing.T) {
	head, err := XferHead(3, 1020)
	if err != nil {
		t.Fatal(err)
	}
	if head>>16 != 3 || head&0xffff != 1020 {
		t.Errorf("head = %#x", head)
	}
	if _, err := XferHead(0, 1<<16); err == nil {
		t.Error("accepted 16-bit offset overflow")
	}
	if _, err := XferHead(0, -4); err == nil {
		t.Error("accepted negative offset")
	}
}

func TestPollBudget(t *testing.T) {
	src, dst, _ := pair(t, network.CM5Config{})
	dst.Register(1, func(int, []network.Word) {})
	for i := 0; i < 5; i++ {
		if err := src.AM4(1, 1); err != nil {
			t.Fatal(err)
		}
	}
	if n, err := dst.Poll(2); err != nil || n != 2 {
		t.Fatalf("Poll(2) = %d, %v", n, err)
	}
	if n, err := dst.Poll(0); err != nil || n != 3 {
		t.Fatalf("Poll(0) = %d, %v", n, err)
	}
}

func TestHandlersCanReplyThroughSameEndpoint(t *testing.T) {
	// A request/reply ping-pong: the destination's handler sends back,
	// exercising reentrant endpoint use from inside a handler.
	src, dst, _ := pair(t, network.CM5Config{})
	gotReply := false
	src.Register(2, func(s int, args []network.Word) {
		if s == 1 && len(args) == 1 && args[0] == 99 {
			gotReply = true
		}
	})
	dst.Register(1, func(s int, args []network.Word) {
		if err := dst.AM4(s, 2, 99); err != nil {
			t.Errorf("reply failed: %v", err)
		}
	})
	if err := src.AM4(1, 1, 7); err != nil {
		t.Fatal(err)
	}
	if _, err := dst.Poll(0); err != nil {
		t.Fatal(err)
	}
	if _, err := src.Poll(0); err != nil {
		t.Fatal(err)
	}
	if !gotReply {
		t.Error("reply never arrived")
	}
}

func TestCorruptPacketsNeverReachHandlers(t *testing.T) {
	src, dst, _ := pair(t, network.CM5Config{
		Faults: &network.EveryNth{N: 1, What: network.Corrupt},
	})
	dst.Register(1, func(int, []network.Word) {
		t.Error("handler ran for a corrupt packet")
	})
	if err := src.AM4(1, 1, 1); err != nil {
		t.Fatal(err)
	}
	if n, err := dst.Poll(0); err != nil || n != 0 {
		t.Errorf("Poll = %d, %v", n, err)
	}
}

func TestRegisterTagSink(t *testing.T) {
	src, dst, _ := pair(t, network.CM5Config{})
	var gotHead network.Word
	var gotData []network.Word
	if err := dst.RegisterTag(5, func(s int, head network.Word, data []network.Word) error {
		gotHead = head
		gotData = data
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if err := src.Send(1, 5, 42, []network.Word{7, 8}, cost.Base, nil); err != nil {
		t.Fatal(err)
	}
	if n, err := dst.Poll(0); err != nil || n != 1 {
		t.Fatalf("Poll = %d, %v", n, err)
	}
	if gotHead != 42 || len(gotData) != 2 || gotData[1] != 8 {
		t.Errorf("sink saw head=%d data=%v", gotHead, gotData)
	}
}

func TestRegisterTagRejectsReserved(t *testing.T) {
	_, dst, _ := pair(t, network.CM5Config{})
	if err := dst.RegisterTag(TagAM, nil); err == nil {
		t.Error("RegisterTag accepted TagAM")
	}
	if err := dst.RegisterTag(TagXfer, nil); err == nil {
		t.Error("RegisterTag accepted TagXfer")
	}
}

func TestTagSinkErrorsPropagate(t *testing.T) {
	src, dst, _ := pair(t, network.CM5Config{})
	boom := errors.New("sink boom")
	if err := dst.RegisterTag(6, func(int, network.Word, []network.Word) error {
		return boom
	}); err != nil {
		t.Fatal(err)
	}
	if err := src.Send(1, 6, 0, nil, cost.Base, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := dst.Poll(0); !errors.Is(err, boom) {
		t.Errorf("Poll = %v, want sink error", err)
	}
}

func TestSendAMAndReplyAM4(t *testing.T) {
	src, dst, _ := pair(t, network.CM5Config{})
	var got []network.Word
	dst.Register(3, func(_ int, args []network.Word) { got = args })

	// SendAM with an explicit attribution.
	if err := src.SendAM(1, 3, cost.BufferMgmt, src.Node().Sched.AllocRequestSend, 9); err != nil {
		t.Fatal(err)
	}
	if n, err := dst.Poll(0); err != nil || n != 1 {
		t.Fatalf("Poll = %d, %v", n, err)
	}
	if len(got) != 1 || got[0] != 9 {
		t.Errorf("args = %v", got)
	}
	if c := src.Node().Gauge.Cell(cost.Source, cost.BufferMgmt).Total(); c != 23 {
		t.Errorf("buffer mgmt charge = %d, want 23", c)
	}

	// ReplyAM4 without a reply network falls back to the primary NI and
	// charges Table 1.
	if err := dst.ReplyAM4(0, 3, 1, 2); err != nil {
		t.Fatal(err)
	}
	src.Register(3, func(_ int, args []network.Word) { got = args })
	if n, err := src.Poll(0); err != nil || n != 1 {
		t.Fatalf("reply Poll = %d, %v", n, err)
	}
	if len(got) != 2 || got[1] != 2 {
		t.Errorf("reply args = %v", got)
	}
	if c := dst.Node().Gauge.Cell(cost.Destination, cost.Base).Total(); c != 20 {
		t.Errorf("reply charge = %d, want 20", c)
	}
	// Oversize replies are refused.
	if err := dst.ReplyAM4(0, 3, 1, 2, 3, 4, 5); err == nil {
		t.Error("oversize ReplyAM4 accepted")
	}
}

func TestDualNetworkPollDrainsBothNIs(t *testing.T) {
	req := network.MustCM5Net(network.CM5Config{Nodes: 2})
	rep := network.MustCM5Net(network.CM5Config{Nodes: 2})
	m, err := machine.NewDual(req, rep, cost.MustPaperSchedule(4))
	if err != nil {
		t.Fatal(err)
	}
	a := NewEndpoint(m.Node(0))
	b := NewEndpoint(m.Node(1))
	var seen []network.Word
	a.Register(1, func(_ int, args []network.Word) { seen = append(seen, args[0]) })

	// One message on each network toward node 0.
	if err := b.AM4(0, 1, 100); err != nil { // request network
		t.Fatal(err)
	}
	if err := b.ReplyAM4(0, 1, 200); err != nil { // reply network
		t.Fatal(err)
	}
	if n, err := a.Poll(0); err != nil || n != 2 {
		t.Fatalf("Poll = %d, %v", n, err)
	}
	if len(seen) != 2 {
		t.Fatalf("seen = %v", seen)
	}
}
