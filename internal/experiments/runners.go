// Package experiments contains one driver per table and figure of the
// paper, plus the ablations discussed in its prose. Each driver runs the
// real protocols over the simulated substrates, renders the result in the
// paper's layout, and reports paper-vs-measured comparisons.
package experiments

import (
	"fmt"

	"msglayer/internal/cmam"
	"msglayer/internal/cost"
	"msglayer/internal/crmsg"
	"msglayer/internal/machine"
	"msglayer/internal/network"
	"msglayer/internal/obs"
	"msglayer/internal/protocols"
	"msglayer/internal/report"
)

// observer, when set, is attached to every machine the drivers build, so
// one hub accumulates metrics and trace events across a whole run of
// experiments.
var observer *obs.Hub

// SetObserver installs (or clears, with nil) the hub experiment machines
// record through.
func SetObserver(h *obs.Hub) { observer = h }

// flitShards is the engine shard count the flit-level experiments build
// their networks with. The sharded engine is byte-identical to the serial
// one at any count, so this knob only changes wall clock, never results —
// which is why it can be a package global rather than a per-run parameter.
var flitShards int

// SetFlitShards sets the engine shard count for the flit-level experiments
// (0 or 1 selects the serial engine). Results are byte-identical at any
// value; the perfreg sim gate relies on that.
func SetFlitShards(n int) { flitShards = n }

// Result is one experiment's output.
type Result struct {
	ID          string
	Title       string
	Text        string
	Comparisons []Comparison
}

// Comparison is one paper-vs-measured row.
type Comparison struct {
	Name     string
	Paper    uint64
	Measured uint64
	// Note records caveats (corrupted paper panels, shape-only targets).
	Note string
}

// Match reports whether measured equals the paper value.
func (c Comparison) Match() bool { return c.Paper == c.Measured }

// maxRounds bounds protocol pump loops in every driver.
const maxRounds = 1_000_000

// payload builds a deterministic test payload.
func payload(words int) []network.Word {
	data := make([]network.Word, words)
	for i := range data {
		data[i] = network.Word(i*3 + 1)
	}
	return data
}

// twoNode assembles a two-node machine with roles for a 0 -> 1 transfer.
func twoNode(net network.Network) (*machine.Machine, error) {
	sched, err := cost.NewPaperSchedule(net.PacketWords())
	if err != nil {
		return nil, err
	}
	m, err := machine.New(net, sched)
	if err != nil {
		return nil, err
	}
	m.Node(0).SetRole(cost.Source)
	m.Node(1).SetRole(cost.Destination)
	if observer != nil {
		m.AttachObserver(observer)
	}
	return m, nil
}

// verify checks that the receiver saw exactly the sent words.
func verify(sent, got []network.Word) error {
	if len(got) != len(sent) {
		return fmt.Errorf("experiments: received %d of %d words", len(got), len(sent))
	}
	for i := range sent {
		if got[i] != sent[i] {
			return fmt.Errorf("experiments: word %d corrupted (%d != %d)", i, got[i], sent[i])
		}
	}
	return nil
}

// runFiniteCMAM runs one finite-sequence CMAM transfer and returns the
// merged role breakdown.
func runFiniteCMAM(words, packetWords int) (report.Cells, error) {
	net, err := network.NewCM5Net(network.CM5Config{Nodes: 2, PacketWords: packetWords})
	if err != nil {
		return nil, err
	}
	m, err := twoNode(net)
	if err != nil {
		return nil, err
	}
	src := protocols.NewFinite(cmam.NewEndpoint(m.Node(0)))
	dst := protocols.NewFinite(cmam.NewEndpoint(m.Node(1)))
	var received []network.Word
	dst.OnReceive = func(_ int, buf []network.Word) { received = buf }

	data := payload(words)
	tr, err := src.Start(1, data)
	if err != nil {
		return nil, err
	}
	err = m.Run(maxRounds,
		machine.StepFunc(func() (bool, error) { return tr.Done(), src.Pump() }),
		machine.StepFunc(func() (bool, error) { return tr.Done(), dst.Pump() }),
	)
	if err != nil {
		return nil, err
	}
	if err := verify(data, received); err != nil {
		return nil, err
	}
	return report.MergeRoles(m.Node(0).Gauge, m.Node(1).Gauge), nil
}

// runStreamCMAM runs an indefinite-sequence CMAM stream of the given total
// size under the paper's half-out-of-order delivery, returning the merged
// breakdown.
func runStreamCMAM(words, packetWords, ackGroup int) (report.Cells, error) {
	net, err := network.NewCM5Net(network.CM5Config{
		Nodes:       2,
		PacketWords: packetWords,
		Reorder:     network.PairSwap(),
	})
	if err != nil {
		return nil, err
	}
	m, err := twoNode(net)
	if err != nil {
		return nil, err
	}
	var got []network.Word
	src := protocols.MustNewStream(cmam.NewEndpoint(m.Node(0)), protocols.StreamConfig{AckGroup: ackGroup})
	dst := protocols.MustNewStream(cmam.NewEndpoint(m.Node(1)), protocols.StreamConfig{
		AckGroup:  ackGroup,
		OnDeliver: func(_ int, _ uint8, data []network.Word) { got = append(got, data...) },
	})
	conn := src.Open(1, 0)
	data := payload(words)
	for off := 0; off < words; off += packetWords {
		end := off + packetWords
		if end > words {
			end = words
		}
		if err := conn.Send(data[off:end]...); err != nil {
			return nil, err
		}
	}
	err = m.Run(maxRounds,
		machine.StepFunc(func() (bool, error) { return conn.Idle(), src.Pump() }),
		machine.StepFunc(func() (bool, error) { return conn.Idle(), dst.Pump() }),
	)
	if err != nil {
		return nil, err
	}
	if err := verify(data, got); err != nil {
		return nil, err
	}
	return report.MergeRoles(m.Node(0).Gauge, m.Node(1).Gauge), nil
}

// runFiniteCR runs one finite transfer over the CR substrate.
func runFiniteCR(words, packetWords int) (report.Cells, error) {
	net, err := network.NewCRNet(network.CRConfig{Nodes: 2, PacketWords: packetWords})
	if err != nil {
		return nil, err
	}
	m, err := twoNode(net)
	if err != nil {
		return nil, err
	}
	src, err := crmsg.NewFinite(cmam.NewEndpoint(m.Node(0)), net, crmsg.FiniteConfig{})
	if err != nil {
		return nil, err
	}
	var received []network.Word
	dst, err := crmsg.NewFinite(cmam.NewEndpoint(m.Node(1)), net, crmsg.FiniteConfig{
		OnReceive: func(_ int, buf []network.Word) { received = buf },
	})
	if err != nil {
		return nil, err
	}
	data := payload(words)
	tr, err := src.Start(1, data)
	if err != nil {
		return nil, err
	}
	err = m.Run(maxRounds,
		machine.StepFunc(func() (bool, error) { return tr.Done() && received != nil, src.Pump() }),
		machine.StepFunc(func() (bool, error) { return tr.Done() && received != nil, dst.Pump() }),
	)
	if err != nil {
		return nil, err
	}
	if err := verify(data, received); err != nil {
		return nil, err
	}
	return report.MergeRoles(m.Node(0).Gauge, m.Node(1).Gauge), nil
}

// runStreamCR runs an indefinite stream over the CR substrate.
func runStreamCR(words, packetWords int) (report.Cells, error) {
	net, err := network.NewCRNet(network.CRConfig{Nodes: 2, PacketWords: packetWords})
	if err != nil {
		return nil, err
	}
	m, err := twoNode(net)
	if err != nil {
		return nil, err
	}
	var got []network.Word
	src := crmsg.MustNewStream(cmam.NewEndpoint(m.Node(0)), crmsg.StreamConfig{})
	dst := crmsg.MustNewStream(cmam.NewEndpoint(m.Node(1)), crmsg.StreamConfig{
		OnDeliver: func(_ int, _ uint8, data []network.Word) { got = append(got, data...) },
	})
	conn := src.Open(1, 0)
	data := payload(words)
	for off := 0; off < words; off += packetWords {
		end := off + packetWords
		if end > words {
			end = words
		}
		if err := conn.Send(data[off:end]...); err != nil {
			return nil, err
		}
	}
	err = m.Run(maxRounds,
		machine.StepFunc(func() (bool, error) { return conn.Idle() && len(got) == words, src.Pump() }),
		machine.StepFunc(func() (bool, error) { return conn.Idle() && len(got) == words, dst.Pump() }),
	)
	if err != nil {
		return nil, err
	}
	if err := verify(data, got); err != nil {
		return nil, err
	}
	return report.MergeRoles(m.Node(0).Gauge, m.Node(1).Gauge), nil
}

// CanonicalScenarios lists the scenario names RunCanonical accepts, in the
// fixed order the perf-regression harness records them: the single-packet
// delivery, then the finite and indefinite protocols on each substrate.
func CanonicalScenarios() []string {
	return []string{"single", "cm5-finite", "cm5-stream", "cr-finite", "cr-stream"}
}

// RunCanonical runs one canonical scenario by name with the paper's 4-word
// packets and returns the role × feature instruction-cost breakdown. The
// runs are deterministic: identical inputs reproduce identical cells. words
// is ignored by "single", which always delivers one packet.
func RunCanonical(name string, words int) (report.Cells, error) {
	if words < 1 {
		return nil, fmt.Errorf("experiments: words must be positive, got %d", words)
	}
	switch name {
	case "single":
		g, err := runSingle()
		if err != nil {
			return nil, err
		}
		return report.FromGauge(g), nil
	case "cm5-finite":
		return runFiniteCMAM(words, 4)
	case "cm5-stream":
		return runStreamCMAM(words, 4, 1)
	case "cr-finite":
		return runFiniteCR(words, 4)
	case "cr-stream":
		return runStreamCR(words, 4)
	}
	return nil, fmt.Errorf("experiments: unknown canonical scenario %q", name)
}

// RunProtocol runs one generalized protocol point on the real simulator:
// the named protocol (finite, indefinite, finite-cr, indefinite-cr) moving
// a words-sized message in packetWords-word hardware packets, with
// ackGroup grouping acknowledgements on the indefinite CMAM protocol. It
// is the simulation side of cmd/sweep's -twin column: the analytic model
// must reproduce these cells exactly. The runs are deterministic and
// parallel-safe.
func RunProtocol(name string, words, packetWords, ackGroup int) (report.Cells, error) {
	if words < 1 {
		return nil, fmt.Errorf("experiments: words must be positive, got %d", words)
	}
	switch name {
	case "finite":
		return runFiniteCMAM(words, packetWords)
	case "indefinite":
		return runStreamCMAM(words, packetWords, ackGroup)
	case "finite-cr":
		return runFiniteCR(words, packetWords)
	case "indefinite-cr":
		return runStreamCR(words, packetWords)
	}
	return nil, fmt.Errorf("experiments: unknown protocol %q", name)
}

// runSingle runs one single-packet delivery and returns the gauge.
func runSingle() (*cost.Gauge, error) {
	net, err := network.NewCM5Net(network.CM5Config{Nodes: 2})
	if err != nil {
		return nil, err
	}
	m, err := twoNode(net)
	if err != nil {
		return nil, err
	}
	src := cmam.NewEndpoint(m.Node(0))
	dst := cmam.NewEndpoint(m.Node(1))
	dst.Register(1, func(int, []network.Word) {})
	if err := protocols.SinglePacket(src, dst, 1, 1, 2, 3, 4); err != nil {
		return nil, err
	}
	g := m.TotalGauge()
	return g, nil
}
