package experiments

import (
	"fmt"
	"strings"

	"msglayer/internal/analytic"
	"msglayer/internal/cost"
	"msglayer/internal/parsweep"
	"msglayer/internal/report"
)

// paperFinite returns the paper's finite-sequence cells for p packets of
// four words (Appendix A's exact linear decomposition; the 16-word Table 2
// panel is corrupted in available scans, so the p = 4 values are the
// Appendix A sums — see DESIGN.md §5).
func paperFinite(p uint64) report.Cells {
	return report.Cells{
		cost.Source: {
			cost.Base:       cost.V(2, 1, 0).Add(cost.V(15, 2, 5).Scale(p)),
			cost.BufferMgmt: cost.V(36, 1, 10),
			cost.InOrder:    cost.V(2, 0, 0).Scale(p),
			cost.FaultTol:   cost.V(22, 0, 5),
		},
		cost.Destination: {
			cost.Base:       cost.V(14, 3, 1).Add(cost.V(12, 2, 4).Scale(p)),
			cost.BufferMgmt: cost.V(79, 12, 10),
			cost.InOrder:    cost.V(1, 0, 0).Add(cost.V(3, 0, 0).Scale(p)),
			cost.FaultTol:   cost.V(14, 1, 5),
		},
	}
}

// paperIndefinite returns the paper's indefinite-sequence cells for p
// packets with half arriving out of order.
func paperIndefinite(p uint64) report.Cells {
	half := p / 2
	return report.Cells{
		cost.Source: {
			cost.Base:     cost.V(14, 1, 5).Scale(p),
			cost.InOrder:  cost.V(2, 3, 0).Scale(p),
			cost.FaultTol: cost.V(22, 2, 5).Scale(p),
		},
		cost.Destination: {
			cost.Base: cost.V(12, 0, 1).Add(cost.V(10, 0, 4).Scale(p)),
			cost.InOrder: cost.V(5, 0, 0).Scale(p - half).
				Add(cost.V(20, 13, 0).Scale(half)).
				Add(cost.V(10, 10, 0).Scale(half)),
			cost.FaultTol: cost.V(14, 1, 5).Scale(p),
		},
	}
}

// Table1 reproduces the single-packet delivery breakdown.
func Table1() (Result, error) {
	g, err := runSingle()
	if err != nil {
		return Result{}, err
	}
	var b strings.Builder
	b.WriteString(report.Table1(g))
	b.WriteString("\n")
	b.WriteString(report.WeightedLine(report.FromGauge(g), cost.CM5))
	b.WriteString("\n")

	src := g.RoleTotal(cost.Source).Total()
	dst := g.RoleTotal(cost.Destination).Total()
	return Result{
		ID:    "table1",
		Title: "Table 1: instruction counts for single-packet delivery",
		Text:  b.String(),
		Comparisons: []Comparison{
			{Name: "single-packet source total", Paper: 20, Measured: src},
			{Name: "single-packet destination total", Paper: 27, Measured: dst},
		},
	}, nil
}

// table2Panel runs one protocol/size cell of Table 2 and compares against
// the paper.
func table2Panel(name string, words int, stream bool, note string) (string, []Comparison, report.Cells, error) {
	var cells report.Cells
	var err error
	if stream {
		cells, err = runStreamCMAM(words, 4, 1)
	} else {
		cells, err = runFiniteCMAM(words, 4)
	}
	if err != nil {
		return "", nil, nil, err
	}
	p := uint64(words / 4)
	paper := paperFinite(p)
	if stream {
		paper = paperIndefinite(p)
	}
	comps := []Comparison{
		{Name: name + " source", Paper: paper.RoleTotal(cost.Source).Total(),
			Measured: cells.RoleTotal(cost.Source).Total(), Note: note},
		{Name: name + " destination", Paper: paper.RoleTotal(cost.Destination).Total(),
			Measured: cells.RoleTotal(cost.Destination).Total(), Note: note},
		{Name: name + " total", Paper: paper.Total().Total(),
			Measured: cells.Total().Total(), Note: note},
	}
	return report.FeatureTable(name, cells), comps, cells, nil
}

// table2Specs enumerates the four panels of Table 2.
var table2Specs = []struct {
	name   string
	words  int
	stream bool
	note   string
}{
	{"Finite sequence, multi-packet delivery (16 words)", 16, false,
		"paper panel corrupted in scans; value derived from Appendix A"},
	{"Indefinite sequence, multi-packet delivery (16 words)", 16, true, ""},
	{"Finite sequence, multi-packet delivery (1024 words)", 1024, false, ""},
	{"Indefinite sequence, multi-packet delivery (1024 words)", 1024, true, ""},
}

// Table2 reproduces all four multi-packet delivery panels.
func Table2() (Result, error) {
	var b strings.Builder
	var comps []Comparison
	for _, spec := range table2Specs {
		text, c, _, err := table2Panel(spec.name, spec.words, spec.stream, spec.note)
		if err != nil {
			return Result{}, fmt.Errorf("%s: %w", spec.name, err)
		}
		b.WriteString(text)
		b.WriteString("\n")
		comps = append(comps, c...)
	}
	return Result{
		ID:          "table2",
		Title:       "Table 2: multi-packet delivery costs (packet size = 4 words)",
		Text:        b.String(),
		Comparisons: comps,
	}, nil
}

// Table3 reproduces the reg/mem/dev subcategory breakdown.
func Table3() (Result, error) {
	var b strings.Builder
	var comps []Comparison
	for _, spec := range table2Specs {
		var cells report.Cells
		var err error
		if spec.stream {
			cells, err = runStreamCMAM(spec.words, 4, 1)
		} else {
			cells, err = runFiniteCMAM(spec.words, 4)
		}
		if err != nil {
			return Result{}, err
		}
		b.WriteString(report.CategoryTable(spec.name, cells))
		b.WriteString(report.WeightedLine(cells, cost.CM5))
		b.WriteString("\n\n")

		p := uint64(spec.words / 4)
		paper := paperFinite(p)
		if spec.stream {
			paper = paperIndefinite(p)
		}
		for _, r := range cost.Roles() {
			for _, cat := range cost.Categories() {
				comps = append(comps, Comparison{
					Name:     fmt.Sprintf("%s %s %s", spec.name, r, cat),
					Paper:    paper.RoleTotal(r).Get(cat),
					Measured: cells.RoleTotal(r).Get(cat),
				})
			}
		}
	}
	return Result{
		ID:          "table3",
		Title:       "Table 3: instruction subcategories (reg/mem/dev) for CMAM-based protocols",
		Text:        b.String(),
		Comparisons: comps,
	}, nil
}

// Figure6 reproduces the CMAM-vs-high-level-features comparison. The paper
// reports a 10-50% improvement for finite transfers (by message size) and
// ~70% for indefinite transfers; the comparisons record both totals, with
// the improvement in the rendered chart.
func Figure6() (Result, error) {
	type cell struct {
		label  string
		words  int
		stream bool
	}
	cases := []cell{
		{"finite sequence, 16 words", 16, false},
		{"finite sequence, 1024 words", 1024, false},
		{"indefinite sequence, 16 words", 16, true},
		{"indefinite sequence, 1024 words", 1024, true},
	}
	var pairs []report.BarPair
	var comps []Comparison
	for _, c := range cases {
		var cm, cr report.Cells
		var err error
		if c.stream {
			if cm, err = runStreamCMAM(c.words, 4, 1); err != nil {
				return Result{}, err
			}
			if cr, err = runStreamCR(c.words, 4); err != nil {
				return Result{}, err
			}
		} else {
			if cm, err = runFiniteCMAM(c.words, 4); err != nil {
				return Result{}, err
			}
			if cr, err = runFiniteCR(c.words, 4); err != nil {
				return Result{}, err
			}
		}
		pairs = append(pairs, report.BarPair{
			Label: c.label,
			CMAM:  cm.Total().Total(),
			CR:    cr.Total().Total(),
		})
		// The high-level-feature implementation must charge nothing to
		// in-order delivery or fault tolerance; its total equals base
		// plus the pointer-store buffer registration.
		comps = append(comps,
			Comparison{Name: c.label + " CR in-order+fault-tol", Paper: 0,
				Measured: cr[cost.Source][cost.InOrder].Total() +
					cr[cost.Destination][cost.InOrder].Total() +
					cr[cost.Source][cost.FaultTol].Total() +
					cr[cost.Destination][cost.FaultTol].Total()},
		)
	}
	var b strings.Builder
	b.WriteString(report.Comparison("Messaging layer costs: CMAM vs high-level network features", pairs))
	b.WriteString("\nPaper targets: finite improves 10-50% by message size; indefinite ~70%.\n")
	return Result{
		ID:          "figure6",
		Title:       "Figure 6: comparison of messaging layer costs",
		Text:        b.String(),
		Comparisons: comps,
	}, nil
}

// figure8Sizes is the paper's packet-size sweep range.
var figure8Sizes = []int{4, 8, 16, 32, 64, 128}

// Figure8 reproduces both halves of Figure 8: the generalized cost
// formulas (left) and the overhead-versus-packet-size sweep for a
// 1024-word message (right), cross-validating the analytic model against
// the simulator at every point.
func Figure8() (Result, error) {
	var b strings.Builder

	// Left: generalized formulas.
	s4 := cost.MustPaperSchedule(4)
	for _, proto := range []analytic.Protocol{analytic.ProtoFiniteCMAM, analytic.ProtoIndefiniteCMAM} {
		formula, err := analytic.Formula(proto, s4)
		if err != nil {
			return Result{}, err
		}
		b.WriteString(formula)
		b.WriteString("\n")
	}

	// Right: overhead fraction sweeps, analytic and simulated.
	const words = 1024
	var points []report.SeriesPoint
	var comps []Comparison
	for _, n := range figure8Sizes {
		sched, err := cost.NewPaperSchedule(n)
		if err != nil {
			return Result{}, err
		}
		prm := analytic.Params{
			MessageWords: words,
			OutOfOrder:   analytic.HalfOutOfOrder(sched, words),
			AckGroup:     1,
		}
		fin, err := analytic.FiniteCMAM(sched, prm)
		if err != nil {
			return Result{}, err
		}
		ind, err := analytic.IndefiniteCMAM(sched, prm)
		if err != nil {
			return Result{}, err
		}

		finSim, err := runFiniteCMAM(words, n)
		if err != nil {
			return Result{}, err
		}
		indSim, err := runStreamCMAM(words, n, 1)
		if err != nil {
			return Result{}, err
		}
		simFinOverhead := overhead(finSim)
		simIndOverhead := overhead(indSim)

		points = append(points, report.SeriesPoint{
			X: n,
			Values: []float64{
				ind.Overhead(), simIndOverhead,
				fin.Overhead(), simFinOverhead,
			},
		})
		comps = append(comps,
			Comparison{
				Name:     fmt.Sprintf("figure8 n=%d finite total (analytic vs simulated)", n),
				Paper:    fin.Total().Total(),
				Measured: finSim.Total().Total(),
			},
			Comparison{
				Name:     fmt.Sprintf("figure8 n=%d indefinite total (analytic vs simulated)", n),
				Paper:    ind.Total().Total(),
				Measured: indSim.Total().Total(),
			},
		)
	}
	b.WriteString(report.Series(
		"Messaging overhead fraction vs packet size, 1024-word message",
		"n", []string{"indef(model)", "indef(sim)", "finite(model)", "finite(sim)"},
		points))
	b.WriteString("\nPaper targets: finite overhead 9-11%; indefinite remains significant (~50-70%).\n")
	return Result{
		ID:          "figure8",
		Title:       "Figure 8: generalized cost model and overhead vs packet size",
		Text:        b.String(),
		Comparisons: comps,
	}, nil
}

// overhead computes the non-base fraction of a measured breakdown.
func overhead(c report.Cells) float64 {
	total := c.Total().Total()
	if total == 0 {
		return 0
	}
	base := c[cost.Source][cost.Base].Add(c[cost.Destination][cost.Base]).Total()
	return 1 - float64(base)/float64(total)
}

// All runs every paper experiment in order, serially.
func All() ([]Result, error) { return AllWith(1) }

// AllWith runs every paper experiment, fanning them across up to workers
// goroutines (values below 1 select GOMAXPROCS). Each experiment builds
// its own machines, networks, and gauges, so the runs are independent and
// deterministic; results are reassembled in the fixed experiment order, so
// the output is identical at any worker count. When an observer hub is
// installed the runs stay serial: the hub accumulates metrics and trace
// events in run order, and that order is part of the exported artifact.
func AllWith(workers int) ([]Result, error) {
	runners := []func() (Result, error){
		Table1, Table2, Table3, Figure6, Figure8,
	}
	if observer != nil {
		workers = 1
	}
	return parsweep.Map(parsweep.Workers(workers), len(runners),
		func(i int) (Result, error) { return runners[i]() })
}
