package experiments

import (
	"errors"
	"fmt"
	"strings"

	"msglayer/internal/analytic"
	"msglayer/internal/cmam"
	"msglayer/internal/collectives"
	"msglayer/internal/cost"
	"msglayer/internal/ctrlnet"
	"msglayer/internal/flitnet"
	"msglayer/internal/machine"
	"msglayer/internal/network"
	"msglayer/internal/protocols"
	"msglayer/internal/report"
	"msglayer/internal/topology"
)

// GroupAckAblation quantifies Section 3.2's group-acknowledgement
// discussion: larger groups amortize per-packet acknowledgements at the
// cost of holding source buffers longer; overhead falls from ~70% toward
// ~40-50% but never vanishes.
func GroupAckAblation() (Result, error) {
	const words = 1024
	groups := []int{1, 2, 4, 8, 16}
	var points []report.SeriesPoint
	var comps []Comparison
	s := cost.MustPaperSchedule(4)
	for _, g := range groups {
		cells, err := runStreamCMAM(words, 4, g)
		if err != nil {
			return Result{}, err
		}
		prm := analytic.Params{
			MessageWords: words,
			OutOfOrder:   analytic.HalfOutOfOrder(s, words),
			AckGroup:     g,
		}
		model, err := analytic.IndefiniteCMAM(s, prm)
		if err != nil {
			return Result{}, err
		}
		points = append(points, report.SeriesPoint{
			X:      g,
			Values: []float64{float64(cells.Total().Total()), overhead(cells), model.Overhead()},
		})
		comps = append(comps, Comparison{
			Name:     fmt.Sprintf("group acks g=%d total (analytic vs simulated)", g),
			Paper:    model.Total().Total(),
			Measured: cells.Total().Total(),
		})
	}
	text := report.Series(
		"Group acknowledgements: 1024-word indefinite stream, half out of order",
		"g", []string{"total-instr", "overhead(sim)", "overhead(model)"}, points) +
		"\nPaper target: overhead remains significant (~40-50%) even with group acks.\n"
	return Result{
		ID:          "ablation-groupack",
		Title:       "Ablation: acknowledgement group size (Section 3.2)",
		Text:        text,
		Comparisons: comps,
	}, nil
}

// OutOfOrderAblation isolates the cost of arbitrary delivery order: the
// same stream delivered in order (a single-path network) versus half out
// of order (the paper's multipath assumption).
func OutOfOrderAblation() (Result, error) {
	const words = 1024
	run := func(policy network.ReorderPolicy) (report.Cells, error) {
		net, err := network.NewCM5Net(network.CM5Config{Nodes: 2, Reorder: policy})
		if err != nil {
			return nil, err
		}
		m, err := twoNode(net)
		if err != nil {
			return nil, err
		}
		var got []network.Word
		src := protocols.MustNewStream(cmam.NewEndpoint(m.Node(0)), protocols.StreamConfig{})
		dst := protocols.MustNewStream(cmam.NewEndpoint(m.Node(1)), protocols.StreamConfig{
			OnDeliver: func(_ int, _ uint8, data []network.Word) { got = append(got, data...) },
		})
		conn := src.Open(1, 0)
		data := payload(words)
		for off := 0; off < words; off += 4 {
			if err := conn.Send(data[off : off+4]...); err != nil {
				return nil, err
			}
		}
		err = machine.Run(maxRounds,
			machine.StepFunc(func() (bool, error) { return conn.Idle(), src.Pump() }),
			machine.StepFunc(func() (bool, error) { return conn.Idle(), dst.Pump() }),
		)
		if err != nil {
			return nil, err
		}
		if err := verify(data, got); err != nil {
			return nil, err
		}
		return report.MergeRoles(m.Node(0).Gauge, m.Node(1).Gauge), nil
	}

	inOrder, err := run(network.InOrder())
	if err != nil {
		return Result{}, err
	}
	halfOOO, err := run(network.PairSwap())
	if err != nil {
		return Result{}, err
	}

	s := cost.MustPaperSchedule(4)
	model0, err := analytic.IndefiniteCMAM(s, analytic.Params{MessageWords: words, OutOfOrder: 0, AckGroup: 1})
	if err != nil {
		return Result{}, err
	}
	model50, err := analytic.IndefiniteCMAM(s, analytic.Params{MessageWords: words, OutOfOrder: 128, AckGroup: 1})
	if err != nil {
		return Result{}, err
	}

	inOrderCost := inOrder[cost.Destination][cost.InOrder].Total()
	oooCost := halfOOO[cost.Destination][cost.InOrder].Total()
	text := fmt.Sprintf(
		"Destination in-order delivery cost, 1024-word stream (256 packets):\n"+
			"  all packets in order:   %6d instructions\n"+
			"  half out of order:      %6d instructions (%.1fx)\n"+
			"Totals: %d (in order) vs %d (half out of order)\n",
		inOrderCost, oooCost, float64(oooCost)/float64(inOrderCost),
		inOrder.Total().Total(), halfOOO.Total().Total())
	return Result{
		ID:    "ablation-ooo",
		Title: "Ablation: cost of arbitrary delivery order",
		Text:  text,
		Comparisons: []Comparison{
			{Name: "in-order stream total (analytic vs simulated)",
				Paper: model0.Total().Total(), Measured: inOrder.Total().Total()},
			{Name: "half-out-of-order stream total (analytic vs simulated)",
				Paper: model50.Total().Total(), Measured: halfOOO.Total().Total()},
		},
	}, nil
}

// FaultRateAblation measures the software retransmission cost the CM-5
// substrate incurs as packets are lost, and shows the CR substrate absorbs
// the same fault rate in hardware with zero software fault-tolerance cost.
func FaultRateAblation() (Result, error) {
	const packets = 256
	rates := []int{0, 64, 32, 16} // one loss every N packets; 0 = none
	var points []report.SeriesPoint
	var comps []Comparison
	for _, every := range rates {
		var plan network.FaultPlan = network.NoFaults{}
		if every > 0 {
			plan = &network.EveryNth{N: every, What: network.Drop}
		}
		// The paper's half-out-of-order baseline, with losses layered on.
		net, err := network.NewCM5Net(network.CM5Config{
			Nodes:   2,
			Faults:  plan,
			Reorder: network.PairSwap(),
		})
		if err != nil {
			return Result{}, err
		}
		m, err := twoNode(net)
		if err != nil {
			return Result{}, err
		}
		var got int
		src := protocols.MustNewStream(cmam.NewEndpoint(m.Node(0)), protocols.StreamConfig{
			NackThreshold: 3, RetransmitAfter: 64,
		})
		dst := protocols.MustNewStream(cmam.NewEndpoint(m.Node(1)), protocols.StreamConfig{
			NackThreshold: 3,
			OnDeliver:     func(int, uint8, []network.Word) { got++ },
		})
		conn := src.Open(1, 0)
		for i := 0; i < packets; i++ {
			if err := conn.Send(1, 2, 3, 4); err != nil {
				return Result{}, err
			}
		}
		err = machine.Run(maxRounds,
			machine.StepFunc(func() (bool, error) { return conn.Idle() && got == packets, src.Pump() }),
			machine.StepFunc(func() (bool, error) { return conn.Idle() && got == packets, dst.Pump() }),
		)
		if err != nil {
			return Result{}, err
		}
		if got != packets {
			return Result{}, fmt.Errorf("fault ablation: delivered %d of %d", got, packets)
		}
		cells := report.MergeRoles(m.Node(0).Gauge, m.Node(1).Gauge)
		ft := cells[cost.Source][cost.FaultTol].Add(cells[cost.Destination][cost.FaultTol]).Total()
		points = append(points, report.SeriesPoint{
			X:      every,
			Values: []float64{float64(cells.Total().Total()), float64(ft)},
		})
		if every == 0 {
			comps = append(comps, Comparison{
				Name: "fault-free stream total", Paper: 29965, Measured: cells.Total().Total(),
			})
		}
	}
	text := report.Series(
		"Software cost vs loss rate (CM-5 substrate, 256-packet stream; x = packets per loss, 0 = lossless)",
		"lossN", []string{"total-instr", "fault-tol-instr"}, points) +
		"\nOn the CR substrate the same losses are hardware retries: software cost unchanged.\n"
	return Result{
		ID:          "ablation-faults",
		Title:       "Ablation: software cost of packet loss",
		Text:        text,
		Comparisons: comps,
	}, nil
}

// ImprovedNIAblation reproduces the Section 5 argument: an on-chip NI cuts
// device-access instructions, reducing total cost but *raising* the
// fraction spent on messaging-layer services.
func ImprovedNIAblation() (Result, error) {
	const words = 1024
	base := cost.MustPaperSchedule(4)
	improved := base.WithImprovedNI(4)

	run := func(sched *cost.Schedule) (report.Cells, error) {
		net, err := network.NewCM5Net(network.CM5Config{Nodes: 2, Reorder: network.PairSwap()})
		if err != nil {
			return nil, err
		}
		m, err := machine.New(net, sched)
		if err != nil {
			return nil, err
		}
		m.Node(0).SetRole(cost.Source)
		m.Node(1).SetRole(cost.Destination)
		var got int
		src := protocols.MustNewStream(cmam.NewEndpoint(m.Node(0)), protocols.StreamConfig{})
		dst := protocols.MustNewStream(cmam.NewEndpoint(m.Node(1)), protocols.StreamConfig{
			OnDeliver: func(int, uint8, []network.Word) { got++ },
		})
		conn := src.Open(1, 0)
		for i := 0; i < words/4; i++ {
			if err := conn.Send(1, 2, 3, 4); err != nil {
				return nil, err
			}
		}
		err = machine.Run(maxRounds,
			machine.StepFunc(func() (bool, error) { return conn.Idle(), src.Pump() }),
			machine.StepFunc(func() (bool, error) { return conn.Idle(), dst.Pump() }),
		)
		if err != nil {
			return nil, err
		}
		return report.MergeRoles(m.Node(0).Gauge, m.Node(1).Gauge), nil
	}

	baseCells, err := run(base)
	if err != nil {
		return Result{}, err
	}
	fastCells, err := run(improved)
	if err != nil {
		return Result{}, err
	}
	if fastCells.Total().Total() >= baseCells.Total().Total() {
		return Result{}, errors.New("improved NI did not reduce total cost")
	}
	text := fmt.Sprintf(
		"1024-word indefinite stream, half out of order:\n"+
			"  CM-5 NI:     total %6d, overhead fraction %.3f\n"+
			"  improved NI: total %6d, overhead fraction %.3f\n"+
			"The improved interface cuts the total but raises the overhead fraction —\n"+
			"the paper's point that NI improvements make the messaging layer matter more.\n",
		baseCells.Total().Total(), overhead(baseCells),
		fastCells.Total().Total(), overhead(fastCells))
	comps := []Comparison{
		{Name: "improved NI lowers total", Paper: 1,
			Measured: boolU64(fastCells.Total().Total() < baseCells.Total().Total())},
		{Name: "improved NI raises overhead fraction", Paper: 1,
			Measured: boolU64(overhead(fastCells) > overhead(baseCells))},
	}
	return Result{
		ID:          "ablation-improved-ni",
		Title:       "Ablation: improved network interface (Section 5)",
		Text:        text,
		Comparisons: comps,
	}, nil
}

// FlitLevelDemo exercises the mechanism-level simulator: the same hotspot
// workload routed deterministically (in order), adaptively (reordered),
// and under Compressionless Routing (in order, with kills and retries
// resolving contention).
func FlitLevelDemo() (Result, error) {
	flows := [][2]int{{3, 15}, {7, 15}, {11, 15}}
	const perFlow = 40

	run := func(mode flitnet.Mode) (inversions int, st flitnet.Stats, err error) {
		n := flitnet.MustNew(flitnet.Config{
			Topology:    topology.MustFatTree(4, 2),
			Mode:        mode,
			BufferFlits: 3,
			Shards:      flitShards,
		})
		defer n.Close()
		for seq := 0; seq < perFlow; seq++ {
			for _, fl := range flows {
				p := network.Packet{Src: fl[0], Dst: fl[1],
					Head: network.Word(seq), Data: []network.Word{1}}
				for {
					injErr := n.Inject(p)
					if injErr == nil {
						break
					}
					if !errors.Is(injErr, network.ErrBackpressure) {
						return 0, flitnet.Stats{}, injErr
					}
					n.Tick(1)
				}
			}
		}
		if !n.TickUntilQuiet(1_000_000) {
			return 0, flitnet.Stats{}, errors.New("flit network did not drain")
		}
		maxSeen := map[int]int{}
		for node := 0; node < n.Nodes(); node++ {
			for {
				p, ok := n.TryRecv(node)
				if !ok {
					break
				}
				if int(p.Head) < maxSeen[p.Src] {
					inversions++
				}
				if int(p.Head) > maxSeen[p.Src] {
					maxSeen[p.Src] = int(p.Head)
				}
			}
		}
		return inversions, n.FlitStats(), nil
	}

	var b strings.Builder
	var comps []Comparison
	for _, mode := range []flitnet.Mode{flitnet.Deterministic, flitnet.Adaptive, flitnet.CR} {
		inv, st, err := run(mode)
		if err != nil {
			return Result{}, fmt.Errorf("%s: %w", mode, err)
		}
		fmt.Fprintf(&b, "%-14s delivered=%d reordered=%d kills=%d retries=%d cycles=%d flit-hops=%d\n",
			mode, st.Delivered, inv, st.Kills, st.Retries, st.Cycles, st.FlitMoves)
		switch mode {
		case flitnet.Deterministic:
			comps = append(comps, Comparison{Name: "deterministic flit routing reorders", Paper: 0, Measured: uint64(inv)})
		case flitnet.Adaptive:
			comps = append(comps, Comparison{Name: "adaptive flit routing reorders (nonzero expected)", Paper: 1, Measured: boolU64(inv > 0)})
		case flitnet.CR:
			comps = append(comps, Comparison{Name: "CR flit routing reorders", Paper: 0, Measured: uint64(inv)})
		}
	}
	b.WriteString("\nAdaptive multipath is the hardware mechanism behind the arbitrary delivery\norder whose software cost Tables 2/3 quantify; CR restores order in hardware.\n")
	return Result{
		ID:          "flit-demo",
		Title:       "Mechanism demo: flit-level wormhole routing (hotspot traffic, 4-ary 2-tree)",
		Text:        b.String(),
		Comparisons: comps,
	}, nil
}

// Ablations runs the non-paper experiments.
func Ablations() ([]Result, error) {
	runners := []func() (Result, error){
		GroupAckAblation, OutOfOrderAblation, FaultRateAblation,
		ImprovedNIAblation, InterruptReceptionAblation, RoutingTradeoffAblation, CrossoverAblation,
		ControlNetworkAblation, FlitLevelDemo,
	}
	var out []Result
	for _, run := range runners {
		r, err := run()
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}

func boolU64(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

// InterruptReceptionAblation quantifies the paper's footnote 2: CMAM polls
// because interrupt-driven reception is expensive on the SPARC. With a
// 30-instruction trap cost per reception, the destination's cost of a
// 1024-word stream grows by one trap per data packet — enough to wipe out
// a large part of what better protocols save.
func InterruptReceptionAblation() (Result, error) {
	const words = 1024
	const trapCost = 30
	base := cost.MustPaperSchedule(4)
	intr := base.WithInterruptReception(trapCost)

	run := func(sched *cost.Schedule) (report.Cells, error) {
		net, err := network.NewCM5Net(network.CM5Config{Nodes: 2, Reorder: network.PairSwap()})
		if err != nil {
			return nil, err
		}
		m, err := machine.New(net, sched)
		if err != nil {
			return nil, err
		}
		m.Node(0).SetRole(cost.Source)
		m.Node(1).SetRole(cost.Destination)
		var got int
		src := protocols.MustNewStream(cmam.NewEndpoint(m.Node(0)), protocols.StreamConfig{})
		dst := protocols.MustNewStream(cmam.NewEndpoint(m.Node(1)), protocols.StreamConfig{
			OnDeliver: func(int, uint8, []network.Word) { got++ },
		})
		conn := src.Open(1, 0)
		for i := 0; i < words/4; i++ {
			if err := conn.Send(1, 2, 3, 4); err != nil {
				return nil, err
			}
		}
		err = machine.Run(maxRounds,
			machine.StepFunc(func() (bool, error) { return conn.Idle(), src.Pump() }),
			machine.StepFunc(func() (bool, error) { return conn.Idle(), dst.Pump() }),
		)
		if err != nil {
			return nil, err
		}
		if got != words/4 {
			return nil, fmt.Errorf("delivered %d of %d packets", got, words/4)
		}
		return report.MergeRoles(m.Node(0).Gauge, m.Node(1).Gauge), nil
	}

	polled, err := run(base)
	if err != nil {
		return Result{}, err
	}
	interrupted, err := run(intr)
	if err != nil {
		return Result{}, err
	}
	// Each reception at either node pays the trap: 256 data packets at
	// the destination plus 256 acknowledgements at the source.
	const p = words / 4
	want := polled.Total().Total() + 2*p*trapCost
	text := fmt.Sprintf(
		"1024-word indefinite stream, half out of order:\n"+
			"  polled reception:    %6d instructions\n"+
			"  interrupt reception: %6d instructions (+%d per packet/ack trap)\n"+
			"CMAM polls for exactly this reason (paper footnote 2).\n",
		polled.Total().Total(), interrupted.Total().Total(), trapCost)
	return Result{
		ID:    "ablation-interrupts",
		Title: "Ablation: polled vs interrupt-driven reception (footnote 2)",
		Text:  text,
		Comparisons: []Comparison{
			{Name: "interrupt reception total (closed form vs simulated)",
				Paper: want, Measured: interrupted.Total().Total()},
		},
	}, nil
}

// RoutingTradeoffAblation runs the Section 5 synthesis end to end: the same
// hotspot stream workload over the flit-level fat tree, routed
// deterministically and adaptively. Adaptive multipath improves the
// network's delivery latency under contention, but every packet it
// reorders costs the messaging layer reorder-buffering instructions — the
// "tension between optimizing routing performance and reducing software
// overhead" the paper concludes with.
func RoutingTradeoffAblation() (Result, error) {
	const dstNode = 15
	sources := []int{3, 7, 11}
	const packets = 40

	run := func(mode flitnet.Mode) (instr uint64, ooo uint64, mean float64, cycles uint64, err error) {
		net := flitnet.MustNew(flitnet.Config{
			Topology:    topology.MustFatTree(4, 2),
			Mode:        mode,
			BufferFlits: 3,
			InjectQueue: 4096,
			Shards:      flitShards,
		})
		defer net.Close()
		sched, err := cost.NewPaperSchedule(net.PacketWords())
		if err != nil {
			return 0, 0, 0, 0, err
		}
		m, err := machine.New(net, sched)
		if err != nil {
			return 0, 0, 0, 0, err
		}
		dst := m.Node(dstNode)
		dst.SetRole(cost.Destination)
		delivered := 0
		dstSvc := protocols.MustNewStream(cmam.NewEndpoint(dst), protocols.StreamConfig{
			NackThreshold: -1,
			OnDeliver:     func(int, uint8, []network.Word) { delivered++ },
		})
		var conns []*protocols.Conn
		var svcs []*protocols.Stream
		for _, s := range sources {
			node := m.Node(s)
			node.SetRole(cost.Source)
			svc := protocols.MustNewStream(cmam.NewEndpoint(node), protocols.StreamConfig{NackThreshold: -1})
			conn := svc.Open(dstNode, 0)
			for seq := 0; seq < packets; seq++ {
				if err := conn.Send(network.Word(seq)); err != nil {
					return 0, 0, 0, 0, err
				}
			}
			conns = append(conns, conn)
			svcs = append(svcs, svc)
		}
		done := func() bool {
			for _, c := range conns {
				if !c.Idle() {
					return false
				}
			}
			return true
		}
		steppers := []machine.Stepper{
			machine.StepFunc(func() (bool, error) { return done(), dstSvc.Pump() }),
			machine.StepFunc(func() (bool, error) {
				net.Tick(1)
				return done(), nil
			}),
		}
		for _, svc := range svcs {
			svc := svc
			steppers = append(steppers, machine.StepFunc(func() (bool, error) { return done(), svc.Pump() }))
		}
		if err := machine.Run(maxRounds, steppers...); err != nil {
			return 0, 0, 0, 0, err
		}
		if delivered != packets*len(sources) {
			return 0, 0, 0, 0, fmt.Errorf("delivered %d of %d", delivered, packets*len(sources))
		}
		st := net.FlitStats()
		return m.TotalGauge().Total().Total(), dst.Gauge.Events("stream.outoforder"),
			st.MeanLatency(), st.Cycles, nil
	}

	detInstr, detOOO, detLat, detCycles, err := run(flitnet.Deterministic)
	if err != nil {
		return Result{}, fmt.Errorf("deterministic: %w", err)
	}
	adInstr, adOOO, adLat, adCycles, err := run(flitnet.Adaptive)
	if err != nil {
		return Result{}, fmt.Errorf("adaptive: %w", err)
	}

	text := fmt.Sprintf(
		"Hotspot stream workload (3 flows x %d packets) on a 4-ary 2-tree, flit level:\n"+
			"  routing         instr     reordered   mean-latency(cyc)  run-cycles\n"+
			"  deterministic %7d   %9d   %17.1f  %10d\n"+
			"  adaptive      %7d   %9d   %17.1f  %10d\n"+
			"Adaptive multipath changes hardware delivery behavior, and every reordered\n"+
			"packet becomes messaging-layer buffering cost — the Section 5 trade-off.\n",
		packets, detInstr, detOOO, detLat, detCycles,
		adInstr, adOOO, adLat, adCycles)
	comps := []Comparison{
		{Name: "deterministic routing reorders", Paper: 0, Measured: detOOO},
		{Name: "adaptive routing reorders (nonzero expected)", Paper: 1, Measured: boolU64(adOOO > 0)},
		{Name: "adaptive reorder raises software cost", Paper: 1, Measured: boolU64(adInstr > detInstr)},
	}
	return Result{
		ID:          "ablation-routing-tradeoff",
		Title:       "Ablation: routing performance vs software overhead (Section 5)",
		Text:        text,
		Comparisons: comps,
	}, nil
}

// ControlNetworkAblation applies the paper's raise-the-hardware-level
// thesis to collective operations, as the real CM-5 did with its control
// network: a software all-reduce over active messages costs two Table 1
// round trips per non-root node, while a hardware combining tree costs
// each node a few device accesses. Both paths are executed and verified.
func ControlNetworkAblation() (Result, error) {
	sizes := []int{4, 16, 64}
	var points []report.SeriesPoint
	var comps []Comparison
	for _, nodes := range sizes {
		// Software path.
		swNet, err := network.NewCM5Net(network.CM5Config{Nodes: nodes})
		if err != nil {
			return Result{}, err
		}
		sched, err := cost.NewPaperSchedule(4)
		if err != nil {
			return Result{}, err
		}
		swM, err := machine.New(swNet, sched)
		if err != nil {
			return Result{}, err
		}
		swCost, err := runReduce(swM, nodes, nil)
		if err != nil {
			return Result{}, fmt.Errorf("software reduce (%d nodes): %w", nodes, err)
		}

		// Hardware path.
		hwNet, err := network.NewCM5Net(network.CM5Config{Nodes: nodes})
		if err != nil {
			return Result{}, err
		}
		hwM, err := machine.New(hwNet, sched)
		if err != nil {
			return Result{}, err
		}
		hwCost, err := runReduce(hwM, nodes, ctrlnet.MustNew(nodes, 4))
		if err != nil {
			return Result{}, fmt.Errorf("hardware reduce (%d nodes): %w", nodes, err)
		}

		points = append(points, report.SeriesPoint{
			X:      nodes,
			Values: []float64{float64(swCost), float64(hwCost), float64(swCost) / float64(hwCost)},
		})
		comps = append(comps,
			Comparison{Name: fmt.Sprintf("software all-reduce, %d nodes (closed form)", nodes),
				Paper: uint64(2 * (nodes - 1) * 47), Measured: swCost},
			Comparison{Name: fmt.Sprintf("hardware all-reduce, %d nodes (closed form)", nodes),
				Paper: uint64(nodes * 7), Measured: hwCost},
		)
	}
	text := report.Series(
		"All-reduce cost: software (active messages) vs hardware (combining tree)",
		"nodes", []string{"software-instr", "hardware-instr", "ratio"}, points) +
		"\nThe control network is the collective-operation analogue of Compressionless\nRouting: the service moves into the network and the software cost collapses.\n"
	return Result{
		ID:          "ablation-ctrlnet",
		Title:       "Ablation: hardware combining tree vs software collectives",
		Text:        text,
		Comparisons: comps,
	}, nil
}

// runReduce performs one all-reduce over the machine, software or (with a
// control network) hardware, and returns the machine-wide instruction cost.
func runReduce(m *machine.Machine, nodes int, cn *ctrlnet.Net) (uint64, error) {
	comms := make([]*collectives.Comm, nodes)
	for i := 0; i < nodes; i++ {
		c, err := collectives.New(cmam.NewEndpoint(m.Node(i)), nodes)
		if err != nil {
			return 0, err
		}
		if cn != nil {
			if err := c.AttachControlNetwork(cn); err != nil {
				return 0, err
			}
		}
		comms[i] = c
	}
	preds := make([]func() (network.Word, bool), nodes)
	var want network.Word
	for i, c := range comms {
		v := network.Word(i + 1)
		want += v
		var err error
		if cn != nil {
			preds[i], err = c.HWReduceBegin(v, ctrlnet.OpSum)
		} else {
			preds[i], err = c.ReduceBegin(v, collectives.Sum)
		}
		if err != nil {
			return 0, err
		}
	}
	done := func() bool {
		for _, p := range preds {
			if _, ok := p(); !ok {
				return false
			}
		}
		return true
	}
	steppers := make([]machine.Stepper, nodes)
	for i, c := range comms {
		steppers[i] = c.Stepper(done)
	}
	if err := machine.Run(maxRounds, steppers...); err != nil {
		return 0, err
	}
	for i, p := range preds {
		if got, _ := p(); got != want {
			return 0, fmt.Errorf("rank %d result %d, want %d", i, got, want)
		}
	}
	return m.TotalGauge().Total().Total(), nil
}

// CrossoverAblation locates where protocol-selection crossovers fall: the
// handshake-free indefinite protocol wins for tiny messages, and the
// finite protocol's fixed buffer-management and acknowledgement costs
// amortize within a few packets. The analytic crossover is verified by
// simulating both protocols at the bracketing sizes.
func CrossoverAblation() (Result, error) {
	s := cost.MustPaperSchedule(4)
	words, ok := analytic.CrossoverWords(analytic.ProtoFiniteCMAM, analytic.ProtoIndefiniteCMAM, s, 4096)
	if !ok {
		return Result{}, errors.New("crossover: none found")
	}

	var comps []Comparison
	var b strings.Builder
	fmt.Fprintf(&b, "Finite vs indefinite protocol totals around the crossover (n = 4):\n")
	fmt.Fprintf(&b, "%8s %14s %18s %10s\n", "words", "finite-instr", "indefinite-instr", "winner")
	for _, w := range []int{4, words - 4, words, 64, 1024} {
		if w < 4 {
			continue
		}
		fin, err := runFiniteCMAM(w, 4)
		if err != nil {
			return Result{}, err
		}
		ind, err := runStreamCMAM(w, 4, 1)
		if err != nil {
			return Result{}, err
		}
		fTot, iTot := fin.Total().Total(), ind.Total().Total()
		winner := "finite"
		if iTot < fTot {
			winner = "indefinite"
		}
		fmt.Fprintf(&b, "%8d %14d %18d %10s\n", w, fTot, iTot, winner)

		prm := analytic.Params{MessageWords: w, OutOfOrder: analytic.HalfOutOfOrder(s, w), AckGroup: 1}
		mf, err := analytic.FiniteCMAM(s, prm)
		if err != nil {
			return Result{}, err
		}
		comps = append(comps, Comparison{
			Name:     fmt.Sprintf("crossover %dw finite (analytic vs simulated)", w),
			Paper:    mf.Total().Total(),
			Measured: fTot,
		})
	}
	fmt.Fprintf(&b, "\nCrossover: the finite protocol becomes cheaper at %d words (%d packets).\n",
		words, words/4)
	comps = append(comps, Comparison{
		Name: "crossover within (1, 4] packets", Paper: 1,
		Measured: boolU64(words > 4 && words <= 16),
	})
	return Result{
		ID:          "ablation-crossover",
		Title:       "Ablation: protocol-selection crossover (finite vs indefinite)",
		Text:        b.String(),
		Comparisons: comps,
	}, nil
}
