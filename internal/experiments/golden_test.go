package experiments

import (
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite golden files")

// golden compares rendered experiment text against a checked-in golden
// file, guarding the paper-layout rendering end to end. Regenerate with
// go test ./internal/experiments -run Golden -update-golden.
func golden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name+".golden")
	if *updateGolden {
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden %s (run with -update-golden): %v", path, err)
	}
	if got != string(want) {
		t.Errorf("%s: rendered output diverged from golden file.\n--- got ---\n%s\n--- want ---\n%s",
			name, got, want)
	}
}

func TestGoldenTable1(t *testing.T) {
	r, err := Table1()
	if err != nil {
		t.Fatal(err)
	}
	golden(t, "table1", r.Text)
}

func TestGoldenTable2(t *testing.T) {
	r, err := Table2()
	if err != nil {
		t.Fatal(err)
	}
	golden(t, "table2", r.Text)
}

func TestGoldenTable3(t *testing.T) {
	r, err := Table3()
	if err != nil {
		t.Fatal(err)
	}
	golden(t, "table3", r.Text)
}

func TestGoldenFigure6(t *testing.T) {
	r, err := Figure6()
	if err != nil {
		t.Fatal(err)
	}
	golden(t, "figure6", r.Text)
}

func TestGoldenFigure8(t *testing.T) {
	r, err := Figure8()
	if err != nil {
		t.Fatal(err)
	}
	golden(t, "figure8", r.Text)
}
