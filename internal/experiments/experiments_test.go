package experiments

import (
	"reflect"
	"strings"
	"testing"
)

// requireAllMatch asserts every comparison row matched the paper value.
func requireAllMatch(t *testing.T, r Result) {
	t.Helper()
	if len(r.Comparisons) == 0 {
		t.Fatalf("%s produced no comparisons", r.ID)
	}
	for _, c := range r.Comparisons {
		if !c.Match() {
			t.Errorf("%s: %s = %d, paper %d", r.ID, c.Name, c.Measured, c.Paper)
		}
	}
}

func TestTable1Experiment(t *testing.T) {
	r, err := Table1()
	if err != nil {
		t.Fatal(err)
	}
	requireAllMatch(t, r)
	for _, want := range []string{"Call/Return", "Total", "20", "27", "weighted"} {
		if !strings.Contains(r.Text, want) {
			t.Errorf("Table1 text missing %q", want)
		}
	}
}

func TestTable2Experiment(t *testing.T) {
	r, err := Table2()
	if err != nil {
		t.Fatal(err)
	}
	requireAllMatch(t, r)
	// All four panels and the headline totals appear.
	for _, want := range []string{
		"Finite sequence, multi-packet delivery (16 words)",
		"Indefinite sequence, multi-packet delivery (1024 words)",
		"11737", "29965", "481",
	} {
		if !strings.Contains(r.Text, want) {
			t.Errorf("Table2 text missing %q", want)
		}
	}
	if len(r.Comparisons) != 12 {
		t.Errorf("Table2 comparisons = %d, want 12", len(r.Comparisons))
	}
}

func TestTable3Experiment(t *testing.T) {
	r, err := Table3()
	if err != nil {
		t.Fatal(err)
	}
	requireAllMatch(t, r)
	for _, want := range []string{"reg", "mem", "dev", "3842", "1280", "weighted cycles"} {
		if !strings.Contains(r.Text, want) {
			t.Errorf("Table3 text missing %q", want)
		}
	}
	// 4 panels x 2 roles x 3 categories.
	if len(r.Comparisons) != 24 {
		t.Errorf("Table3 comparisons = %d, want 24", len(r.Comparisons))
	}
}

func TestFigure6Experiment(t *testing.T) {
	r, err := Figure6()
	if err != nil {
		t.Fatal(err)
	}
	requireAllMatch(t, r)
	// The rendered chart carries the improvement percentages; the paper's
	// bands are ~53%/~15% finite and ~70%/~72% indefinite.
	for _, want := range []string{"-53%", "-15%", "-70%", "-72%", "CMAM", "CR"} {
		if !strings.Contains(r.Text, want) {
			t.Errorf("Figure6 text missing %q:\n%s", want, r.Text)
		}
	}
}

func TestFigure8Experiment(t *testing.T) {
	r, err := Figure8()
	if err != nil {
		t.Fatal(err)
	}
	// Analytic model and simulation agree exactly at every sweep point.
	requireAllMatch(t, r)
	for _, want := range []string{"p*{reg:15 mem:2 dev:5}", "128", "indef(sim)", "finite(model)"} {
		if !strings.Contains(r.Text, want) {
			t.Errorf("Figure8 text missing %q", want)
		}
	}
}

func TestAllRunsEveryPaperExperiment(t *testing.T) {
	results, err := All()
	if err != nil {
		t.Fatal(err)
	}
	ids := map[string]bool{}
	for _, r := range results {
		ids[r.ID] = true
	}
	for _, want := range []string{"table1", "table2", "table3", "figure6", "figure8"} {
		if !ids[want] {
			t.Errorf("All() missing %s", want)
		}
	}
}

func TestAllWithParallelMatchesSerial(t *testing.T) {
	serial, err := AllWith(1)
	if err != nil {
		t.Fatal(err)
	}
	par, err := AllWith(8)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, par) {
		t.Fatalf("parallel experiment results differ from serial:\nserial: %+v\nparallel: %+v", serial, par)
	}
}

func TestGroupAckAblation(t *testing.T) {
	r, err := GroupAckAblation()
	if err != nil {
		t.Fatal(err)
	}
	requireAllMatch(t, r)
	if !strings.Contains(r.Text, "g=") && !strings.Contains(r.Text, "overhead") {
		t.Errorf("ablation text thin:\n%s", r.Text)
	}
}

func TestOutOfOrderAblation(t *testing.T) {
	r, err := OutOfOrderAblation()
	if err != nil {
		t.Fatal(err)
	}
	requireAllMatch(t, r)
	if !strings.Contains(r.Text, "in order") {
		t.Errorf("ablation text:\n%s", r.Text)
	}
}

func TestFaultRateAblation(t *testing.T) {
	r, err := FaultRateAblation()
	if err != nil {
		t.Fatal(err)
	}
	requireAllMatch(t, r)
}

func TestImprovedNIAblation(t *testing.T) {
	r, err := ImprovedNIAblation()
	if err != nil {
		t.Fatal(err)
	}
	requireAllMatch(t, r)
}

func TestFlitLevelDemo(t *testing.T) {
	r, err := FlitLevelDemo()
	if err != nil {
		t.Fatal(err)
	}
	requireAllMatch(t, r)
	for _, want := range []string{"deterministic", "adaptive", "cr"} {
		if !strings.Contains(r.Text, want) {
			t.Errorf("demo text missing %q:\n%s", want, r.Text)
		}
	}
}

func TestAblationsRunAll(t *testing.T) {
	results, err := Ablations()
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 9 {
		t.Errorf("Ablations = %d results, want 9", len(results))
	}
}

func TestInterruptReceptionAblation(t *testing.T) {
	r, err := InterruptReceptionAblation()
	if err != nil {
		t.Fatal(err)
	}
	requireAllMatch(t, r)
}

func TestRoutingTradeoffAblation(t *testing.T) {
	r, err := RoutingTradeoffAblation()
	if err != nil {
		t.Fatal(err)
	}
	requireAllMatch(t, r)
	if !strings.Contains(r.Text, "deterministic") || !strings.Contains(r.Text, "adaptive") {
		t.Errorf("text:\n%s", r.Text)
	}
}

func TestControlNetworkAblation(t *testing.T) {
	r, err := ControlNetworkAblation()
	if err != nil {
		t.Fatal(err)
	}
	requireAllMatch(t, r)
}

func TestCrossoverAblation(t *testing.T) {
	r, err := CrossoverAblation()
	if err != nil {
		t.Fatal(err)
	}
	requireAllMatch(t, r)
	if !strings.Contains(r.Text, "Crossover") {
		t.Errorf("text:\n%s", r.Text)
	}
}
