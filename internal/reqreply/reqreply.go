// Package reqreply implements a deadlock-safe request/reply (RPC) service
// on active messages, demonstrating the deadlock/overflow-safety
// requirement of the paper's Section 2.1 and its footnote 6: with finite
// network buffering, a round-trip protocol on a single network can
// deadlock — every node's send is blocked on buffer space that only
// draining replies could free, but replies are stuck behind the requests.
// CMAM's answer on the CM-5 is structural: requests travel on one data
// network and replies on the other, so a handler can always emit its reply.
//
// The service runs over both machine shapes. On a dual-network machine
// (machine.NewDual) it is safe under any load; on a single-network machine
// with bounded buffering the package's tests exhibit the deadlock the
// paper warns about.
package reqreply

import (
	"errors"
	"fmt"

	"msglayer/internal/cmam"
	"msglayer/internal/cost"
	"msglayer/internal/network"
)

// Handler identifiers; applications sharing the endpoint must avoid them.
const (
	hRequest cmam.HandlerID = 40
	hReply   cmam.HandlerID = 41
)

// Server computes a reply payload from a request payload. It runs at the
// serving node inside the request handler.
type Server func(src int, args []network.Word) []network.Word

// Service is one node's request/reply engine.
type Service struct {
	ep      *cmam.Endpoint
	serve   Server
	nextID  uint32
	pending map[uint32]*Call
	err     error
}

// Call is one outstanding request.
type Call struct {
	id    uint32
	reply []network.Word
	done  bool
}

// Done reports completion.
func (c *Call) Done() bool { return c.done }

// Reply returns the reply payload; valid once Done.
func (c *Call) Reply() []network.Word { return c.reply }

// New installs the service on an endpoint. The server function may be nil
// on client-only nodes.
func New(ep *cmam.Endpoint, serve Server) *Service {
	s := &Service{ep: ep, serve: serve, pending: make(map[uint32]*Call)}
	ep.Register(hRequest, s.handleRequest)
	ep.Register(hReply, s.handleReply)
	return s
}

// Request issues a call carrying up to two payload words (the other two
// words of the four-word active message carry the call id and the payload
// length). The request is a Table 1 single-packet send.
func (s *Service) Request(dst int, args ...network.Word) (*Call, error) {
	if len(args) > 2 {
		return nil, fmt.Errorf("reqreply: %d payload words exceed the 2-word request format", len(args))
	}
	id := s.nextID
	s.nextID++
	call := &Call{id: id}
	s.pending[id] = call
	msg := append([]network.Word{network.Word(id), network.Word(len(args))}, args...)
	if err := s.ep.AM4(dst, hRequest, msg...); err != nil {
		delete(s.pending, id)
		return nil, err
	}
	s.ep.Node().Event("reqreply.request")
	return call, nil
}

// Pump polls the endpoint and surfaces deferred handler errors.
func (s *Service) Pump() error {
	if _, err := s.ep.Poll(0); err != nil {
		return err
	}
	if s.err != nil {
		err := s.err
		s.err = nil
		return err
	}
	return nil
}

// handleRequest serves a call and replies — on the reply network when the
// node has one, which is what makes this safe under full request buffers.
func (s *Service) handleRequest(src int, args []network.Word) {
	node := s.ep.Node()
	node.Charge(cost.Base, node.Sched.RecvSingle)
	if len(args) < 2 {
		s.err = fmt.Errorf("reqreply: malformed request from node %d", src)
		return
	}
	if s.serve == nil {
		s.err = errors.New("reqreply: request received by client-only node")
		return
	}
	id := args[0]
	n := int(args[1])
	if n < 0 || 2+n > len(args) {
		s.err = fmt.Errorf("reqreply: request from node %d claims %d payload words", src, n)
		return
	}
	result := s.serve(src, args[2:2+n])
	if len(result) > 2 {
		s.err = fmt.Errorf("reqreply: server produced %d reply words (max 2)", len(result))
		return
	}
	msg := append([]network.Word{id, network.Word(len(result))}, result...)
	if err := s.ep.ReplyAM4(src, hReply, msg...); err != nil {
		// On a single bounded network this is where the deadlock bites:
		// the reply cannot enter. Surface it rather than spin.
		s.err = fmt.Errorf("reqreply: reply to node %d failed: %w", src, err)
		return
	}
	node.Event("reqreply.replied")
}

// handleReply completes the matching call.
func (s *Service) handleReply(src int, args []network.Word) {
	node := s.ep.Node()
	node.Charge(cost.Base, node.Sched.RecvSingle)
	if len(args) < 2 {
		s.err = fmt.Errorf("reqreply: malformed reply from node %d", src)
		return
	}
	call, ok := s.pending[uint32(args[0])]
	if !ok {
		s.err = fmt.Errorf("reqreply: reply for unknown call %d from node %d", args[0], src)
		return
	}
	n := int(args[1])
	if n < 0 || 2+n > len(args) {
		s.err = fmt.Errorf("reqreply: reply from node %d claims %d payload words", src, n)
		return
	}
	call.reply = append([]network.Word(nil), args[2:2+n]...)
	call.done = true
	delete(s.pending, call.id)
	node.Event("reqreply.completed")
}
