package reqreply

import (
	"errors"
	"strings"
	"testing"

	"msglayer/internal/cmam"
	"msglayer/internal/cost"
	"msglayer/internal/machine"
	"msglayer/internal/network"
)

// doubler is a server returning twice its first argument.
func doubler(src int, args []network.Word) []network.Word {
	if len(args) == 0 {
		return nil
	}
	return []network.Word{args[0] * 2}
}

// dualMachine builds a machine with separate request and reply networks,
// both with the given per-destination capacity.
func dualMachine(t *testing.T, nodes, capacity int) *machine.Machine {
	t.Helper()
	req := network.MustCM5Net(network.CM5Config{Nodes: nodes, Capacity: capacity})
	rep := network.MustCM5Net(network.CM5Config{Nodes: nodes, Capacity: capacity})
	m, err := machine.NewDual(req, rep, cost.MustPaperSchedule(4))
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestDualConstructorValidates(t *testing.T) {
	req := network.MustCM5Net(network.CM5Config{Nodes: 2})
	if _, err := machine.NewDual(req, nil, cost.MustPaperSchedule(4)); err == nil {
		t.Error("accepted nil reply network")
	}
	repWrongNodes := network.MustCM5Net(network.CM5Config{Nodes: 3})
	if _, err := machine.NewDual(req, repWrongNodes, cost.MustPaperSchedule(4)); err == nil {
		t.Error("accepted node-count mismatch")
	}
	repWrongSize := network.MustCM5Net(network.CM5Config{Nodes: 2, PacketWords: 8})
	if _, err := machine.NewDual(req, repWrongSize, cost.MustPaperSchedule(4)); err == nil {
		t.Error("accepted packet-size mismatch")
	}
}

func TestBasicRPC(t *testing.T) {
	m := dualMachine(t, 2, 0)
	server := New(cmam.NewEndpoint(m.Node(1)), doubler)
	client := New(cmam.NewEndpoint(m.Node(0)), nil)

	call, err := client.Request(1, 21)
	if err != nil {
		t.Fatal(err)
	}
	err = machine.Run(1000,
		machine.StepFunc(func() (bool, error) { return call.Done(), client.Pump() }),
		machine.StepFunc(func() (bool, error) { return call.Done(), server.Pump() }),
	)
	if err != nil {
		t.Fatal(err)
	}
	if got := call.Reply(); len(got) != 1 || got[0] != 42 {
		t.Errorf("reply = %v, want [42]", got)
	}
}

func TestRequestValidation(t *testing.T) {
	m := dualMachine(t, 2, 0)
	client := New(cmam.NewEndpoint(m.Node(0)), nil)
	if _, err := client.Request(1, 1, 2, 3); err == nil {
		t.Error("accepted 3 payload words")
	}
}

func TestClientOnlyNodeRejectsRequests(t *testing.T) {
	m := dualMachine(t, 2, 0)
	clientA := New(cmam.NewEndpoint(m.Node(0)), nil)
	clientB := New(cmam.NewEndpoint(m.Node(1)), nil)
	if _, err := clientA.Request(1, 5); err != nil {
		t.Fatal(err)
	}
	if err := clientB.Pump(); err == nil {
		t.Error("client-only node served a request")
	}
}

func TestServerErrorsSurface(t *testing.T) {
	m := dualMachine(t, 2, 0)
	bad := New(cmam.NewEndpoint(m.Node(1)), func(int, []network.Word) []network.Word {
		return make([]network.Word, 3) // too many reply words
	})
	client := New(cmam.NewEndpoint(m.Node(0)), nil)
	if _, err := client.Request(1, 1); err != nil {
		t.Fatal(err)
	}
	if err := bad.Pump(); err == nil || !strings.Contains(err.Error(), "reply words") {
		t.Errorf("Pump = %v", err)
	}
}

// The paper's footnote 6, demonstrated. Clients bound their outstanding
// requests to the buffer space they reserve for replies (window = network
// capacity), the discipline that makes request/reply overflow-safe — but
// only if replies have that space to themselves. On the CM-5's two-network
// arrangement they do, and an all-to-all request flood completes. On a
// single bounded network, requests from third parties occupy the very
// buffers the replies need, and a handler's reply emission fails — the
// deadlock/overflow hazard of Section 2.1.
func TestDeadlockAvoidanceWithTwoNetworks(t *testing.T) {
	const nodes = 4
	const callsPerPair = 3
	const capacity = 1 // per-destination buffering, both networks
	const window = 1   // outstanding calls per client = reserved reply space

	flood := func(m *machine.Machine) error {
		services := make([]*Service, nodes)
		for i := 0; i < nodes; i++ {
			services[i] = New(cmam.NewEndpoint(m.Node(i)), doubler)
		}
		type req struct{ dst, val int }
		queues := make([][]req, nodes)
		for round := 0; round < callsPerPair; round++ {
			for src := 0; src < nodes; src++ {
				for dst := 0; dst < nodes; dst++ {
					if src != dst {
						queues[src] = append(queues[src], req{dst, round})
					}
				}
			}
		}
		outstanding := make([][]*Call, nodes)
		var calls []*Call
		done := func() bool {
			for _, q := range queues {
				if len(q) > 0 {
					return false
				}
			}
			for _, c := range calls {
				if !c.Done() {
					return false
				}
			}
			return true
		}
		steppers := make([]machine.Stepper, nodes)
		for i, s := range services {
			i, s := i, s
			steppers[i] = machine.StepFunc(func() (bool, error) {
				if err := s.Pump(); err != nil {
					return false, err
				}
				// Retire completed calls from the window.
				live := outstanding[i][:0]
				for _, c := range outstanding[i] {
					if !c.Done() {
						live = append(live, c)
					}
				}
				outstanding[i] = live
				// Issue the next call only within the reply-space window.
				if len(queues[i]) > 0 && len(outstanding[i]) < window {
					r := queues[i][0]
					call, err := s.Request(r.dst, network.Word(r.val))
					switch {
					case errors.Is(err, network.ErrBackpressure):
						// request network full; try again next round
					case err != nil:
						return false, err
					default:
						queues[i] = queues[i][1:]
						calls = append(calls, call)
						outstanding[i] = append(outstanding[i], call)
					}
				}
				return done(), nil
			})
		}
		return machine.Run(10000, steppers...)
	}

	// Two networks: the flood completes.
	req := network.MustCM5Net(network.CM5Config{Nodes: nodes, Capacity: capacity})
	rep := network.MustCM5Net(network.CM5Config{Nodes: nodes, Capacity: capacity})
	dual, err := machine.NewDual(req, rep, cost.MustPaperSchedule(4))
	if err != nil {
		t.Fatal(err)
	}
	if err := flood(dual); err != nil {
		t.Fatalf("dual-network flood failed: %v", err)
	}

	// One network: the same flood wedges — a reply emission fails against
	// buffers full of other nodes' requests, or the machine stalls.
	single := machine.MustNew(
		network.MustCM5Net(network.CM5Config{Nodes: nodes, Capacity: capacity}),
		cost.MustPaperSchedule(4))
	err = flood(single)
	if err == nil {
		t.Fatal("single bounded network flood unexpectedly completed")
	}
	if !errors.Is(err, machine.ErrStalled) && !strings.Contains(err.Error(), "reply") {
		t.Errorf("unexpected failure mode: %v", err)
	}
}

// Request/reply costs are Table 1 costs composed: each completed call is
// two single-packet round trips (request out + poll, reply out + poll).
func TestRPCCostClosedForm(t *testing.T) {
	m := dualMachine(t, 2, 0)
	server := New(cmam.NewEndpoint(m.Node(1)), doubler)
	client := New(cmam.NewEndpoint(m.Node(0)), nil)
	const calls = 7
	var done []*Call
	for i := 0; i < calls; i++ {
		c, err := client.Request(1, network.Word(i))
		if err != nil {
			t.Fatal(err)
		}
		done = append(done, c)
	}
	allDone := func() bool {
		for _, c := range done {
			if !c.Done() {
				return false
			}
		}
		return true
	}
	err := machine.Run(1000,
		machine.StepFunc(func() (bool, error) { return allDone(), client.Pump() }),
		machine.StepFunc(func() (bool, error) { return allDone(), server.Pump() }),
	)
	if err != nil {
		t.Fatal(err)
	}
	want := uint64(calls * 2 * 47)
	if got := m.TotalGauge().Total().Total(); got != want {
		t.Errorf("total = %d, want %d", got, want)
	}
}

// ReplyAM4 falls back to the primary NI on single-network machines.
func TestReplyFallbackSingleNetwork(t *testing.T) {
	m := machine.MustNew(
		network.MustCM5Net(network.CM5Config{Nodes: 2}),
		cost.MustPaperSchedule(4))
	server := New(cmam.NewEndpoint(m.Node(1)), doubler)
	client := New(cmam.NewEndpoint(m.Node(0)), nil)
	call, err := client.Request(1, 4)
	if err != nil {
		t.Fatal(err)
	}
	err = machine.Run(1000,
		machine.StepFunc(func() (bool, error) { return call.Done(), client.Pump() }),
		machine.StepFunc(func() (bool, error) { return call.Done(), server.Pump() }),
	)
	if err != nil {
		t.Fatal(err)
	}
	if got := call.Reply(); len(got) != 1 || got[0] != 8 {
		t.Errorf("reply = %v", got)
	}
}
