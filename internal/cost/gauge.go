package cost

import (
	"fmt"
	"sort"
	"strings"
)

// Gauge accumulates dynamic instruction counts along the paper's three axes
// (role × feature × category) together with Table 1 subcategory detail
// (role × sub × category). It is the software analogue of the authors'
// assembly-level instruction counting.
//
// A Gauge is not safe for concurrent use; the simulation harness is
// single-threaded and deterministic by design.
type Gauge struct {
	counts [NumRoles][NumFeatures][NumCategories]uint64
	subs   [NumRoles][NumSubs][NumCategories]uint64
	events map[string]uint64
}

// NewGauge returns an empty gauge.
func NewGauge() *Gauge {
	return &Gauge{events: make(map[string]uint64)}
}

// Charge records a bundle of instruction items against (role, feature).
func (g *Gauge) Charge(r Role, f Feature, items Items) {
	for _, it := range items {
		g.counts[r][f][it.Cat] += it.N
		g.subs[r][it.Sub][it.Cat] += it.N
	}
}

// ChargeVec records a bare per-category vector against (role, feature),
// attributing it to the Bookkeeping subcategory. Prefer Charge with explicit
// subcategories for anything that appears in Table 1.
func (g *Gauge) ChargeVec(r Role, f Feature, v Vec) {
	g.counts[r][f][Reg] += v.Reg
	g.counts[r][f][Mem] += v.Mem
	g.counts[r][f][Dev] += v.Dev
	g.subs[r][SubBookkeeping][Reg] += v.Reg
	g.subs[r][SubBookkeeping][Mem] += v.Mem
	g.subs[r][SubBookkeeping][Dev] += v.Dev
}

// CountEvent records that a named protocol event occurred (packet sent, ack
// received, out-of-order arrival, ...). Events do not contribute to
// instruction counts; they let tests and reports explain where counts came
// from.
func (g *Gauge) CountEvent(name string) { g.events[name]++ }

// Events returns the number of occurrences of a named event.
func (g *Gauge) Events(name string) uint64 { return g.events[name] }

// EventNames returns all recorded event names in sorted order.
func (g *Gauge) EventNames() []string {
	names := make([]string, 0, len(g.events))
	for n := range g.events {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Cell returns the per-category vector for one (role, feature) cell.
func (g *Gauge) Cell(r Role, f Feature) Vec {
	c := g.counts[r][f]
	return Vec{Reg: c[Reg], Mem: c[Mem], Dev: c[Dev]}
}

// RoleTotal returns the per-category vector summed over all features for one
// role — a Table 2 column total.
func (g *Gauge) RoleTotal(r Role) Vec {
	var v Vec
	for _, f := range Features() {
		v = v.Add(g.Cell(r, f))
	}
	return v
}

// FeatureTotal returns the per-category vector summed over both roles for
// one feature — a Table 2 row total.
func (g *Gauge) FeatureTotal(f Feature) Vec {
	return g.Cell(Source, f).Add(g.Cell(Destination, f))
}

// Total returns the per-category vector summed over everything.
func (g *Gauge) Total() Vec {
	var v Vec
	for _, r := range Roles() {
		v = v.Add(g.RoleTotal(r))
	}
	return v
}

// SubCell returns the per-category vector for one (role, subcategory) cell —
// a Table 1 row.
func (g *Gauge) SubCell(r Role, s Sub) Vec {
	c := g.subs[r][s]
	return Vec{Reg: c[Reg], Mem: c[Mem], Dev: c[Dev]}
}

// Add accumulates counts and events from another gauge.
func (g *Gauge) Add(other *Gauge) {
	for r := 0; r < NumRoles; r++ {
		for f := 0; f < NumFeatures; f++ {
			for c := 0; c < NumCategories; c++ {
				g.counts[r][f][c] += other.counts[r][f][c]
			}
		}
		for s := 0; s < NumSubs; s++ {
			for c := 0; c < NumCategories; c++ {
				g.subs[r][s][c] += other.subs[r][s][c]
			}
		}
	}
	for n, k := range other.events {
		g.events[n] += k
	}
}

// Reset zeroes the gauge.
func (g *Gauge) Reset() {
	*g = Gauge{events: make(map[string]uint64)}
}

// Snapshot returns a deep copy of the gauge.
func (g *Gauge) Snapshot() *Gauge {
	c := NewGauge()
	c.Add(g)
	return c
}

// Diff returns a new gauge holding g minus a previous snapshot. It panics if
// any cell would underflow (snapshot not taken from this gauge's past).
func (g *Gauge) Diff(prev *Gauge) *Gauge {
	d := NewGauge()
	for r := 0; r < NumRoles; r++ {
		for f := 0; f < NumFeatures; f++ {
			for c := 0; c < NumCategories; c++ {
				a, b := g.counts[r][f][c], prev.counts[r][f][c]
				if b > a {
					panic("cost: Diff underflow")
				}
				d.counts[r][f][c] = a - b
			}
		}
		for s := 0; s < NumSubs; s++ {
			for c := 0; c < NumCategories; c++ {
				a, b := g.subs[r][s][c], prev.subs[r][s][c]
				if b > a {
					panic("cost: Diff underflow")
				}
				d.subs[r][s][c] = a - b
			}
		}
	}
	for n, k := range g.events {
		if p := prev.events[n]; k > p {
			d.events[n] = k - p
		}
	}
	return d
}

// Weighted returns the model-weighted cycle estimate of the whole gauge.
func (g *Gauge) Weighted(m Model) uint64 { return m.Cost(g.Total()) }

// String renders a compact feature × role summary, mainly for debugging and
// error messages; reports use internal/report for paper-layout tables.
func (g *Gauge) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-14s %10s %12s %10s\n", "Feature", "Source", "Destination", "Total")
	for _, f := range Features() {
		src := g.Cell(Source, f).Total()
		dst := g.Cell(Destination, f).Total()
		fmt.Fprintf(&b, "%-14s %10d %12d %10d\n", f, src, dst, src+dst)
	}
	src := g.RoleTotal(Source).Total()
	dst := g.RoleTotal(Destination).Total()
	fmt.Fprintf(&b, "%-14s %10d %12d %10d", "Total", src, dst, src+dst)
	return b.String()
}
