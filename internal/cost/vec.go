package cost

import "fmt"

// Vec is an instruction count broken down by category. It is the unit in
// which Appendix A reports costs and in which the calibration schedule
// expresses per-event charges.
type Vec struct {
	Reg uint64
	Mem uint64
	Dev uint64
}

// V constructs a Vec; a convenience for schedule literals.
func V(reg, mem, dev uint64) Vec { return Vec{Reg: reg, Mem: mem, Dev: dev} }

// Total returns the unit-cost total (every instruction costs 1), the simple
// model used throughout the body of the paper.
func (v Vec) Total() uint64 { return v.Reg + v.Mem + v.Dev }

// Add returns the element-wise sum of v and w.
func (v Vec) Add(w Vec) Vec {
	return Vec{Reg: v.Reg + w.Reg, Mem: v.Mem + w.Mem, Dev: v.Dev + w.Dev}
}

// Sub returns the element-wise difference v - w. It panics if any component
// would underflow, which in this codebase always indicates an accounting bug.
func (v Vec) Sub(w Vec) Vec {
	if w.Reg > v.Reg || w.Mem > v.Mem || w.Dev > v.Dev {
		panic(fmt.Sprintf("cost: Vec underflow: %v - %v", v, w))
	}
	return Vec{Reg: v.Reg - w.Reg, Mem: v.Mem - w.Mem, Dev: v.Dev - w.Dev}
}

// Scale returns v with every component multiplied by k.
func (v Vec) Scale(k uint64) Vec {
	return Vec{Reg: v.Reg * k, Mem: v.Mem * k, Dev: v.Dev * k}
}

// Get returns the count for a single category.
func (v Vec) Get(c Category) uint64 {
	switch c {
	case Reg:
		return v.Reg
	case Mem:
		return v.Mem
	case Dev:
		return v.Dev
	default:
		panic(fmt.Sprintf("cost: unknown category %d", c))
	}
}

// IsZero reports whether all components are zero.
func (v Vec) IsZero() bool { return v.Reg == 0 && v.Mem == 0 && v.Dev == 0 }

// String renders the vector in Appendix A column order.
func (v Vec) String() string {
	return fmt.Sprintf("{reg:%d mem:%d dev:%d}", v.Reg, v.Mem, v.Dev)
}

// Item is a single charge: N instructions of one category, attributed to a
// Table 1 subcategory. Charges issued by the messaging layers are bundles of
// Items.
type Item struct {
	Cat Category
	Sub Sub
	N   uint64
}

// Items is a charge bundle: the instructions one protocol event executes.
type Items []Item

// Vec collapses the bundle into a per-category vector.
func (it Items) Vec() Vec {
	var v Vec
	for _, i := range it {
		switch i.Cat {
		case Reg:
			v.Reg += i.N
		case Mem:
			v.Mem += i.N
		case Dev:
			v.Dev += i.N
		}
	}
	return v
}

// Total returns the unit-cost total of the bundle.
func (it Items) Total() uint64 { return it.Vec().Total() }

// Append returns the concatenation of bundles; nil-safe.
func (it Items) Append(more ...Items) Items {
	out := it
	for _, m := range more {
		out = append(out, m...)
	}
	return out
}
