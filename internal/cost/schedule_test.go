package cost

import (
	"strings"
	"testing"
	"testing/quick"
)

// finiteExpect returns the Appendix A finite-sequence cell values for p
// packets of 4 words, computed from the paper's linear decomposition.
func finiteExpect(p uint64) map[Role]map[Feature]Vec {
	return map[Role]map[Feature]Vec{
		Source: {
			Base:       V(2, 1, 0).Add(V(15, 2, 5).Scale(p)),
			BufferMgmt: V(36, 1, 10),
			InOrder:    V(2, 0, 0).Scale(p),
			FaultTol:   V(22, 0, 5),
		},
		Destination: {
			Base:       V(14, 3, 1).Add(V(12, 2, 4).Scale(p)),
			BufferMgmt: V(79, 12, 10),
			InOrder:    V(1, 0, 0).Add(V(3, 0, 0).Scale(p)),
			FaultTol:   V(14, 1, 5),
		},
	}
}

// indefiniteExpect returns the Appendix A indefinite-sequence cell values
// for p packets of 4 words with half arriving out of order.
func indefiniteExpect(p uint64) map[Role]map[Feature]Vec {
	half := p / 2
	return map[Role]map[Feature]Vec{
		Source: {
			Base:     V(14, 1, 5).Scale(p),
			InOrder:  V(2, 3, 0).Scale(p),
			FaultTol: V(22, 2, 5).Scale(p),
		},
		Destination: {
			Base: V(12, 0, 1).Add(V(10, 0, 4).Scale(p)),
			InOrder: V(5, 0, 0).Scale(p - half).
				Add(V(20, 13, 0).Scale(half)).
				Add(V(10, 10, 0).Scale(half)),
			FaultTol: V(14, 1, 5).Scale(p),
		},
	}
}

func TestPaperScheduleValidates(t *testing.T) {
	s := MustPaperSchedule(4)
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestPaperScheduleRejectsBadPacketSizes(t *testing.T) {
	for _, n := range []int{0, -2, 3, 7} {
		if _, err := NewPaperSchedule(n); err == nil {
			t.Errorf("NewPaperSchedule(%d) accepted invalid size", n)
		}
	}
}

func TestMustPaperSchedulePanicsOnBadSize(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MustPaperSchedule(3)
}

// Table 1: single-packet delivery costs 20 instructions at the source and
// 27 at the destination, with the published subcategory breakdown.
func TestTable1Anchors(t *testing.T) {
	s := MustPaperSchedule(4)
	if got := s.SendSingle.Total(); got != 20 {
		t.Errorf("send single = %d, want 20", got)
	}
	if got := s.RecvSingle.Total(); got != 27 {
		t.Errorf("recv single = %d, want 27", got)
	}

	sub := func(items Items, sub Sub) uint64 {
		var n uint64
		for _, it := range items {
			if it.Sub == sub {
				n += it.N
			}
		}
		return n
	}
	srcWant := map[Sub]uint64{
		SubCallRet: 3, SubNISetup: 5, SubNIWrite: 2,
		SubNIStatus: 7, SubControlFlow: 3,
	}
	for su, want := range srcWant {
		if got := sub(s.SendSingle, su); got != want {
			t.Errorf("source %s = %d, want %d", su, got, want)
		}
	}
	dstWant := map[Sub]uint64{
		SubCallRet: 10, SubNIRead: 3, SubNIStatus: 12, SubControlFlow: 2,
	}
	for su, want := range dstWant {
		if got := sub(s.RecvSingle, su); got != want {
			t.Errorf("destination %s = %d, want %d", su, got, want)
		}
	}
}

// The finite-sequence schedule bundles reproduce Appendix A exactly at both
// published anchors (16 and 1024 words, i.e. 4 and 256 packets of 4 words).
func TestFiniteSequenceAppendixAAnchors(t *testing.T) {
	s := MustPaperSchedule(4)
	for _, p := range []uint64{4, 256} {
		want := finiteExpect(p)

		gotSrcBase := s.XferSendFixed.Vec().Add(s.XferSendPacket.Vec().Scale(p))
		if gotSrcBase != want[Source][Base] {
			t.Errorf("p=%d src base = %v, want %v", p, gotSrcBase, want[Source][Base])
		}
		gotDstBase := s.XferRecvFixed.Vec().Add(s.XferRecvPacket.Vec().Scale(p))
		if gotDstBase != want[Destination][Base] {
			t.Errorf("p=%d dst base = %v, want %v", p, gotDstBase, want[Destination][Base])
		}

		gotSrcBuf := s.AllocRequestSend.Vec().Add(s.AllocReplyRecv.Vec())
		if gotSrcBuf != want[Source][BufferMgmt] {
			t.Errorf("src buffer mgmt = %v, want %v", gotSrcBuf, want[Source][BufferMgmt])
		}
		gotDstBuf := s.AllocRequestRecv.Vec().
			Add(s.SegmentAllocate.Vec()).
			Add(s.AllocReplySend.Vec()).
			Add(s.SegmentDeallocate.Vec())
		if gotDstBuf != want[Destination][BufferMgmt] {
			t.Errorf("dst buffer mgmt = %v, want %v", gotDstBuf, want[Destination][BufferMgmt])
		}

		gotSrcOrd := s.OffsetPerPacket.Vec().Scale(p)
		if gotSrcOrd != want[Source][InOrder] {
			t.Errorf("p=%d src in-order = %v, want %v", p, gotSrcOrd, want[Source][InOrder])
		}
		gotDstOrd := s.OffsetTrackFixed.Vec().Add(s.OffsetTrackPacket.Vec().Scale(p))
		if gotDstOrd != want[Destination][InOrder] {
			t.Errorf("p=%d dst in-order = %v, want %v", p, gotDstOrd, want[Destination][InOrder])
		}

		if got := s.XferAckRecv.Vec(); got != want[Source][FaultTol] {
			t.Errorf("src fault tol = %v, want %v", got, want[Source][FaultTol])
		}
		if got := s.XferAckSend.Vec(); got != want[Destination][FaultTol] {
			t.Errorf("dst fault tol = %v, want %v", got, want[Destination][FaultTol])
		}
	}

	// Grand totals from Table 2 at 1024 words: 6221 source, 5516
	// destination, 11737 total.
	want := finiteExpect(256)
	var src, dst uint64
	for f, v := range want[Source] {
		_ = f
		src += v.Total()
	}
	for _, v := range want[Destination] {
		dst += v.Total()
	}
	if src != 6221 || dst != 5516 || src+dst != 11737 {
		t.Errorf("1024w finite totals = %d/%d/%d, want 6221/5516/11737", src, dst, src+dst)
	}
}

// The indefinite-sequence schedule bundles reproduce Appendix A exactly at
// both published anchors, including the Table 2 grand totals (481 at 16
// words, 29965 at 1024 words).
func TestIndefiniteSequenceAppendixAAnchors(t *testing.T) {
	s := MustPaperSchedule(4)
	for _, p := range []uint64{4, 256} {
		half := p / 2
		want := indefiniteExpect(p)

		gotSrcBase := s.StreamSendPacket.Vec().Scale(p)
		if gotSrcBase != want[Source][Base] {
			t.Errorf("p=%d src base = %v, want %v", p, gotSrcBase, want[Source][Base])
		}
		gotDstBase := s.StreamRecvFixed.Vec().Add(s.StreamRecvPacket.Vec().Scale(p))
		if gotDstBase != want[Destination][Base] {
			t.Errorf("p=%d dst base = %v, want %v", p, gotDstBase, want[Destination][Base])
		}

		gotSrcOrd := s.SeqPerPacket.Vec().Scale(p)
		if gotSrcOrd != want[Source][InOrder] {
			t.Errorf("p=%d src in-order = %v, want %v", p, gotSrcOrd, want[Source][InOrder])
		}
		gotDstOrd := s.InOrderArrival.Vec().Scale(p - half).
			Add(s.OutOfOrderArrival.Vec().Scale(half)).
			Add(s.DrainBuffered.Vec().Scale(half))
		if gotDstOrd != want[Destination][InOrder] {
			t.Errorf("p=%d dst in-order = %v, want %v", p, gotDstOrd, want[Destination][InOrder])
		}

		gotSrcFT := s.SourceBufferPacket.Vec().Add(s.StreamAckRecv.Vec()).Scale(p)
		if gotSrcFT != want[Source][FaultTol] {
			t.Errorf("p=%d src fault tol = %v, want %v", p, gotSrcFT, want[Source][FaultTol])
		}
		gotDstFT := s.StreamAckSend.Vec().Scale(p)
		if gotDstFT != want[Destination][FaultTol] {
			t.Errorf("p=%d dst fault tol = %v, want %v", p, gotDstFT, want[Destination][FaultTol])
		}
	}

	for _, tc := range []struct {
		p               uint64
		src, dst, total uint64
	}{
		{4, 216, 265, 481},
		{256, 13824, 16141, 29965},
	} {
		want := indefiniteExpect(tc.p)
		var src, dst uint64
		for _, v := range want[Source] {
			src += v.Total()
		}
		for _, v := range want[Destination] {
			dst += v.Total()
		}
		if src != tc.src || dst != tc.dst || src+dst != tc.total {
			t.Errorf("p=%d indefinite totals = %d/%d/%d, want %d/%d/%d",
				tc.p, src, dst, src+dst, tc.src, tc.dst, tc.total)
		}
	}
}

// The schedule is linear in packet count by construction; per-packet bundles
// must not depend on anything but n. This property pins the Figure 8
// generalization: at any even n, data-movement terms scale as n/2 while
// register coefficients stay fixed.
func TestSchedulePacketSizeGeneralization(t *testing.T) {
	base := MustPaperSchedule(4)
	for _, n := range []int{4, 8, 16, 32, 64, 128} {
		s := MustPaperSchedule(n)
		h := uint64(n) / 2

		if got := s.XferSendPacket.Vec(); got != V(15, h, h+3) {
			t.Errorf("n=%d xfer send pkt = %v", n, got)
		}
		if got := s.XferRecvPacket.Vec(); got != V(12, h, h+2) {
			t.Errorf("n=%d xfer recv pkt = %v", n, got)
		}
		if got := s.StreamSendPacket.Vec(); got != V(14, 1, h+3) {
			t.Errorf("n=%d stream send pkt = %v", n, got)
		}
		if got := s.StreamRecvPacket.Vec(); got != V(10, 0, h+2) {
			t.Errorf("n=%d stream recv pkt = %v", n, got)
		}
		// Size-independent bundles are identical at every n.
		if s.SendSingle.Vec() != base.SendSingle.Vec() ||
			s.XferAckSend.Vec() != base.XferAckSend.Vec() ||
			s.SegmentAllocate.Vec() != base.SegmentAllocate.Vec() {
			t.Errorf("n=%d size-independent bundle changed", n)
		}
	}
}

func TestScheduleLinearityProperty(t *testing.T) {
	s := MustPaperSchedule(4)
	// Cost of p packets equals p times the cost of one packet plus the
	// fixed part, for arbitrary p.
	prop := func(pRaw uint16) bool {
		p := uint64(pRaw%4096) + 1
		one := s.XferSendFixed.Vec().Add(s.XferSendPacket.Vec())
		many := s.XferSendFixed.Vec().Add(s.XferSendPacket.Vec().Scale(p))
		return many.Sub(s.XferSendFixed.Vec()) ==
			one.Sub(s.XferSendFixed.Vec()).Scale(p)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestWithImprovedNIShrinksOnlyDev(t *testing.T) {
	s := MustPaperSchedule(4)
	im := s.WithImprovedNI(2)
	if im.Name == s.Name {
		t.Errorf("improved schedule should be renamed, got %q", im.Name)
	}
	orig := s.XferSendPacket.Vec()
	got := im.XferSendPacket.Vec()
	if got.Reg != orig.Reg || got.Mem != orig.Mem {
		t.Errorf("reg/mem changed: %v vs %v", got, orig)
	}
	if got.Dev != (orig.Dev+1)/2 {
		t.Errorf("dev = %d, want %d", got.Dev, (orig.Dev+1)/2)
	}
	// The original schedule is untouched.
	if s.XferSendPacket.Vec() != orig {
		t.Errorf("original schedule mutated")
	}
	// Factor zero is treated as one (no change).
	same := s.WithImprovedNI(0)
	if same.XferSendPacket.Vec() != orig {
		t.Errorf("factor 0 altered dev counts")
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	s := MustPaperSchedule(4)
	s.SendSingle = Items{{Reg, SubCallRet, 1}}
	if err := s.Validate(); err == nil {
		t.Error("Validate accepted corrupted single-packet bundle")
	}

	s2 := MustPaperSchedule(4)
	s2.PacketWords = 3
	if err := s2.Validate(); err == nil {
		t.Error("Validate accepted odd packet size")
	}
}

func TestWithInterruptReceptionAddsTrapCost(t *testing.T) {
	s := MustPaperSchedule(4)
	in := s.WithInterruptReception(30)
	if in.Name == s.Name {
		t.Error("interrupt schedule should be renamed")
	}
	// Every reception bundle gains exactly 30 register instructions.
	if got := in.RecvSingle.Total(); got != s.RecvSingle.Total()+30 {
		t.Errorf("RecvSingle = %d, want %d", got, s.RecvSingle.Total()+30)
	}
	if got := in.StreamRecvPacket.Vec(); got != s.StreamRecvPacket.Vec().Add(V(30, 0, 0)) {
		t.Errorf("StreamRecvPacket = %v", got)
	}
	// Send-side bundles are untouched.
	if in.SendSingle.Total() != s.SendSingle.Total() {
		t.Error("send bundle changed")
	}
	// The original schedule is unmodified.
	if s.RecvSingle.Total() != 27 {
		t.Error("original schedule mutated")
	}
	// Derived schedules still validate (anchors skipped by name).
	if err := in.Validate(); err != nil {
		t.Errorf("Validate = %v", err)
	}
}

func TestDescribeListsEveryBundle(t *testing.T) {
	s := MustPaperSchedule(4)
	out := s.Describe()
	for _, want := range []string{
		"cmam-paper", "SendSingle", "reg=17", "StreamAckRecv",
		"CRStreamRecv", "OutOfOrderArrival", "LastPacketDetect",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("Describe missing %q", want)
		}
	}
	// Every bundle appears: 40 names plus the header line.
	if got := strings.Count(out, "\n"); got != 41 {
		t.Errorf("Describe has %d lines, want 41", got)
	}
}
