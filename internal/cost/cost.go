// Package cost implements the instruction-count accounting methodology of
// Karamcheti & Chien, "Software Overhead in Messaging Layers: Where Does the
// Time Go?" (ASPLOS 1994).
//
// The paper measures communication cost as dynamic instruction counts of the
// messaging software, classifying every instruction along three axes:
//
//   - Role: whether the instruction executes on the source or the
//     destination node of a transfer.
//   - Feature: which messaging-layer service the instruction pays for —
//     the base cost of data movement and network-interface access, buffer
//     management (deadlock/overflow safety), in-order delivery, or
//     fault tolerance (reliable delivery).
//   - Category: the cost hierarchy of Appendix A — register operations
//     (reg), loads/stores to memory (mem), and loads/stores to
//     memory-mapped devices such as the network interface (dev).
//
// A Gauge accumulates counts along all three axes plus the finer
// subcategories of Table 1 (call/return, NI setup, writes to the NI, ...).
// A Model assigns per-category cycle weights, turning counts into the
// weighted cycle estimates discussed in Appendix A (e.g. dev = 5 cycles on
// the CM-5).
package cost

import "fmt"

// Category is the Appendix A cost-hierarchy class of an instruction.
type Category uint8

const (
	// Reg counts register-based instructions.
	Reg Category = iota
	// Mem counts loads and stores to ordinary memory.
	Mem
	// Dev counts loads and stores to memory-mapped devices (the NI).
	Dev

	// NumCategories is the number of instruction categories.
	NumCategories = 3
)

// String returns the paper's abbreviation for the category.
func (c Category) String() string {
	switch c {
	case Reg:
		return "reg"
	case Mem:
		return "mem"
	case Dev:
		return "dev"
	default:
		return fmt.Sprintf("Category(%d)", uint8(c))
	}
}

// Feature is the messaging-layer service an instruction is attributed to.
// The features correspond one-to-one to the network-feature gaps of the
// paper's Figure 1: arbitrary delivery order forces in-order delivery
// software, finite buffering forces buffer management, and fault detection
// without correction forces fault-tolerance software.
type Feature uint8

const (
	// Base is the unavoidable cost of data movement and NI access.
	Base Feature = iota
	// BufferMgmt pays for deadlock/overflow safety (buffer preallocation,
	// segment association, deallocation).
	BufferMgmt
	// InOrder pays for in-order delivery (sequencing, offsets, reorder
	// buffering of out-of-order arrivals).
	InOrder
	// FaultTol pays for reliable delivery (source buffering of in-flight
	// data, acknowledgements, retransmission).
	FaultTol

	// NumFeatures is the number of cost features.
	NumFeatures = 4
)

// String returns the paper's row label for the feature.
func (f Feature) String() string {
	switch f {
	case Base:
		return "Base Cost"
	case BufferMgmt:
		return "Buffer Mgmt."
	case InOrder:
		return "In-order Del."
	case FaultTol:
		return "Fault-toler."
	default:
		return fmt.Sprintf("Feature(%d)", uint8(f))
	}
}

// Role distinguishes the two ends of a transfer.
type Role uint8

const (
	// Source is the sending end of the transfer being accounted.
	Source Role = iota
	// Destination is the receiving end of the transfer being accounted.
	Destination

	// NumRoles is the number of roles.
	NumRoles = 2
)

// String returns the paper's column label for the role.
func (r Role) String() string {
	switch r {
	case Source:
		return "Source"
	case Destination:
		return "Destination"
	default:
		return fmt.Sprintf("Role(%d)", uint8(r))
	}
}

// Sub is the fine-grained subcategory used by Table 1 to break down
// single-packet delivery cost.
type Sub uint8

const (
	// SubCallRet counts call and return instructions.
	SubCallRet Sub = iota
	// SubNISetup counts instructions preparing NI operands (addresses,
	// tags, destination node numbers) in registers.
	SubNISetup
	// SubNIWrite counts stores to the NI send buffer.
	SubNIWrite
	// SubNIRead counts loads from the NI receive buffer.
	SubNIRead
	// SubNIStatus counts loads of NI control/status registers and the
	// register instructions testing them.
	SubNIStatus
	// SubControlFlow counts branches and loop bookkeeping.
	SubControlFlow
	// SubDataMove counts loads/stores moving user data up and down the
	// memory hierarchy.
	SubDataMove
	// SubBookkeeping counts protocol bookkeeping (sequence numbers,
	// counters, segment tables, reorder buffers).
	SubBookkeeping

	// NumSubs is the number of subcategories.
	NumSubs = 8
)

// String returns the Table 1 row label for the subcategory.
func (s Sub) String() string {
	switch s {
	case SubCallRet:
		return "Call/Return"
	case SubNISetup:
		return "NI setup"
	case SubNIWrite:
		return "Write to NI"
	case SubNIRead:
		return "Read from NI"
	case SubNIStatus:
		return "Check NI status"
	case SubControlFlow:
		return "Control flow"
	case SubDataMove:
		return "Data movement"
	case SubBookkeeping:
		return "Bookkeeping"
	default:
		return fmt.Sprintf("Sub(%d)", uint8(s))
	}
}

// Categories lists all instruction categories in display order.
func Categories() []Category { return []Category{Reg, Mem, Dev} }

// Features lists all cost features in the paper's display order.
func Features() []Feature { return []Feature{Base, BufferMgmt, InOrder, FaultTol} }

// Roles lists both roles in display order.
func Roles() []Role { return []Role{Source, Destination} }

// Subs lists all subcategories in Table 1 display order.
func Subs() []Sub {
	return []Sub{
		SubCallRet, SubNISetup, SubNIWrite, SubNIRead,
		SubNIStatus, SubControlFlow, SubDataMove, SubBookkeeping,
	}
}
