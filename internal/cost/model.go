package cost

import "fmt"

// Model assigns per-category cycle weights, the "simple weighted cost model"
// of Appendix A. The paper's body uses the unit model (every instruction
// costs one); Appendix A suggests a CM-5 model in which dev accesses cost
// five cycles.
type Model struct {
	Name string
	Reg  uint64
	Mem  uint64
	Dev  uint64
}

// Unit is the model used throughout the body of the paper: all instructions
// have unit cost.
var Unit = Model{Name: "unit", Reg: 1, Mem: 1, Dev: 1}

// CM5 is the Appendix A example model for the CM-5: reg and mem instructions
// cost one cycle, a dev access costs five.
var CM5 = Model{Name: "cm5", Reg: 1, Mem: 1, Dev: 5}

// Cost returns the weighted cost of a count vector under the model.
func (m Model) Cost(v Vec) uint64 {
	return v.Reg*m.Reg + v.Mem*m.Mem + v.Dev*m.Dev
}

// String identifies the model and its weights.
func (m Model) String() string {
	return fmt.Sprintf("%s(reg=%d mem=%d dev=%d)", m.Name, m.Reg, m.Mem, m.Dev)
}
