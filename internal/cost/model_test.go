package cost

import (
	"strings"
	"testing"
)

func TestModelCost(t *testing.T) {
	v := V(10, 20, 30)
	if got := Unit.Cost(v); got != 60 {
		t.Errorf("unit cost = %d, want 60", got)
	}
	if got := CM5.Cost(v); got != 10+20+150 {
		t.Errorf("cm5 cost = %d, want 180", got)
	}
}

// Appendix A's worked point: under the CM-5 model a dev access costs five
// cycles, so the single-packet source path (17 reg + 3 dev) costs 32 cycles
// while the unit model reports 20 instructions.
func TestModelOnSinglePacketPath(t *testing.T) {
	s := MustPaperSchedule(4)
	v := s.SendSingle.Vec()
	if got := Unit.Cost(v); got != 20 {
		t.Errorf("unit = %d", got)
	}
	if got := CM5.Cost(v); got != 17+3*5 {
		t.Errorf("cm5 = %d, want 32", got)
	}
}

func TestModelString(t *testing.T) {
	s := CM5.String()
	if !strings.Contains(s, "cm5") || !strings.Contains(s, "dev=5") {
		t.Errorf("String = %q", s)
	}
}
