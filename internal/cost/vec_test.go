package cost

import (
	"testing"
	"testing/quick"
)

func TestVecArithmetic(t *testing.T) {
	a := V(1, 2, 3)
	b := V(10, 20, 30)
	if got := a.Add(b); got != V(11, 22, 33) {
		t.Errorf("Add = %v", got)
	}
	if got := b.Sub(a); got != V(9, 18, 27) {
		t.Errorf("Sub = %v", got)
	}
	if got := a.Scale(4); got != V(4, 8, 12) {
		t.Errorf("Scale = %v", got)
	}
	if got := a.Total(); got != 6 {
		t.Errorf("Total = %d", got)
	}
}

func TestVecSubUnderflowPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on underflow")
		}
	}()
	V(1, 0, 0).Sub(V(2, 0, 0))
}

func TestVecGet(t *testing.T) {
	v := V(5, 6, 7)
	if v.Get(Reg) != 5 || v.Get(Mem) != 6 || v.Get(Dev) != 7 {
		t.Errorf("Get mismatch: %v", v)
	}
}

func TestVecGetUnknownCategoryPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on unknown category")
		}
	}()
	V(0, 0, 0).Get(Category(12))
}

func TestVecIsZeroAndString(t *testing.T) {
	if !V(0, 0, 0).IsZero() {
		t.Error("zero vec not zero")
	}
	if V(0, 1, 0).IsZero() {
		t.Error("nonzero vec reported zero")
	}
	if got := V(1, 2, 3).String(); got != "{reg:1 mem:2 dev:3}" {
		t.Errorf("String = %q", got)
	}
}

// Vec addition is commutative and associative, and Scale distributes over
// Add — the algebraic properties the linear cost model relies on.
func TestVecAlgebraProperties(t *testing.T) {
	clamp := func(v Vec) Vec {
		// Keep components small enough that no sum or product overflows.
		const m = 1 << 20
		return Vec{v.Reg % m, v.Mem % m, v.Dev % m}
	}
	commutes := func(a, b Vec) bool {
		a, b = clamp(a), clamp(b)
		return a.Add(b) == b.Add(a)
	}
	if err := quick.Check(commutes, nil); err != nil {
		t.Error(err)
	}
	associates := func(a, b, c Vec) bool {
		a, b, c = clamp(a), clamp(b), clamp(c)
		return a.Add(b).Add(c) == a.Add(b.Add(c))
	}
	if err := quick.Check(associates, nil); err != nil {
		t.Error(err)
	}
	distributes := func(a, b Vec, k uint16) bool {
		a, b = clamp(a), clamp(b)
		return a.Add(b).Scale(uint64(k)) == a.Scale(uint64(k)).Add(b.Scale(uint64(k)))
	}
	if err := quick.Check(distributes, nil); err != nil {
		t.Error(err)
	}
}

func TestItemsVecAndTotal(t *testing.T) {
	it := Items{
		{Reg, SubCallRet, 3},
		{Mem, SubDataMove, 2},
		{Dev, SubNIWrite, 4},
		{Reg, SubControlFlow, 1},
	}
	if got := it.Vec(); got != V(4, 2, 4) {
		t.Errorf("Vec = %v", got)
	}
	if got := it.Total(); got != 10 {
		t.Errorf("Total = %d", got)
	}
}

func TestItemsAppend(t *testing.T) {
	a := Items{{Reg, SubCallRet, 1}}
	b := Items{{Mem, SubDataMove, 2}}
	got := Items(nil).Append(a, b, nil)
	if len(got) != 2 || got.Total() != 3 {
		t.Errorf("Append = %v", got)
	}
}
