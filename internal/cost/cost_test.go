package cost

import "testing"

func TestCategoryStrings(t *testing.T) {
	want := map[Category]string{Reg: "reg", Mem: "mem", Dev: "dev"}
	for c, s := range want {
		if c.String() != s {
			t.Errorf("Category(%d).String() = %q, want %q", c, c.String(), s)
		}
	}
	if got := Category(9).String(); got != "Category(9)" {
		t.Errorf("unknown category = %q", got)
	}
}

func TestFeatureStrings(t *testing.T) {
	want := map[Feature]string{
		Base:       "Base Cost",
		BufferMgmt: "Buffer Mgmt.",
		InOrder:    "In-order Del.",
		FaultTol:   "Fault-toler.",
	}
	for f, s := range want {
		if f.String() != s {
			t.Errorf("Feature(%d).String() = %q, want %q", f, f.String(), s)
		}
	}
	if got := Feature(9).String(); got != "Feature(9)" {
		t.Errorf("unknown feature = %q", got)
	}
}

func TestRoleAndSubStrings(t *testing.T) {
	if Source.String() != "Source" || Destination.String() != "Destination" {
		t.Errorf("role strings wrong: %q, %q", Source, Destination)
	}
	if Role(7).String() != "Role(7)" {
		t.Errorf("unknown role = %q", Role(7))
	}
	if SubCallRet.String() != "Call/Return" || SubNIStatus.String() != "Check NI status" {
		t.Errorf("sub strings wrong")
	}
	if Sub(99).String() != "Sub(99)" {
		t.Errorf("unknown sub = %q", Sub(99))
	}
}

func TestEnumerationsCoverAllValues(t *testing.T) {
	if len(Categories()) != NumCategories {
		t.Errorf("Categories() has %d entries, want %d", len(Categories()), NumCategories)
	}
	if len(Features()) != NumFeatures {
		t.Errorf("Features() has %d entries, want %d", len(Features()), NumFeatures)
	}
	if len(Roles()) != NumRoles {
		t.Errorf("Roles() has %d entries, want %d", len(Roles()), NumRoles)
	}
	if len(Subs()) != NumSubs {
		t.Errorf("Subs() has %d entries, want %d", len(Subs()), NumSubs)
	}
}
