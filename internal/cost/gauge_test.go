package cost

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestGaugeChargeAndCells(t *testing.T) {
	g := NewGauge()
	g.Charge(Source, Base, Items{
		{Reg, SubCallRet, 3},
		{Dev, SubNIWrite, 2},
	})
	g.Charge(Destination, FaultTol, Items{{Mem, SubBookkeeping, 7}})

	if got := g.Cell(Source, Base); got != V(3, 0, 2) {
		t.Errorf("Cell(Source, Base) = %v", got)
	}
	if got := g.Cell(Destination, FaultTol); got != V(0, 7, 0) {
		t.Errorf("Cell(Destination, FaultTol) = %v", got)
	}
	if got := g.Cell(Source, FaultTol); !got.IsZero() {
		t.Errorf("unexpected counts in empty cell: %v", got)
	}
	if got := g.RoleTotal(Source); got != V(3, 0, 2) {
		t.Errorf("RoleTotal(Source) = %v", got)
	}
	if got := g.FeatureTotal(FaultTol); got != V(0, 7, 0) {
		t.Errorf("FeatureTotal(FaultTol) = %v", got)
	}
	if got := g.Total(); got != V(3, 7, 2) {
		t.Errorf("Total = %v", got)
	}
	if got := g.SubCell(Source, SubCallRet); got != V(3, 0, 0) {
		t.Errorf("SubCell = %v", got)
	}
}

func TestGaugeChargeVecGoesToBookkeeping(t *testing.T) {
	g := NewGauge()
	g.ChargeVec(Source, InOrder, V(2, 3, 4))
	if got := g.Cell(Source, InOrder); got != V(2, 3, 4) {
		t.Errorf("Cell = %v", got)
	}
	if got := g.SubCell(Source, SubBookkeeping); got != V(2, 3, 4) {
		t.Errorf("SubCell = %v", got)
	}
}

func TestGaugeEvents(t *testing.T) {
	g := NewGauge()
	g.CountEvent("packet.sent")
	g.CountEvent("packet.sent")
	g.CountEvent("ack.recv")
	if g.Events("packet.sent") != 2 || g.Events("ack.recv") != 1 {
		t.Errorf("event counts wrong: %d %d", g.Events("packet.sent"), g.Events("ack.recv"))
	}
	if g.Events("never") != 0 {
		t.Errorf("absent event should be zero")
	}
	names := g.EventNames()
	if len(names) != 2 || names[0] != "ack.recv" || names[1] != "packet.sent" {
		t.Errorf("EventNames = %v", names)
	}
}

func TestGaugeAddAndSnapshot(t *testing.T) {
	g := NewGauge()
	g.Charge(Source, Base, Items{{Reg, SubCallRet, 5}})
	g.CountEvent("e")

	snap := g.Snapshot()
	g.Charge(Source, Base, Items{{Reg, SubCallRet, 2}})
	g.CountEvent("e")

	if got := snap.Cell(Source, Base); got != V(5, 0, 0) {
		t.Errorf("snapshot mutated: %v", got)
	}
	if got := g.Cell(Source, Base); got != V(7, 0, 0) {
		t.Errorf("gauge = %v", got)
	}

	sum := NewGauge()
	sum.Add(g)
	sum.Add(snap)
	if got := sum.Cell(Source, Base); got != V(12, 0, 0) {
		t.Errorf("Add = %v", got)
	}
	if sum.Events("e") != 3 {
		t.Errorf("Add events = %d", sum.Events("e"))
	}
}

func TestGaugeDiff(t *testing.T) {
	g := NewGauge()
	g.Charge(Source, Base, Items{{Reg, SubCallRet, 5}})
	snap := g.Snapshot()
	g.Charge(Source, Base, Items{{Reg, SubCallRet, 3}})
	g.Charge(Destination, InOrder, Items{{Mem, SubBookkeeping, 4}})
	g.CountEvent("x")

	d := g.Diff(snap)
	if got := d.Cell(Source, Base); got != V(3, 0, 0) {
		t.Errorf("Diff cell = %v", got)
	}
	if got := d.Cell(Destination, InOrder); got != V(0, 4, 0) {
		t.Errorf("Diff cell = %v", got)
	}
	if d.Events("x") != 1 {
		t.Errorf("Diff events = %d", d.Events("x"))
	}
}

func TestGaugeDiffUnderflowPanics(t *testing.T) {
	g := NewGauge()
	big := NewGauge()
	big.Charge(Source, Base, Items{{Reg, SubCallRet, 5}})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	g.Diff(big)
}

func TestGaugeReset(t *testing.T) {
	g := NewGauge()
	g.Charge(Source, Base, Items{{Reg, SubCallRet, 5}})
	g.CountEvent("e")
	g.Reset()
	if !g.Total().IsZero() {
		t.Errorf("Total after reset = %v", g.Total())
	}
	if g.Events("e") != 0 {
		t.Errorf("events survived reset")
	}
	// The gauge must be usable after Reset.
	g.CountEvent("e2")
	if g.Events("e2") != 1 {
		t.Errorf("gauge unusable after reset")
	}
}

func TestGaugeWeighted(t *testing.T) {
	g := NewGauge()
	g.Charge(Source, Base, Items{
		{Reg, SubCallRet, 1},
		{Mem, SubDataMove, 1},
		{Dev, SubNIWrite, 1},
	})
	if got := g.Weighted(Unit); got != 3 {
		t.Errorf("unit weighted = %d", got)
	}
	if got := g.Weighted(CM5); got != 7 {
		t.Errorf("cm5 weighted = %d", got)
	}
}

func TestGaugeString(t *testing.T) {
	g := NewGauge()
	g.Charge(Source, Base, Items{{Reg, SubCallRet, 20}})
	g.Charge(Destination, Base, Items{{Reg, SubCallRet, 27}})
	s := g.String()
	for _, want := range []string{"Base Cost", "20", "27", "47", "Total"} {
		if !strings.Contains(s, want) {
			t.Errorf("String missing %q:\n%s", want, s)
		}
	}
}

// Gauge accumulation is additive: charging a+b equals charging a then b,
// and totals equal the sum of role totals — invariants every table render
// depends on.
func TestGaugeAdditivityProperty(t *testing.T) {
	type chg struct {
		RoleN uint8
		FeatN uint8
		CatN  uint8
		SubN  uint8
		N     uint16
	}
	apply := func(g *Gauge, cs []chg) {
		for _, c := range cs {
			r := Role(c.RoleN % NumRoles)
			f := Feature(c.FeatN % NumFeatures)
			cat := Category(c.CatN % NumCategories)
			sub := Sub(c.SubN % NumSubs)
			g.Charge(r, f, Items{{cat, sub, uint64(c.N)}})
		}
	}
	prop := func(a, b []chg) bool {
		both := NewGauge()
		apply(both, a)
		apply(both, b)

		ga, gb := NewGauge(), NewGauge()
		apply(ga, a)
		apply(gb, b)
		sum := NewGauge()
		sum.Add(ga)
		sum.Add(gb)

		if both.Total() != sum.Total() {
			return false
		}
		for _, r := range Roles() {
			for _, f := range Features() {
				if both.Cell(r, f) != sum.Cell(r, f) {
					return false
				}
			}
			for _, s := range Subs() {
				if both.SubCell(r, s) != sum.SubCell(r, s) {
					return false
				}
			}
		}
		// Cross-axis consistency: feature totals and role totals both sum
		// to the grand total.
		var byRole, byFeat Vec
		for _, r := range Roles() {
			byRole = byRole.Add(both.RoleTotal(r))
		}
		for _, f := range Features() {
			byFeat = byFeat.Add(both.FeatureTotal(f))
		}
		return byRole == both.Total() && byFeat == both.Total()
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
