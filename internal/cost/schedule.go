package cost

import "fmt"

// Schedule is the calibration table mapping messaging-layer protocol events
// to instruction-charge bundles. It plays the role of the CMAM SPARC
// assembly the authors counted: every bundle below is derived from the
// paper's Table 1 (single-packet delivery) and the exact linear
// decomposition of Appendix A (fixed + per-packet costs for the multi-packet
// protocols; see DESIGN.md §5 for the derivation).
//
// A Schedule is constructed for a specific hardware packet payload size n
// (data words per packet; the CM-5 has n = 4). Register coefficients are
// per-packet constants; data-movement terms scale as n/2 double-word
// loads/stores, matching every n = 4 anchor in the paper. This
// parameterization is the Figure 8 generalization.
type Schedule struct {
	// Name identifies the schedule in reports ("cmam-paper", ...).
	Name string
	// PacketWords is n, the data words carried per hardware packet.
	PacketWords int

	// --- Single-packet delivery (Table 1) ---

	SendSingle Items // CMAM_4: inject one 4-word datagram
	RecvSingle Items // CMAM_request_poll + handle_left + got_left

	// --- Finite sequence, multi-packet delivery (Figure 3, Tables 2/3) ---

	XferSendFixed  Items // per-transfer source setup
	XferSendPacket Items // per-packet: load data, store to NI, confirm
	XferRecvFixed  Items // per-transfer destination setup
	XferRecvPacket Items // per-packet: poll, extract, store to buffer

	AllocRequestSend  Items // step 1: source sends allocation request
	AllocRequestRecv  Items // step 2a: destination receives request
	SegmentAllocate   Items // step 2b: associate segment with target buffer
	AllocReplySend    Items // step 3a: destination replies with segment id
	AllocReplyRecv    Items // step 3b: source receives the reply
	SegmentDeallocate Items // step 5: disassociate segment

	OffsetPerPacket     Items // in-order: source increments/stores offset
	OffsetTrackFixed    Items // in-order: destination per-transfer count setup
	OffsetTrackPacket   Items // in-order: destination offset extract + count
	XferAckSend         Items // step 6: destination acknowledges completion
	XferAckRecv         Items // step 6: source receives acknowledgement
	LastPacketDetect    Items // destination notices transfer completion
	SourceRetainMessage Items // source pins its buffer pending the ack

	// --- Indefinite sequence, multi-packet delivery (Figure 4, Tables 2/3) ---

	StreamSendPacket Items // per-packet injection
	StreamRecvFixed  Items // per-reception-burst poll entry
	StreamRecvPacket Items // per-packet extraction and handler dispatch

	SeqPerPacket       Items // in-order: source sequence-number bookkeeping
	InOrderArrival     Items // in-order: packet arrives in transmission order
	OutOfOrderArrival  Items // in-order: packet buffered in the reorder queue
	DrainBuffered      Items // in-order: buffered packet delivered in order
	SourceBufferPacket Items // fault tol.: copy packet for retransmission
	StreamAckSend      Items // fault tol.: destination acks (per packet/group)
	StreamAckRecv      Items // fault tol.: source processes ack, frees buffer
	Retransmit         Items // fault tol.: reload buffered copy, resend

	// --- High-level-feature (Compressionless Routing) layer (Section 4) ---

	CRXferSendFixed   Items // Figure 5 step 1 per-transfer setup
	CRXferSendPacket  Items // per-packet injection (identical base cost)
	CRXferRecvFixed   Items // per-transfer destination setup (fewer branches)
	CRXferRecvPacket  Items // per-packet reception (fewer branches)
	CRBufferRegister  Items // store buffer pointer in the transfer table
	CRLastPacket      Items // specialized last-packet handler
	CRStreamSend      Items // Figure 7: bare per-packet injection
	CRStreamRecvFixed Items // per-burst poll entry
	CRStreamRecv      Items // bare per-packet reception
	CRRetryBookkeep   Items // software cost of a rejected header retry
}

// NewPaperSchedule returns the schedule calibrated to the paper's CM-5/CMAM
// measurements for hardware packets carrying n data words. n must be a
// positive even number (double-word loads/stores move two words at a time);
// the paper's CM-5 has n = 4 and Figure 8 sweeps n from 4 to 128.
func NewPaperSchedule(n int) (*Schedule, error) {
	if n <= 0 || n%2 != 0 {
		return nil, fmt.Errorf("cost: packet payload must be a positive even word count, got %d", n)
	}
	h := uint64(n) / 2 // double-word operations moving the payload

	s := &Schedule{
		Name:        "cmam-paper",
		PacketWords: n,

		// Table 1, source column: 3 call/return + 5 NI setup + 2 writes
		// to the NI + 7 status check (one dev load, six register tests)
		// + 3 control flow = 20 instructions.
		SendSingle: Items{
			{Reg, SubCallRet, 3},
			{Reg, SubNISetup, 5},
			{Dev, SubNIWrite, 2},
			{Dev, SubNIStatus, 1},
			{Reg, SubNIStatus, 6},
			{Reg, SubControlFlow, 3},
		},
		// Table 1, destination column: 10 call/return (three functions:
		// request_poll, handle_left, got_left) + 3 reads from the NI +
		// 12 status check (two dev loads, ten register tests) + 2
		// control flow = 27 instructions.
		RecvSingle: Items{
			{Reg, SubCallRet, 10},
			{Dev, SubNIRead, 3},
			{Dev, SubNIStatus, 2},
			{Reg, SubNIStatus, 10},
			{Reg, SubControlFlow, 2},
		},

		// Finite-sequence base cost, source: fixed (2 reg, 1 mem) +
		// per-packet (15 reg, n/2 mem, n/2+3 dev). At n = 4 and p = 256
		// this reproduces Appendix A exactly: 3842 reg, 513 mem, 1280 dev.
		XferSendFixed: Items{
			{Reg, SubNISetup, 2},
			{Mem, SubDataMove, 1},
		},
		XferSendPacket: Items{
			{Reg, SubNISetup, 4},
			{Reg, SubControlFlow, 4},
			{Reg, SubNIStatus, 7},
			{Dev, SubNIStatus, 1},
			{Mem, SubDataMove, h},    // load payload from memory
			{Dev, SubNIWrite, h + 2}, // payload + destination + offset
		},
		// Finite-sequence base cost, destination: fixed (14 reg, 3 mem,
		// 1 dev) + per-packet (12 reg, n/2 mem, n/2+2 dev); Appendix A:
		// 3086 reg, 515 mem, 1025 dev at n = 4, p = 256.
		XferRecvFixed: Items{
			{Reg, SubCallRet, 8},
			{Reg, SubNISetup, 4},
			{Reg, SubControlFlow, 2},
			{Mem, SubBookkeeping, 3},
			{Dev, SubNIStatus, 1},
		},
		XferRecvPacket: Items{
			{Reg, SubNIStatus, 5},
			{Dev, SubNIStatus, 1},
			{Dev, SubNIRead, h + 1}, // payload + offset word
			{Mem, SubDataMove, h},   // store payload into the segment
			{Reg, SubControlFlow, 4},
			{Reg, SubNISetup, 3},
		},

		// Buffer management: the Figure 3 round-trip handshake plus
		// segment (de)association. Appendix A fixed costs: source
		// (36 reg, 1 mem, 10 dev), destination (79 reg, 12 mem, 10 dev).
		AllocRequestSend: Items{
			{Reg, SubCallRet, 3},
			{Reg, SubNISetup, 5},
			{Dev, SubNIWrite, 3},
			{Dev, SubNIStatus, 2},
			{Reg, SubNIStatus, 5},
			{Reg, SubControlFlow, 3},
			{Mem, SubBookkeeping, 1},
			{Reg, SubBookkeeping, 1},
		},
		AllocReplyRecv: Items{
			{Reg, SubCallRet, 6},
			{Dev, SubNIRead, 3},
			{Dev, SubNIStatus, 2},
			{Reg, SubNIStatus, 7},
			{Reg, SubControlFlow, 3},
			{Reg, SubBookkeeping, 3},
		},
		AllocRequestRecv: Items{
			{Reg, SubCallRet, 8},
			{Dev, SubNIRead, 3},
			{Dev, SubNIStatus, 2},
			{Reg, SubNIStatus, 8},
			{Reg, SubControlFlow, 5},
			{Reg, SubBookkeeping, 4},
			{Mem, SubBookkeeping, 2},
		},
		SegmentAllocate: Items{
			{Reg, SubBookkeeping, 18},
			{Mem, SubBookkeeping, 5},
		},
		AllocReplySend: Items{
			{Reg, SubNISetup, 5},
			{Dev, SubNIWrite, 3},
			{Dev, SubNIStatus, 2},
			{Reg, SubNIStatus, 5},
			{Reg, SubControlFlow, 3},
			{Reg, SubCallRet, 3},
		},
		SegmentDeallocate: Items{
			{Reg, SubBookkeeping, 20},
			{Mem, SubBookkeeping, 5},
		},

		// In-order delivery via carried offsets: source (2 reg)/packet;
		// destination fixed 1 reg + (3 reg)/packet. Appendix A: 512 and
		// 769 reg at p = 256.
		OffsetPerPacket:   Items{{Reg, SubBookkeeping, 2}},
		OffsetTrackFixed:  Items{{Reg, SubBookkeeping, 1}},
		OffsetTrackPacket: Items{{Reg, SubBookkeeping, 3}},

		// Fault tolerance: one completion acknowledgement per transfer.
		// Appendix A fixed costs: source (22 reg, 5 dev), destination
		// (14 reg, 1 mem, 5 dev).
		XferAckSend: Items{
			{Reg, SubNISetup, 4},
			{Dev, SubNIWrite, 3},
			{Dev, SubNIStatus, 2},
			{Reg, SubNIStatus, 4},
			{Reg, SubCallRet, 3},
			{Reg, SubControlFlow, 3},
			{Mem, SubBookkeeping, 1},
		},
		XferAckRecv: Items{
			{Reg, SubCallRet, 6},
			{Dev, SubNIRead, 3},
			{Dev, SubNIStatus, 2},
			{Reg, SubNIStatus, 8},
			{Reg, SubControlFlow, 4},
			{Reg, SubBookkeeping, 4},
		},
		LastPacketDetect:    nil, // folded into OffsetTrackPacket's count test
		SourceRetainMessage: nil, // pinning the user buffer costs nothing extra

		// Indefinite-sequence base cost: source (14 reg, 1 mem,
		// n/2+3 dev)/packet (register-to-register: no per-word memory
		// traffic at the source beyond bookkeeping); destination fixed
		// (12 reg, 1 dev) + (10 reg, n/2+2 dev)/packet. Appendix A at
		// n = 4, p = 256: source 3584/256/1280, destination 2572/0/1025.
		StreamSendPacket: Items{
			{Reg, SubNISetup, 4},
			{Reg, SubControlFlow, 4},
			{Reg, SubNIStatus, 6},
			{Dev, SubNIStatus, 1},
			{Dev, SubNIWrite, h + 2}, // payload + destination + sequence
			{Mem, SubBookkeeping, 1},
		},
		StreamRecvFixed: Items{
			{Reg, SubCallRet, 6},
			{Dev, SubNIStatus, 1},
			{Reg, SubNIStatus, 4},
			{Reg, SubControlFlow, 2},
		},
		StreamRecvPacket: Items{
			{Reg, SubNIStatus, 4},
			{Dev, SubNIStatus, 1},
			{Dev, SubNIRead, h + 1}, // payload + sequence word
			{Reg, SubControlFlow, 3},
			{Reg, SubNISetup, 3},
		},

		// In-order delivery via sequence numbers: source (2 reg,
		// 3 mem)/packet. Destination: an in-order arrival costs 5 reg
		// (compare, advance); an out-of-order arrival costs
		// (20 reg, n/2+11 mem) to insert into the reorder queue, and
		// each buffered packet costs (10 reg, n/2+8 mem) when drained.
		// With the paper's assumption that half the packets arrive out
		// of order this averages (17.5 reg, 11.5 mem)/packet at n = 4,
		// reproducing Appendix A: 4480 reg, 2944 mem at p = 256.
		SeqPerPacket: Items{
			{Reg, SubBookkeeping, 2},
			{Mem, SubBookkeeping, 3},
		},
		InOrderArrival: Items{{Reg, SubBookkeeping, 5}},
		OutOfOrderArrival: Items{
			{Reg, SubBookkeeping, 20},
			{Mem, SubBookkeeping, 11},
			{Mem, SubDataMove, h}, // copy payload into the reorder buffer
		},
		DrainBuffered: Items{
			{Reg, SubBookkeeping, 10},
			{Mem, SubBookkeeping, 8},
			{Mem, SubDataMove, h}, // copy payload out of the reorder buffer
		},

		// Fault tolerance: source buffering (4 reg, n/2 mem)/packet plus
		// ack processing (18 reg, 5 dev)/ack at the source and an ack
		// send (14 reg, 1 mem, 5 dev)/ack at the destination. At group
		// size 1 the source pays (22 reg, 2 mem, 5 dev)/packet,
		// reproducing Appendix A: 5632/512/1280 and 3584/256/1280.
		SourceBufferPacket: Items{
			{Reg, SubBookkeeping, 4},
			{Mem, SubDataMove, h},
		},
		StreamAckRecv: Items{
			{Reg, SubNIStatus, 8},
			{Dev, SubNIStatus, 2},
			{Dev, SubNIRead, 3},
			{Reg, SubBookkeeping, 6},
			{Reg, SubControlFlow, 4},
		},
		StreamAckSend: Items{
			{Reg, SubNISetup, 4},
			{Dev, SubNIWrite, 3},
			{Dev, SubNIStatus, 2},
			{Reg, SubNIStatus, 4},
			{Reg, SubCallRet, 3},
			{Reg, SubControlFlow, 3},
			{Mem, SubBookkeeping, 1},
		},
		Retransmit: Items{
			{Reg, SubBookkeeping, 10},
			{Mem, SubDataMove, h}, // reload the buffered copy
			{Mem, SubBookkeeping, 2},
			{Dev, SubNIWrite, h + 2},
			{Dev, SubNIStatus, 1},
		},

		// Section 4: the same protocols atop Compressionless-Routing
		// features. Per Figure 6 the costs "correspond exactly to the
		// base costs of the CMAM implementations", with a slightly lower
		// destination cost from fewer branches in the reception code and
		// a specialized last-packet handler. Buffer management reduces
		// to storing the buffer pointer in a table.
		CRXferSendFixed: Items{
			{Reg, SubNISetup, 2},
			{Mem, SubDataMove, 1},
		},
		CRXferSendPacket: Items{
			{Reg, SubNISetup, 4},
			{Reg, SubControlFlow, 4},
			{Reg, SubNIStatus, 7},
			{Dev, SubNIStatus, 1},
			{Mem, SubDataMove, h},
			{Dev, SubNIWrite, h + 2},
		},
		CRXferRecvFixed: Items{
			{Reg, SubCallRet, 8},
			{Reg, SubNISetup, 2},
			{Reg, SubControlFlow, 1},
			{Mem, SubBookkeeping, 2},
			{Dev, SubNIStatus, 1},
		},
		CRXferRecvPacket: Items{
			{Reg, SubNIStatus, 5},
			{Dev, SubNIStatus, 1},
			{Dev, SubNIRead, h + 1},
			{Mem, SubDataMove, h},
			{Reg, SubControlFlow, 3}, // one fewer branch than CMAM
			{Reg, SubNISetup, 3},
		},
		CRBufferRegister: Items{
			{Reg, SubBookkeeping, 6},
			{Mem, SubBookkeeping, 2},
		},
		CRLastPacket: Items{
			{Reg, SubCallRet, 4},
			{Reg, SubBookkeeping, 2},
		},
		CRStreamSend: Items{
			{Reg, SubNISetup, 4},
			{Reg, SubControlFlow, 4},
			{Reg, SubNIStatus, 6},
			{Dev, SubNIStatus, 1},
			{Dev, SubNIWrite, h + 2},
			{Mem, SubBookkeeping, 1},
		},
		CRStreamRecvFixed: Items{
			{Reg, SubCallRet, 6},
			{Dev, SubNIStatus, 1},
			{Reg, SubNIStatus, 3},
			{Reg, SubControlFlow, 1},
		},
		CRStreamRecv: Items{
			{Reg, SubNIStatus, 4},
			{Dev, SubNIStatus, 1},
			{Dev, SubNIRead, h + 1},
			{Reg, SubControlFlow, 2}, // no sequence-number branch
			{Reg, SubNISetup, 3},
		},
		CRRetryBookkeep: nil, // header rejection/retry is handled by the NI
	}
	return s, nil
}

// MustPaperSchedule is NewPaperSchedule that panics on invalid n; for use in
// tests and package-level defaults with known-good arguments.
func MustPaperSchedule(n int) *Schedule {
	s, err := NewPaperSchedule(n)
	if err != nil {
		panic(err)
	}
	return s
}

// WithImprovedNI returns a copy of the schedule modeling a tightly coupled
// (on-chip) network interface, per the Section 5 discussion: each bundle's
// dev-access instruction counts are divided by factor (rounding up, minimum
// one where any access existed). The paper's point — that reducing the base
// cost makes the protocol overheads a larger fraction — falls out of running
// the same experiments under this schedule.
func (s *Schedule) WithImprovedNI(factor uint64) *Schedule {
	if factor == 0 {
		factor = 1
	}
	c := *s
	c.Name = fmt.Sprintf("%s+improved-ni/%d", s.Name, factor)
	shrink := func(items Items) Items {
		if items == nil {
			return nil
		}
		out := make(Items, 0, len(items))
		for _, it := range items {
			if it.Cat == Dev {
				it.N = (it.N + factor - 1) / factor
			}
			out = append(out, it)
		}
		return out
	}
	for _, f := range c.bundles() {
		*f = shrink(*f)
	}
	return &c
}

// WithInterruptReception returns a copy of the schedule modeling
// interrupt-driven reception instead of polling. The CM-5 NI supports
// interrupts, but CMAM polls because "the cost for interrupts is very high
// for the SPARC processor" (the paper's footnote 2): every packet reception
// additionally pays trapCost register instructions of trap entry/exit and
// context save/restore. Running the experiments under this schedule
// quantifies that remark.
func (s *Schedule) WithInterruptReception(trapCost uint64) *Schedule {
	c := *s
	c.Name = fmt.Sprintf("%s+interrupts/%d", s.Name, trapCost)
	trap := Item{Cat: Reg, Sub: SubCallRet, N: trapCost}
	addTrap := func(items Items) Items {
		if items == nil {
			return nil
		}
		out := make(Items, 0, len(items)+1)
		out = append(out, items...)
		return append(out, trap)
	}
	for _, f := range []*Items{
		&c.RecvSingle, &c.XferRecvPacket, &c.StreamRecvPacket,
		&c.AllocRequestRecv, &c.AllocReplyRecv, &c.XferAckRecv, &c.StreamAckRecv,
		&c.CRXferRecvPacket, &c.CRStreamRecv,
	} {
		*f = addTrap(*f)
	}
	return &c
}

// bundles returns pointers to every charge bundle in the schedule, for
// whole-schedule transforms and validation.
func (s *Schedule) bundles() []*Items {
	return []*Items{
		&s.SendSingle, &s.RecvSingle,
		&s.XferSendFixed, &s.XferSendPacket, &s.XferRecvFixed, &s.XferRecvPacket,
		&s.AllocRequestSend, &s.AllocRequestRecv, &s.SegmentAllocate,
		&s.AllocReplySend, &s.AllocReplyRecv, &s.SegmentDeallocate,
		&s.OffsetPerPacket, &s.OffsetTrackFixed, &s.OffsetTrackPacket,
		&s.XferAckSend, &s.XferAckRecv, &s.LastPacketDetect, &s.SourceRetainMessage,
		&s.StreamSendPacket, &s.StreamRecvFixed, &s.StreamRecvPacket,
		&s.SeqPerPacket, &s.InOrderArrival, &s.OutOfOrderArrival, &s.DrainBuffered,
		&s.SourceBufferPacket, &s.StreamAckSend, &s.StreamAckRecv, &s.Retransmit,
		&s.CRXferSendFixed, &s.CRXferSendPacket, &s.CRXferRecvFixed, &s.CRXferRecvPacket,
		&s.CRBufferRegister, &s.CRLastPacket,
		&s.CRStreamSend, &s.CRStreamRecvFixed, &s.CRStreamRecv, &s.CRRetryBookkeep,
	}
}

// Validate checks internal consistency of the schedule against the paper's
// published anchors where they are size-independent: Table 1 totals (20
// source, 27 destination) and the fixed Appendix A costs.
func (s *Schedule) Validate() error {
	if s.PacketWords <= 0 || s.PacketWords%2 != 0 {
		return fmt.Errorf("cost: schedule %q has invalid packet payload %d", s.Name, s.PacketWords)
	}
	type anchor struct {
		name string
		got  uint64
		want uint64
	}
	var anchors []anchor
	// The published anchors hold only for the unmodified paper schedule;
	// derived schedules (improved NI) legitimately change dev counts.
	if s.Name == "cmam-paper" {
		anchors = append(anchors,
			anchor{"single-packet send", s.SendSingle.Total(), 20},
			anchor{"single-packet receive", s.RecvSingle.Total(), 27},
		)
		bufSrc := s.AllocRequestSend.Vec().Add(s.AllocReplyRecv.Vec())
		bufDst := s.AllocRequestRecv.Vec().
			Add(s.SegmentAllocate.Vec()).
			Add(s.AllocReplySend.Vec()).
			Add(s.SegmentDeallocate.Vec())
		anchors = append(anchors,
			anchor{"finite buffer mgmt source", bufSrc.Total(), 47},
			anchor{"finite buffer mgmt destination", bufDst.Total(), 101},
			anchor{"finite fault tol source", s.XferAckRecv.Total(), 27},
			anchor{"finite fault tol destination", s.XferAckSend.Total(), 20},
		)
	}
	for _, a := range anchors {
		if a.got != a.want {
			return fmt.Errorf("cost: schedule %q: %s totals %d, want %d", s.Name, a.name, a.got, a.want)
		}
	}
	return nil
}

// Describe renders every bundle of the schedule with its per-category
// totals — a human-readable calibration dump for auditing against the
// paper's Appendix A.
func (s *Schedule) Describe() string {
	names := []string{
		"SendSingle", "RecvSingle",
		"XferSendFixed", "XferSendPacket", "XferRecvFixed", "XferRecvPacket",
		"AllocRequestSend", "AllocRequestRecv", "SegmentAllocate",
		"AllocReplySend", "AllocReplyRecv", "SegmentDeallocate",
		"OffsetPerPacket", "OffsetTrackFixed", "OffsetTrackPacket",
		"XferAckSend", "XferAckRecv", "LastPacketDetect", "SourceRetainMessage",
		"StreamSendPacket", "StreamRecvFixed", "StreamRecvPacket",
		"SeqPerPacket", "InOrderArrival", "OutOfOrderArrival", "DrainBuffered",
		"SourceBufferPacket", "StreamAckSend", "StreamAckRecv", "Retransmit",
		"CRXferSendFixed", "CRXferSendPacket", "CRXferRecvFixed", "CRXferRecvPacket",
		"CRBufferRegister", "CRLastPacket",
		"CRStreamSend", "CRStreamRecvFixed", "CRStreamRecv", "CRRetryBookkeep",
	}
	bundles := s.bundles()
	out := fmt.Sprintf("schedule %q, packet payload %d words\n", s.Name, s.PacketWords)
	for i, name := range names {
		v := bundles[i].Vec()
		if v.IsZero() {
			out += fmt.Sprintf("  %-20s -\n", name)
			continue
		}
		out += fmt.Sprintf("  %-20s reg=%-4d mem=%-4d dev=%-4d total=%d\n",
			name, v.Reg, v.Mem, v.Dev, v.Total())
	}
	return out
}
