// Package sim provides a small deterministic discrete-event simulation
// kernel. Events fire in (time, sequence) order, so two runs of the same
// configuration produce identical traces.
//
// The kernel is allocation-free on its hot paths: events live in a
// value-based slice heap (no per-event boxing through container/heap), and
// handles are generation-counted slot references rather than pointers, so
// cancelling an event releases its closure immediately instead of pinning
// it until the entry percolates out of the queue. Dead entries are
// compacted eagerly once they outnumber the live ones.
package sim

// Time is simulated time in abstract cycles.
type Time uint64

// Event is a callback scheduled to run at a point in simulated time.
type Event func(now Time)

// entry is one scheduled event, stored by value in the heap slice.
type entry struct {
	at   Time
	seq  uint64
	fire Event
	slot int32 // index into Kernel.slots
	dead bool
}

// slotInfo is the handle table's record of one entry: where it currently
// sits in the heap and which generation of the slot it belongs to. Slots
// are recycled through a free list once their entry fires or is collected;
// the generation counter makes stale handles inert.
type slotInfo struct {
	gen       uint32
	pos       int32 // heap index, -1 once the entry left the queue
	cancelled bool
}

// compactMinDead is the floor below which dead entries are left for the
// normal pop path to absorb: compacting a near-empty queue would thrash.
const compactMinDead = 8

// Kernel is a deterministic event queue. The zero value is not usable;
// construct with NewKernel.
type Kernel struct {
	queue []entry
	slots []slotInfo
	free  []int32 // recycled slot indices
	now   Time
	seq   uint64
	steps uint64
	live  int // scheduled, uncancelled, unfired events
	dead  int // cancelled entries still occupying heap positions
}

// NewKernel returns an empty kernel at time zero.
func NewKernel() *Kernel {
	return &Kernel{}
}

// Now returns the current simulated time.
func (k *Kernel) Now() Time { return k.now }

// Steps returns the number of events executed so far.
func (k *Kernel) Steps() uint64 { return k.steps }

// Pending returns the number of events waiting to fire. It is O(1): the
// kernel maintains the live count across schedule, cancel, and fire.
func (k *Kernel) Pending() int { return k.live }

// Handle identifies a scheduled event so it can be cancelled. The zero
// Handle is valid and refers to nothing.
type Handle struct {
	k    *Kernel
	slot int32
	gen  uint32
}

// Cancelled reports whether the handle's event was cancelled and its entry
// not yet collected by the kernel. Once the kernel collects the dead entry
// (on pop or compaction) the handle goes stale and reports false.
func (h Handle) Cancelled() bool {
	if h.k == nil || h.slot < 0 || int(h.slot) >= len(h.k.slots) {
		return false
	}
	sl := &h.k.slots[h.slot]
	return sl.gen == h.gen && sl.cancelled
}

// At schedules fn to run at absolute time t. Scheduling in the past (t less
// than Now) fires the event at the current time instead; the kernel never
// travels backwards.
func (k *Kernel) At(t Time, fn Event) Handle {
	if t < k.now {
		t = k.now
	}
	s := k.allocSlot()
	i := len(k.queue)
	k.queue = append(k.queue, entry{at: t, seq: k.seq, fire: fn, slot: s})
	k.seq++
	k.slots[s].pos = int32(i)
	k.live++
	k.siftUp(i)
	return Handle{k: k, slot: s, gen: k.slots[s].gen}
}

// After schedules fn to run d cycles from now.
func (k *Kernel) After(d Time, fn Event) Handle {
	return k.At(k.now+d, fn)
}

// Cancel marks a scheduled event so it will not fire and releases its
// closure immediately. Cancelling an already-fired, already-cancelled, or
// stale handle is a no-op.
func (k *Kernel) Cancel(h Handle) {
	if h.k != k || h.slot < 0 || int(h.slot) >= len(k.slots) {
		return
	}
	sl := &k.slots[h.slot]
	if sl.gen != h.gen || sl.cancelled || sl.pos < 0 {
		return
	}
	sl.cancelled = true
	k.queue[sl.pos].dead = true
	k.queue[sl.pos].fire = nil // collectible now, not when popped
	k.live--
	k.dead++
	k.maybeCompact()
}

// Step executes the single next event. It reports false when no live events
// remain.
func (k *Kernel) Step() bool {
	for len(k.queue) > 0 {
		e := k.popRoot()
		if e.dead {
			k.dead--
			continue
		}
		k.live--
		k.now = e.at
		k.steps++
		e.fire(k.now)
		return true
	}
	return false
}

// Run executes events until the queue drains or the step budget is
// exhausted, returning the number of events executed. A budget of zero means
// no limit; runaway simulations are the caller's responsibility in that
// case.
func (k *Kernel) Run(budget uint64) uint64 {
	var done uint64
	for budget == 0 || done < budget {
		if !k.Step() {
			break
		}
		done++
	}
	return done
}

// RunUntil executes events with firing times not later than deadline,
// advancing Now to the deadline even if the queue drains early.
func (k *Kernel) RunUntil(deadline Time) {
	for len(k.queue) > 0 {
		// The root is the earliest live or dead entry; dead entries must be
		// collected regardless, but only live ones gate on time.
		if k.queue[0].dead {
			k.popRoot()
			k.dead--
			continue
		}
		if k.queue[0].at > deadline {
			break
		}
		k.Step()
	}
	if k.now < deadline {
		k.now = deadline
	}
}

// allocSlot takes a slot index from the free list, growing the table when
// none are available. The slot keeps the generation its last free bumped.
func (k *Kernel) allocSlot() int32 {
	if n := len(k.free); n > 0 {
		s := k.free[n-1]
		k.free = k.free[:n-1]
		return s
	}
	k.slots = append(k.slots, slotInfo{pos: -1})
	return int32(len(k.slots) - 1)
}

// freeSlot retires a slot once its entry left the queue: the generation
// bump makes every outstanding handle to it stale.
func (k *Kernel) freeSlot(s int32) {
	sl := &k.slots[s]
	sl.gen++
	sl.pos = -1
	sl.cancelled = false
	k.free = append(k.free, s)
}

// popRoot removes and returns the heap root, freeing its slot.
func (k *Kernel) popRoot() entry {
	e := k.queue[0]
	last := len(k.queue) - 1
	k.queue[0] = k.queue[last]
	k.queue[last] = entry{} // release the moved-from closure reference
	k.queue = k.queue[:last]
	if last > 0 {
		k.slots[k.queue[0].slot].pos = 0
		k.siftDown(0)
	}
	k.freeSlot(e.slot)
	return e
}

// maybeCompact collects dead entries eagerly once they exceed half the
// queue, so a cancel-heavy workload cannot leave the heap dominated by
// corpses that every sift has to wade through.
func (k *Kernel) maybeCompact() {
	if k.dead >= compactMinDead && k.dead*2 > len(k.queue) {
		k.compact()
	}
}

// compact filters dead entries out of the queue in place and rebuilds the
// heap bottom-up (O(n), cheaper than n sifted deletions).
func (k *Kernel) compact() {
	w := 0
	for i := range k.queue {
		if k.queue[i].dead {
			k.freeSlot(k.queue[i].slot)
			continue
		}
		k.queue[w] = k.queue[i]
		k.slots[k.queue[w].slot].pos = int32(w)
		w++
	}
	for i := w; i < len(k.queue); i++ {
		k.queue[i] = entry{}
	}
	k.queue = k.queue[:w]
	k.dead = 0
	for i := w/2 - 1; i >= 0; i-- {
		k.siftDown(i)
	}
}

// less orders entries by (time, sequence); sequence numbers are unique, so
// the order is total and deterministic.
func (k *Kernel) less(i, j int) bool {
	a, b := &k.queue[i], &k.queue[j]
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

func (k *Kernel) swap(i, j int) {
	k.queue[i], k.queue[j] = k.queue[j], k.queue[i]
	k.slots[k.queue[i].slot].pos = int32(i)
	k.slots[k.queue[j].slot].pos = int32(j)
}

func (k *Kernel) siftUp(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !k.less(i, parent) {
			return
		}
		k.swap(i, parent)
		i = parent
	}
}

func (k *Kernel) siftDown(i int) {
	n := len(k.queue)
	for {
		left := 2*i + 1
		if left >= n {
			return
		}
		least := left
		if right := left + 1; right < n && k.less(right, left) {
			least = right
		}
		if !k.less(least, i) {
			return
		}
		k.swap(i, least)
		i = least
	}
}
