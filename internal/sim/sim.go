// Package sim provides a small deterministic discrete-event simulation
// kernel used by the flit-level network simulator. Events fire in
// (time, sequence) order, so two runs of the same configuration produce
// identical traces.
package sim

import "container/heap"

// Time is simulated time in abstract cycles.
type Time uint64

// Event is a callback scheduled to run at a point in simulated time.
type Event func(now Time)

type entry struct {
	at    Time
	seq   uint64
	fire  Event
	index int
	dead  bool
}

type eventQueue []*entry

func (q eventQueue) Len() int { return len(q) }

func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}

func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}

func (q *eventQueue) Push(x any) {
	e := x.(*entry)
	e.index = len(*q)
	*q = append(*q, e)
}

func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return e
}

// Kernel is a deterministic event queue. The zero value is not usable;
// construct with NewKernel.
type Kernel struct {
	queue eventQueue
	now   Time
	seq   uint64
	steps uint64
}

// NewKernel returns an empty kernel at time zero.
func NewKernel() *Kernel {
	k := &Kernel{}
	heap.Init(&k.queue)
	return k
}

// Now returns the current simulated time.
func (k *Kernel) Now() Time { return k.now }

// Steps returns the number of events executed so far.
func (k *Kernel) Steps() uint64 { return k.steps }

// Pending returns the number of events waiting to fire.
func (k *Kernel) Pending() int {
	n := 0
	for _, e := range k.queue {
		if !e.dead {
			n++
		}
	}
	return n
}

// Handle identifies a scheduled event so it can be cancelled.
type Handle struct{ e *entry }

// Cancelled reports whether the handle's event was cancelled.
func (h Handle) Cancelled() bool { return h.e != nil && h.e.dead }

// At schedules fn to run at absolute time t. Scheduling in the past (t less
// than Now) fires the event at the current time instead; the kernel never
// travels backwards.
func (k *Kernel) At(t Time, fn Event) Handle {
	if t < k.now {
		t = k.now
	}
	e := &entry{at: t, seq: k.seq, fire: fn}
	k.seq++
	heap.Push(&k.queue, e)
	return Handle{e}
}

// After schedules fn to run d cycles from now.
func (k *Kernel) After(d Time, fn Event) Handle {
	return k.At(k.now+d, fn)
}

// Cancel marks a scheduled event so it will not fire. Cancelling an
// already-fired or already-cancelled event is a no-op.
func (k *Kernel) Cancel(h Handle) {
	if h.e != nil {
		h.e.dead = true
	}
}

// Step executes the single next event. It reports false when no live events
// remain.
func (k *Kernel) Step() bool {
	for k.queue.Len() > 0 {
		e := heap.Pop(&k.queue).(*entry)
		if e.dead {
			continue
		}
		k.now = e.at
		k.steps++
		e.fire(k.now)
		return true
	}
	return false
}

// Run executes events until the queue drains or the step budget is
// exhausted, returning the number of events executed. A budget of zero means
// no limit; runaway simulations are the caller's responsibility in that
// case.
func (k *Kernel) Run(budget uint64) uint64 {
	var done uint64
	for budget == 0 || done < budget {
		if !k.Step() {
			break
		}
		done++
	}
	return done
}

// RunUntil executes events with firing times not later than deadline,
// advancing Now to the deadline even if the queue drains early.
func (k *Kernel) RunUntil(deadline Time) {
	for k.queue.Len() > 0 {
		// Peek: queue[0] is the earliest live or dead entry; dead entries
		// must be popped regardless, but only live ones gate on time.
		e := k.queue[0]
		if e.dead {
			heap.Pop(&k.queue)
			continue
		}
		if e.at > deadline {
			break
		}
		k.Step()
	}
	if k.now < deadline {
		k.now = deadline
	}
}
