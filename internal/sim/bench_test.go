package sim

import "testing"

// noopEvent is package-level so scheduling it allocates no closure.
var noopEvent = func(Time) {}

// BenchmarkKernelChurn measures the schedule/cancel/fire cycle the protocol
// timers exercise: a window of events is scheduled, half are cancelled, and
// the rest fire. The kernel's value-based heap and slot recycling make the
// steady state allocation-free.
func BenchmarkKernelChurn(b *testing.B) {
	k := NewKernel()
	const window = 64
	handles := make([]Handle, 0, window)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		handles = append(handles, k.After(Time(i%16)+1, noopEvent))
		if len(handles) == window {
			for j, h := range handles {
				if j%2 == 0 {
					k.Cancel(h)
				}
			}
			handles = handles[:0]
			for k.Step() {
			}
		}
	}
}

// BenchmarkKernelSchedule measures pure scheduling plus draining — the
// no-cancellation path.
func BenchmarkKernelSchedule(b *testing.B) {
	k := NewKernel()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k.After(Time(i%32)+1, noopEvent)
		if i%64 == 63 {
			for k.Step() {
			}
		}
	}
	for k.Step() {
	}
}
