package sim

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestKernelFiresInTimeOrder(t *testing.T) {
	k := NewKernel()
	var got []Time
	for _, at := range []Time{30, 10, 20} {
		at := at
		k.At(at, func(now Time) {
			if now != at {
				t.Errorf("fired at %d, scheduled for %d", now, at)
			}
			got = append(got, now)
		})
	}
	k.Run(0)
	want := []Time{10, 20, 30}
	if len(got) != len(want) {
		t.Fatalf("fired %d events, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("event %d at %d, want %d", i, got[i], want[i])
		}
	}
}

func TestKernelTieBreaksBySchedulingOrder(t *testing.T) {
	k := NewKernel()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		k.At(5, func(Time) { got = append(got, i) })
	}
	k.Run(0)
	for i, v := range got {
		if v != i {
			t.Fatalf("same-time events fired out of scheduling order: %v", got)
		}
	}
}

func TestKernelAfterAndNow(t *testing.T) {
	k := NewKernel()
	k.After(7, func(now Time) {
		if now != 7 {
			t.Errorf("now = %d, want 7", now)
		}
		k.After(5, func(now Time) {
			if now != 12 {
				t.Errorf("nested now = %d, want 12", now)
			}
		})
	})
	k.Run(0)
	if k.Now() != 12 {
		t.Errorf("final Now = %d, want 12", k.Now())
	}
	if k.Steps() != 2 {
		t.Errorf("Steps = %d, want 2", k.Steps())
	}
}

func TestKernelPastSchedulingClampsToNow(t *testing.T) {
	k := NewKernel()
	fired := false
	k.At(10, func(Time) {
		k.At(3, func(now Time) {
			fired = true
			if now != 10 {
				t.Errorf("past event fired at %d, want 10", now)
			}
		})
	})
	k.Run(0)
	if !fired {
		t.Error("past-scheduled event never fired")
	}
}

func TestKernelCancel(t *testing.T) {
	k := NewKernel()
	fired := false
	h := k.At(5, func(Time) { fired = true })
	k.Cancel(h)
	if !h.Cancelled() {
		t.Error("handle not marked cancelled")
	}
	k.Run(0)
	if fired {
		t.Error("cancelled event fired")
	}
	// Cancelling twice, or cancelling a zero handle, must not panic.
	k.Cancel(h)
	k.Cancel(Handle{})
}

func TestKernelStepBudget(t *testing.T) {
	k := NewKernel()
	count := 0
	var reschedule func(Time)
	reschedule = func(Time) {
		count++
		k.After(1, reschedule)
	}
	k.After(1, reschedule)
	if done := k.Run(100); done != 100 {
		t.Errorf("Run = %d, want 100", done)
	}
	if count != 100 {
		t.Errorf("count = %d, want 100", count)
	}
}

func TestKernelRunUntil(t *testing.T) {
	k := NewKernel()
	var fired []Time
	for _, at := range []Time{5, 10, 15, 20} {
		k.At(at, func(now Time) { fired = append(fired, now) })
	}
	k.RunUntil(12)
	if len(fired) != 2 {
		t.Fatalf("fired %d events by t=12, want 2 (%v)", len(fired), fired)
	}
	if k.Now() != 12 {
		t.Errorf("Now = %d, want 12", k.Now())
	}
	k.RunUntil(100)
	if len(fired) != 4 {
		t.Errorf("fired %d events total, want 4", len(fired))
	}
	if k.Now() != 100 {
		t.Errorf("Now = %d, want 100 (deadline advances even when drained)", k.Now())
	}
}

func TestKernelRunUntilSkipsCancelledHead(t *testing.T) {
	k := NewKernel()
	h := k.At(5, func(Time) { t.Error("cancelled event fired") })
	fired := false
	k.At(6, func(Time) { fired = true })
	k.Cancel(h)
	k.RunUntil(10)
	if !fired {
		t.Error("live event behind cancelled head never fired")
	}
}

func TestKernelPending(t *testing.T) {
	k := NewKernel()
	h1 := k.At(1, func(Time) {})
	k.At(2, func(Time) {})
	if k.Pending() != 2 {
		t.Errorf("Pending = %d, want 2", k.Pending())
	}
	k.Cancel(h1)
	if k.Pending() != 1 {
		t.Errorf("Pending after cancel = %d, want 1", k.Pending())
	}
}

func TestKernelPendingTracksFires(t *testing.T) {
	k := NewKernel()
	for i := 0; i < 10; i++ {
		k.At(Time(i), func(Time) {})
	}
	if k.Pending() != 10 {
		t.Fatalf("Pending = %d, want 10", k.Pending())
	}
	for want := 9; want >= 0; want-- {
		k.Step()
		if k.Pending() != want {
			t.Fatalf("Pending after step = %d, want %d", k.Pending(), want)
		}
	}
}

// A stale handle — one whose event already fired and whose slot was
// recycled for a newer event — must not cancel the newer event.
func TestKernelStaleHandleIsInert(t *testing.T) {
	k := NewKernel()
	old := k.At(1, func(Time) {})
	k.Run(0) // fires; the slot returns to the free list
	fired := false
	fresh := k.At(2, func(Time) { fired = true })
	k.Cancel(old) // stale generation: must not touch the recycled slot
	if fresh.Cancelled() || old.Cancelled() {
		t.Fatal("stale cancel leaked into the recycled slot")
	}
	k.Run(0)
	if !fired {
		t.Fatal("stale handle cancelled a live event")
	}
}

// Cancelling most of a large queue must compact it: dead entries may not
// keep occupying heap slots until popped.
func TestKernelCompactsDeadEntries(t *testing.T) {
	k := NewKernel()
	var handles []Handle
	for i := 0; i < 1000; i++ {
		handles = append(handles, k.At(Time(i+1), func(Time) {}))
	}
	for i, h := range handles {
		if i%4 != 0 {
			k.Cancel(h)
		}
	}
	if len(k.queue) > 2*k.live {
		t.Fatalf("queue holds %d entries for %d live events — dead entries not compacted", len(k.queue), k.live)
	}
	if k.Pending() != 250 {
		t.Fatalf("Pending = %d, want 250", k.Pending())
	}
	fired := 0
	for k.Step() {
		fired++
	}
	if fired != 250 {
		t.Fatalf("fired %d events, want the 250 uncancelled ones", fired)
	}
}

// Cancellation releases the event closure immediately rather than pinning
// it until the entry percolates out of the heap.
func TestKernelCancelReleasesClosure(t *testing.T) {
	k := NewKernel()
	h := k.At(100, func(Time) { t.Error("cancelled event fired") })
	k.Cancel(h)
	if sl := k.slots[h.slot]; sl.pos >= 0 && k.queue[sl.pos].fire != nil {
		t.Fatal("cancelled entry still holds its closure")
	}
	k.Run(0)
}

// Property: any set of scheduled times fires in nondecreasing sorted order,
// regardless of insertion order.
func TestKernelOrderingProperty(t *testing.T) {
	prop := func(times []uint16) bool {
		k := NewKernel()
		var fired []Time
		for _, u := range times {
			k.At(Time(u), func(now Time) { fired = append(fired, now) })
		}
		k.Run(0)
		if len(fired) != len(times) {
			return false
		}
		want := make([]Time, len(times))
		for i, u := range times {
			want[i] = Time(u)
		}
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		for i := range want {
			if fired[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Two kernels fed the same pseudo-random schedule execute identically —
// the determinism guarantee every experiment depends on.
func TestKernelDeterminism(t *testing.T) {
	run := func(seed int64) []Time {
		rng := rand.New(rand.NewSource(seed))
		k := NewKernel()
		var fired []Time
		var chain func(Time)
		remaining := 500
		chain = func(now Time) {
			fired = append(fired, now)
			if remaining > 0 {
				remaining--
				k.After(Time(rng.Intn(10)), chain)
			}
		}
		for i := 0; i < 20; i++ {
			k.At(Time(rng.Intn(50)), chain)
		}
		k.Run(0)
		return fired
	}
	a, b := run(42), run(42)
	if len(a) != len(b) {
		t.Fatalf("runs diverged in length: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("runs diverged at event %d: %d vs %d", i, a[i], b[i])
		}
	}
}
