package flitnet

import (
	"fmt"
	"testing"

	"msglayer/internal/network"
	"msglayer/internal/topology"
)

// The event-driven engine's contract with the dense reference stepper is
// byte-identical results: same Stats, same cycle count, same packets
// delivered to each node in the same order. These tests drive both engines
// through identical seeded workloads — random sources, destinations,
// payload sizes, and idle gaps, across all three routing modes and both
// virtual-channel settings — and compare everything observable.

// diffRNG is a splitmix-style deterministic generator so the workload grid
// is reproducible across runs and platforms.
type diffRNG uint64

func (r *diffRNG) next() uint64 {
	*r += 0x9e3779b97f4a7c15
	z := uint64(*r)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func (r *diffRNG) intn(n int) int { return int(r.next() % uint64(n)) }

// runDiffWorkload drives one net through the seeded workload and returns a
// transcript: every delivered packet in per-node drain order, plus the
// final counters.
func runDiffWorkload(t *testing.T, cfg Config, seed uint64, injections, burst int) (transcript []string, stats Stats, cycle uint64) {
	t.Helper()
	n := MustNew(cfg)
	defer n.Close()
	nodes := n.Nodes()
	rng := diffRNG(seed)
	drain := func(tag string) {
		for node := 0; node < nodes; node++ {
			for {
				p, ok := n.TryRecv(node)
				if !ok {
					break
				}
				transcript = append(transcript, fmt.Sprintf("%s node=%d src=%d dst=%d data=%v", tag, node, p.Src, p.Dst, p.Data))
			}
		}
	}
	injected := 0
	for injected < injections {
		// A burst of injections, then a randomized stretch of ticking —
		// sometimes cycle by cycle, sometimes a drain-to-quiet that
		// exercises the idle fast-forward against dense idling.
		for b := 0; b < burst && injected < injections; b++ {
			src := rng.intn(nodes)
			dst := rng.intn(nodes)
			if src == dst {
				dst = (dst + 1) % nodes
			}
			words := rng.intn(n.PacketWords() + 1)
			data := make([]network.Word, words)
			for i := range data {
				data[i] = network.Word(rng.next())
			}
			if err := n.Inject(network.Packet{Src: src, Dst: dst, Data: data}); err != nil {
				// Inject queue full: tick a little and move on; both
				// engines see the identical rng stream either way.
				transcript = append(transcript, "backpressure "+err.Error())
			}
			injected++
		}
		switch rng.intn(3) {
		case 0:
			n.Tick(1 + rng.intn(7))
		case 1:
			n.Tick(64)
		default:
			n.TickUntilQuiet(4096)
		}
		drain("mid")
	}
	if !n.TickUntilQuiet(1_000_000) {
		t.Fatalf("workload did not drain: pending=%d", n.Pending())
	}
	drain("end")
	return transcript, n.FlitStats(), n.Cycle()
}

// TestDenseEventEquivalence is the differential property test: the same
// seeded workload grid through the dense reference and the event engine
// must produce byte-identical Stats, delivery order, and cycle counts for
// every mode × virtual-channel × seed combination.
func TestDenseEventEquivalence(t *testing.T) {
	topo := func() topology.Topology { return topology.MustMesh(4, 4) }
	grid := []struct {
		name string
		cfg  Config
	}{
		{"det-vc1", Config{Topology: topo(), Mode: Deterministic}},
		{"det-vc2", Config{Topology: topo(), Mode: Deterministic, VirtualChannels: 2}},
		{"adaptive-vc1", Config{Topology: topo(), Mode: Adaptive}},
		{"adaptive-vc3", Config{Topology: topo(), Mode: Adaptive, VirtualChannels: 3}},
		{"cr", Config{Topology: topo(), Mode: CR}},
		{"cr-tight", Config{Topology: topo(), Mode: CR, KillTimeout: 8, RetryBackoff: 64, BufferFlits: 2}},
		{"fattree-adaptive", Config{Topology: topology.MustFatTree(4, 2), Mode: Adaptive, VirtualChannels: 2}},
		{"fattree-cr", Config{Topology: topology.MustFatTree(4, 2), Mode: CR}},
	}
	for _, g := range grid {
		for seed := uint64(1); seed <= 3; seed++ {
			name := fmt.Sprintf("%s/seed%d", g.name, seed)
			t.Run(name, func(t *testing.T) {
				dense := g.cfg
				dense.DenseReference = true
				denseTr, denseStats, denseCycle := runDiffWorkload(t, dense, seed, 120, 5)
				eventTr, eventStats, eventCycle := runDiffWorkload(t, g.cfg, seed, 120, 5)
				if denseStats != eventStats {
					t.Errorf("stats diverge:\n dense %+v\n event %+v", denseStats, eventStats)
				}
				if denseCycle != eventCycle {
					t.Errorf("cycle diverges: dense=%d event=%d", denseCycle, eventCycle)
				}
				if len(denseTr) != len(eventTr) {
					t.Fatalf("transcript length diverges: dense=%d event=%d", len(denseTr), len(eventTr))
				}
				for i := range denseTr {
					if denseTr[i] != eventTr[i] {
						t.Fatalf("transcript diverges at %d:\n dense %s\n event %s", i, denseTr[i], eventTr[i])
					}
				}
			})
		}
	}
}

// TestIdleFastForwardAccounting pins the Stats.Cycles semantics of the
// fast-forward: skipped idle cycles count into Stats.Cycles exactly as if
// they had been ticked, and IdleSkipped reports how many were skipped.
func TestIdleFastForwardAccounting(t *testing.T) {
	cfg := Config{Topology: topology.MustMesh(8, 8), Mode: CR, RetryBackoff: 2048, KillTimeout: 4, PacketWords: 16}
	n := MustNew(cfg)
	// Two long worms racing east along the same row: the second blocks
	// behind the first past the kill timeout and lands in a long backoff.
	long := make([]network.Word, 16)
	if err := n.Inject(network.Packet{Src: 0, Dst: 7, Data: long}); err != nil {
		t.Fatal(err)
	}
	if err := n.Inject(network.Packet{Src: 1, Dst: 7, Data: long}); err != nil {
		t.Fatal(err)
	}
	if !n.TickUntilQuiet(1_000_000) {
		t.Fatal("did not drain")
	}
	if n.FlitStats().Kills == 0 {
		t.Fatal("workload never exercised CR kill/backoff; fast-forward untested")
	}
	if n.IdleSkipped() == 0 {
		t.Fatal("no idle cycles were fast-forwarded")
	}
	if n.FlitStats().Cycles != n.Cycle() {
		t.Fatalf("Stats.Cycles=%d diverges from Cycle()=%d", n.FlitStats().Cycles, n.Cycle())
	}
	// The dense stepper never skips but must land on the same cycle count.
	denseCfg := cfg
	denseCfg.Topology = topology.MustMesh(8, 8)
	denseCfg.DenseReference = true
	dense := MustNew(denseCfg)
	_ = dense.Inject(network.Packet{Src: 0, Dst: 7, Data: long})
	_ = dense.Inject(network.Packet{Src: 1, Dst: 7, Data: long})
	if !dense.TickUntilQuiet(1_000_000) {
		t.Fatal("dense did not drain")
	}
	if dense.IdleSkipped() != 0 {
		t.Fatalf("dense reference fast-forwarded %d cycles", dense.IdleSkipped())
	}
	if dense.FlitStats() != n.FlitStats() {
		t.Fatalf("stats diverge:\n dense %+v\n event %+v", dense.FlitStats(), n.FlitStats())
	}
}

// TestQuietCountersMatchScan holds the O(1) quiet()/Pending() counters to
// the ground truth a full scan computes, at every step of a busy workload.
func TestQuietCountersMatchScan(t *testing.T) {
	cfg := Config{Topology: topology.MustMesh(4, 4), Mode: CR, KillTimeout: 8, RetryBackoff: 32}
	n := MustNew(cfg)
	rng := diffRNG(7)
	scanPending := func() (worms int, recv int) {
		for _, f := range n.flows {
			worms += f.pending()
		}
		for node := range n.recvq {
			recv += n.recvq[node].len()
		}
		return worms, recv
	}
	for step := 0; step < 4000; step++ {
		if rng.intn(4) == 0 {
			src := rng.intn(16)
			dst := rng.intn(16)
			if src != dst {
				_ = n.Inject(network.Packet{Src: src, Dst: dst, Data: []network.Word{network.Word(step)}})
			}
		}
		n.tickOnce()
		if rng.intn(8) == 0 {
			node := rng.intn(16)
			_, _ = n.TryRecv(node)
		}
		queued, recv := scanPending()
		if n.queuedWorms != queued {
			t.Fatalf("step %d: queuedWorms=%d, scan says %d", step, n.queuedWorms, queued)
		}
		if n.recvqTotal != recv {
			t.Fatalf("step %d: recvqTotal=%d, scan says %d", step, n.recvqTotal, recv)
		}
		wantQuiet := n.inflight == 0 && queued == 0
		if n.quiet() != wantQuiet {
			t.Fatalf("step %d: quiet()=%v, scan says %v", step, n.quiet(), wantQuiet)
		}
		if want := n.inflight + queued + recv; n.Pending() != want {
			t.Fatalf("step %d: Pending()=%d, scan says %d", step, n.Pending(), want)
		}
	}
}
