// Package flitnet is a flit-level wormhole-routed network simulator. It
// demonstrates the router mechanisms behind the two behavioral substrates
// of package network:
//
//   - Deterministic routing (dimension-order on a mesh, fixed up-path on a
//     fat tree) delivers each flow over a single path, preserving order.
//   - Adaptive routing exploits the fat tree's redundant up links (or the
//     mesh's productive directions); worms of one flow can take different
//     paths and arrive out of order — the CM-5-style network feature whose
//     software cost the paper measures.
//   - Compressionless Routing mode adds the Section 4 services: a worm's
//     header may be rejected by a resource-checking destination (tearing
//     down the path without deadlock), a worm whose head cannot advance
//     for KillTimeout cycles is killed and retried from the source
//     (deadlock recovery without acceptance guarantees), short worms are
//     padded so the tail's acceptance doubles as an end-to-end
//     acknowledgement, and worms of one flow are issued one at a time so
//     transmission order is preserved even across kills and retries.
//
// A packet becomes a worm of single-word flits: one head (routing
// information), one flit per payload word, and one tail. Routers have one
// FIFO input buffer per port; a worm's head claims an output port, its body
// follows the claimed path, and the tail releases it — classic wormhole
// flow control. The simulation is cycle-stepped and fully deterministic.
package flitnet

import (
	"errors"
	"fmt"

	"msglayer/internal/network"
	"msglayer/internal/obs"
	"msglayer/internal/topology"
)

// Mode selects the routing discipline.
type Mode int

// Routing modes.
const (
	// Deterministic follows the first route candidate everywhere:
	// single-path, order-preserving, no recovery.
	Deterministic Mode = iota
	// Adaptive takes the first route candidate whose output is free,
	// permitting multipath and hence out-of-order delivery.
	Adaptive
	// CR is Compressionless Routing: deterministic paths plus header
	// rejection, kill-and-retry, padding, and per-flow serialization.
	CR
)

// String names the mode.
func (m Mode) String() string {
	switch m {
	case Deterministic:
		return "deterministic"
	case Adaptive:
		return "adaptive"
	case CR:
		return "cr"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// Config assembles a flit network.
type Config struct {
	// Topology is required.
	Topology topology.Topology
	// Mode selects the routing discipline.
	Mode Mode
	// PacketWords is the payload capacity of one packet. Defaults to 4.
	PacketWords int
	// BufferFlits is the capacity of each router input buffer. Defaults
	// to 4.
	BufferFlits int
	// InjectQueue bounds worms waiting at each node. Defaults to 16;
	// injection beyond it backpressures.
	InjectQueue int
	// KillTimeout (CR only) is how many cycles a worm's head may sit
	// blocked before the worm is killed and retried. Defaults to 64.
	KillTimeout int
	// RetryBackoff (CR only) is how many cycles a killed worm waits
	// before re-entering its flow queue. Defaults to 16.
	RetryBackoff int
	// MaxRetries (CR only) bounds kill/reject retries per worm before
	// the injection is reported failed. Defaults to 64.
	MaxRetries int
	// DenseReference selects the retained dense scheduling core: every
	// router × port × virtual channel is scanned every cycle, the way the
	// engine worked before the event-driven worklists. Results are
	// byte-identical to the default engine — the differential property
	// test holds the two to that contract — but cost scales with topology
	// size instead of flits in flight. Use it only as a baseline for
	// benchmarks and for differential testing.
	DenseReference bool
	// VirtualChannels multiplexes each physical link over V virtual
	// channels (Dally's flow control, one of the features the paper
	// names as a source of out-of-order delivery). Each input port gets
	// V independent FIFOs; a worm claims one (port, vc) lane per hop,
	// and a physical link still carries at most one flit per cycle, so
	// worms sharing a link interleave instead of serializing. In
	// adaptive mode channel 0 is the escape lane, restricted to the
	// deterministic first route candidate (Duato's discipline). Defaults
	// to 1. CR mode always uses a single channel: its padding and
	// implicit-acknowledgement semantics assume the worm owns its path.
	VirtualChannels int
	// Shards partitions the routers into contiguous ranges run on their
	// own worker goroutines inside a per-cycle barrier (see shard.go).
	// Results are byte-identical at any shard count. 0 and 1 select the
	// serial engine; values above the router count clamp to it. CR mode,
	// the dense reference, and nets with an acceptance check installed
	// always run serial (kills sweep the whole network; the sharded engine
	// excludes them by construction). Callers that tick a sharded net
	// should Close it when done to release the workers.
	Shards int
}

type flitKind uint8

const (
	flitHead flitKind = iota
	flitBody
	flitPad
	flitTail
)

type flit struct {
	worm    *worm
	kind    flitKind
	arrived uint64 // cycle the flit entered its current buffer
}

type wormState uint8

const (
	wormQueued wormState = iota
	wormInjecting
	wormInFlight // fully injected, tail still traveling
	wormDelivered
	wormKilled
	wormFailed
)

type worm struct {
	id       uint64
	packet   network.Packet
	state    wormState
	flits    int // total flits including head, pads, tail
	sent     int // flits pushed into the network so far
	retries  int
	blocked  uint64 // consecutive cycles the head could not advance
	wakeAt   uint64 // cycle a killed worm re-enters its flow queue
	srcVC    int    // the virtual channel the worm injects on
	injected uint64 // cycle the packet entered the inject queue
	// Observability bookkeeping (costs three stores per worm when no
	// observer is attached): waitFrom marks when the current wait began
	// (inject-queue entry or kill backoff), startedAt when injection began,
	// and stallCycles counts cycles the head sat blocked in transit.
	waitFrom    uint64
	startedAt   uint64
	stallCycles uint64
	// claims lists the routers where this worm currently holds an output
	// lane, in path order; claimHead indexes the first still-held claim.
	// The head appends as it claims, the tail releases front-first, and a
	// kill releases the remainder — so tearing down a worm's path costs
	// O(path length) instead of a scan over every router.
	claims    []int32
	claimHead int
}

// pushClaim records that the worm holds an output lane at router r.
func (w *worm) pushClaim(r int) { w.claims = append(w.claims, int32(r)) }

// popClaim releases the worm's oldest claim (the tail has left that
// router); the list rewinds once empty so it never grows past path length.
func (w *worm) popClaim() {
	w.claimHead++
	if w.claimHead == len(w.claims) {
		w.claims = w.claims[:0]
		w.claimHead = 0
	}
}

// lane addresses one virtual channel of one port.
type lane struct {
	port, vc int
}

// laneFIFO is the fixed-capacity flit ring backing one virtual channel of
// one input port. Capacity is BufferFlits, allocated once at construction;
// push and pop never allocate, unlike the slide-and-append slices they
// replaced (whose backing arrays crawled forward one flit at a time,
// reallocating every few cycles under load).
type laneFIFO struct {
	buf  []flit
	head int
	n    int
}

func (q *laneFIFO) len() int   { return q.n }
func (q *laneFIFO) full() bool { return q.n == len(q.buf) }

// front returns the flit at the head of the ring; call only when len > 0.
func (q *laneFIFO) front() *flit { return &q.buf[q.head] }

func (q *laneFIFO) push(f flit) {
	q.buf[(q.head+q.n)%len(q.buf)] = f
	q.n++
}

func (q *laneFIFO) pop() {
	q.buf[q.head] = flit{}
	q.head = (q.head + 1) % len(q.buf)
	q.n--
}

// filterWorm removes every flit of w from the ring, preserving the order
// of the rest — the kill sweep. It returns how many flits it removed, so
// the caller can keep the buffered-flit gauges exact.
func (q *laneFIFO) filterWorm(w *worm) int {
	kept := 0
	for i := 0; i < q.n; i++ {
		fl := q.buf[(q.head+i)%len(q.buf)]
		if fl.worm == w {
			continue
		}
		q.buf[(q.head+kept)%len(q.buf)] = fl
		kept++
	}
	removed := q.n - kept
	for i := kept; i < q.n; i++ {
		q.buf[(q.head+i)%len(q.buf)] = flit{}
	}
	q.n = kept
	return removed
}

type router struct {
	inputs [][]laneFIFO    // [port][vc] input buffer
	owner  [][]*worm       // [port][vc] output lane -> owning worm
	route  map[uint64]lane // worm id -> claimed output lane here
	// outUsed[port] stamped with the current cycle means the physical
	// link already carried a flit this cycle — the per-cycle map the
	// route phase used to allocate, as a reusable scratch slice.
	outUsed []uint64
}

type flowKey struct {
	src, dst int
}

type flow struct {
	queue  []*worm // worms awaiting injection, in order; head indexes the front
	head   int
	active *worm // the worm currently entering the network (CR: at most one in flight)
	idx    int32 // position in Net.order — the ready worklist's sort key
}

func (f *flow) pending() int { return len(f.queue) - f.head }

func (f *flow) front() *worm { return f.queue[f.head] }

func (f *flow) popFront() *worm {
	w := f.queue[f.head]
	f.queue[f.head] = nil
	f.head++
	if f.head == len(f.queue) {
		f.queue = f.queue[:0]
		f.head = 0
	}
	return w
}

func (f *flow) pushBack(w *worm) { f.queue = append(f.queue, w) }

// pushFront re-queues a killed worm at the front, reusing the popped slot
// when one exists so retries do not reallocate the queue.
func (f *flow) pushFront(w *worm) {
	if f.head > 0 {
		f.head--
		f.queue[f.head] = w
		return
	}
	f.queue = append(f.queue, nil)
	copy(f.queue[1:], f.queue)
	f.queue[0] = w
}

// Stats extends the behavioral substrate counters with flit-level detail.
type Stats struct {
	network.Stats
	Kills        uint64 // worms killed (timeout or rejection)
	Retries      uint64 // kill/reject retries performed
	Cycles       uint64 // simulated cycles
	FlitMoves    uint64 // individual flit hops
	PadFlits     uint64 // padding flits injected (CR)
	FailedWorms  uint64 // worms that exhausted their retries
	LatencySum   uint64 // total queue-to-tail-delivery latency, cycles
	LatencyMax   uint64 // worst packet latency observed, cycles
	LatencyCount uint64 // packets contributing to LatencySum
}

// MeanLatency returns the average injection-to-delivery latency in cycles.
func (s Stats) MeanLatency() float64 {
	if s.LatencyCount == 0 {
		return 0
	}
	return float64(s.LatencySum) / float64(s.LatencyCount)
}

// pktQueue is a per-node delivery queue that recycles its backing array:
// popping advances a head index instead of re-slicing, and a drained queue
// rewinds to reuse its capacity, so steady-state delivery allocates
// nothing.
type pktQueue struct {
	buf  []network.Packet
	head int
}

func (q *pktQueue) len() int { return len(q.buf) - q.head }

func (q *pktQueue) push(p network.Packet) { q.buf = append(q.buf, p) }

func (q *pktQueue) pop() (network.Packet, bool) {
	if q.head == len(q.buf) {
		return network.Packet{}, false
	}
	p := q.buf[q.head]
	q.buf[q.head] = network.Packet{}
	q.head++
	if q.head == len(q.buf) {
		q.buf = q.buf[:0]
		q.head = 0
	}
	return p, true
}

// Net is the flit-level network. It implements network.Network (injection
// may backpressure; packets appear at TryRecv once their tail is accepted)
// plus Tick to advance simulated time.
type Net struct {
	cfg       Config
	routers   []router
	flows     map[flowKey]*flow
	order     []flowKey // deterministic iteration order for flows
	recvq     []pktQueue
	accepts   []network.Acceptor
	nextID    uint64
	cycle     uint64
	stats     Stats
	queued    []int   // worms queued or active per node, for backpressure
	injecting []*worm // the worm currently occupying each node's send path
	inflight  int     // worms injecting or traveling
	// injMark[node] stamped with the current cycle means the node already
	// injected a flit this cycle (the inject phase's former per-tick map).
	injMark []uint64
	// wormPool and wordPool recycle worm structs and payload buffers:
	// worms return on delivery or failure, payload buffers only on
	// failure (a delivered payload escapes to the receiver via TryRecv).
	wormPool []*worm
	wordPool [][]network.Word
	// routeScratch is the reusable candidate buffer handed to
	// Topology.RouteAppend, one head routing at a time.
	routeScratch []int

	// --- event-driven engine state ------------------------------------
	//
	// The route phase iterates lanes, the inject phase iterates flows, and
	// both worklists are sorted so the sparse iteration replays the dense
	// scan's visiting order exactly; see engine.go for the contract.

	// dense selects the retained dense reference stepper (Config.
	// DenseReference). The worklists stay maintained either way, so a
	// dense net can be compared against an event-driven twin at any point.
	dense bool
	// lanes is the active-lane worklist: every lane currently holding at
	// least one flit is marked here. Ids are ascending (router, port, vc),
	// the dense scan order; laneRouter/lanePort/laneBase decode them.
	lanes      worklist
	laneRouter []int32
	lanePort   []int32
	laneBase   []int32
	// ready is the injectable-flow worklist, sorted by flow order index.
	// Flows leave it when they drain, sleep in retry backoff (parking in
	// wake), or wait on a CR tail acceptance, and return on Inject, kill,
	// delivery, or backoff expiry.
	ready worklist
	// wake holds sleeping flows keyed by their front worm's wakeAt; its
	// minimum is the idle fast-forward target.
	wake wakeHeap
	// flowSeq maps a flow's order index back to the flow, parallel to
	// order.
	flowSeq []*flow
	// queuedWorms counts worms sitting in flow queues and recvqTotal the
	// delivered-but-unread packets, so quiet() and Pending() are O(1)
	// instead of rescanning every flow per cycle.
	queuedWorms int
	recvqTotal  int
	// idleSkipped counts cycles covered by fast-forward rather than
	// stepped individually; they are still folded into stats.Cycles.
	idleSkipped uint64

	// obs, when non-nil, records flit-level transit events (queue waits,
	// transfer spans, backpressure, kills, deliveries). Every emission site
	// lives in the engine functions shared by the dense and event-driven
	// steppers, so traces are byte-identical across both.
	obs *obs.FlitScope

	// gauges, when non-nil, receives the network's occupancy state once
	// per advanced cycle (see noteCycle); buffered/bufferedVC maintain the
	// input-buffer population it publishes. linkObs[r][port], when non-nil,
	// counts flits moved across each router output link. Both attach with
	// the observer scope; the maintenance sites are shared between the
	// engines, so the published series are byte-identical across both.
	gauges     *obs.FlitGauges
	buffered   int
	bufferedVC []int
	linkObs    [][]*obs.Counter
	// onCycle, when non-nil, is invoked after the mutations of every
	// advanced cycle — once per stepped cycle, once per idle fast-forward
	// jump (covering the frozen cycles in between). The timeline sampler
	// hangs off it.
	onCycle func(cycle uint64)

	// sh, when non-nil, is the sharded engine (Config.Shards > 1): the
	// routers are partitioned across worker goroutines behind a per-cycle
	// barrier, with results byte-identical to the serial engine. See
	// shard.go.
	sh *shardEngine
}

// New builds the network.
func New(cfg Config) (*Net, error) {
	if cfg.Topology == nil {
		return nil, errors.New("flitnet: nil topology")
	}
	if cfg.PacketWords == 0 {
		cfg.PacketWords = 4
	}
	if cfg.PacketWords < 1 {
		return nil, fmt.Errorf("flitnet: packet payload %d", cfg.PacketWords)
	}
	if cfg.BufferFlits == 0 {
		cfg.BufferFlits = 4
	}
	if cfg.BufferFlits < 2 {
		return nil, fmt.Errorf("flitnet: buffers need >= 2 flits, got %d", cfg.BufferFlits)
	}
	if cfg.InjectQueue == 0 {
		cfg.InjectQueue = 16
	}
	if cfg.KillTimeout == 0 {
		cfg.KillTimeout = 64
	}
	if cfg.RetryBackoff == 0 {
		cfg.RetryBackoff = 16
	}
	if cfg.MaxRetries == 0 {
		cfg.MaxRetries = 64
	}
	if cfg.VirtualChannels == 0 {
		cfg.VirtualChannels = 1
	}
	if cfg.VirtualChannels < 1 || cfg.VirtualChannels > 8 {
		return nil, fmt.Errorf("flitnet: virtual channels must be 1-8, got %d", cfg.VirtualChannels)
	}
	if cfg.Mode == CR {
		cfg.VirtualChannels = 1 // CR worms own their path end to end
	}
	nodes := cfg.Topology.Nodes()
	n := &Net{
		cfg:       cfg,
		routers:   make([]router, cfg.Topology.NumRouters()),
		flows:     make(map[flowKey]*flow),
		recvq:     make([]pktQueue, nodes),
		accepts:   make([]network.Acceptor, nodes),
		queued:    make([]int, nodes),
		injecting: make([]*worm, nodes),
		injMark:   make([]uint64, nodes),
	}
	for r := range n.routers {
		ports := cfg.Topology.Ports(r)
		inputs := make([][]laneFIFO, ports)
		owner := make([][]*worm, ports)
		for p := range inputs {
			inputs[p] = make([]laneFIFO, cfg.VirtualChannels)
			for v := range inputs[p] {
				inputs[p][v].buf = make([]flit, cfg.BufferFlits)
			}
			owner[p] = make([]*worm, cfg.VirtualChannels)
		}
		n.routers[r] = router{
			inputs:  inputs,
			owner:   owner,
			route:   make(map[uint64]lane),
			outUsed: make([]uint64, ports),
		}
	}
	n.dense = cfg.DenseReference
	// Lane id tables: id = laneBase[r] + port*vcs + vc, so ascending ids
	// replay the dense scan's (router, port, vc) order and id/vcs uniquely
	// identifies a physical input port (laneBase is a multiple of vcs).
	n.laneBase = make([]int32, len(n.routers))
	total := int32(0)
	for r := range n.routers {
		n.laneBase[r] = total
		total += int32(len(n.routers[r].inputs) * cfg.VirtualChannels)
	}
	n.laneRouter = make([]int32, total)
	n.lanePort = make([]int32, total)
	for r := range n.routers {
		for p := range n.routers[r].inputs {
			for v := 0; v < cfg.VirtualChannels; v++ {
				id := n.laneBase[r] + int32(p*cfg.VirtualChannels+v)
				n.laneRouter[id] = int32(r)
				n.lanePort[id] = int32(p)
			}
		}
	}
	n.lanes.grow(int(total))
	if cfg.Shards < 0 {
		return nil, fmt.Errorf("flitnet: shards must be >= 0, got %d", cfg.Shards)
	}
	shards := cfg.Shards
	if shards > len(n.routers) {
		shards = len(n.routers)
	}
	if cfg.Mode == CR || cfg.DenseReference {
		shards = 1 // serial-only modes; see Config.Shards
	}
	if shards > 1 {
		n.sh = newShardEngine(n, shards)
	}
	return n, nil
}

// laneID encodes one virtual channel of one input port as its worklist id.
func (n *Net) laneID(r, port, vc int) int32 {
	return n.laneBase[r] + int32(port*n.cfg.VirtualChannels+vc)
}

// pushFlit places a flit into a lane and activates the lane in the
// worklist. Every flit enters a buffer through here, which is what keeps
// the active-lane set a superset of the occupied lanes at all times — and
// the buffered-flit gauges exact.
func (n *Net) pushFlit(r, port, vc int, fl flit) {
	n.routers[r].inputs[port][vc].push(fl)
	n.lanes.add(n.laneID(r, port, vc))
	if n.gauges != nil {
		n.buffered++
		n.bufferedVC[vc]++
	}
}

// popFlit removes a lane's front flit, keeping the buffered-flit gauges in
// step. Every consuming pop goes through here; the kill sweep accounts for
// its bulk removals separately.
func (n *Net) popFlit(buf *laneFIFO, vc int) {
	buf.pop()
	if n.gauges != nil {
		n.buffered--
		n.bufferedVC[vc]--
	}
}

// MustNew is New that panics on bad configuration.
func MustNew(cfg Config) *Net {
	n, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return n
}

// Name implements network.Network.
func (n *Net) Name() string {
	return fmt.Sprintf("flitnet(%s,%s)", n.cfg.Topology.Name(), n.cfg.Mode)
}

// Nodes implements network.Network.
func (n *Net) Nodes() int { return n.cfg.Topology.Nodes() }

// PacketWords implements network.Network.
func (n *Net) PacketWords() int { return n.cfg.PacketWords }

// SetAcceptor installs a destination's header-acceptance check (CR mode).
// Installing a non-nil acceptor on a sharded net migrates it onto the
// serial engine: acceptors can reject — and hence kill — in any mode, and
// the sharded engine excludes kills by construction.
func (n *Net) SetAcceptor(node int, a network.Acceptor) error {
	if node < 0 || node >= n.Nodes() {
		return fmt.Errorf("flitnet: no node %d", node)
	}
	n.accepts[node] = a
	if a != nil && n.sh != nil {
		n.unshard()
	}
	return nil
}

// Inject implements network.Network: the packet becomes a worm queued at
// its source node.
func (n *Net) Inject(p network.Packet) error {
	if p.Src < 0 || p.Src >= n.Nodes() || p.Dst < 0 || p.Dst >= n.Nodes() {
		return fmt.Errorf("%w: src=%d dst=%d", network.ErrBadPacket, p.Src, p.Dst)
	}
	if len(p.Data) > n.cfg.PacketWords {
		return fmt.Errorf("%w: %d words", network.ErrBadPacket, len(p.Data))
	}
	if n.queued[p.Src] >= n.cfg.InjectQueue {
		n.stats.Backpressure++
		n.obs.Event("flit.backpressure", n.cycle, p.Msg, p.Pkt, p.Span)
		return network.ErrBackpressure
	}
	data := n.getWords(len(p.Data))
	copy(data, p.Data)
	p.Data = data

	w := n.getWorm()
	*w = worm{id: n.nextID, packet: p, state: wormQueued, injected: n.cycle, waitFrom: n.cycle, claims: w.claims[:0]}
	n.nextID++
	w.flits = n.wormFlits(p)
	key := flowKey{p.Src, p.Dst}
	f := n.flows[key]
	if f == nil {
		f = &flow{idx: int32(len(n.order))}
		n.flows[key] = f
		n.order = append(n.order, key)
		n.flowSeq = append(n.flowSeq, f)
	}
	f.pushBack(w)
	n.queuedWorms++
	if e := n.sh; e != nil {
		if int(f.idx) == len(e.flowShard) {
			srcRouter, _ := n.cfg.Topology.NodePort(p.Src)
			e.flowShard = append(e.flowShard, e.shardOfRouter[srcRouter])
		}
		e.shards[e.flowShard[f.idx]].ready.add(f.idx)
	} else {
		n.ready.add(f.idx)
	}
	n.queued[p.Src]++
	n.stats.Injected++
	if n.obs != nil {
		msg, pkt, parent := w.identity()
		n.obs.Event("flit.queued", n.cycle, msg, pkt, parent)
	}
	return nil
}

// syntheticMsgBase offsets the per-worm message identities synthesized for
// packets the messaging layer did not trace, keeping them disjoint from
// hub-allocated ids (which are small and sequential).
const syntheticMsgBase = uint64(1) << 32

// identity resolves the observability identity a worm's events carry: the
// packet's stamped identity when a messaging layer traced it, otherwise a
// synthetic per-worm identity so raw flit workloads (netload's generators
// inject packets directly, with no protocol above) still reconstruct into
// per-message span trees.
func (w *worm) identity() (msg, pkt, parent uint64) {
	if w.packet.Msg != 0 || w.packet.Span != 0 {
		return w.packet.Msg, w.packet.Pkt, w.packet.Span
	}
	return syntheticMsgBase + w.id, w.id + 1, 0
}

// SetFlitObserver attaches (or, with nil, detaches) a flit-level recording
// scope. Attach before ticking; the emission points are shared between the
// dense and event-driven engines, so recorded traces are byte-identical
// across both. Attaching also resolves the occupancy gauges (in-flight
// worms, injection backlog, receive-queue depth, per-VC buffered flits)
// published once per advanced cycle, and the per-link flit counters the
// timeline turns into utilization series.
func (n *Net) SetFlitObserver(s *obs.FlitScope) {
	n.obs = s
	if s == nil {
		n.gauges = nil
		n.linkObs = nil
		return
	}
	vcs := n.cfg.VirtualChannels
	n.gauges = s.Gauges(vcs)
	if n.bufferedVC == nil {
		n.bufferedVC = make([]int, vcs)
	}
	n.linkObs = make([][]*obs.Counter, len(n.routers))
	for r := range n.routers {
		ports := make([]*obs.Counter, len(n.routers[r].outUsed))
		for p := range ports {
			ports[p] = s.LinkCounter(r, p)
		}
		n.linkObs[r] = ports
	}
}

// SetCycleListener installs (or clears, with nil) a callback invoked after
// the mutations of every advanced cycle: once per stepped cycle, and once
// per idle fast-forward jump, with the cycle the clock landed on. Skipped
// cycles mutate nothing, so a listener sampling state on boundaries inside
// the jump would read exactly the values it reads at the jump's end — the
// property that makes timeline windows byte-identical across engines.
func (n *Net) SetCycleListener(fn func(cycle uint64)) { n.onCycle = fn }

// noteCycle publishes the occupancy gauges and fires the cycle listener.
// Called (via its inlined guard in Tick/TickUntilQuiet) after every
// stepped cycle and after every fast-forward jump.
func (n *Net) noteCycle() {
	if g := n.gauges; g != nil {
		g.InflightWorms.Set(int64(n.inflight))
		g.InjectBacklog.Set(int64(n.queuedWorms))
		g.RecvqPackets.Set(int64(n.recvqTotal))
		g.BufferedFlits.Set(int64(n.buffered))
		for vc, l := range g.VCFlits {
			l.Set(int64(n.bufferedVC[vc]))
		}
	}
	if n.onCycle != nil {
		n.onCycle(n.cycle)
	}
}

// observing reports whether noteCycle has any work to do.
func (n *Net) observing() bool { return n.gauges != nil || n.onCycle != nil }

// wormFlits computes a worm's length: head + payload + tail, padded in CR
// mode to the deterministic path length so the worm spans source to
// destination (the tail's acceptance is then an end-to-end acknowledgement).
func (n *Net) wormFlits(p network.Packet) int {
	flits := 2 + len(p.Data)
	if n.cfg.Mode == CR {
		if path := topology.DeterministicPath(n.cfg.Topology, p.Src, p.Dst); path != nil {
			if need := len(path) + 2; need > flits {
				n.stats.PadFlits += uint64(need - flits)
				flits = need
			}
		}
	}
	return flits
}

// TryRecv implements network.Network.
func (n *Net) TryRecv(node int) (network.Packet, bool) {
	if node < 0 || node >= n.Nodes() {
		return network.Packet{}, false
	}
	p, ok := n.recvq[node].pop()
	if !ok {
		return network.Packet{}, false
	}
	n.recvqTotal--
	n.stats.Delivered++
	return p, true
}

// Pending implements network.Network: worms not yet fully delivered plus
// undelivered packets. The maintained counters make it O(1), so polling it
// in a drain loop costs nothing even on large topologies.
func (n *Net) Pending() int {
	return n.inflight + n.queuedWorms + n.recvqTotal
}

// getWorm takes a worm from the pool, or allocates when it is empty. The
// caller overwrites every field.
func (n *Net) getWorm() *worm {
	if m := len(n.wormPool); m > 0 {
		w := n.wormPool[m-1]
		n.wormPool[m-1] = nil
		n.wormPool = n.wormPool[:m-1]
		return w
	}
	return new(worm)
}

// putWorm returns a finished worm to the pool, dropping its payload
// reference so a delivered buffer is not pinned by the pool.
func (n *Net) putWorm(w *worm) {
	w.packet = network.Packet{}
	n.wormPool = append(n.wormPool, w)
}

// getWords takes a payload buffer of the given length from the pool. All
// pooled buffers were allocated at PacketWords capacity, so any valid
// payload length fits.
func (n *Net) getWords(need int) []network.Word {
	if m := len(n.wordPool); m > 0 {
		buf := n.wordPool[m-1]
		n.wordPool[m-1] = nil
		n.wordPool = n.wordPool[:m-1]
		return buf[:need]
	}
	return make([]network.Word, need, n.cfg.PacketWords)
}

// putWords reclaims a payload buffer. Only undelivered payloads come back:
// a delivered packet's buffer belongs to the receiver.
func (n *Net) putWords(buf []network.Word) {
	if cap(buf) < n.cfg.PacketWords {
		return // not one of ours
	}
	n.wordPool = append(n.wordPool, buf[:0])
}

// Stats implements network.Network.
func (n *Net) Stats() network.Stats { return n.stats.Stats }

// FlitStats returns the extended counters.
func (n *Net) FlitStats() Stats { return n.stats }

// Cycle returns the current simulated cycle.
func (n *Net) Cycle() uint64 { return n.cycle }

// IdleSkipped returns how many cycles the engine fast-forwarded over
// instead of stepping individually. Skipped cycles are still counted in
// Stats.Cycles — the simulated clock is unchanged; only the host work to
// advance it is elided — so this is a measure of saved work, not of time.
func (n *Net) IdleSkipped() uint64 { return n.idleSkipped }

var _ network.Network = (*Net)(nil)
