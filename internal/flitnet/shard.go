package flitnet

import (
	"math"
	"sync"

	"msglayer/internal/network"
	"msglayer/internal/topology"
)

// The sharded engine partitions the routers (and with them every input
// lane, every attached node, and every flow keyed by its source node) into
// contiguous shards and runs each shard's inject and route work on its own
// worker goroutine inside a per-cycle barrier. The contract is the same one
// the event-driven engine holds against the dense reference: byte-identical
// results at any shard count — Stats, delivery order, traces, timelines.
//
// Why contiguous router ranges: lane ids ascend with (router, port, vc), so
// a contiguous router range owns a contiguous lane-id range, and the serial
// route phase's visiting order is exactly shard 0's lanes, then shard 1's,
// and so on. Every cross-shard interaction the serial engine performs
// reduces to one question — "is that input lane over there full right
// now?" — because an input lane has exactly one feeder (the single
// upstream link, or its node's injector) and pops at most one flit per
// cycle (its own visit). The sharded route phase answers it from three
// pieces of shared state, none of them racing:
//
//   - occ[lane]: the lane's occupancy at the start of the cycle, frozen
//     while the route phase runs and refreshed by the owner during the
//     apply phase.
//   - pushedStamp[lane]: cycle-stamped by the feeder shard when it moves a
//     flit into the lane this cycle. Only the feeder's own routers consult
//     it, so it is single-writer single-reader by construction.
//   - popStamp[lane]: cycle-stamped by the owner shard when the lane's
//     visit pops its front flit. Other shards read it only for lanes the
//     owner has already visited, which the owner advertises through a rank
//     watermark published at round barriers (pubRank).
//
// When the answer depends on a pop the owner has not published yet, the
// asking shard parks: it stops at its current position and resumes in the
// next round, after a barrier republishes every shard's watermark. Nothing
// is mutated before a park decision, so re-running the stopped lane is
// safe. The shard holding the globally smallest stuck position always
// advances at least one lane per round — its dependencies rank strictly
// below every other shard's watermark — so the rounds terminate.
//
// Cross-shard flit handoffs never touch the destination FIFO mid-phase:
// they queue in per-(source shard, destination shard) mailboxes and the
// receiving shard applies them at the barrier, in fixed source-shard order
// (each lane receives at most one flit per cycle, so the order across
// lanes is immaterial, but it is fixed anyway). Stats and gauges accumulate
// in per-shard slabs merged after the barrier; observability emissions are
// buffered per shard and replayed serially in the serial engine's order,
// so span ids, trace bytes, and metric counters come out identical.
//
// Modes outside the contract fall back to the serial engine (shards
// clamped to 1): CR (kills sweep every lane and release cross-shard
// claims; an exact parallel replay would serialize anyway), the dense
// reference, and any net with an acceptance check installed (acceptors
// can reject — and hence kill — in any mode). In a sharded run a kill is
// therefore a topology bug, and the engine panics rather than diverge.
type shardEngine struct {
	n      *Net
	shards []*shardState
	// shardOfRouter/shardOfLane map a router or lane id to its owner.
	shardOfRouter []int32
	shardOfLane   []int32
	// occ is the start-of-cycle occupancy snapshot per lane; pushedStamp
	// and popStamp are the cycle-stamped "fed this cycle" / "popped this
	// cycle" bits described above.
	occ         []int32
	pushedStamp []uint64
	popStamp    []uint64
	// pubRank[s] is shard s's published route progress: every lane ranking
	// strictly below it has been visited this cycle. Reset to -1 each
	// cycle, updated by the owner before each round barrier.
	pubRank []int64
	// mail[src][dst] holds the flits shard src moved into shard dst's
	// lanes this cycle, applied by dst at the barrier.
	mail [][][]mailRec
	// flowShard[idx] is the shard owning flow idx: the shard of its source
	// node's router. Appended by Inject as flows are created.
	flowShard []int32

	// roundCount counts route-round barriers across the run — each round
	// past the first per cycle is a park/retry loop the cross-shard traffic
	// forced.
	roundCount uint64

	started bool
	work    []chan int
	wg      sync.WaitGroup
}

// mailRec is one cross-shard flit handoff: the destination lane and the
// flit to push (arrived already stamped with the current cycle).
type mailRec struct {
	id int32
	fl flit
}

// obsRec is one buffered observability emission, replayed serially after
// the barrier. key orders inject-phase records across shards (the flow's
// order index); route-phase buffers concatenate in shard order, which is
// already the serial lane order.
type obsRec struct {
	span             bool
	name             string
	from, to         uint64 // events use from only
	msg, pkt, parent uint64
	key              int32
}

// phase codes dispatched to the workers.
const (
	phaseInject = iota
	phaseRoute
	phaseApply
	phaseExit
)

// shardState is one worker's private slice of the network.
type shardState struct {
	n   *Net
	idx int
	// Owned contiguous ranges: routers [firstRouter, lastRouter) and lanes
	// [firstLane, lastLane).
	firstRouter, lastRouter int
	firstLane, lastLane     int32

	// Per-shard twins of the event-driven worklists, covering only owned
	// lanes and flows (a flow belongs to the shard owning its source
	// node's router).
	lanes worklist
	ready worklist
	wake  wakeHeap

	// prog is this cycle's route visiting order (the worklist expanded
	// through the per-cycle virtual-channel rotation); pos is the resume
	// position after a park; prepared marks prog as built for this cycle.
	// myPubRank is the watermark computed at the end of each round; the
	// coordinator copies it into the shared pubRank slice between rounds so
	// other shards only ever see barrier-published values.
	prog      []int32
	pos       int
	prepared  bool
	myPubRank int64

	// Per-cycle accumulators, merged (and reset) by the coordinator after
	// the apply barrier.
	flitMoves        uint64
	latencySum       uint64
	latencyCount     uint64
	latencyMax       uint64
	inflightDelta    int
	queuedWormsDelta int
	recvqDelta       int
	bufferedDelta    int
	bufferedVCDelta  []int
	srcDecs          []int32
	wormPool         []*worm
	injectObs        []obsRec
	routeObs         []obsRec
	// touched lists lanes whose occupancy changed this cycle; the apply
	// phase refreshes occ from them (duplicates are harmless).
	touched []int32

	routeScratch []int
}

// newShardEngine partitions the net's routers into k contiguous shards
// balanced by lane count. k is already clamped to [2, routers].
func newShardEngine(n *Net, k int) *shardEngine {
	e := &shardEngine{
		n:             n,
		shardOfRouter: make([]int32, len(n.routers)),
		shardOfLane:   make([]int32, len(n.laneRouter)),
		occ:           make([]int32, len(n.laneRouter)),
		pushedStamp:   make([]uint64, len(n.laneRouter)),
		popStamp:      make([]uint64, len(n.laneRouter)),
		pubRank:       make([]int64, k),
	}
	totalLanes := len(n.laneRouter)
	routers := len(n.routers)
	// laneEnd(r) = lanes covered by routers [0, r).
	laneEnd := func(r int) int {
		if r == routers {
			return totalLanes
		}
		return int(n.laneBase[r])
	}
	r := 0
	for s := 0; s < k; s++ {
		first := r
		// Take routers until this shard reaches its cumulative lane share,
		// always at least one, leaving one for each remaining shard.
		target := (totalLanes * (s + 1)) / k
		r++
		for r < routers-(k-s-1) && laneEnd(r) < target {
			r++
		}
		if s == k-1 {
			r = routers
		}
		sh := &shardState{
			n:           n,
			idx:         s,
			firstRouter: first,
			lastRouter:  r,
			firstLane:   n.laneBase[first],
		}
		if r < routers {
			sh.lastLane = n.laneBase[r]
		} else {
			sh.lastLane = int32(totalLanes)
		}
		if n.cfg.VirtualChannels > 1 {
			sh.bufferedVCDelta = make([]int, n.cfg.VirtualChannels)
		} else {
			sh.bufferedVCDelta = make([]int, 1)
		}
		sh.lanes.grow(totalLanes)
		for rr := first; rr < r; rr++ {
			e.shardOfRouter[rr] = int32(s)
		}
		for id := sh.firstLane; id < sh.lastLane; id++ {
			e.shardOfLane[id] = int32(s)
		}
		e.shards = append(e.shards, sh)
	}
	e.mail = make([][][]mailRec, k)
	for s := range e.mail {
		e.mail[s] = make([][]mailRec, k)
	}
	return e
}

// startWorkers lazily spins up one goroutine per shard; Close stops them.
func (e *shardEngine) startWorkers() {
	e.work = make([]chan int, len(e.shards))
	for i := range e.shards {
		ch := make(chan int, 1)
		e.work[i] = ch
		s := e.shards[i]
		go func() {
			for code := range ch {
				switch code {
				case phaseInject:
					s.injectPhase()
				case phaseRoute:
					s.routeRound()
				case phaseApply:
					s.applyPhase()
				case phaseExit:
					e.wg.Done()
					return
				}
				e.wg.Done()
			}
		}()
	}
	e.started = true
}

// runPhase dispatches one phase to every worker and waits for the barrier.
// The channel send orders the coordinator's writes before the workers'
// reads; the WaitGroup orders the workers' writes before the coordinator's
// (and, through the next dispatch, every other worker's) reads.
func (e *shardEngine) runPhase(code int) {
	e.wg.Add(len(e.shards))
	for _, ch := range e.work {
		ch <- code
	}
	e.wg.Wait()
}

// Close releases the worker goroutines of a sharded net. Nets running the
// serial engine have none; Close is always safe to call (and to call
// again). A sharded net that keeps ticking after Close transparently
// restarts its workers.
func (n *Net) Close() {
	e := n.sh
	if e == nil || !e.started {
		return
	}
	e.runPhase(phaseExit)
	e.started = false
}

// Shards returns the number of engine shards the net runs: 1 for the
// serial engine (including every CR, dense-reference, or acceptor-guarded
// net), the partition size otherwise.
func (n *Net) Shards() int {
	if n.sh == nil {
		return 1
	}
	return len(n.sh.shards)
}

// unshard migrates a sharded net back onto the serial engine, merging the
// per-shard worklists and wake heaps into the global ones. Used when an
// acceptance check is installed (acceptors can reject, and rejection kills;
// the sharded engine excludes kills by construction). Only safe between
// cycles, which is the only time the engine surface is reachable.
func (n *Net) unshard() {
	e := n.sh
	if e == nil {
		return
	}
	n.Close()
	n.sh = nil
	for _, s := range e.shards {
		for _, id := range s.lanes.sorted {
			n.lanes.add(id)
		}
		for _, id := range s.lanes.added {
			n.lanes.add(id)
		}
		for _, fi := range s.ready.sorted {
			n.ready.add(fi)
		}
		for _, fi := range s.ready.added {
			n.ready.add(fi)
		}
		for _, en := range s.wake.h {
			n.wake.push(en.at, en.flow)
		}
	}
}

// tickOnce advances one sharded cycle: inject barrier, route rounds,
// apply barrier, then the serial epilogue (slab merges, mailbox-free
// bookkeeping, observability replay).
func (e *shardEngine) tickOnce() {
	if !e.started {
		e.startWorkers()
	}
	e.runPhase(phaseInject)
	for i := range e.pubRank {
		e.pubRank[i] = -1
	}
	for {
		e.runPhase(phaseRoute)
		e.roundCount++
		done := true
		for i, s := range e.shards {
			e.pubRank[i] = s.myPubRank
			if s.pos < len(s.prog) {
				done = false
			}
		}
		if done {
			break
		}
	}
	e.runPhase(phaseApply)
	e.epilogue()
}

// idleCycles is the sharded twin of Net.idleCycles: the barrier agrees on
// the global minimum wake cycle across every shard's heap.
func (e *shardEngine) idleCycles(budget int) int {
	for _, s := range e.shards {
		if len(s.lanes.sorted)+len(s.lanes.added)+len(s.ready.sorted)+len(s.ready.added) > 0 {
			return 0
		}
	}
	have := false
	var next uint64
	for _, s := range e.shards {
		if s.wake.len() > 0 && (!have || s.wake.minAt() < next) {
			next = s.wake.minAt()
			have = true
		}
	}
	if !have {
		return budget
	}
	if next <= e.n.cycle+1 {
		return 0
	}
	skip := next - e.n.cycle - 1
	if skip > uint64(budget) {
		return budget
	}
	return int(skip)
}

// epilogue runs on the coordinator after the apply barrier: merge the
// per-shard slabs into the global counters in shard order, apply the
// deferred source-queue decrements, recycle delivered worms, and replay
// the buffered observability emissions in serial order.
func (e *shardEngine) epilogue() {
	n := e.n
	for _, s := range e.shards {
		n.stats.FlitMoves += s.flitMoves
		n.stats.LatencySum += s.latencySum
		n.stats.LatencyCount += s.latencyCount
		if s.latencyMax > n.stats.LatencyMax {
			n.stats.LatencyMax = s.latencyMax
		}
		n.inflight += s.inflightDelta
		n.queuedWorms += s.queuedWormsDelta
		n.recvqTotal += s.recvqDelta
		if n.gauges != nil {
			n.buffered += s.bufferedDelta
			for vc, d := range s.bufferedVCDelta {
				if vc < len(n.bufferedVC) {
					n.bufferedVC[vc] += d
				}
			}
		}
		for _, src := range s.srcDecs {
			n.queued[src]--
		}
		for _, w := range s.wormPool {
			w.packet = network.Packet{}
			n.wormPool = append(n.wormPool, w)
		}
		s.flitMoves, s.latencySum, s.latencyCount, s.latencyMax = 0, 0, 0, 0
		s.inflightDelta, s.queuedWormsDelta, s.recvqDelta, s.bufferedDelta = 0, 0, 0, 0
		for vc := range s.bufferedVCDelta {
			s.bufferedVCDelta[vc] = 0
		}
		s.srcDecs = s.srcDecs[:0]
		s.wormPool = s.wormPool[:0]
		s.prepared = false
	}
	if n.obs != nil {
		e.replayObs()
	}
}

// replayObs re-emits the buffered observability records through the real
// scope, single-threaded, in the serial engine's order: inject-phase
// records merged across shards by flow order index (each shard's buffer is
// already ascending), then route-phase buffers concatenated in shard order
// (shard lane ranges are ascending, so concatenation is the serial lane
// order). Replaying through the scope allocates span ids and counter
// increments exactly as the serial engine would.
func (e *shardEngine) replayObs() {
	n := e.n
	for {
		best := -1
		for i, s := range e.shards {
			if len(s.injectObs) == 0 {
				continue
			}
			if best < 0 || s.injectObs[0].key < e.shards[best].injectObs[0].key {
				best = i
			}
		}
		if best < 0 {
			break
		}
		s := e.shards[best]
		emit(n, s.injectObs[0])
		s.injectObs = s.injectObs[1:]
	}
	for _, s := range e.shards {
		for _, rec := range s.routeObs {
			emit(n, rec)
		}
		s.injectObs = s.injectObs[:0]
		s.routeObs = s.routeObs[:0]
	}
}

func emit(n *Net, rec obsRec) {
	if rec.span {
		n.obs.Span(rec.name, rec.from, rec.to, rec.msg, rec.pkt, rec.parent)
		return
	}
	n.obs.Event(rec.name, rec.from, rec.msg, rec.pkt, rec.parent)
}

// rankOf is a lane's position in the serial route order for the current
// cycle: ports ascend, and within a port the virtual-channel priority is
// rotated by the cycle number. With one channel the rank is the lane id.
func (e *shardEngine) rankOf(id int32) int64 {
	vcs := e.n.cfg.VirtualChannels
	if vcs == 1 {
		return int64(id)
	}
	rot := (int(id)%vcs - int(e.n.cycle%uint64(vcs)) + vcs) % vcs
	return (int64(id)/int64(vcs))*int64(vcs) + int64(rot)
}

// --- worker phases ------------------------------------------------------

// injectPhase is the per-shard twin of Net.injectPhase over the shard's
// flows. Flows of different shards share no node, lane, or queue state, so
// the phases compose without ordering; only the buffered wait spans need
// the cross-shard merge by flow index.
func (s *shardState) injectPhase() {
	n := s.n
	for s.wake.len() > 0 && s.wake.minAt() <= n.cycle {
		s.ready.add(s.wake.pop())
	}
	s.ready.merge()
	keep := s.ready.sorted[:0]
	for _, fi := range s.ready.sorted {
		if s.injectFlow(n.order[fi], n.flowSeq[fi]) {
			keep = append(keep, fi)
		} else {
			s.ready.mark[fi] = false
		}
	}
	s.ready.sorted = keep
}

func (s *shardState) injectFlow(key flowKey, f *flow) bool {
	s.injectFlowStep(key, f)
	if f.active != nil {
		return f.active.state == wormInjecting
	}
	if f.pending() == 0 {
		return false
	}
	if front := f.front(); front.wakeAt > s.n.cycle {
		s.wake.push(front.wakeAt, f.idx)
		return false
	}
	return true
}

func (s *shardState) injectFlowStep(key flowKey, f *flow) {
	n := s.n
	if f.active == nil && n.injecting[key.src] == nil {
		f.active = s.startNext(f)
		if f.active != nil {
			n.injecting[key.src] = f.active
		}
	}
	w := f.active
	if w == nil || w.state != wormInjecting || n.injMark[key.src] == n.cycle {
		return
	}
	if n.injecting[key.src] != w {
		return
	}
	srcRouter, srcPort := n.cfg.Topology.NodePort(key.src)
	if n.routers[srcRouter].inputs[srcPort][w.srcVC].full() {
		if w.sent == 0 {
			s.noteBlocked(w)
		}
		return
	}
	s.pushLocal(srcRouter, srcPort, w.srcVC, flit{worm: w, kind: n.flitKind(w), arrived: n.cycle})
	w.sent++
	n.injMark[key.src] = n.cycle
	if w.sent == w.flits {
		w.state = wormInFlight
		n.injecting[key.src] = nil
		// The sharded engine never runs CR, so flows always pipeline.
		f.active = nil
	}
}

func (s *shardState) startNext(f *flow) *worm {
	n := s.n
	w := f.nextAwake(n.cycle)
	if w == nil {
		return nil
	}
	s.queuedWormsDelta--
	w.state = wormInjecting
	w.blocked = 0
	if n.obs != nil {
		name := "flit.wait.queue"
		if w.retries > 0 {
			name = "flit.wait.backoff"
		}
		msg, pkt, parent := w.identity()
		s.injectObs = append(s.injectObs, obsRec{
			span: true, name: name, from: w.waitFrom, to: n.cycle,
			msg: msg, pkt: pkt, parent: parent, key: f.idx,
		})
	}
	w.startedAt = n.cycle
	w.srcVC = int(w.id) % n.cfg.VirtualChannels
	s.inflightDelta++
	return w
}

// noteBlocked ages a blocked head. The sharded engine never runs CR, so
// there is no kill timeout; the stall counter still feeds the
// flit.wait.blocked span. The head flit (or its not-yet-injected worm)
// lives in exactly one shard, so the worm fields have a single writer.
func (s *shardState) noteBlocked(w *worm) {
	w.blocked++
	w.stallCycles++
}

// buildProg expands this cycle's active lanes into the serial visiting
// order: ports ascending, virtual channels rotated per cycle within each
// occupied port group.
func (s *shardState) buildProg() {
	n := s.n
	s.lanes.merge()
	s.prog = s.prog[:0]
	s.pos = 0
	vcs := n.cfg.VirtualChannels
	lanes := s.lanes.sorted
	if vcs == 1 {
		s.prog = append(s.prog, lanes...)
		return
	}
	for i := 0; i < len(lanes); {
		group := lanes[i] / int32(vcs)
		j := i + 1
		for j < len(lanes) && lanes[j]/int32(vcs) == group {
			j++
		}
		base := group * int32(vcs)
		for v := 0; v < vcs; v++ {
			vc := (v + int(n.cycle)) % vcs
			id := base + int32(vc)
			for k := i; k < j; k++ {
				if lanes[k] == id {
					s.prog = append(s.prog, id)
					break
				}
			}
		}
		i = j
	}
}

// routeRound advances the shard's route position until it finishes or
// parks on an undecided cross-shard dependency, then publishes its
// progress watermark for the next round.
func (s *shardState) routeRound() {
	e := s.n.sh
	if !s.prepared {
		s.buildProg()
		s.prepared = true
	}
	for s.pos < len(s.prog) {
		id := s.prog[s.pos]
		r := int(s.n.laneRouter[id])
		port := int(s.n.lanePort[id])
		vc := int(id) % s.n.cfg.VirtualChannels
		if !s.advanceLane(r, port, vc, id, e.rankOf(id)) {
			break // parked: resume here next round
		}
		s.pos++
	}
	if s.pos == len(s.prog) {
		s.myPubRank = math.MaxInt64
	} else {
		s.myPubRank = e.rankOf(s.prog[s.pos])
	}
}

// applyPhase drains the shard's incoming mailboxes in source-shard order,
// refreshes the occupancy snapshot of every touched lane, and compacts the
// drained lanes out of the worklist — the same end-of-cycle worklist state
// the serial engine's in-phase compaction reaches.
func (s *shardState) applyPhase() {
	n := s.n
	e := n.sh
	for src := range e.shards {
		box := e.mail[src][s.idx]
		for _, m := range box {
			r := int(n.laneRouter[m.id])
			port := int(n.lanePort[m.id])
			vc := int(m.id) % n.cfg.VirtualChannels
			n.routers[r].inputs[port][vc].push(m.fl)
			s.lanes.add(m.id)
			s.touched = append(s.touched, m.id)
		}
		e.mail[src][s.idx] = box[:0]
	}
	for _, id := range s.touched {
		r := int(n.laneRouter[id])
		port := int(n.lanePort[id])
		vc := int(id) % n.cfg.VirtualChannels
		e.occ[id] = int32(n.routers[r].inputs[port][vc].len())
	}
	s.touched = s.touched[:0]
	keep := s.lanes.sorted[:0]
	for _, id := range s.lanes.sorted {
		r := int(n.laneRouter[id])
		port := int(n.lanePort[id])
		vc := int(id) % n.cfg.VirtualChannels
		if n.routers[r].inputs[port][vc].len() > 0 {
			keep = append(keep, id)
		} else {
			s.lanes.mark[id] = false
		}
	}
	s.lanes.sorted = keep
}

// --- flit movement ------------------------------------------------------

// pushLocal places a flit into one of the shard's own lanes (injection, or
// an intra-shard hop).
func (s *shardState) pushLocal(r, port, vc int, fl flit) {
	id := s.n.laneID(r, port, vc)
	s.n.routers[r].inputs[port][vc].push(fl)
	s.lanes.add(id)
	s.touched = append(s.touched, id)
	if s.n.gauges != nil {
		s.bufferedDelta++
		s.bufferedVCDelta[vc]++
	}
}

// pushTo routes a flit move to the destination lane's owner: a direct push
// when the lane is ours, a mailbox entry (plus the feeder stamp that keeps
// our own later fullness checks exact) when it is not.
func (s *shardState) pushTo(peer, peerPort, vc int, id int32, fl flit) {
	e := s.n.sh
	if e.shardOfLane[id] == int32(s.idx) {
		s.pushLocal(peer, peerPort, vc, fl)
		return
	}
	dst := e.shardOfLane[id]
	e.mail[s.idx][dst] = append(e.mail[s.idx][dst], mailRec{id: id, fl: fl})
	e.pushedStamp[id] = s.n.cycle
	if s.n.gauges != nil {
		s.bufferedDelta++
		s.bufferedVCDelta[vc]++
	}
}

// popFront consumes a lane's front flit, stamping the pop for cross-shard
// fullness checks.
func (s *shardState) popFront(buf *laneFIFO, vc int, id int32) {
	buf.pop()
	s.n.sh.popStamp[id] = s.n.cycle
	s.touched = append(s.touched, id)
	if s.n.gauges != nil {
		s.bufferedDelta--
		s.bufferedVCDelta[vc]--
	}
}

// laneFull answers "is lane id full at serial position rank?". For owned
// lanes the FIFO itself is exact (the shard executes its own lanes in
// serial order). For foreign lanes the answer combines the start-of-cycle
// snapshot, our own feeder stamp, and — only when the lane ranks earlier
// and its owner has published past it — the owner's pop stamp. Returns
// ok=false when the answer depends on an unpublished pop (the caller
// parks).
func (s *shardState) laneFull(id int32, rank int64) (full, ok bool) {
	n := s.n
	e := n.sh
	owner := e.shardOfLane[id]
	if owner == int32(s.idx) {
		r := int(n.laneRouter[id])
		port := int(n.lanePort[id])
		vc := int(id) % n.cfg.VirtualChannels
		return n.routers[r].inputs[port][vc].full(), true
	}
	occ := int(e.occ[id])
	if e.pushedStamp[id] == n.cycle {
		occ++
	}
	if occ < n.cfg.BufferFlits {
		return false, true
	}
	lr := e.rankOf(id)
	if lr > rank {
		return true, true // its pop, if any, happens after us in serial order
	}
	if lr >= e.pubRank[owner] {
		return false, false // undecided: owner has not visited it yet
	}
	if e.popStamp[id] == n.cycle {
		occ--
	}
	return occ >= n.cfg.BufferFlits, true
}

// advanceLane is the sharded twin of Net.advanceLane. It returns false
// when the move depends on an unpublished cross-shard pop (park; the
// caller retries next round — nothing has been mutated). Differences from
// the serial twin are confined to unobservable bookkeeping: the claim list
// and the blocked-age reset are skipped (both only feed CR kills, which
// cannot occur here), and all counters go to the shard slabs.
func (s *shardState) advanceLane(r, port, vc int, id int32, rank int64) bool {
	n := s.n
	rt := &n.routers[r]
	buf := &rt.inputs[port][vc]
	if buf.len() == 0 {
		return true
	}
	fl := *buf.front()
	if fl.arrived == n.cycle {
		return true
	}
	w := fl.worm
	if w.state == wormKilled || w.state == wormFailed {
		s.popFront(buf, vc, id)
		return true
	}

	var out lane
	if claimed, ok := rt.route[w.id]; ok {
		out = claimed
	} else if fl.kind == flitHead {
		claimed, ok, parked := s.routeHead(r, port, vc, id, w, rank)
		if parked {
			return false
		}
		if !ok {
			return true
		}
		out = claimed
	} else {
		s.popFront(buf, vc, id)
		return true
	}
	if rt.outUsed[out.port] == n.cycle {
		return true
	}

	peer, peerPort, node := n.cfg.Topology.Neighbor(r, out.port)
	if node != topology.Terminal {
		s.popFront(buf, vc, id)
		rt.outUsed[out.port] = n.cycle
		s.flitMoves++
		if n.linkObs != nil {
			n.linkObs[r][out.port].Inc()
		}
		if fl.kind == flitTail {
			s.finishWorm(r, out, w, node)
		}
		return true
	}
	tgt := n.laneID(peer, peerPort, out.vc)
	full, ok := s.laneFull(tgt, rank)
	if !ok {
		return false
	}
	if full {
		if fl.kind == flitHead {
			s.noteBlocked(w)
		}
		return true
	}
	s.popFront(buf, vc, id)
	fl.arrived = n.cycle
	s.pushTo(peer, peerPort, out.vc, tgt, fl)
	rt.outUsed[out.port] = n.cycle
	s.flitMoves++
	if n.linkObs != nil {
		n.linkObs[r][out.port].Inc()
	}
	if fl.kind == flitTail {
		if rt.owner[out.port][out.vc] == w {
			rt.owner[out.port][out.vc] = nil
		}
		delete(rt.route, w.id)
	}
	return true
}

// routeHead is the sharded twin of Net.routeHead. parked reports an
// undecided downstream fullness check; no state has been mutated in that
// case, so the retried call replays the candidate walk identically. Kills
// cannot occur here: acceptors force the serial engine, and a misroute or
// unroutable head is a topology bug.
func (s *shardState) routeHead(r, port, vc int, id int32, w *worm, rank int64) (out lane, ok, parked bool) {
	n := s.n
	rt := &n.routers[r]
	s.routeScratch = n.cfg.Topology.RouteAppend(r, port, w.packet.Dst, s.routeScratch[:0])
	cands := s.routeScratch
	if len(cands) == 0 {
		panic("flitnet: unroutable worm in a sharded run")
	}
	if n.cfg.Mode != Adaptive {
		cands = cands[:1]
	}
	vcs := n.cfg.VirtualChannels
	for ci, cand := range cands {
		peer, peerPort, node := n.cfg.Topology.Neighbor(r, cand)
		if node != topology.Terminal {
			if rt.outUsed[cand] == n.cycle {
				continue
			}
			ej := lane{cand, -1}
			for v := 0; v < vcs; v++ {
				if rt.owner[cand][v] == nil {
					ej = lane{cand, v}
					break
				}
			}
			if ej.vc < 0 {
				continue
			}
			if node != w.packet.Dst {
				panic("flitnet: misrouted worm in a sharded run")
			}
			rt.owner[ej.port][ej.vc] = w
			rt.route[w.id] = ej
			s.popFront(&rt.inputs[port][vc], vc, id)
			rt.outUsed[cand] = n.cycle
			s.flitMoves++
			if n.linkObs != nil {
				n.linkObs[r][cand].Inc()
			}
			return lane{}, false, false
		}
		for outVC := 0; outVC < vcs; outVC++ {
			if outVC == 0 && ci != 0 && n.cfg.Mode == Adaptive && vcs > 1 {
				continue
			}
			if rt.owner[cand][outVC] != nil {
				continue
			}
			tgt := n.laneID(peer, peerPort, outVC)
			full, decided := s.laneFull(tgt, rank)
			if !decided {
				return lane{}, false, true
			}
			if full {
				continue
			}
			got := lane{cand, outVC}
			rt.owner[got.port][got.vc] = w
			rt.route[w.id] = got
			return got, true, false
		}
	}
	s.noteBlocked(w)
	return lane{}, false, false
}

// finishWorm is the sharded twin of Net.finishWorm. The delivering router
// owns the destination node, so the receive queue push is shard-local; the
// source-queue decrement (the source may live anywhere) defers to the
// epilogue, and the flow-reactivation branch vanishes — without CR a
// flow's active slot was already cleared when injection completed.
func (s *shardState) finishWorm(r int, out lane, w *worm, node int) {
	n := s.n
	rt := &n.routers[r]
	if rt.owner[out.port][out.vc] == w {
		rt.owner[out.port][out.vc] = nil
	}
	delete(rt.route, w.id)
	w.state = wormDelivered
	s.inflightDelta--
	latency := n.cycle - w.injected
	s.latencySum += latency
	s.latencyCount++
	if latency > s.latencyMax {
		s.latencyMax = latency
	}
	if n.obs != nil {
		msg, pkt, parent := w.identity()
		s.routeObs = append(s.routeObs, obsRec{
			span: true, name: "flit.xfer", from: w.startedAt, to: n.cycle,
			msg: msg, pkt: pkt, parent: parent,
		})
		if w.stallCycles > 0 {
			s.routeObs = append(s.routeObs, obsRec{
				span: true, name: "flit.wait.blocked", from: n.cycle - w.stallCycles, to: n.cycle,
				msg: msg, pkt: pkt, parent: parent,
			})
		}
		s.routeObs = append(s.routeObs, obsRec{
			name: "flit.delivered", from: n.cycle,
			msg: msg, pkt: pkt, parent: parent,
		})
	}
	n.recvq[node].push(w.packet)
	s.recvqDelta++
	s.srcDecs = append(s.srcDecs, int32(w.packet.Src))
	s.wormPool = append(s.wormPool, w)
}
