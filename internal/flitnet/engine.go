package flitnet

import "msglayer/internal/topology"

// Tick advances the simulation by the given number of cycles.
func (n *Net) Tick(cycles int) {
	for i := 0; i < cycles; i++ {
		n.tickOnce()
	}
}

// TickUntilQuiet advances until no worms remain in flight or queued, up to
// the cycle budget. It returns true if the network drained.
func (n *Net) TickUntilQuiet(budget int) bool {
	for i := 0; i < budget; i++ {
		if n.quiet() {
			return true
		}
		n.tickOnce()
	}
	return n.quiet()
}

func (n *Net) quiet() bool {
	if n.inflight > 0 {
		return false
	}
	for _, f := range n.flows {
		if f.active != nil || f.pending() > 0 {
			return false
		}
	}
	return true
}

// tickOnce advances one cycle. The phases allocate nothing: the per-cycle
// "who injected / which link carried a flit" sets are cycle-stamped scratch
// slices on the Net and routers rather than fresh maps.
func (n *Net) tickOnce() {
	n.cycle++
	n.stats.Cycles++
	n.injectPhase()
	n.routePhase()
}

// injectPhase starts and advances worm injection: one flit per node per
// cycle, and one worm at a time per node — a node's NI streams each packet
// into the network completely before beginning the next, so flits of
// different packets never interleave in the source FIFO (which would
// deadlock wormhole flow control: the first worm's body could be trapped
// behind the second worm's blocked head).
func (n *Net) injectPhase() {
	for _, key := range n.order {
		f := n.flows[key]
		if f.active == nil && n.injecting[key.src] == nil {
			f.active = n.startNext(f)
			if f.active != nil {
				n.injecting[key.src] = f.active
			}
		}
		w := f.active
		if w == nil || w.state != wormInjecting || n.injMark[key.src] == n.cycle {
			continue
		}
		if n.injecting[key.src] != w {
			continue // another flow's worm holds this node's send path
		}
		srcRouter, srcPort := n.cfg.Topology.NodePort(key.src)
		buf := &n.routers[srcRouter].inputs[srcPort][w.srcVC]
		if buf.len() >= n.cfg.BufferFlits {
			// The head is stuck at the source; in CR mode a worm that
			// cannot even enter counts as blocked too.
			if w.sent == 0 {
				n.noteBlocked(w)
			}
			continue
		}
		buf.push(flit{worm: w, kind: n.flitKind(w), arrived: n.cycle})
		w.sent++
		n.injMark[key.src] = n.cycle
		if w.sent == w.flits {
			w.state = wormInFlight
			n.injecting[key.src] = nil
			if n.cfg.Mode != CR {
				// Non-CR flows pipeline: the next worm may start while
				// this one's tail is still traveling.
				f.active = nil
			}
		}
	}
}

// nextAwake pops the flow's next awake worm.
func (f *flow) nextAwake(cycle uint64) *worm {
	if f.pending() == 0 {
		return nil
	}
	if f.front().wakeAt > cycle {
		return nil
	}
	return f.popFront()
}

func (n *Net) startNext(f *flow) *worm {
	w := f.nextAwake(n.cycle)
	if w == nil {
		return nil
	}
	w.state = wormInjecting
	w.blocked = 0
	// Rotate injection channels so consecutive worms can bypass a blocked
	// predecessor at the source port.
	w.srcVC = int(w.id) % n.cfg.VirtualChannels
	n.inflight++
	return w
}

// flitKind determines the next flit of a worm being injected.
func (n *Net) flitKind(w *worm) flitKind {
	switch {
	case w.sent == 0:
		return flitHead
	case w.sent == w.flits-1:
		return flitTail
	case w.sent-1 < len(w.packet.Data):
		return flitBody
	default:
		return flitPad
	}
}

// routePhase advances at most one flit per input lane per cycle, with each
// physical output port carrying at most one flit per cycle.
func (n *Net) routePhase() {
	vcs := n.cfg.VirtualChannels
	for r := range n.routers {
		for port := range n.routers[r].inputs {
			for v := 0; v < vcs; v++ {
				// Rotate virtual-channel priority each cycle for fairness.
				vc := (v + int(n.cycle)) % vcs
				n.advanceLane(r, port, vc)
			}
		}
	}
}

func (n *Net) advanceLane(r, port, vc int) {
	rt := &n.routers[r]
	buf := &rt.inputs[port][vc]
	if buf.len() == 0 {
		return
	}
	fl := *buf.front()
	if fl.arrived == n.cycle {
		return // moved into this lane this cycle; advances next cycle
	}
	w := fl.worm
	if w.state == wormKilled || w.state == wormFailed {
		buf.pop()
		return
	}

	var out lane
	if claimed, ok := rt.route[w.id]; ok {
		// The worm already holds an output lane here — either the head
		// claimed it on an earlier cycle but the link was busy, or this
		// is a body/tail flit following the head.
		out = claimed
	} else if fl.kind == flitHead {
		claimed, ok := n.routeHead(r, port, vc, w)
		if !ok {
			return // blocked, consumed at a terminal, or killed
		}
		out = claimed
	} else {
		// A body flit with no claim means the worm was killed and swept.
		buf.pop()
		return
	}
	if rt.outUsed[out.port] == n.cycle {
		return // the physical link already carried a flit this cycle
	}

	peer, peerPort, node := n.cfg.Topology.Neighbor(r, out.port)
	if node != topology.Terminal {
		// Delivery: consume the flit; the tail completes the packet.
		buf.pop()
		rt.outUsed[out.port] = n.cycle
		n.stats.FlitMoves++
		if fl.kind == flitTail {
			n.finishWorm(r, out, w, node)
		}
		return
	}
	// Router-to-router hop: needs space downstream on the claimed lane.
	dst := &n.routers[peer].inputs[peerPort][out.vc]
	if dst.len() >= n.cfg.BufferFlits {
		if fl.kind == flitHead {
			n.noteBlocked(w)
		}
		return
	}
	buf.pop()
	fl.arrived = n.cycle
	dst.push(fl)
	rt.outUsed[out.port] = n.cycle
	n.stats.FlitMoves++
	w.blocked = 0
	if fl.kind == flitTail {
		// The tail releases this router's claim on the output lane.
		if rt.owner[out.port][out.vc] == w {
			rt.owner[out.port][out.vc] = nil
		}
		delete(rt.route, w.id)
	}
}

// routeHead claims an output lane for a worm's head at router r, returning
// (lane, true) on success. On rejection the worm is killed; on blocking the
// head stays put; on delivery at a terminal the head is consumed and
// (lane, false) is returned with the claim recorded.
func (n *Net) routeHead(r, port, vc int, w *worm) (lane, bool) {
	rt := &n.routers[r]
	n.routeScratch = n.cfg.Topology.RouteAppend(r, port, w.packet.Dst, n.routeScratch[:0])
	cands := n.routeScratch
	if len(cands) == 0 {
		n.kill(w, "unroutable")
		return lane{}, false
	}
	if n.cfg.Mode != Adaptive {
		cands = cands[:1]
	}
	vcs := n.cfg.VirtualChannels
	for ci, cand := range cands {
		peer, peerPort, node := n.cfg.Topology.Neighbor(r, cand)
		if node != topology.Terminal {
			// Arrival at the destination node: the acceptance check
			// runs as the header begins to arrive. The NI ejects one
			// flit per cycle but reassembles per virtual channel, so
			// each ejection lane can hold a different worm.
			if rt.outUsed[cand] == n.cycle {
				continue
			}
			out := lane{cand, -1}
			for ej := 0; ej < vcs; ej++ {
				if rt.owner[cand][ej] == nil {
					out = lane{cand, ej}
					break
				}
			}
			if out.vc < 0 {
				continue // all ejection lanes busy
			}
			if node != w.packet.Dst {
				n.kill(w, "misroute")
				return lane{}, false
			}
			if a := n.accepts[node]; a != nil && !a(w.packet) {
				n.stats.Rejected++
				n.kill(w, "rejected")
				return lane{}, false
			}
			rt.owner[out.port][out.vc] = w
			rt.route[w.id] = out
			rt.inputs[port][vc].pop() // consume the head
			rt.outUsed[cand] = n.cycle
			n.stats.FlitMoves++
			w.blocked = 0
			return lane{}, false // head consumed; nothing more to move
		}
		// Virtual-channel discipline: channel 0 is the escape lane,
		// restricted to the deterministic first candidate; higher
		// channels may take any productive candidate.
		for outVC := 0; outVC < vcs; outVC++ {
			if outVC == 0 && ci != 0 && n.cfg.Mode == Adaptive && vcs > 1 {
				continue
			}
			if rt.owner[cand][outVC] != nil {
				continue
			}
			if n.routers[peer].inputs[peerPort][outVC].len() >= n.cfg.BufferFlits {
				continue
			}
			out := lane{cand, outVC}
			rt.owner[out.port][out.vc] = w
			rt.route[w.id] = out
			return out, true
		}
	}
	n.noteBlocked(w)
	return lane{}, false
}

// noteBlocked ages a blocked head and applies the CR kill timeout.
func (n *Net) noteBlocked(w *worm) {
	w.blocked++
	if n.cfg.Mode == CR && w.blocked > uint64(n.cfg.KillTimeout) {
		n.kill(w, "timeout")
	}
}

// finishWorm completes delivery: the tail has been accepted, which in CR is
// the end-to-end acknowledgement. The worm struct returns to the pool; its
// payload buffer now belongs to the receiver.
func (n *Net) finishWorm(r int, out lane, w *worm, node int) {
	rt := &n.routers[r]
	if rt.owner[out.port][out.vc] == w {
		rt.owner[out.port][out.vc] = nil
	}
	delete(rt.route, w.id)
	w.state = wormDelivered
	n.inflight--
	latency := n.cycle - w.injected
	n.stats.LatencySum += latency
	n.stats.LatencyCount++
	if latency > n.stats.LatencyMax {
		n.stats.LatencyMax = latency
	}
	n.recvq[node].push(w.packet)
	n.queued[w.packet.Src]--
	key := flowKey{w.packet.Src, w.packet.Dst}
	if f := n.flows[key]; f != nil && f.active == w {
		f.active = nil
	}
	n.putWorm(w)
}

// kill tears down a worm's path everywhere — the CR path-release mechanism
// (in non-CR modes it only fires on misroutes, which are topology bugs).
// The worm retries after a backoff, re-entering its flow queue at the front
// so transmission order is preserved; retry exhaustion fails the injection
// and recycles the worm and its payload buffer.
func (n *Net) kill(w *worm, reason string) {
	if w.state == wormKilled || w.state == wormFailed {
		return
	}
	w.state = wormKilled
	n.inflight-- // re-queued (or failed) below; no longer in the network
	n.stats.Kills++

	// Sweep the worm's flits and resource claims out of the network.
	for r := range n.routers {
		rt := &n.routers[r]
		for port := range rt.inputs {
			for vc := range rt.inputs[port] {
				rt.inputs[port][vc].filterWorm(w)
			}
		}
		if out, ok := rt.route[w.id]; ok {
			if rt.owner[out.port][out.vc] == w {
				rt.owner[out.port][out.vc] = nil
			}
			delete(rt.route, w.id)
		}
	}

	key := flowKey{w.packet.Src, w.packet.Dst}
	f := n.flows[key]
	if f != nil && f.active == w {
		f.active = nil
	}
	if n.injecting[w.packet.Src] == w {
		n.injecting[w.packet.Src] = nil
	}
	if w.retries >= n.cfg.MaxRetries {
		w.state = wormFailed
		n.stats.FailedWorms++
		n.queued[w.packet.Src]--
		n.stats.Dropped++
		n.putWords(w.packet.Data)
		n.putWorm(w)
		return
	}
	w.retries++
	n.stats.Retries++
	w.state = wormQueued
	w.sent = 0
	w.blocked = 0
	// Exponential backoff with deterministic per-worm jitter: two worms
	// that killed each other must not retry in lockstep, or they collide
	// and kill each other forever (retry livelock).
	shift := w.retries
	if shift > 6 {
		shift = 6
	}
	backoff := uint64(n.cfg.RetryBackoff) << shift
	jitter := w.id % uint64(n.cfg.RetryBackoff+1)
	w.wakeAt = n.cycle + backoff + jitter
	if f != nil {
		f.pushFront(w)
	}
}
