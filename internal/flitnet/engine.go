package flitnet

import "msglayer/internal/topology"

// The scheduling core is event-driven: per-cycle work is proportional to
// the traffic in flight, not to the topology size.
//
//   - The route phase iterates the active-lane worklist (lanes holding at
//     least one flit) instead of scanning every router × port × virtual
//     channel.
//   - The inject phase iterates the ready-flow worklist (flows that might
//     inject this cycle) instead of walking every flow; flows whose front
//     worm sleeps in retry backoff park in a wake heap keyed by wakeAt.
//   - When both worklists are empty — no flit can move and every pending
//     worm is in backoff — Tick fast-forwards the clock straight to the
//     earliest wakeAt instead of ticking cycle by cycle. The skipped
//     cycles still count into Stats.Cycles.
//
// The contract with the dense scan it replaced is byte-identical results.
// The dense scan visited lanes in ascending (router, port) order with the
// virtual-channel priority rotated each cycle, and flows in first-Inject
// order; both worklists are kept sorted on exactly those keys, and
// additions made while a cycle runs merge in at the next phase boundary —
// the same cycle the dense scan would first have acted on them, because a
// flit pushed this cycle is skipped until the next one anyway (the
// `arrived == cycle` guard) and a flow made ready mid-phase belongs to the
// very flow being visited. The retained dense stepper (Config.
// DenseReference) exists so tests can hold the engine to that contract.

// Tick advances the simulation by the given number of cycles. Stretches
// where nothing can move — every pending worm in retry backoff, no flit
// buffered anywhere — are fast-forwarded in one jump, up to the requested
// budget, so waiting out a backoff costs O(1) instead of O(idle cycles).
func (n *Net) Tick(cycles int) {
	for cycles > 0 {
		if skip := n.idleCycles(cycles); skip > 0 {
			n.cycle += uint64(skip)
			n.stats.Cycles += uint64(skip)
			n.idleSkipped += uint64(skip)
			cycles -= skip
			if n.observing() {
				n.noteCycle()
			}
			continue
		}
		n.tickOnce()
		cycles--
		if n.observing() {
			n.noteCycle()
		}
	}
}

// TickUntilQuiet advances until no worms remain in flight or queued, up to
// the cycle budget. It returns true if the network drained. The quiet
// check is O(1) (maintained counters) and idle stretches fast-forward, so
// draining a backoff-bound network costs work proportional to the events
// in it, not to the cycles it spans.
func (n *Net) TickUntilQuiet(budget int) bool {
	for budget > 0 {
		if n.quiet() {
			return true
		}
		if skip := n.idleCycles(budget); skip > 0 {
			n.cycle += uint64(skip)
			n.stats.Cycles += uint64(skip)
			n.idleSkipped += uint64(skip)
			budget -= skip
			if n.observing() {
				n.noteCycle()
			}
			continue
		}
		n.tickOnce()
		budget--
		if n.observing() {
			n.noteCycle()
		}
	}
	return n.quiet()
}

// quiet reports whether nothing is queued or in flight. The counters are
// maintained at inject, start, delivery, and kill, making this O(1) where
// it used to rescan every flow.
func (n *Net) quiet() bool {
	return n.inflight == 0 && n.queuedWorms == 0
}

// idleCycles returns how many of the next budget cycles are guaranteed to
// be no-ops: zero unless both worklists are empty (no flit buffered, no
// flow able to inject). With sleepers pending the jump stops one cycle
// short of the earliest wake; with none, the whole budget is idle. The
// dense reference stepper never fast-forwards.
func (n *Net) idleCycles(budget int) int {
	if n.dense {
		return 0
	}
	if n.sh != nil {
		return n.sh.idleCycles(budget)
	}
	if len(n.lanes.sorted)+len(n.lanes.added)+len(n.ready.sorted)+len(n.ready.added) > 0 {
		return 0
	}
	if n.wake.len() == 0 {
		return budget
	}
	next := n.wake.minAt()
	if next <= n.cycle+1 {
		return 0
	}
	skip := next - n.cycle - 1
	if skip > uint64(budget) {
		return budget
	}
	return int(skip)
}

// tickOnce advances one cycle. The phases allocate nothing: the per-cycle
// "who injected / which link carried a flit" sets are cycle-stamped scratch
// slices on the Net and routers, and the worklists reuse their backing
// arrays.
func (n *Net) tickOnce() {
	n.cycle++
	n.stats.Cycles++
	if n.dense {
		n.denseInjectPhase()
		n.denseRoutePhase()
		return
	}
	if n.sh != nil {
		n.sh.tickOnce()
		return
	}
	n.injectPhase()
	n.routePhase()
}

// --- inject phase ------------------------------------------------------

// injectPhase starts and advances worm injection over the ready-flow
// worklist: one flit per node per cycle, one worm at a time per node (see
// injectFlow). Flows wake from backoff here, and flows that can make no
// progress until an external event leave the list.
func (n *Net) injectPhase() {
	for n.wake.len() > 0 && n.wake.minAt() <= n.cycle {
		n.ready.add(n.wake.pop())
	}
	n.ready.merge()
	keep := n.ready.sorted[:0]
	for _, fi := range n.ready.sorted {
		if n.injectFlow(n.order[fi], n.flowSeq[fi]) {
			keep = append(keep, fi)
		} else {
			n.ready.mark[fi] = false
		}
	}
	n.ready.sorted = keep
}

// denseInjectPhase is the retained reference: every flow, every cycle, in
// first-Inject order.
func (n *Net) denseInjectPhase() {
	for _, key := range n.order {
		n.injectFlowStep(key, n.flows[key])
	}
}

// injectFlow runs one flow's injection step and reports whether the flow
// should stay on the ready worklist. A flow leaves when it has drained
// (Inject or a kill re-queue will re-add it), when its front worm sleeps
// in retry backoff (the wake heap re-adds it at wakeAt), or when a CR worm
// is fully injected and awaiting its tail acceptance (delivery or kill
// re-adds it).
func (n *Net) injectFlow(key flowKey, f *flow) bool {
	n.injectFlowStep(key, f)
	if f.active != nil {
		return f.active.state == wormInjecting
	}
	if f.pending() == 0 {
		return false
	}
	if front := f.front(); front.wakeAt > n.cycle {
		n.wake.push(front.wakeAt, f.idx)
		return false
	}
	return true
}

// injectFlowStep is one flow's per-cycle injection work: start the next
// awake worm if the node's send path is free, then push one flit — a
// node's NI streams each packet into the network completely before
// beginning the next, so flits of different packets never interleave in
// the source FIFO (which would deadlock wormhole flow control: the first
// worm's body could be trapped behind the second worm's blocked head).
func (n *Net) injectFlowStep(key flowKey, f *flow) {
	if f.active == nil && n.injecting[key.src] == nil {
		f.active = n.startNext(f)
		if f.active != nil {
			n.injecting[key.src] = f.active
		}
	}
	w := f.active
	if w == nil || w.state != wormInjecting || n.injMark[key.src] == n.cycle {
		return
	}
	if n.injecting[key.src] != w {
		return // another flow's worm holds this node's send path
	}
	srcRouter, srcPort := n.cfg.Topology.NodePort(key.src)
	if n.routers[srcRouter].inputs[srcPort][w.srcVC].full() {
		// The head is stuck at the source; in CR mode a worm that
		// cannot even enter counts as blocked too.
		if w.sent == 0 {
			n.noteBlocked(w)
		}
		return
	}
	n.pushFlit(srcRouter, srcPort, w.srcVC, flit{worm: w, kind: n.flitKind(w), arrived: n.cycle})
	w.sent++
	n.injMark[key.src] = n.cycle
	if w.sent == w.flits {
		w.state = wormInFlight
		n.injecting[key.src] = nil
		if n.cfg.Mode != CR {
			// Non-CR flows pipeline: the next worm may start while
			// this one's tail is still traveling.
			f.active = nil
		}
	}
}

// nextAwake pops the flow's next awake worm.
func (f *flow) nextAwake(cycle uint64) *worm {
	if f.pending() == 0 {
		return nil
	}
	if f.front().wakeAt > cycle {
		return nil
	}
	return f.popFront()
}

func (n *Net) startNext(f *flow) *worm {
	w := f.nextAwake(n.cycle)
	if w == nil {
		return nil
	}
	n.queuedWorms--
	w.state = wormInjecting
	w.blocked = 0
	if n.obs != nil {
		// Close the wait that ends here: time in the inject queue on the
		// first attempt, retry backoff on subsequent ones.
		name := "flit.wait.queue"
		if w.retries > 0 {
			name = "flit.wait.backoff"
		}
		msg, pkt, parent := w.identity()
		n.obs.Span(name, w.waitFrom, n.cycle, msg, pkt, parent)
	}
	w.startedAt = n.cycle
	// Rotate injection channels so consecutive worms can bypass a blocked
	// predecessor at the source port.
	w.srcVC = int(w.id) % n.cfg.VirtualChannels
	n.inflight++
	return w
}

// flitKind determines the next flit of a worm being injected.
func (n *Net) flitKind(w *worm) flitKind {
	switch {
	case w.sent == 0:
		return flitHead
	case w.sent == w.flits-1:
		return flitTail
	case w.sent-1 < len(w.packet.Data):
		return flitBody
	default:
		return flitPad
	}
}

// --- route phase -------------------------------------------------------

// routePhase advances at most one flit per occupied input lane per cycle,
// with each physical output port carrying at most one flit per cycle. It
// walks the active-lane worklist — sorted in the dense scan's (router,
// port) order with the per-cycle virtual-channel rotation applied within
// each port — and compacts lanes that have drained out of the list.
func (n *Net) routePhase() {
	n.lanes.merge()
	vcs := n.cfg.VirtualChannels
	lanes := n.lanes.sorted
	keep := lanes[:0]
	if vcs == 1 {
		for _, id := range lanes {
			r, port := int(n.laneRouter[id]), int(n.lanePort[id])
			n.advanceLane(r, port, 0)
			if n.routers[r].inputs[port][0].len() > 0 {
				keep = append(keep, id)
			} else {
				n.lanes.mark[id] = false
			}
		}
		n.lanes.sorted = keep
		return
	}
	for i := 0; i < len(lanes); {
		// One (router, port) group is a run of ids sharing id/vcs
		// (laneBase is a multiple of vcs, so the quotient is globally
		// unique per physical port).
		group := lanes[i] / int32(vcs)
		j := i + 1
		for j < len(lanes) && lanes[j]/int32(vcs) == group {
			j++
		}
		base := group * int32(vcs)
		r, port := int(n.laneRouter[base]), int(n.lanePort[base])
		// Rotate virtual-channel priority each cycle for fairness —
		// the same rotation the dense scan applied to all vcs, here
		// restricted to the occupied ones (visiting an empty lane was
		// a no-op).
		for v := 0; v < vcs; v++ {
			vc := (v + int(n.cycle)) % vcs
			id := base + int32(vc)
			for k := i; k < j; k++ {
				if lanes[k] == id {
					n.advanceLane(r, port, vc)
					break
				}
			}
		}
		for k := i; k < j; k++ {
			id := lanes[k]
			if n.routers[r].inputs[port][int(id-base)].len() > 0 {
				keep = append(keep, id)
			} else {
				n.lanes.mark[id] = false
			}
		}
		i = j
	}
	n.lanes.sorted = keep
}

// denseRoutePhase is the retained reference: every lane of every router,
// every cycle.
func (n *Net) denseRoutePhase() {
	vcs := n.cfg.VirtualChannels
	for r := range n.routers {
		for port := range n.routers[r].inputs {
			for v := 0; v < vcs; v++ {
				vc := (v + int(n.cycle)) % vcs
				n.advanceLane(r, port, vc)
			}
		}
	}
}

func (n *Net) advanceLane(r, port, vc int) {
	rt := &n.routers[r]
	buf := &rt.inputs[port][vc]
	if buf.len() == 0 {
		return
	}
	fl := *buf.front()
	if fl.arrived == n.cycle {
		return // moved into this lane this cycle; advances next cycle
	}
	w := fl.worm
	if w.state == wormKilled || w.state == wormFailed {
		n.popFlit(buf, vc)
		return
	}

	var out lane
	if claimed, ok := rt.route[w.id]; ok {
		// The worm already holds an output lane here — either the head
		// claimed it on an earlier cycle but the link was busy, or this
		// is a body/tail flit following the head.
		out = claimed
	} else if fl.kind == flitHead {
		claimed, ok := n.routeHead(r, port, vc, w)
		if !ok {
			return // blocked, consumed at a terminal, or killed
		}
		out = claimed
	} else {
		// A body flit with no claim means the worm was killed and swept.
		n.popFlit(buf, vc)
		return
	}
	if rt.outUsed[out.port] == n.cycle {
		return // the physical link already carried a flit this cycle
	}

	peer, peerPort, node := n.cfg.Topology.Neighbor(r, out.port)
	if node != topology.Terminal {
		// Delivery: consume the flit; the tail completes the packet.
		n.popFlit(buf, vc)
		rt.outUsed[out.port] = n.cycle
		n.stats.FlitMoves++
		if n.linkObs != nil {
			n.linkObs[r][out.port].Inc()
		}
		if fl.kind == flitTail {
			n.finishWorm(r, out, w, node)
		}
		return
	}
	// Router-to-router hop: needs space downstream on the claimed lane.
	if n.routers[peer].inputs[peerPort][out.vc].full() {
		if fl.kind == flitHead {
			n.noteBlocked(w)
		}
		return
	}
	n.popFlit(buf, vc)
	fl.arrived = n.cycle
	n.pushFlit(peer, peerPort, out.vc, fl)
	rt.outUsed[out.port] = n.cycle
	n.stats.FlitMoves++
	if n.linkObs != nil {
		n.linkObs[r][out.port].Inc()
	}
	w.blocked = 0
	if fl.kind == flitTail {
		// The tail releases this router's claim on the output lane.
		if rt.owner[out.port][out.vc] == w {
			rt.owner[out.port][out.vc] = nil
		}
		delete(rt.route, w.id)
		w.popClaim()
	}
}

// routeHead claims an output lane for a worm's head at router r, returning
// (lane, true) on success. On rejection the worm is killed; on blocking the
// head stays put; on delivery at a terminal the head is consumed and
// (lane, false) is returned with the claim recorded.
func (n *Net) routeHead(r, port, vc int, w *worm) (lane, bool) {
	rt := &n.routers[r]
	n.routeScratch = n.cfg.Topology.RouteAppend(r, port, w.packet.Dst, n.routeScratch[:0])
	cands := n.routeScratch
	if len(cands) == 0 {
		n.kill(w, "unroutable")
		return lane{}, false
	}
	if n.cfg.Mode != Adaptive {
		cands = cands[:1]
	}
	vcs := n.cfg.VirtualChannels
	for ci, cand := range cands {
		peer, peerPort, node := n.cfg.Topology.Neighbor(r, cand)
		if node != topology.Terminal {
			// Arrival at the destination node: the acceptance check
			// runs as the header begins to arrive. The NI ejects one
			// flit per cycle but reassembles per virtual channel, so
			// each ejection lane can hold a different worm.
			if rt.outUsed[cand] == n.cycle {
				continue
			}
			out := lane{cand, -1}
			for ej := 0; ej < vcs; ej++ {
				if rt.owner[cand][ej] == nil {
					out = lane{cand, ej}
					break
				}
			}
			if out.vc < 0 {
				continue // all ejection lanes busy
			}
			if node != w.packet.Dst {
				n.kill(w, "misroute")
				return lane{}, false
			}
			if a := n.accepts[node]; a != nil && !a(w.packet) {
				n.stats.Rejected++
				n.kill(w, "rejected")
				return lane{}, false
			}
			rt.owner[out.port][out.vc] = w
			rt.route[w.id] = out
			n.popFlit(&rt.inputs[port][vc], vc) // consume the head
			w.pushClaim(r)
			rt.outUsed[cand] = n.cycle
			n.stats.FlitMoves++
			if n.linkObs != nil {
				n.linkObs[r][cand].Inc()
			}
			w.blocked = 0
			return lane{}, false // head consumed; nothing more to move
		}
		// Virtual-channel discipline: channel 0 is the escape lane,
		// restricted to the deterministic first candidate; higher
		// channels may take any productive candidate.
		for outVC := 0; outVC < vcs; outVC++ {
			if outVC == 0 && ci != 0 && n.cfg.Mode == Adaptive && vcs > 1 {
				continue
			}
			if rt.owner[cand][outVC] != nil {
				continue
			}
			if n.routers[peer].inputs[peerPort][outVC].full() {
				continue
			}
			out := lane{cand, outVC}
			rt.owner[out.port][out.vc] = w
			rt.route[w.id] = out
			w.pushClaim(r)
			return out, true
		}
	}
	n.noteBlocked(w)
	return lane{}, false
}

// noteBlocked ages a blocked head and applies the CR kill timeout. The
// stall counter feeds the flit.wait.blocked span emitted at delivery — one
// summary span instead of a per-cycle event, keeping trace volume bounded.
func (n *Net) noteBlocked(w *worm) {
	w.blocked++
	w.stallCycles++
	if n.cfg.Mode == CR && w.blocked > uint64(n.cfg.KillTimeout) {
		n.kill(w, "timeout")
	}
}

// finishWorm completes delivery: the tail has been accepted, which in CR is
// the end-to-end acknowledgement. The worm struct returns to the pool; its
// payload buffer now belongs to the receiver.
func (n *Net) finishWorm(r int, out lane, w *worm, node int) {
	rt := &n.routers[r]
	if rt.owner[out.port][out.vc] == w {
		rt.owner[out.port][out.vc] = nil
	}
	delete(rt.route, w.id)
	w.popClaim()
	w.state = wormDelivered
	n.inflight--
	latency := n.cycle - w.injected
	n.stats.LatencySum += latency
	n.stats.LatencyCount++
	if latency > n.stats.LatencyMax {
		n.stats.LatencyMax = latency
	}
	if n.obs != nil {
		msg, pkt, parent := w.identity()
		n.obs.Span("flit.xfer", w.startedAt, n.cycle, msg, pkt, parent)
		if w.stallCycles > 0 {
			// The blocked-head summary: stall cycles accumulated anywhere
			// along the path, reported as one span ending at delivery.
			n.obs.Span("flit.wait.blocked", n.cycle-w.stallCycles, n.cycle, msg, pkt, parent)
		}
		n.obs.Event("flit.delivered", n.cycle, msg, pkt, parent)
	}
	n.recvq[node].push(w.packet)
	n.recvqTotal++
	n.queued[w.packet.Src]--
	key := flowKey{w.packet.Src, w.packet.Dst}
	if f := n.flows[key]; f != nil && f.active == w {
		f.active = nil
		// A CR flow held its next worm back for this acceptance; let
		// the inject phase look at it again.
		n.ready.add(f.idx)
	}
	n.putWorm(w)
}

// kill tears down a worm's path everywhere — the CR path-release mechanism
// (in non-CR modes it only fires on misroutes, which are topology bugs).
// The sweep visits only the active lanes (a flit can only sit in an
// occupied lane) and the routers the worm actually claimed, so a kill
// costs O(flits in flight + path length) rather than a full-topology scan.
// The worm retries after a backoff, re-entering its flow queue at the front
// so transmission order is preserved; retry exhaustion fails the injection
// and recycles the worm and its payload buffer.
func (n *Net) kill(w *worm, reason string) {
	if w.state == wormKilled || w.state == wormFailed {
		return
	}
	w.state = wormKilled
	n.inflight-- // re-queued (or failed) below; no longer in the network
	n.stats.Kills++
	if n.obs != nil {
		msg, pkt, parent := w.identity()
		n.obs.Event(killEventName(reason), n.cycle, msg, pkt, parent)
	}

	// Sweep the worm's flits out of every occupied lane. The worklist may
	// be mid-compaction (kill fires from inside the route phase), in which
	// case it briefly holds duplicate or already-drained ids — filterWorm
	// is idempotent and a miss on an empty lane is a no-op, so sweeping
	// the superset is safe.
	for _, id := range n.lanes.sorted {
		vc := int(id) % n.cfg.VirtualChannels
		if removed := n.routers[n.laneRouter[id]].inputs[n.lanePort[id]][vc].filterWorm(w); removed > 0 && n.gauges != nil {
			n.buffered -= removed
			n.bufferedVC[vc] -= removed
		}
	}
	for _, id := range n.lanes.added {
		vc := int(id) % n.cfg.VirtualChannels
		if removed := n.routers[n.laneRouter[id]].inputs[n.lanePort[id]][vc].filterWorm(w); removed > 0 && n.gauges != nil {
			n.buffered -= removed
			n.bufferedVC[vc] -= removed
		}
	}
	// Release the output lanes the worm still claims, in path order.
	for _, cr := range w.claims[w.claimHead:] {
		rt := &n.routers[cr]
		if out, ok := rt.route[w.id]; ok {
			if rt.owner[out.port][out.vc] == w {
				rt.owner[out.port][out.vc] = nil
			}
			delete(rt.route, w.id)
		}
	}
	w.claims = w.claims[:0]
	w.claimHead = 0

	key := flowKey{w.packet.Src, w.packet.Dst}
	f := n.flows[key]
	if f != nil && f.active == w {
		f.active = nil
	}
	if n.injecting[w.packet.Src] == w {
		n.injecting[w.packet.Src] = nil
	}
	if w.retries >= n.cfg.MaxRetries {
		w.state = wormFailed
		n.stats.FailedWorms++
		n.queued[w.packet.Src]--
		n.stats.Dropped++
		if n.obs != nil {
			msg, pkt, parent := w.identity()
			n.obs.Event("flit.failed", n.cycle, msg, pkt, parent)
		}
		n.putWords(w.packet.Data)
		n.putWorm(w)
		if f != nil {
			n.ready.add(f.idx) // the flow's next worm may start now
		}
		return
	}
	w.retries++
	n.stats.Retries++
	w.state = wormQueued
	w.sent = 0
	w.blocked = 0
	w.waitFrom = n.cycle
	w.stallCycles = 0
	// Exponential backoff with deterministic per-worm jitter: two worms
	// that killed each other must not retry in lockstep, or they collide
	// and kill each other forever (retry livelock).
	shift := w.retries
	if shift > 6 {
		shift = 6
	}
	backoff := uint64(n.cfg.RetryBackoff) << shift
	jitter := w.id % uint64(n.cfg.RetryBackoff+1)
	w.wakeAt = n.cycle + backoff + jitter
	if f != nil {
		f.pushFront(w)
		n.queuedWorms++
		// The inject phase will find the front worm sleeping and park
		// the flow in the wake heap until wakeAt.
		n.ready.add(f.idx)
	}
}

// killEventName maps a kill reason to its event-name constant (constants,
// not concatenation, so the kill path allocates nothing).
func killEventName(reason string) string {
	switch reason {
	case "timeout":
		return "flit.kill.timeout"
	case "rejected":
		return "flit.kill.rejected"
	case "misroute":
		return "flit.kill.misroute"
	default:
		return "flit.kill.unroutable"
	}
}
