package flitnet

import (
	"testing"

	"msglayer/internal/network"
	"msglayer/internal/topology"
)

// BenchmarkTickOnce measures one simulator cycle with worms in flight —
// the hot path of every netload sweep point. Re-seeding the network when
// it drains happens outside the timer, so the reported allocs/op are the
// tick phases alone: the zero-allocation invariant the perfreg gate holds
// the simulator to.
func BenchmarkTickOnce(b *testing.B) {
	n := MustNew(Config{Topology: topology.MustFatTree(4, 2), Mode: Adaptive})
	reseed := func() {
		for src := 0; src < 16; src++ {
			for node := 0; node < 16; node++ {
				for {
					if _, ok := n.TryRecv(node); !ok {
						break
					}
				}
			}
			_ = n.Inject(network.Packet{Src: src, Dst: 15 - src, Data: []network.Word{1, 2, 3, 4}})
		}
	}
	reseed()
	// Warm the pools and flow tables before measuring.
	for i := 0; i < 2000; i++ {
		if n.quiet() {
			reseed()
		}
		n.tickOnce()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if n.quiet() {
			b.StopTimer()
			reseed()
			b.StartTimer()
		}
		n.tickOnce()
	}
}

// BenchmarkTickLoaded measures simulator cycles per second under steady
// uniform traffic on a 16-node fat tree, including injection and receive
// drain — the full harness loop.
func BenchmarkTickLoaded(b *testing.B) {
	n := MustNew(Config{Topology: topology.MustFatTree(4, 2), Mode: Adaptive})
	rng := uint64(1)
	next := func() uint64 {
		rng = rng*6364136223846793005 + 1442695040888963407
		return rng >> 33
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		src := int(next()) % 16
		dst := int(next()) % 16
		if src != dst {
			_ = n.Inject(network.Packet{Src: src, Dst: dst, Data: []network.Word{1}})
		}
		n.Tick(1)
		for node := 0; node < 16; node++ {
			for {
				if _, ok := n.TryRecv(node); !ok {
					break
				}
			}
		}
	}
}

// BenchmarkWormEndToEnd measures one packet's full flit-level journey.
func BenchmarkWormEndToEnd(b *testing.B) {
	n := MustNew(Config{Topology: topology.MustMesh(4, 4), Mode: Deterministic})
	payload := []network.Word{1, 2, 3, 4}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := n.Inject(network.Packet{Src: 0, Dst: 15, Data: payload}); err != nil {
			b.Fatal(err)
		}
		if !n.TickUntilQuiet(100) {
			b.Fatal("did not drain")
		}
		if _, ok := n.TryRecv(15); !ok {
			b.Fatal("lost packet")
		}
	}
}
