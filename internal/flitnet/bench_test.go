package flitnet

import (
	"testing"

	"msglayer/internal/network"
	"msglayer/internal/topology"
)

// BenchmarkTickOnce measures one simulator cycle with worms in flight —
// the hot path of every netload sweep point. Re-seeding the network when
// it drains happens outside the timer, so the reported allocs/op are the
// tick phases alone: the zero-allocation invariant the perfreg gate holds
// the simulator to.
func BenchmarkTickOnce(b *testing.B) {
	n := MustNew(Config{Topology: topology.MustFatTree(4, 2), Mode: Adaptive})
	reseed := func() {
		for src := 0; src < 16; src++ {
			for node := 0; node < 16; node++ {
				for {
					if _, ok := n.TryRecv(node); !ok {
						break
					}
				}
			}
			_ = n.Inject(network.Packet{Src: src, Dst: 15 - src, Data: []network.Word{1, 2, 3, 4}})
		}
	}
	reseed()
	// Warm the pools and flow tables before measuring.
	for i := 0; i < 2000; i++ {
		if n.quiet() {
			reseed()
		}
		n.tickOnce()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if n.quiet() {
			b.StopTimer()
			reseed()
			b.StartTimer()
		}
		n.tickOnce()
	}
}

// BenchmarkTickLoaded measures simulator cycles per second under steady
// uniform traffic on a 16-node fat tree, including injection and receive
// drain — the full harness loop.
func BenchmarkTickLoaded(b *testing.B) {
	n := MustNew(Config{Topology: topology.MustFatTree(4, 2), Mode: Adaptive})
	rng := uint64(1)
	next := func() uint64 {
		rng = rng*6364136223846793005 + 1442695040888963407
		return rng >> 33
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		src := int(next()) % 16
		dst := int(next()) % 16
		if src != dst {
			_ = n.Inject(network.Packet{Src: src, Dst: dst, Data: []network.Word{1}})
		}
		n.Tick(1)
		for node := 0; node < 16; node++ {
			for {
				if _, ok := n.TryRecv(node); !ok {
					break
				}
			}
		}
	}
}

// idleNet builds a large mesh with every flow parked in CR retry backoff —
// nothing can move for thousands of cycles. This is the workload the idle
// fast-forward targets: the dense engine pays a full topology scan per
// cycle, the event engine jumps straight to the earliest wake.
func idleNet(b *testing.B, dense bool) *Net {
	b.Helper()
	n := MustNew(Config{
		Topology:       topology.MustMesh(16, 16),
		Mode:           CR,
		RetryBackoff:   1 << 20,
		KillTimeout:    4,
		PacketWords:    16,
		DenseReference: dense,
	})
	// Two long worms racing east along row 0: the second blocks behind the
	// first past the kill timeout and parks in a retry backoff a million
	// cycles out, leaving the mesh idle but not drained.
	long := make([]network.Word, 16)
	if err := n.Inject(network.Packet{Src: 0, Dst: 15, Data: long}); err != nil {
		b.Fatal(err)
	}
	if err := n.Inject(network.Packet{Src: 1, Dst: 15, Data: long}); err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 256; i++ {
		n.tickOnce()
	}
	if n.quiet() || n.FlitStats().Kills == 0 {
		b.Fatal("idle workload did not park a worm in backoff")
	}
	return n
}

// BenchmarkTickIdle measures advancing a large idle mesh (256 routers, all
// pending worms in retry backoff) by 1024 cycles with the event-driven
// engine. The perfreg gate requires this to beat BenchmarkTickIdleDense by
// at least 10×.
func BenchmarkTickIdle(b *testing.B) {
	n := idleNet(b, false)
	start := n.Cycle()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n.Tick(1024)
	}
	b.StopTimer()
	if n.Cycle() != start+uint64(b.N)*1024 {
		b.Fatalf("cycle accounting: got %d, want %d", n.Cycle(), start+uint64(b.N)*1024)
	}
}

// BenchmarkTickIdleDense is the same idle workload on the retained dense
// reference stepper — the PR 3 baseline the fast-forward is gated against.
func BenchmarkTickIdleDense(b *testing.B) {
	n := idleNet(b, true)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n.Tick(1024)
	}
}

// BenchmarkTickSparse measures one cycle of a large mesh at ~1% lane
// occupancy: a handful of long worms crossing a 256-router mesh that is
// otherwise empty. The dense engine scans all 1280 port groups; the event
// engine touches only the occupied lanes.
func BenchmarkTickSparse(b *testing.B) {
	n := MustNew(Config{Topology: topology.MustMesh(16, 16), Mode: Deterministic, PacketWords: 32})
	payload := make([]network.Word, 30)
	reseed := func() {
		for node := 0; node < 256; node++ {
			for {
				if _, ok := n.TryRecv(node); !ok {
					break
				}
			}
		}
		for _, src := range []int{0, 17, 34, 51} {
			if err := n.Inject(network.Packet{Src: src, Dst: 255 - src, Data: payload}); err != nil {
				b.Fatal(err)
			}
		}
	}
	reseed()
	for i := 0; i < 2000; i++ {
		if n.quiet() {
			reseed()
		}
		n.tickOnce()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if n.quiet() {
			b.StopTimer()
			reseed()
			b.StartTimer()
		}
		n.tickOnce()
	}
}

// benchTickLarge measures one simulator cycle of a 1024-router mesh under
// heavy bisection traffic (every node sending to its mirror) at the given
// shard count. Shards=1 is the serial engine; the sharded variants must
// produce byte-identical results, so the only thing the shard count can
// change is the wall clock. The topology is sized so per-cycle route work
// dominates the barrier cost — the regime the sharded engine targets.
// Re-seeding when the network drains happens outside the timer.
func benchTickLarge(b *testing.B, shards int) {
	n := MustNew(Config{
		Topology:    topology.MustMesh(32, 32),
		Mode:        Deterministic,
		PacketWords: 8,
		Shards:      shards,
	})
	defer n.Close()
	payload := make([]network.Word, 6)
	reseed := func() {
		for node := 0; node < 1024; node++ {
			for {
				if _, ok := n.TryRecv(node); !ok {
					break
				}
			}
		}
		for src := 0; src < 1024; src++ {
			if err := n.Inject(network.Packet{Src: src, Dst: 1023 - src, Data: payload}); err != nil {
				b.Fatal(err)
			}
			if err := n.Inject(network.Packet{Src: src, Dst: (src + 512) % 1024, Data: payload}); err != nil {
				b.Fatal(err)
			}
		}
	}
	reseed()
	for i := 0; i < 2000; i++ {
		if n.quiet() {
			reseed()
		}
		n.tickOnce()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if n.quiet() {
			b.StopTimer()
			reseed()
			b.StartTimer()
		}
		n.tickOnce()
	}
}

// BenchmarkTickLarge is the serial baseline of the sharded scaling curve.
func BenchmarkTickLarge(b *testing.B) { benchTickLarge(b, 1) }

// BenchmarkTickSharded2/4/8 are the same workload on 2, 4, and 8 shards.
// The perfreg gate compares flitnet-tick-large against the 4-shard twin
// within one snapshot and requires a 2x speedup on machines with at least
// four processors.
func BenchmarkTickSharded2(b *testing.B) { benchTickLarge(b, 2) }
func BenchmarkTickSharded4(b *testing.B) { benchTickLarge(b, 4) }
func BenchmarkTickSharded8(b *testing.B) { benchTickLarge(b, 8) }

// BenchmarkWormEndToEnd measures one packet's full flit-level journey.
func BenchmarkWormEndToEnd(b *testing.B) {
	n := MustNew(Config{Topology: topology.MustMesh(4, 4), Mode: Deterministic})
	payload := []network.Word{1, 2, 3, 4}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := n.Inject(network.Packet{Src: 0, Dst: 15, Data: payload}); err != nil {
			b.Fatal(err)
		}
		if !n.TickUntilQuiet(100) {
			b.Fatal("did not drain")
		}
		if _, ok := n.TryRecv(15); !ok {
			b.Fatal("lost packet")
		}
	}
}
