package flitnet

import "slices"

// worklist is the event-driven engine's sorted active set: int32 ids (lanes
// or flows) kept in ascending order, which by construction is exactly the
// order the dense per-cycle scan visited them. Additions made while a cycle
// runs go to a side buffer and merge in at the next phase boundary, so the
// iteration order of the current cycle is never perturbed mid-flight. A
// mark bit per id keeps membership O(1) and duplicate-free. All backing
// arrays are reused cycle over cycle; steady-state operation allocates
// nothing.
type worklist struct {
	sorted  []int32 // the active set, ascending; compacted in place by the phase that consumes it
	added   []int32 // ids activated since the last merge, unsorted
	scratch []int32 // merge target, swapped with sorted to recycle both arrays
	mark    []bool  // mark[id]: id is present in sorted or added
}

// grow ensures the mark table covers ids 0..n-1.
func (w *worklist) grow(n int) {
	for len(w.mark) < n {
		w.mark = append(w.mark, false)
	}
}

// add activates an id; a no-op if it is already active.
func (w *worklist) add(id int32) {
	if int(id) >= len(w.mark) {
		w.grow(int(id) + 1)
	}
	if w.mark[id] {
		return
	}
	w.mark[id] = true
	w.added = append(w.added, id)
}

// merge folds the side buffer into the sorted set. The side buffer is
// typically tiny (lanes touched since last cycle), so it is sorted on its
// own and merged linearly rather than re-sorting the whole set.
func (w *worklist) merge() {
	if len(w.added) == 0 {
		return
	}
	slices.Sort(w.added)
	w.scratch = w.scratch[:0]
	i, j := 0, 0
	for i < len(w.sorted) && j < len(w.added) {
		if w.sorted[i] < w.added[j] {
			w.scratch = append(w.scratch, w.sorted[i])
			i++
		} else {
			w.scratch = append(w.scratch, w.added[j])
			j++
		}
	}
	w.scratch = append(w.scratch, w.sorted[i:]...)
	w.scratch = append(w.scratch, w.added[j:]...)
	w.sorted, w.scratch = w.scratch, w.sorted
	w.added = w.added[:0]
}

// wakeEntry schedules one sleeping flow's earliest possible wake cycle.
type wakeEntry struct {
	at   uint64
	flow int32
}

// wakeHeap is a binary min-heap of sleeping flows keyed by wake cycle. It
// lets the inject phase (and the idle fast-forward) find the next cycle
// anything can happen in O(1), instead of rescanning every flow's backoff
// timer each cycle. Entries are hints: a flow may carry a stale early entry
// after its front worm changed, which costs one no-op visit and nothing
// else, so pushes never need to search for duplicates.
type wakeHeap struct {
	h []wakeEntry
}

func (w *wakeHeap) len() int      { return len(w.h) }
func (w *wakeHeap) minAt() uint64 { return w.h[0].at }
func (w *wakeHeap) reset()        { w.h = w.h[:0] }

func (w *wakeHeap) push(at uint64, flow int32) {
	w.h = append(w.h, wakeEntry{at, flow})
	i := len(w.h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if w.h[parent].at <= w.h[i].at {
			break
		}
		w.h[parent], w.h[i] = w.h[i], w.h[parent]
		i = parent
	}
}

// pop removes and returns the flow with the earliest wake cycle.
func (w *wakeHeap) pop() int32 {
	flow := w.h[0].flow
	last := len(w.h) - 1
	w.h[0] = w.h[last]
	w.h = w.h[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < len(w.h) && w.h[l].at < w.h[smallest].at {
			smallest = l
		}
		if r < len(w.h) && w.h[r].at < w.h[smallest].at {
			smallest = r
		}
		if smallest == i {
			return flow
		}
		w.h[i], w.h[smallest] = w.h[smallest], w.h[i]
		i = smallest
	}
}
