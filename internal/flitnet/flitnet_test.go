package flitnet

import (
	"errors"
	"testing"
	"testing/quick"

	"msglayer/internal/network"
	"msglayer/internal/topology"
)

func meshNet(t *testing.T, w, h int, mode Mode) *Net {
	t.Helper()
	return MustNew(Config{Topology: topology.MustMesh(w, h), Mode: mode})
}

func treeNet(t *testing.T, k, lv int, mode Mode) *Net {
	t.Helper()
	return MustNew(Config{Topology: topology.MustFatTree(k, lv), Mode: mode})
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("accepted nil topology")
	}
	if _, err := New(Config{Topology: topology.MustMesh(2, 2), PacketWords: -1}); err == nil {
		t.Error("accepted negative packet size")
	}
	if _, err := New(Config{Topology: topology.MustMesh(2, 2), BufferFlits: 1}); err == nil {
		t.Error("accepted one-flit buffers")
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MustNew(Config{})
}

func TestInjectValidation(t *testing.T) {
	n := meshNet(t, 2, 2, Deterministic)
	if err := n.Inject(network.Packet{Src: -1, Dst: 0}); !errors.Is(err, network.ErrBadPacket) {
		t.Errorf("bad src = %v", err)
	}
	if err := n.Inject(network.Packet{Src: 0, Dst: 9}); !errors.Is(err, network.ErrBadPacket) {
		t.Errorf("bad dst = %v", err)
	}
	if err := n.Inject(network.Packet{Src: 0, Dst: 1, Data: make([]network.Word, 9)}); !errors.Is(err, network.ErrBadPacket) {
		t.Errorf("oversize = %v", err)
	}
}

func TestBasicDeliveryOnMesh(t *testing.T) {
	n := meshNet(t, 3, 3, Deterministic)
	payload := []network.Word{10, 20, 30, 40}
	if err := n.Inject(network.Packet{Src: 0, Dst: 8, Tag: 5, Head: 77, Data: payload}); err != nil {
		t.Fatal(err)
	}
	if !n.TickUntilQuiet(1000) {
		t.Fatal("network did not drain")
	}
	p, ok := n.TryRecv(8)
	if !ok {
		t.Fatal("packet not delivered")
	}
	if p.Src != 0 || p.Tag != 5 || p.Head != 77 || len(p.Data) != 4 || p.Data[3] != 40 {
		t.Errorf("delivered %+v", p)
	}
	if _, ok := n.TryRecv(8); ok {
		t.Error("phantom second delivery")
	}
	if n.Stats().Delivered != 1 || n.Stats().Injected != 1 {
		t.Errorf("stats = %+v", n.Stats())
	}
}

func TestAllPairsDeliver(t *testing.T) {
	for _, tc := range []struct {
		name string
		n    *Net
	}{
		{"mesh-det", meshNet(t, 3, 2, Deterministic)},
		{"tree-det", treeNet(t, 2, 2, Deterministic)},
		{"tree-adaptive", treeNet(t, 2, 2, Adaptive)},
		{"mesh-cr", meshNet(t, 3, 2, CR)},
	} {
		nodes := tc.n.Nodes()
		want := 0
		for src := 0; src < nodes; src++ {
			for dst := 0; dst < nodes; dst++ {
				if src == dst {
					continue
				}
				err := tc.n.Inject(network.Packet{
					Src: src, Dst: dst,
					Head: network.Word(src*100 + dst),
					Data: []network.Word{1},
				})
				if err != nil {
					t.Fatalf("%s: inject %d->%d: %v", tc.name, src, dst, err)
				}
				want++
			}
		}
		if !tc.n.TickUntilQuiet(100000) {
			t.Fatalf("%s: network did not drain (pending=%d)", tc.name, tc.n.Pending())
		}
		got := 0
		for node := 0; node < nodes; node++ {
			for {
				p, ok := tc.n.TryRecv(node)
				if !ok {
					break
				}
				if int(p.Head)%100 != node {
					t.Errorf("%s: node %d got packet labeled %d", tc.name, node, p.Head)
				}
				got++
			}
		}
		if got != want {
			t.Errorf("%s: delivered %d of %d packets", tc.name, got, want)
		}
	}
}

// collectFlowOrder injects per-flow-sequenced packets and returns, per
// flow, the order of delivered sequence numbers.
func collectFlowOrder(t *testing.T, n *Net, flows [][2]int, perFlow int) map[[2]int][]int {
	t.Helper()
	sent := map[[2]int]int{}
	// Interleave injections across flows to keep the network busy.
	for seq := 0; seq < perFlow; seq++ {
		for _, fl := range flows {
			p := network.Packet{
				Src: fl[0], Dst: fl[1],
				Head: network.Word(seq),
				Data: []network.Word{network.Word(seq)},
			}
			for {
				err := n.Inject(p)
				if err == nil {
					break
				}
				if errors.Is(err, network.ErrBackpressure) {
					n.Tick(1)
					continue
				}
				t.Fatal(err)
			}
			sent[fl]++
		}
		n.Tick(1)
	}
	if !n.TickUntilQuiet(500000) {
		t.Fatalf("network did not drain (pending=%d)", n.Pending())
	}
	got := map[[2]int][]int{}
	for node := 0; node < n.Nodes(); node++ {
		for {
			p, ok := n.TryRecv(node)
			if !ok {
				break
			}
			key := [2]int{p.Src, node}
			got[key] = append(got[key], int(p.Head))
		}
	}
	for fl, count := range sent {
		if len(got[fl]) != count {
			t.Fatalf("flow %v delivered %d of %d", fl, len(got[fl]), count)
		}
	}
	return got
}

func inversions(seqs []int) int {
	inv := 0
	maxSeen := -1
	for _, s := range seqs {
		if s < maxSeen {
			inv++
		}
		if s > maxSeen {
			maxSeen = s
		}
	}
	return inv
}

// hotspotFlows is a contention-heavy workload: three leaves all sending to
// node 15, so worms of one flow queue behind cross traffic at the preferred
// top router and adaptive routing diverts successors onto other tops.
var hotspotFlows = [][2]int{{3, 15}, {7, 15}, {11, 15}}

func hotspotNet(t *testing.T, mode Mode) *Net {
	t.Helper()
	return MustNew(Config{
		Topology:    topology.MustFatTree(4, 2),
		Mode:        mode,
		BufferFlits: 3,
	})
}

// Deterministic routing is single-path and therefore order-preserving on
// every flow, even under hotspot contention.
func TestDeterministicPreservesOrder(t *testing.T) {
	got := collectFlowOrder(t, hotspotNet(t, Deterministic), hotspotFlows, 40)
	for fl, seqs := range got {
		if inv := inversions(seqs); inv != 0 {
			t.Errorf("flow %v reordered %d times under deterministic routing", fl, inv)
		}
	}
}

// Adaptive routing on the fat tree's redundant up links reorders packets
// within flows under contention — the mechanism behind the paper's
// "arbitrary delivery order" network feature.
func TestAdaptiveRoutingReorders(t *testing.T) {
	got := collectFlowOrder(t, hotspotNet(t, Adaptive), hotspotFlows, 40)
	total := 0
	for _, seqs := range got {
		total += inversions(seqs)
	}
	if total == 0 {
		t.Error("adaptive routing never reordered; the multipath mechanism is not being exercised")
	}
}

// The same workload under CR mode arrives in order on every flow: CR
// serializes each flow's worms and routes deterministically.
func TestCRPreservesOrderUnderLoad(t *testing.T) {
	got := collectFlowOrder(t, hotspotNet(t, CR), hotspotFlows, 15)
	for fl, seqs := range got {
		if inv := inversions(seqs); inv != 0 {
			t.Errorf("flow %v reordered %d times under CR", fl, inv)
		}
	}
}

// CR header rejection: a destination without resources rejects the header;
// the worm is killed, retried, and delivered once resources appear — and
// order within the flow survives the retries.
func TestCRHeaderRejectionAndRetry(t *testing.T) {
	n := meshNet(t, 3, 1, CR)
	budget := 0
	if err := n.SetAcceptor(2, func(p network.Packet) bool {
		if budget <= 0 {
			return false
		}
		budget--
		return true
	}); err != nil {
		t.Fatal(err)
	}
	for seq := 0; seq < 3; seq++ {
		if err := n.Inject(network.Packet{Src: 0, Dst: 2, Head: network.Word(seq)}); err != nil {
			t.Fatal(err)
		}
	}
	// Run a while with acceptance denied: kills accumulate, nothing lands.
	n.Tick(200)
	if _, ok := n.TryRecv(2); ok {
		t.Fatal("rejected worm was delivered")
	}
	if n.FlitStats().Kills == 0 || n.Stats().Rejected == 0 {
		t.Fatalf("expected kills and rejections: %+v", n.FlitStats())
	}
	// Open the gate; all three arrive, in order.
	budget = 1 << 30
	if !n.TickUntilQuiet(100000) {
		t.Fatal("did not drain after acceptance opened")
	}
	for seq := 0; seq < 3; seq++ {
		p, ok := n.TryRecv(2)
		if !ok || p.Head != network.Word(seq) {
			t.Fatalf("delivery %d = %+v ok=%v", seq, p, ok)
		}
	}
	if n.FlitStats().Retries == 0 {
		t.Error("no retries recorded")
	}
}

// Retry exhaustion fails the injection rather than spinning forever.
func TestCRRetryExhaustion(t *testing.T) {
	n := MustNew(Config{
		Topology:     topology.MustMesh(2, 1),
		Mode:         CR,
		MaxRetries:   3,
		RetryBackoff: 2,
	})
	if err := n.SetAcceptor(1, func(network.Packet) bool { return false }); err != nil {
		t.Fatal(err)
	}
	if err := n.Inject(network.Packet{Src: 0, Dst: 1}); err != nil {
		t.Fatal(err)
	}
	if !n.TickUntilQuiet(10000) {
		t.Fatal("did not drain")
	}
	st := n.FlitStats()
	if st.FailedWorms != 1 {
		t.Errorf("failed worms = %d, want 1", st.FailedWorms)
	}
	if st.Kills != 4 { // initial attempt + 3 retries
		t.Errorf("kills = %d, want 4", st.Kills)
	}
}

// CR pads short worms to the path length so the tail's acceptance is an
// end-to-end acknowledgement; the payload is unaffected.
func TestCRPadding(t *testing.T) {
	n := meshNet(t, 5, 1, CR)
	if err := n.Inject(network.Packet{Src: 0, Dst: 4, Data: []network.Word{42}}); err != nil {
		t.Fatal(err)
	}
	if n.FlitStats().PadFlits == 0 {
		t.Error("no padding for a 3-flit worm over a 5-router path")
	}
	if !n.TickUntilQuiet(1000) {
		t.Fatal("did not drain")
	}
	p, ok := n.TryRecv(4)
	if !ok || len(p.Data) != 1 || p.Data[0] != 42 {
		t.Errorf("delivered %+v ok=%v", p, ok)
	}
}

// The CR kill timeout recovers a worm blocked by contention: it is killed,
// retried, and eventually delivered.
func TestCRKillTimeoutOnContention(t *testing.T) {
	n := MustNew(Config{
		Topology:    topology.MustMesh(3, 1),
		Mode:        CR,
		BufferFlits: 2,
		KillTimeout: 4,
	})
	// A long worm 0->2 occupies router 1's east output for many cycles;
	// a worm 1->2 must cross the same output and blocks past the timeout.
	long := make([]network.Word, 4)
	if err := n.Inject(network.Packet{Src: 0, Dst: 2, Head: 1, Data: long}); err != nil {
		t.Fatal(err)
	}
	n.Tick(3) // let the long worm claim the path
	if err := n.Inject(network.Packet{Src: 1, Dst: 2, Head: 2}); err != nil {
		t.Fatal(err)
	}
	if !n.TickUntilQuiet(10000) {
		t.Fatal("did not drain")
	}
	heads := map[network.Word]bool{}
	for {
		p, ok := n.TryRecv(2)
		if !ok {
			break
		}
		heads[p.Head] = true
	}
	if !heads[1] || !heads[2] {
		t.Fatalf("deliveries = %v, want both worms", heads)
	}
}

func TestInjectQueueBackpressure(t *testing.T) {
	n := MustNew(Config{Topology: topology.MustMesh(2, 1), InjectQueue: 2})
	for i := 0; i < 2; i++ {
		if err := n.Inject(network.Packet{Src: 0, Dst: 1}); err != nil {
			t.Fatal(err)
		}
	}
	if err := n.Inject(network.Packet{Src: 0, Dst: 1}); !errors.Is(err, network.ErrBackpressure) {
		t.Fatalf("third inject = %v, want backpressure", err)
	}
	// Draining frees the queue.
	if !n.TickUntilQuiet(1000) {
		t.Fatal("did not drain")
	}
	if err := n.Inject(network.Packet{Src: 0, Dst: 1}); err != nil {
		t.Errorf("inject after drain = %v", err)
	}
}

func TestTryRecvBadNode(t *testing.T) {
	n := meshNet(t, 2, 1, Deterministic)
	if _, ok := n.TryRecv(-1); ok {
		t.Error("TryRecv(-1) returned a packet")
	}
	if _, ok := n.TryRecv(5); ok {
		t.Error("TryRecv(5) returned a packet")
	}
}

func TestSetAcceptorBadNode(t *testing.T) {
	n := meshNet(t, 2, 1, CR)
	if err := n.SetAcceptor(7, nil); err == nil {
		t.Error("SetAcceptor(7) accepted")
	}
}

func TestPayloadIsolation(t *testing.T) {
	n := meshNet(t, 2, 1, Deterministic)
	buf := []network.Word{1, 2}
	if err := n.Inject(network.Packet{Src: 0, Dst: 1, Data: buf}); err != nil {
		t.Fatal(err)
	}
	buf[0] = 99
	n.TickUntilQuiet(1000)
	p, _ := n.TryRecv(1)
	if p.Data[0] != 1 {
		t.Error("payload aliased the caller's buffer")
	}
}

func TestModeAndNameStrings(t *testing.T) {
	if Deterministic.String() != "deterministic" || Adaptive.String() != "adaptive" || CR.String() != "cr" {
		t.Error("mode strings wrong")
	}
	if Mode(9).String() != "Mode(9)" {
		t.Error("unknown mode string")
	}
	n := meshNet(t, 2, 2, CR)
	if n.Name() != "flitnet(mesh(2x2),cr)" {
		t.Errorf("Name = %q", n.Name())
	}
}

// Two identical runs produce identical statistics — cycle-stepped
// determinism.
func TestDeterminism(t *testing.T) {
	run := func() Stats {
		n := MustNew(Config{
			Topology:    topology.MustFatTree(2, 3),
			Mode:        Adaptive,
			BufferFlits: 2,
		})
		for seq := 0; seq < 10; seq++ {
			for src := 0; src < 8; src++ {
				p := network.Packet{Src: src, Dst: 7 - src, Data: []network.Word{network.Word(seq)}}
				for n.Inject(p) != nil {
					n.Tick(1)
				}
			}
			n.Tick(2)
		}
		n.TickUntilQuiet(100000)
		return n.FlitStats()
	}
	a, b := run(), run()
	if a != b {
		t.Errorf("nondeterministic runs:\n%+v\n%+v", a, b)
	}
}

// Property: on random meshes under CR, random traffic always drains with
// every flow in order — the substrate contract the Section 4 messaging
// layer depends on.
func TestCRContractProperty(t *testing.T) {
	prop := func(wRaw, hRaw uint8, plan []uint8) bool {
		w := int(wRaw%3) + 2
		h := int(hRaw%2) + 1
		n := MustNew(Config{Topology: topology.MustMesh(w, h), Mode: CR})
		if len(plan) > 30 {
			plan = plan[:30]
		}
		seqs := map[flowKey]int{}
		for _, b := range plan {
			src := int(b) % n.Nodes()
			dst := int(b>>3) % n.Nodes()
			if src == dst {
				continue
			}
			key := flowKey{src, dst}
			p := network.Packet{Src: src, Dst: dst, Head: network.Word(seqs[key])}
			for {
				err := n.Inject(p)
				if err == nil {
					break
				}
				if !errors.Is(err, network.ErrBackpressure) {
					return false
				}
				n.Tick(1)
			}
			seqs[key]++
		}
		if !n.TickUntilQuiet(200000) {
			return false
		}
		expect := map[flowKey]network.Word{}
		for node := 0; node < n.Nodes(); node++ {
			for {
				p, ok := n.TryRecv(node)
				if !ok {
					break
				}
				key := flowKey{p.Src, node}
				if p.Head != expect[key] {
					return false
				}
				expect[key]++
			}
		}
		for key, sent := range seqs {
			if int(expect[key]) != sent {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestVirtualChannelConfig(t *testing.T) {
	if _, err := New(Config{Topology: topology.MustMesh(2, 1), VirtualChannels: 9}); err == nil {
		t.Error("accepted 9 virtual channels")
	}
	if _, err := New(Config{Topology: topology.MustMesh(2, 1), VirtualChannels: -1}); err == nil {
		t.Error("accepted negative virtual channels")
	}
	// CR mode forces a single channel.
	n := MustNew(Config{Topology: topology.MustMesh(2, 1), Mode: CR, VirtualChannels: 4})
	if err := n.Inject(network.Packet{Src: 0, Dst: 1}); err != nil {
		t.Fatal(err)
	}
	if !n.TickUntilQuiet(1000) {
		t.Fatal("CR with requested VCs did not drain")
	}
}

// Virtual channels let two worms share a physical link: with one channel
// the second worm waits for the first's tail; with two it interleaves and
// finishes much sooner.
func TestVirtualChannelsInterleave(t *testing.T) {
	finish := func(vcs int) (short uint64) {
		n := MustNew(Config{
			Topology:        topology.MustMesh(3, 1),
			Mode:            Deterministic,
			BufferFlits:     2,
			VirtualChannels: vcs,
			PacketWords:     64,
		})
		// A long worm 0 -> 2 and a short worm 1 -> 2 share the final
		// link and the ejection port.
		long := network.Packet{Src: 0, Dst: 2, Head: 1, Data: make([]network.Word, 64)}
		shortP := network.Packet{Src: 1, Dst: 2, Head: 2, Data: make([]network.Word, 1)}
		if err := n.Inject(long); err != nil {
			t.Fatal(err)
		}
		n.Tick(3) // the long worm claims the shared path first
		if err := n.Inject(shortP); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 10000; i++ {
			n.Tick(1)
			for {
				p, ok := n.TryRecv(2)
				if !ok {
					break
				}
				if p.Head == 2 && short == 0 {
					short = n.Cycle()
				}
			}
			if n.quiet() {
				break
			}
		}
		if short == 0 {
			t.Fatalf("vcs=%d: short worm never delivered", vcs)
		}
		return short
	}
	one := finish(1)
	two := finish(2)
	if !(two < one) {
		t.Errorf("short worm finished at cycle %d with 2 VCs vs %d with 1; expected interleaving to help", two, one)
	}
}

// Virtual channels change arrival order at a shared destination — one of
// the paper's listed sources of arbitrary delivery order. A long worm from
// node 0 and a later short worm from node 1 converge on node 2: with one
// channel the wormhole serializes whole packets at the shared ejection
// port (long wins); with two channels the short worm ejects on its own
// lane and arrives first.
func TestVirtualChannelsCanReorderArrivals(t *testing.T) {
	firstArrival := func(vcs int) network.Word {
		n := MustNew(Config{
			Topology:        topology.MustMesh(3, 1),
			Mode:            Deterministic,
			BufferFlits:     2,
			VirtualChannels: vcs,
			PacketWords:     64,
		})
		if err := n.Inject(network.Packet{Src: 0, Dst: 2, Head: 1, Data: make([]network.Word, 64)}); err != nil {
			t.Fatal(err)
		}
		n.Tick(3) // the long worm claims the path and starts ejecting
		if err := n.Inject(network.Packet{Src: 1, Dst: 2, Head: 2, Data: make([]network.Word, 1)}); err != nil {
			t.Fatal(err)
		}
		if !n.TickUntilQuiet(100000) {
			t.Fatal("did not drain")
		}
		first, ok := n.TryRecv(2)
		if !ok {
			t.Fatal("nothing delivered")
		}
		return first.Head
	}
	if got := firstArrival(1); got != 1 {
		t.Errorf("single channel: first arrival = worm %d, want the long worm (1)", got)
	}
	if got := firstArrival(2); got != 2 {
		t.Errorf("two channels: first arrival = worm %d, want the short worm (2)", got)
	}
}

// Heavy seeded random traffic on an adaptive mesh with an escape channel
// drains without deadlock — the Duato discipline at work. (Adaptive mesh
// routing with a single channel has cyclic channel dependencies and is not
// exercised.)
func TestAdaptiveMeshWithEscapeChannelDrains(t *testing.T) {
	n := MustNew(Config{
		Topology:        topology.MustMesh(4, 4),
		Mode:            Adaptive,
		BufferFlits:     2,
		VirtualChannels: 3,
	})
	seed := uint64(12345)
	next := func(mod int) int {
		seed = seed*6364136223846793005 + 1442695040888963407
		return int(seed>>33) % mod
	}
	sent := 0
	for i := 0; i < 300; i++ {
		src := next(16)
		dst := next(16)
		if src == dst {
			continue
		}
		p := network.Packet{Src: src, Dst: dst, Data: []network.Word{network.Word(i)}}
		for {
			err := n.Inject(p)
			if err == nil {
				sent++
				break
			}
			if !errors.Is(err, network.ErrBackpressure) {
				t.Fatal(err)
			}
			n.Tick(1)
		}
		if i%3 == 0 {
			n.Tick(1)
		}
	}
	if !n.TickUntilQuiet(1000000) {
		t.Fatalf("adaptive mesh with escape channel did not drain (pending=%d)", n.Pending())
	}
	got := 0
	for node := 0; node < 16; node++ {
		for {
			if _, ok := n.TryRecv(node); !ok {
				break
			}
			got++
		}
	}
	if got != sent {
		t.Errorf("delivered %d of %d", got, sent)
	}
}

func TestLatencyTracking(t *testing.T) {
	n := meshNet(t, 4, 1, Deterministic)
	if err := n.Inject(network.Packet{Src: 0, Dst: 3, Data: []network.Word{1}}); err != nil {
		t.Fatal(err)
	}
	if !n.TickUntilQuiet(1000) {
		t.Fatal("did not drain")
	}
	st := n.FlitStats()
	if st.LatencyCount != 1 || st.LatencySum == 0 {
		t.Fatalf("latency stats = %+v", st)
	}
	if st.LatencyMax != st.LatencySum {
		t.Errorf("single packet: max %d != sum %d", st.LatencyMax, st.LatencySum)
	}
	if st.MeanLatency() != float64(st.LatencySum) {
		t.Errorf("MeanLatency = %f", st.MeanLatency())
	}
	// A longer path has higher latency.
	n2 := meshNet(t, 8, 1, Deterministic)
	if err := n2.Inject(network.Packet{Src: 0, Dst: 7, Data: []network.Word{1}}); err != nil {
		t.Fatal(err)
	}
	n2.TickUntilQuiet(1000)
	if n2.FlitStats().LatencySum <= st.LatencySum {
		t.Errorf("7-hop latency %d not above 3-hop latency %d",
			n2.FlitStats().LatencySum, st.LatencySum)
	}
	// Empty stats report zero mean.
	if (Stats{}).MeanLatency() != 0 {
		t.Error("empty MeanLatency not zero")
	}
}
