package flitnet

import (
	"bytes"
	"fmt"
	"testing"

	"msglayer/internal/network"
	"msglayer/internal/obs"
	"msglayer/internal/obs/timeline"
	"msglayer/internal/topology"
)

// runTimelineWorkload drives one net through the seeded diff workload with
// a full observer attached — flit scope, occupancy gauges, link counters,
// and a timeline sampler on the cycle listener — and returns the rendered
// timeline plus the sampler for reconciliation.
func runTimelineWorkload(t *testing.T, cfg Config, seed uint64) (string, *timeline.Sampler) {
	t.Helper()
	n := MustNew(cfg)
	hub := obs.NewHub()
	n.SetFlitObserver(hub.FlitScope())
	s := timeline.New(hub.Metrics, timeline.Config{Interval: 32})
	n.SetCycleListener(s.Advance)

	nodes := n.Nodes()
	rng := diffRNG(seed)
	injected := 0
	for injected < 120 {
		for b := 0; b < 5 && injected < 120; b++ {
			src := rng.intn(nodes)
			dst := rng.intn(nodes)
			if src == dst {
				dst = (dst + 1) % nodes
			}
			words := rng.intn(n.PacketWords() + 1)
			data := make([]network.Word, words)
			for i := range data {
				data[i] = network.Word(rng.next())
			}
			_ = n.Inject(network.Packet{Src: src, Dst: dst, Data: data})
			injected++
		}
		switch rng.intn(3) {
		case 0:
			n.Tick(1 + rng.intn(7))
		case 1:
			n.Tick(64)
		default:
			n.TickUntilQuiet(4096)
		}
		for node := 0; node < nodes; node++ {
			for {
				if _, ok := n.TryRecv(node); !ok {
					break
				}
			}
		}
	}
	if !n.TickUntilQuiet(1_000_000) {
		t.Fatalf("workload did not drain: pending=%d", n.Pending())
	}
	s.Flush(n.Cycle())
	var b bytes.Buffer
	if err := timeline.WriteJSON(&b, s.Snapshot()); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	return b.String(), s
}

// TestTimelineDenseEventEquivalence extends the engine equivalence
// contract to the timeline: the dense reference and the event-driven
// engine (whose idle fast-forward back-fills skipped windows analytically)
// must render byte-identical timelines, and both must reconcile against
// their registries.
func TestTimelineDenseEventEquivalence(t *testing.T) {
	grid := []struct {
		name string
		cfg  Config
	}{
		{"det-vc2", Config{Topology: topology.MustMesh(4, 4), Mode: Deterministic, VirtualChannels: 2}},
		{"adaptive-vc3", Config{Topology: topology.MustMesh(4, 4), Mode: Adaptive, VirtualChannels: 3}},
		{"cr-tight", Config{Topology: topology.MustMesh(4, 4), Mode: CR, KillTimeout: 8, RetryBackoff: 64, BufferFlits: 2}},
		{"fattree-cr", Config{Topology: topology.MustFatTree(4, 2), Mode: CR}},
	}
	for _, g := range grid {
		for seed := uint64(1); seed <= 2; seed++ {
			t.Run(fmt.Sprintf("%s/seed%d", g.name, seed), func(t *testing.T) {
				dense := g.cfg
				dense.DenseReference = true
				denseOut, denseS := runTimelineWorkload(t, dense, seed)
				eventOut, eventS := runTimelineWorkload(t, g.cfg, seed)
				if denseOut != eventOut {
					t.Errorf("timelines diverge between engines:\n dense %d bytes\n event %d bytes", len(denseOut), len(eventOut))
				}
				if err := denseS.Reconcile(); err != nil {
					t.Errorf("dense timeline does not reconcile: %v", err)
				}
				if err := eventS.Reconcile(); err != nil {
					t.Errorf("event timeline does not reconcile: %v", err)
				}
			})
		}
	}
}

// TestBufferedGaugeMatchesScan holds the maintained buffered-flit counts
// (which feed the flitnet_buffered_flits gauges) to the ground truth a
// full lane scan computes, at every step of a busy CR workload — kills and
// sweeps included.
func TestBufferedGaugeMatchesScan(t *testing.T) {
	cfg := Config{Topology: topology.MustMesh(4, 4), Mode: CR, KillTimeout: 8, RetryBackoff: 32, BufferFlits: 2, PacketWords: 8}
	n := MustNew(cfg)
	hub := obs.NewHub()
	n.SetFlitObserver(hub.FlitScope())
	rng := diffRNG(11)
	long := make([]network.Word, 8)
	scanBuffered := func() int {
		total := 0
		for r := range n.routers {
			for p := range n.routers[r].inputs {
				for v := range n.routers[r].inputs[p] {
					total += n.routers[r].inputs[p][v].len()
				}
			}
		}
		return total
	}
	for step := 0; step < 6000; step++ {
		src := rng.intn(16)
		dst := rng.intn(16)
		if src != dst {
			_ = n.Inject(network.Packet{Src: src, Dst: dst, Data: long})
		}
		n.tickOnce()
		if want := scanBuffered(); n.buffered != want {
			t.Fatalf("step %d: buffered=%d, scan says %d", step, n.buffered, want)
		}
	}
	if n.FlitStats().Kills == 0 {
		t.Fatal("workload never exercised the kill sweep; gauge accounting untested there")
	}
}

// TestVCGaugeMatchesScan does the per-virtual-channel accounting check on
// an adaptive multi-VC workload.
func TestVCGaugeMatchesScan(t *testing.T) {
	cfg := Config{Topology: topology.MustMesh(4, 4), Mode: Adaptive, VirtualChannels: 3}
	n := MustNew(cfg)
	hub := obs.NewHub()
	n.SetFlitObserver(hub.FlitScope())
	rng := diffRNG(23)
	scanVC := func(vc int) int {
		total := 0
		for r := range n.routers {
			for p := range n.routers[r].inputs {
				total += n.routers[r].inputs[p][vc].len()
			}
		}
		return total
	}
	for step := 0; step < 2000; step++ {
		if rng.intn(3) == 0 {
			src := rng.intn(16)
			dst := rng.intn(16)
			if src != dst {
				_ = n.Inject(network.Packet{Src: src, Dst: dst, Data: []network.Word{network.Word(step)}})
			}
		}
		n.tickOnce()
		for vc := 0; vc < 3; vc++ {
			if want := scanVC(vc); n.bufferedVC[vc] != want {
				t.Fatalf("step %d vc %d: bufferedVC=%d, scan says %d", step, vc, n.bufferedVC[vc], want)
			}
		}
	}
}

// TestLinkCountersSumToFlitMoves checks that the per-link utilization
// counters partition Stats.FlitMoves exactly: every flit move crosses
// exactly one router output link.
func TestLinkCountersSumToFlitMoves(t *testing.T) {
	cfg := Config{Topology: topology.MustFatTree(4, 2), Mode: Adaptive, VirtualChannels: 2}
	n := MustNew(cfg)
	hub := obs.NewHub()
	n.SetFlitObserver(hub.FlitScope())
	rng := diffRNG(5)
	for i := 0; i < 200; i++ {
		src := rng.intn(n.Nodes())
		dst := rng.intn(n.Nodes())
		if src == dst {
			continue
		}
		_ = n.Inject(network.Packet{Src: src, Dst: dst, Data: []network.Word{network.Word(i)}})
		n.Tick(1 + rng.intn(3))
	}
	if !n.TickUntilQuiet(1_000_000) {
		t.Fatal("did not drain")
	}
	var sum uint64
	for _, k := range hub.Metrics.CounterKeys() {
		if k.Name == "flitnet_link_flits_total" {
			sum += hub.Metrics.CounterValue(k)
		}
	}
	if sum == 0 || sum != n.FlitStats().FlitMoves {
		t.Fatalf("link counters sum to %d, FlitMoves=%d", sum, n.FlitStats().FlitMoves)
	}
}
