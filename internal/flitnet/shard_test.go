package flitnet

import (
	"bytes"
	"fmt"
	"runtime"
	"testing"

	"msglayer/internal/network"
	"msglayer/internal/obs"
	"msglayer/internal/obs/timeline"
	"msglayer/internal/topology"
)

// The sharded engine's contract is the same one the event-driven engine
// holds against the dense reference: byte-identical results at any shard
// count. These tests drive the seeded diff workload across shard counts
// {1, 2, 3, GOMAXPROCS} (plus 4, so a single-core machine still exercises
// a multi-worker barrier) and both serial engines, comparing every
// observable artifact: Stats, per-node delivery order, cycle counts, idle
// fast-forward accounting, rendered metrics, traces, and timelines.

// shardCounts returns the shard counts under test, deduplicated.
func shardCounts() []int {
	counts := []int{2, 3, 4, runtime.GOMAXPROCS(0)}
	seen := map[int]bool{1: true}
	out := []int{}
	for _, c := range counts {
		if !seen[c] {
			seen[c] = true
			out = append(out, c)
		}
	}
	return out
}

// TestShardedSerialEquivalence is the differential property test for the
// sharded engine: the same seeded workload grid through the serial oracle
// and every shard count must produce byte-identical Stats, delivery order,
// and cycle counts.
func TestShardedSerialEquivalence(t *testing.T) {
	grid := []struct {
		name string
		cfg  Config
	}{
		{"mesh-det-vc1", Config{Topology: topology.MustMesh(4, 4), Mode: Deterministic}},
		{"mesh-det-vc2", Config{Topology: topology.MustMesh(4, 4), Mode: Deterministic, VirtualChannels: 2}},
		{"mesh-adaptive-vc1", Config{Topology: topology.MustMesh(4, 4), Mode: Adaptive}},
		{"mesh-adaptive-vc3", Config{Topology: topology.MustMesh(4, 4), Mode: Adaptive, VirtualChannels: 3}},
		{"mesh-tight-buffers", Config{Topology: topology.MustMesh(4, 4), Mode: Deterministic, BufferFlits: 2}},
		{"fattree-adaptive-vc2", Config{Topology: topology.MustFatTree(4, 2), Mode: Adaptive, VirtualChannels: 2}},
		{"fattree-det", Config{Topology: topology.MustFatTree(4, 2), Mode: Deterministic}},
	}
	for _, g := range grid {
		for seed := uint64(1); seed <= 3; seed++ {
			t.Run(fmt.Sprintf("%s/seed%d", g.name, seed), func(t *testing.T) {
				refTr, refStats, refCycle := runDiffWorkload(t, g.cfg, seed, 120, 5)
				dense := g.cfg
				dense.DenseReference = true
				variants := []struct {
					name string
					cfg  Config
				}{{"dense", dense}}
				for _, k := range shardCounts() {
					sharded := g.cfg
					sharded.Shards = k
					variants = append(variants, struct {
						name string
						cfg  Config
					}{fmt.Sprintf("shards%d", k), sharded})
				}
				for _, v := range variants {
					tr, stats, cycle := runDiffWorkload(t, v.cfg, seed, 120, 5)
					if stats != refStats {
						t.Errorf("%s: stats diverge:\n serial %+v\n %s %+v", v.name, refStats, v.name, stats)
					}
					if cycle != refCycle {
						t.Errorf("%s: cycle diverges: serial=%d got=%d", v.name, refCycle, cycle)
					}
					if len(tr) != len(refTr) {
						t.Fatalf("%s: transcript length diverges: serial=%d got=%d", v.name, len(refTr), len(tr))
					}
					for i := range refTr {
						if refTr[i] != tr[i] {
							t.Fatalf("%s: transcript diverges at %d:\n serial %s\n got    %s", v.name, i, refTr[i], tr[i])
						}
					}
				}
			})
		}
	}
}

// TestShardedHotspotEquivalence drives heavy cross-shard contention — every
// node hammering a small destination region, so worms block on lanes owned
// by other shards and the route rounds park and resume — and requires exact
// equivalence with the serial engine.
func TestShardedHotspotEquivalence(t *testing.T) {
	for _, mode := range []Mode{Deterministic, Adaptive} {
		for _, vcs := range []int{1, 2} {
			t.Run(fmt.Sprintf("%s-vc%d", mode, vcs), func(t *testing.T) {
				run := func(shards int) (Stats, uint64, []string) {
					n := MustNew(Config{
						Topology: topology.MustMesh(6, 6), Mode: mode,
						VirtualChannels: vcs, BufferFlits: 2, InjectQueue: 8, Shards: shards,
					})
					defer n.Close()
					var transcript []string
					rng := diffRNG(99)
					for round := 0; round < 40; round++ {
						for src := 0; src < n.Nodes(); src++ {
							dst := rng.intn(3) // hotspot corner
							if src == dst {
								continue
							}
							if err := n.Inject(network.Packet{Src: src, Dst: dst, Data: []network.Word{network.Word(round)}}); err != nil {
								transcript = append(transcript, fmt.Sprintf("bp src=%d round=%d", src, round))
							}
						}
						n.Tick(1 + rng.intn(4))
						for node := 0; node < n.Nodes(); node++ {
							for {
								p, ok := n.TryRecv(node)
								if !ok {
									break
								}
								transcript = append(transcript, fmt.Sprintf("node=%d src=%d data=%v", node, p.Src, p.Data))
							}
						}
					}
					if !n.TickUntilQuiet(1_000_000) {
						t.Fatalf("hotspot workload did not drain: pending=%d", n.Pending())
					}
					return n.FlitStats(), n.Cycle(), transcript
				}
				refStats, refCycle, refTr := run(1)
				for _, k := range shardCounts() {
					stats, cycle, tr := run(k)
					if stats != refStats || cycle != refCycle {
						t.Errorf("shards=%d: stats/cycle diverge:\n serial %+v cycle=%d\n sharded %+v cycle=%d",
							k, refStats, refCycle, stats, cycle)
					}
					if len(tr) != len(refTr) {
						t.Fatalf("shards=%d: transcript length diverges: %d vs %d", k, len(refTr), len(tr))
					}
					for i := range refTr {
						if refTr[i] != tr[i] {
							t.Fatalf("shards=%d: transcript diverges at %d:\n %s\n %s", k, i, refTr[i], tr[i])
						}
					}
				}
			})
		}
	}
}

// runShardObsWorkload drives one net through the seeded workload with a
// full observer attached and renders every artifact: Prometheus metrics,
// Chrome trace JSON, and the windowed timeline.
func runShardObsWorkload(t *testing.T, cfg Config, seed uint64) (metrics, traceJSON, timelineJSON string) {
	t.Helper()
	n := MustNew(cfg)
	defer n.Close()
	hub := obs.NewHub()
	n.SetFlitObserver(hub.FlitScope())
	s := timeline.New(hub.Metrics, timeline.Config{Interval: 32})
	n.SetCycleListener(s.Advance)

	nodes := n.Nodes()
	rng := diffRNG(seed)
	injected := 0
	for injected < 120 {
		for b := 0; b < 5 && injected < 120; b++ {
			src := rng.intn(nodes)
			dst := rng.intn(nodes)
			if src == dst {
				dst = (dst + 1) % nodes
			}
			words := rng.intn(n.PacketWords() + 1)
			data := make([]network.Word, words)
			for i := range data {
				data[i] = network.Word(rng.next())
			}
			_ = n.Inject(network.Packet{Src: src, Dst: dst, Data: data})
			injected++
		}
		switch rng.intn(3) {
		case 0:
			n.Tick(1 + rng.intn(7))
		case 1:
			n.Tick(64)
		default:
			n.TickUntilQuiet(4096)
		}
		for node := 0; node < nodes; node++ {
			for {
				if _, ok := n.TryRecv(node); !ok {
					break
				}
			}
		}
	}
	if !n.TickUntilQuiet(1_000_000) {
		t.Fatalf("workload did not drain: pending=%d", n.Pending())
	}
	s.Flush(n.Cycle())
	if err := s.Reconcile(); err != nil {
		t.Fatalf("timeline does not reconcile: %v", err)
	}
	var m, tr, tl bytes.Buffer
	if err := hub.Metrics.WritePrometheus(&m); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	if err := hub.Trace.WriteChromeTrace(&tr); err != nil {
		t.Fatalf("WriteChromeTrace: %v", err)
	}
	if err := timeline.WriteJSON(&tl, s.Snapshot()); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	return m.String(), tr.String(), tl.String()
}

// TestShardedObsEquivalence extends the byte-identity contract to the
// observability artifacts: metrics, traces (span ids included — the
// replay's emission order must equal the serial engine's), and timeline
// digests must render byte-identically at every shard count.
func TestShardedObsEquivalence(t *testing.T) {
	grid := []struct {
		name string
		cfg  Config
	}{
		{"mesh-det-vc2", Config{Topology: topology.MustMesh(4, 4), Mode: Deterministic, VirtualChannels: 2}},
		{"mesh-adaptive-vc3", Config{Topology: topology.MustMesh(4, 4), Mode: Adaptive, VirtualChannels: 3}},
		{"fattree-adaptive", Config{Topology: topology.MustFatTree(4, 2), Mode: Adaptive, VirtualChannels: 2}},
	}
	for _, g := range grid {
		for seed := uint64(1); seed <= 2; seed++ {
			t.Run(fmt.Sprintf("%s/seed%d", g.name, seed), func(t *testing.T) {
				refM, refT, refTL := runShardObsWorkload(t, g.cfg, seed)
				for _, k := range shardCounts() {
					sharded := g.cfg
					sharded.Shards = k
					m, tr, tl := runShardObsWorkload(t, sharded, seed)
					if m != refM {
						t.Errorf("shards=%d: metrics diverge (%d vs %d bytes)", k, len(refM), len(m))
					}
					if tr != refT {
						t.Errorf("shards=%d: traces diverge (%d vs %d bytes)", k, len(refT), len(tr))
					}
					if tl != refTL {
						t.Errorf("shards=%d: timelines diverge (%d vs %d bytes)", k, len(refTL), len(tl))
					}
				}
			})
		}
	}
}

// TestShardedIdleFastForward pins the sharded barrier's idle fast-forward:
// a drained sharded net jumps over idle stretches exactly like the serial
// engine, and the skipped cycles are accounted identically.
func TestShardedIdleFastForward(t *testing.T) {
	run := func(shards int) (Stats, uint64, uint64) {
		n := MustNew(Config{Topology: topology.MustMesh(4, 4), Mode: Deterministic, Shards: shards})
		defer n.Close()
		if err := n.Inject(network.Packet{Src: 0, Dst: 15, Data: []network.Word{1, 2}}); err != nil {
			t.Fatal(err)
		}
		n.Tick(10_000) // mostly idle once the worm lands
		if _, ok := n.TryRecv(15); !ok {
			t.Fatal("packet not delivered")
		}
		return n.FlitStats(), n.Cycle(), n.IdleSkipped()
	}
	refStats, refCycle, refSkipped := run(1)
	if refSkipped == 0 {
		t.Fatal("workload never exercised the idle fast-forward")
	}
	for _, k := range shardCounts() {
		stats, cycle, skipped := run(k)
		if stats != refStats || cycle != refCycle || skipped != refSkipped {
			t.Errorf("shards=%d: fast-forward diverges: serial (cycle=%d skipped=%d), sharded (cycle=%d skipped=%d)",
				k, refCycle, refSkipped, cycle, skipped)
		}
	}
}

// TestShardClamps pins the serial fallbacks: shard counts clamp to the
// router count, and CR mode, the dense reference, and installed acceptors
// force the serial engine.
func TestShardClamps(t *testing.T) {
	mesh := func() topology.Topology { return topology.MustMesh(2, 2) }
	if n := MustNew(Config{Topology: mesh(), Shards: 64}); n.Shards() != 4 {
		t.Errorf("shards should clamp to the router count: got %d, want 4", n.Shards())
	}
	if n := MustNew(Config{Topology: mesh(), Mode: CR, Shards: 4}); n.Shards() != 1 {
		t.Errorf("CR must run serial: got %d shards", n.Shards())
	}
	if n := MustNew(Config{Topology: mesh(), DenseReference: true, Shards: 4}); n.Shards() != 1 {
		t.Errorf("dense reference must run serial: got %d shards", n.Shards())
	}
	if _, err := New(Config{Topology: mesh(), Shards: -1}); err == nil {
		t.Error("negative shard count should be rejected")
	}
	n := MustNew(Config{Topology: mesh(), Shards: 2})
	if n.Shards() != 2 {
		t.Fatalf("got %d shards, want 2", n.Shards())
	}
	if err := n.SetAcceptor(0, func(network.Packet) bool { return true }); err != nil {
		t.Fatal(err)
	}
	if n.Shards() != 1 {
		t.Errorf("installing an acceptor must migrate to the serial engine: got %d shards", n.Shards())
	}
}

// TestShardedAcceptorMigration injects traffic into a sharded net, then
// installs an acceptor mid-run: the migrated net must finish with exactly
// the serial engine's results, pending worklists and wake state included.
func TestShardedAcceptorMigration(t *testing.T) {
	run := func(shards int) (Stats, uint64, []string) {
		n := MustNew(Config{Topology: topology.MustMesh(4, 4), Mode: Deterministic, Shards: shards})
		defer n.Close()
		rng := diffRNG(17)
		for i := 0; i < 30; i++ {
			src, dst := rng.intn(16), rng.intn(16)
			if src == dst {
				continue
			}
			_ = n.Inject(network.Packet{Src: src, Dst: dst, Data: []network.Word{network.Word(i)}})
			if i%7 == 0 {
				n.Tick(2)
			}
		}
		// Mid-run migration: flits are buffered, flows are pending.
		if err := n.SetAcceptor(0, func(network.Packet) bool { return true }); err != nil {
			t.Fatal(err)
		}
		if n.Shards() != 1 {
			t.Fatalf("got %d shards after SetAcceptor, want 1", n.Shards())
		}
		for i := 30; i < 60; i++ {
			src, dst := rng.intn(16), rng.intn(16)
			if src == dst {
				continue
			}
			_ = n.Inject(network.Packet{Src: src, Dst: dst, Data: []network.Word{network.Word(i)}})
		}
		if !n.TickUntilQuiet(1_000_000) {
			t.Fatal("did not drain")
		}
		var got []string
		for node := 0; node < 16; node++ {
			for {
				p, ok := n.TryRecv(node)
				if !ok {
					break
				}
				got = append(got, fmt.Sprintf("node=%d src=%d data=%v", node, p.Src, p.Data))
			}
		}
		return n.FlitStats(), n.Cycle(), got
	}
	refStats, refCycle, refTr := run(1)
	for _, k := range shardCounts() {
		stats, cycle, tr := run(k)
		if stats != refStats || cycle != refCycle {
			t.Errorf("shards=%d: migration diverges:\n serial %+v cycle=%d\n sharded %+v cycle=%d", k, refStats, refCycle, stats, cycle)
		}
		if len(tr) != len(refTr) {
			t.Fatalf("shards=%d: transcript length diverges", k)
		}
		for i := range refTr {
			if refTr[i] != tr[i] {
				t.Fatalf("shards=%d: transcript diverges at %d:\n %s\n %s", k, i, refTr[i], tr[i])
			}
		}
	}
}
