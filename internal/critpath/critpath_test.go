package critpath_test

import (
	"bytes"
	"strings"
	"testing"

	"msglayer/internal/critpath"
	"msglayer/internal/experiments"
	"msglayer/internal/flitnet"
	"msglayer/internal/network"
	"msglayer/internal/obs"
	"msglayer/internal/topology"
)

// runCanonical runs one canonical scenario into a fresh hub.
func runCanonical(t *testing.T, name string, words int) *obs.Hub {
	t.Helper()
	h := obs.NewHub()
	experiments.SetObserver(h)
	defer experiments.SetObserver(nil)
	if _, err := experiments.RunCanonical(name, words); err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	return h
}

// TestReconcileCanonicalExact is the keystone check of the per-message
// view: on every canonical scenario, the per-message attribution built from
// the trace must reconcile EXACTLY with the aggregate registry counters —
// the same counters the Table 1-3 reproduction is checked against.
func TestReconcileCanonicalExact(t *testing.T) {
	for _, name := range experiments.CanonicalScenarios() {
		t.Run(name, func(t *testing.T) {
			h := runCanonical(t, name, 64)
			if err := critpath.Reconcile(h); err != nil {
				t.Fatalf("per-message attribution does not reconcile with counters: %v", err)
			}
			a := critpath.Analyze(h.Trace.Events())
			if len(a.Messages) == 0 {
				t.Fatal("no messages reconstructed from trace")
			}
			for _, m := range a.Messages {
				var sum uint64
				for _, s := range m.Segments {
					sum += s.To - s.From
				}
				if sum != m.Latency {
					t.Fatalf("msg %d: segments sum to %d, latency is %d (decomposition must be exact)", m.ID, sum, m.Latency)
				}
				var byCat uint64
				for _, v := range m.ByCategory {
					byCat += v
				}
				if byCat != m.Latency {
					t.Fatalf("msg %d: categories sum to %d, latency is %d", m.ID, byCat, m.Latency)
				}
			}
		})
	}
}

// TestReconcileDetectsCounterDrift proves the reconciliation is a real
// equality check: a counter bumped without a matching trace event fails it.
func TestReconcileDetectsCounterDrift(t *testing.T) {
	h := runCanonical(t, "cm5-finite", 16)
	h.Metrics.Counter(obs.Key{
		Name: "protocol_events_total", Node: 0, Proto: "finite", Event: "finite.start",
	}).Inc()
	if err := critpath.Reconcile(h); err == nil {
		t.Fatal("reconciliation accepted a counter with no matching trace event")
	}
}

// TestReconcileRefusesDroppedTrace: a truncated trace cannot reconcile and
// must error rather than silently passing a partial check.
func TestReconcileRefusesDroppedTrace(t *testing.T) {
	h := obs.NewHub()
	h.Trace = obs.NewTracer(4) // tiny cap: the run will overflow it
	experiments.SetObserver(h)
	defer experiments.SetObserver(nil)
	if _, err := experiments.RunCanonical("cm5-finite", 16); err != nil {
		t.Fatal(err)
	}
	if h.Trace.Dropped() == 0 {
		t.Fatal("test setup: trace did not overflow")
	}
	err := critpath.Reconcile(h)
	if err == nil || !strings.Contains(err.Error(), "dropped") {
		t.Fatalf("want dropped-events error, got %v", err)
	}
}

// runFlit drives a small flit network with a FlitScope attached and returns
// the hub. Identities mix traced packets (explicit Msg/Pkt/Span) and
// untraced ones (synthetic worm identities).
func runFlit(t *testing.T, dense bool) *obs.Hub {
	t.Helper()
	topo, err := topology.NewMesh(2, 2)
	if err != nil {
		t.Fatal(err)
	}
	net, err := flitnet.New(flitnet.Config{
		Topology: topo, Mode: flitnet.CR,
		BufferFlits: 3, InjectQueue: 4, KillTimeout: 8, RetryBackoff: 4,
		DenseReference: dense,
	})
	if err != nil {
		t.Fatal(err)
	}
	h := obs.NewHub()
	net.SetFlitObserver(h.FlitScope())
	for i := 0; i < 6; i++ {
		p := network.Packet{Src: i % 4, Dst: (i + 1) % 4, Data: []network.Word{network.Word(i)}}
		if i%2 == 0 {
			p.Msg, p.Pkt, p.Span = uint64(i+1), uint64(i+1), uint64(i+100)
		}
		if err := net.Inject(p); err != nil {
			t.Fatal(err)
		}
		net.Tick(1)
	}
	if !net.TickUntilQuiet(10000) {
		t.Fatal("network never drained")
	}
	for node := 0; node < 4; node++ {
		for {
			if _, ok := net.TryRecv(node); !ok {
				break
			}
		}
	}
	return h
}

// TestFlitTraceReconcilesAndAttributes covers the transit leg: flit-level
// events reconcile against their mirrored counters and reconstruct into
// per-worm messages, synthetic ids marked as such.
func TestFlitTraceReconcilesAndAttributes(t *testing.T) {
	h := runFlit(t, false)
	if err := critpath.Reconcile(h); err != nil {
		t.Fatalf("flit trace does not reconcile: %v", err)
	}
	a := critpath.Analyze(h.Trace.Events())
	if len(a.Messages) == 0 {
		t.Fatal("no messages from flit trace")
	}
	var traced, synthetic int
	for _, m := range a.Messages {
		if m.Synthetic {
			synthetic++
		} else {
			traced++
		}
	}
	if traced == 0 || synthetic == 0 {
		t.Fatalf("want both traced and synthetic messages, got %d traced, %d synthetic", traced, synthetic)
	}
}

// TestFlitTraceIdenticalAcrossEngines holds the dense reference engine and
// the event-driven engine to byte-identical traces (and hence byte-identical
// critpath reports).
func TestFlitTraceIdenticalAcrossEngines(t *testing.T) {
	render := func(dense bool) (string, string) {
		h := runFlit(t, dense)
		var flow bytes.Buffer
		if err := critpath.WriteChromeFlow(&flow, h.Trace.Events()); err != nil {
			t.Fatal(err)
		}
		var text bytes.Buffer
		if err := critpath.WriteText(&text, critpath.Analyze(h.Trace.Events())); err != nil {
			t.Fatal(err)
		}
		return flow.String(), text.String()
	}
	f1, t1 := render(false)
	f2, t2 := render(true)
	if f1 != f2 {
		t.Error("chrome flow export differs between event-driven and dense engines")
	}
	if t1 != t2 {
		t.Error("text report differs between event-driven and dense engines")
	}
}

// TestRenderDeterministic requires byte-identical text, JSON, and flow
// exports across identical runs.
func TestRenderDeterministic(t *testing.T) {
	render := func() (string, string, string) {
		h := runCanonical(t, "cm5-stream", 32)
		a := critpath.Analyze(h.Trace.Events())
		var text, flow bytes.Buffer
		if err := critpath.WriteText(&text, a); err != nil {
			t.Fatal(err)
		}
		js, err := critpath.JSON(a)
		if err != nil {
			t.Fatal(err)
		}
		if err := critpath.WriteChromeFlow(&flow, h.Trace.Events()); err != nil {
			t.Fatal(err)
		}
		return text.String(), string(js), flow.String()
	}
	t1, j1, f1 := render()
	t2, j2, f2 := render()
	if t1 != t2 {
		t.Error("text report differs between identical runs")
	}
	if j1 != j2 {
		t.Error("JSON report differs between identical runs")
	}
	if f1 != f2 {
		t.Error("chrome flow export differs between identical runs")
	}
}

// TestCriticalPathCoversRun sanity-checks the cross-message chain: it ends
// at the run's last event and its categorized gaps sum to its span.
func TestCriticalPathCoversRun(t *testing.T) {
	h := runCanonical(t, "cm5-finite", 64)
	events := h.Trace.Events()
	a := critpath.Analyze(events)
	steps := a.Critical.Steps
	if len(steps) < 2 {
		t.Fatalf("critical path has %d steps", len(steps))
	}
	last := events[len(events)-1]
	if steps[len(steps)-1].Name != last.Name {
		t.Fatalf("critical path ends at %q, run ends at %q", steps[len(steps)-1].Name, last.Name)
	}
	var sum uint64
	for _, v := range a.Critical.ByCategory {
		sum += v
	}
	if sum != a.Critical.Span {
		t.Fatalf("critical-path categories sum to %d, span is %d", sum, a.Critical.Span)
	}
	for i := 1; i < len(steps); i++ {
		if steps[i].Time < steps[i-1].Time {
			t.Fatal("critical path steps out of time order")
		}
	}
}

// TestQuantileExact pins the nearest-rank quantile to observed values.
func TestQuantileExact(t *testing.T) {
	a := critpath.Analyze(nil)
	if got := a.Quantile(0.5); got != 0 {
		t.Fatalf("empty quantile = %d", got)
	}
	h := runCanonical(t, "cm5-stream", 32)
	a = critpath.Analyze(h.Trace.Events())
	if len(a.Latencies) == 0 {
		t.Fatal("no latencies")
	}
	if got, want := a.Quantile(0), a.Latencies[0]; got != want {
		t.Fatalf("q0 = %d, want min %d", got, want)
	}
	if got, want := a.Quantile(1), a.Latencies[len(a.Latencies)-1]; got != want {
		t.Fatalf("q1 = %d, want max %d", got, want)
	}
	for _, q := range []float64{0.5, 0.9, 0.99} {
		v := a.Quantile(q)
		found := false
		for _, l := range a.Latencies {
			if l == v {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("quantile %.2f = %d is not an observed latency", q, v)
		}
	}
}
