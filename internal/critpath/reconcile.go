package critpath

import (
	"fmt"
	"strings"

	"msglayer/internal/obs"
)

// Reconcile cross-checks a hub's trace against its metrics registry and
// returns an error on any disagreement. Every instant trace event mirrors
// exactly one counter increment (protocol events, network anomalies,
// control-network completions), so the per-message attribution built from
// the trace provably accounts for exactly what the aggregate counters
// recorded — no event double-counted, none missing. The check is exact and
// bidirectional: each event-mirrored counter must equal its trace-derived
// count, and no trace event may lack a counter.
//
// Reconciliation is impossible when the tracer hit its retention cap, so a
// non-zero Dropped() is an error rather than a silent partial check.
func Reconcile(h *obs.Hub) error {
	if d := h.Trace.Dropped(); d > 0 {
		return fmt.Errorf("trace dropped %d events (raise the tracer cap); per-message attribution cannot reconcile against counters", d)
	}

	expected := make(map[obs.Key]uint64)
	for _, e := range h.Trace.Events() {
		if e.Phase == obs.PhaseComplete {
			continue // spans are derived views; only instants mirror counters
		}
		k, ok := counterFor(e)
		if !ok {
			return fmt.Errorf("trace event %q (node %d, proto %q) has no counter mapping", e.Name, e.Node, e.Proto)
		}
		expected[k]++
	}

	// Every trace-derived count must match its counter...
	for k, want := range expected {
		if got := h.Metrics.CounterValue(k); got != want {
			return fmt.Errorf("counter %s = %d but trace holds %d matching events", k, got, want)
		}
	}
	// ...and every event-mirrored counter must be explained by the trace
	// (a counter the trace never saw must be zero).
	for _, k := range h.Metrics.CounterKeys() {
		if !eventMirrored(k) {
			continue
		}
		if _, seen := expected[k]; seen {
			continue
		}
		if got := h.Metrics.CounterValue(k); got != 0 {
			return fmt.Errorf("counter %s = %d but no trace event accounts for it", k, got)
		}
	}
	return nil
}

// netAnomalies maps the network-substrate anomaly event names (emitted with
// the destination node and the substrate as Proto) to their counters.
var netAnomalies = map[string]string{
	"net.backpressure": "net_backpressure_total",
	"net.dropped":      "net_dropped_total",
	"net.corrupt":      "net_corrupt_total",
	"net.rejected":     "net_rejected_total",
}

// ctrlEvents maps control-network completion events to their counters.
var ctrlEvents = map[string]string{
	"ctrlnet.combine.done": "ctrlnet_combines_total",
	"ctrlnet.scan.done":    "ctrlnet_scans_total",
}

// counterFor returns the registry key the given instant event incremented.
func counterFor(e obs.TraceEvent) (obs.Key, bool) {
	if name, ok := netAnomalies[e.Name]; ok {
		// NetScope anomalies: counted per substrate, traced per dest node.
		return obs.Key{Name: name, Node: -1, Proto: e.Proto}, true
	}
	if name, ok := ctrlEvents[e.Name]; ok {
		return obs.Key{Name: name, Node: -1, Proto: "ctrlnet"}, true
	}
	// NodeScope and FlitScope events mirror protocol_events_total directly
	// (FlitScope files under Node -1, Proto "flitnet").
	return obs.Key{Name: "protocol_events_total", Node: e.Node, Proto: e.Proto, Event: e.Name}, true
}

// eventMirrored reports whether a counter key is one the trace mirrors
// one-to-one (and must therefore be fully explained by trace events).
// Counters like packets_sent_total or run_rounds_total aggregate without a
// per-increment trace event and are outside the reconciliation contract.
func eventMirrored(k obs.Key) bool {
	switch k.Name {
	case "protocol_events_total",
		"ctrlnet_combines_total", "ctrlnet_scans_total":
		return true
	}
	return strings.HasPrefix(k.Name, "net_") && isAnomalyCounter(k.Name)
}

// isAnomalyCounter reports whether a net_* counter has a mirroring anomaly
// event (injected/delivered/hw_retries do not).
func isAnomalyCounter(name string) bool {
	for _, c := range netAnomalies {
		if c == name {
			return true
		}
	}
	return false
}
