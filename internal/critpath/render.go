package critpath

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"msglayer/internal/obs"
)

// WriteText renders the analysis as a deterministic plain-text report: the
// latency distribution, the exact category decomposition, the per-feature
// cost waterfall, the slowest messages, and the cross-message critical
// path. Identical inputs render byte-identical reports.
func WriteText(w io.Writer, a *Analysis) error {
	p := func(format string, args ...any) error {
		_, err := fmt.Fprintf(w, format, args...)
		return err
	}
	if err := p("critical-path report: %d messages, %d trace events (%d unattributed)\n",
		len(a.Messages), a.TotalEvents, a.Unattributed); err != nil {
		return err
	}
	if len(a.Messages) == 0 {
		return p("no attributable messages in trace\n")
	}
	if err := p("latency units: mean %.1f  p50 %d  p90 %d  p99 %d  max %d\n",
		a.MeanLatency(), a.Quantile(0.50), a.Quantile(0.90), a.Quantile(0.99),
		a.Latencies[len(a.Latencies)-1]); err != nil {
		return err
	}

	var total uint64
	for _, v := range a.ByCategory {
		total += v
	}
	if err := p("\nwhere the time goes (exact decomposition, %d units total):\n", total); err != nil {
		return err
	}
	for c := Category(0); c < numCategories; c++ {
		if err := p("  %-14s %10d  %s\n", c, a.ByCategory[c], pct(a.ByCategory[c], total)); err != nil {
			return err
		}
	}
	if err := p("by role:\n"); err != nil {
		return err
	}
	for r := Role(0); r < numRoles; r++ {
		if err := p("  %-14s %10d  %s\n", r, a.ByRole[r], pct(a.ByRole[r], total)); err != nil {
			return err
		}
	}
	if err := p("work by feature axis:\n"); err != nil {
		return err
	}
	for x := 0; x < numAxes; x++ {
		if a.ByAxis[x] == 0 {
			continue
		}
		if err := p("  %-14s %10d  %s\n", obs.Axis(x), a.ByAxis[x], pct(a.ByAxis[x], a.ByCategory[CatWork])); err != nil {
			return err
		}
	}

	if len(a.Waterfall) > 0 {
		if err := p("\ncost waterfall (work units by role, protocol, axis):\n"); err != nil {
			return err
		}
		for _, row := range a.Waterfall {
			if err := p("  %-8s %-10s %-12s %10d\n", row.Role, row.Proto, row.Axis, row.Units); err != nil {
				return err
			}
		}
	}

	if err := p("\nslowest messages:\n"); err != nil {
		return err
	}
	slow := make([]*Message, len(a.Messages))
	copy(slow, a.Messages)
	sort.SliceStable(slow, func(i, j int) bool {
		if slow[i].Latency != slow[j].Latency {
			return slow[i].Latency > slow[j].Latency
		}
		return slow[i].ID < slow[j].ID
	})
	if len(slow) > 5 {
		slow = slow[:5]
	}
	for _, m := range slow {
		if err := p("  msg %s proto %-8s %d->%d  latency %d  (work %d, queueing %d, backpressure %d, retrans %d; %d pkts, %d retries)\n",
			msgLabel(m), m.Proto, m.SrcNode, m.DstNode, m.Latency,
			m.ByCategory[CatWork], m.ByCategory[CatQueueing],
			m.ByCategory[CatBackpressure], m.ByCategory[CatRetransmission],
			m.Packets, m.Retries); err != nil {
			return err
		}
	}

	if n := len(a.Critical.Steps); n > 0 {
		if err := p("\ncritical path (%d steps, %d units: work %d, queueing %d, backpressure %d, retrans %d):\n",
			n, a.Critical.Span,
			a.Critical.ByCategory[CatWork], a.Critical.ByCategory[CatQueueing],
			a.Critical.ByCategory[CatBackpressure], a.Critical.ByCategory[CatRetransmission]); err != nil {
			return err
		}
		steps := a.Critical.Steps
		const maxSteps = 24
		if len(steps) > maxSteps {
			if err := p("  ... %d earlier steps elided ...\n", len(steps)-maxSteps); err != nil {
				return err
			}
			steps = steps[len(steps)-maxSteps:]
		}
		for _, s := range steps {
			gap := ""
			if s.Gap > 0 {
				gap = fmt.Sprintf("  +%d %s", s.Gap, s.Cat)
			}
			if err := p("  t=%-8d node %-3d msg %-6d %-24s%s\n", s.Time, s.Node, s.MsgID, s.Name, gap); err != nil {
				return err
			}
		}
	}
	return nil
}

// pct renders a part/whole share, guarding the empty case.
func pct(part, whole uint64) string {
	if whole == 0 {
		return "-"
	}
	return fmt.Sprintf("%5.1f%%", 100*float64(part)/float64(whole))
}

// msgLabel renders a message id, marking synthetic flit-level identities.
func msgLabel(m *Message) string {
	if m.Synthetic {
		return fmt.Sprintf("flit#%d", m.ID-syntheticBase)
	}
	return fmt.Sprintf("%d", m.ID)
}

// jsonReport is the JSON shape of an analysis.
type jsonReport struct {
	Messages     int               `json:"messages"`
	Unattributed int               `json:"unattributed_events"`
	TotalEvents  int               `json:"total_events"`
	Latency      jsonLatency       `json:"latency"`
	ByCategory   map[string]uint64 `json:"by_category"`
	ByRole       map[string]uint64 `json:"by_role"`
	ByAxis       map[string]uint64 `json:"work_by_axis"`
	Waterfall    []jsonWaterfall   `json:"waterfall"`
	Critical     jsonCritical      `json:"critical_path"`
	PerMessage   []jsonMessage     `json:"per_message"`
}

type jsonLatency struct {
	Mean float64 `json:"mean"`
	P50  uint64  `json:"p50"`
	P90  uint64  `json:"p90"`
	P99  uint64  `json:"p99"`
	Max  uint64  `json:"max"`
}

type jsonWaterfall struct {
	Role  string `json:"role"`
	Proto string `json:"proto"`
	Axis  string `json:"axis"`
	Units uint64 `json:"units"`
}

type jsonCritical struct {
	Steps      int               `json:"steps"`
	Span       uint64            `json:"span"`
	ByCategory map[string]uint64 `json:"by_category"`
}

type jsonMessage struct {
	ID         uint64            `json:"id"`
	Synthetic  bool              `json:"synthetic,omitempty"`
	Proto      string            `json:"proto"`
	Src        int               `json:"src"`
	Dst        int               `json:"dst"`
	Latency    uint64            `json:"latency"`
	Packets    int               `json:"packets"`
	Retries    int               `json:"retries,omitempty"`
	ByCategory map[string]uint64 `json:"by_category"`
}

// JSON renders the analysis as a deterministic JSON document.
func JSON(a *Analysis) ([]byte, error) {
	rep := jsonReport{
		Messages:     len(a.Messages),
		Unattributed: a.Unattributed,
		TotalEvents:  a.TotalEvents,
		ByCategory:   catMap(a.ByCategory),
		ByRole:       roleMap(a.ByRole),
		ByAxis:       axisMap(a.ByAxis),
		Critical: jsonCritical{
			Steps:      len(a.Critical.Steps),
			Span:       a.Critical.Span,
			ByCategory: catMap(a.Critical.ByCategory),
		},
	}
	if len(a.Latencies) > 0 {
		rep.Latency = jsonLatency{
			Mean: a.MeanLatency(),
			P50:  a.Quantile(0.50),
			P90:  a.Quantile(0.90),
			P99:  a.Quantile(0.99),
			Max:  a.Latencies[len(a.Latencies)-1],
		}
	}
	for _, row := range a.Waterfall {
		rep.Waterfall = append(rep.Waterfall, jsonWaterfall{
			Role: row.Role.String(), Proto: row.Proto,
			Axis: row.Axis.String(), Units: row.Units,
		})
	}
	for _, m := range a.Messages {
		rep.PerMessage = append(rep.PerMessage, jsonMessage{
			ID: m.ID, Synthetic: m.Synthetic, Proto: m.Proto,
			Src: m.SrcNode, Dst: m.DstNode, Latency: m.Latency,
			Packets: m.Packets, Retries: m.Retries,
			ByCategory: catMap(m.ByCategory),
		})
	}
	return json.MarshalIndent(rep, "", "  ")
}

func catMap(v [numCategories]uint64) map[string]uint64 {
	out := make(map[string]uint64, numCategories)
	for c := Category(0); c < numCategories; c++ {
		out[c.String()] = v[c]
	}
	return out
}

func roleMap(v [numRoles]uint64) map[string]uint64 {
	out := make(map[string]uint64, numRoles)
	for r := Role(0); r < numRoles; r++ {
		out[r.String()] = v[r]
	}
	return out
}

func axisMap(v [numAxes]uint64) map[string]uint64 {
	out := make(map[string]uint64, numAxes)
	for x := 0; x < numAxes; x++ {
		out[obs.Axis(x).String()] = v[x]
	}
	return out
}

// chromeFlowEvent mirrors the Chrome trace-event JSON entry, extended with
// the flow-event fields (id, bp).
type chromeFlowEvent struct {
	Name  string         `json:"name"`
	Cat   string         `json:"cat,omitempty"`
	Phase string         `json:"ph"`
	TS    uint64         `json:"ts"`
	Dur   *uint64        `json:"dur,omitempty"`
	PID   int            `json:"pid"`
	TID   int            `json:"tid"`
	ID    *uint64        `json:"id,omitempty"`
	BP    string         `json:"bp,omitempty"`
	Scope string         `json:"s,omitempty"`
	Args  map[string]any `json:"args,omitempty"`
}

// WriteChromeFlow renders the trace as Chrome trace-event JSON with flow
// arrows: alongside the usual instants and spans, each message's hops
// between threads (nodes and the network) are linked with flow events keyed
// by MsgID, so perfetto draws the causal chain of every message as arrows
// across the timeline.
func WriteChromeFlow(w io.Writer, events []obs.TraceEvent) error {
	maxNode := 0
	for _, e := range events {
		if e.Node > maxNode {
			maxNode = e.Node
		}
	}
	netTID := maxNode + 1
	tidOf := func(node int) int {
		if node < 0 {
			return netTID
		}
		return node
	}
	out := []chromeFlowEvent{{
		Name: "process_name", Phase: "M", PID: 1,
		Args: map[string]any{"name": "msglayer sim"},
	}}
	seenTID := make(map[int]bool)
	nameTID := func(node int) {
		tid := tidOf(node)
		if seenTID[tid] {
			return
		}
		seenTID[tid] = true
		label := fmt.Sprintf("node %d", node)
		if node < 0 {
			label = "machine/net"
		}
		out = append(out, chromeFlowEvent{
			Name: "thread_name", Phase: "M", PID: 1, TID: tid,
			Args: map[string]any{"name": label},
		})
	}

	// Count each message's hops so the last flow event can close the arrow
	// chain ("f" instead of "t").
	hops := make(map[uint64]int)
	for _, e := range events {
		if e.MsgID != 0 {
			hops[e.MsgID]++
		}
	}
	emitted := make(map[uint64]int)
	for _, e := range events {
		nameTID(e.Node)
		args := map[string]any{"round": e.Round, "seq": e.Seq, "proto": e.Proto}
		if e.MsgID != 0 {
			args["msg"] = e.MsgID
		}
		if e.PktID != 0 {
			args["pkt"] = e.PktID
		}
		ce := chromeFlowEvent{
			Name: e.Name, Cat: e.Axis.String(), Phase: string(rune(e.Phase)),
			TS: e.TS, PID: 1, TID: tidOf(e.Node), Args: args,
		}
		if e.Phase == obs.PhaseInstant {
			ce.Scope = "t"
		}
		if e.Phase == obs.PhaseComplete {
			dur := e.Dur
			ce.Dur = &dur
		}
		out = append(out, ce)

		if e.MsgID == 0 || hops[e.MsgID] < 2 {
			continue
		}
		emitted[e.MsgID]++
		ph := "t"
		switch emitted[e.MsgID] {
		case 1:
			ph = "s"
		case hops[e.MsgID]:
			ph = "f"
		}
		id := e.MsgID
		flow := chromeFlowEvent{
			Name: "msg", Cat: "flow", Phase: ph,
			TS: eventTime(e), PID: 1, TID: tidOf(e.Node), ID: &id,
		}
		if ph == "f" {
			flow.BP = "e" // bind the arrow head to the enclosing slice
		}
		out = append(out, flow)
	}
	doc := struct {
		TraceEvents     []chromeFlowEvent `json:"traceEvents"`
		DisplayTimeUnit string            `json:"displayTimeUnit"`
	}{TraceEvents: out, DisplayTimeUnit: "ms"}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(doc)
}
