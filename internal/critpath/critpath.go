// Package critpath reconstructs per-message causal span trees from the
// observability layer's trace (internal/obs) and attributes every unit of
// each message's delivery time to a segment: protocol work on a node
// (further split by the paper's Feature axes), queueing/transit between
// nodes, backpressure stalls, and retransmission/recovery waits.
//
// The decomposition is exact by construction: a message's segments
// telescope — each segment runs from the previous event's time to the next
// event's — so they sum to the message's total latency with no residue.
// That exactness extends to the aggregate level: Reconcile cross-checks the
// per-message event attribution against the metrics registry's counters and
// demands exact equality, so the report provably accounts for everything
// the run recorded.
//
// A critical-path pass chains events across concurrent messages: an event's
// predecessor is the later of the previous event of its own message and the
// previous event on its node, so the backward chain from the run's last
// event is the sequence of happenings that actually gated completion.
package critpath

import (
	"fmt"
	"sort"
	"strings"

	"msglayer/internal/obs"
)

// Category classifies what a message was doing (or waiting for) during one
// segment of its lifetime.
type Category uint8

// Categories, in report order.
const (
	// CatWork is protocol execution on a node: handler dispatch, send
	// staging, segment bookkeeping — time the messaging layer is actively
	// spending instructions on the message.
	CatWork Category = iota
	// CatQueueing is time between nodes: network transit plus waiting for
	// the destination's scheduler slot or inject-queue turn.
	CatQueueing
	// CatBackpressure is time stalled behind exhausted buffering.
	CatBackpressure
	// CatRetransmission is recovery time: retries, kills, backoff,
	// duplicate handling — the fault-tolerance wait states.
	CatRetransmission

	numCategories = 4
)

// String names the category.
func (c Category) String() string {
	switch c {
	case CatWork:
		return "work"
	case CatQueueing:
		return "queueing"
	case CatBackpressure:
		return "backpressure"
	case CatRetransmission:
		return "retransmission"
	default:
		return fmt.Sprintf("Category(%d)", int(c))
	}
}

// Role is which end of the transfer a segment executed on.
type Role uint8

// Roles, in report order.
const (
	// RoleSource is the message's originating node.
	RoleSource Role = iota
	// RoleDest is any other node (the receiver side of the transfer).
	RoleDest
	// RoleNetwork is the substrate itself (events with Node == -1).
	RoleNetwork

	numRoles = 3
)

// String names the role.
func (r Role) String() string {
	switch r {
	case RoleSource:
		return "source"
	case RoleDest:
		return "dest"
	case RoleNetwork:
		return "network"
	default:
		return fmt.Sprintf("Role(%d)", int(r))
	}
}

// numAxes covers obs.AxisOther..obs.AxisFaultTol.
const numAxes = 5

// Segment is one exactly-accounted slice of a message's lifetime: the time
// from the previous event to the event named here, classified by what that
// arrival represents.
type Segment struct {
	// From and To bound the segment in trace time units; To-From is its
	// length (possibly zero for coincident events).
	From, To uint64
	// Name is the event that closes the segment.
	Name string
	// Node is the closing event's node (-1 for network-level events).
	Node int
	// Proto is the closing event's protocol/subsystem.
	Proto string
	// Axis is the closing event's Feature-axis attribution.
	Axis obs.Axis
	// Cat classifies the segment.
	Cat Category
	// Role is the end of the transfer the segment executed on.
	Role Role
}

// Message is the reconstructed lifetime of one causal message.
type Message struct {
	// ID is the message identity (hub-allocated, or synthetic for raw
	// flit-level workloads — see Synthetic).
	ID uint64
	// Synthetic marks identities manufactured by the flit simulator for
	// packets no messaging layer traced.
	Synthetic bool
	// Proto is the protocol of the message's first event.
	Proto string
	// SrcNode is the originating node (-1 when the message only ever
	// appeared at network level). DstNode is the first other node seen.
	SrcNode, DstNode int
	// Start and End bound the message in trace time units; Latency is
	// End-Start and exactly equals the sum of Segments.
	Start, End, Latency uint64
	// Events counts instant events, Spans completed span events, Packets
	// distinct packet identities.
	Events, Spans, Packets int
	// Retries counts retransmission-category closing events.
	Retries int
	// Segments is the exact telescoping decomposition of Latency.
	Segments []Segment
	// ByCategory, ByRole, and ByAxis aggregate segment time. ByAxis covers
	// CatWork segments only, indexed by obs.Axis.
	ByCategory [numCategories]uint64
	ByRole     [numRoles]uint64
	ByAxis     [numAxes]uint64
}

// PathStep is one hop of the cross-message critical path.
type PathStep struct {
	// Name, Node, MsgID, and Time identify the event.
	Name  string
	Node  int
	MsgID uint64
	Time  uint64
	// Gap is the time since the predecessor step; Cat classifies it.
	Gap uint64
	Cat Category
}

// CriticalPath is the backward chain from the run's last event through the
// predecessors that gated it.
type CriticalPath struct {
	// Steps in time order (earliest first).
	Steps []PathStep
	// Span is the time covered, ByCategory its composition.
	Span       uint64
	ByCategory [numCategories]uint64
}

// Analysis is the full per-message reconstruction of one trace.
type Analysis struct {
	// Messages in origination order (ascending first-event sequence).
	Messages []*Message
	// Unattributed counts events with no message identity.
	Unattributed int
	// TotalEvents is every trace event examined (instants and spans).
	TotalEvents int
	// ByCategory, ByRole, ByAxis aggregate segment time across messages.
	ByCategory [numCategories]uint64
	ByRole     [numRoles]uint64
	ByAxis     [numAxes]uint64
	// Waterfall is work time by role, protocol, and Feature axis, in
	// deterministic (role, proto, axis) order.
	Waterfall []WaterfallRow
	// Latencies holds every message latency, ascending (exact quantiles).
	Latencies []uint64
	// Critical is the cross-message critical path.
	Critical CriticalPath
}

// WaterfallRow is one line of the per-feature cost waterfall.
type WaterfallRow struct {
	Role  Role
	Proto string
	Axis  obs.Axis
	Units uint64
}

// eventTime is the moment an event "happens" on the message timeline: an
// instant's timestamp, a span's close (spans are recorded when they end, so
// this keeps emission order time-ordered).
func eventTime(e obs.TraceEvent) uint64 {
	if e.Phase == obs.PhaseComplete {
		return e.TS + e.Dur
	}
	return e.TS
}

// retransMarks are the substrings naming recovery events.
var retransMarks = []string{
	"retry", "retransmit", "kill", "timeout", "nack",
	"stale", "reack", "rereply", "failed", "duplicate", "backoff",
}

// classify attributes the gap closed by event cur: what was the message
// doing since prev? sameNode reports whether cur happened where prev did.
func classify(name string, sameNode bool) Category {
	if strings.Contains(name, "backpressure") {
		return CatBackpressure
	}
	for _, m := range retransMarks {
		if strings.Contains(name, m) {
			return CatRetransmission
		}
	}
	if name == "flit.wait.queue" || name == "flit.wait.blocked" || !sameNode {
		return CatQueueing
	}
	return CatWork
}

// ClassifyName attributes an event name alone, without gap context: the
// category its name implies when the preceding event happened on the same
// node. The timeline's per-window breakdowns use it on counter deltas,
// where no per-message gap reconstruction is possible.
func ClassifyName(name string) Category { return classify(name, true) }

// Analyze reconstructs per-message timelines from a recorded trace. The
// slice must be in emission order (obs.Tracer.Events returns it that way).
func Analyze(events []obs.TraceEvent) *Analysis {
	a := &Analysis{TotalEvents: len(events)}
	byMsg := make(map[uint64]*Message)
	lastNode := make(map[uint64]int)    // msg -> node of previous event
	lastTime := make(map[uint64]uint64) // msg -> running cursor
	pkts := make(map[uint64]map[uint64]bool)

	for _, e := range events {
		if e.MsgID == 0 {
			a.Unattributed++
			continue
		}
		m, ok := byMsg[e.MsgID]
		t := eventTime(e)
		if !ok {
			m = &Message{
				ID:        e.MsgID,
				Synthetic: e.MsgID >= syntheticBase,
				Proto:     e.Proto,
				SrcNode:   e.Node,
				DstNode:   e.Node,
				Start:     t,
			}
			byMsg[e.MsgID] = m
			a.Messages = append(a.Messages, m)
			lastNode[e.MsgID] = e.Node
			lastTime[e.MsgID] = t
		}
		if m.DstNode == m.SrcNode && e.Node != m.SrcNode && e.Node >= 0 {
			m.DstNode = e.Node
		}
		// The first record is often the mechanism layer (a cmam.send span
		// closes before the protocol's own start event lands); name the
		// message after the protocol driving it once a node-level protocol
		// event shows up (network substrate and flit events don't qualify).
		if m.Proto == "cmam" && e.Node >= 0 && e.Proto != "cmam" && e.Proto != "" &&
			!strings.HasPrefix(e.Name, "net.") {
			m.Proto = e.Proto
		}
		if e.Phase == obs.PhaseComplete {
			m.Spans++
		} else {
			m.Events++
		}
		if e.PktID != 0 {
			set := pkts[e.MsgID]
			if set == nil {
				set = make(map[uint64]bool)
				pkts[e.MsgID] = set
			}
			set[e.PktID] = true
		}

		cursor := lastTime[e.MsgID]
		to := t
		if to < cursor {
			to = cursor // clamped: span starts can precede the cursor
		}
		role := roleOf(e.Node, m.SrcNode)
		cat := classify(e.Name, e.Node == lastNode[e.MsgID])
		seg := Segment{
			From: cursor, To: to,
			Name: e.Name, Node: e.Node, Proto: e.Proto, Axis: e.Axis,
			Cat: cat, Role: role,
		}
		m.Segments = append(m.Segments, seg)
		units := to - cursor
		m.ByCategory[cat] += units
		m.ByRole[role] += units
		if cat == CatWork {
			m.ByAxis[e.Axis] += units
		}
		if cat == CatRetransmission && e.Phase != obs.PhaseComplete {
			m.Retries++
		}
		m.End = to
		m.Latency = m.End - m.Start
		lastTime[e.MsgID] = to
		lastNode[e.MsgID] = e.Node
	}

	sort.Slice(a.Messages, func(i, j int) bool {
		return a.Messages[i].Start < a.Messages[j].Start || (a.Messages[i].Start == a.Messages[j].Start && a.Messages[i].ID < a.Messages[j].ID)
	})
	water := make(map[WaterfallRow]uint64)
	for _, m := range a.Messages {
		m.Packets = len(pkts[m.ID])
		for c := 0; c < numCategories; c++ {
			a.ByCategory[c] += m.ByCategory[c]
		}
		for r := 0; r < numRoles; r++ {
			a.ByRole[r] += m.ByRole[r]
		}
		for x := 0; x < numAxes; x++ {
			a.ByAxis[x] += m.ByAxis[x]
		}
		for _, s := range m.Segments {
			if s.Cat == CatWork && s.To > s.From {
				water[WaterfallRow{Role: s.Role, Proto: s.Proto, Axis: s.Axis}] += s.To - s.From
			}
		}
		a.Latencies = append(a.Latencies, m.Latency)
	}
	for k, v := range water {
		k.Units = v
		a.Waterfall = append(a.Waterfall, k)
	}
	sort.Slice(a.Waterfall, func(i, j int) bool {
		x, y := a.Waterfall[i], a.Waterfall[j]
		if x.Role != y.Role {
			return x.Role < y.Role
		}
		if x.Proto != y.Proto {
			return x.Proto < y.Proto
		}
		return x.Axis < y.Axis
	})
	sort.Slice(a.Latencies, func(i, j int) bool { return a.Latencies[i] < a.Latencies[j] })
	a.Critical = criticalPath(events)
	return a
}

// syntheticBase mirrors the flit simulator's synthetic message-id offset.
const syntheticBase = uint64(1) << 32

// roleOf maps a node to its role relative to a message's source.
func roleOf(node, src int) Role {
	switch {
	case node < 0:
		return RoleNetwork
	case node == src:
		return RoleSource
	default:
		return RoleDest
	}
}

// Quantile returns the exact q-quantile of the message latencies (nearest-
// rank, so it is an observed value, not an interpolation). Zero when no
// messages were reconstructed.
func (a *Analysis) Quantile(q float64) uint64 {
	n := len(a.Latencies)
	if n == 0 {
		return 0
	}
	if q <= 0 {
		return a.Latencies[0]
	}
	rank := int(float64(n) * q)
	if float64(rank) < float64(n)*q {
		rank++
	}
	if rank < 1 {
		rank = 1
	}
	if rank > n {
		rank = n
	}
	return a.Latencies[rank-1]
}

// MeanLatency returns the average message latency in trace units.
func (a *Analysis) MeanLatency() float64 {
	if len(a.Latencies) == 0 {
		return 0
	}
	var sum uint64
	for _, l := range a.Latencies {
		sum += l
	}
	return float64(sum) / float64(len(a.Latencies))
}

// criticalPath chains events across messages: an event's predecessor is the
// later of the previous event of its message and the previous event on its
// node, and the path is the backward chain from the run's last event. One
// forward pass records predecessor indices; the backtrack is O(path).
func criticalPath(events []obs.TraceEvent) CriticalPath {
	var cp CriticalPath
	if len(events) == 0 {
		return cp
	}
	pred := make([]int32, len(events))
	lastOfMsg := make(map[uint64]int32)
	lastOnNode := make(map[int]int32)
	for i, e := range events {
		p := int32(-1)
		if j, ok := lastOfMsg[e.MsgID]; ok && e.MsgID != 0 {
			p = j
		}
		if j, ok := lastOnNode[e.Node]; ok && j > p {
			p = j
		}
		pred[i] = p
		if e.MsgID != 0 {
			lastOfMsg[e.MsgID] = int32(i)
		}
		lastOnNode[e.Node] = int32(i)
	}
	var chain []int32
	for i := int32(len(events) - 1); i >= 0; i = pred[i] {
		chain = append(chain, i)
	}
	// Reverse into time order and build steps.
	var prevTime uint64
	var prevNode int
	for k := len(chain) - 1; k >= 0; k-- {
		e := events[chain[k]]
		t := eventTime(e)
		if t < prevTime {
			t = prevTime
		}
		step := PathStep{Name: e.Name, Node: e.Node, MsgID: e.MsgID, Time: t}
		if len(cp.Steps) > 0 {
			step.Gap = t - prevTime
			step.Cat = classify(e.Name, e.Node == prevNode)
			cp.ByCategory[step.Cat] += step.Gap
		}
		cp.Steps = append(cp.Steps, step)
		prevTime, prevNode = t, e.Node
	}
	if n := len(cp.Steps); n > 1 {
		cp.Span = cp.Steps[n-1].Time - cp.Steps[0].Time
	}
	return cp
}
