package timeline

import (
	"bytes"
	"strings"
	"testing"

	"msglayer/internal/obs"
)

// q999Fixture drives one histogram through enough observations that p99.9
// separates from p99.
func q999Fixture(t *testing.T, cfg Config) *Sampler {
	t.Helper()
	reg := obs.NewRegistry()
	h := reg.Histogram(obs.Key{Name: "transfer_latency_rounds", Node: -1, Proto: "fixture"}, nil)
	s := New(reg, cfg)
	for v := uint64(0); v < 2000; v++ {
		h.Observe(v % 1024)
	}
	s.Flush(cfg.Interval)
	return s
}

// TestTimelineQuantile999 pins the opt-in wire format: the quantiles
// marker, per-window P999 values, and a digest distinct from the default
// rendering of the same data.
func TestTimelineQuantile999(t *testing.T) {
	base := q999Fixture(t, Config{Interval: 10}).Snapshot()
	ext := q999Fixture(t, Config{Interval: 10, Quantile999: true}).Snapshot()

	if len(base.Quantiles) != 0 {
		t.Fatalf("default timeline advertises quantiles %v, want none", base.Quantiles)
	}
	if len(ext.Quantiles) != 1 || ext.Quantiles[0] != "p999" {
		t.Fatalf("extended timeline quantiles = %v, want [p999]", ext.Quantiles)
	}
	for _, w := range base.Windows {
		for _, hd := range w.Hists {
			if hd.P999 != 0 {
				t.Fatalf("default window carries P999 = %d", hd.P999)
			}
		}
	}
	var sawP999 bool
	for _, w := range ext.Windows {
		for _, hd := range w.Hists {
			if hd.P999 >= hd.P99 && hd.P999 > 0 {
				sawP999 = true
			}
		}
	}
	if !sawP999 {
		t.Fatalf("extended windows never exported a p999 >= p99")
	}
	if base.Digest == ext.Digest {
		t.Fatalf("digest ignores the quantile extension: %s", base.Digest)
	}

	var csv bytes.Buffer
	if err := WriteCSV(&csv, ext); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(csv.String(), ";p999=") {
		t.Fatalf("extended CSV missing p999 column:\n%s", csv.String())
	}
	var defCSV bytes.Buffer
	if err := WriteCSV(&defCSV, base); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(defCSV.String(), "p999") {
		t.Fatalf("default CSV leaks p999:\n%s", defCSV.String())
	}
}
