package timeline

import (
	"fmt"
	"sort"
	"strings"
)

// PhaseKind classifies a segment of a run by its event-rate regime.
type PhaseKind uint8

// Phase kinds, in run order: a leading low-rate ramp, the medium-rate
// norm, high-rate excursions, and the trailing low-rate tail.
const (
	// PhaseWarmup is the leading low-activity run of windows (pipelines
	// filling, credit handshakes, allocation round trips).
	PhaseWarmup PhaseKind = iota
	// PhaseSteady is the run's normal operating regime.
	PhaseSteady
	// PhaseBurst is a high-activity excursion above the steady rate.
	PhaseBurst
	// PhaseDrain is the trailing low-activity run (injection stopped,
	// in-flight traffic completing).
	PhaseDrain
)

// String names the kind.
func (k PhaseKind) String() string {
	switch k {
	case PhaseWarmup:
		return "warmup"
	case PhaseSteady:
		return "steady"
	case PhaseBurst:
		return "burst"
	case PhaseDrain:
		return "drain"
	default:
		return fmt.Sprintf("PhaseKind(%d)", int(k))
	}
}

// Phase is one segment of consecutive windows in the same rate regime,
// with its overhead breakdown aggregated over the member windows.
type Phase struct {
	Kind PhaseKind `json:"kind"`
	// FirstWindow and LastWindow are inclusive window indices.
	FirstWindow int `json:"first_window"`
	LastWindow  int `json:"last_window"`
	// Start and End are the covered cycle range.
	Start uint64 `json:"start"`
	End   uint64 `json:"end"`
	// Events is the total protocol-event activity in the phase.
	Events uint64 `json:"events"`
	// Breakdown aggregates the member windows' Role×Feature×Category
	// cells, in the same deterministic order.
	Breakdown []BreakdownCell `json:"breakdown,omitempty"`
}

// Phases segments the timeline into warmup/steady/burst/drain from
// rate change-points. The detector is deliberately integer-only and
// threshold-based so it is deterministic: with med the median nonzero
// per-window activity, a window is low when its activity is under half the
// median and bursting when over twice it. The leading low run is warmup,
// the trailing low run is drain, interior low windows fold into steady
// (lulls between bursts are part of the regime that surrounds them). A
// timeline with no activity at all is a single steady phase.
func (tl *Timeline) Phases() []Phase {
	n := len(tl.Windows)
	if n == 0 {
		return nil
	}
	acts := make([]uint64, n)
	nonzero := make([]uint64, 0, n)
	for i, w := range tl.Windows {
		acts[i] = w.Events
		if w.Events > 0 {
			nonzero = append(nonzero, w.Events)
		}
	}
	const (
		low = iota
		mid
		high
	)
	class := make([]int, n)
	if len(nonzero) > 0 {
		sort.Slice(nonzero, func(i, j int) bool { return nonzero[i] < nonzero[j] })
		med := nonzero[len(nonzero)/2]
		for i, a := range acts {
			switch {
			case a*2 < med:
				class[i] = low
			case a > 2*med:
				class[i] = high
			default:
				class[i] = mid
			}
		}
	}
	// Map window classes to kinds: leading low = warmup, trailing low =
	// drain, interior high = burst, everything else steady.
	lead := 0
	for lead < n && class[lead] == low {
		lead++
	}
	if lead == n {
		// No window ever left the low regime: one steady phase.
		return []Phase{tl.phaseOver(PhaseSteady, 0, n-1)}
	}
	tail := n
	for tail > lead && class[tail-1] == low {
		tail--
	}
	kinds := make([]PhaseKind, n)
	for i := 0; i < n; i++ {
		switch {
		case i < lead:
			kinds[i] = PhaseWarmup
		case i >= tail:
			kinds[i] = PhaseDrain
		case class[i] == high:
			kinds[i] = PhaseBurst
		default:
			kinds[i] = PhaseSteady
		}
	}
	var phases []Phase
	start := 0
	for i := 1; i <= n; i++ {
		if i == n || kinds[i] != kinds[start] {
			phases = append(phases, tl.phaseOver(kinds[start], start, i-1))
			start = i
		}
	}
	return phases
}

// phaseOver aggregates windows [first, last] into one phase.
func (tl *Timeline) phaseOver(kind PhaseKind, first, last int) Phase {
	p := Phase{
		Kind:        kind,
		FirstWindow: first,
		LastWindow:  last,
		Start:       tl.Windows[first].Start,
		End:         tl.Windows[last].End,
	}
	cells := make(map[BreakdownCell]uint64)
	for i := first; i <= last; i++ {
		w := &tl.Windows[i]
		p.Events += w.Events
		for _, c := range w.Breakdown {
			cells[BreakdownCell{Role: c.Role, Axis: c.Axis, Category: c.Category}] += c.Events
		}
	}
	if len(cells) > 0 {
		keys := make([]BreakdownCell, 0, len(cells))
		for k := range cells {
			keys = append(keys, k)
		}
		sort.Slice(keys, func(i, j int) bool {
			a, b := keys[i], keys[j]
			if a.Role != b.Role {
				return a.Role < b.Role
			}
			if a.Axis != b.Axis {
				return a.Axis < b.Axis
			}
			return a.Category < b.Category
		})
		for _, k := range keys {
			k.Events = cells[k]
			p.Breakdown = append(p.Breakdown, k)
		}
	}
	return p
}

// WritePhaseReport renders the phase segmentation as an indented text
// block for run reports: one line per phase with its cycle range, event
// total and share, then the phase's top overhead cells by axis and
// category in permille of the phase's events.
func WritePhaseReport(b *strings.Builder, indent string, tl *Timeline) {
	phases := tl.Phases()
	var total uint64
	for _, p := range phases {
		total += p.Events
	}
	for _, p := range phases {
		share := uint64(0)
		if total > 0 {
			share = p.Events * 1000 / total
		}
		fmt.Fprintf(b, "%s%-7s cycles %d-%d (w%d-w%d)  events %d (%d‰ of run)\n",
			indent, p.Kind, p.Start, p.End, p.FirstWindow, p.LastWindow, p.Events, share)
		if p.Events == 0 {
			continue
		}
		// Aggregate the phase's cells by axis and by category: the two
		// one-dimensional views the paper's tables use.
		axes := make(map[string]uint64)
		cats := make(map[string]uint64)
		for _, c := range p.Breakdown {
			axes[c.Axis] += c.Events
			cats[c.Category] += c.Events
		}
		fmt.Fprintf(b, "%s        by axis:     %s\n", indent, permilleLine(axes, p.Events))
		fmt.Fprintf(b, "%s        by category: %s\n", indent, permilleLine(cats, p.Events))
	}
}

// permilleLine renders "name 123‰" terms in descending share, name order
// breaking ties.
func permilleLine(m map[string]uint64, total uint64) string {
	type term struct {
		name string
		v    uint64
	}
	terms := make([]term, 0, len(m))
	for k, v := range m {
		terms = append(terms, term{k, v})
	}
	sort.Slice(terms, func(i, j int) bool {
		if terms[i].v != terms[j].v {
			return terms[i].v > terms[j].v
		}
		return terms[i].name < terms[j].name
	})
	parts := make([]string, 0, len(terms))
	for _, t := range terms {
		parts = append(parts, fmt.Sprintf("%s %d‰", t.name, t.v*1000/total))
	}
	return strings.Join(parts, ", ")
}
