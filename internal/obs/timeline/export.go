package timeline

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"

	"msglayer/internal/critpath"
	"msglayer/internal/obs"
)

// SchemaVersion identifies the exported timeline layout.
const SchemaVersion = 1

// Timeline is the exportable form of a sampler's closed windows. All
// content is derived from simulated time and the registry's deterministic
// ordering, so two runs of the same scenario marshal byte-identically.
type Timeline struct {
	Schema   int      `json:"schema"`
	Interval uint64   `json:"interval"`
	Windows  []Window `json:"windows"`
	Dropped  uint64   `json:"dropped,omitempty"`
	// Quantiles lists the windowed histogram quantiles beyond the default
	// p50/p90/p99 set (today: "p999" when Config.Quantile999 is set). Empty
	// for default-configured samplers, keeping their marshaled form and
	// digest identical to earlier schema-1 timelines.
	Quantiles []string `json:"quantiles,omitempty"`
	// Digest is the FNV-1a 64 hash of the timeline content, rendered in
	// hex; DigestValue is the same hash as a number (for perfreg
	// snapshots), excluded from the marshaled form.
	Digest      string `json:"digest"`
	DigestValue uint64 `json:"-"`
}

// Window is one closed sampling window: the cycle range (start, end] and
// every series that moved in it. Unchanged series are omitted, so idle
// windows are empty.
type Window struct {
	Index     int             `json:"index"`
	Start     uint64          `json:"start"`
	End       uint64          `json:"end"`
	Events    uint64          `json:"events"`
	Counters  []CounterDelta  `json:"counters,omitempty"`
	Levels    []LevelSample   `json:"levels,omitempty"`
	Hists     []HistDelta     `json:"hists,omitempty"`
	Breakdown []BreakdownCell `json:"breakdown,omitempty"`
}

// CounterDelta is one counter's increment within a window, with its rate
// in integer events per thousand cycles (exact division by the window
// width, so it carries no float formatting into the byte-compared output).
type CounterDelta struct {
	Key           string `json:"key"`
	Delta         uint64 `json:"delta"`
	RatePerKCycle uint64 `json:"rate_per_kcycle"`
}

// LevelSample is a gauge's value at the window close. Windows where the
// gauge did not change carry no sample; the last stored value holds.
type LevelSample struct {
	Key   string `json:"key"`
	Value int64  `json:"value"`
}

// HistDelta is one histogram's within-window activity, with quantiles of
// the window's own observations (not the cumulative distribution),
// resolved from the bucket-count deltas. Quantile ranks falling in the
// +Inf overflow bucket report the last finite bound — a lower bound, since
// the window's true maximum is not tracked.
type HistDelta struct {
	Key   string `json:"key"`
	Count uint64 `json:"count"`
	Sum   uint64 `json:"sum"`
	P50   uint64 `json:"p50"`
	P90   uint64 `json:"p90"`
	P99   uint64 `json:"p99"`
	// P999 is populated (and folded into the digest) only when the sampler
	// was configured with Quantile999; see Timeline.Quantiles.
	P999 uint64 `json:"p999,omitempty"`
}

// BreakdownCell is one Role×Feature×Category aggregate of a window's
// protocol events, the per-window form of critpath's attribution table.
// Role here is a static heuristic over the event's node label (negative =
// network, node 0 = source, otherwise destination — the canonical
// experiments originate at node 0), not the per-message reconstruction
// critpath performs; Category classifies the event name alone.
type BreakdownCell struct {
	Role     string `json:"role"`
	Axis     string `json:"axis"`
	Category string `json:"category"`
	Events   uint64 `json:"events"`
}

// Snapshot renders the closed windows into their exportable form and
// computes the digest. It is a cold path and allocates freely.
func (s *Sampler) Snapshot() *Timeline {
	tl := &Timeline{
		Schema:   SchemaVersion,
		Interval: s.interval,
		Windows:  make([]Window, 0, len(s.windows)),
		Dropped:  s.dropped,
	}
	if s.q999 {
		tl.Quantiles = []string{"p999"}
	}
	for wi := range s.windows {
		tl.Windows = append(tl.Windows, s.SnapshotWindow(wi))
	}
	tl.DigestValue = tl.digest()
	tl.Digest = fmt.Sprintf("%016x", tl.DigestValue)
	return tl
}

// SnapshotWindow renders one stored window into its exportable form. Like
// Snapshot it is a cold path and allocates freely; the SLO monitor uses it
// to materialize just the pre-violation and violation windows for blame.
func (s *Sampler) SnapshotWindow(wi int) Window {
	w := s.windows[wi]
	win := Window{Index: wi, Start: w.start, End: w.end}
	width := w.end - w.start
	cells := make(map[cellKey]uint64)
	for _, d := range s.cds[w.c0:w.c1] {
		k := s.ctrKeys[d.series]
		win.Counters = append(win.Counters, CounterDelta{
			Key:           k.String(),
			Delta:         d.delta,
			RatePerKCycle: d.delta * 1000 / width,
		})
		if k.Name == "protocol_events_total" {
			win.Events += d.delta
			cells[cellOf(k)] += d.delta
		}
	}
	for _, l := range s.lss[w.l0:w.l1] {
		win.Levels = append(win.Levels, LevelSample{Key: s.lvlKeys[l.series].String(), Value: l.value})
	}
	for _, h := range s.hds[w.h0:w.h1] {
		bounds := s.hst[h.series].h.Bounds()
		buckets := s.buckets[h.b0 : int(h.b0)+len(bounds)+1]
		hd := HistDelta{
			Key:   s.hstKeys[h.series].String(),
			Count: h.dn,
			Sum:   h.dsum,
			P50:   QuantileFromDeltas(bounds, buckets, h.dn, 0.50),
			P90:   QuantileFromDeltas(bounds, buckets, h.dn, 0.90),
			P99:   QuantileFromDeltas(bounds, buckets, h.dn, 0.99),
		}
		if s.q999 {
			hd.P999 = QuantileFromDeltas(bounds, buckets, h.dn, 0.999)
		}
		win.Hists = append(win.Hists, hd)
	}
	win.Breakdown = breakdownCells(cells)
	sort.Slice(win.Counters, func(i, j int) bool { return win.Counters[i].Key < win.Counters[j].Key })
	sort.Slice(win.Levels, func(i, j int) bool { return win.Levels[i].Key < win.Levels[j].Key })
	sort.Slice(win.Hists, func(i, j int) bool { return win.Hists[i].Key < win.Hists[j].Key })
	return win
}

// cellKey aggregates breakdown cells in a deterministic numeric order.
type cellKey struct {
	role critpath.Role
	axis obs.Axis
	cat  critpath.Category
}

// cellOf classifies one protocol_events_total series key.
func cellOf(k obs.Key) cellKey {
	role := critpath.RoleDest
	switch {
	case k.Node < 0:
		role = critpath.RoleNetwork
	case k.Node == 0:
		role = critpath.RoleSource
	}
	return cellKey{role: role, axis: obs.AxisForEvent(k.Event), cat: critpath.ClassifyName(k.Event)}
}

// breakdownCells renders the aggregation map in role, axis, category order.
func breakdownCells(cells map[cellKey]uint64) []BreakdownCell {
	if len(cells) == 0 {
		return nil
	}
	keys := make([]cellKey, 0, len(cells))
	for k := range cells {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		if a.role != b.role {
			return a.role < b.role
		}
		if a.axis != b.axis {
			return a.axis < b.axis
		}
		return a.cat < b.cat
	})
	out := make([]BreakdownCell, 0, len(keys))
	for _, k := range keys {
		out = append(out, BreakdownCell{
			Role:     k.role.String(),
			Axis:     k.axis.String(),
			Category: k.cat.String(),
			Events:   cells[k],
		})
	}
	return out
}

// QuantileFromDeltas is Histogram.Quantile over one window's bucket-count
// deltas: the smallest bound whose cumulative windowed count covers rank
// ceil(q*n). Overflow ranks report the last finite bound (the window's
// true maximum is not tracked). Exported so the SLO monitor evaluates
// live windows with exactly the arithmetic the exported timeline carries.
func QuantileFromDeltas(bounds, buckets []uint64, n uint64, q float64) uint64 {
	if n == 0 {
		return 0
	}
	if !(q >= 0) {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := uint64(math.Ceil(q * float64(n)))
	if rank == 0 {
		rank = 1
	}
	var acc uint64
	for i, c := range buckets {
		acc += c
		if acc >= rank {
			if i < len(bounds) {
				return bounds[i]
			}
			break
		}
	}
	return bounds[len(bounds)-1]
}

// FNV-1a 64 parameters.
const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

type fnv64 uint64

func (h *fnv64) u64(v uint64) {
	x := uint64(*h)
	for i := 0; i < 8; i++ {
		x ^= v & 0xff
		x *= fnvPrime
		v >>= 8
	}
	*h = fnv64(x)
}

func (h *fnv64) str(s string) {
	x := uint64(*h)
	for i := 0; i < len(s); i++ {
		x ^= uint64(s[i])
		x *= fnvPrime
	}
	*h = fnv64(x)
	h.u64(uint64(len(s)))
}

// digest hashes the timeline content (FNV-1a 64). Breakdown cells are
// derived from the counters and excluded. Extended quantiles (and their
// marker list) are hashed only when present, so default-configured
// timelines keep their historical digests.
func (tl *Timeline) digest() uint64 {
	h := fnv64(fnvOffset)
	h.u64(uint64(tl.Schema))
	h.u64(tl.Interval)
	h.u64(tl.Dropped)
	h.u64(uint64(len(tl.Windows)))
	extended := len(tl.Quantiles) > 0
	if extended {
		for _, q := range tl.Quantiles {
			h.str(q)
		}
	}
	for _, w := range tl.Windows {
		h.u64(w.Start)
		h.u64(w.End)
		for _, c := range w.Counters {
			h.str(c.Key)
			h.u64(c.Delta)
		}
		for _, l := range w.Levels {
			h.str(l.Key)
			h.u64(uint64(l.Value))
		}
		for _, hd := range w.Hists {
			h.str(hd.Key)
			h.u64(hd.Count)
			h.u64(hd.Sum)
			h.u64(hd.P50)
			h.u64(hd.P90)
			h.u64(hd.P99)
			if extended {
				h.u64(hd.P999)
			}
		}
	}
	return uint64(h)
}

// WriteJSON renders the timeline as indented JSON.
func WriteJSON(w io.Writer, tl *Timeline) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(tl)
}

// CSVHeader returns the column header for the flat CSV form, with any
// caller columns (scenario identity) prepended.
func CSVHeader(prefix ...string) []string {
	return append(append([]string{}, prefix...),
		"window", "start", "end", "kind", "key", "value", "extra")
}

// AppendCSV writes the timeline's windows as flat CSV rows: one row per
// changed series per window, kind in {counter, level, hist, breakdown}.
// For counters, extra is the rate per thousand cycles; for hists, the
// windowed quantiles. prefix values (scenario identity) lead every row.
func AppendCSV(w *csv.Writer, prefix []string, tl *Timeline) error {
	extended := len(tl.Quantiles) > 0
	row := func(win Window, kind, key, value, extra string) error {
		r := append(append([]string{}, prefix...),
			strconv.Itoa(win.Index),
			strconv.FormatUint(win.Start, 10),
			strconv.FormatUint(win.End, 10),
			kind, key, value, extra)
		return w.Write(r)
	}
	for _, win := range tl.Windows {
		for _, c := range win.Counters {
			if err := row(win, "counter", c.Key, strconv.FormatUint(c.Delta, 10),
				strconv.FormatUint(c.RatePerKCycle, 10)); err != nil {
				return err
			}
		}
		for _, l := range win.Levels {
			if err := row(win, "level", l.Key, strconv.FormatInt(l.Value, 10), ""); err != nil {
				return err
			}
		}
		for _, h := range win.Hists {
			extra := fmt.Sprintf("p50=%d;p90=%d;p99=%d", h.P50, h.P90, h.P99)
			if extended {
				extra += fmt.Sprintf(";p999=%d", h.P999)
			}
			if err := row(win, "hist", h.Key, strconv.FormatUint(h.Count, 10), extra); err != nil {
				return err
			}
		}
		for _, b := range win.Breakdown {
			key := b.Role + "/" + b.Axis + "/" + b.Category
			if err := row(win, "breakdown", key, strconv.FormatUint(b.Events, 10), ""); err != nil {
				return err
			}
		}
	}
	return nil
}

// WriteCSV renders the timeline as a standalone CSV document.
func WriteCSV(w io.Writer, tl *Timeline) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(CSVHeader()); err != nil {
		return err
	}
	if err := AppendCSV(cw, nil, tl); err != nil {
		return err
	}
	cw.Flush()
	return cw.Error()
}
