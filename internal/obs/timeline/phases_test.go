package timeline

import (
	"strings"
	"testing"
)

// syntheticTimeline builds a timeline with the given per-window event
// counts, each window one interval wide.
func syntheticTimeline(events ...uint64) *Timeline {
	tl := &Timeline{Schema: SchemaVersion, Interval: 10}
	for i, e := range events {
		w := Window{Index: i, Start: uint64(i) * 10, End: uint64(i+1) * 10, Events: e}
		if e > 0 {
			w.Breakdown = []BreakdownCell{{Role: "src", Axis: "data transfer", Category: "work", Events: e}}
		}
		tl.Windows = append(tl.Windows, w)
	}
	return tl
}

// checkPartition fails unless the phases tile the window range exactly:
// contiguous, in order, first window 0, last window n-1, events conserved.
func checkPartition(t *testing.T, tl *Timeline, phases []Phase) {
	t.Helper()
	if len(phases) == 0 {
		t.Fatal("no phases for a non-empty timeline")
	}
	if phases[0].FirstWindow != 0 || phases[len(phases)-1].LastWindow != len(tl.Windows)-1 {
		t.Fatalf("phases do not span the run: first=%d last=%d windows=%d",
			phases[0].FirstWindow, phases[len(phases)-1].LastWindow, len(tl.Windows))
	}
	var events uint64
	for i, p := range phases {
		if p.LastWindow < p.FirstWindow {
			t.Fatalf("phase %d inverted: w%d-w%d", i, p.FirstWindow, p.LastWindow)
		}
		if i > 0 && p.FirstWindow != phases[i-1].LastWindow+1 {
			t.Fatalf("phase %d not contiguous: starts w%d after w%d", i, p.FirstWindow, phases[i-1].LastWindow)
		}
		events += p.Events
	}
	var want uint64
	for _, w := range tl.Windows {
		want += w.Events
	}
	if events != want {
		t.Fatalf("phase events sum to %d, windows hold %d", events, want)
	}
}

func TestObsTimelinePhasesEmpty(t *testing.T) {
	tl := &Timeline{Schema: SchemaVersion, Interval: 10}
	if phases := tl.Phases(); phases != nil {
		t.Fatalf("empty timeline yields %d phases, want none", len(phases))
	}
	// The report renderer degrades to empty output, not a panic.
	var b strings.Builder
	WritePhaseReport(&b, "  ", tl)
	if b.Len() != 0 {
		t.Fatalf("empty timeline report: %q", b.String())
	}
}

func TestObsTimelinePhasesSingleWindow(t *testing.T) {
	// One active window: its class is mid vs its own median, so the run is
	// a single steady phase covering everything.
	tl := syntheticTimeline(42)
	phases := tl.Phases()
	checkPartition(t, tl, phases)
	if len(phases) != 1 || phases[0].Kind != PhaseSteady || phases[0].Events != 42 {
		t.Fatalf("single window phases = %+v", phases)
	}
	if len(phases[0].Breakdown) != 1 || phases[0].Breakdown[0].Events != 42 {
		t.Fatalf("single window breakdown = %+v", phases[0].Breakdown)
	}
}

func TestObsTimelinePhasesAllIdle(t *testing.T) {
	// Every window idle: no nonzero rate exists, every window classes low,
	// and the whole run folds into one steady phase with zero events.
	tl := syntheticTimeline(0, 0, 0, 0)
	phases := tl.Phases()
	checkPartition(t, tl, phases)
	if len(phases) != 1 || phases[0].Kind != PhaseSteady || phases[0].Events != 0 {
		t.Fatalf("all-idle phases = %+v", phases)
	}
	if phases[0].Start != 0 || phases[0].End != 40 {
		t.Fatalf("all-idle phase range = %d-%d, want 0-40", phases[0].Start, phases[0].End)
	}
	// The report renders the zero share without dividing by zero.
	var b strings.Builder
	WritePhaseReport(&b, "", tl)
	if !strings.Contains(b.String(), "events 0 (0‰ of run)") {
		t.Fatalf("all-idle report:\n%s", b.String())
	}
}

func TestObsTimelinePhasesNeverLeavesWarmup(t *testing.T) {
	// Activity so skewed that most windows sit under half the median of a
	// single spike would still classify; here every window is equally low
	// relative to nothing — a run whose rate never rises above the low
	// threshold (trailing zeros after one tiny window) must not produce a
	// warmup-only segmentation with no steady regime.
	tl := syntheticTimeline(1, 0, 0, 0, 0, 0)
	phases := tl.Phases()
	checkPartition(t, tl, phases)
	// Median nonzero activity is 1; the active window is mid, the idle tail
	// is low, so the run is steady then drain — never a phase list that
	// stays in warmup forever.
	for _, p := range phases {
		if p.Kind == PhaseWarmup {
			t.Fatalf("run with no ramp reported a warmup phase: %+v", phases)
		}
	}
	if phases[len(phases)-1].Kind != PhaseDrain {
		t.Fatalf("idle tail not classified as drain: %+v", phases)
	}
}

func TestObsTimelinePhasesUniformRate(t *testing.T) {
	// A perfectly flat run: every window equals the median, nothing is low
	// or high, one steady phase.
	tl := syntheticTimeline(10, 10, 10, 10, 10)
	phases := tl.Phases()
	checkPartition(t, tl, phases)
	if len(phases) != 1 || phases[0].Kind != PhaseSteady {
		t.Fatalf("uniform run phases = %+v", phases)
	}
}

func TestObsTimelinePhasesFullShape(t *testing.T) {
	// Canonical shape: low ramp, steady body, burst excursion, low tail.
	tl := syntheticTimeline(1, 1, 10, 10, 50, 10, 1)
	phases := tl.Phases()
	checkPartition(t, tl, phases)
	var kinds []string
	for _, p := range phases {
		kinds = append(kinds, p.Kind.String())
	}
	if got := strings.Join(kinds, ","); got != "warmup,steady,burst,steady,drain" {
		t.Fatalf("phase kinds = %s", got)
	}
}
