package timeline

import (
	"bytes"
	"strings"
	"testing"

	"msglayer/internal/obs"
)

func k(name, proto, event string, node int) obs.Key {
	return obs.Key{Name: name, Node: node, Proto: proto, Event: event}
}

// TestSamplerWindowsAndReconcile drives a synthetic registry through a few
// windows and checks the delta encoding and the reconciliation audit.
func TestSamplerWindowsAndReconcile(t *testing.T) {
	reg := obs.NewRegistry()
	c := reg.Counter(k("protocol_events_total", "finite", "finite.start", 0))
	l := reg.Level(k("depth", "net", "", -1))
	h := reg.Histogram(k("lat", "finite", "", 0), nil)

	s := New(reg, Config{Interval: 10})
	for cycle := uint64(1); cycle <= 35; cycle++ {
		if cycle%2 == 0 {
			c.Inc()
		}
		if cycle == 7 {
			l.Set(3)
		}
		if cycle == 25 {
			h.Observe(5)
			h.Observe(100)
		}
		s.Advance(cycle)
	}
	s.Flush(35)

	if got := s.Windows(); got != 4 {
		t.Fatalf("windows = %d, want 4 (three full + one partial)", got)
	}
	if err := s.Reconcile(); err != nil {
		t.Fatalf("Reconcile: %v", err)
	}
	tl := s.Snapshot()
	if tl.Windows[3].Start != 30 || tl.Windows[3].End != 35 {
		t.Fatalf("partial window covers (%d, %d], want (30, 35]", tl.Windows[3].Start, tl.Windows[3].End)
	}
	// Window 0 covers cycles 1..10: five even cycles.
	w0 := tl.Windows[0]
	if len(w0.Counters) != 1 || w0.Counters[0].Delta != 5 {
		t.Fatalf("window 0 counters = %+v, want one delta of 5", w0.Counters)
	}
	if w0.Counters[0].RatePerKCycle != 500 {
		t.Fatalf("window 0 rate = %d per kcycle, want 500", w0.Counters[0].RatePerKCycle)
	}
	if len(w0.Levels) != 1 || w0.Levels[0].Value != 3 {
		t.Fatalf("window 0 levels = %+v, want the depth sample 3", w0.Levels)
	}
	// The level did not change afterwards: no further samples stored.
	for _, w := range tl.Windows[1:] {
		if len(w.Levels) != 0 {
			t.Fatalf("window %d re-stored an unchanged level: %+v", w.Index, w.Levels)
		}
	}
	// Window 2 covers cycles 21..30 and holds the histogram activity.
	w2 := tl.Windows[2]
	if len(w2.Hists) != 1 || w2.Hists[0].Count != 2 || w2.Hists[0].Sum != 105 {
		t.Fatalf("window 2 hists = %+v, want count 2 sum 105", w2.Hists)
	}
	if w2.Hists[0].P50 != 8 || w2.Hists[0].P99 != 128 {
		t.Fatalf("window 2 quantiles p50=%d p99=%d, want 8 and 128", w2.Hists[0].P50, w2.Hists[0].P99)
	}
	// Breakdown: one source/base-ish cell for the finite.start deltas.
	if len(w0.Breakdown) != 1 || w0.Breakdown[0].Role != "source" || w0.Breakdown[0].Events != 5 {
		t.Fatalf("window 0 breakdown = %+v", w0.Breakdown)
	}
}

// TestSamplerJumpBackfill checks the idle fast-forward contract: advancing
// in one jump over quiet cycles yields byte-identical output to advancing
// cycle by cycle.
func TestSamplerJumpBackfill(t *testing.T) {
	run := func(jump bool) string {
		reg := obs.NewRegistry()
		c := reg.Counter(k("protocol_events_total", "finite", "finite.start", 0))
		s := New(reg, Config{Interval: 4})
		c.Add(3)
		s.Advance(5)
		// Cycles 6..97 are idle.
		if jump {
			s.Advance(97)
		} else {
			for cy := uint64(6); cy <= 97; cy++ {
				s.Advance(cy)
			}
		}
		c.Add(2)
		s.Flush(99)
		var b bytes.Buffer
		if err := WriteJSON(&b, s.Snapshot()); err != nil {
			t.Fatalf("WriteJSON: %v", err)
		}
		return b.String()
	}
	if a, b := run(true), run(false); a != b {
		t.Fatalf("jump-advanced timeline differs from cycle-stepped:\n%s\nvs\n%s", a, b)
	}
}

// TestSamplerRescanMidRun checks that series created mid-run enter the
// timeline with their full history and still reconcile.
func TestSamplerRescanMidRun(t *testing.T) {
	reg := obs.NewRegistry()
	a := reg.Counter(k("protocol_events_total", "finite", "finite.start", 0))
	s := New(reg, Config{Interval: 10})
	a.Add(4)
	s.Advance(10)
	// A new series appears between boundaries with history already in it.
	b := reg.Counter(k("protocol_events_total", "stream", "stream.packet.sent", 1))
	b.Add(7)
	s.Advance(20)
	s.Flush(25)
	if err := s.Reconcile(); err != nil {
		t.Fatalf("Reconcile after mid-run series creation: %v", err)
	}
	tl := s.Snapshot()
	w1 := tl.Windows[1]
	found := false
	for _, cd := range w1.Counters {
		if strings.Contains(cd.Key, "stream.packet.sent") && cd.Delta == 7 {
			found = true
		}
	}
	if !found {
		t.Fatalf("window 1 should carry the new series' full history, got %+v", w1.Counters)
	}
}

// TestSamplerDropCap checks the window cap: overflow is counted, and the
// reconciler refuses the knowingly partial stream.
func TestSamplerDropCap(t *testing.T) {
	reg := obs.NewRegistry()
	reg.Counter(k("x_total", "", "", -1))
	s := New(reg, Config{Interval: 1, MaxWindows: 3})
	s.Advance(10)
	s.Flush(10)
	if s.Windows() != 3 || s.Dropped() != 7 {
		t.Fatalf("windows=%d dropped=%d, want 3 and 7", s.Windows(), s.Dropped())
	}
	if err := s.Reconcile(); err == nil {
		t.Fatal("Reconcile accepted a window-dropping sampler")
	}
}

// TestSamplerUnflushedReconcile checks that an unflushed sampler refuses
// to reconcile: the open window's deltas are unaccounted.
func TestSamplerUnflushedReconcile(t *testing.T) {
	reg := obs.NewRegistry()
	c := reg.Counter(k("x_total", "", "", -1))
	s := New(reg, Config{Interval: 10})
	c.Inc()
	s.Advance(15)
	if err := s.Reconcile(); err == nil {
		t.Fatal("Reconcile accepted an unflushed sampler")
	}
	s.Flush(15)
	if err := s.Reconcile(); err != nil {
		t.Fatalf("Reconcile after flush: %v", err)
	}
}

// TestSnapshotDeterminism checks that identical mutation schedules produce
// identical digests, and differing ones differ.
func TestSnapshotDeterminism(t *testing.T) {
	run := func(extra bool) *Timeline {
		reg := obs.NewRegistry()
		c := reg.Counter(k("protocol_events_total", "finite", "finite.start", 0))
		s := New(reg, Config{Interval: 5})
		for cy := uint64(1); cy <= 20; cy++ {
			c.Inc()
			if extra && cy == 13 {
				c.Inc()
			}
			s.Advance(cy)
		}
		s.Flush(20)
		return s.Snapshot()
	}
	a, b, c := run(false), run(false), run(true)
	if a.Digest != b.Digest {
		t.Fatalf("identical runs digest %s vs %s", a.Digest, b.Digest)
	}
	if a.Digest == c.Digest {
		t.Fatal("differing runs share a digest")
	}
}

// TestPhases checks the warmup/steady/burst/drain segmentation on a
// synthetic bursty run.
func TestPhases(t *testing.T) {
	reg := obs.NewRegistry()
	c := reg.Counter(k("protocol_events_total", "finite", "finite.packet.sent", 0))
	s := New(reg, Config{Interval: 10})
	// Per-window activity: 0 0 10 10 50 10 10 0 0
	adds := []uint64{0, 0, 10, 10, 50, 10, 10, 0, 0}
	cycle := uint64(0)
	for _, n := range adds {
		c.Add(n)
		cycle += 10
		s.Advance(cycle)
	}
	s.Flush(cycle)
	phases := s.Snapshot().Phases()
	var kinds []string
	for _, p := range phases {
		kinds = append(kinds, p.Kind.String())
	}
	got := strings.Join(kinds, ",")
	if got != "warmup,steady,burst,steady,drain" {
		t.Fatalf("phases = %s, want warmup,steady,burst,steady,drain", got)
	}
	if phases[2].Events != 50 {
		t.Fatalf("burst events = %d, want 50", phases[2].Events)
	}
	var b strings.Builder
	WritePhaseReport(&b, "# ", s.Snapshot())
	if !strings.Contains(b.String(), "burst") || !strings.Contains(b.String(), "by axis") {
		t.Fatalf("phase report missing expected lines:\n%s", b.String())
	}
}

// TestPhasesAllQuiet checks the degenerate single-phase cases.
func TestPhasesAllQuiet(t *testing.T) {
	reg := obs.NewRegistry()
	reg.Counter(k("x_total", "", "", -1))
	s := New(reg, Config{Interval: 10})
	s.Advance(40)
	s.Flush(40)
	phases := s.Snapshot().Phases()
	if len(phases) != 1 || phases[0].Kind != PhaseSteady {
		t.Fatalf("all-quiet run should be one steady phase, got %+v", phases)
	}
	empty := (&Timeline{}).Phases()
	if empty != nil {
		t.Fatalf("empty timeline should have no phases, got %+v", empty)
	}
}

// TestWriteCSV smoke-checks the flat CSV form.
func TestWriteCSV(t *testing.T) {
	reg := obs.NewRegistry()
	c := reg.Counter(k("protocol_events_total", "finite", "finite.start", 0))
	s := New(reg, Config{Interval: 10})
	c.Add(2)
	s.Flush(10)
	var b bytes.Buffer
	if err := WriteCSV(&b, s.Snapshot()); err != nil {
		t.Fatalf("WriteCSV: %v", err)
	}
	out := b.String()
	for _, want := range []string{"window,start,end,kind,key,value,extra", "counter", "breakdown", "source/"} {
		if !strings.Contains(out, want) {
			t.Fatalf("CSV missing %q:\n%s", want, out)
		}
	}
}

// TestQuantileFromDeltas covers the windowed-quantile edge cases directly.
func TestQuantileFromDeltas(t *testing.T) {
	bounds := []uint64{1, 2, 4, 8}
	cases := []struct {
		name    string
		buckets []uint64
		n       uint64
		q       float64
		want    uint64
	}{
		{"empty", []uint64{0, 0, 0, 0, 0}, 0, 0.5, 0},
		{"q0-first-bucket", []uint64{2, 1, 0, 0, 0}, 3, 0, 1},
		{"q1-last-used", []uint64{2, 1, 0, 0, 0}, 3, 1, 2},
		{"overflow-reports-last-bound", []uint64{0, 0, 0, 0, 4}, 4, 0.5, 8},
		{"nan-clamps-low", []uint64{2, 1, 0, 0, 0}, 3, nan(), 1},
		{"above-one-clamps", []uint64{1, 0, 0, 1, 0}, 2, 3.5, 8},
	}
	for _, c := range cases {
		if got := QuantileFromDeltas(bounds, c.buckets, c.n, c.q); got != c.want {
			t.Errorf("%s: QuantileFromDeltas(q=%v) = %d, want %d", c.name, c.q, got, c.want)
		}
	}
}

func nan() float64 {
	z := 0.0
	return z / z
}

// BenchmarkSamplerAdvance measures the steady-state sampling path: one
// window close per op over a populated registry. It must report zero
// allocations — the warm-up pass grows every arena to its working size,
// Reset keeps the capacity, and the measured pass stays within it.
func BenchmarkSamplerAdvance(b *testing.B) {
	reg := obs.NewRegistry()
	counters := make([]*obs.Counter, 8)
	for i := range counters {
		counters[i] = reg.Counter(k("protocol_events_total", "finite", "finite.start", i))
	}
	lvl := reg.Level(k("flitnet_inflight_worms", "flitnet", "", -1))
	h := reg.Histogram(k("lat", "finite", "", 0), nil)
	s := New(reg, Config{Interval: 1})

	// Bound the retained window count: a long measured pass rotates the
	// timeline once the arenas reach their working size, the way a
	// long-lived server would. Reset keeps capacity, so the rotation
	// itself is also allocation-free.
	const rotateAt = 1 << 15
	cycle := uint64(0)
	loop := func(n int) {
		for i := 0; i < n; i++ {
			cycle++
			counters[i%len(counters)].Inc()
			lvl.Set(int64(i & 7))
			h.Observe(uint64(i % 300))
			s.Advance(cycle)
			if s.Windows() >= rotateAt {
				s.Reset(cycle)
			}
		}
	}
	loop(rotateAt) // grow every arena to its steady working size
	s.Reset(cycle)
	b.ReportAllocs()
	b.ResetTimer()
	loop(b.N)
}
