// Package timeline adds the time axis the aggregate registry collapses: a
// windowed sampler that, at a fixed simulated-cycle interval, closes a
// window over every registry series and stores the delta the window
// accumulated. The result is deterministic time-series telemetry — rates,
// windowed histogram quantiles, per-window Role×Feature×Category
// breakdowns, and phase segmentation — derived purely from simulated time,
// so dense and event-driven engines (and any host parallelism) produce
// byte-identical timelines.
//
// The steady-state sampling path allocates nothing: tracked series live in
// flat slices, window contents are delta-encoded into shared arenas, and
// the registry is rescanned for new series only when its series counts
// change (a cold path — instrumented layers create their series at attach
// time). Windows an idle fast-forward jumped over contain no mutations by
// construction, so sampling them late yields the same zero-delta windows a
// cycle-by-cycle run records.
package timeline

import (
	"fmt"

	"msglayer/internal/obs"
)

// DefaultInterval is the window width in simulated cycles when the config
// leaves it zero.
const DefaultInterval = 100

// DefaultMaxWindows bounds retained windows when the config leaves the cap
// zero, so an unbounded run cannot exhaust memory. Windows past the cap
// are counted in Dropped rather than stored, mirroring the tracer.
const DefaultMaxWindows = 1 << 20

// Config tunes a Sampler. The zero value selects the defaults.
type Config struct {
	// Interval is the window width in simulated cycles (0 = DefaultInterval).
	Interval uint64
	// MaxWindows caps retained windows (0 = DefaultMaxWindows).
	MaxWindows int
	// Quantile999 adds a windowed p99.9 to every exported histogram delta
	// (and marks the timeline's quantile list accordingly). Off by default
	// so existing timelines, goldens, and digests stay byte-identical.
	Quantile999 bool
}

// ctrack is one tracked counter: the live series and the value already
// attributed to closed windows.
type ctrack struct {
	c    *obs.Counter
	prev uint64
}

// ltrack is one tracked level (gauge). Levels are sampled, not
// delta-encoded: a window stores the value only when it differs from the
// last stored one, so an unchanged gauge costs nothing per window.
type ltrack struct {
	l    *obs.Level
	last int64
	seen bool
}

// htrack is one tracked histogram with its previous cumulative state; the
// per-bucket copy lets a window carry the bucket-count deltas windowed
// quantiles are computed from.
type htrack struct {
	h              *obs.Histogram
	prevN, prevSum uint64
	prevBuckets    []uint64
}

// windowHdr is one closed window: its cycle range and the half-open slices
// of the delta arenas holding its contents.
type windowHdr struct {
	start, end uint64
	c0, c1     int
	l0, l1     int
	h0, h1     int
}

// cdelta is one counter's increment within a window.
type cdelta struct {
	series int32
	delta  uint64
}

// lsample is one level's value at a window close.
type lsample struct {
	series int32
	value  int64
}

// hdelta is one histogram's within-window activity; its bucket-count
// deltas live at buckets[b0 : b0+len(bounds)+1].
type hdelta struct {
	series   int32
	dn, dsum uint64
	b0       int32
}

// Sampler accumulates a delta-encoded metrics timeline from one registry.
// Like the rest of the simulator it is single-threaded by design.
type Sampler struct {
	reg        *obs.Registry
	interval   uint64
	maxWindows int

	// Tracked series, append-only so arena records keep stable ids across
	// rescans. The idx maps are touched only on the rescan cold path.
	ctr     []ctrack
	lvl     []ltrack
	hst     []htrack
	ctrKeys []obs.Key
	lvlKeys []obs.Key
	hstKeys []obs.Key
	ctrIdx  map[obs.Key]int32
	lvlIdx  map[obs.Key]int32
	hstIdx  map[obs.Key]int32

	windows []windowHdr
	cds     []cdelta
	lss     []lsample
	hds     []hdelta
	buckets []uint64

	next    uint64 // next window boundary (the end of the open window)
	dropped uint64
	flushed bool
	q999    bool

	// onWindow, when set, fires after each window is stored (never for
	// windows dropped at the cap), with the new window's index. It is the
	// subscription point for streaming consumers (the SLO monitor); the
	// callback runs on the sampling path, so it must not mutate the sampler.
	onWindow func(idx int)
}

// New builds a sampler over reg. Series already in the registry are
// baselined at zero, not at their current values, so per-window deltas sum
// to the end-of-run totals even when the sampler attaches after the series
// were created (the usual case: layers create series at attach time).
func New(reg *obs.Registry, cfg Config) *Sampler {
	if cfg.Interval == 0 {
		cfg.Interval = DefaultInterval
	}
	if cfg.MaxWindows == 0 {
		cfg.MaxWindows = DefaultMaxWindows
	}
	s := &Sampler{
		reg:        reg,
		interval:   cfg.Interval,
		maxWindows: cfg.MaxWindows,
		next:       cfg.Interval,
		q999:       cfg.Quantile999,
		ctrIdx:     make(map[obs.Key]int32),
		lvlIdx:     make(map[obs.Key]int32),
		hstIdx:     make(map[obs.Key]int32),
	}
	s.rescan()
	return s
}

// Interval returns the configured window width in cycles.
func (s *Sampler) Interval() uint64 { return s.interval }

// SetWindowListener registers fn to run after every stored window, with the
// window's index. One listener is supported; nil detaches. Dropped windows
// (past the cap) never notify — the stream a listener sees is exactly the
// stream Snapshot exports.
func (s *Sampler) SetWindowListener(fn func(idx int)) { s.onWindow = fn }

// Windows returns the number of closed windows.
func (s *Sampler) Windows() int { return len(s.windows) }

// Dropped returns how many windows were discarded after the cap filled.
func (s *Sampler) Dropped() uint64 { return s.dropped }

// Advance moves the sampler's clock to the simulated cycle now, closing
// every window whose boundary was reached. The caller invokes it after the
// mutations of cycle `now` and before those of any later cycle; jumps
// (idle fast-forward, batched control-network rounds) close all the
// intervening windows in one call, each holding exactly the deltas its
// cycle range accumulated — zero for the windows inside the jump.
func (s *Sampler) Advance(now uint64) {
	if s.flushed {
		return
	}
	for s.next <= now {
		s.sample(s.next-s.interval, s.next)
		s.next += s.interval
	}
}

// Flush closes the timeline at cycle now: any remaining full windows are
// closed, then a final partial window covers the tail past the last
// boundary. After Flush the sampler is terminal; further Advance calls are
// no-ops and Reconcile can audit the stream against the registry.
func (s *Sampler) Flush(now uint64) {
	if s.flushed {
		return
	}
	s.Advance(now)
	if start := s.next - s.interval; now > start {
		s.sample(start, now)
	}
	s.flushed = true
}

// Reset discards all closed windows, keeping their capacity, re-baselines
// every tracked series at its current value, and restarts the clock at the
// first boundary after now. It exists for steady-state reuse (benchmarks,
// long-lived servers rotating timelines) and allocates nothing unless the
// registry grew; a reset sampler no longer reconciles against registry
// totals, which include pre-reset history.
func (s *Sampler) Reset(now uint64) {
	s.windows = s.windows[:0]
	s.cds = s.cds[:0]
	s.lss = s.lss[:0]
	s.hds = s.hds[:0]
	s.buckets = s.buckets[:0]
	s.dropped = 0
	s.flushed = false
	s.next = now - now%s.interval + s.interval
	if c, l, h := s.reg.SeriesCounts(); c != len(s.ctr) || l != len(s.lvl) || h != len(s.hst) {
		s.rescan()
	}
	for i := range s.ctr {
		s.ctr[i].prev = s.ctr[i].c.Value()
	}
	for i := range s.lvl {
		s.lvl[i].seen = false
	}
	for i := range s.hst {
		t := &s.hst[i]
		t.prevN, t.prevSum = t.h.Count(), t.h.Sum()
		copy(t.prevBuckets, t.h.BucketCounts())
	}
}

// sample closes one window covering cycles (start, end].
func (s *Sampler) sample(start, end uint64) {
	if len(s.windows) >= s.maxWindows {
		s.dropped++
		return
	}
	if c, l, h := s.reg.SeriesCounts(); c != len(s.ctr) || l != len(s.lvl) || h != len(s.hst) {
		s.rescan()
	}
	c0, l0, h0 := len(s.cds), len(s.lss), len(s.hds)
	for i := range s.ctr {
		t := &s.ctr[i]
		if v := t.c.Value(); v != t.prev {
			s.cds = append(s.cds, cdelta{series: int32(i), delta: v - t.prev})
			t.prev = v
		}
	}
	for i := range s.lvl {
		t := &s.lvl[i]
		if v := t.l.Value(); !t.seen || v != t.last {
			s.lss = append(s.lss, lsample{series: int32(i), value: v})
			t.last, t.seen = v, true
		}
	}
	for i := range s.hst {
		t := &s.hst[i]
		n, sum := t.h.Count(), t.h.Sum()
		if n == t.prevN {
			continue
		}
		b0 := len(s.buckets)
		for j, c := range t.h.BucketCounts() {
			s.buckets = append(s.buckets, c-t.prevBuckets[j])
			t.prevBuckets[j] = c
		}
		s.hds = append(s.hds, hdelta{series: int32(i), dn: n - t.prevN, dsum: sum - t.prevSum, b0: int32(b0)})
		t.prevN, t.prevSum = n, sum
	}
	s.windows = append(s.windows, windowHdr{
		start: start, end: end,
		c0: c0, c1: len(s.cds),
		l0: l0, l1: len(s.lss),
		h0: h0, h1: len(s.hds),
	})
	if s.onWindow != nil {
		s.onWindow(len(s.windows) - 1)
	}
}

// WindowBounds returns the cycle range (start, end] of stored window idx.
func (s *Sampler) WindowBounds(idx int) (start, end uint64) {
	w := &s.windows[idx]
	return w.start, w.end
}

// CounterSeries returns the number of tracked counter series; CounterKeyAt
// returns the key of series i. Series ids are stable across rescans, so a
// consumer can cache per-series state and refresh only when the count grows.
func (s *Sampler) CounterSeries() int           { return len(s.ctr) }
func (s *Sampler) CounterKeyAt(i int) obs.Key   { return s.ctrKeys[i] }
func (s *Sampler) HistogramSeries() int         { return len(s.hst) }
func (s *Sampler) HistogramKeyAt(i int) obs.Key { return s.hstKeys[i] }

// EachWindowCounter calls fn for every counter that moved in stored window
// idx, in tracking (series id) order. It allocates nothing; fn must not
// mutate the sampler.
func (s *Sampler) EachWindowCounter(idx int, fn func(series int, delta uint64)) {
	w := &s.windows[idx]
	for _, d := range s.cds[w.c0:w.c1] {
		fn(int(d.series), d.delta)
	}
}

// EachWindowHistogram calls fn for every histogram that observed values in
// stored window idx, in tracking order, with the window's own bucket-count
// deltas (aligned to bounds, plus the trailing overflow bucket). It
// allocates nothing; fn must not mutate the sampler or retain the slices.
func (s *Sampler) EachWindowHistogram(idx int, fn func(series int, dn, dsum uint64, bounds, buckets []uint64)) {
	w := &s.windows[idx]
	for _, d := range s.hds[w.h0:w.h1] {
		bounds := s.hst[d.series].h.Bounds()
		fn(int(d.series), d.dn, d.dsum, bounds, s.buckets[d.b0:int(d.b0)+len(bounds)+1])
	}
}

// rescan folds newly created registry series into the tracked set (cold
// path). New series baseline at zero so their whole history lands in the
// window that discovers them — deltas still sum to totals. Appended keys
// arrive in the registry's deterministic export order, so tracking order
// (and with it every arena and export) is deterministic too.
func (s *Sampler) rescan() {
	for _, k := range s.reg.CounterKeys() {
		if _, ok := s.ctrIdx[k]; ok {
			continue
		}
		s.ctrIdx[k] = int32(len(s.ctr))
		s.ctr = append(s.ctr, ctrack{c: s.reg.Counter(k)})
		s.ctrKeys = append(s.ctrKeys, k)
	}
	for _, k := range s.reg.LevelKeys() {
		if _, ok := s.lvlIdx[k]; ok {
			continue
		}
		s.lvlIdx[k] = int32(len(s.lvl))
		s.lvl = append(s.lvl, ltrack{l: s.reg.Level(k)})
		s.lvlKeys = append(s.lvlKeys, k)
	}
	for _, k := range s.reg.HistogramKeys() {
		if _, ok := s.hstIdx[k]; ok {
			continue
		}
		h := s.reg.Histogram(k, nil)
		s.hstIdx[k] = int32(len(s.hst))
		s.hst = append(s.hst, htrack{h: h, prevBuckets: make([]uint64, len(h.BucketCounts()))})
		s.hstKeys = append(s.hstKeys, k)
	}
}

// Reconcile audits the closed timeline against the registry: every counter
// and histogram's per-window deltas must sum exactly to its end-of-run
// total, every level's last stored sample must equal its current value,
// and no series may have appeared after the flush. It refuses unflushed or
// window-dropping samplers — their timelines are knowingly partial.
func (s *Sampler) Reconcile() error {
	if s.dropped > 0 {
		return fmt.Errorf("timeline: %d windows dropped at the %d-window cap; totals cannot reconcile", s.dropped, s.maxWindows)
	}
	if !s.flushed {
		return fmt.Errorf("timeline: sampler not flushed; the open window's deltas are unaccounted")
	}
	if c, l, h := s.reg.SeriesCounts(); c != len(s.ctr) || l != len(s.lvl) || h != len(s.hst) {
		return fmt.Errorf("timeline: registry grew after flush (%d/%d/%d series tracked, %d/%d/%d present)",
			len(s.ctr), len(s.lvl), len(s.hst), c, l, h)
	}
	csum := make([]uint64, len(s.ctr))
	for _, d := range s.cds {
		csum[d.series] += d.delta
	}
	for i := range s.ctr {
		if got, want := csum[i], s.ctr[i].c.Value(); got != want {
			return fmt.Errorf("timeline: counter %s: window deltas sum to %d, registry total %d", s.ctrKeys[i], got, want)
		}
	}
	for i := range s.lvl {
		t := &s.lvl[i]
		if !t.seen || t.last != t.l.Value() {
			return fmt.Errorf("timeline: level %s: last sample %d (seen=%v), registry value %d", s.lvlKeys[i], t.last, t.seen, t.l.Value())
		}
	}
	hn := make([]uint64, len(s.hst))
	hsum := make([]uint64, len(s.hst))
	for _, d := range s.hds {
		hn[d.series] += d.dn
		hsum[d.series] += d.dsum
	}
	for i := range s.hst {
		t := &s.hst[i]
		if hn[i] != t.h.Count() || hsum[i] != t.h.Sum() {
			return fmt.Errorf("timeline: histogram %s: window deltas sum to n=%d sum=%d, registry n=%d sum=%d",
				s.hstKeys[i], hn[i], hsum[i], t.h.Count(), t.h.Sum())
		}
	}
	return nil
}
