package obs

import (
	"fmt"
	"math"
	"sort"
)

// Key identifies one metric time series: a metric name plus the label set
// the observability layer supports (node, protocol, event). Unused labels
// stay at their zero values (Node: -1 means "not node-scoped").
type Key struct {
	// Name is the metric name, e.g. "packets_sent_total".
	Name string
	// Node is the node the series is attributed to; -1 for machine-wide
	// series.
	Node int
	// Proto is the protocol or subsystem label ("finite", "stream",
	// "crfinite", "crstream", "cmam", "net", "ctrlnet", ...); empty when
	// the metric is not protocol-scoped.
	Proto string
	// Event is the protocol event-name label, used by the per-event
	// counters; empty otherwise.
	Event string
}

// String renders the key in Prometheus exposition style.
func (k Key) String() string {
	labels := k.labelString()
	if labels == "" {
		return k.Name
	}
	return k.Name + "{" + labels + "}"
}

// labelString renders only the label set (no braces), empty if unlabeled.
func (k Key) labelString() string {
	s := ""
	if k.Node >= 0 {
		s += fmt.Sprintf("node=%q", fmt.Sprint(k.Node))
	}
	if k.Proto != "" {
		if s != "" {
			s += ","
		}
		s += fmt.Sprintf("proto=%q", k.Proto)
	}
	if k.Event != "" {
		if s != "" {
			s += ","
		}
		s += fmt.Sprintf("event=%q", k.Event)
	}
	return s
}

// Counter is a monotonically increasing metric. Like the rest of the
// simulator it is single-threaded by design and not safe for concurrent
// mutation.
type Counter struct{ v uint64 }

// Inc adds one.
func (c *Counter) Inc() { c.v++ }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v += n }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v }

// Level is a gauge-style metric: a value that can go up and down (queue
// depths, open segments). Named Level rather than Gauge to avoid colliding
// with the instruction-count cost.Gauge that the rest of the repo calls
// "the gauge".
type Level struct{ v int64 }

// Set overwrites the value.
func (l *Level) Set(v int64) { l.v = v }

// Add adjusts the value by delta (may be negative).
func (l *Level) Add(delta int64) { l.v += delta }

// Value returns the current value.
func (l *Level) Value() int64 { return l.v }

// DefaultBounds is the fixed exponential bucket layout used when a
// histogram is created without explicit bounds. Values are in the metric's
// own unit (simulated rounds for latencies, packets for depths).
var DefaultBounds = []uint64{1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 4096, 16384, 65536}

// Histogram is a fixed-bucket histogram. Bucket i counts observations
// <= Bounds[i]; one extra bucket counts the overflow (+Inf).
type Histogram struct {
	bounds []uint64
	counts []uint64 // len(bounds)+1, last is +Inf
	sum    uint64
	n      uint64
	max    uint64
}

// NewHistogram builds a histogram with the given ascending upper bounds
// (nil means DefaultBounds).
func NewHistogram(bounds []uint64) *Histogram {
	if len(bounds) == 0 {
		bounds = DefaultBounds
	}
	return &Histogram{bounds: bounds, counts: make([]uint64, len(bounds)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v uint64) {
	i := sort.Search(len(h.bounds), func(i int) bool { return v <= h.bounds[i] })
	h.counts[i]++
	h.sum += v
	h.n++
	if v > h.max {
		h.max = v
	}
}

// Max returns the largest value observed (0 before any observation).
func (h *Histogram) Max() uint64 { return h.max }

// Quantile returns an upper estimate of the q-quantile (0 <= q <= 1) from
// the fixed buckets: the smallest bucket upper bound whose cumulative count
// covers rank ceil(q*n), never exceeding the exact maximum observed (a
// bucket bound above the max would over-report; the max is known exactly).
// Ranks falling into the +Inf overflow bucket report the maximum for the
// same reason. An empty histogram reports 0 for every q; out-of-range and
// NaN q clamp to the nearest valid quantile (NaN to 0).
func (h *Histogram) Quantile(q float64) uint64 {
	if h.n == 0 {
		return 0
	}
	if !(q >= 0) { // also catches NaN, which fails every comparison
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := uint64(math.Ceil(q * float64(h.n)))
	if rank == 0 {
		rank = 1
	}
	var acc uint64
	for i, c := range h.counts {
		acc += c
		if acc >= rank {
			if i < len(h.bounds) && h.bounds[i] < h.max {
				return h.bounds[i]
			}
			return h.max // overflow bucket, or a bound past the true max
		}
	}
	return h.max
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.n }

// Sum returns the sum of observations.
func (h *Histogram) Sum() uint64 { return h.sum }

// Bounds returns the bucket upper bounds (excluding +Inf).
func (h *Histogram) Bounds() []uint64 { return h.bounds }

// BucketCounts returns the per-bucket (non-cumulative) counts, one per
// bound plus the final +Inf bucket. The slice is the histogram's own
// storage; callers must not mutate it. The timeline sampler diffs it
// window over window without allocating.
func (h *Histogram) BucketCounts() []uint64 { return h.counts }

// Cumulative returns the cumulative bucket counts, one per bound plus the
// final +Inf bucket — the Prometheus exposition layout.
func (h *Histogram) Cumulative() []uint64 {
	out := make([]uint64, len(h.counts))
	var acc uint64
	for i, c := range h.counts {
		acc += c
		out[i] = acc
	}
	return out
}

// Registry holds all metric series of one observability hub, keyed by node
// and protocol. Instrumented layers resolve their series once (at attach
// time) and hold the returned pointers, keeping the per-packet path free of
// map lookups and allocations.
type Registry struct {
	counters map[Key]*Counter
	levels   map[Key]*Level
	hists    map[Key]*Histogram
	// quantiles customizes the bucket-derived quantiles both exporters
	// emit; nil selects DefaultQuantiles, keeping historical output stable.
	quantiles []ExportQuantile
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[Key]*Counter),
		levels:   make(map[Key]*Level),
		hists:    make(map[Key]*Histogram),
	}
}

// Counter returns the counter for the key, creating it at zero on first
// use. The returned pointer is stable for the registry's lifetime.
func (r *Registry) Counter(k Key) *Counter {
	c, ok := r.counters[k]
	if !ok {
		c = &Counter{}
		r.counters[k] = c
	}
	return c
}

// Level returns the gauge-style series for the key, creating it on first
// use.
func (r *Registry) Level(k Key) *Level {
	l, ok := r.levels[k]
	if !ok {
		l = &Level{}
		r.levels[k] = l
	}
	return l
}

// Histogram returns the histogram for the key, creating it with the given
// bounds (nil = DefaultBounds) on first use. Bounds are fixed at creation;
// later calls ignore the argument.
func (r *Registry) Histogram(k Key, bounds []uint64) *Histogram {
	h, ok := r.hists[k]
	if !ok {
		h = NewHistogram(bounds)
		r.hists[k] = h
	}
	return h
}

// CounterKeys returns every counter key in the registry's deterministic
// export order, for consumers that audit the full counter set (the
// critical-path reconciler cross-checks each against the trace).
func (r *Registry) CounterKeys() []Key { return sortedKeys(r.counters) }

// LevelKeys returns every level key in deterministic export order.
func (r *Registry) LevelKeys() []Key { return sortedKeys(r.levels) }

// HistogramKeys returns every histogram key in deterministic export order.
func (r *Registry) HistogramKeys() []Key { return sortedKeys(r.hists) }

// SeriesCounts returns the number of counter, level, and histogram series.
// It is a cheap change signature: the timeline sampler compares it at each
// window boundary and rescans (cold path) only when a new series appeared.
func (r *Registry) SeriesCounts() (counters, levels, hists int) {
	return len(r.counters), len(r.levels), len(r.hists)
}

// CounterValue returns the value of a counter, zero if it was never
// created. Convenient for tests and reports.
func (r *Registry) CounterValue(k Key) uint64 {
	if c, ok := r.counters[k]; ok {
		return c.Value()
	}
	return 0
}

// sortedKeys returns map keys in deterministic order.
func sortedKeys[V any](m map[Key]V) []Key {
	keys := make([]Key, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		if a.Name != b.Name {
			return a.Name < b.Name
		}
		if a.Proto != b.Proto {
			return a.Proto < b.Proto
		}
		if a.Node != b.Node {
			return a.Node < b.Node
		}
		return a.Event < b.Event
	})
	return keys
}
