package obs

// Phase classifies a trace event, following the Chrome trace-event
// phase vocabulary.
type Phase byte

const (
	// PhaseInstant is a point event ("i").
	PhaseInstant Phase = 'i'
	// PhaseComplete is a duration event with an explicit length ("X").
	PhaseComplete Phase = 'X'
)

// TraceEvent is one structured event recorded by the tracer. Timestamps
// are in simulated time: TS counts tracer time units, where one scheduler
// round of an observed machine run spans RoundUnits units and events
// within a round occupy consecutive units in emission order.
type TraceEvent struct {
	// TS is the simulated-time timestamp, strictly monotonic across the
	// recorded stream.
	TS uint64
	// Round is the scheduler round the event occurred in.
	Round uint64
	// Seq is the event's position in emission order, from 1.
	Seq uint64
	// Node is the emitting node; -1 for machine- or network-wide events.
	Node int
	// Name is the event name ("finite.packet.sent", "net.backpressure").
	Name string
	// Proto is the protocol/subsystem the event belongs to.
	Proto string
	// Axis is the paper Feature axis the event is attributed to.
	Axis Axis
	// Dur is the event length in time units (PhaseComplete only).
	Dur uint64
	// Phase distinguishes instant events from spans.
	Phase Phase
	// MsgID is the causal message identity the event belongs to; 0 when
	// the event is not attributable to a message.
	MsgID uint64
	// PktID is the packet identity within the message; 0 when unknown.
	PktID uint64
	// SpanID identifies a PhaseComplete span; 0 for instants.
	SpanID uint64
	// Parent is the enclosing span's SpanID; 0 at the root.
	Parent uint64
}

// RoundUnits is the width of one scheduler round in tracer time units.
// Exported traces use one unit = one microsecond, so a round reads as
// 100 µs on a Chrome/perfetto timeline.
const RoundUnits = 100

// DefaultTraceLimit is the default cap on retained trace events.
const DefaultTraceLimit = 1 << 20

// Tracer records structured events with simulated-time timestamps. It
// generalizes internal/trace (which reconstructs the paper's four figure
// diagrams) to arbitrary runs: every named protocol event, with node,
// protocol, and Feature-axis attribution, in a form exportable to the
// Chrome trace-event format.
//
// Like the rest of the simulator the tracer is single-threaded by design.
type Tracer struct {
	events []TraceEvent
	total  uint64 // events ever offered, including dropped
	lastTS uint64
	limit  int
}

// NewTracer returns an empty tracer. limit bounds the number of retained
// events (0 = DefaultTraceLimit); once full, further events are counted
// but dropped so long runs cannot exhaust memory.
func NewTracer(limit int) *Tracer {
	if limit <= 0 {
		limit = DefaultTraceLimit
	}
	return &Tracer{limit: limit}
}

// Record appends an event, assigning its sequence number and a strictly
// monotonic timestamp derived from the round: the first event of round r
// lands at r*RoundUnits, later events in the same round at consecutive
// units. Dur-carrying (PhaseComplete) events keep the caller's TS/Dur.
func (t *Tracer) Record(e TraceEvent) {
	t.total++
	if len(t.events) >= t.limit {
		return
	}
	e.Seq = t.total
	if e.Phase == 0 {
		e.Phase = PhaseInstant
	}
	if e.Phase != PhaseComplete {
		ts := e.Round * RoundUnits
		if ts <= t.lastTS && t.total > 1 {
			ts = t.lastTS + 1
		}
		e.TS = ts
		t.lastTS = ts
	} else if e.TS+e.Dur > t.lastTS {
		t.lastTS = e.TS + e.Dur
	}
	t.events = append(t.events, e)
}

// Events returns the recorded events in emission order. The slice is the
// tracer's own storage; callers must not mutate it.
func (t *Tracer) Events() []TraceEvent { return t.events }

// Len returns the number of retained events.
func (t *Tracer) Len() int { return len(t.events) }

// Dropped returns how many events were discarded after the tracer filled.
func (t *Tracer) Dropped() uint64 { return t.total - uint64(len(t.events)) }

// Now returns the last assigned timestamp — the tracer's current position
// in simulated time.
func (t *Tracer) Now() uint64 { return t.lastTS }

// Reset clears the recorded stream, keeping the configured limit.
func (t *Tracer) Reset() {
	t.events = nil
	t.total = 0
	t.lastTS = 0
}
