package obs

import (
	"bytes"
	"strings"
	"testing"
)

// quantileFixture fills one histogram with 1000 observations 0..999 so the
// tail quantiles land in distinct buckets.
func quantileFixture(t *testing.T) *Registry {
	t.Helper()
	reg := NewRegistry()
	h := reg.Histogram(Key{Name: "transfer_latency_rounds", Node: -1, Proto: "fixture"}, nil)
	for v := uint64(0); v < 1000; v++ {
		h.Observe(v)
	}
	return reg
}

// TestExportQuantilesDefault pins the default exporter surface to
// p50/p90/p99 — the contract every recorded golden and perfreg digest
// depends on.
func TestExportQuantilesDefault(t *testing.T) {
	reg := quantileFixture(t)
	var b bytes.Buffer
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"transfer_latency_rounds_p50", "transfer_latency_rounds_p90", "transfer_latency_rounds_p99"} {
		if !strings.Contains(out, want) {
			t.Errorf("default Prometheus export missing %s", want)
		}
	}
	if strings.Contains(out, "p999") {
		t.Errorf("default Prometheus export leaks p999:\n%s", out)
	}
	for _, m := range reg.JSONMetrics() {
		if m.Kind != "histogram" {
			continue
		}
		if len(m.Quantiles) != 3 {
			t.Errorf("default JSON quantiles = %v, want exactly p50/p90/p99", m.Quantiles)
		}
		if _, ok := m.Quantiles["p999"]; ok {
			t.Errorf("default JSON export leaks p999: %v", m.Quantiles)
		}
	}
}

// TestExportQuantilesExtended: opting in to ExtendedQuantiles adds p99.9 to
// both exporters without disturbing the default columns.
func TestExportQuantilesExtended(t *testing.T) {
	reg := quantileFixture(t)
	reg.SetExportQuantiles(ExtendedQuantiles())

	var b bytes.Buffer
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"transfer_latency_rounds_p50", "transfer_latency_rounds_p99", "transfer_latency_rounds_p999"} {
		if !strings.Contains(out, want) {
			t.Errorf("extended Prometheus export missing %s:\n%s", want, out)
		}
	}

	var p99, p999 uint64
	for _, m := range reg.JSONMetrics() {
		if m.Kind != "histogram" {
			continue
		}
		if len(m.Quantiles) != 4 {
			t.Fatalf("extended JSON quantiles = %v, want p50/p90/p99/p999", m.Quantiles)
		}
		p99, p999 = m.Quantiles["p99"], m.Quantiles["p999"]
	}
	if p999 < p99 || p999 == 0 {
		t.Errorf("p999 = %d, p99 = %d: tail quantile should dominate", p999, p99)
	}

	// Resetting to nil restores the default surface.
	reg.SetExportQuantiles(nil)
	for _, m := range reg.JSONMetrics() {
		if m.Kind == "histogram" && len(m.Quantiles) != 3 {
			t.Errorf("after reset quantiles = %v, want defaults", m.Quantiles)
		}
	}
}

// TestTimelineQuantile999 lives in the timeline package; here we only pin
// that DefaultQuantiles/ExtendedQuantiles agree on the shared prefix.
func TestQuantileSetsSharePrefix(t *testing.T) {
	def, ext := DefaultQuantiles(), ExtendedQuantiles()
	if len(ext) != len(def)+1 {
		t.Fatalf("ExtendedQuantiles adds %d entries, want exactly 1", len(ext)-len(def))
	}
	for i, q := range def {
		if ext[i] != q {
			t.Errorf("extended[%d] = %+v, want %+v", i, ext[i], q)
		}
	}
	if last := ext[len(ext)-1]; last.Suffix != "p999" || last.Q != 0.999 {
		t.Errorf("extended tail = %+v, want p999/0.999", last)
	}
}
