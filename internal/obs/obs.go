// Package obs is the runtime observability layer of the simulator: a
// metrics registry (counters, levels, fixed-bucket histograms keyed by
// node and protocol), a structured event tracer with simulated-time
// timestamps, and exporters (Prometheus-style text, JSON, and Chrome
// trace-event JSON loadable in perfetto).
//
// Where internal/cost attributes *static instruction charges* to the
// paper's Feature axes, obs attributes the simulator's *dynamic behavior*
// — packets sent/received/dropped, backpressure stalls, retries, queue
// depths, segment allocations, per-transfer step latencies — to the same
// axes, so runtime timelines line up with the instruction-count tables.
//
// The layer is built to cost nothing when unused: instrumented code holds
// nil scope pointers by default, every scope method nil-checks its
// receiver, and an attached hub can be disabled atomically. With no hub
// attached the per-packet path performs no map lookups and no allocations
// (see the allocation tests).
//
// Like the rest of the simulator, an enabled hub is single-threaded by
// design; only the enable flag is atomic.
package obs

import "sync/atomic"

// Hub bundles one run's metrics registry and event tracer and hands out
// the per-node / per-network scopes instrumented layers record through.
type Hub struct {
	// Metrics is the run's metric registry.
	Metrics *Registry
	// Trace is the run's structured event stream.
	Trace *Tracer

	enabled atomic.Bool
	round   uint64
	onTick  func(round uint64)
	nodes   map[int]*NodeScope

	// Causal-identity allocators for per-message span tracing: message,
	// packet, and span ids are hub-global so one id never names two things
	// within a run, and allocation order is deterministic (single-threaded
	// simulator), so traces are reproducible byte for byte.
	nextMsg, nextPkt, nextSpan uint64
}

// NewHub returns an enabled hub with an empty registry and tracer.
func NewHub() *Hub {
	h := &Hub{
		Metrics: NewRegistry(),
		Trace:   NewTracer(0),
		nodes:   make(map[int]*NodeScope),
	}
	h.enabled.Store(true)
	return h
}

// SetEnabled atomically enables or disables recording. Disabled scopes
// return immediately from every record call.
func (h *Hub) SetEnabled(on bool) { h.enabled.Store(on) }

// Enabled reports whether the hub is recording.
func (h *Hub) Enabled() bool { return h.enabled.Load() }

// Tick advances simulated time by one scheduler round. The observed
// machine run loop calls it once per round, at the end of the round, so
// the listener (if any) observes every mutation the round made.
func (h *Hub) Tick() {
	h.round++
	if h.onTick != nil {
		h.onTick(h.round)
	}
}

// SetTickListener installs (or clears, with nil) a callback invoked after
// every Tick with the new round number. The timeline sampler hangs off it
// to close metric windows on round boundaries.
func (h *Hub) SetTickListener(fn func(round uint64)) { h.onTick = fn }

// Round returns the current scheduler round.
func (h *Hub) Round() uint64 { return h.round }

// NodeScope returns the recording scope for a node, memoized so repeated
// attachment (several machines sharing one hub) reuses series.
func (h *Hub) NodeScope(node int) *NodeScope {
	if s, ok := h.nodes[node]; ok {
		return s
	}
	s := &NodeScope{
		hub:         h,
		node:        node,
		packetsSent: h.Metrics.Counter(Key{Name: "packets_sent_total", Node: node, Proto: "cmam"}),
		packetsRecv: h.Metrics.Counter(Key{Name: "packets_received_total", Node: node, Proto: "cmam"}),
		segAlloc:    h.Metrics.Counter(Key{Name: "segment_allocs_total", Node: node, Proto: "cmam"}),
		segFree:     h.Metrics.Counter(Key{Name: "segment_frees_total", Node: node, Proto: "cmam"}),
		segOpen:     h.Metrics.Level(Key{Name: "segments_open", Node: node, Proto: "cmam"}),
		sendDepth:   h.Metrics.Level(Key{Name: "send_queue_depth", Node: node}),
		sendHist:    h.Metrics.Histogram(Key{Name: "send_queue_depth_hist", Node: node}, nil),
		recvDepth:   h.Metrics.Level(Key{Name: "recv_queue_depth", Node: node}),
		recvHist:    h.Metrics.Histogram(Key{Name: "recv_queue_depth_hist", Node: node}, nil),
		events:      make(map[string]*eventEntry),
		lastRound:   make(map[string]uint64),
		spans:       make(map[string]spanStart),
	}
	h.nodes[node] = s
	return s
}

// eventEntry caches everything the hot event path needs for one event
// name: the per-event counter, the axis/protocol attribution, the step
// latency histogram for the event's protocol, and the span rule if any.
type eventEntry struct {
	counter *Counter
	axis    Axis
	proto   string
	stepLat *Histogram
	rule    spanRule
	hasRule bool
	spanLat *Histogram // transfer latency, end rules only
}

// spanStart remembers where an open span began, and the causal identity
// captured at the opening event so the close attributes the whole span to
// the message that started it.
type spanStart struct {
	ts     uint64
	round  uint64
	id     uint64 // span id, allocated at open
	parent uint64 // enclosing builder span at open, if any
	msg    uint64 // current message at open
}

// NodeScope records one node's dynamic behavior. The zero value of the
// *pointer* (nil) is the disabled state: every method nil-checks its
// receiver so instrumented code can call unconditionally.
type NodeScope struct {
	hub  *Hub
	node int

	packetsSent, packetsRecv *Counter
	segAlloc, segFree        *Counter
	segOpen                  *Level
	sendDepth, recvDepth     *Level
	sendHist, recvHist       *Histogram

	events    map[string]*eventEntry
	lastRound map[string]uint64 // per proto, for step latency
	spans     map[string]spanStart

	// Message context: the message and packet identity events on this node
	// are currently attributable to, plus the open builder-span stack (see
	// span.go). All three are plain fields mutated on the single simulator
	// thread, so context switches are two stores — no allocation.
	curMsg uint64
	curPkt uint64
	stack  []spanFrame
}

// define resolves the cached entry for a new event name (cold path).
func (s *NodeScope) define(name string) *eventEntry {
	proto := ProtoOfEvent(name)
	e := &eventEntry{
		counter: s.hub.Metrics.Counter(Key{Name: "protocol_events_total", Node: s.node, Proto: proto, Event: name}),
		axis:    AxisForEvent(name),
		proto:   proto,
		stepLat: s.hub.Metrics.Histogram(Key{Name: "step_latency_rounds", Node: s.node, Proto: proto}, nil),
	}
	if rule, ok := spanRules[name]; ok {
		e.rule, e.hasRule = rule, true
		if rule.end {
			e.spanLat = s.hub.Metrics.Histogram(Key{Name: "transfer_latency_rounds", Node: s.node, Proto: proto}, nil)
		}
	}
	s.events[name] = e
	return e
}

// Event records a named protocol event: it counts the event, samples the
// protocol's inter-event step latency, appends an instant trace event
// attributed to the event's Feature axis, and opens/closes transfer spans.
func (s *NodeScope) Event(name string) {
	if s == nil || !s.hub.enabled.Load() {
		return
	}
	e, ok := s.events[name]
	if !ok {
		e = s.define(name)
	}
	e.counter.Inc()
	round := s.hub.round
	if last, seen := s.lastRound[e.proto]; seen {
		e.stepLat.Observe(round - last)
	}
	s.lastRound[e.proto] = round
	s.hub.Trace.Record(TraceEvent{
		Round: round, Node: s.node, Name: name, Proto: e.proto, Axis: e.axis,
		MsgID: s.curMsg, PktID: s.curPkt, Parent: s.topSpan(),
	})
	if !e.hasRule {
		return
	}
	if !e.rule.end {
		s.spans[e.rule.span] = spanStart{
			ts:     s.hub.Trace.Now(),
			round:  round,
			id:     s.hub.newSpanID(),
			parent: s.topSpan(),
			msg:    s.curMsg,
		}
		return
	}
	begin, open := s.spans[e.rule.span]
	if !open {
		return // dedup/retransmission paths re-emit end events
	}
	delete(s.spans, e.rule.span)
	end := s.hub.Trace.Now()
	s.hub.Trace.Record(TraceEvent{
		Phase:  PhaseComplete,
		TS:     begin.ts,
		Dur:    end - begin.ts,
		Round:  begin.round,
		Node:   s.node,
		Name:   e.rule.span,
		Proto:  e.proto,
		Axis:   e.axis,
		MsgID:  begin.msg,
		SpanID: begin.id,
		Parent: begin.parent,
	})
	e.spanLat.Observe(round - begin.round)
}

// PacketSent counts one packet pushed through the node's CMAM send path.
func (s *NodeScope) PacketSent() {
	if s == nil || !s.hub.enabled.Load() {
		return
	}
	s.packetsSent.Inc()
}

// PacketReceived counts one packet dispatched by the node's CMAM poll
// path.
func (s *NodeScope) PacketReceived() {
	if s == nil || !s.hub.enabled.Load() {
		return
	}
	s.packetsRecv.Inc()
}

// SegmentAlloc counts one communication-segment allocation.
func (s *NodeScope) SegmentAlloc() {
	if s == nil || !s.hub.enabled.Load() {
		return
	}
	s.segAlloc.Inc()
	s.segOpen.Add(1)
}

// SegmentFree counts one communication-segment deallocation.
func (s *NodeScope) SegmentFree() {
	if s == nil || !s.hub.enabled.Load() {
		return
	}
	s.segFree.Inc()
	s.segOpen.Add(-1)
}

// SendQueueDepth samples the node's software send-queue depth (packets
// accepted by a protocol but not yet injected, e.g. under backpressure).
func (s *NodeScope) SendQueueDepth(depth int) {
	if s == nil || !s.hub.enabled.Load() {
		return
	}
	s.sendDepth.Set(int64(depth))
	s.sendHist.Observe(uint64(depth))
}

// RecvQueueDepth samples the packets buffered in the network toward the
// node (the observed machine run loop samples it once per round).
func (s *NodeScope) RecvQueueDepth(depth int) {
	if s == nil || !s.hub.enabled.Load() {
		return
	}
	s.recvDepth.Set(int64(depth))
	s.recvHist.Observe(uint64(depth))
}

// NetInstrumentable is implemented by network substrates that accept an
// observability scope (CM5Net, CRNet).
type NetInstrumentable interface {
	SetObserver(*NetScope)
}

// DepthProber is implemented by substrates that expose per-destination
// buffered-packet counts for queue-depth sampling.
type DepthProber interface {
	// QueueDepth returns the packets currently buffered toward a node.
	QueueDepth(node int) int
}

// NetScope records one network substrate's dynamic behavior. A nil scope
// is the disabled state; every method nil-checks its receiver so the
// substrate's packet path can call unconditionally.
type NetScope struct {
	hub  *Hub
	name string

	injected, delivered *Counter
	dropped, corrupt    *Counter
	backpressure        *Counter
	rejected, hwRetries *Counter
}

// NetScope returns the recording scope for a named network substrate.
func (h *Hub) NetScope(name string) *NetScope {
	k := func(metric string) Key { return Key{Name: metric, Node: -1, Proto: name} }
	return &NetScope{
		hub:          h,
		name:         name,
		injected:     h.Metrics.Counter(k("net_injected_total")),
		delivered:    h.Metrics.Counter(k("net_delivered_total")),
		dropped:      h.Metrics.Counter(k("net_dropped_total")),
		corrupt:      h.Metrics.Counter(k("net_corrupt_total")),
		backpressure: h.Metrics.Counter(k("net_backpressure_total")),
		rejected:     h.Metrics.Counter(k("net_rejected_total")),
		hwRetries:    h.Metrics.Counter(k("net_hw_retries_total")),
	}
}

// on reports whether the scope should record.
func (s *NetScope) on() bool { return s != nil && s.hub.enabled.Load() }

// anomaly records a counter bump plus an instant trace event attributed
// to a node — the network-level stalls and losses worth seeing on a
// timeline.
func (s *NetScope) anomaly(c *Counter, event string, node int) {
	c.Inc()
	s.hub.Trace.Record(TraceEvent{
		Round: s.hub.round,
		Node:  node,
		Name:  event,
		Proto: s.name,
		Axis:  AxisForEvent(event),
	})
}

// Injected counts one accepted injection.
func (s *NetScope) Injected() {
	if !s.on() {
		return
	}
	s.injected.Inc()
}

// Delivered counts one packet popped by a receiver.
func (s *NetScope) Delivered() {
	if !s.on() {
		return
	}
	s.delivered.Inc()
}

// Backpressure records an injection refused for lack of buffering toward
// dst.
func (s *NetScope) Backpressure(dst int) {
	if !s.on() {
		return
	}
	s.anomaly(s.backpressure, "net.backpressure", dst)
}

// Dropped records a packet lost to an injected fault on its way to dst.
func (s *NetScope) Dropped(dst int) {
	if !s.on() {
		return
	}
	s.anomaly(s.dropped, "net.dropped", dst)
}

// Corrupt records a delivered packet carrying a failed CRC.
func (s *NetScope) Corrupt(node int) {
	if !s.on() {
		return
	}
	s.anomaly(s.corrupt, "net.corrupt", node)
}

// Rejected records a header packet refused by dst (CR header rejection).
func (s *NetScope) Rejected(dst int) {
	if !s.on() {
		return
	}
	s.anomaly(s.rejected, "net.rejected", dst)
}

// HWRetries counts transparent hardware retries (CRNet).
func (s *NetScope) HWRetries(n uint64) {
	if !s.on() {
		return
	}
	s.hwRetries.Add(n)
}

// CtrlScope records control-network (combining tree) activity. A nil
// scope is the disabled state.
type CtrlScope struct {
	hub                *Hub
	combines, scans    *Counter
	busy, cyclesTicked *Counter
}

// CtrlScope returns the recording scope for the control network.
func (h *Hub) CtrlScope() *CtrlScope {
	k := func(metric string) Key { return Key{Name: metric, Node: -1, Proto: "ctrlnet"} }
	return &CtrlScope{
		hub:          h,
		combines:     h.Metrics.Counter(k("ctrlnet_combines_total")),
		scans:        h.Metrics.Counter(k("ctrlnet_scans_total")),
		busy:         h.Metrics.Counter(k("ctrlnet_busy_total")),
		cyclesTicked: h.Metrics.Counter(k("ctrlnet_cycles_total")),
	}
}

func (s *CtrlScope) on() bool { return s != nil && s.hub.enabled.Load() }

// CombineDone records a completed combine (reduction/barrier/broadcast)
// round.
func (s *CtrlScope) CombineDone() {
	if !s.on() {
		return
	}
	s.combines.Inc()
	s.hub.Trace.Record(TraceEvent{Round: s.hub.round, Node: -1, Name: "ctrlnet.combine.done", Proto: "ctrlnet"})
}

// ScanDone records a completed parallel-prefix round.
func (s *CtrlScope) ScanDone() {
	if !s.on() {
		return
	}
	s.scans.Inc()
	s.hub.Trace.Record(TraceEvent{Round: s.hub.round, Node: -1, Name: "ctrlnet.scan.done", Proto: "ctrlnet"})
}

// Busy counts contributions refused because the tree was occupied.
func (s *CtrlScope) Busy() {
	if !s.on() {
		return
	}
	s.busy.Inc()
}

// Ticks counts hardware cycles advanced.
func (s *CtrlScope) Ticks(n int) {
	if !s.on() {
		return
	}
	s.cyclesTicked.Add(uint64(n))
}
