package obs

import "strings"

// Axis is the paper's Feature axis an observed event is attributed to.
// The values mirror cost.Feature (Base, BufferMgmt, InOrder, FaultTol) so
// runtime timelines line up with the instruction-count tables; AxisOther
// covers events outside the paper's four features (user-level delivery,
// control-network traffic, ...).
type Axis uint8

const (
	// AxisOther marks events outside the paper's feature taxonomy.
	AxisOther Axis = iota
	// AxisBase is the unavoidable cost of data movement and NI access.
	AxisBase
	// AxisBufferMgmt is deadlock/overflow safety work.
	AxisBufferMgmt
	// AxisInOrder is in-order delivery work.
	AxisInOrder
	// AxisFaultTol is reliable-delivery work.
	AxisFaultTol
)

// String returns the axis label used in exports ("cat" in Chrome traces,
// the "axis" label in metrics).
func (a Axis) String() string {
	switch a {
	case AxisBase:
		return "base"
	case AxisBufferMgmt:
		return "buffer_mgmt"
	case AxisInOrder:
		return "in_order"
	case AxisFaultTol:
		return "fault_tol"
	default:
		return "other"
	}
}

// eventAxes attributes every named protocol event to a Feature axis,
// mirroring the instruction-charge attribution at the site that emits the
// event (see internal/protocols and internal/crmsg). Events not listed
// fall back to AxisOther.
var eventAxes = map[string]Axis{
	// Finite-sequence protocol on CMAM (Figure 3).
	"finite.start":         AxisBufferMgmt,
	"finite.allocreq.recv": AxisBufferMgmt,
	"finite.segment.alloc": AxisBufferMgmt,
	"finite.reply.sent":    AxisBufferMgmt,
	"finite.reply.recv":    AxisBufferMgmt,
	"finite.segment.free":  AxisBufferMgmt,
	"finite.packet.sent":   AxisBase,
	"finite.packet.recv":   AxisBase,
	"finite.backpressure":  AxisBufferMgmt,
	"finite.ack.sent":      AxisFaultTol,
	"finite.ack.recv":      AxisFaultTol,
	"finite.retry.alloc":   AxisFaultTol,
	"finite.retry.data":    AxisFaultTol,
	"finite.reack":         AxisFaultTol,
	"finite.rereply":       AxisFaultTol,
	"finite.stale.reply":   AxisFaultTol,
	"finite.stale.ack":     AxisFaultTol,

	// Indefinite-sequence protocol on CMAM (Figure 4).
	"stream.srcbuffer":    AxisFaultTol,
	"stream.packet.sent":  AxisBase,
	"stream.inorder":      AxisInOrder,
	"stream.outoforder":   AxisInOrder,
	"stream.drain":        AxisInOrder,
	"stream.duplicate":    AxisFaultTol,
	"stream.ack.sent":     AxisFaultTol,
	"stream.ack.recv":     AxisFaultTol,
	"stream.nack.sent":    AxisFaultTol,
	"stream.nack.recv":    AxisFaultTol,
	"stream.retransmit":   AxisFaultTol,
	"stream.timeout":      AxisFaultTol,
	"stream.backpressure": AxisBufferMgmt,

	// CMAM mechanism layer.
	"cmam.stale.xfer": AxisFaultTol,
	"cmam.send":       AxisBase,
	"cmam.dispatch":   AxisBase,

	// Finite-sequence protocol on CR (Figure 5).
	"crfinite.start":        AxisBase,
	"crfinite.packet.sent":  AxisBase,
	"crfinite.packet.recv":  AxisBase,
	"crfinite.header.recv":  AxisBufferMgmt,
	"crfinite.rejected":     AxisBufferMgmt,
	"crfinite.backpressure": AxisBufferMgmt,
	"crfinite.done":         AxisBase,
	"crfinite.complete":     AxisBase,

	// Indefinite-sequence protocol on CR (Figure 7).
	"crstream.packet.sent": AxisBase,
	"crstream.packet.recv": AxisBase,

	// Network substrates (emitted by the obs NetScope, not node code).
	"net.backpressure": AxisBufferMgmt,
	"net.rejected":     AxisBufferMgmt,
	"net.dropped":      AxisFaultTol,
	"net.corrupt":      AxisFaultTol,

	// Control network.
	"ctrlnet.combine.done": AxisOther,
	"ctrlnet.scan.done":    AxisOther,

	// Flit-level transit (emitted by the obs FlitScope from the shared
	// engine functions of internal/flitnet). Queue/backpressure waits are
	// buffer-management costs; kills, retries, and backoff are the price of
	// Compressionless Routing's fault tolerance; the transit itself is base
	// data movement.
	"flit.queued":          AxisBase,
	"flit.delivered":       AxisBase,
	"flit.xfer":            AxisBase,
	"flit.wait.queue":      AxisBufferMgmt,
	"flit.wait.blocked":    AxisBufferMgmt,
	"flit.backpressure":    AxisBufferMgmt,
	"flit.wait.backoff":    AxisFaultTol,
	"flit.kill.timeout":    AxisFaultTol,
	"flit.kill.rejected":   AxisFaultTol,
	"flit.kill.misroute":   AxisFaultTol,
	"flit.kill.unroutable": AxisFaultTol,
	"flit.failed":          AxisFaultTol,
}

// AxisForEvent returns the Feature-axis attribution for a named event.
func AxisForEvent(name string) Axis { return eventAxes[name] }

// ProtoOfEvent derives the protocol/subsystem label from an event name:
// the segment before the first dot ("finite.packet.sent" -> "finite").
func ProtoOfEvent(name string) string {
	if i := strings.IndexByte(name, '.'); i > 0 {
		return name[:i]
	}
	return name
}

// spanRule describes a begin/end event pair that the node scope turns into
// a duration (PhaseComplete) trace event and a transfer-latency histogram
// sample. Spans are tracked per node; an end without a matching begin is
// ignored (retransmission/dedup paths re-emit end-like events).
type spanRule struct {
	span string // emitted span name
	end  bool   // true when the event closes the span
}

// spanRules maps event names to the spans they open or close. The pairs
// cover one whole transfer as seen from each end, giving the per-transfer
// step latency the metrics registry records.
var spanRules = map[string]spanRule{
	"finite.start":         {span: "finite.xfer.src"},
	"finite.ack.recv":      {span: "finite.xfer.src", end: true},
	"finite.allocreq.recv": {span: "finite.xfer.dst"},
	"finite.ack.sent":      {span: "finite.xfer.dst", end: true},
	"crfinite.start":       {span: "crfinite.xfer.src"},
	"crfinite.complete":    {span: "crfinite.xfer.src", end: true},
	"crfinite.header.recv": {span: "crfinite.xfer.dst"},
	"crfinite.done":        {span: "crfinite.xfer.dst", end: true},
}
