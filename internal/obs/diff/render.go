package diff

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
)

// WriteJSON renders the report as indented JSON.
func WriteJSON(w io.Writer, r *Report) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// WriteText renders the report as a human-readable delta waterfall. Only
// moved or asymmetric series are listed; unchanged series are summarised
// by count, so a diff between near-identical runs reads in a screenful.
// The output is fully deterministic (sorted, integer-formatted).
func WriteText(w io.Writer, r *Report) error {
	fmt.Fprintf(w, "obsdiff %s: A=%s B=%s\n", r.Kind, r.ALabel, r.BLabel)
	for _, n := range r.Notes {
		fmt.Fprintf(w, "note: %s\n", n)
	}
	for _, s := range r.OnlyA {
		fmt.Fprintf(w, "only in A: %s\n", s)
	}
	for _, s := range r.OnlyB {
		fmt.Fprintf(w, "only in B: %s\n", s)
	}
	if r.Zero() {
		fmt.Fprintf(w, "identical: all %d series zero\n", r.Terms())
		return nil
	}

	for _, s := range r.Sections {
		moved := movedTerms(s)
		if len(moved) == 0 && s.TotalDelta == 0 {
			fmt.Fprintf(w, "\n== %s ==  no change (%d terms)\n", s.Name, len(s.Terms))
			continue
		}
		fmt.Fprintf(w, "\n== %s (%s) ==\n", s.Name, s.Unit)
		rows := make([][5]string, 0, len(moved)+1)
		for _, t := range moved {
			share := ""
			if t.Permille != 0 {
				share = strconv.FormatInt(t.Permille, 10) + "‰"
			}
			key := t.Key
			if t.OnlyIn != "" {
				key += " [only " + t.OnlyIn + "]"
			}
			rows = append(rows, [5]string{
				key,
				strconv.FormatInt(t.A, 10),
				strconv.FormatInt(t.B, 10),
				signed(t.Delta),
				share,
			})
		}
		totalName := "total"
		if s.TotalKey != "" {
			totalName = "total = " + s.TotalKey
		}
		rows = append(rows, [5]string{
			totalName,
			strconv.FormatInt(s.TotalA, 10),
			strconv.FormatInt(s.TotalB, 10),
			signed(s.TotalDelta),
			"",
		})
		writeAligned(w, rows)
		if n := len(s.Terms) - len(moved); n > 0 {
			fmt.Fprintf(w, "  (%d terms unchanged)\n", n)
		}
	}

	var quiet int
	var header bool
	for i := range r.Quantiles {
		q := &r.Quantiles[i]
		if q.Equal() {
			quiet++
			continue
		}
		if !header {
			fmt.Fprintf(w, "\n== distribution shifts ==\n")
			header = true
		}
		key := q.Key
		if q.OnlyIn != "" {
			key += " [only " + q.OnlyIn + "]"
		}
		fmt.Fprintf(w, "  %s: count %s  p50 %s  p90 %s  p99 %s",
			key, shift(q.CountA, q.CountB), shift(q.P50A, q.P50B),
			shift(q.P90A, q.P90B), shift(q.P99A, q.P99B))
		if q.MaxA != 0 || q.MaxB != 0 {
			fmt.Fprintf(w, "  max %s", shift(q.MaxA, q.MaxB))
		}
		fmt.Fprintln(w)
	}
	if header && quiet > 0 {
		fmt.Fprintf(w, "  (%d distributions unchanged)\n", quiet)
	}

	quiet = 0
	header = false
	for _, d := range r.Digests {
		if d.Equal {
			quiet++
			continue
		}
		if !header {
			fmt.Fprintf(w, "\n== digests ==\n")
			header = true
		}
		fmt.Fprintf(w, "  %s: %s -> %s\n", d.Key, d.A, d.B)
	}
	if header && quiet > 0 {
		fmt.Fprintf(w, "  (%d digests unchanged)\n", quiet)
	}

	if blame := r.Blame(10); len(blame) > 0 {
		fmt.Fprintf(w, "\n== top movers ==\n")
		for i, b := range blame {
			extra := ""
			if b.OnlyIn != "" {
				extra = " [only " + b.OnlyIn + "]"
			}
			fmt.Fprintf(w, "  %2d. %s / %s  %s %s (%d‰ of section)%s\n",
				i+1, b.Section, b.Key, signed(b.Delta), b.Unit, b.Permille, extra)
		}
	}
	return nil
}

// WriteCSV renders the report as flat rows: one row per term, section
// total, quantile statistic, and digest.
func WriteCSV(w io.Writer, r *Report) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"kind", "section", "unit", "key", "a", "b", "delta", "permille", "only_in"}); err != nil {
		return err
	}
	row := func(kind, section, unit, key, a, b, delta, permille, onlyIn string) error {
		return cw.Write([]string{kind, section, unit, key, a, b, delta, permille, onlyIn})
	}
	for _, s := range r.Sections {
		for _, t := range s.Terms {
			if err := row("term", s.Name, s.Unit, t.Key,
				strconv.FormatInt(t.A, 10), strconv.FormatInt(t.B, 10),
				strconv.FormatInt(t.Delta, 10), strconv.FormatInt(t.Permille, 10), t.OnlyIn); err != nil {
				return err
			}
		}
		totalKey := s.TotalKey
		if totalKey == "" {
			totalKey = "(sum)"
		}
		if err := row("total", s.Name, s.Unit, totalKey,
			strconv.FormatInt(s.TotalA, 10), strconv.FormatInt(s.TotalB, 10),
			strconv.FormatInt(s.TotalDelta, 10), "", ""); err != nil {
			return err
		}
	}
	for i := range r.Quantiles {
		q := &r.Quantiles[i]
		stats := []struct {
			name string
			a, b uint64
		}{
			{"count", q.CountA, q.CountB}, {"sum", q.SumA, q.SumB},
			{"p50", q.P50A, q.P50B}, {"p90", q.P90A, q.P90B},
			{"p99", q.P99A, q.P99B}, {"max", q.MaxA, q.MaxB},
		}
		for _, st := range stats {
			if st.name == "sum" && st.a == 0 && st.b == 0 {
				continue
			}
			if st.name == "max" && st.a == 0 && st.b == 0 {
				continue
			}
			if err := row("quantile", "quantiles", "", q.Key+"/"+st.name,
				strconv.FormatUint(st.a, 10), strconv.FormatUint(st.b, 10),
				strconv.FormatInt(int64(st.b)-int64(st.a), 10), "", q.OnlyIn); err != nil {
				return err
			}
		}
	}
	for _, d := range r.Digests {
		delta := "changed"
		if d.Equal {
			delta = "equal"
		}
		if err := row("digest", "digests", "", d.Key, d.A, d.B, delta, "", ""); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// movedTerms filters a section down to the terms worth listing.
func movedTerms(s Section) []Term {
	out := make([]Term, 0, len(s.Terms))
	for _, t := range s.Terms {
		if t.Delta != 0 || t.OnlyIn != "" {
			out = append(out, t)
		}
	}
	return out
}

// signed renders a delta with an explicit sign, so waterfalls read as
// additions and removals rather than bare magnitudes.
func signed(v int64) string {
	if v >= 0 {
		return "+" + strconv.FormatInt(v, 10)
	}
	return strconv.FormatInt(v, 10)
}

// shift renders "a -> b" or "=v" when unchanged.
func shift(a, b uint64) string {
	if a == b {
		return "=" + strconv.FormatUint(a, 10)
	}
	return strconv.FormatUint(a, 10) + "->" + strconv.FormatUint(b, 10)
}

// writeAligned prints rows with right-aligned numeric columns sized to the
// content, first column left-aligned.
func writeAligned(w io.Writer, rows [][5]string) {
	var width [5]int
	for _, r := range rows {
		for i, c := range r {
			if len(c) > width[i] {
				width[i] = len(c)
			}
		}
	}
	for _, r := range rows {
		fmt.Fprintf(w, "  %-*s  %*s  %*s  %*s",
			width[0], r[0], width[1], r[1], width[2], r[2], width[3], r[3])
		if r[4] != "" {
			fmt.Fprintf(w, "  %*s", width[4], r[4])
		}
		fmt.Fprintln(w)
	}
}
