// Package diff is the differential attribution engine: it aligns the
// observability artifacts of two runs — perfreg snapshots, metrics JSON
// exports, critical-path reports, and windowed timelines — and decomposes
// the difference between them into exactly-reconciled delta waterfalls.
//
// Where critpath and timeline explain one run ("where did the time go?"),
// diff explains a pair ("where did the time go *between* these runs?") —
// the question the paper's headline figures answer by comparing the
// baseline CMAM protocols against their CR-network variants. Every section
// of a report is a waterfall whose terms provably sum to the section's
// total delta (Reconcile, in the style of critpath and timeline), so "B
// costs 3000 instructions more than A" always comes with the cells
// responsible and their exact shares.
//
// The engine is deterministic end to end: sections and terms are sorted,
// series present in only one run are reported explicitly (never silently
// dropped), and identical inputs render byte-identical reports. A run
// diffed against itself is exactly zero.
package diff

import (
	"fmt"
	"sort"
)

// SchemaVersion identifies the report layout for the JSON form.
const SchemaVersion = 1

// Term is one aligned series of a section: its value in each run and the
// exact delta. Series missing from one run count as zero on that side and
// carry an OnlyIn marker, so asymmetric artifacts still reconcile instead
// of dropping rows.
type Term struct {
	Key   string `json:"key"`
	A     int64  `json:"a"`
	B     int64  `json:"b"`
	Delta int64  `json:"delta"`
	// Permille is the term's signed share of the section's total absolute
	// delta (the blame weight): delta * 1000 / sum(|delta|) over the
	// section's terms, truncated toward zero.
	Permille int64 `json:"permille,omitempty"`
	// OnlyIn is "a" or "b" when the series exists in one run only.
	OnlyIn string `json:"only_in,omitempty"`
}

// Section is one delta waterfall: a named group of aligned terms plus the
// totals they must sum to. With TotalKey set, the totals were recorded
// independently of the terms (e.g. instr/total alongside the per-cell
// instruction counts), and Reconcile proves the decomposition is complete;
// without it the totals are defined as the term sums.
type Section struct {
	Name string `json:"name"`
	// Unit names what the terms count ("instructions", "events", "flits",
	// "allocs/op", "value").
	Unit  string `json:"unit"`
	Terms []Term `json:"terms"`
	// TotalKey names the independently recorded total the terms must sum
	// to; empty means the totals are sum-defined.
	TotalKey   string `json:"total_key,omitempty"`
	TotalA     int64  `json:"total_a"`
	TotalB     int64  `json:"total_b"`
	TotalDelta int64  `json:"total_delta"`
}

// QuantileShift is one histogram-valued series' distribution change:
// population and quantile movement between the runs. Sum and Max are zero
// when the source artifact does not record them.
type QuantileShift struct {
	Key    string `json:"key"`
	CountA uint64 `json:"count_a"`
	CountB uint64 `json:"count_b"`
	SumA   uint64 `json:"sum_a,omitempty"`
	SumB   uint64 `json:"sum_b,omitempty"`
	P50A   uint64 `json:"p50_a"`
	P50B   uint64 `json:"p50_b"`
	P90A   uint64 `json:"p90_a"`
	P90B   uint64 `json:"p90_b"`
	P99A   uint64 `json:"p99_a"`
	P99B   uint64 `json:"p99_b"`
	MaxA   uint64 `json:"max_a,omitempty"`
	MaxB   uint64 `json:"max_b,omitempty"`
	// OnlyIn is "a" or "b" when the histogram exists in one run only.
	OnlyIn string `json:"only_in,omitempty"`
}

// Equal reports whether the shift is a no-op (both sides identical).
func (q *QuantileShift) Equal() bool {
	return q.OnlyIn == "" && q.CountA == q.CountB && q.SumA == q.SumB &&
		q.P50A == q.P50B && q.P90A == q.P90B && q.P99A == q.P99B && q.MaxA == q.MaxB
}

// DigestDelta is one content digest compared across the runs. Digests are
// identity hashes, not magnitudes — their numeric difference is
// meaningless — so they are reported as equal/changed rather than as delta
// terms.
type DigestDelta struct {
	Key   string `json:"key"`
	A     string `json:"a"`
	B     string `json:"b"`
	Equal bool   `json:"equal"`
}

// BlameEntry is one ranked term of the blame list: the section and key
// responsible for part of the change, with its section-local share.
type BlameEntry struct {
	Section  string `json:"section"`
	Unit     string `json:"unit"`
	Key      string `json:"key"`
	Delta    int64  `json:"delta"`
	Permille int64  `json:"permille"`
	OnlyIn   string `json:"only_in,omitempty"`
}

// Report is a full differential attribution between two runs.
type Report struct {
	Schema int    `json:"schema"`
	Kind   string `json:"kind"`
	ALabel string `json:"a"`
	BLabel string `json:"b"`
	// Notes records comparability caveats (differing words, intervals, …);
	// the diff still runs — its job is to explain differences, not refuse
	// them — but the reader is told the runs were not like for like.
	Notes     []string        `json:"notes,omitempty"`
	Sections  []Section       `json:"sections,omitempty"`
	Quantiles []QuantileShift `json:"quantiles,omitempty"`
	Digests   []DigestDelta   `json:"digests,omitempty"`
	// OnlyA and OnlyB list whole sub-artifacts (scenarios, sweep points)
	// present in one run only.
	OnlyA []string `json:"only_in_a,omitempty"`
	OnlyB []string `json:"only_in_b,omitempty"`
}

// newReport seeds the shared header fields.
func newReport(kind, aLabel, bLabel string) *Report {
	return &Report{Schema: SchemaVersion, Kind: kind, ALabel: aLabel, BLabel: bLabel}
}

// notef appends a comparability note.
func (r *Report) notef(format string, args ...any) {
	r.Notes = append(r.Notes, fmt.Sprintf(format, args...))
}

// sectionBuilder accumulates aligned terms before sealing them into a
// Section with computed totals and permille shares.
type sectionBuilder struct {
	s Section
}

// newSection starts a sum-defined section.
func newSection(name, unit string) *sectionBuilder {
	return &sectionBuilder{s: Section{Name: name, Unit: unit}}
}

// term adds one aligned series.
func (b *sectionBuilder) term(key string, a, bv int64, onlyIn string) {
	b.s.Terms = append(b.s.Terms, Term{Key: key, A: a, B: bv, Delta: bv - a, OnlyIn: onlyIn})
}

// total pins an independently recorded total (and its key) for the section.
func (b *sectionBuilder) total(key string, a, bv int64) {
	b.s.TotalKey = key
	b.s.TotalA, b.s.TotalB = a, bv
	b.s.TotalDelta = bv - a
}

// seal sorts the terms, derives sum-defined totals, computes permille
// blame shares, and returns the finished section.
func (b *sectionBuilder) seal() Section {
	sort.Slice(b.s.Terms, func(i, j int) bool { return b.s.Terms[i].Key < b.s.Terms[j].Key })
	if b.s.TotalKey == "" {
		var ta, tb int64
		for _, t := range b.s.Terms {
			ta += t.A
			tb += t.B
		}
		b.s.TotalA, b.s.TotalB, b.s.TotalDelta = ta, tb, tb-ta
	}
	var absSum int64
	for _, t := range b.s.Terms {
		absSum += abs64(t.Delta)
	}
	if absSum > 0 {
		for i := range b.s.Terms {
			b.s.Terms[i].Permille = b.s.Terms[i].Delta * 1000 / absSum
		}
	}
	return b.s
}

// addSection seals the builder into the report. Sections with no terms are
// kept: an empty section still documents that the artifact carried nothing
// to compare, which is information, not noise.
func (r *Report) addSection(b *sectionBuilder) {
	r.Sections = append(r.Sections, b.seal())
}

// Reconcile audits the report: every section's terms must sum exactly to
// its total delta on both sides. For sections with an independently
// recorded total this is a genuine completeness proof (the per-cell deltas
// account for the whole recorded change); for sum-defined sections it is a
// self-consistency check of the builder. An error names the failing
// section.
func (r *Report) Reconcile() error {
	for _, s := range r.Sections {
		var ta, tb int64
		for _, t := range s.Terms {
			if t.Delta != t.B-t.A {
				return fmt.Errorf("diff: section %s: term %s delta %d != b-a %d", s.Name, t.Key, t.Delta, t.B-t.A)
			}
			ta += t.A
			tb += t.B
		}
		if s.TotalDelta != s.TotalB-s.TotalA {
			return fmt.Errorf("diff: section %s: total delta %d != b-a %d", s.Name, s.TotalDelta, s.TotalB-s.TotalA)
		}
		if tb-ta != s.TotalDelta {
			return fmt.Errorf("diff: section %s: terms sum to delta %d, recorded total delta %d (key %q)",
				s.Name, tb-ta, s.TotalDelta, s.TotalKey)
		}
		if s.TotalKey != "" && (ta != s.TotalA || tb != s.TotalB) {
			return fmt.Errorf("diff: section %s: terms sum to %d/%d, recorded totals %d/%d (key %q)",
				s.Name, ta, tb, s.TotalA, s.TotalB, s.TotalKey)
		}
	}
	return nil
}

// Zero reports whether the diff is exactly empty: no term moved, no
// distribution shifted, no digest changed, and nothing was present on one
// side only. A run diffed against itself is Zero.
func (r *Report) Zero() bool {
	if len(r.OnlyA) > 0 || len(r.OnlyB) > 0 {
		return false
	}
	for _, s := range r.Sections {
		if s.TotalDelta != 0 {
			return false
		}
		for _, t := range s.Terms {
			if t.Delta != 0 || t.OnlyIn != "" {
				return false
			}
		}
	}
	for i := range r.Quantiles {
		if !r.Quantiles[i].Equal() {
			return false
		}
	}
	for _, d := range r.Digests {
		if !d.Equal {
			return false
		}
	}
	return true
}

// Terms counts the aligned series across all sections, quantile shifts,
// and digests — the denominator of "all N series zero".
func (r *Report) Terms() int {
	n := len(r.Quantiles) + len(r.Digests)
	for _, s := range r.Sections {
		n += len(s.Terms)
	}
	return n
}

// Blame returns the ranked blame list: every moved or asymmetric term
// across all sections, largest absolute delta first (ties broken by
// section then key), truncated to n entries (n <= 0 means all). Deltas
// from different sections count different units; each entry carries its
// section and unit so the ranking reads as "the biggest single mover in
// each currency", not as a cross-unit sum.
func (r *Report) Blame(n int) []BlameEntry {
	var out []BlameEntry
	for _, s := range r.Sections {
		for _, t := range s.Terms {
			if t.Delta == 0 && t.OnlyIn == "" {
				continue
			}
			out = append(out, BlameEntry{
				Section: s.Name, Unit: s.Unit, Key: t.Key,
				Delta: t.Delta, Permille: t.Permille, OnlyIn: t.OnlyIn,
			})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		ai, aj := abs64(out[i].Delta), abs64(out[j].Delta)
		if ai != aj {
			return ai > aj
		}
		if out[i].Section != out[j].Section {
			return out[i].Section < out[j].Section
		}
		return out[i].Key < out[j].Key
	})
	if n > 0 && len(out) > n {
		out = out[:n]
	}
	return out
}

// abs64 is |v| without the float detour.
func abs64(v int64) int64 {
	if v < 0 {
		return -v
	}
	return v
}
