package diff

import (
	"fmt"
	"sort"
	"strings"

	"msglayer/internal/obs"
	"msglayer/internal/obs/timeline"
	"msglayer/internal/perfreg"
)

// linkMetric is the per-router-port utilization counter the flit engine
// bumps at every flit move; its series partition the engine's flit-move
// total exactly, so they get their own waterfall instead of drowning in
// the general counter section.
const linkMetric = "flitnet_link_flits_total"

// Run is one side of a live comparison: the artifacts a tool holds
// in-process (as opposed to the file artifacts CompareArtifacts loads).
type Run struct {
	Label string
	// Metrics is the run's registry export (obs.Registry.JSONMetrics).
	Metrics []obs.JSONMetric
	// Timeline is the run's windowed metrics timeline, when sampled.
	Timeline *timeline.Timeline
	// FlitMoves, when nonzero on both sides, is the flit engine's own
	// move total; the per-link counters must partition it exactly, which
	// turns the links section into a genuine completeness proof.
	FlitMoves uint64
}

// CompareRuns builds the differential attribution between two in-process
// runs: metric deltas, per-link utilization deltas, histogram quantile
// shifts, and (when both runs carry timelines) per-phase deltas.
func CompareRuns(a, b Run) *Report {
	r := newReport("run", a.Label, b.Label)
	var flitTotal *[2]uint64
	if a.FlitMoves != 0 || b.FlitMoves != 0 {
		flitTotal = &[2]uint64{a.FlitMoves, b.FlitMoves}
	}
	metricsSections(r, "", a.Metrics, b.Metrics, flitTotal)
	if a.Timeline != nil && b.Timeline != nil {
		timelineSections(r, "timeline/", a.Timeline, b.Timeline)
	} else if a.Timeline != nil {
		r.OnlyA = append(r.OnlyA, "timeline")
	} else if b.Timeline != nil {
		r.OnlyB = append(r.OnlyB, "timeline")
	}
	return r
}

// CompareRunGrid builds the differential attribution between two aligned
// grids of in-process runs (e.g. netload's per-load sweep points, baseline
// routing on one side and CR on the other). Each aligned key contributes
// its full run comparison under a "<key>/" section prefix; one-sided keys
// are declared in the asymmetry lists.
func CompareRunGrid(aLabel, bLabel string, a, b map[string]Run) *Report {
	r := newReport("run-grid", aLabel, bLabel)
	for _, key := range unionKeys(a, b) {
		ra, inA := a[key]
		rb, inB := b[key]
		switch {
		case !inA:
			r.OnlyB = append(r.OnlyB, "point "+key)
			continue
		case !inB:
			r.OnlyA = append(r.OnlyA, "point "+key)
			continue
		}
		var flitTotal *[2]uint64
		if ra.FlitMoves != 0 || rb.FlitMoves != 0 {
			flitTotal = &[2]uint64{ra.FlitMoves, rb.FlitMoves}
		}
		metricsSections(r, key+"/", ra.Metrics, rb.Metrics, flitTotal)
		switch {
		case ra.Timeline != nil && rb.Timeline != nil:
			timelineSections(r, key+"/timeline/", ra.Timeline, rb.Timeline)
		case ra.Timeline != nil:
			r.OnlyA = append(r.OnlyA, "timeline "+key)
		case rb.Timeline != nil:
			r.OnlyB = append(r.OnlyB, "timeline "+key)
		}
	}
	return r
}

// CompareMetrics builds the differential attribution between two metrics
// JSON exports.
func CompareMetrics(aLabel, bLabel string, a, b []obs.JSONMetric) *Report {
	r := newReport("metrics", aLabel, bLabel)
	metricsSections(r, "", a, b, nil)
	return r
}

// metricKey reconstructs the registry key string of an exported metric.
func metricKey(m obs.JSONMetric) string {
	node := -1
	if m.Node != nil {
		node = *m.Node
	}
	return obs.Key{Name: m.Name, Node: node, Proto: m.Proto, Event: m.Event}.String()
}

// metricsSections appends the counter, link, gauge, and quantile-shift
// comparisons of two registry exports. flitTotal, when set, pins the links
// section to the engine-recorded move totals.
func metricsSections(r *Report, prefix string, a, b []obs.JSONMetric, flitTotal *[2]uint64) {
	type side struct {
		counters map[string]int64
		links    map[string]int64
		gauges   map[string]int64
		hists    map[string]obs.JSONMetric
	}
	index := func(ms []obs.JSONMetric) side {
		s := side{
			counters: make(map[string]int64),
			links:    make(map[string]int64),
			gauges:   make(map[string]int64),
			hists:    make(map[string]obs.JSONMetric),
		}
		for _, m := range ms {
			k := metricKey(m)
			switch m.Kind {
			case "counter":
				if m.Name == linkMetric {
					s.links[k] = m.Value
				} else {
					s.counters[k] = m.Value
				}
			case "gauge":
				s.gauges[k] = m.Value
			case "histogram":
				s.hists[k] = m
			}
		}
		return s
	}
	sa, sb := index(a), index(b)

	counters := newSection(prefix+"counters", "events")
	alignInt(counters, sa.counters, sb.counters)
	r.addSection(counters)

	links := newSection(prefix+"links", "flits")
	alignInt(links, sa.links, sb.links)
	if flitTotal != nil {
		links.total(prefix+"stats/flit_moves", int64(flitTotal[0]), int64(flitTotal[1]))
	}
	r.addSection(links)

	gauges := newSection(prefix+"gauges", "value")
	alignInt(gauges, sa.gauges, sb.gauges)
	r.addSection(gauges)

	for _, k := range unionKeys(sa.hists, sb.hists) {
		ha, inA := sa.hists[k]
		hb, inB := sb.hists[k]
		q := QuantileShift{Key: prefix + k}
		switch {
		case !inA:
			q.OnlyIn = "b"
		case !inB:
			q.OnlyIn = "a"
		}
		if inA {
			q.CountA, q.SumA = ha.Count, ha.Sum
			q.P50A, q.P90A, q.P99A = ha.Quantiles["p50"], ha.Quantiles["p90"], ha.Quantiles["p99"]
		}
		if inB {
			q.CountB, q.SumB = hb.Count, hb.Sum
			q.P50B, q.P90B, q.P99B = hb.Quantiles["p50"], hb.Quantiles["p90"], hb.Quantiles["p99"]
		}
		r.Quantiles = append(r.Quantiles, q)
	}
}

// CompareTimelines builds the differential attribution between two
// windowed timelines: phase-regime deltas, per-phase Role×Feature×Category
// shifts, counter and link totals, and gauge endpoints.
func CompareTimelines(aLabel, bLabel string, a, b *timeline.Timeline) *Report {
	r := newReport("timeline", aLabel, bLabel)
	timelineSections(r, "", a, b)
	return r
}

// timelineSections appends one timeline pair's comparison under the given
// section-name prefix.
func timelineSections(r *Report, prefix string, a, b *timeline.Timeline) {
	if a.Interval != b.Interval {
		r.notef("%s: intervals differ (%d vs %d cycles); phase and rate comparisons are not like for like",
			strings.TrimSuffix(prefix, "/"), a.Interval, b.Interval)
	}
	if len(a.Windows) != len(b.Windows) {
		r.notef("%s: window counts differ (%d vs %d)", strings.TrimSuffix(prefix, "/"), len(a.Windows), len(b.Windows))
	}

	// Phase regimes: total activity per phase kind. Every window belongs to
	// exactly one phase, so the four kinds partition the run's events.
	type phaseSide struct {
		events map[string]int64
		cells  map[string]map[string]int64
	}
	phaseIndex := func(tl *timeline.Timeline) phaseSide {
		s := phaseSide{events: make(map[string]int64), cells: make(map[string]map[string]int64)}
		for _, p := range tl.Phases() {
			kind := p.Kind.String()
			s.events[kind] += int64(p.Events)
			cells := s.cells[kind]
			if cells == nil {
				cells = make(map[string]int64)
				s.cells[kind] = cells
			}
			for _, c := range p.Breakdown {
				cells[c.Role+"/"+c.Axis+"/"+c.Category] += int64(c.Events)
			}
		}
		return s
	}
	pa, pb := phaseIndex(a), phaseIndex(b)
	phases := newSection(prefix+"phases", "events")
	for _, kind := range []string{"warmup", "steady", "burst", "drain"} {
		phases.term(kind, pa.events[kind], pb.events[kind], "")
	}
	r.addSection(phases)
	for _, kind := range []string{"warmup", "steady", "burst", "drain"} {
		if pa.events[kind] == 0 && pb.events[kind] == 0 {
			continue
		}
		sec := newSection(prefix+"phase/"+kind, "events")
		alignInt(sec, pa.cells[kind], pb.cells[kind])
		// The breakdown cells cover exactly the protocol events the phase's
		// Events field counts, so the independently aggregated phase total
		// proves the per-cell decomposition complete.
		sec.total(prefix+"phases/"+kind, pa.events[kind], pb.events[kind])
		r.addSection(sec)
	}

	// Counter totals: each series' window deltas summed over the whole run
	// (which the sampler's Reconcile pins to the end-of-run registry
	// totals). Link counters get their own waterfall; gauges compare at
	// their final sampled values; histograms at their windowed populations.
	type seriesSide struct {
		counters map[string]int64
		links    map[string]int64
		gauges   map[string]int64
		histN    map[string]int64
		histSum  map[string]int64
	}
	seriesIndex := func(tl *timeline.Timeline) seriesSide {
		s := seriesSide{
			counters: make(map[string]int64),
			links:    make(map[string]int64),
			gauges:   make(map[string]int64),
			histN:    make(map[string]int64),
			histSum:  make(map[string]int64),
		}
		for _, w := range tl.Windows {
			for _, c := range w.Counters {
				if strings.HasPrefix(c.Key, linkMetric) {
					s.links[c.Key] += int64(c.Delta)
				} else {
					s.counters[c.Key] += int64(c.Delta)
				}
			}
			for _, l := range w.Levels {
				s.gauges[l.Key] = l.Value
			}
			for _, h := range w.Hists {
				s.histN[h.Key] += int64(h.Count)
				s.histSum[h.Key] += int64(h.Sum)
			}
		}
		return s
	}
	ta, tb := seriesIndex(a), seriesIndex(b)
	counters := newSection(prefix+"counters", "events")
	alignInt(counters, ta.counters, tb.counters)
	r.addSection(counters)
	links := newSection(prefix+"links", "flits")
	alignInt(links, ta.links, tb.links)
	r.addSection(links)
	gauges := newSection(prefix+"gauges", "value")
	alignInt(gauges, ta.gauges, tb.gauges)
	r.addSection(gauges)
	hists := newSection(prefix+"hist-counts", "observations")
	alignInt(hists, ta.histN, tb.histN)
	r.addSection(hists)
	histSums := newSection(prefix+"hist-sums", "sum")
	alignInt(histSums, ta.histSum, tb.histSum)
	r.addSection(histSums)

	r.Digests = append(r.Digests, DigestDelta{
		Key: prefix + "digest", A: a.Digest, B: b.Digest, Equal: a.Digest == b.Digest,
	})
}

// ComparePerfreg builds the differential attribution between two perfreg
// snapshots: per-scenario Role×Feature×Category instruction waterfalls
// (reconciled against the independently recorded instr/total), the
// remaining deterministic sim metrics, timeline digests, and the
// allocation benchmarks. Host wall-clock samples are deliberately absent:
// they are machine noise, and this engine only attributes deterministic
// change (perfreg's statistical gate owns the noisy half).
func ComparePerfreg(a, b *perfreg.Snapshot) *Report {
	r := newReport("perfreg", label(a.Label, "A"), label(b.Label, "B"))
	if a.Words != b.Words {
		r.notef("transfer sizes differ (%d vs %d words); instruction deltas include the size change", a.Words, b.Words)
	}
	if a.NetloadCycles != b.NetloadCycles {
		r.notef("netload measurement lengths differ (%d vs %d cycles)", a.NetloadCycles, b.NetloadCycles)
	}
	byName := func(s *perfreg.Snapshot) map[string]map[string]uint64 {
		m := make(map[string]map[string]uint64, len(s.Scenarios))
		for i := range s.Scenarios {
			m[s.Scenarios[i].Name] = s.Scenarios[i].Sim
		}
		return m
	}
	sa, sb := byName(a), byName(b)
	for _, name := range unionKeys(sa, sb) {
		simA, inA := sa[name]
		simB, inB := sb[name]
		switch {
		case !inA:
			r.OnlyB = append(r.OnlyB, "scenario "+name)
			continue
		case !inB:
			r.OnlyA = append(r.OnlyA, "scenario "+name)
			continue
		}
		scenarioSections(r, name, simA, simB)
	}
	benches := newSection("bench/allocs", "allocs/op")
	ba, bb := make(map[string]int64), make(map[string]int64)
	for _, bench := range a.Benches {
		ba[bench.Name] = bench.AllocsPerOp
	}
	for _, bench := range b.Benches {
		bb[bench.Name] = bench.AllocsPerOp
	}
	alignInt(benches, ba, bb)
	r.addSection(benches)
	return r
}

// scenarioSections splits one scenario's flat sim map into the instruction
// waterfall (pinned to instr/total), the digest identities, and the
// remaining deterministic counters.
func scenarioSections(r *Report, name string, simA, simB map[string]uint64) {
	instr := newSection(name+"/instr", "instructions")
	rest := newSection(name+"/sim", "count")
	var instrAny bool
	for _, k := range unionKeys(simA, simB) {
		va, inA := simA[k]
		vb, inB := simB[k]
		only := ""
		switch {
		case !inA:
			only = "b"
		case !inB:
			only = "a"
		}
		switch {
		case strings.Contains(k, "digest"):
			r.Digests = append(r.Digests, DigestDelta{
				Key: name + "/" + k,
				A:   digestStr(va, inA), B: digestStr(vb, inB),
				Equal: inA && inB && va == vb,
			})
		case k == "instr/total":
			instr.total(name+"/instr/total", int64(va), int64(vb))
			instrAny = true
		case strings.HasPrefix(k, "instr/"):
			instr.term(strings.TrimPrefix(k, "instr/"), int64(va), int64(vb), only)
			instrAny = true
		default:
			rest.term(k, int64(va), int64(vb), only)
		}
	}
	if instrAny {
		r.addSection(instr)
	}
	r.addSection(rest)
}

// digestStr renders a digest value in the hex form timeline exports use;
// absent digests render as "-".
func digestStr(v uint64, present bool) string {
	if !present {
		return "-"
	}
	return fmt.Sprintf("%016x", v)
}

// label falls back when a snapshot carries no label.
func label(l, fallback string) string {
	if l == "" {
		return fallback
	}
	return l
}

// alignInt feeds the union of two keyed value maps into a section,
// marking one-sided keys.
func alignInt(sec *sectionBuilder, a, b map[string]int64) {
	for _, k := range unionKeys(a, b) {
		va, inA := a[k]
		vb, inB := b[k]
		only := ""
		switch {
		case !inA:
			only = "b"
		case !inB:
			only = "a"
		}
		sec.term(k, va, vb, only)
	}
}

// unionKeys returns the sorted union of two maps' keys.
func unionKeys[VA, VB any](a map[string]VA, b map[string]VB) []string {
	keys := make([]string, 0, len(a)+len(b))
	for k := range a {
		keys = append(keys, k)
	}
	for k := range b {
		if _, ok := a[k]; !ok {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	return keys
}
