package diff

import (
	"encoding/json"
	"fmt"
	"os"
	"strconv"

	"msglayer/internal/obs"
	"msglayer/internal/perfreg"

	"msglayer/internal/obs/timeline"
)

// Artifact is one loaded observability artifact, recognised by its JSON
// shape: a perfreg snapshot, a metrics export, a single timeline, a
// netload timeline grid, or a critpath report (single or multi).
type Artifact struct {
	// Path is where the artifact was read from ("<stdin>" or a caller
	// label when loaded from bytes).
	Path string
	// Kind is one of "perfreg", "metrics", "timeline", "timeline-grid",
	// "critpath".
	Kind string

	Perfreg  *perfreg.Snapshot
	Metrics  []obs.JSONMetric
	Timeline *timeline.Timeline
	// Grid holds a netload timeline export keyed "mode/load=<permille>".
	Grid map[string]*timeline.Timeline
	// Critpath holds critpath reports keyed by scenario name (or
	// "flit/<mode>/load=<permille>" for grid points); a single-report file
	// loads under the key "report".
	Critpath CritpathSet
}

// LoadArtifact reads and recognises one artifact file.
func LoadArtifact(path string) (*Artifact, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return LoadArtifactBytes(path, data)
}

// LoadArtifactBytes recognises an artifact from raw JSON. The name is only
// used in errors and as Artifact.Path.
func LoadArtifactBytes(name string, data []byte) (*Artifact, error) {
	var top map[string]json.RawMessage
	if err := json.Unmarshal(data, &top); err != nil {
		return nil, fmt.Errorf("diff: %s: not a JSON object: %w", name, err)
	}
	a := &Artifact{Path: name}
	switch {
	case has(top, "metrics"):
		var doc struct {
			Metrics []obs.JSONMetric `json:"metrics"`
		}
		if err := json.Unmarshal(data, &doc); err != nil {
			return nil, fmt.Errorf("diff: %s: metrics export: %w", name, err)
		}
		a.Kind, a.Metrics = "metrics", doc.Metrics
	case has(top, "windows") && has(top, "interval"):
		var tl timeline.Timeline
		if err := json.Unmarshal(data, &tl); err != nil {
			return nil, fmt.Errorf("diff: %s: timeline export: %w", name, err)
		}
		a.Kind, a.Timeline = "timeline", &tl
	case has(top, "points"):
		var doc struct {
			Points []struct {
				Mode         string             `json:"mode"`
				LoadPermille int                `json:"load_permille"`
				Timeline     *timeline.Timeline `json:"timeline"`
			} `json:"points"`
		}
		if err := json.Unmarshal(data, &doc); err != nil {
			return nil, fmt.Errorf("diff: %s: timeline grid: %w", name, err)
		}
		a.Kind = "timeline-grid"
		a.Grid = make(map[string]*timeline.Timeline, len(doc.Points))
		for _, p := range doc.Points {
			a.Grid[p.Mode+"/load="+strconv.Itoa(p.LoadPermille)] = p.Timeline
		}
	case has(top, "schema") && has(top, "scenarios"):
		snap, err := perfreg.Parse(data)
		if err != nil {
			return nil, fmt.Errorf("diff: %s: %w", name, err)
		}
		a.Kind, a.Perfreg = "perfreg", snap
	case has(top, "scenarios") || has(top, "flit"):
		var doc struct {
			Scenarios map[string]*CritpathDoc `json:"scenarios"`
			Flit      []struct {
				Mode   string       `json:"mode"`
				Load   float64      `json:"load"`
				Report *CritpathDoc `json:"report"`
			} `json:"flit"`
		}
		if err := json.Unmarshal(data, &doc); err != nil {
			return nil, fmt.Errorf("diff: %s: critpath report: %w", name, err)
		}
		a.Kind = "critpath"
		a.Critpath = make(CritpathSet, len(doc.Scenarios)+len(doc.Flit))
		for k, v := range doc.Scenarios {
			a.Critpath[k] = v
		}
		for _, f := range doc.Flit {
			a.Critpath["flit/"+f.Mode+"/load="+strconv.Itoa(int(f.Load*1000))] = f.Report
		}
	case has(top, "by_category") && has(top, "critical_path"):
		var doc CritpathDoc
		if err := json.Unmarshal(data, &doc); err != nil {
			return nil, fmt.Errorf("diff: %s: critpath report: %w", name, err)
		}
		a.Kind = "critpath"
		a.Critpath = CritpathSet{"report": &doc}
	default:
		return nil, fmt.Errorf("diff: %s: unrecognised artifact shape (want a perfreg snapshot, metrics export, timeline, netload timeline grid, or critpath report)", name)
	}
	return a, nil
}

// has reports whether a top-level key exists with a non-null value.
func has(top map[string]json.RawMessage, key string) bool {
	v, ok := top[key]
	return ok && string(v) != "null"
}

// CompareArtifacts dispatches on artifact kind. The two sides must be the
// same kind of artifact; comparing, say, a timeline against a perfreg
// snapshot is a usage error, not a diff.
func CompareArtifacts(a, b *Artifact) (*Report, error) {
	if a.Kind != b.Kind {
		return nil, fmt.Errorf("diff: artifact kinds differ: %s is %s, %s is %s", a.Path, a.Kind, b.Path, b.Kind)
	}
	switch a.Kind {
	case "metrics":
		return CompareMetrics(a.Path, b.Path, a.Metrics, b.Metrics), nil
	case "timeline":
		return CompareTimelines(a.Path, b.Path, a.Timeline, b.Timeline), nil
	case "timeline-grid":
		return CompareTimelineGrids(a.Path, b.Path, a.Grid, b.Grid), nil
	case "perfreg":
		return ComparePerfreg(a.Perfreg, b.Perfreg), nil
	case "critpath":
		return CompareCritpath(a.Path, b.Path, a.Critpath, b.Critpath), nil
	}
	return nil, fmt.Errorf("diff: unknown artifact kind %q", a.Kind)
}

// CompareTimelineGrids builds the differential attribution between two
// netload timeline grids, aligned per (mode, load) point.
func CompareTimelineGrids(aLabel, bLabel string, a, b map[string]*timeline.Timeline) *Report {
	r := newReport("timeline-grid", aLabel, bLabel)
	for _, key := range unionKeys(a, b) {
		ta, inA := a[key]
		tb, inB := b[key]
		switch {
		case !inA:
			r.OnlyB = append(r.OnlyB, "point "+key)
			continue
		case !inB:
			r.OnlyA = append(r.OnlyA, "point "+key)
			continue
		}
		timelineSections(r, key+"/", ta, tb)
	}
	return r
}
