package diff

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"msglayer/internal/critpath"
	"msglayer/internal/experiments"
	"msglayer/internal/flitnet"
	"msglayer/internal/network"
	"msglayer/internal/obs"
	"msglayer/internal/obs/timeline"
	"msglayer/internal/perfreg"
	"msglayer/internal/topology"
	"msglayer/internal/workload"
)

// runCanonical executes one canonical scenario under a fresh hub with a
// timeline sampler riding the round clock.
func runCanonical(t *testing.T, name string, words int) (*obs.Hub, *timeline.Timeline) {
	t.Helper()
	hub := obs.NewHub()
	sampler := timeline.New(hub.Metrics, timeline.Config{Interval: 8})
	hub.SetTickListener(sampler.Advance)
	experiments.SetObserver(hub)
	defer experiments.SetObserver(nil)
	if _, err := experiments.RunCanonical(name, words); err != nil {
		t.Fatalf("RunCanonical(%s): %v", name, err)
	}
	end := hub.Round()
	if end == 0 {
		end = 1
	}
	sampler.Flush(end)
	if err := sampler.Reconcile(); err != nil {
		t.Fatalf("sampler reconcile (%s): %v", name, err)
	}
	return hub, sampler.Snapshot()
}

// runFlit executes one flit-grid point with link counters attached.
func runFlit(t *testing.T, mode flitnet.Mode, load float64, cycles int) (*obs.Hub, *flitnet.Net) {
	t.Helper()
	topo, err := topology.NewFatTree(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	net, err := flitnet.New(flitnet.Config{
		Topology: topo, Mode: mode,
		BufferFlits: 3, InjectQueue: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	hub := obs.NewHub()
	net.SetFlitObserver(hub.FlitScope())
	gen, err := workload.NewGenerator(workload.Uniform{}, net.Nodes(), load, 1)
	if err != nil {
		t.Fatal(err)
	}
	for c := 0; c < cycles; c++ {
		for _, a := range gen.Cycle() {
			_ = net.Inject(network.Packet{Src: a.Src, Dst: a.Dst, Data: []network.Word{network.Word(c)}})
		}
		net.Tick(1)
	}
	net.TickUntilQuiet(200000)
	return hub, net
}

// recordedSnapshot memoizes one perfreg recording for the whole test run
// (recording runs every canonical scenario).
var recordedSnapshot = sync.OnceValues(func() (*perfreg.Snapshot, error) {
	return perfreg.Record(perfreg.RecordConfig{Label: "diff-test", Reps: 1, SkipBenches: true})
})

func snapshot(t *testing.T) *perfreg.Snapshot {
	t.Helper()
	s, err := recordedSnapshot()
	if err != nil {
		t.Fatalf("perfreg.Record: %v", err)
	}
	return s
}

// mustReconcile asserts every section of the report sums exactly.
func mustReconcile(t *testing.T, r *Report) {
	t.Helper()
	if err := r.Reconcile(); err != nil {
		t.Fatal(err)
	}
}

func TestSectionPermilleAndTotals(t *testing.T) {
	b := newSection("s", "units")
	b.term("x", 10, 40, "") // +30
	b.term("y", 50, 40, "") // -10
	b.term("z", 7, 7, "")   // 0
	s := b.seal()
	if s.TotalA != 67 || s.TotalB != 87 || s.TotalDelta != 20 {
		t.Fatalf("sum-defined totals = %d/%d/%d", s.TotalA, s.TotalB, s.TotalDelta)
	}
	// |delta| sum is 40: +30 → +750‰, -10 → -250‰.
	shares := map[string]int64{}
	for _, term := range s.Terms {
		shares[term.Key] = term.Permille
	}
	if shares["x"] != 750 || shares["y"] != -250 || shares["z"] != 0 {
		t.Fatalf("permille shares = %v", shares)
	}
}

func TestReconcileCatchesIncompleteWaterfall(t *testing.T) {
	r := newReport("test", "a", "b")
	b := newSection("instr", "instructions")
	b.term("cell", 10, 15, "")
	b.total("instr/total", 10, 20) // terms explain only 5 of the 10 delta
	r.addSection(b)
	err := r.Reconcile()
	if err == nil || !strings.Contains(err.Error(), "instr") {
		t.Fatalf("Reconcile = %v, want incompleteness error naming the section", err)
	}
}

func TestBlameRanking(t *testing.T) {
	r := newReport("test", "a", "b")
	b := newSection("s1", "units")
	b.term("small", 0, 1, "")
	b.term("big", 0, -100, "")
	r.addSection(b)
	b2 := newSection("s2", "events")
	b2.term("mid", 5, 55, "")
	b2.term("flat", 9, 9, "")
	r.addSection(b2)
	blame := r.Blame(0)
	if len(blame) != 3 {
		t.Fatalf("blame has %d entries, want 3 (flat term excluded)", len(blame))
	}
	if blame[0].Key != "big" || blame[1].Key != "mid" || blame[2].Key != "small" {
		t.Fatalf("blame order = %v", blame)
	}
	if top := r.Blame(1); len(top) != 1 || top[0].Key != "big" {
		t.Fatalf("Blame(1) = %v", top)
	}
}

func TestPerfregSelfDiffIsZero(t *testing.T) {
	s := snapshot(t)
	r := ComparePerfreg(s, s)
	mustReconcile(t, r)
	if !r.Zero() {
		var buf bytes.Buffer
		_ = WriteText(&buf, r)
		t.Fatalf("self-diff not zero:\n%s", buf.String())
	}
	var buf bytes.Buffer
	if err := WriteText(&buf, r); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "identical: all") {
		t.Fatalf("self-diff text missing zero statement:\n%s", buf.String())
	}
}

// copySnapshot deep-copies the parts the diff reads.
func copySnapshot(s *perfreg.Snapshot) *perfreg.Snapshot {
	c := *s
	c.Scenarios = make([]perfreg.ScenarioResult, len(s.Scenarios))
	for i, sc := range s.Scenarios {
		c.Scenarios[i] = sc
		c.Scenarios[i].Sim = make(map[string]uint64, len(sc.Sim))
		for k, v := range sc.Sim {
			c.Scenarios[i].Sim[k] = v
		}
	}
	c.Benches = append([]perfreg.BenchResult(nil), s.Benches...)
	return &c
}

func TestPerfregDiffAttributesInstructionChange(t *testing.T) {
	a := snapshot(t)
	b := copySnapshot(a)
	name := b.Scenarios[0].Name
	sim := b.Scenarios[0].Sim
	var cell string
	for k := range sim {
		if strings.HasPrefix(k, "instr/") && k != "instr/total" {
			if cell == "" || k < cell {
				cell = k
			}
		}
	}
	if cell == "" {
		t.Fatalf("scenario %s has no instruction cells", name)
	}
	sim[cell] += 7
	sim["instr/total"] += 7

	r := ComparePerfreg(a, b)
	mustReconcile(t, r)
	if r.Zero() {
		t.Fatal("diff with a moved cell is Zero")
	}
	blame := r.Blame(1)
	wantKey := strings.TrimPrefix(cell, "instr/")
	if len(blame) != 1 || blame[0].Section != name+"/instr" || blame[0].Key != wantKey || blame[0].Delta != 7 {
		t.Fatalf("top blame = %+v, want %s/instr %s +7", blame, name, wantKey)
	}
	if blame[0].Permille != 1000 {
		t.Fatalf("sole mover permille = %d, want 1000", blame[0].Permille)
	}
}

func TestPerfregDiffBrokenTotalFailsReconcile(t *testing.T) {
	a := snapshot(t)
	b := copySnapshot(a)
	// Move a cell WITHOUT moving instr/total: the waterfall no longer
	// explains the recorded total, which Reconcile must reject.
	sim := b.Scenarios[0].Sim
	for k := range sim {
		if strings.HasPrefix(k, "instr/") && k != "instr/total" {
			sim[k] += 3
			break
		}
	}
	if err := ComparePerfreg(a, b).Reconcile(); err == nil {
		t.Fatal("Reconcile accepted a waterfall that does not sum to instr/total")
	}
}

func TestPerfregDiffReportsAsymmetry(t *testing.T) {
	a := snapshot(t)
	b := copySnapshot(a)
	dropped := b.Scenarios[len(b.Scenarios)-1].Name
	b.Scenarios = b.Scenarios[:len(b.Scenarios)-1]
	b.Scenarios[0].Sim["custom/only-in-b"] = 42

	r := ComparePerfreg(a, b)
	mustReconcile(t, r)
	if len(r.OnlyA) != 1 || r.OnlyA[0] != "scenario "+dropped {
		t.Fatalf("OnlyA = %v, want the dropped scenario", r.OnlyA)
	}
	found := false
	for _, s := range r.Sections {
		for _, term := range s.Terms {
			if term.Key == "custom/only-in-b" {
				found = true
				if term.OnlyIn != "b" || term.A != 0 || term.B != 42 {
					t.Fatalf("one-sided term = %+v", term)
				}
			}
		}
	}
	if !found {
		t.Fatal("one-sided sim key was silently dropped")
	}
}

func TestCompareRunsAcrossCanonicalScenarios(t *testing.T) {
	names := experiments.CanonicalScenarios()
	runs := make([]Run, len(names))
	for i, name := range names {
		hub, tl := runCanonical(t, name, 64)
		runs[i] = Run{Label: name, Metrics: hub.Metrics.JSONMetrics(), Timeline: tl}
	}
	for i, a := range runs {
		self := CompareRuns(a, a)
		mustReconcile(t, self)
		if !self.Zero() {
			t.Fatalf("%s: self-diff not zero", names[i])
		}
		for j, b := range runs {
			r := CompareRuns(a, b)
			mustReconcile(t, r)
			if i != j && r.Zero() {
				t.Fatalf("%s vs %s: distinct scenarios diff to zero", names[i], names[j])
			}
		}
	}
}

func TestCompareRunsLinkWaterfallPinsFlitMoves(t *testing.T) {
	hubA, netA := runFlit(t, flitnet.Deterministic, 0.2, 300)
	hubB, netB := runFlit(t, flitnet.CR, 0.2, 300)
	a := Run{Label: "det", Metrics: hubA.Metrics.JSONMetrics(), FlitMoves: netA.FlitStats().FlitMoves}
	b := Run{Label: "cr", Metrics: hubB.Metrics.JSONMetrics(), FlitMoves: netB.FlitStats().FlitMoves}
	r := CompareRuns(a, b)
	mustReconcile(t, r)
	var links *Section
	for i := range r.Sections {
		if r.Sections[i].Name == "links" {
			links = &r.Sections[i]
		}
	}
	if links == nil || links.TotalKey != "stats/flit_moves" {
		t.Fatalf("links section missing or not pinned to the engine total: %+v", links)
	}
	if len(links.Terms) == 0 || links.TotalA == 0 || links.TotalB == 0 {
		t.Fatalf("links waterfall empty: %d terms, totals %d/%d", len(links.Terms), links.TotalA, links.TotalB)
	}
	// One-sided timeline must be declared, not dropped.
	hubA2, _ := runFlit(t, flitnet.Deterministic, 0.2, 300)
	_ = hubA2
	aWithTL := a
	aWithTL.Timeline = &timeline.Timeline{Schema: timeline.SchemaVersion, Interval: 1}
	r2 := CompareRuns(aWithTL, b)
	if len(r2.OnlyA) != 1 || r2.OnlyA[0] != "timeline" {
		t.Fatalf("one-sided timeline not reported: OnlyA=%v", r2.OnlyA)
	}
}

func TestCompareTimelinesPhasesPartitionEvents(t *testing.T) {
	_, tlA := runCanonical(t, experiments.CanonicalScenarios()[0], 64)
	_, tlB := runCanonical(t, experiments.CanonicalScenarios()[0], 128)
	r := CompareTimelines("w64", "w128", tlA, tlB)
	mustReconcile(t, r)
	var phases *Section
	for i := range r.Sections {
		if r.Sections[i].Name == "phases" {
			phases = &r.Sections[i]
		}
	}
	if phases == nil || len(phases.Terms) != 4 {
		t.Fatalf("phases section = %+v, want the four regime kinds", phases)
	}
	// Every per-phase breakdown section is pinned to its independently
	// aggregated phase total; Reconcile above proved them complete.
	for _, s := range r.Sections {
		if strings.HasPrefix(s.Name, "phase/") && s.TotalKey == "" {
			t.Fatalf("section %s is not pinned to a phase total", s.Name)
		}
	}
	// Interval mismatch is a declared caveat.
	shrunk := *tlB
	shrunk.Interval = tlB.Interval * 2
	r2 := CompareTimelines("a", "b", tlA, &shrunk)
	if len(r2.Notes) == 0 || !strings.Contains(r2.Notes[0], "intervals differ") {
		t.Fatalf("interval mismatch not noted: %v", r2.Notes)
	}
}

// critpathSet analyzes one canonical scenario into a loaded CritpathDoc by
// round-tripping through the real JSON renderer.
func critpathSet(t *testing.T, name string, words int) CritpathSet {
	t.Helper()
	hub, _ := runCanonical(t, name, words)
	js, err := critpath.JSON(critpath.Analyze(hub.Trace.Events()))
	if err != nil {
		t.Fatal(err)
	}
	var doc CritpathDoc
	if err := json.Unmarshal(js, &doc); err != nil {
		t.Fatal(err)
	}
	return CritpathSet{name: &doc}
}

func TestCompareCritpathAcrossCanonicalScenarios(t *testing.T) {
	names := experiments.CanonicalScenarios()
	sets := make([]CritpathSet, len(names))
	for i, name := range names {
		sets[i] = critpathSet(t, name, 64)
	}
	for i, a := range sets {
		self := CompareCritpath("a", "b", a, a)
		mustReconcile(t, self)
		if !self.Zero() {
			var buf bytes.Buffer
			_ = WriteText(&buf, self)
			t.Fatalf("%s: critpath self-diff not zero:\n%s", names[i], buf.String())
		}
		for j, b := range sets {
			if i == j {
				continue
			}
			// Cross-scenario sets share no report key, so everything lands
			// in the asymmetry lists; same-key comparison is exercised below.
			r := CompareCritpath("a", "b", a, b)
			mustReconcile(t, r)
			if len(r.OnlyA) != 1 || len(r.OnlyB) != 1 {
				t.Fatalf("%s vs %s: asymmetric reports not declared", names[i], names[j])
			}
		}
	}
	// Same scenario at different transfer sizes ("single" ignores words,
	// so pick a streaming one): aligned comparison with the work waterfall
	// pinned to the recorded work total.
	name := "cm5-stream"
	small := critpathSet(t, name, 64)
	big := critpathSet(t, name, 128)
	r := CompareCritpath("w64", "w128", small, big)
	mustReconcile(t, r)
	if r.Zero() {
		t.Fatal("different transfer sizes diff to zero")
	}
	var sawPinned bool
	for _, s := range r.Sections {
		if (s.Name == "waterfall" || s.Name == "work-by-axis") && s.TotalKey == "categories/work" {
			sawPinned = true
		}
	}
	if !sawPinned {
		t.Fatal("work waterfalls are not pinned to the recorded work total")
	}
}

func TestLoadArtifactSniffing(t *testing.T) {
	dir := t.TempDir()
	writeFile := func(name string, data []byte) string {
		t.Helper()
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, data, 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}

	hub, tl := runCanonical(t, experiments.CanonicalScenarios()[0], 64)
	metricsDoc, err := hub.Metrics.MetricsJSON()
	if err != nil {
		t.Fatal(err)
	}
	tlDoc, err := json.Marshal(tl)
	if err != nil {
		t.Fatal(err)
	}
	gridDoc, err := json.Marshal(map[string]any{
		"points": []map[string]any{{"mode": "cr", "load_permille": 200, "timeline": tl}},
	})
	if err != nil {
		t.Fatal(err)
	}
	js, err := critpath.JSON(critpath.Analyze(hub.Trace.Events()))
	if err != nil {
		t.Fatal(err)
	}
	multiDoc, err := json.Marshal(map[string]any{"scenarios": map[string]json.RawMessage{"s": js}})
	if err != nil {
		t.Fatal(err)
	}
	snapPath := filepath.Join(dir, "snap.json")
	if err := snapshot(t).WriteFile(snapPath); err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		path string
		kind string
	}{
		{writeFile("metrics.json", metricsDoc), "metrics"},
		{writeFile("timeline.json", tlDoc), "timeline"},
		{writeFile("grid.json", gridDoc), "timeline-grid"},
		{writeFile("critpath-single.json", js), "critpath"},
		{writeFile("critpath-multi.json", multiDoc), "critpath"},
		{snapPath, "perfreg"},
	}
	arts := make([]*Artifact, len(cases))
	for i, c := range cases {
		a, err := LoadArtifact(c.path)
		if err != nil {
			t.Fatalf("LoadArtifact(%s): %v", c.path, err)
		}
		if a.Kind != c.kind {
			t.Fatalf("LoadArtifact(%s).Kind = %s, want %s", c.path, a.Kind, c.kind)
		}
		arts[i] = a
	}

	// Every kind self-compares to zero through the artifact dispatcher.
	for i, a := range arts {
		r, err := CompareArtifacts(a, a)
		if err != nil {
			t.Fatalf("CompareArtifacts(%s): %v", cases[i].kind, err)
		}
		mustReconcile(t, r)
		if !r.Zero() {
			t.Fatalf("%s: artifact self-diff not zero", cases[i].kind)
		}
	}

	if _, err := CompareArtifacts(arts[0], arts[1]); err == nil {
		t.Fatal("comparing a metrics export against a timeline did not error")
	}
	if _, err := LoadArtifactBytes("x", []byte(`{"what":1}`)); err == nil || !strings.Contains(err.Error(), "unrecognised") {
		t.Fatalf("unknown shape error = %v", err)
	}
}

func TestRenderersAreDeterministic(t *testing.T) {
	a := snapshot(t)
	b := copySnapshot(a)
	b.Scenarios[0].Sim["instr/total"] += 11
	for k := range b.Scenarios[0].Sim {
		if strings.HasPrefix(k, "instr/") && k != "instr/total" {
			b.Scenarios[0].Sim[k] += 11
			break
		}
	}
	render := func() (string, string, string) {
		r := ComparePerfreg(a, b)
		var text, jsonB, csvB bytes.Buffer
		if err := WriteText(&text, r); err != nil {
			t.Fatal(err)
		}
		if err := WriteJSON(&jsonB, r); err != nil {
			t.Fatal(err)
		}
		if err := WriteCSV(&csvB, r); err != nil {
			t.Fatal(err)
		}
		return text.String(), jsonB.String(), csvB.String()
	}
	t1, j1, c1 := render()
	t2, j2, c2 := render()
	if t1 != t2 || j1 != j2 || c1 != c2 {
		t.Fatal("renderers are not deterministic across invocations")
	}
	if !strings.Contains(t1, "top movers") {
		t.Fatalf("text report missing blame section:\n%s", t1)
	}
	var decoded Report
	if err := json.Unmarshal([]byte(j1), &decoded); err != nil {
		t.Fatalf("JSON report does not round-trip: %v", err)
	}
	if decoded.Schema != SchemaVersion || decoded.Kind != "perfreg" {
		t.Fatalf("decoded report header = %+v", decoded)
	}
	if !strings.HasPrefix(c1, "kind,section,unit,key,a,b,delta,permille,only_in\n") {
		t.Fatalf("CSV header = %q", strings.SplitN(c1, "\n", 2)[0])
	}
}
