package diff

import (
	"fmt"
	"sort"
)

// CritpathDoc mirrors the JSON shape of one critpath analysis
// (critpath.JSON): the exact category decomposition, the per-role and
// per-axis splits, the Role×Proto×Axis cost waterfall, the latency
// quantiles, and the cross-message critical path.
type CritpathDoc struct {
	Messages     int `json:"messages"`
	Unattributed int `json:"unattributed_events"`
	TotalEvents  int `json:"total_events"`
	Latency      struct {
		Mean float64 `json:"mean"`
		P50  uint64  `json:"p50"`
		P90  uint64  `json:"p90"`
		P99  uint64  `json:"p99"`
		Max  uint64  `json:"max"`
	} `json:"latency"`
	ByCategory map[string]uint64 `json:"by_category"`
	ByRole     map[string]uint64 `json:"by_role"`
	ByAxis     map[string]uint64 `json:"work_by_axis"`
	Waterfall  []struct {
		Role  string `json:"role"`
		Proto string `json:"proto"`
		Axis  string `json:"axis"`
		Units uint64 `json:"units"`
	} `json:"waterfall"`
	Critical struct {
		Steps      int               `json:"steps"`
		Span       uint64            `json:"span"`
		ByCategory map[string]uint64 `json:"by_category"`
	} `json:"critical_path"`
}

// CritpathSet is a keyed collection of critpath analyses: the multi-report
// document cmd/critpath -json emits (protocol scenarios by name, flit grid
// points by mode and load), or a single report under one key.
type CritpathSet map[string]*CritpathDoc

// CompareCritpath builds the differential attribution between two critpath
// report sets, aligned by report key. Each aligned pair contributes its
// exact category/role decompositions (sum-defined), its work-by-axis and
// Role×Proto×Axis waterfalls (pinned to the independently recorded work
// total), its critical-path composition (pinned to the recorded span), and
// a latency quantile shift.
func CompareCritpath(aLabel, bLabel string, a, b CritpathSet) *Report {
	r := newReport("critpath", aLabel, bLabel)
	for _, key := range unionKeys(a, b) {
		da, inA := a[key]
		db, inB := b[key]
		switch {
		case !inA:
			r.OnlyB = append(r.OnlyB, "report "+key)
			continue
		case !inB:
			r.OnlyA = append(r.OnlyA, "report "+key)
			continue
		}
		critpathSections(r, prefixFor(key, a, b), da, db)
	}
	return r
}

// prefixFor namespaces section names only when the set holds more than one
// report, so single-report diffs read without redundant qualifiers.
func prefixFor(key string, a, b CritpathSet) string {
	if len(a) == 1 && len(b) == 1 {
		return ""
	}
	return key + "/"
}

// critpathSections appends one aligned report pair's comparison.
func critpathSections(r *Report, prefix string, a, b *CritpathDoc) {
	cats := newSection(prefix+"categories", "units")
	alignUint(cats, a.ByCategory, b.ByCategory)
	r.addSection(cats)

	roles := newSection(prefix+"roles", "units")
	alignUint(roles, a.ByRole, b.ByRole)
	r.addSection(roles)

	// Work splits by axis and by Role×Proto×Axis both partition the work
	// category exactly (every work segment carries an axis), so the
	// recorded work total proves each waterfall complete.
	workA, workB := int64(a.ByCategory["work"]), int64(b.ByCategory["work"])
	axes := newSection(prefix+"work-by-axis", "units")
	alignUint(axes, a.ByAxis, b.ByAxis)
	axes.total(prefix+"categories/work", workA, workB)
	r.addSection(axes)

	wf := newSection(prefix+"waterfall", "units")
	wfMap := func(d *CritpathDoc) map[string]int64 {
		m := make(map[string]int64, len(d.Waterfall))
		for _, row := range d.Waterfall {
			m[row.Role+"/"+row.Proto+"/"+row.Axis] += int64(row.Units)
		}
		return m
	}
	alignInt(wf, wfMap(a), wfMap(b))
	wf.total(prefix+"categories/work", workA, workB)
	r.addSection(wf)

	// The critical path's per-category gaps telescope to its span, so the
	// recorded span is an independent total for the composition.
	crit := newSection(prefix+"critical-path", "units")
	alignUint(crit, a.Critical.ByCategory, b.Critical.ByCategory)
	crit.total(prefix+"critical-path/span", int64(a.Critical.Span), int64(b.Critical.Span))
	r.addSection(crit)

	counts := newSection(prefix+"population", "count")
	counts.term("messages", int64(a.Messages), int64(b.Messages), "")
	counts.term("trace-events", int64(a.TotalEvents), int64(b.TotalEvents), "")
	counts.term("unattributed-events", int64(a.Unattributed), int64(b.Unattributed), "")
	counts.term("critical-path-steps", int64(a.Critical.Steps), int64(b.Critical.Steps), "")
	r.addSection(counts)

	r.Quantiles = append(r.Quantiles, QuantileShift{
		Key:    prefix + "latency",
		CountA: uint64(a.Messages), CountB: uint64(b.Messages),
		P50A: a.Latency.P50, P50B: b.Latency.P50,
		P90A: a.Latency.P90, P90B: b.Latency.P90,
		P99A: a.Latency.P99, P99B: b.Latency.P99,
		MaxA: a.Latency.Max, MaxB: b.Latency.Max,
	})
}

// alignUint feeds the union of two uint64-valued maps into a section.
func alignUint(sec *sectionBuilder, a, b map[string]uint64) {
	keys := make([]string, 0, len(a)+len(b))
	for k := range a {
		keys = append(keys, k)
	}
	for k := range b {
		if _, ok := a[k]; !ok {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	for _, k := range keys {
		va, inA := a[k]
		vb, inB := b[k]
		only := ""
		switch {
		case !inA:
			only = "b"
		case !inB:
			only = "a"
		}
		if va > 1<<62 || vb > 1<<62 {
			// Unreachable for real unit counts; guard the conversion anyway.
			panic(fmt.Sprintf("diff: value overflows int64 for key %s", k))
		}
		sec.term(k, int64(va), int64(vb), only)
	}
}
