package serve

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"msglayer/internal/obs"
)

// TestObsServeTwinNet: /twin answers a closed-form network prediction from
// query parameters, without touching the hub.
func TestObsServeTwinNet(t *testing.T) {
	srv := New(obs.NewHub())
	body := get(t, srv, "/twin?topology=mesh&mode=cr&load=0.15&cycles=800")
	var doc struct {
		Point      string  `json:"point"`
		Load       float64 `json:"load"`
		MeanLat    float64 `json:"mean_latency_cycles"`
		Calibrated bool    `json:"calibrated"`
	}
	if err := json.Unmarshal(body, &doc); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, body)
	}
	if doc.Point != "mesh(4,4)/cr/vc1" || doc.Load != 0.15 || !doc.Calibrated {
		t.Errorf("unexpected prediction: %+v", doc)
	}
	if doc.MeanLat <= 0 {
		t.Errorf("mean latency %v", doc.MeanLat)
	}
}

// TestObsServeTwinProto: ?proto= selects the protocol twin.
func TestObsServeTwinProto(t *testing.T) {
	srv := New(obs.NewHub())
	body := get(t, srv, "/twin?proto=cm5-stream&words=256")
	var doc struct {
		Scenario string `json:"scenario"`
		Total    uint64 `json:"total_instr"`
	}
	if err := json.Unmarshal(body, &doc); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, body)
	}
	if doc.Scenario != "cm5-stream" || doc.Total != 7501 {
		t.Errorf("unexpected prediction: %+v", doc)
	}
}

// TestObsServeTwinBadRequest: invalid points answer 400 with the reason.
func TestObsServeTwinBadRequest(t *testing.T) {
	srv := New(obs.NewHub())
	for _, path := range []string{
		"/twin?mode=warp",
		"/twin?load=0",
		"/twin?load=junk",
		"/twin?cycles=junk",
		"/twin?topology=torus",
		"/twin?proto=warp",
		"/twin?proto=cm5-stream&words=junk",
	} {
		rec := httptest.NewRecorder()
		srv.Handler().ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
		if rec.Code != http.StatusBadRequest {
			t.Errorf("GET %s = %d, want 400", path, rec.Code)
		}
		if strings.TrimSpace(rec.Body.String()) == "" {
			t.Errorf("GET %s: empty error body", path)
		}
	}
}

// TestObsServeIndexListsTwin: the index advertises the endpoint.
func TestObsServeIndexListsTwin(t *testing.T) {
	srv := New(obs.NewHub())
	if body := get(t, srv, "/"); !strings.Contains(string(body), "/twin") {
		t.Errorf("index missing /twin:\n%s", body)
	}
}
