package serve

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"testing"
	"time"

	"msglayer/internal/experiments"
	"msglayer/internal/obs"
	"msglayer/internal/obs/monitor"
	"msglayer/internal/obs/monitor/blame"
	"msglayer/internal/obs/timeline"
)

// alertRules fires deterministically on the fixed cm5-finite scenario: the
// send-rate floor is far above what one 32-word transfer sustains, so the
// alert opens mid-run; the event ceiling never fires.
func alertRules() *monitor.RuleSet {
	min := uint64(100000)
	max := uint64(1 << 62)
	return &monitor.RuleSet{Rules: []monitor.Rule{
		{
			Name: "send-floor", Kind: monitor.KindRate, Severity: "page",
			Match:      monitor.Match{Prefix: "packets_sent_total"},
			Min:        &min,
			ForWindows: 2, ClearWindows: 2,
		},
		{
			Name: "event-ceiling", Kind: monitor.KindRate,
			Match: monitor.Match{Prefix: "protocol_events_total"},
			Max:   &max,
		},
	}}
}

// fixedMonitorHub is fixedTimelineHub with an SLO monitor riding the
// sampler's window stream.
func fixedMonitorHub(t *testing.T) (*obs.Hub, *timeline.Sampler, *monitor.Monitor) {
	t.Helper()
	h := obs.NewHub()
	// Interval 2 splits the 4-round cm5-finite run into two windows, so the
	// two-window floor streak opens and the alert is still open at snapshot.
	s := timeline.New(h.Metrics, timeline.Config{Interval: 2})
	m, err := monitor.New(alertRules())
	if err != nil {
		t.Fatal(err)
	}
	m.SetBlamer(blame.Compute)
	m.Attach(s)
	h.SetTickListener(s.Advance)
	experiments.SetObserver(h)
	defer experiments.SetObserver(nil)
	if _, err := experiments.RunCanonical("cm5-finite", 32); err != nil {
		t.Fatal(err)
	}
	s.Flush(h.Round())
	return h, s, m
}

func TestObsServeAlertsGolden(t *testing.T) {
	h, s, m := fixedMonitorHub(t)
	srv := New(h)
	srv.SetTimeline(s)
	srv.SetMonitor(m)
	body := get(t, srv, "/alerts")
	if !strings.Contains(string(body), "rule send-floor") {
		t.Fatalf("/alerts text missing rule summary:\n%.1000s", body)
	}
	checkGolden(t, "alerts.golden", body)

	jsonBody := get(t, srv, "/alerts?format=json")
	var rep monitor.Report
	if err := json.Unmarshal(jsonBody, &rep); err != nil {
		t.Fatalf("/alerts?format=json does not parse: %v", err)
	}
	if rep.Schema != monitor.SchemaVersion || len(rep.Incidents) == 0 || rep.Digest == "" {
		t.Fatalf("/alerts json missing fields: schema=%d incidents=%d digest=%q", rep.Schema, len(rep.Incidents), rep.Digest)
	}
	csvBody := get(t, srv, "/alerts?format=csv")
	if !strings.HasPrefix(string(csvBody), "rule,kind,severity") {
		t.Fatalf("/alerts?format=csv missing header:\n%.200s", csvBody)
	}

	rec := httptest.NewRecorder()
	srv.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/alerts?format=bogus", nil))
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("GET /alerts?format=bogus = %d, want 400", rec.Code)
	}
}

func TestObsServeAlertsAbsent(t *testing.T) {
	srv := New(fixedHub(t))
	rec := httptest.NewRecorder()
	srv.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/alerts", nil))
	if rec.Code != http.StatusNotFound {
		t.Fatalf("GET /alerts without monitor = %d, want 404", rec.Code)
	}
}

// TestObsServeHealth covers the readiness transitions: ok without alerts,
// degraded (503) with an open alert, shutting-down (503) once Shutdown
// begins.
func TestObsServeHealth(t *testing.T) {
	srv := New(fixedHub(t))
	rec := httptest.NewRecorder()
	srv.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/health", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("GET /health without monitor = %d, want 200", rec.Code)
	}
	var doc struct {
		Status     string `json:"status"`
		SLOMonitor bool   `json:"slo_monitor"`
		OpenAlerts int    `json:"open_alerts"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &doc); err != nil {
		t.Fatalf("/health does not parse: %v", err)
	}
	if doc.Status != "ok" || doc.SLOMonitor {
		t.Fatalf("/health = %+v, want ok without monitor", doc)
	}

	h, s, m := fixedMonitorHub(t)
	if m.OpenAlerts() == 0 {
		t.Fatalf("fixture leaves no open alert; the health test needs one")
	}
	srv = New(h)
	srv.SetTimeline(s)
	srv.SetMonitor(m)
	rec = httptest.NewRecorder()
	srv.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/health", nil))
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("GET /health with open alert = %d, want 503", rec.Code)
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &doc); err != nil {
		t.Fatalf("/health does not parse: %v", err)
	}
	if doc.Status != "degraded" || !doc.SLOMonitor || doc.OpenAlerts == 0 {
		t.Fatalf("/health = %+v, want degraded with open alerts", doc)
	}

	// Shutdown on an unstarted server still flips the probes, so the
	// transition is testable without a listener.
	if err := srv.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	rec = httptest.NewRecorder()
	srv.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/health", nil))
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("GET /health during shutdown = %d, want 503", rec.Code)
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &doc); err != nil {
		t.Fatalf("/health does not parse: %v", err)
	}
	if doc.Status != "shutting-down" {
		t.Fatalf("/health status = %q, want shutting-down", doc.Status)
	}
}

// TestObsServeHealthzShutdown: the liveness probe answers 200 before and
// 503 after graceful shutdown begins.
func TestObsServeHealthzShutdown(t *testing.T) {
	srv := New(fixedHub(t))
	body := get(t, srv, "/healthz")
	if strings.TrimSpace(string(body)) != "ok" {
		t.Fatalf("GET /healthz = %q, want ok", body)
	}
	if err := srv.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	rec := httptest.NewRecorder()
	srv.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/healthz", nil))
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("GET /healthz during shutdown = %d, want 503", rec.Code)
	}
	if strings.TrimSpace(rec.Body.String()) != "shutting down" {
		t.Fatalf("GET /healthz during shutdown = %q, want shutting down", rec.Body.String())
	}
}

// TestObsServeHealthzNoGoroutineLeak exercises the full lifecycle over a
// real listener: 200 while serving, graceful shutdown, every goroutine
// reaped, and the handler reports 503 afterward.
func TestObsServeHealthzNoGoroutineLeak(t *testing.T) {
	h, s, m := fixedMonitorHub(t)
	before := runtime.NumGoroutine()

	srv := New(h)
	srv.SetTimeline(s)
	srv.SetMonitor(m)
	if err := srv.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	for _, path := range []string{"/healthz", "/alerts"} {
		resp, err := http.Get("http://" + srv.Addr() + path)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s = %d: %.200s", path, resp.StatusCode, body)
		}
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before {
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d before Start, %d after Shutdown", before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
	rec := httptest.NewRecorder()
	srv.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/healthz", nil))
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("GET /healthz after shutdown = %d, want 503", rec.Code)
	}
}
