package serve

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"runtime"
	"testing"
	"time"

	"msglayer/internal/experiments"
	"msglayer/internal/obs"
	"msglayer/internal/obs/timeline"
)

var update = flag.Bool("update", false, "rewrite golden files")

// fixedHub runs the fixed scenario every golden test renders: one 32-word
// finite transfer on the CM-5 substrate, fully deterministic.
func fixedHub(t *testing.T) *obs.Hub {
	t.Helper()
	h := obs.NewHub()
	experiments.SetObserver(h)
	defer experiments.SetObserver(nil)
	if _, err := experiments.RunCanonical("cm5-finite", 32); err != nil {
		t.Fatal(err)
	}
	return h
}

// get fetches a path from the handler and returns the body.
func get(t *testing.T, srv *Server, path string) []byte {
	t.Helper()
	rec := httptest.NewRecorder()
	srv.Handler().ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("GET %s = %d, want 200", path, rec.Code)
	}
	return rec.Body.Bytes()
}

// checkGolden compares got against testdata/<name>, rewriting under -update.
func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run go test -update): %v", err)
	}
	if string(got) != string(want) {
		t.Errorf("%s drifted from golden file; run go test ./internal/obs/serve -update and review the diff.\n--- got ---\n%.2000s", name, got)
	}
}

func TestObsServeMetricsGolden(t *testing.T) {
	srv := New(fixedHub(t))
	checkGolden(t, "metrics.golden", get(t, srv, "/metrics"))
}

func TestObsServeSnapshotGolden(t *testing.T) {
	srv := New(fixedHub(t))
	body := get(t, srv, "/snapshot")
	var doc struct {
		Schema      int             `json:"schema"`
		Round       uint64          `json:"round"`
		TraceEvents int             `json:"trace_events"`
		Registry    json.RawMessage `json:"registry"`
	}
	if err := json.Unmarshal(body, &doc); err != nil {
		t.Fatalf("/snapshot does not parse: %v", err)
	}
	if doc.Schema != snapshotSchema || doc.Round == 0 || doc.TraceEvents == 0 || len(doc.Registry) == 0 {
		t.Fatalf("/snapshot missing fields: %+v", doc)
	}
	checkGolden(t, "snapshot.golden", body)
}

func TestObsServeTraceAndIndex(t *testing.T) {
	srv := New(fixedHub(t))
	var doc struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
	}
	if err := json.Unmarshal(get(t, srv, "/trace"), &doc); err != nil {
		t.Fatalf("/trace does not parse: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("/trace empty")
	}
	if body := string(get(t, srv, "/")); len(body) == 0 {
		t.Fatal("index empty")
	}
	rec := httptest.NewRecorder()
	srv.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/nope", nil))
	if rec.Code != http.StatusNotFound {
		t.Fatalf("GET /nope = %d, want 404", rec.Code)
	}
}

// fixedTimelineHub runs the fixed scenario with a timeline sampler on the
// hub's round clock, flushed at the final round.
func fixedTimelineHub(t *testing.T) (*obs.Hub, *timeline.Sampler) {
	t.Helper()
	h := obs.NewHub()
	s := timeline.New(h.Metrics, timeline.Config{Interval: 8})
	h.SetTickListener(s.Advance)
	experiments.SetObserver(h)
	defer experiments.SetObserver(nil)
	if _, err := experiments.RunCanonical("cm5-finite", 32); err != nil {
		t.Fatal(err)
	}
	s.Flush(h.Round())
	return h, s
}

func TestObsServeTimelineGolden(t *testing.T) {
	h, s := fixedTimelineHub(t)
	if err := s.Reconcile(); err != nil {
		t.Fatalf("timeline does not reconcile: %v", err)
	}
	srv := New(h)
	srv.SetTimeline(s)
	body := get(t, srv, "/timeline")
	var doc timeline.Timeline
	if err := json.Unmarshal(body, &doc); err != nil {
		t.Fatalf("/timeline does not parse: %v", err)
	}
	if doc.Schema != timeline.SchemaVersion || len(doc.Windows) == 0 || doc.Digest == "" {
		t.Fatalf("/timeline missing fields: schema=%d windows=%d digest=%q", doc.Schema, len(doc.Windows), doc.Digest)
	}
	checkGolden(t, "timeline.golden", body)
}

func TestObsServeTimelineAbsent(t *testing.T) {
	srv := New(fixedHub(t))
	rec := httptest.NewRecorder()
	srv.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/timeline", nil))
	if rec.Code != http.StatusNotFound {
		t.Fatalf("GET /timeline without sampler = %d, want 404", rec.Code)
	}
}

func TestObsServeTimelineNoGoroutineLeak(t *testing.T) {
	h, s := fixedTimelineHub(t)
	before := runtime.NumGoroutine()

	srv := New(h)
	srv.SetTimeline(s)
	if err := srv.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get("http://" + srv.Addr() + "/timeline")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /timeline = %d: %.200s", resp.StatusCode, body)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before {
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d before Start, %d after Shutdown", before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestObsServeCritpathGolden(t *testing.T) {
	srv := New(fixedHub(t))
	body := get(t, srv, "/critpath")
	checkGolden(t, "critpath.golden", body)
}

func TestObsServeStartShutdownNoGoroutineLeak(t *testing.T) {
	before := runtime.NumGoroutine()

	srv := New(obs.NewHub())
	if err := srv.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	for _, path := range []string{"/metrics", "/snapshot", "/trace", "/critpath", "/debug/pprof/"} {
		resp, err := http.Get("http://" + srv.Addr() + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s = %d: %.200s", path, resp.StatusCode, body)
		}
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := http.Get("http://" + srv.Addr() + "/metrics"); err == nil {
		t.Fatal("server still answering after Shutdown")
	}

	// The serve goroutine and the http keep-alive workers must wind down.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if runtime.NumGoroutine() <= before {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d before Start, %d after Shutdown", before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestObsServeSyncSerializesMutation(t *testing.T) {
	h := obs.NewHub()
	srv := New(h)
	c := h.Metrics.Counter(obs.Key{Name: "packets_sent_total", Node: 0, Proto: "cmam"})
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 200; i++ {
			srv.Sync(func() { c.Inc() })
		}
	}()
	for i := 0; i < 50; i++ {
		rec := httptest.NewRecorder()
		srv.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
		if rec.Code != http.StatusOK {
			t.Fatalf("GET /metrics = %d mid-mutation", rec.Code)
		}
	}
	<-done
	if got := fmt.Sprint(c.Value()); got != "200" {
		t.Fatalf("counter = %s, want 200", got)
	}
}
