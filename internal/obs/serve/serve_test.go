package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
	"time"

	"msglayer/internal/experiments"
	"msglayer/internal/obs"
	"msglayer/internal/obs/diff"
	"msglayer/internal/obs/timeline"
)

var update = flag.Bool("update", false, "rewrite golden files")

// fixedHub runs the fixed scenario every golden test renders: one 32-word
// finite transfer on the CM-5 substrate, fully deterministic.
func fixedHub(t *testing.T) *obs.Hub {
	t.Helper()
	h := obs.NewHub()
	experiments.SetObserver(h)
	defer experiments.SetObserver(nil)
	if _, err := experiments.RunCanonical("cm5-finite", 32); err != nil {
		t.Fatal(err)
	}
	return h
}

// get fetches a path from the handler and returns the body.
func get(t *testing.T, srv *Server, path string) []byte {
	t.Helper()
	rec := httptest.NewRecorder()
	srv.Handler().ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("GET %s = %d, want 200", path, rec.Code)
	}
	return rec.Body.Bytes()
}

// checkGolden compares got against testdata/<name>, rewriting under -update.
func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run go test -update): %v", err)
	}
	if string(got) != string(want) {
		t.Errorf("%s drifted from golden file; run go test ./internal/obs/serve -update and review the diff.\n--- got ---\n%.2000s", name, got)
	}
}

func TestObsServeMetricsGolden(t *testing.T) {
	srv := New(fixedHub(t))
	checkGolden(t, "metrics.golden", get(t, srv, "/metrics"))
}

func TestObsServeSnapshotGolden(t *testing.T) {
	srv := New(fixedHub(t))
	body := get(t, srv, "/snapshot")
	var doc struct {
		Schema      int             `json:"schema"`
		Round       uint64          `json:"round"`
		TraceEvents int             `json:"trace_events"`
		Registry    json.RawMessage `json:"registry"`
	}
	if err := json.Unmarshal(body, &doc); err != nil {
		t.Fatalf("/snapshot does not parse: %v", err)
	}
	if doc.Schema != snapshotSchema || doc.Round == 0 || doc.TraceEvents == 0 || len(doc.Registry) == 0 {
		t.Fatalf("/snapshot missing fields: %+v", doc)
	}
	checkGolden(t, "snapshot.golden", body)
}

func TestObsServeTraceAndIndex(t *testing.T) {
	srv := New(fixedHub(t))
	var doc struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
	}
	if err := json.Unmarshal(get(t, srv, "/trace"), &doc); err != nil {
		t.Fatalf("/trace does not parse: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("/trace empty")
	}
	if body := string(get(t, srv, "/")); len(body) == 0 {
		t.Fatal("index empty")
	}
	rec := httptest.NewRecorder()
	srv.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/nope", nil))
	if rec.Code != http.StatusNotFound {
		t.Fatalf("GET /nope = %d, want 404", rec.Code)
	}
}

// fixedTimelineHub runs the fixed scenario with a timeline sampler on the
// hub's round clock, flushed at the final round.
func fixedTimelineHub(t *testing.T) (*obs.Hub, *timeline.Sampler) {
	t.Helper()
	h := obs.NewHub()
	s := timeline.New(h.Metrics, timeline.Config{Interval: 8})
	h.SetTickListener(s.Advance)
	experiments.SetObserver(h)
	defer experiments.SetObserver(nil)
	if _, err := experiments.RunCanonical("cm5-finite", 32); err != nil {
		t.Fatal(err)
	}
	s.Flush(h.Round())
	return h, s
}

func TestObsServeTimelineGolden(t *testing.T) {
	h, s := fixedTimelineHub(t)
	if err := s.Reconcile(); err != nil {
		t.Fatalf("timeline does not reconcile: %v", err)
	}
	srv := New(h)
	srv.SetTimeline(s)
	body := get(t, srv, "/timeline")
	var doc timeline.Timeline
	if err := json.Unmarshal(body, &doc); err != nil {
		t.Fatalf("/timeline does not parse: %v", err)
	}
	if doc.Schema != timeline.SchemaVersion || len(doc.Windows) == 0 || doc.Digest == "" {
		t.Fatalf("/timeline missing fields: schema=%d windows=%d digest=%q", doc.Schema, len(doc.Windows), doc.Digest)
	}
	checkGolden(t, "timeline.golden", body)
}

func TestObsServeTimelineAbsent(t *testing.T) {
	srv := New(fixedHub(t))
	rec := httptest.NewRecorder()
	srv.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/timeline", nil))
	if rec.Code != http.StatusNotFound {
		t.Fatalf("GET /timeline without sampler = %d, want 404", rec.Code)
	}
}

func TestObsServeTimelineNoGoroutineLeak(t *testing.T) {
	h, s := fixedTimelineHub(t)
	before := runtime.NumGoroutine()

	srv := New(h)
	srv.SetTimeline(s)
	if err := srv.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get("http://" + srv.Addr() + "/timeline")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /timeline = %d: %.200s", resp.StatusCode, body)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before {
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d before Start, %d after Shutdown", before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// postDiff POSTs a baseline artifact to /diff and returns (code, body).
func postDiff(t *testing.T, srv *Server, path string, body []byte) (int, string) {
	t.Helper()
	rec := httptest.NewRecorder()
	srv.Handler().ServeHTTP(rec, httptest.NewRequest("POST", path, bytes.NewReader(body)))
	return rec.Code, rec.Body.String()
}

func TestObsServeDiffSelfAndDrift(t *testing.T) {
	h := fixedHub(t)
	srv := New(h)
	baseline := get(t, srv, "/snapshot") // the wrapped form: registry inside

	// The hub has not moved since the snapshot: the diff is exactly zero.
	code, body := postDiff(t, srv, "/diff", baseline)
	if code != http.StatusOK {
		t.Fatalf("POST /diff = %d: %.500s", code, body)
	}
	if !strings.Contains(body, "identical: all") {
		t.Fatalf("self-diff is not zero:\n%s", body)
	}

	// Mutate the hub under Sync; the diff must attribute the exact delta.
	c := h.Metrics.Counter(obs.Key{Name: "packets_sent_total", Node: 0, Proto: "cmam"})
	srv.Sync(func() { c.Add(7) })
	code, body = postDiff(t, srv, "/diff", baseline)
	if code != http.StatusOK {
		t.Fatalf("POST /diff after drift = %d: %.500s", code, body)
	}
	for _, want := range []string{"packets_sent_total", "top movers", "B=live"} {
		if !strings.Contains(body, want) {
			t.Fatalf("drift diff missing %q:\n%s", want, body)
		}
	}

	// JSON format parses back into a reconciling metrics report.
	rec := httptest.NewRecorder()
	srv.Handler().ServeHTTP(rec, httptest.NewRequest("POST", "/diff?format=json", bytes.NewReader(baseline)))
	if rec.Code != http.StatusOK {
		t.Fatalf("POST /diff?format=json = %d", rec.Code)
	}
	var rep diff.Report
	if err := json.Unmarshal(rec.Body.Bytes(), &rep); err != nil {
		t.Fatalf("/diff JSON does not parse: %v", err)
	}
	if rep.Kind != "metrics" || rep.Zero() {
		t.Fatalf("drift report kind=%q zero=%v", rep.Kind, rep.Zero())
	}
	if err := rep.Reconcile(); err != nil {
		t.Fatalf("/diff report does not reconcile: %v", err)
	}

	// CSV format carries the standard header.
	rec = httptest.NewRecorder()
	srv.Handler().ServeHTTP(rec, httptest.NewRequest("POST", "/diff?format=csv", bytes.NewReader(baseline)))
	if rec.Code != http.StatusOK || !strings.HasPrefix(rec.Body.String(), "kind,section,unit,key,") {
		t.Fatalf("POST /diff?format=csv = %d: %.200s", rec.Code, rec.Body.String())
	}
}

func TestObsServeDiffFileBaseline(t *testing.T) {
	h := fixedHub(t)
	srv := New(h)
	var reg json.RawMessage
	var err error
	srv.Sync(func() { reg, err = h.Metrics.MetricsJSON() })
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "metrics.json")
	if err := os.WriteFile(path, reg, 0o644); err != nil {
		t.Fatal(err)
	}
	body := get(t, srv, "/diff?file="+path)
	if !strings.Contains(string(body), "identical: all") {
		t.Fatalf("file-referenced self-diff is not zero:\n%s", body)
	}
}

func TestObsServeDiffTimelineBaseline(t *testing.T) {
	h, s := fixedTimelineHub(t)
	srv := New(h)
	srv.SetTimeline(s)
	baseline := get(t, srv, "/timeline")
	code, body := postDiff(t, srv, "/diff", baseline)
	if code != http.StatusOK {
		t.Fatalf("POST /diff (timeline) = %d: %.500s", code, body)
	}
	if !strings.Contains(body, "identical: all") {
		t.Fatalf("timeline self-diff is not zero:\n%s", body)
	}

	// Without a sampler attached, a timeline baseline has no live peer.
	bare := New(fixedHub(t))
	if code, _ := postDiff(t, bare, "/diff", baseline); code != http.StatusNotFound {
		t.Fatalf("timeline diff without sampler = %d, want 404", code)
	}
}

func TestObsServeDiffErrors(t *testing.T) {
	srv := New(fixedHub(t))
	// No baseline at all.
	rec := httptest.NewRecorder()
	srv.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/diff", nil))
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("GET /diff with no baseline = %d, want 400", rec.Code)
	}
	// Unparseable body.
	if code, _ := postDiff(t, srv, "/diff", []byte("not json")); code != http.StatusBadRequest {
		t.Fatalf("garbage baseline = %d, want 400", code)
	}
	// Recognised artifact of the wrong kind (a critpath report).
	critpath := []byte(`{"by_category":{},"critical_path":{"steps":0,"span":0}}`)
	if code, body := postDiff(t, srv, "/diff", critpath); code != http.StatusBadRequest || !strings.Contains(body, "critpath") {
		t.Fatalf("critpath baseline = %d: %.200s", code, body)
	}
	// Unknown format.
	baseline := get(t, srv, "/snapshot")
	rec = httptest.NewRecorder()
	srv.Handler().ServeHTTP(rec, httptest.NewRequest("POST", "/diff?format=xml", bytes.NewReader(baseline)))
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("format=xml = %d, want 400", rec.Code)
	}
	// Missing file.
	rec = httptest.NewRecorder()
	srv.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/diff?file=/nonexistent/base.json", nil))
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("missing file = %d, want 400", rec.Code)
	}
}

func TestObsServeCritpathGolden(t *testing.T) {
	srv := New(fixedHub(t))
	body := get(t, srv, "/critpath")
	checkGolden(t, "critpath.golden", body)
}

func TestObsServeStartShutdownNoGoroutineLeak(t *testing.T) {
	before := runtime.NumGoroutine()

	srv := New(obs.NewHub())
	if err := srv.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	for _, path := range []string{"/metrics", "/snapshot", "/trace", "/critpath", "/debug/pprof/"} {
		resp, err := http.Get("http://" + srv.Addr() + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s = %d: %.200s", path, resp.StatusCode, body)
		}
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := http.Get("http://" + srv.Addr() + "/metrics"); err == nil {
		t.Fatal("server still answering after Shutdown")
	}

	// The serve goroutine and the http keep-alive workers must wind down.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if runtime.NumGoroutine() <= before {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d before Start, %d after Shutdown", before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestObsServeSyncSerializesMutation(t *testing.T) {
	h := obs.NewHub()
	srv := New(h)
	c := h.Metrics.Counter(obs.Key{Name: "packets_sent_total", Node: 0, Proto: "cmam"})
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 200; i++ {
			srv.Sync(func() { c.Inc() })
		}
	}()
	for i := 0; i < 50; i++ {
		rec := httptest.NewRecorder()
		srv.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
		if rec.Code != http.StatusOK {
			t.Fatalf("GET /metrics = %d mid-mutation", rec.Code)
		}
	}
	<-done
	if got := fmt.Sprint(c.Value()); got != "200" {
		t.Fatalf("counter = %s, want 200", got)
	}
}
