// Package serve exposes a live HTTP view of an observability hub, so a
// long-running workload (a netload sweep, a soak run) can be watched while
// it executes instead of only dumped at exit.
//
// The server renders the hub through the existing exporters:
//
//	/metrics        Prometheus text exposition (scrapeable)
//	/snapshot       JSON document: clock, trace stats, and the full registry
//	/trace          Chrome trace-event JSON of everything recorded so far
//	/critpath       per-message critical-path latency attribution (text)
//	/timeline       windowed metrics timeline JSON (when a sampler is attached)
//	/diff           differential attribution of the live hub vs a baseline
//	/alerts         SLO incident report (when a monitor is attached)
//	/health         readiness: 503 while SLO alerts are open or shutting down
//	/healthz        liveness: 200 until graceful shutdown begins, then 503
//	/debug/pprof/   the standard net/http/pprof handlers (host-side profiles)
//
// The simulator is single-threaded by design, so the server serializes all
// hub reads behind one mutex and hands the owning tool the same lock via
// Sync: the tool wraps its hub mutations in Sync(fn) and handlers render a
// consistent view. Rendering happens into a buffer under the lock; slow
// clients never stall the simulation beyond the render itself.
package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"msglayer/internal/critpath"
	"msglayer/internal/obs"
	"msglayer/internal/obs/diff"
	"msglayer/internal/obs/monitor"
	"msglayer/internal/obs/timeline"
	"msglayer/internal/twin"
)

// Server serves one hub's live observability view.
type Server struct {
	hub *obs.Hub
	tl  *timeline.Sampler
	mon *monitor.Monitor

	mu      sync.Mutex // serializes hub access between the sim thread and handlers
	http    *http.Server
	ln      net.Listener
	done    chan struct{} // closed when the serve loop exits
	closing atomic.Bool   // set when graceful shutdown begins; /healthz flips to 503
}

// New returns an unstarted server for the hub.
func New(hub *obs.Hub) *Server {
	if hub == nil {
		panic("serve: nil hub")
	}
	return &Server{hub: hub, done: make(chan struct{})}
}

// SetTimeline attaches (or detaches, with nil) the timeline sampler the
// /timeline endpoint renders. The sampler must watch the same hub and be
// advanced under Sync, like every other hub mutation; /timeline answers
// 404 while no sampler is attached. Call before Start.
func (s *Server) SetTimeline(tl *timeline.Sampler) { s.tl = tl }

// SetMonitor attaches (or detaches, with nil) the SLO monitor the /alerts
// and /health endpoints render. The monitor must be fed under Sync (it
// rides the timeline sampler's window stream, which is advanced under
// Sync); /alerts answers 404 while no monitor is attached. Call before
// Start.
func (s *Server) SetMonitor(m *monitor.Monitor) { s.mon = m }

// Sync runs fn while holding the server's hub lock. The tool that owns the
// hub must route every hub mutation through Sync once the server is started,
// so handlers never observe a half-updated registry.
func (s *Server) Sync(fn func()) {
	s.mu.Lock()
	defer s.mu.Unlock()
	fn()
}

// Handler returns the server's route table; exposed for in-process tests.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/", s.handleIndex)
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/snapshot", s.handleSnapshot)
	mux.HandleFunc("/trace", s.handleTrace)
	mux.HandleFunc("/critpath", s.handleCritpath)
	mux.HandleFunc("/timeline", s.handleTimeline)
	mux.HandleFunc("/diff", s.handleDiff)
	mux.HandleFunc("/twin", s.handleTwin)
	mux.HandleFunc("/alerts", s.handleAlerts)
	mux.HandleFunc("/health", s.handleHealth)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Start listens on addr (":0" picks a free port) and serves in a background
// goroutine until Shutdown or Close.
func (s *Server) Start(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("serve: %w", err)
	}
	s.ln = ln
	s.http = &http.Server{Handler: s.Handler(), ReadHeaderTimeout: 5 * time.Second}
	go func() {
		defer close(s.done)
		if err := s.http.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
			// The listener died under us; nothing to do but stop serving.
			_ = err
		}
	}()
	return nil
}

// Addr returns the bound listen address, empty before Start.
func (s *Server) Addr() string {
	if s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// Shutdown gracefully stops the server: /healthz flips to 503 so load
// balancers stop routing, in-flight requests finish, then the serve
// goroutine exits. The closing flag is set before the unstarted-server
// early return so the liveness transition is observable in tests without
// a listener.
func (s *Server) Shutdown(ctx context.Context) error {
	s.closing.Store(true)
	if s.http == nil {
		return nil
	}
	err := s.http.Shutdown(ctx)
	<-s.done
	return err
}

// Close force-stops the server without waiting for in-flight requests.
func (s *Server) Close() error {
	s.closing.Store(true)
	if s.http == nil {
		return nil
	}
	err := s.http.Close()
	<-s.done
	return err
}

// render evaluates fn into a buffer under the hub lock and writes the result
// with the given content type.
func (s *Server) render(w http.ResponseWriter, contentType string, fn func(*bytes.Buffer) error) {
	var b bytes.Buffer
	s.mu.Lock()
	err := fn(&b)
	s.mu.Unlock()
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", contentType)
	_, _ = w.Write(b.Bytes())
}

func (s *Server) handleIndex(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "msglayer observability server")
	fmt.Fprintln(w, "  /metrics        Prometheus text exposition")
	fmt.Fprintln(w, "  /snapshot       JSON snapshot (clock, trace stats, registry)")
	fmt.Fprintln(w, "  /trace          Chrome trace-event JSON (perfetto-loadable)")
	fmt.Fprintln(w, "  /critpath       per-message critical-path latency attribution (text)")
	fmt.Fprintln(w, "  /timeline       windowed metrics timeline JSON")
	fmt.Fprintln(w, "  /diff           live hub vs a baseline artifact (POST body or ?file=)")
	fmt.Fprintln(w, "  /twin           O(1) analytic twin prediction (?load=&mode=... or ?proto=&words=)")
	fmt.Fprintln(w, "  /alerts         SLO incident report (?format=text|json|csv)")
	fmt.Fprintln(w, "  /health         readiness: 503 while SLO alerts are open or shutting down")
	fmt.Fprintln(w, "  /healthz        liveness: 200 until graceful shutdown begins")
	fmt.Fprintln(w, "  /debug/pprof/   host-side Go profiles")
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	s.render(w, "text/plain; version=0.0.4; charset=utf-8", func(b *bytes.Buffer) error {
		return s.hub.Metrics.WritePrometheus(b)
	})
}

// snapshotDoc is the /snapshot schema: where the simulated clock stands,
// how much trace has been retained, and the full metric registry.
type snapshotDoc struct {
	Schema       int             `json:"schema"`
	Round        uint64          `json:"round"`
	TraceEvents  int             `json:"trace_events"`
	TraceDropped uint64          `json:"trace_dropped"`
	Registry     json.RawMessage `json:"registry"`
}

// snapshotSchema versions the /snapshot document.
const snapshotSchema = 1

func (s *Server) handleSnapshot(w http.ResponseWriter, _ *http.Request) {
	s.render(w, "application/json", func(b *bytes.Buffer) error {
		reg, err := s.hub.Metrics.MetricsJSON()
		if err != nil {
			return err
		}
		doc := snapshotDoc{
			Schema:       snapshotSchema,
			Round:        s.hub.Round(),
			TraceEvents:  s.hub.Trace.Len(),
			TraceDropped: s.hub.Trace.Dropped(),
			Registry:     reg,
		}
		enc := json.NewEncoder(b)
		enc.SetIndent("", "  ")
		return enc.Encode(doc)
	})
}

func (s *Server) handleTrace(w http.ResponseWriter, _ *http.Request) {
	s.render(w, "application/json", func(b *bytes.Buffer) error {
		return s.hub.Trace.WriteChromeTrace(b)
	})
}

// handleTimeline renders the attached timeline sampler's windows so far:
// the live view of the same document -timeline-out writes at exit.
func (s *Server) handleTimeline(w http.ResponseWriter, r *http.Request) {
	if s.tl == nil {
		http.Error(w, "no timeline sampler attached", http.StatusNotFound)
		return
	}
	s.render(w, "application/json", func(b *bytes.Buffer) error {
		return timeline.WriteJSON(b, s.tl.Snapshot())
	})
}

// maxBaselineBytes bounds a POSTed baseline artifact; a metrics or timeline
// export is a few KB to a few MB, so 64 MiB is generous without letting a
// stray upload exhaust memory.
const maxBaselineBytes = 64 << 20

// handleDiff answers "where did the time go since this baseline?": it
// compares a baseline artifact against the live hub with the differential
// attribution engine and renders the report. The baseline arrives either as
// the POST body or by reference via ?file=<path>, and may be a metrics
// export, a /snapshot document (its registry is unwrapped), or a timeline
// export (diffed against the attached sampler). ?format=json or ?format=csv
// select the encoding; the default is the text report.
func (s *Server) handleDiff(w http.ResponseWriter, r *http.Request) {
	art, err := s.diffBaseline(r)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}

	var rep *diff.Report
	switch art.Kind {
	case "metrics":
		s.mu.Lock()
		live := s.hub.Metrics.JSONMetrics()
		s.mu.Unlock()
		rep = diff.CompareMetrics(art.Path, "live", art.Metrics, live)
	case "timeline":
		if s.tl == nil {
			http.Error(w, "no timeline sampler attached", http.StatusNotFound)
			return
		}
		s.mu.Lock()
		snap := s.tl.Snapshot()
		s.mu.Unlock()
		rep = diff.CompareTimelines(art.Path, "live", art.Timeline, snap)
	default:
		http.Error(w, fmt.Sprintf("diff baseline must be a metrics export, /snapshot document, or timeline export (got a %s artifact)", art.Kind),
			http.StatusBadRequest)
		return
	}
	// A diff that does not reconcile is a bug, never a legitimate answer.
	if err := rep.Reconcile(); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}

	var b bytes.Buffer
	contentType := "text/plain; charset=utf-8"
	switch r.URL.Query().Get("format") {
	case "", "text":
		err = diff.WriteText(&b, rep)
	case "json":
		contentType = "application/json"
		err = diff.WriteJSON(&b, rep)
	case "csv":
		contentType = "text/csv; charset=utf-8"
		err = diff.WriteCSV(&b, rep)
	default:
		http.Error(w, "unknown format (want text, json, or csv)", http.StatusBadRequest)
		return
	}
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", contentType)
	_, _ = w.Write(b.Bytes())
}

// diffBaseline reads the baseline artifact for /diff from ?file= or the
// POST body. File reads and body reads happen outside the hub lock.
func (s *Server) diffBaseline(r *http.Request) (*diff.Artifact, error) {
	if file := r.URL.Query().Get("file"); file != "" {
		data, err := os.ReadFile(file)
		if err != nil {
			return nil, err
		}
		return loadBaseline(file, data)
	}
	if r.Method == http.MethodPost {
		data, err := io.ReadAll(http.MaxBytesReader(nil, r.Body, maxBaselineBytes))
		if err != nil {
			return nil, fmt.Errorf("reading baseline body: %w", err)
		}
		if len(data) > 0 {
			return loadBaseline("<request>", data)
		}
	}
	return nil, errors.New("supply a baseline artifact as the POST body or via ?file=<path>")
}

// loadBaseline recognises a baseline artifact, unwrapping a /snapshot
// document down to its registry so a snapshot saved from one run can be
// diffed against another run directly.
func loadBaseline(name string, data []byte) (*diff.Artifact, error) {
	var doc struct {
		Registry json.RawMessage `json:"registry"`
	}
	if err := json.Unmarshal(data, &doc); err == nil && len(doc.Registry) > 0 && string(doc.Registry) != "null" {
		return diff.LoadArtifactBytes(name, doc.Registry)
	}
	return diff.LoadArtifactBytes(name, data)
}

// handleTwin answers an O(1) analytic twin prediction for the operating
// point described by the query string — closed form, no hub access, no
// simulation, so it is safe to hit at any rate while a sweep runs.
// ?proto=<scenario>&words=N predicts protocol instruction counts; otherwise
// ?topology=&k=&levels=&w=&h=&mode=&vc=&load=&cycles= predicts a flit-network
// point (all parameters optional, defaulting to the calibration point).
func (s *Server) handleTwin(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	str := func(name, def string) string {
		if v := q.Get(name); v != "" {
			return v
		}
		return def
	}
	num := func(name string, def int) (int, error) {
		if v := q.Get(name); v != "" {
			return strconv.Atoi(v)
		}
		return def, nil
	}
	answer := func(v any) {
		b, err := json.MarshalIndent(v, "", "  ")
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_, _ = w.Write(append(b, '\n'))
	}
	if proto := q.Get("proto"); proto != "" {
		words, err := num("words", 64)
		if err != nil {
			http.Error(w, "bad words: "+err.Error(), http.StatusBadRequest)
			return
		}
		p, err := (twin.ProtoPoint{Scenario: proto, Words: words}).PredictProto()
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		answer(struct {
			Scenario string `json:"scenario"`
			Words    int    `json:"words"`
			twin.ProtoPrediction
		}{proto, words, p})
		return
	}
	mode, err := twin.ParseMode(str("mode", "deterministic"))
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	regime := twin.Regime{Topology: str("topology", "fattree"), Mode: mode}
	var a, b int
	if regime.Topology == "mesh" {
		a, err = num("w", 4)
		if err == nil {
			b, err = num("h", 4)
		}
	} else {
		a, err = num("k", 4)
		if err == nil {
			b, err = num("levels", 2)
		}
	}
	if err != nil {
		http.Error(w, "bad shape: "+err.Error(), http.StatusBadRequest)
		return
	}
	regime.A, regime.B = a, b
	if regime.VCs, err = num("vc", 1); err != nil {
		http.Error(w, "bad vc: "+err.Error(), http.StatusBadRequest)
		return
	}
	cycles, err := num("cycles", twin.CalCycles)
	if err != nil {
		http.Error(w, "bad cycles: "+err.Error(), http.StatusBadRequest)
		return
	}
	load := 0.1
	if v := q.Get("load"); v != "" {
		if load, err = strconv.ParseFloat(v, 64); err != nil {
			http.Error(w, "bad load: "+err.Error(), http.StatusBadRequest)
			return
		}
	}
	p, err := (twin.NetPoint{Regime: regime, Load: load, Cycles: cycles}).PredictNet()
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	answer(struct {
		Point  string  `json:"point"`
		Load   float64 `json:"load"`
		Cycles int     `json:"cycles"`
		twin.NetPrediction
	}{regime.String(), load, cycles, p})
}

// handleCritpath renders the live per-message critical-path report: the
// trace recorded so far, reconstructed and decomposed on demand. A trace
// that dropped events is reported as such rather than analyzed as if it
// were complete.
func (s *Server) handleCritpath(w http.ResponseWriter, _ *http.Request) {
	s.render(w, "text/plain; charset=utf-8", func(b *bytes.Buffer) error {
		if d := s.hub.Trace.Dropped(); d > 0 {
			fmt.Fprintf(b, "WARNING: trace dropped %d events; the attribution below is partial\n\n", d)
		}
		return critpath.WriteText(b, critpath.Analyze(s.hub.Trace.Events()))
	})
}

// handleAlerts renders the attached SLO monitor's incident report so far:
// the live view of the same document -slo-out writes at exit. ?format=json
// or ?format=csv select the encoding; the default is the text report.
func (s *Server) handleAlerts(w http.ResponseWriter, r *http.Request) {
	if s.mon == nil {
		http.Error(w, "no SLO monitor attached", http.StatusNotFound)
		return
	}
	contentType := "text/plain; charset=utf-8"
	var write func(*bytes.Buffer, *monitor.Report) error
	switch r.URL.Query().Get("format") {
	case "", "text":
		write = func(b *bytes.Buffer, rep *monitor.Report) error { return monitor.WriteText(b, rep) }
	case "json":
		contentType = "application/json"
		write = func(b *bytes.Buffer, rep *monitor.Report) error { return monitor.WriteJSON(b, rep) }
	case "csv":
		contentType = "text/csv; charset=utf-8"
		write = func(b *bytes.Buffer, rep *monitor.Report) error { return monitor.WriteCSV(b, rep) }
	default:
		http.Error(w, "unknown format (want text, json, or csv)", http.StatusBadRequest)
		return
	}
	s.render(w, contentType, func(b *bytes.Buffer) error {
		return write(b, s.mon.Snapshot("live"))
	})
}

// healthDoc is the /health schema.
type healthDoc struct {
	Status     string `json:"status"` // ok | degraded | shutting-down
	Round      uint64 `json:"round"`
	SLOMonitor bool   `json:"slo_monitor"`
	Windows    int    `json:"windows,omitempty"`
	OpenAlerts int    `json:"open_alerts"`
	Incidents  int    `json:"incidents"`
}

// handleHealth is the readiness probe: it answers 503 while graceful
// shutdown is under way or any SLO alert is open, 200 otherwise, always
// with a JSON body describing why. Without a monitor it degrades to a
// plain liveness answer with zero alert counts.
func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	doc := healthDoc{Status: "ok"}
	s.mu.Lock()
	doc.Round = s.hub.Round()
	if s.mon != nil {
		doc.SLOMonitor = true
		doc.Windows = s.mon.Windows()
		doc.OpenAlerts = s.mon.OpenAlerts()
		doc.Incidents = s.mon.IncidentCount()
	}
	s.mu.Unlock()
	code := http.StatusOK
	switch {
	case s.closing.Load():
		doc.Status = "shutting-down"
		code = http.StatusServiceUnavailable
	case doc.OpenAlerts > 0:
		doc.Status = "degraded"
		code = http.StatusServiceUnavailable
	}
	b, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_, _ = w.Write(append(b, '\n'))
}

// handleHealthz is the liveness probe: a bare 200 "ok" until graceful
// shutdown begins, then 503 "shutting down" so load balancers drain the
// instance while in-flight requests finish.
func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if s.closing.Load() {
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, "shutting down")
		return
	}
	fmt.Fprintln(w, "ok")
}
