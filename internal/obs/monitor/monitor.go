// Package monitor is the deterministic SLO/alerting engine over the
// metrics timeline: it consumes closed sampling windows — streamed live
// from a timeline.Sampler or replayed from an exported Timeline — and
// evaluates declarative rules (latency-quantile ceilings, counter-rate
// bounds, link-utilization ceilings, multi-window burn rates) with
// open/close hysteresis, on simulated-cycle time only. Two runs of the
// same scenario therefore produce byte-identical incident reports at any
// host parallelism, shard count, or flit-engine choice, and the live and
// replay paths agree by construction (both evaluate exactly the values
// the exported timeline carries).
//
// The steady-state evaluation path allocates nothing: rules are compiled
// to flat per-series dispatch lists refreshed only when the registry grows
// (a cold path), window scratch lives in the compiled rules, burn-rate
// history sits in preallocated rings, and the per-window callbacks are
// bound once at construction. Opening an incident is the exceptional cold
// path and may allocate — that is where the optional blame snippet (a
// Role×Feature×Category diff against the pre-violation window, wired via
// SetBlamer to avoid an import cycle with obs/diff) is computed.
package monitor

import (
	"fmt"

	"msglayer/internal/obs/timeline"
)

// BlameFunc computes a ranked blame snippet between the pre-violation
// window and the window that opened an alert. The blame subpackage
// provides the diff-backed implementation; nil disables blame.
type BlameFunc func(interval uint64, pre, vio timeline.Window, n int) []BlameEntry

// DefaultBlameEntries bounds the blame snippet attached to each incident.
const DefaultBlameEntries = 8

// ref routes one tracked series to one compiled rule.
type ref struct {
	rule int32
	role int8
}

const (
	roleMatch int8 = iota // rate / utilization / quantile match
	roleNum               // burn numerator
	roleDen               // burn denominator
)

// compiledRule is one rule with resolved defaults, its per-window scratch,
// and its hysteresis state machine.
type compiledRule struct {
	spec      Rule
	q         float64 // quantile rank
	severity  string
	threshold string // rendered once; stable across runs
	forW      int
	clearW    int
	shortF    uint64
	longF     uint64
	// lowerWorse: peaks track the minimum (rate-floor rules).
	lowerWorse bool

	// Burn-rate trailing ring of (num, den) per window, with running sums.
	ring           [][2]uint64
	ringPos, ringN int
	numSum, denSum uint64

	// Per-window scratch, reset by beginWindow.
	sum, num, den uint64
	worst         uint64
	worstSet      bool
	worstName     string

	// Hysteresis state.
	violStreak  int
	clearStreak int
	openIdx     int // index into Monitor.incidents, -1 when closed
	firstViol   int // window index starting the current violation streak
}

// evalWindow decides whether the current window violates the rule and
// returns the observed value (rate, quantile, worst permille, or error
// permille). It also advances the burn ring, so it must run exactly once
// per window per rule.
func (r *compiledRule) evalWindow(width uint64) (bool, uint64) {
	switch r.spec.Kind {
	case KindRate:
		rate := r.sum * 1000 / width
		v := false
		if r.spec.Max != nil && rate > *r.spec.Max {
			v = true
		}
		if r.spec.Min != nil && rate < *r.spec.Min {
			v = true
		}
		return v, rate
	case KindUtilization:
		return r.worstSet && r.worst > r.spec.MaxPermille, r.worst
	case KindQuantile:
		return r.worstSet && r.worst > *r.spec.Max, r.worst
	case KindBurn:
		if r.ringN == len(r.ring) {
			old := r.ring[r.ringPos]
			r.numSum -= old[0]
			r.denSum -= old[1]
		} else {
			r.ringN++
		}
		r.ring[r.ringPos] = [2]uint64{r.num, r.den}
		r.ringPos++
		if r.ringPos == len(r.ring) {
			r.ringPos = 0
		}
		r.numSum += r.num
		r.denSum += r.den
		short := burnViolated(r.num, r.den, r.shortF, r.spec.BudgetPermille)
		long := burnViolated(r.numSum, r.denSum, r.longF, r.spec.BudgetPermille)
		value := uint64(0)
		switch {
		case r.den > 0:
			value = r.num * 1000 / r.den
		case r.num > 0:
			value = 1000
		}
		return short && long, value
	}
	return false, 0
}

// burnViolated is the exact integer form of num/den >= factor * budget:
// cross-multiplied so den = 0 needs no special case (any error with no
// successes violates; no errors never does).
func burnViolated(num, den, factor, budget uint64) bool {
	return num > 0 && num*1000 >= factor*budget*den
}

// worse reports whether v is a worse observation than the current peak.
func (r *compiledRule) worse(v, peak uint64) bool {
	if r.lowerWorse {
		return v < peak
	}
	return v > peak
}

// Monitor evaluates one compiled rule set over a window stream. Like the
// sampler it subscribes to, it is single-threaded by design.
type Monitor struct {
	rules    []compiledRule
	s        *timeline.Sampler
	interval uint64

	// Per-series dispatch, extended on the rescan cold path. Names are the
	// rendered key strings, cached so the hot path never re-renders.
	nCtr, nHst int
	ctrRefs    [][]ref
	hstRefs    [][]ref
	ctrNames   []string
	hstNames   []string

	width     uint64 // current window width during evaluation
	windows   int
	incidents []Incident
	openCount int

	blamer BlameFunc
	blameN int

	// Callbacks bound once so the steady-state path creates no closures.
	ctrFn func(series int, delta uint64)
	hstFn func(series int, dn, dsum uint64, bounds, buckets []uint64)
	obsFn func(idx int)
	winAt func(idx int) timeline.Window
}

// New compiles the rule set into a monitor.
func New(rs *RuleSet) (*Monitor, error) {
	if err := rs.validate(); err != nil {
		return nil, err
	}
	m := &Monitor{blameN: DefaultBlameEntries}
	m.rules = make([]compiledRule, len(rs.Rules))
	for i, spec := range rs.Rules {
		r := &m.rules[i]
		r.spec = spec
		r.severity = spec.Severity
		if r.severity == "" {
			r.severity = "warn"
		}
		r.forW = max(spec.ForWindows, 1)
		r.clearW = max(spec.ClearWindows, 1)
		r.openIdx = -1
		switch spec.Kind {
		case KindQuantile:
			qname := spec.Quantile
			if qname == "" {
				qname = "p99"
				r.spec.Quantile = qname
			}
			r.q = quantileQ[qname]
			r.threshold = fmt.Sprintf("%s(%s) > %d", qname, spec.Match, *spec.Max)
		case KindRate:
			switch {
			case spec.Max != nil && spec.Min != nil:
				r.threshold = fmt.Sprintf("rate(%s) > %d or < %d per kcycle", spec.Match, *spec.Max, *spec.Min)
			case spec.Max != nil:
				r.threshold = fmt.Sprintf("rate(%s) > %d per kcycle", spec.Match, *spec.Max)
			default:
				r.threshold = fmt.Sprintf("rate(%s) < %d per kcycle", spec.Match, *spec.Min)
				r.lowerWorse = true
			}
		case KindUtilization:
			r.threshold = fmt.Sprintf("util(%s) > %d permille", spec.Match, spec.MaxPermille)
		case KindBurn:
			r.shortF = spec.ShortFactor
			if r.shortF == 0 {
				r.shortF = 10
			}
			r.longF = spec.LongFactor
			if r.longF == 0 {
				r.longF = 2
			}
			longW := spec.LongWindows
			if longW == 0 {
				longW = 12
			}
			r.ring = make([][2]uint64, longW)
			r.threshold = fmt.Sprintf("burn(%s / %s) >= %dx budget %d permille short and %dx over %d windows",
				spec.Num, spec.Den, r.shortF, spec.BudgetPermille, r.longF, longW)
		}
	}
	m.ctrFn = m.onCounterDelta
	m.hstFn = m.onHistogramDelta
	m.obsFn = m.observeLive
	return m, nil
}

// SetBlamer wires the blame computation run when an alert opens (nil
// disables it; the default is none). The blame subpackage's Compute is the
// canonical implementation.
func (m *Monitor) SetBlamer(fn BlameFunc) { m.blamer = fn }

// SetBlameEntries bounds the blame snippet length (0 disables).
func (m *Monitor) SetBlameEntries(n int) { m.blameN = n }

// Attach subscribes the monitor to a live sampler: every stored window is
// evaluated as it closes. Attach replaces any previous window listener on
// the sampler.
func (m *Monitor) Attach(s *timeline.Sampler) {
	m.s = s
	m.interval = s.Interval()
	m.winAt = s.SnapshotWindow
	s.SetWindowListener(m.obsFn)
}

// observeLive evaluates one freshly stored sampler window.
func (m *Monitor) observeLive(idx int) {
	if m.s.CounterSeries() != m.nCtr || m.s.HistogramSeries() != m.nHst {
		m.rescan()
	}
	start, end := m.s.WindowBounds(idx)
	m.beginWindow(end - start)
	m.s.EachWindowCounter(idx, m.ctrFn)
	m.s.EachWindowHistogram(idx, m.hstFn)
	m.decide(idx, end)
}

// rescan extends the per-series dispatch lists for series that appeared
// since the last window (cold path; series are created at attach time).
func (m *Monitor) rescan() {
	for i := m.nCtr; i < m.s.CounterSeries(); i++ {
		name := m.s.CounterKeyAt(i).String()
		m.ctrNames = append(m.ctrNames, name)
		var refs []ref
		for ri := range m.rules {
			r := &m.rules[ri]
			switch r.spec.Kind {
			case KindRate, KindUtilization:
				if r.spec.Match.matches(name) {
					refs = append(refs, ref{rule: int32(ri), role: roleMatch})
				}
			case KindBurn:
				if r.spec.Num.matches(name) {
					refs = append(refs, ref{rule: int32(ri), role: roleNum})
				}
				if r.spec.Den.matches(name) {
					refs = append(refs, ref{rule: int32(ri), role: roleDen})
				}
			}
		}
		m.ctrRefs = append(m.ctrRefs, refs)
	}
	m.nCtr = m.s.CounterSeries()
	for i := m.nHst; i < m.s.HistogramSeries(); i++ {
		name := m.s.HistogramKeyAt(i).String()
		m.hstNames = append(m.hstNames, name)
		var refs []ref
		for ri := range m.rules {
			r := &m.rules[ri]
			if r.spec.Kind == KindQuantile && r.spec.Match.matches(name) {
				refs = append(refs, ref{rule: int32(ri), role: roleMatch})
			}
		}
		m.hstRefs = append(m.hstRefs, refs)
	}
	m.nHst = m.s.HistogramSeries()
}

// beginWindow resets the per-window scratch.
func (m *Monitor) beginWindow(width uint64) {
	m.width = width
	for i := range m.rules {
		r := &m.rules[i]
		r.sum, r.num, r.den = 0, 0, 0
		r.worst, r.worstSet, r.worstName = 0, false, ""
	}
}

// onCounterDelta folds one counter's window delta into its rules.
func (m *Monitor) onCounterDelta(series int, delta uint64) {
	for _, rf := range m.ctrRefs[series] {
		r := &m.rules[rf.rule]
		switch rf.role {
		case roleNum:
			r.num += delta
		case roleDen:
			r.den += delta
		default:
			switch r.spec.Kind {
			case KindRate:
				r.sum += delta
			case KindUtilization:
				v := delta * 1000 / m.width
				if !r.worstSet || v > r.worst {
					r.worst, r.worstSet, r.worstName = v, true, m.ctrNames[series]
				}
			}
		}
	}
}

// onHistogramDelta folds one histogram's window deltas into its quantile
// rules, using exactly the arithmetic the exported timeline carries.
func (m *Monitor) onHistogramDelta(series int, dn, dsum uint64, bounds, buckets []uint64) {
	_ = dsum
	for _, rf := range m.hstRefs[series] {
		r := &m.rules[rf.rule]
		v := timeline.QuantileFromDeltas(bounds, buckets, dn, r.q)
		if !r.worstSet || v > r.worst {
			r.worst, r.worstSet, r.worstName = v, true, m.hstNames[series]
		}
	}
}

// decide runs every rule's hysteresis state machine over the scratch the
// window accumulated. idx is the window index, end its closing cycle.
func (m *Monitor) decide(idx int, end uint64) {
	m.windows++
	for ri := range m.rules {
		r := &m.rules[ri]
		violated, value := r.evalWindow(m.width)
		if violated {
			if r.violStreak == 0 {
				r.firstViol = idx
			}
			r.violStreak++
			r.clearStreak = 0
			if r.openIdx < 0 {
				if r.violStreak >= r.forW {
					m.open(ri, idx, end, value)
				}
			} else {
				inc := &m.incidents[r.openIdx]
				inc.Windows++
				if r.worse(value, inc.Peak) {
					inc.Peak = value
				}
			}
		} else {
			r.violStreak = 0
			if r.openIdx >= 0 {
				r.clearStreak++
				if r.clearStreak >= r.clearW {
					inc := &m.incidents[r.openIdx]
					inc.CloseWindow = idx
					inc.CloseCycle = end
					inc.Open = false
					r.openIdx = -1
					m.openCount--
				}
			}
		}
	}
}

// open records a new incident (cold path; allocation is fine here). The
// blame snippet diffs the window before the violation streak against the
// opening window; streaks starting at window 0 have no pre-violation
// window and carry no blame.
func (m *Monitor) open(ri, idx int, end uint64, value uint64) {
	r := &m.rules[ri]
	inc := Incident{
		Rule:        r.spec.Name,
		Kind:        string(r.spec.Kind),
		Severity:    r.severity,
		Threshold:   r.threshold,
		Series:      r.worstName,
		FirstWindow: r.firstViol,
		OpenWindow:  idx,
		CloseWindow: -1,
		OpenCycle:   end,
		Windows:     r.violStreak,
		Value:       value,
		Peak:        value,
		Open:        true,
	}
	if m.winAt != nil {
		inc.FirstCycle = m.winAt(r.firstViol).Start
		if r.firstViol > 0 && m.blamer != nil && m.blameN > 0 {
			inc.Blame = m.blamer(m.interval, m.winAt(r.firstViol-1), m.winAt(idx), m.blameN)
		}
	}
	r.openIdx = len(m.incidents)
	m.incidents = append(m.incidents, inc)
	m.openCount++
}

// Replay evaluates the rules over a recorded timeline. It is the offline
// twin of Attach: the same decide path runs over the exported window
// values, so a replayed report is byte-identical to the live one.
func (m *Monitor) Replay(tl *timeline.Timeline) error {
	if m.s != nil {
		return fmt.Errorf("monitor: already attached to a live sampler")
	}
	for i := range m.rules {
		r := &m.rules[i]
		if r.spec.Kind == KindQuantile && r.spec.Quantile == "p999" && !hasQuantile(tl, "p999") {
			return fmt.Errorf("monitor: rule %q needs p999, but the timeline was recorded without extended quantiles", r.spec.Name)
		}
	}
	m.interval = tl.Interval
	m.winAt = func(idx int) timeline.Window { return tl.Windows[idx] }
	for i := range tl.Windows {
		w := &tl.Windows[i]
		m.beginWindow(w.End - w.Start)
		for _, c := range w.Counters {
			m.replayCounter(c.Key, c.Delta)
		}
		for hi := range w.Hists {
			m.replayHist(&w.Hists[hi])
		}
		m.decide(i, w.End)
	}
	return nil
}

// hasQuantile reports whether the timeline's extended-quantile list names q.
func hasQuantile(tl *timeline.Timeline, q string) bool {
	for _, name := range tl.Quantiles {
		if name == q {
			return true
		}
	}
	return false
}

// replayCounter routes one exported counter delta by key string.
func (m *Monitor) replayCounter(key string, delta uint64) {
	for ri := range m.rules {
		r := &m.rules[ri]
		switch r.spec.Kind {
		case KindRate:
			if r.spec.Match.matches(key) {
				r.sum += delta
			}
		case KindUtilization:
			if r.spec.Match.matches(key) {
				v := delta * 1000 / m.width
				if !r.worstSet || v > r.worst {
					r.worst, r.worstSet, r.worstName = v, true, key
				}
			}
		case KindBurn:
			if r.spec.Num.matches(key) {
				r.num += delta
			}
			if r.spec.Den.matches(key) {
				r.den += delta
			}
		}
	}
}

// replayHist routes one exported histogram delta, reading the exported
// quantile the rule names.
func (m *Monitor) replayHist(h *timeline.HistDelta) {
	for ri := range m.rules {
		r := &m.rules[ri]
		if r.spec.Kind != KindQuantile || !r.spec.Match.matches(h.Key) {
			continue
		}
		var v uint64
		switch r.spec.Quantile {
		case "p50":
			v = h.P50
		case "p90":
			v = h.P90
		case "p999":
			v = h.P999
		default:
			v = h.P99
		}
		if !r.worstSet || v > r.worst {
			r.worst, r.worstSet, r.worstName = v, true, h.Key
		}
	}
}

// Windows returns how many windows were evaluated.
func (m *Monitor) Windows() int { return m.windows }

// OpenAlerts returns how many incidents are currently open.
func (m *Monitor) OpenAlerts() int { return m.openCount }

// IncidentCount returns how many incidents were recorded in total.
func (m *Monitor) IncidentCount() int { return len(m.incidents) }
