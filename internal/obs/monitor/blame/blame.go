// Package blame wires the SLO monitor's incident blame to the
// differential attribution engine. It lives outside the monitor package
// because diff imports perfreg and perfreg evaluates alert digests through
// the monitor: monitor -> diff would close that loop into a cycle, so the
// monitor takes the blame computation as an injected BlameFunc and every
// caller that wants blame wires Compute.
package blame

import (
	"msglayer/internal/obs/diff"
	"msglayer/internal/obs/monitor"
	"msglayer/internal/obs/timeline"
)

// Compute is the canonical monitor.BlameFunc: it diffs the pre-violation
// window against the window that opened the alert (each wrapped as a
// single-window timeline, so phase, breakdown, counter, link, gauge, and
// histogram sections all participate) and returns the top n moved terms.
func Compute(interval uint64, pre, vio timeline.Window, n int) []monitor.BlameEntry {
	wrap := func(w timeline.Window) *timeline.Timeline {
		return &timeline.Timeline{Schema: timeline.SchemaVersion, Interval: interval, Windows: []timeline.Window{w}}
	}
	rep := diff.CompareTimelines("pre-violation", "violation", wrap(pre), wrap(vio))
	ranked := rep.Blame(n)
	out := make([]monitor.BlameEntry, 0, len(ranked))
	for _, e := range ranked {
		out = append(out, monitor.BlameEntry{
			Section:  e.Section,
			Unit:     e.Unit,
			Key:      e.Key,
			Delta:    e.Delta,
			Permille: e.Permille,
			OnlyIn:   e.OnlyIn,
		})
	}
	return out
}
