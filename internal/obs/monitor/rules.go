package monitor

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"strings"
)

// Kind selects what a rule evaluates over each closed window.
type Kind string

const (
	// KindQuantile bounds a windowed histogram quantile: the rule violates
	// when any matched histogram's windowed quantile exceeds Max.
	KindQuantile Kind = "quantile"
	// KindRate bounds the summed rate of matched counters, in integer
	// events per thousand cycles: above Max or below Min violates. A Min
	// bound makes idle windows violate by design (throughput floor);
	// ForWindows absorbs warmup and drain.
	KindRate Kind = "rate"
	// KindUtilization bounds each matched counter individually at a
	// permille of the window's cycles (a link moving <= 1 flit/cycle yields
	// <= 1000); the worst series is the incident's provenance.
	KindUtilization Kind = "utilization"
	// KindBurn is a multi-window burn-rate rule over an error ratio
	// num/den: it violates when the ratio consumes the error budget at
	// ShortFactor x over the current window AND at LongFactor x over the
	// trailing LongWindows windows (both inclusive of the current one).
	// All arithmetic is integer cross-multiplication, exact at den = 0.
	KindBurn Kind = "burn"
)

// Match selects series by their rendered key string
// (`name{node="0",proto="x",event="y"}`): the key must start with Prefix
// and contain every Contains element. Matching is allocation-free.
type Match struct {
	Prefix   string   `json:"prefix,omitempty"`
	Contains []string `json:"contains,omitempty"`
}

// empty reports whether the match selects nothing.
func (m Match) empty() bool { return m.Prefix == "" && len(m.Contains) == 0 }

// matches tests one rendered series key. An empty match never matches, so
// an unset Num/Den on a non-burn rule stays inert.
func (m Match) matches(key string) bool {
	if m.empty() {
		return false
	}
	if !strings.HasPrefix(key, m.Prefix) {
		return false
	}
	for _, c := range m.Contains {
		if !strings.Contains(key, c) {
			return false
		}
	}
	return true
}

// String renders the match for reports.
func (m Match) String() string {
	if m.empty() {
		return "<none>"
	}
	s := m.Prefix + "*"
	for _, c := range m.Contains {
		s += "&" + c
	}
	return s
}

// Rule is one declarative SLO rule. Fields beyond the shared ones apply to
// the kinds documented on them; validation rejects mixed-up specs.
type Rule struct {
	Name     string `json:"name"`
	Kind     Kind   `json:"kind"`
	Severity string `json:"severity,omitempty"` // free-form; default "warn"
	// Match selects the series quantile/rate/utilization rules evaluate.
	Match Match `json:"match,omitempty"`
	// Quantile (quantile rules) is one of p50, p90, p99, p999; default
	// p99. Replaying a p999 rule needs a timeline recorded with the
	// extended quantile list; live evaluation always works.
	Quantile string `json:"quantile,omitempty"`
	// Max bounds the quantile value (quantile) or the rate per thousand
	// cycles (rate). Pointer so 0 is expressible.
	Max *uint64 `json:"max,omitempty"`
	// Min is the rate floor per thousand cycles (rate rules only).
	Min *uint64 `json:"min,omitempty"`
	// MaxPermille is the per-series utilization ceiling (utilization).
	MaxPermille uint64 `json:"max_permille,omitempty"`
	// Num/Den select the error and total counters of a burn rule.
	Num Match `json:"num,omitempty"`
	Den Match `json:"den,omitempty"`
	// BudgetPermille is the allowed error ratio in permille (burn).
	BudgetPermille uint64 `json:"budget_permille,omitempty"`
	// ShortFactor/LongFactor are the burn multipliers (defaults 10 and 2);
	// LongWindows is the trailing-window count (default 12).
	ShortFactor uint64 `json:"short_factor,omitempty"`
	LongFactor  uint64 `json:"long_factor,omitempty"`
	LongWindows int    `json:"long_windows,omitempty"`
	// ForWindows opens an alert only after that many consecutive violating
	// windows (default 1); ClearWindows closes it only after that many
	// consecutive clean windows (default 1). Any clean window resets the
	// violation streak and vice versa — classic hysteresis.
	ForWindows   int `json:"for_windows,omitempty"`
	ClearWindows int `json:"clear_windows,omitempty"`
}

// RuleSet is the root of a rules document.
type RuleSet struct {
	Rules []Rule `json:"rules"`
}

// quantileQ maps the rule quantile names to their numeric rank and the
// replay accessor order. The set is fixed to what exported timelines can
// carry, so live and replay evaluation agree by construction.
var quantileQ = map[string]float64{
	"p50": 0.50, "p90": 0.90, "p99": 0.99, "p999": 0.999,
}

// validate checks the set and reports the first problem.
func (rs *RuleSet) validate() error {
	if len(rs.Rules) == 0 {
		return fmt.Errorf("monitor: rule set has no rules")
	}
	seen := make(map[string]bool, len(rs.Rules))
	for i := range rs.Rules {
		r := &rs.Rules[i]
		where := fmt.Sprintf("monitor: rule %d (%q)", i, r.Name)
		if r.Name == "" {
			return fmt.Errorf("monitor: rule %d: name is required", i)
		}
		if seen[r.Name] {
			return fmt.Errorf("%s: duplicate name", where)
		}
		seen[r.Name] = true
		if r.ForWindows < 0 || r.ClearWindows < 0 || r.LongWindows < 0 {
			return fmt.Errorf("%s: window counts must be non-negative", where)
		}
		switch r.Kind {
		case KindQuantile:
			if r.Match.empty() {
				return fmt.Errorf("%s: quantile rules need a match", where)
			}
			if r.Quantile != "" {
				if _, ok := quantileQ[r.Quantile]; !ok {
					return fmt.Errorf("%s: unknown quantile %q (want p50, p90, p99, or p999)", where, r.Quantile)
				}
			}
			if r.Max == nil {
				return fmt.Errorf("%s: quantile rules need max", where)
			}
		case KindRate:
			if r.Match.empty() {
				return fmt.Errorf("%s: rate rules need a match", where)
			}
			if r.Max == nil && r.Min == nil {
				return fmt.Errorf("%s: rate rules need max and/or min", where)
			}
		case KindUtilization:
			if r.Match.empty() {
				return fmt.Errorf("%s: utilization rules need a match", where)
			}
			if r.MaxPermille == 0 {
				return fmt.Errorf("%s: utilization rules need max_permille", where)
			}
		case KindBurn:
			if r.Num.empty() || r.Den.empty() {
				return fmt.Errorf("%s: burn rules need num and den matches", where)
			}
			if r.BudgetPermille == 0 {
				return fmt.Errorf("%s: burn rules need budget_permille", where)
			}
		default:
			return fmt.Errorf("%s: unknown kind %q (want quantile, rate, utilization, or burn)", where, r.Kind)
		}
	}
	return nil
}

// ParseRules parses a rules document: strict JSON when the first
// non-space byte is '{', otherwise the YAML subset yamlToAny documents.
func ParseRules(data []byte) (*RuleSet, error) {
	trimmed := bytes.TrimLeft(data, " \t\r\n")
	var raw []byte
	if len(trimmed) > 0 && trimmed[0] == '{' {
		raw = trimmed
	} else {
		v, err := yamlToAny(data)
		if err != nil {
			return nil, err
		}
		raw, err = json.Marshal(v)
		if err != nil {
			return nil, fmt.Errorf("monitor: yaml restructure: %w", err)
		}
	}
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.DisallowUnknownFields()
	rs := &RuleSet{}
	if err := dec.Decode(rs); err != nil {
		return nil, fmt.Errorf("monitor: parse rules: %w", err)
	}
	if err := rs.validate(); err != nil {
		return nil, err
	}
	return rs, nil
}

// LoadRules reads and parses a rules file; the name "canonical" resolves
// to the built-in CanonicalRules set.
func LoadRules(path string) (*RuleSet, error) {
	if path == "canonical" {
		return CanonicalRules(), nil
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	rs, err := ParseRules(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return rs, nil
}

// CanonicalRules is the built-in deterministic rule set CI and the perfreg
// alert digests evaluate: a delivery-rate floor, a transfer-latency p99
// ceiling, a per-link utilization ceiling, and a backpressure burn-rate
// rule over injections. `-slo canonical` selects it on every CLI.
func CanonicalRules() *RuleSet {
	minDelivered := uint64(1)
	maxLatency := uint64(256)
	return &RuleSet{Rules: []Rule{
		{
			Name: "delivery-floor", Kind: KindRate, Severity: "page",
			Match:      Match{Prefix: "net_delivered_total"},
			Min:        &minDelivered,
			ForWindows: 2, ClearWindows: 2,
		},
		{
			Name: "latency-p99-ceiling", Kind: KindQuantile, Severity: "warn",
			Match:    Match{Prefix: "transfer_latency_rounds"},
			Quantile: "p99", Max: &maxLatency,
		},
		{
			Name: "link-saturation", Kind: KindUtilization, Severity: "warn",
			Match:       Match{Prefix: "flitnet_link_flits_total"},
			MaxPermille: 900, ForWindows: 2,
		},
		{
			Name: "backpressure-burn", Kind: KindBurn, Severity: "page",
			Num:            Match{Prefix: "net_backpressure_total"},
			Den:            Match{Prefix: "net_injected_total"},
			BudgetPermille: 50, ShortFactor: 10, LongFactor: 2,
			LongWindows: 6, ClearWindows: 2,
		},
	}}
}
