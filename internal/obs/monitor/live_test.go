package monitor_test

import (
	"bytes"
	"testing"

	"msglayer/internal/obs"
	"msglayer/internal/obs/monitor"
	"msglayer/internal/obs/monitor/blame"
	"msglayer/internal/obs/timeline"
)

// liveFixture drives a registry through a deterministic little scenario:
// deliveries ramp up, stall for a stretch, and recover, while a latency
// histogram observes growing values.
func liveFixture(t *testing.T, m *monitor.Monitor) *timeline.Sampler {
	t.Helper()
	reg := obs.NewRegistry()
	delivered := reg.Counter(obs.Key{Name: "net_delivered_total", Node: -1, Proto: "fixture"})
	events := reg.Counter(obs.Key{Name: "protocol_events_total", Node: 0, Proto: "fixture", Event: "send"})
	lat := reg.Histogram(obs.Key{Name: "transfer_latency_rounds", Node: -1, Proto: "fixture"}, nil)
	s := timeline.New(reg, timeline.Config{Interval: 10})
	if m != nil {
		m.Attach(s)
	}
	for cycle := uint64(1); cycle <= 100; cycle++ {
		stalled := cycle > 30 && cycle <= 60
		if !stalled {
			delivered.Add(2)
			events.Add(3)
			lat.Observe(cycle / 10)
		}
		s.Advance(cycle)
	}
	s.Flush(100)
	return s
}

func fixtureRules() *monitor.RuleSet {
	min := uint64(100)
	return &monitor.RuleSet{Rules: []monitor.Rule{{
		Name: "floor", Kind: monitor.KindRate,
		Match: monitor.Match{Prefix: "net_delivered_total"},
		Min:   &min, ForWindows: 2, ClearWindows: 1,
	}}}
}

// TestLiveMatchesReplay: evaluating windows as they close and replaying
// the exported timeline produce byte-identical reports — the monitor's
// core determinism contract.
func TestLiveMatchesReplay(t *testing.T) {
	live, err := monitor.New(fixtureRules())
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	live.SetBlamer(blame.Compute)
	s := liveFixture(t, live)
	tl := s.Snapshot()

	replay, err := monitor.New(fixtureRules())
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	replay.SetBlamer(blame.Compute)
	if err := replay.Replay(tl); err != nil {
		t.Fatalf("Replay: %v", err)
	}

	var a, b bytes.Buffer
	if err := monitor.WriteText(&a, live.Snapshot("fixture")); err != nil {
		t.Fatalf("WriteText(live): %v", err)
	}
	if err := monitor.WriteText(&b, replay.Snapshot("fixture")); err != nil {
		t.Fatalf("WriteText(replay): %v", err)
	}
	if a.String() != b.String() {
		t.Fatalf("live and replay reports differ:\n--- live ---\n%s\n--- replay ---\n%s", a.String(), b.String())
	}
	if live.IncidentCount() == 0 {
		t.Fatalf("fixture produced no incidents; the stall should trip the floor")
	}
}

// TestLiveBoundaryCycle: mutations on exactly the boundary cycle land in
// the closing window for both the sampler and the monitor, so an alert
// opened by a boundary-cycle violation has deterministic provenance.
func TestLiveBoundaryCycle(t *testing.T) {
	max := uint64(100)
	rs := &monitor.RuleSet{Rules: []monitor.Rule{{
		Name: "ceiling", Kind: monitor.KindRate,
		Match: monitor.Match{Prefix: "boundary_total"}, Max: &max,
	}}}
	m, err := monitor.New(rs)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	reg := obs.NewRegistry()
	c := reg.Counter(obs.Key{Name: "boundary_total", Node: -1})
	s := timeline.New(reg, timeline.Config{Interval: 10})
	m.Attach(s)
	// Cycle 10 is the boundary of window (0,10]: its mutations precede
	// Advance(10), so they belong to window 0 — pushing it to 2*100 = 200
	// per kcycle and opening the alert at window 0, not window 1.
	c.Add(2)
	s.Advance(10)
	s.Flush(20)
	rep := m.Snapshot("boundary")
	if len(rep.Incidents) != 1 {
		t.Fatalf("incidents = %d, want 1", len(rep.Incidents))
	}
	inc := rep.Incidents[0]
	if inc.OpenWindow != 0 || inc.OpenCycle != 10 || inc.Value != 200 {
		t.Errorf("incident = %+v, want open at window 0 cycle 10 value 200", inc)
	}
	if inc.CloseWindow != 1 {
		t.Errorf("close window = %d, want 1 (idle window clears the ceiling)", inc.CloseWindow)
	}
}

// TestBlameSnippet: an alert that opens past window 0 carries a ranked
// diff against the pre-violation window, naming the series that moved.
func TestBlameSnippet(t *testing.T) {
	m, err := monitor.New(fixtureRules())
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	m.SetBlamer(blame.Compute)
	liveFixture(t, m)
	rep := m.Snapshot("blame")
	if len(rep.Incidents) == 0 {
		t.Fatalf("no incidents")
	}
	inc := rep.Incidents[0]
	if inc.FirstWindow == 0 {
		t.Fatalf("fixture stall unexpectedly starts at window 0")
	}
	if len(inc.Blame) == 0 {
		t.Fatalf("incident carries no blame snippet")
	}
	found := false
	for _, b := range inc.Blame {
		if b.Delta != 0 && (b.Section == "counters" || b.Section == "phases" || b.Section == "phase/steady") {
			found = true
		}
	}
	if !found {
		t.Errorf("blame snippet has no moved counter/phase terms: %+v", inc.Blame)
	}
}

// TestBlameSkippedAtWindowZero: a streak starting at the first window has
// no pre-violation window and must not fabricate one.
func TestBlameSkippedAtWindowZero(t *testing.T) {
	min := uint64(100)
	rs := &monitor.RuleSet{Rules: []monitor.Rule{{
		Name: "floor", Kind: monitor.KindRate,
		Match: monitor.Match{Prefix: "net_delivered_total"}, Min: &min,
	}}}
	m, err := monitor.New(rs)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	m.SetBlamer(blame.Compute)
	reg := obs.NewRegistry()
	reg.Counter(obs.Key{Name: "net_delivered_total", Node: -1})
	s := timeline.New(reg, timeline.Config{Interval: 10})
	m.Attach(s)
	s.Flush(10)
	rep := m.Snapshot("zero")
	if len(rep.Incidents) != 1 {
		t.Fatalf("incidents = %d, want 1", len(rep.Incidents))
	}
	if len(rep.Incidents[0].Blame) != 0 {
		t.Fatalf("window-0 incident carries blame: %+v", rep.Incidents[0].Blame)
	}
}

// TestMonitorEvalAllocs: the steady-state evaluation path (window close →
// rule scratch → hysteresis) must not allocate. Mirrors the perfreg
// monitor-eval bench twin that gates this in CI.
func TestMonitorEvalAllocs(t *testing.T) {
	reg := obs.NewRegistry()
	delivered := reg.Counter(obs.Key{Name: "net_delivered_total", Node: -1, Proto: "bench"})
	injected := reg.Counter(obs.Key{Name: "net_injected_total", Node: -1, Proto: "bench"})
	lat := reg.Histogram(obs.Key{Name: "transfer_latency_rounds", Node: -1, Proto: "bench"}, nil)
	s := timeline.New(reg, timeline.Config{Interval: 1})
	m, err := monitor.New(monitor.CanonicalRules())
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	m.Attach(s)
	cycle := uint64(0)
	step := func() {
		cycle++
		delivered.Add(3)
		injected.Add(3)
		lat.Observe(cycle % 64)
		s.Advance(cycle)
	}
	// Warm pass: series dispatch compiles, arenas and scratch reach
	// steady-state capacity.
	for i := 0; i < 100; i++ {
		step()
	}
	s.Reset(cycle)
	if allocs := testing.AllocsPerRun(200, step); allocs != 0 {
		t.Fatalf("monitor steady-state evaluation allocates %.1f allocs/op, want 0", allocs)
	}
	if m.IncidentCount() != 0 {
		t.Fatalf("alloc fixture unexpectedly fired %d incidents", m.IncidentCount())
	}
}
