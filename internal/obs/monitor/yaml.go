package monitor

import (
	"fmt"
	"strconv"
	"strings"
)

// yamlToAny parses the minimal YAML subset rule files use, without adding
// a dependency: maps nested by two-space indentation, "- " list items
// (inline "- key: value" starts the item's map), "key: value" scalars,
// inline "[a, b]" lists, full-line and trailing "#" comments, and
// single- or double-quoted strings. Unquoted scalars that parse as
// integers become numbers; true/false become booleans. No anchors, flow
// maps, multi-line strings, tabs, or documents — rule files needing more
// should use the JSON form.
func yamlToAny(data []byte) (any, error) {
	var lines []yline
	for n, raw := range strings.Split(string(data), "\n") {
		text := stripComment(raw)
		trimmed := strings.TrimSpace(text)
		if trimmed == "" {
			continue
		}
		indent := len(text) - len(strings.TrimLeft(text, " \t"))
		if strings.ContainsRune(text[:indent], '\t') {
			return nil, fmt.Errorf("monitor: yaml line %d: tabs are not allowed in indentation", n+1)
		}
		lines = append(lines, yline{indent: indent, text: trimmed, n: n + 1})
	}
	if len(lines) == 0 {
		return nil, fmt.Errorf("monitor: yaml document is empty")
	}
	v, i, err := yParseBlock(lines, 0)
	if err != nil {
		return nil, err
	}
	if i != len(lines) {
		return nil, fmt.Errorf("monitor: yaml line %d: content outside the root block (bad indentation?)", lines[i].n)
	}
	return v, nil
}

type yline struct {
	indent int
	text   string
	n      int
}

// stripComment removes a full-line or trailing comment. A '#' inside a
// quoted scalar would be cut too — keep '#' out of values or use JSON.
func stripComment(s string) string {
	if t := strings.TrimSpace(s); strings.HasPrefix(t, "#") {
		return ""
	}
	if i := strings.Index(s, " #"); i >= 0 {
		return s[:i]
	}
	return s
}

// yParseBlock parses the block starting at lines[i], whose indent level
// defines the block.
func yParseBlock(lines []yline, i int) (any, int, error) {
	if strings.HasPrefix(lines[i].text, "- ") || lines[i].text == "-" {
		return yParseList(lines, i)
	}
	return yParseMap(lines, i)
}

// yParseList parses consecutive "- " items at lines[i]'s indent.
func yParseList(lines []yline, i int) (any, int, error) {
	indent := lines[i].indent
	var out []any
	for i < len(lines) && lines[i].indent == indent &&
		(strings.HasPrefix(lines[i].text, "- ") || lines[i].text == "-") {
		rest := strings.TrimSpace(strings.TrimPrefix(lines[i].text, "-"))
		if rest == "" {
			// The item's content is the more-indented block below.
			if i+1 >= len(lines) || lines[i+1].indent <= indent {
				return nil, i, fmt.Errorf("monitor: yaml line %d: empty list item", lines[i].n)
			}
			v, ni, err := yParseBlock(lines, i+1)
			if err != nil {
				return nil, ni, err
			}
			out = append(out, v)
			i = ni
			continue
		}
		if k, v, ok := ySplitKV(rest); ok {
			// "- key: value" starts the item's map; its remaining keys sit
			// two columns deeper (aligned under the inline key).
			lines[i] = yline{indent: indent + 2, text: yJoinKV(k, v), n: lines[i].n}
			m, ni, err := yParseMap(lines, i)
			if err != nil {
				return nil, ni, err
			}
			out = append(out, m)
			i = ni
			continue
		}
		out = append(out, yScalar(rest))
		i++
	}
	return out, i, nil
}

// yParseMap parses consecutive "key: value" lines at lines[i]'s indent.
func yParseMap(lines []yline, i int) (any, int, error) {
	indent := lines[i].indent
	out := make(map[string]any)
	for i < len(lines) && lines[i].indent == indent {
		if strings.HasPrefix(lines[i].text, "- ") || lines[i].text == "-" {
			break
		}
		k, v, ok := ySplitKV(lines[i].text)
		if !ok {
			return nil, i, fmt.Errorf("monitor: yaml line %d: expected 'key: value'", lines[i].n)
		}
		if _, dup := out[k]; dup {
			return nil, i, fmt.Errorf("monitor: yaml line %d: duplicate key %q", lines[i].n, k)
		}
		if v == "" {
			if i+1 < len(lines) && lines[i+1].indent > indent {
				child, ni, err := yParseBlock(lines, i+1)
				if err != nil {
					return nil, ni, err
				}
				out[k] = child
				i = ni
			} else {
				out[k] = nil
				i++
			}
			continue
		}
		out[k] = yScalarOrFlow(v)
		i++
	}
	return out, i, nil
}

// ySplitKV splits "key: value" (or "key:"); keys are plain words, so the
// first colon delimits.
func ySplitKV(s string) (key, val string, ok bool) {
	idx := strings.Index(s, ":")
	if idx <= 0 {
		return "", "", false
	}
	key = strings.TrimSpace(s[:idx])
	val = strings.TrimSpace(s[idx+1:])
	if key == "" || strings.ContainsAny(key, " \"'[]{},") {
		return "", "", false
	}
	return key, val, true
}

// yJoinKV re-renders a split pair for the synthetic-line trick in
// yParseList.
func yJoinKV(k, v string) string {
	if v == "" {
		return k + ":"
	}
	return k + ": " + v
}

// yScalarOrFlow converts a scalar or an inline "[a, b]" list.
func yScalarOrFlow(s string) any {
	if strings.HasPrefix(s, "[") && strings.HasSuffix(s, "]") {
		inner := strings.TrimSpace(s[1 : len(s)-1])
		if inner == "" {
			return []any{}
		}
		parts := strings.Split(inner, ",")
		out := make([]any, 0, len(parts))
		for _, p := range parts {
			out = append(out, yScalar(strings.TrimSpace(p)))
		}
		return out
	}
	return yScalar(s)
}

// yScalar converts one scalar token.
func yScalar(s string) any {
	if len(s) >= 2 {
		if (s[0] == '"' && s[len(s)-1] == '"') || (s[0] == '\'' && s[len(s)-1] == '\'') {
			return s[1 : len(s)-1]
		}
	}
	switch s {
	case "true":
		return true
	case "false":
		return false
	case "null", "~":
		return nil
	}
	if n, err := strconv.ParseInt(s, 10, 64); err == nil {
		return n
	}
	if n, err := strconv.ParseUint(s, 10, 64); err == nil {
		return n
	}
	return s
}
