package monitor

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
)

// SchemaVersion identifies the exported alert-report layout.
const SchemaVersion = 1

// BlameEntry is one ranked line of the pre-violation diff attached to an
// incident (the monitor-local mirror of diff.BlameEntry, so the engine
// itself needs no diff import).
type BlameEntry struct {
	Section  string `json:"section"`
	Unit     string `json:"unit"`
	Key      string `json:"key"`
	Delta    int64  `json:"delta"`
	Permille int64  `json:"permille"`
	OnlyIn   string `json:"only_in,omitempty"`
}

// Incident is one alert span: the window provenance of its opening and
// closing, the observed values, and the optional blame snippet.
type Incident struct {
	Rule      string `json:"rule"`
	Kind      string `json:"kind"`
	Severity  string `json:"severity"`
	Threshold string `json:"threshold"`
	// Series names the worst offending series at open (utilization and
	// quantile rules); rate and burn rules aggregate and leave it empty.
	Series string `json:"series,omitempty"`
	// FirstWindow starts the violation streak that opened the alert;
	// OpenWindow is where the streak reached for_windows. FirstCycle is
	// FirstWindow's starting cycle, OpenCycle the opening window's closing
	// cycle.
	FirstWindow int    `json:"first_window"`
	OpenWindow  int    `json:"open_window"`
	CloseWindow int    `json:"close_window"` // -1 while open
	FirstCycle  uint64 `json:"first_cycle"`
	OpenCycle   uint64 `json:"open_cycle"`
	CloseCycle  uint64 `json:"close_cycle,omitempty"`
	// Windows counts violating windows over the incident's life, including
	// the pre-open streak.
	Windows int `json:"windows"`
	// Value is the observation that opened the alert; Peak the worst
	// observation while open (minimum for rate-floor rules).
	Value uint64 `json:"value"`
	Peak  uint64 `json:"peak"`
	Open  bool   `json:"open,omitempty"`
	// Blame ranks what moved between the pre-violation window and the
	// opening window (absent when the streak starts at window 0 or no
	// blamer is wired). Explanatory only: excluded from the digest.
	Blame []BlameEntry `json:"blame,omitempty"`
}

// RuleStatus summarizes one rule in a report.
type RuleStatus struct {
	Name      string `json:"name"`
	Kind      string `json:"kind"`
	Severity  string `json:"severity"`
	Threshold string `json:"threshold"`
	Incidents int    `json:"incidents"`
	Open      bool   `json:"open,omitempty"`
}

// Report is the exportable form of a monitor's evaluation. All content is
// derived from simulated time, so two runs of the same scenario marshal
// byte-identically.
type Report struct {
	Schema   int    `json:"schema"`
	Label    string `json:"label,omitempty"`
	Interval uint64 `json:"interval"`
	Windows  int    `json:"windows"`
	Open     int    `json:"open"`
	// Digest is the FNV-1a 64 hash of the firing behavior (rules and
	// incident spans; label and blame excluded), rendered in hex;
	// DigestValue is the same hash as a number for perfreg snapshots.
	Digest      string       `json:"digest"`
	DigestValue uint64       `json:"-"`
	Rules       []RuleStatus `json:"rules"`
	Incidents   []Incident   `json:"incidents"`
}

// Snapshot renders the monitor's state so far into a report. It can run
// mid-stream (the /alerts endpoint) or after the final window; open
// incidents keep CloseWindow -1.
func (m *Monitor) Snapshot(label string) *Report {
	rep := &Report{
		Schema:    SchemaVersion,
		Label:     label,
		Interval:  m.interval,
		Windows:   m.windows,
		Open:      m.openCount,
		Incidents: append([]Incident(nil), m.incidents...),
	}
	rep.Rules = make([]RuleStatus, len(m.rules))
	for i := range m.rules {
		r := &m.rules[i]
		rep.Rules[i] = RuleStatus{
			Name:      r.spec.Name,
			Kind:      string(r.spec.Kind),
			Severity:  r.severity,
			Threshold: r.threshold,
			Open:      r.openIdx >= 0,
		}
	}
	byName := make(map[string]int, len(rep.Rules))
	for i := range rep.Rules {
		byName[rep.Rules[i].Name] = i
	}
	for i := range rep.Incidents {
		rep.Rules[byName[rep.Incidents[i].Rule]].Incidents++
	}
	rep.DigestValue = rep.digest()
	rep.Digest = fmt.Sprintf("%016x", rep.DigestValue)
	return rep
}

// FNV-1a 64 parameters (the timeline digest's, reimplemented because its
// helpers are unexported).
const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

type fnv64 uint64

func (h *fnv64) u64(v uint64) {
	x := uint64(*h)
	for i := 0; i < 8; i++ {
		x ^= v & 0xff
		x *= fnvPrime
		v >>= 8
	}
	*h = fnv64(x)
}

func (h *fnv64) str(s string) {
	x := uint64(*h)
	for i := 0; i < len(s); i++ {
		x ^= uint64(s[i])
		x *= fnvPrime
	}
	*h = fnv64(x)
	h.u64(uint64(len(s)))
}

func (h *fnv64) b(v bool) {
	if v {
		h.u64(1)
	} else {
		h.u64(0)
	}
}

// digest hashes the firing behavior: the rule set and every incident's
// span and values. The label (scenario naming varies across callers) and
// the blame snippet (explanatory, derived from the timeline) are excluded,
// so equal digests mean equal alerting decisions.
func (rep *Report) digest() uint64 {
	h := fnv64(fnvOffset)
	h.u64(uint64(rep.Schema))
	h.u64(rep.Interval)
	h.u64(uint64(rep.Windows))
	h.u64(uint64(rep.Open))
	h.u64(uint64(len(rep.Rules)))
	for _, r := range rep.Rules {
		h.str(r.Name)
		h.str(r.Kind)
		h.str(r.Severity)
		h.str(r.Threshold)
		h.u64(uint64(r.Incidents))
		h.b(r.Open)
	}
	h.u64(uint64(len(rep.Incidents)))
	for _, inc := range rep.Incidents {
		h.str(inc.Rule)
		h.str(inc.Series)
		h.u64(uint64(int64(inc.FirstWindow)))
		h.u64(uint64(int64(inc.OpenWindow)))
		h.u64(uint64(int64(inc.CloseWindow)))
		h.u64(inc.FirstCycle)
		h.u64(inc.OpenCycle)
		h.u64(inc.CloseCycle)
		h.u64(uint64(inc.Windows))
		h.u64(inc.Value)
		h.u64(inc.Peak)
		h.b(inc.Open)
	}
	return uint64(h)
}

// WriteText renders the report in the repo's line-oriented report style.
func WriteText(w io.Writer, rep *Report) error {
	p := func(format string, args ...any) error {
		_, err := fmt.Fprintf(w, format, args...)
		return err
	}
	label := rep.Label
	if label == "" {
		label = "-"
	}
	if err := p("# slo report: %s\n", label); err != nil {
		return err
	}
	if err := p("# schema: %d  interval: %d  windows: %d  rules: %d  incidents: %d  open: %d\n",
		rep.Schema, rep.Interval, rep.Windows, len(rep.Rules), len(rep.Incidents), rep.Open); err != nil {
		return err
	}
	if err := p("# digest: %s\n", rep.Digest); err != nil {
		return err
	}
	for _, r := range rep.Rules {
		state := "ok"
		if r.Open {
			state = "FIRING"
		}
		if err := p("rule %s [%s/%s] %s: %d incident(s), %s\n",
			r.Name, r.Kind, r.Severity, r.Threshold, r.Incidents, state); err != nil {
			return err
		}
	}
	for i, inc := range rep.Incidents {
		span := fmt.Sprintf("windows [%d, %d] cycles (%d, %d]", inc.OpenWindow, inc.CloseWindow, inc.OpenCycle, inc.CloseCycle)
		if inc.Open {
			span = fmt.Sprintf("windows [%d, open) cycles (%d, ...]", inc.OpenWindow, inc.OpenCycle)
		}
		if err := p("incident %d: rule=%s severity=%s %s\n", i, inc.Rule, inc.Severity, span); err != nil {
			return err
		}
		if err := p("  first violation: window %d @ cycle %d; %d violating window(s)\n",
			inc.FirstWindow, inc.FirstCycle, inc.Windows); err != nil {
			return err
		}
		series := inc.Series
		if series == "" {
			series = "(aggregate)"
		}
		if err := p("  value %d at open, peak %d, series %s\n", inc.Value, inc.Peak, series); err != nil {
			return err
		}
		if len(inc.Blame) > 0 {
			if err := p("  blame vs pre-violation window %d:\n", inc.FirstWindow-1); err != nil {
				return err
			}
			for bi, b := range inc.Blame {
				only := ""
				if b.OnlyIn != "" {
					only = "  [only in " + b.OnlyIn + "]"
				}
				if err := p("    %2d. %+12d  %+5d permille  %-12s %s%s\n",
					bi+1, b.Delta, b.Permille, b.Section, b.Key, only); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// WriteJSON renders the report as indented JSON.
func WriteJSON(w io.Writer, rep *Report) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

// WriteJSONReports renders several reports (a netload grid, one per
// point) as one indented JSON array document.
func WriteJSONReports(w io.Writer, reps []*Report) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(struct {
		Reports []*Report `json:"reports"`
	}{reps})
}

// CSVHeader returns the incident-table header, with any caller columns
// (scenario identity) prepended.
func CSVHeader(prefix ...string) []string {
	return append(append([]string{}, prefix...),
		"rule", "kind", "severity", "series", "first_window", "open_window",
		"close_window", "first_cycle", "open_cycle", "close_cycle",
		"windows", "value", "peak", "open", "threshold")
}

// AppendCSV writes the report's incidents as flat CSV rows; prefix values
// (scenario identity) lead every row. Blame is text/JSON-only.
func AppendCSV(w *csv.Writer, prefix []string, rep *Report) error {
	for _, inc := range rep.Incidents {
		row := append(append([]string{}, prefix...),
			inc.Rule, inc.Kind, inc.Severity, inc.Series,
			strconv.Itoa(inc.FirstWindow),
			strconv.Itoa(inc.OpenWindow),
			strconv.Itoa(inc.CloseWindow),
			strconv.FormatUint(inc.FirstCycle, 10),
			strconv.FormatUint(inc.OpenCycle, 10),
			strconv.FormatUint(inc.CloseCycle, 10),
			strconv.Itoa(inc.Windows),
			strconv.FormatUint(inc.Value, 10),
			strconv.FormatUint(inc.Peak, 10),
			strconv.FormatBool(inc.Open),
			inc.Threshold)
		if err := w.Write(row); err != nil {
			return err
		}
	}
	return nil
}

// WriteCSV renders the report as a standalone CSV document.
func WriteCSV(w io.Writer, rep *Report) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(CSVHeader()); err != nil {
		return err
	}
	if err := AppendCSV(cw, nil, rep); err != nil {
		return err
	}
	cw.Flush()
	return cw.Error()
}
