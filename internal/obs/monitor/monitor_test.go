package monitor

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"msglayer/internal/obs/timeline"
)

// win builds one hand-made timeline window with counter deltas.
func win(idx int, start, end uint64, counters map[string]uint64) timeline.Window {
	w := timeline.Window{Index: idx, Start: start, End: end}
	width := end - start
	for _, k := range sortedStrings(counters) {
		w.Counters = append(w.Counters, timeline.CounterDelta{
			Key: k, Delta: counters[k], RatePerKCycle: counters[k] * 1000 / width,
		})
	}
	return w
}

func sortedStrings(m map[string]uint64) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// tl assembles windows of width 10 into a timeline.
func tl(windows ...timeline.Window) *timeline.Timeline {
	return &timeline.Timeline{Schema: timeline.SchemaVersion, Interval: 10, Windows: windows}
}

// rateWindows renders per-window deltas of one counter into a timeline
// (width 10), so a rate rule with min/max in per-kcycle units sees
// delta*100 per window.
func rateWindows(deltas ...uint64) *timeline.Timeline {
	wins := make([]timeline.Window, 0, len(deltas))
	for i, d := range deltas {
		c := map[string]uint64{}
		if d > 0 {
			c["net_delivered_total"] = d
		}
		wins = append(wins, win(i, uint64(i)*10, uint64(i+1)*10, c))
	}
	return tl(wins...)
}

func mustMonitor(t *testing.T, rs *RuleSet) *Monitor {
	t.Helper()
	m, err := New(rs)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return m
}

func floorRule(forW, clearW int) *RuleSet {
	min := uint64(100) // delta >= 1 per 10-cycle window
	return &RuleSet{Rules: []Rule{{
		Name: "floor", Kind: KindRate,
		Match: Match{Prefix: "net_delivered_total"},
		Min:   &min, ForWindows: forW, ClearWindows: clearW,
	}}}
}

// span summarizes incidents for table-driven comparison.
type span struct {
	first, open, close, windows int
	stillOpen                   bool
}

func spansOf(rep *Report) []span {
	out := make([]span, 0, len(rep.Incidents))
	for _, inc := range rep.Incidents {
		out = append(out, span{inc.FirstWindow, inc.OpenWindow, inc.CloseWindow, inc.Windows, inc.Open})
	}
	return out
}

// TestMonitorHysteresisTable mirrors the timeline phase edge-case table
// for the alert state machine: boundary opens, single-window runs,
// all-idle timelines, streak resets, and an open+close inside one phase.
func TestMonitorHysteresisTable(t *testing.T) {
	cases := []struct {
		name         string
		rules        *RuleSet
		tl           *timeline.Timeline
		want         []span
		wantOpen     int
		wantWindows  int
		wantIncident int
	}{
		{
			// The violation starts exactly at a window boundary: window 2
			// is the first below the floor, the alert opens there
			// (for_windows 1) and closes at the first clean window.
			name:  "open-and-close-within-one-phase",
			rules: floorRule(1, 1),
			tl:    rateWindows(5, 5, 0, 0, 5, 5),
			want:  []span{{first: 2, open: 2, close: 4, windows: 2}},
		},
		{
			// for_windows 2: a lone violating window (index 1) never opens;
			// the sustained streak at 3-4 opens at 4.
			name:  "short-blip-absorbed-by-for-windows",
			rules: floorRule(2, 1),
			tl:    rateWindows(5, 0, 5, 0, 0, 5),
			want:  []span{{first: 3, open: 4, close: 5, windows: 2}},
		},
		{
			// clear_windows 2: the single clean window at 3 does not close
			// the alert (and resets the clean streak); two consecutive
			// clean windows at 5-6 do.
			name:  "clean-blip-absorbed-by-clear-windows",
			rules: floorRule(1, 2),
			tl:    rateWindows(5, 0, 0, 5, 0, 5, 5),
			want:  []span{{first: 1, open: 1, close: 6, windows: 3}},
		},
		{
			// A single-window run: the violation opens on the only window
			// and stays open at the end of the stream.
			name:  "single-window-run",
			rules: floorRule(1, 1),
			tl:    rateWindows(0),
			want:  []span{{first: 0, open: 0, close: -1, windows: 1, stillOpen: true}},
		},
		{
			// A single-window run that satisfies the floor: no incidents.
			name:  "single-window-clean",
			rules: floorRule(1, 1),
			tl:    rateWindows(5),
			want:  []span{},
		},
		{
			// All-idle timeline: a min-rate rule fires at window 0 and
			// never clears — the throughput floor is violated throughout.
			name:  "all-idle-floor",
			rules: floorRule(1, 1),
			tl:    rateWindows(0, 0, 0, 0),
			want:  []span{{first: 0, open: 0, close: -1, windows: 4, stillOpen: true}},
		},
		{
			// All-idle timeline with only a max-rate bound: idle windows
			// cannot exceed a ceiling, so nothing fires.
			name: "all-idle-ceiling",
			rules: func() *RuleSet {
				max := uint64(100)
				return &RuleSet{Rules: []Rule{{
					Name: "ceiling", Kind: KindRate,
					Match: Match{Prefix: "net_delivered_total"}, Max: &max,
				}}}
			}(),
			tl:   rateWindows(0, 0, 0, 0),
			want: []span{},
		},
		{
			// Violation exactly at the final (partial) window boundary: the
			// flush window (40, 45] is half-width, and the rate math uses
			// the true width, so delta 1 is 222 per kcycle — clean.
			name:  "partial-final-window-uses-true-width",
			rules: floorRule(1, 1),
			tl: tl(
				win(0, 0, 10, map[string]uint64{"net_delivered_total": 5}),
				win(1, 10, 20, map[string]uint64{"net_delivered_total": 5}),
				win(2, 20, 30, map[string]uint64{"net_delivered_total": 5}),
				win(3, 30, 40, map[string]uint64{"net_delivered_total": 5}),
				win(4, 40, 45, map[string]uint64{"net_delivered_total": 1}),
			),
			want: []span{},
		},
		{
			// Two separate incidents from two separated streaks.
			name:  "two-incidents",
			rules: floorRule(1, 1),
			tl:    rateWindows(5, 0, 5, 5, 0, 0, 5),
			want: []span{
				{first: 1, open: 1, close: 2, windows: 1},
				{first: 4, open: 4, close: 6, windows: 2},
			},
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			m := mustMonitor(t, c.rules)
			if err := m.Replay(c.tl); err != nil {
				t.Fatalf("Replay: %v", err)
			}
			rep := m.Snapshot(c.name)
			got := spansOf(rep)
			if len(got) != len(c.want) {
				t.Fatalf("incidents = %+v, want %+v", got, c.want)
			}
			for i := range got {
				if got[i] != c.want[i] {
					t.Errorf("incident %d = %+v, want %+v", i, got[i], c.want[i])
				}
			}
			wantOpen := 0
			for _, s := range c.want {
				if s.stillOpen {
					wantOpen++
				}
			}
			if rep.Open != wantOpen {
				t.Errorf("open = %d, want %d", rep.Open, wantOpen)
			}
			if rep.Windows != len(c.tl.Windows) {
				t.Errorf("windows = %d, want %d", rep.Windows, len(c.tl.Windows))
			}
		})
	}
}

// TestMonitorThresholdBoundary pins the comparison semantics: value ==
// max is compliant, value == max+1 violates; rate == min is compliant.
func TestMonitorThresholdBoundary(t *testing.T) {
	max := uint64(500)
	rs := &RuleSet{Rules: []Rule{{
		Name: "ceiling", Kind: KindRate,
		Match: Match{Prefix: "net_delivered_total"}, Max: &max,
	}}}
	m := mustMonitor(t, rs)
	// Window deltas of 5 → exactly 500 per kcycle (boundary, clean), then
	// 6 → 600 (violates).
	if err := m.Replay(rateWindows(5, 6)); err != nil {
		t.Fatalf("Replay: %v", err)
	}
	rep := m.Snapshot("boundary")
	if len(rep.Incidents) != 1 || rep.Incidents[0].OpenWindow != 1 {
		t.Fatalf("incidents = %+v, want one opening at window 1", spansOf(rep))
	}
	if rep.Incidents[0].Value != 600 {
		t.Errorf("value = %d, want 600", rep.Incidents[0].Value)
	}

	min := uint64(500)
	rs = &RuleSet{Rules: []Rule{{
		Name: "floor", Kind: KindRate,
		Match: Match{Prefix: "net_delivered_total"}, Min: &min,
	}}}
	m = mustMonitor(t, rs)
	if err := m.Replay(rateWindows(5, 4)); err != nil {
		t.Fatalf("Replay: %v", err)
	}
	rep = m.Snapshot("boundary-min")
	if len(rep.Incidents) != 1 || rep.Incidents[0].OpenWindow != 1 {
		t.Fatalf("incidents = %+v, want one opening at window 1", spansOf(rep))
	}
}

// TestMonitorBurnRule exercises the multi-window burn math: the short
// window trips immediately on a bad window, but the alert needs the
// trailing long window to burn too.
func TestMonitorBurnRule(t *testing.T) {
	rs := &RuleSet{Rules: []Rule{{
		Name: "burn", Kind: KindBurn,
		Num:            Match{Prefix: "errors_total"},
		Den:            Match{Prefix: "requests_total"},
		BudgetPermille: 100, ShortFactor: 2, LongFactor: 2, LongWindows: 3,
	}}}
	// Budget 10%, both factors 2x → violate when errors/requests >= 20%
	// over the window AND over the trailing 3 windows.
	mk := func(idx int, errs, reqs uint64) timeline.Window {
		return win(idx, uint64(idx)*10, uint64(idx+1)*10,
			map[string]uint64{"errors_total": errs, "requests_total": reqs})
	}
	m := mustMonitor(t, rs)
	// Windows: clean, clean, hot, hot. Window 2 is 30% (short trips) but
	// the trailing ratio is 3/30 = 10% — long does not trip. Window 3 at
	// 50% pushes the trailing ratio to 8/40 = 20% — both trip, alert opens.
	err := m.Replay(tl(mk(0, 0, 10), mk(1, 0, 10), mk(2, 3, 10), mk(3, 5, 10)))
	if err != nil {
		t.Fatalf("Replay: %v", err)
	}
	rep := m.Snapshot("burn")
	if len(rep.Incidents) != 1 {
		t.Fatalf("incidents = %+v, want exactly one", spansOf(rep))
	}
	inc := rep.Incidents[0]
	if inc.FirstWindow != 3 || inc.OpenWindow != 3 || !inc.Open {
		t.Errorf("incident = %+v, want open at window 3", inc)
	}
	if inc.Value != 500 {
		t.Errorf("value = %d permille, want 500", inc.Value)
	}
}

// TestMonitorBurnZeroDen pins the den = 0 cross-multiplication: errors
// with no denominator traffic violate, pure silence does not.
func TestMonitorBurnZeroDen(t *testing.T) {
	rs := &RuleSet{Rules: []Rule{{
		Name: "burn", Kind: KindBurn,
		Num:            Match{Prefix: "errors_total"},
		Den:            Match{Prefix: "requests_total"},
		BudgetPermille: 100, ShortFactor: 2, LongFactor: 2, LongWindows: 2,
	}}}
	m := mustMonitor(t, rs)
	err := m.Replay(tl(
		win(0, 0, 10, nil),
		win(1, 10, 20, map[string]uint64{"errors_total": 1}),
	))
	if err != nil {
		t.Fatalf("Replay: %v", err)
	}
	rep := m.Snapshot("zero-den")
	if len(rep.Incidents) != 1 || rep.Incidents[0].OpenWindow != 1 {
		t.Fatalf("incidents = %+v, want one opening at window 1 (errors with no traffic)", spansOf(rep))
	}
	if rep.Incidents[0].Value != 1000 {
		t.Errorf("value = %d, want 1000 (all-errors sentinel)", rep.Incidents[0].Value)
	}
}

// TestMonitorUtilizationProvenance checks the worst series lands in the
// incident.
func TestMonitorUtilizationProvenance(t *testing.T) {
	rs := &RuleSet{Rules: []Rule{{
		Name: "links", Kind: KindUtilization,
		Match: Match{Prefix: "flitnet_link_flits_total"}, MaxPermille: 800,
	}}}
	m := mustMonitor(t, rs)
	err := m.Replay(tl(win(0, 0, 10, map[string]uint64{
		`flitnet_link_flits_total{node="0"}`: 5,
		`flitnet_link_flits_total{node="1"}`: 9,
	})))
	if err != nil {
		t.Fatalf("Replay: %v", err)
	}
	rep := m.Snapshot("util")
	if len(rep.Incidents) != 1 {
		t.Fatalf("incidents = %+v, want one", spansOf(rep))
	}
	inc := rep.Incidents[0]
	if inc.Series != `flitnet_link_flits_total{node="1"}` || inc.Value != 900 {
		t.Errorf("incident = %+v, want node 1 at 900 permille", inc)
	}
}

// TestMonitorQuantileReplayUsesExportedValues: replay reads the exported
// quantile fields, and a p999 rule refuses a default-quantile timeline.
func TestMonitorQuantileReplay(t *testing.T) {
	max := uint64(100)
	rs := &RuleSet{Rules: []Rule{{
		Name: "lat", Kind: KindQuantile,
		Match: Match{Prefix: "transfer_latency_rounds"}, Quantile: "p99", Max: &max,
	}}}
	m := mustMonitor(t, rs)
	w := timeline.Window{Index: 0, Start: 0, End: 10, Hists: []timeline.HistDelta{{
		Key: "transfer_latency_rounds", Count: 10, Sum: 2000, P50: 64, P90: 128, P99: 256,
	}}}
	if err := m.Replay(tl(w)); err != nil {
		t.Fatalf("Replay: %v", err)
	}
	rep := m.Snapshot("quantile")
	if len(rep.Incidents) != 1 || rep.Incidents[0].Value != 256 {
		t.Fatalf("incidents = %+v, want one with value 256", rep.Incidents)
	}

	rs.Rules[0].Quantile = "p999"
	m = mustMonitor(t, rs)
	if err := m.Replay(tl(w)); err == nil {
		t.Fatalf("Replay with a p999 rule accepted a default-quantile timeline")
	}
}

// TestParseRulesJSONAndYAML: both syntaxes produce the same set, and the
// evaluation agrees.
func TestParseRulesJSONAndYAML(t *testing.T) {
	jsonSrc := `{
  "rules": [
    {"name": "floor", "kind": "rate", "match": {"prefix": "net_delivered_total"}, "min": 100, "for_windows": 2},
    {"name": "lat", "kind": "quantile", "match": {"prefix": "transfer_latency_rounds", "contains": ["proto=\"cr\""]}, "quantile": "p90", "max": 64},
    {"name": "burn", "kind": "burn", "num": {"prefix": "errors_total"}, "den": {"prefix": "requests_total"}, "budget_permille": 50}
  ]
}`
	yamlSrc := `# same rules in the yaml subset
rules:
  - name: floor
    kind: rate
    match:
      prefix: net_delivered_total
    min: 100
    for_windows: 2
  - name: lat
    kind: quantile
    match:
      prefix: transfer_latency_rounds
      contains: ['proto="cr"']
    quantile: p90
    max: 64
  - name: burn
    kind: burn
    num:
      prefix: errors_total
    den:
      prefix: requests_total
    budget_permille: 50
`
	a, err := ParseRules([]byte(jsonSrc))
	if err != nil {
		t.Fatalf("json: %v", err)
	}
	b, err := ParseRules([]byte(yamlSrc))
	if err != nil {
		t.Fatalf("yaml: %v", err)
	}
	if len(a.Rules) != len(b.Rules) {
		t.Fatalf("rule counts differ: %d vs %d", len(a.Rules), len(b.Rules))
	}
	for i := range a.Rules {
		aj, _ := jsonMarshal(a.Rules[i])
		bj, _ := jsonMarshal(b.Rules[i])
		if aj != bj {
			t.Errorf("rule %d differs:\n json: %s\n yaml: %s", i, aj, bj)
		}
	}
}

func jsonMarshal(v any) (string, error) {
	b, err := json.Marshal(v)
	return string(b), err
}

// TestParseRulesRejects pins validation and parser errors.
func TestParseRulesRejects(t *testing.T) {
	cases := []struct{ name, src, want string }{
		{"empty", `{"rules": []}`, "no rules"},
		{"no-name", `{"rules": [{"kind": "rate", "match": {"prefix": "x"}, "min": 1}]}`, "name is required"},
		{"dup-name", `{"rules": [{"name": "a", "kind": "rate", "match": {"prefix": "x"}, "min": 1}, {"name": "a", "kind": "rate", "match": {"prefix": "x"}, "min": 1}]}`, "duplicate"},
		{"bad-kind", `{"rules": [{"name": "a", "kind": "nope"}]}`, "unknown kind"},
		{"bad-quantile", `{"rules": [{"name": "a", "kind": "quantile", "match": {"prefix": "x"}, "quantile": "p42", "max": 1}]}`, "unknown quantile"},
		{"rate-no-bound", `{"rules": [{"name": "a", "kind": "rate", "match": {"prefix": "x"}}]}`, "max and/or min"},
		{"burn-no-den", `{"rules": [{"name": "a", "kind": "burn", "num": {"prefix": "x"}, "budget_permille": 1}]}`, "num and den"},
		{"unknown-field", `{"rules": [{"name": "a", "kind": "rate", "match": {"prefix": "x"}, "min": 1, "oops": 2}]}`, "unknown field"},
		{"yaml-tab", "rules:\n\t- name: a", "tabs"},
		{"yaml-junk", "rules:\n  - name: a\n bad", "outside the root block"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := ParseRules([]byte(c.src))
			if err == nil || !strings.Contains(err.Error(), c.want) {
				t.Fatalf("error = %v, want substring %q", err, c.want)
			}
		})
	}
}

// TestCanonicalRulesLoad: the built-in set validates and "canonical"
// resolves to it.
func TestCanonicalRulesLoad(t *testing.T) {
	rs, err := LoadRules("canonical")
	if err != nil {
		t.Fatalf("LoadRules(canonical): %v", err)
	}
	if _, err := New(rs); err != nil {
		t.Fatalf("New(canonical): %v", err)
	}
}

// TestReportRenderersAreDeterministic: two snapshots of the same replay
// render byte-identically in every format, and the digest is stable.
func TestReportRenderersAreDeterministic(t *testing.T) {
	render := func() (string, string, string, string) {
		m := mustMonitor(t, floorRule(1, 2))
		if err := m.Replay(rateWindows(5, 0, 0, 5, 5)); err != nil {
			t.Fatalf("Replay: %v", err)
		}
		rep := m.Snapshot("det")
		var text, js, cs bytes.Buffer
		if err := WriteText(&text, rep); err != nil {
			t.Fatalf("WriteText: %v", err)
		}
		if err := WriteJSON(&js, rep); err != nil {
			t.Fatalf("WriteJSON: %v", err)
		}
		if err := WriteCSV(&cs, rep); err != nil {
			t.Fatalf("WriteCSV: %v", err)
		}
		return text.String(), js.String(), cs.String(), rep.Digest
	}
	t1, j1, c1, d1 := render()
	t2, j2, c2, d2 := render()
	if t1 != t2 || j1 != j2 || c1 != c2 || d1 != d2 {
		t.Fatalf("renderings differ across identical replays")
	}
	if !strings.Contains(t1, "incident 0") || !strings.Contains(t1, "# digest: "+d1) {
		t.Errorf("text report missing expected content:\n%s", t1)
	}
}

// TestDigestExcludesLabel: the digest pins firing behavior, not naming.
func TestDigestExcludesLabel(t *testing.T) {
	reps := make([]*Report, 0, 2)
	for _, label := range []string{"a", "b"} {
		m := mustMonitor(t, floorRule(1, 1))
		if err := m.Replay(rateWindows(5, 0, 5)); err != nil {
			t.Fatalf("Replay: %v", err)
		}
		reps = append(reps, m.Snapshot(label))
	}
	if reps[0].Digest != reps[1].Digest {
		t.Fatalf("digest depends on the label: %s vs %s", reps[0].Digest, reps[1].Digest)
	}
}
