package monitor

import (
	"testing"

	"msglayer/internal/obs"
	"msglayer/internal/obs/timeline"
)

// BenchmarkMonitorEval measures one steady-state evaluation step: every op
// mutates the counters and histogram the canonical rules watch, then
// advances a 1-cycle-window sampler with the SLO monitor riding the
// window stream — so each op closes a window and evaluates every rule
// against it. Steady-state evaluation promises zero allocations; the
// workload is tuned so no rule fires (incident opening is the allowed
// cold path). perfreg records the same workload as the monitor-eval
// bench the compare gate holds at 0 allocs/op.
func BenchmarkMonitorEval(b *testing.B) {
	reg := obs.NewRegistry()
	delivered := reg.Counter(obs.Key{Name: "net_delivered_total", Node: -1, Proto: "bench"})
	injected := reg.Counter(obs.Key{Name: "net_injected_total", Node: -1, Proto: "bench"})
	h := reg.Histogram(obs.Key{Name: "transfer_latency_rounds", Node: -1, Proto: "bench"}, nil)
	s := timeline.New(reg, timeline.Config{Interval: 1})
	mon, err := New(CanonicalRules())
	if err != nil {
		b.Fatal(err)
	}
	mon.Attach(s)

	// Bound the retained window count the way the sampler bench does: a
	// long measured pass rotates the timeline once the arenas reach their
	// working size. Reset keeps capacity, so rotation is allocation-free.
	const rotateAt = 1 << 15
	cycle := uint64(0)
	loop := func(n int) {
		for i := 0; i < n; i++ {
			cycle++
			delivered.Add(3)
			injected.Add(3)
			h.Observe(cycle % 64)
			s.Advance(cycle)
			if s.Windows() >= rotateAt {
				s.Reset(cycle)
			}
		}
	}
	loop(rotateAt) // grow arenas, compile series dispatch, warm burn rings
	s.Reset(cycle)
	b.ReportAllocs()
	b.ResetTimer()
	loop(b.N)
	b.StopTimer()
	if mon.IncidentCount() != 0 {
		b.Fatalf("bench workload fired %d incidents; the measured path must stay steady-state", mon.IncidentCount())
	}
}
