package obs

import "fmt"

// Causal per-message span tracing.
//
// Every traced event can carry a message identity (MsgID), a packet
// identity (PktID), and span linkage (SpanID/Parent), so a flat event
// stream reconstructs into per-message span trees: protocol send entry →
// NI injection → flit transit → destination handler completion. The API is
// built like the rest of the layer — nil scopes are the disabled state,
// the hot path allocates nothing (context switches are plain field stores,
// the span stack reuses its backing array), and all ids are allocated from
// hub-global counters so traces are deterministic and collision-free.
//
// Identity flows across nodes through the packet: the sender stamps its
// (msg, span, pkt) context into the staged packet (see internal/cmam and
// internal/ni), and the receiver's dispatch adopts it for the duration of
// the handler, so acknowledgements and replies emitted inside handlers
// inherit the message that caused them — the causal chain closes back at
// the source without any protocol-specific plumbing.

// newSpanID allocates a span id (1-based; 0 means "no span").
func (h *Hub) newSpanID() uint64 { h.nextSpan++; return h.nextSpan }

// newMsgID allocates a message id (1-based; 0 means "unattributed").
func (h *Hub) newMsgID() uint64 { h.nextMsg++; return h.nextMsg }

// newPktID allocates a packet id (1-based; 0 means "no packet").
func (h *Hub) newPktID() uint64 { h.nextPkt++; return h.nextPkt }

// spanFrame is one open builder span on a node's span stack.
type spanFrame struct {
	name   string
	id     uint64
	parent uint64
	msg    uint64
	pkt    uint64
	ts     uint64
	round  uint64
}

// topSpan returns the innermost open builder span's id, 0 when none.
func (s *NodeScope) topSpan() uint64 {
	if n := len(s.stack); n > 0 {
		return s.stack[n-1].id
	}
	return 0
}

// NewMsg allocates a fresh message identity and makes it the scope's
// current one: subsequent events and sends on this node attribute to it
// until the context is swapped. Protocol send entries call this once per
// logical message.
func (s *NodeScope) NewMsg() uint64 {
	if s == nil || !s.hub.enabled.Load() {
		return 0
	}
	s.curMsg = s.hub.newMsgID()
	s.curPkt = 0
	return s.curMsg
}

// SwapMsg makes msg the scope's current message identity and returns the
// previous one, so pump loops can enter a transfer's context and restore
// the caller's afterwards. Entering a different message clears the packet
// context (it belonged to the previous message).
func (s *NodeScope) SwapMsg(msg uint64) uint64 {
	if s == nil {
		return 0
	}
	prev := s.curMsg
	if msg != prev {
		s.curMsg = msg
		s.curPkt = 0
	}
	return prev
}

// CurrentMsg returns the scope's current message identity, 0 when none.
func (s *NodeScope) CurrentMsg() uint64 {
	if s == nil {
		return 0
	}
	return s.curMsg
}

// NewPkt allocates a packet identity within the current message and makes
// it the scope's current one. The CMAM send path calls it once per staged
// packet.
func (s *NodeScope) NewPkt() uint64 {
	if s == nil || !s.hub.enabled.Load() {
		return 0
	}
	s.curPkt = s.hub.newPktID()
	return s.curPkt
}

// MsgContext returns the identity an outgoing packet should carry: the
// current message and the innermost open builder span (the packet's causal
// parent at the destination).
func (s *NodeScope) MsgContext() (msg, span uint64) {
	if s == nil {
		return 0, 0
	}
	return s.curMsg, s.topSpan()
}

// Span is a handle on one open builder span. The zero value is the
// disabled state: End on it is a no-op.
type Span struct {
	scope *NodeScope
	id    uint64
}

// StartSpan opens a builder span on the node: a duration event that will
// cover everything recorded until the matching End, nested under the
// innermost open span and attributed to the current message context.
// Spans close in LIFO order (End pops the stack).
func (s *NodeScope) StartSpan(name string) Span {
	if s == nil || !s.hub.enabled.Load() {
		return Span{}
	}
	id := s.hub.newSpanID()
	s.stack = append(s.stack, spanFrame{
		name:   name,
		id:     id,
		parent: s.topSpan(),
		msg:    s.curMsg,
		pkt:    s.curPkt,
		ts:     s.hub.Trace.Now(),
		round:  s.hub.round,
	})
	return Span{scope: s, id: id}
}

// End closes the span, recording a PhaseComplete trace event spanning from
// StartSpan to now. Mismatched ends (a bug, or a span started while the
// hub was disabled) are dropped rather than corrupting the stack.
func (sp Span) End() {
	s := sp.scope
	if s == nil {
		return
	}
	n := len(s.stack)
	if n == 0 || s.stack[n-1].id != sp.id {
		return
	}
	f := s.stack[n-1]
	s.stack = s.stack[:n-1]
	end := s.hub.Trace.Now()
	s.hub.Trace.Record(TraceEvent{
		Phase:  PhaseComplete,
		TS:     f.ts,
		Dur:    end - f.ts,
		Round:  f.round,
		Node:   s.node,
		Name:   f.name,
		Proto:  ProtoOfEvent(f.name),
		Axis:   AxisForEvent(f.name),
		MsgID:  f.msg,
		PktID:  f.pkt,
		SpanID: f.id,
		Parent: f.parent,
	})
}

// DispatchCtx saves a node's message context across a handler dispatch so
// EndDispatch can restore it. The zero value is the disabled state.
type DispatchCtx struct {
	prevMsg, prevPkt uint64
	span             Span
}

// BeginDispatch enters the destination-handler context for a received
// packet: the node's current message/packet identity becomes the packet's,
// and a handler span is opened whose parent is the sender's span (link) —
// the cross-node edge of the causal chain. Pair with EndDispatch.
func (s *NodeScope) BeginDispatch(name string, msg, link, pkt uint64) DispatchCtx {
	if s == nil || !s.hub.enabled.Load() {
		return DispatchCtx{}
	}
	ctx := DispatchCtx{prevMsg: s.curMsg, prevPkt: s.curPkt}
	s.curMsg, s.curPkt = msg, pkt
	id := s.hub.newSpanID()
	s.stack = append(s.stack, spanFrame{
		name:   name,
		id:     id,
		parent: link,
		msg:    msg,
		pkt:    pkt,
		ts:     s.hub.Trace.Now(),
		round:  s.hub.round,
	})
	ctx.span = Span{scope: s, id: id}
	return ctx
}

// EndDispatch closes the handler span and restores the pre-dispatch
// message context.
func (s *NodeScope) EndDispatch(ctx DispatchCtx) {
	if s == nil || ctx.span.scope == nil {
		return
	}
	ctx.span.End()
	s.curMsg, s.curPkt = ctx.prevMsg, ctx.prevPkt
}

// flitEventEntry caches the per-name counter and axis for a FlitScope
// event, mirroring the node scope's eventEntry.
type flitEventEntry struct {
	counter *Counter
	axis    Axis
}

// FlitScope records flit-level transit events for the wormhole simulator
// (internal/flitnet): worm queueing, injection waits, backpressure, CR
// kill/retry/backoff, and delivery — the transit leg of a message's causal
// span tree. A nil scope is the disabled state. Every instant event is
// mirrored into a protocol_events_total counter exactly like node events,
// so per-message attribution reconciles against the registry.
//
// All emission sites live in the engine functions shared by the dense and
// event-driven steppers, so a trace is byte-identical across both engines.
type FlitScope struct {
	hub    *Hub
	events map[string]*flitEventEntry
}

// FlitScope returns the recording scope for the flit-level network.
func (h *Hub) FlitScope() *FlitScope {
	return &FlitScope{hub: h, events: make(map[string]*flitEventEntry)}
}

// flitProto is the protocol/subsystem label flit events are filed under.
const flitProto = "flitnet"

// on reports whether the scope should record.
func (s *FlitScope) on() bool { return s != nil && s.hub.enabled.Load() }

// entry resolves the cached counter/axis for an event name (cold path).
func (s *FlitScope) entry(name string) *flitEventEntry {
	e, ok := s.events[name]
	if !ok {
		e = &flitEventEntry{
			counter: s.hub.Metrics.Counter(Key{Name: "protocol_events_total", Node: -1, Proto: flitProto, Event: name}),
			axis:    AxisForEvent(name),
		}
		s.events[name] = e
	}
	return e
}

// Event records a named flit-level instant event at a simulator cycle,
// attributed to a message, packet, and parent span.
func (s *FlitScope) Event(name string, cycle, msg, pkt, parent uint64) {
	if !s.on() {
		return
	}
	e := s.entry(name)
	e.counter.Inc()
	s.hub.Trace.Record(TraceEvent{
		Round: cycle, Node: -1, Name: name, Proto: flitProto, Axis: e.axis,
		MsgID: msg, PktID: pkt, Parent: parent,
	})
}

// FlitGauges is the set of occupancy gauges the flit simulator publishes
// once per advanced cycle: the state the timeline sampler turns into
// utilization series. All values are absolute occupancies (not deltas), so
// publishing them after an idle fast-forward jump yields the same series
// as publishing them every cycle — the state did not change in between.
// A nil FlitGauges is the disabled state.
type FlitGauges struct {
	// InflightWorms is the number of worms currently in the network.
	InflightWorms *Level
	// InjectBacklog is the number of worms queued behind injection
	// backpressure (accepted by Inject, not yet head-injected).
	InjectBacklog *Level
	// RecvqPackets is the number of delivered packets not yet drained by
	// TryRecv.
	RecvqPackets *Level
	// BufferedFlits is the total number of flits resident in router input
	// buffers across all lanes.
	BufferedFlits *Level
	// VCFlits holds per-virtual-channel buffered-flit gauges (VC queue
	// depth); nil when the network runs a single channel.
	VCFlits []*Level
}

// Gauges resolves the flit-network occupancy gauges, labeled like the
// scope's events (Node: -1, Proto: "flitnet"; per-VC series carry the
// channel as the event label). vcs is the configured virtual-channel
// count; per-VC gauges are only created when vcs > 1.
func (s *FlitScope) Gauges(vcs int) *FlitGauges {
	if s == nil {
		return nil
	}
	k := func(metric, event string) Key {
		return Key{Name: metric, Node: -1, Proto: flitProto, Event: event}
	}
	g := &FlitGauges{
		InflightWorms: s.hub.Metrics.Level(k("flitnet_inflight_worms", "")),
		InjectBacklog: s.hub.Metrics.Level(k("flitnet_inject_backlog_worms", "")),
		RecvqPackets:  s.hub.Metrics.Level(k("flitnet_recvq_packets", "")),
		BufferedFlits: s.hub.Metrics.Level(k("flitnet_buffered_flits", "")),
	}
	if vcs > 1 {
		g.VCFlits = make([]*Level, vcs)
		for vc := 0; vc < vcs; vc++ {
			g.VCFlits[vc] = s.hub.Metrics.Level(k("flitnet_buffered_flits", fmt.Sprintf("vc%d", vc)))
		}
	}
	return g
}

// LinkCounter resolves the per-link utilization counter for one router
// output port: flits moved across that link, labeled with the router id
// and the port as the event label. The flit engine bumps it at every flit
// move; the timeline sampler's per-window deltas over it are the link's
// utilization series (flits per window / window width = busy fraction,
// since a link moves at most one flit per cycle).
func (s *FlitScope) LinkCounter(router, port int) *Counter {
	if s == nil {
		return nil
	}
	return s.hub.Metrics.Counter(Key{
		Name: "flitnet_link_flits_total", Node: router, Proto: flitProto,
		Event: fmt.Sprintf("p%d", port),
	})
}

// Span records a completed flit-level duration event covering cycles
// [from, to], returning the allocated span id. Zero-length spans are
// dropped (and return 0).
func (s *FlitScope) Span(name string, from, to, msg, pkt, parent uint64) uint64 {
	if !s.on() || to <= from {
		return 0
	}
	id := s.hub.newSpanID()
	s.hub.Trace.Record(TraceEvent{
		Phase:  PhaseComplete,
		TS:     from * RoundUnits,
		Dur:    (to - from) * RoundUnits,
		Round:  from,
		Node:   -1,
		Name:   name,
		Proto:  flitProto,
		Axis:   AxisForEvent(name),
		MsgID:  msg,
		PktID:  pkt,
		SpanID: id,
		Parent: parent,
	})
	return id
}
