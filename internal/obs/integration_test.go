package obs_test

import (
	"bytes"
	"testing"

	"msglayer/internal/cmam"
	"msglayer/internal/cost"
	"msglayer/internal/machine"
	"msglayer/internal/network"
	"msglayer/internal/obs"
	"msglayer/internal/protocols"
)

func twoNodeCM5(t *testing.T, capacity int) *machine.Machine {
	t.Helper()
	net := network.MustCM5Net(network.CM5Config{Nodes: 2, Capacity: capacity})
	m := machine.MustNew(net, cost.MustPaperSchedule(4))
	m.Node(0).SetRole(cost.Source)
	m.Node(1).SetRole(cost.Destination)
	return m
}

func runFinite(t *testing.T, m *machine.Machine, words int) {
	t.Helper()
	src := protocols.NewFinite(cmam.NewEndpoint(m.Node(0)))
	dst := protocols.NewFinite(cmam.NewEndpoint(m.Node(1)))
	data := make([]network.Word, words)
	for i := range data {
		data[i] = network.Word(i)
	}
	tr, err := src.Start(1, data)
	if err != nil {
		t.Fatal(err)
	}
	err = m.Run(10000,
		machine.StepFunc(func() (bool, error) { return tr.Done(), src.Pump() }),
		machine.StepFunc(func() (bool, error) { return tr.Done(), dst.Pump() }),
	)
	if err != nil {
		t.Fatal(err)
	}
}

// TestObsMachineIntegration runs a real finite-sequence transfer with a hub
// attached and checks that metrics, queue-depth samples, spans, and run
// counters all landed.
func TestObsMachineIntegration(t *testing.T) {
	m := twoNodeCM5(t, 0)
	h := obs.NewHub()
	m.AttachObserver(h)
	runFinite(t, m, 16)

	sent := h.Metrics.CounterValue(obs.Key{Name: "packets_sent_total", Node: 0, Proto: "cmam"})
	if sent == 0 {
		t.Fatal("no packets counted on the source")
	}
	recv := h.Metrics.CounterValue(obs.Key{Name: "packets_received_total", Node: 1, Proto: "cmam"})
	if recv == 0 {
		t.Fatal("no packets counted on the destination")
	}
	if got := h.Metrics.CounterValue(obs.Key{Name: "segment_allocs_total", Node: 1, Proto: "cmam"}); got != 1 {
		t.Fatalf("segment allocs = %d, want 1", got)
	}
	if got := h.Metrics.CounterValue(obs.Key{Name: "net_injected_total", Node: -1, Proto: "cm5"}); got == 0 {
		t.Fatal("network scope saw no injections")
	}
	if got := h.Metrics.CounterValue(obs.Key{Name: "run_rounds_total", Node: -1}); got == 0 {
		t.Fatal("observed run counted no rounds")
	}
	if h.Round() == 0 {
		t.Fatal("hub clock never ticked")
	}

	spans := make(map[string]uint64)
	for _, e := range h.Trace.Events() {
		if e.Phase == obs.PhaseComplete {
			spans[e.Name]++
		}
	}
	// One transfer seen from both ends: src and dst rule spans.
	if spans["finite.xfer.src"] != 1 || spans["finite.xfer.dst"] != 1 {
		t.Fatalf("rule spans = %v, want one finite.xfer.src and one finite.xfer.dst", spans)
	}
	// Every packet push opens a cmam.send builder span and every dispatch a
	// cmam.dispatch span.
	if spans["cmam.send"] != sent+h.Metrics.CounterValue(obs.Key{Name: "packets_sent_total", Node: 1, Proto: "cmam"}) {
		t.Fatalf("cmam.send spans = %d, want one per packet pushed", spans["cmam.send"])
	}
	if spans["cmam.dispatch"] != recv+h.Metrics.CounterValue(obs.Key{Name: "packets_received_total", Node: 0, Proto: "cmam"}) {
		t.Fatalf("cmam.dispatch spans = %d, want one per packet dispatched", spans["cmam.dispatch"])
	}
	// The causal chain closed: some event at the destination carries the
	// same message identity the source originated.
	var srcMsg uint64
	for _, e := range h.Trace.Events() {
		if e.Name == "finite.start" {
			srcMsg = e.MsgID
		}
	}
	if srcMsg == 0 {
		t.Fatal("finite.start carries no message identity")
	}
	linked := false
	for _, e := range h.Trace.Events() {
		if e.Node == 1 && e.MsgID == srcMsg {
			linked = true
			break
		}
	}
	if !linked {
		t.Fatalf("no destination event carries message %d", srcMsg)
	}
}

// TestObsBackpressureVisible forces network backpressure and checks the
// anomaly reaches both the net counters and the trace.
func TestObsBackpressureVisible(t *testing.T) {
	m := twoNodeCM5(t, 1) // single-packet buffering forces stalls
	h := obs.NewHub()
	m.AttachObserver(h)
	runFinite(t, m, 32)

	if got := h.Metrics.CounterValue(obs.Key{Name: "net_backpressure_total", Node: -1, Proto: "cm5"}); got == 0 {
		t.Fatal("no backpressure counted despite capacity 1")
	}
	found := false
	for _, e := range h.Trace.Events() {
		if e.Name == "net.backpressure" {
			found = true
			break
		}
	}
	if !found {
		t.Fatal("net.backpressure absent from trace")
	}
}

// TestObsDetachedMachineStillRuns checks AttachObserver(nil) detaches
// cleanly and the plain Run path is used.
func TestObsDetachedMachineStillRuns(t *testing.T) {
	m := twoNodeCM5(t, 0)
	h := obs.NewHub()
	m.AttachObserver(h)
	m.AttachObserver(nil)
	runFinite(t, m, 8)
	if h.Trace.Len() != 0 {
		t.Fatal("detached hub still recorded events")
	}
}

// TestObsZeroAllocWhenDetached proves the observability layer adds no
// allocations to the packet path when no hub is attached: the AM4
// round-trip allocates exactly as much as it did before the layer existed,
// and the nil-scope hook calls themselves allocate nothing.
func TestObsZeroAllocWhenDetached(t *testing.T) {
	m := twoNodeCM5(t, 0)
	src := cmam.NewEndpoint(m.Node(0))
	dst := cmam.NewEndpoint(m.Node(1))
	dst.Register(1, func(int, []network.Word) {})

	roundTrip := func() {
		if err := src.AM4(1, 1, 1, 2, 3, 4); err != nil {
			t.Fatal(err)
		}
		if ok, err := dst.PollSingle(); err != nil || !ok {
			t.Fatal("poll failed")
		}
	}
	roundTrip() // warm flow state so steady-state is measured

	// The nil-scope hook calls on the packet path must allocate nothing.
	var scope *obs.NodeScope
	if allocs := testing.AllocsPerRun(200, func() {
		scope.Event("finite.packet.sent")
		scope.PacketSent()
		scope.PacketReceived()
		scope.SendQueueDepth(3)
	}); allocs != 0 {
		t.Fatalf("nil-scope hooks allocate %.1f objects per packet, want 0", allocs)
	}

	// The whole round trip must allocate exactly what the pre-obs packet
	// path did (payload clone and queue bookkeeping), with no additions.
	base := testing.AllocsPerRun(500, roundTrip)

	// Disabled-hub path: scopes installed but recording off must also add
	// nothing per packet.
	h := obs.NewHub()
	m.AttachObserver(h)
	h.SetEnabled(false)
	roundTrip()
	disabled := testing.AllocsPerRun(500, roundTrip)
	if disabled > base {
		t.Fatalf("disabled hub adds allocations: %.1f > %.1f per round trip", disabled, base)
	}
}

// TestObsDeterministicExport runs the same scenario twice into fresh hubs
// and requires byte-identical Prometheus, JSON, and Chrome exports.
func TestObsDeterministicExport(t *testing.T) {
	render := func() (string, string, string) {
		m := twoNodeCM5(t, 2)
		h := obs.NewHub()
		m.AttachObserver(h)
		runFinite(t, m, 24)
		var prom, chrome bytes.Buffer
		if err := h.Metrics.WritePrometheus(&prom); err != nil {
			t.Fatal(err)
		}
		if err := h.Trace.WriteChromeTrace(&chrome); err != nil {
			t.Fatal(err)
		}
		js, err := h.Metrics.MetricsJSON()
		if err != nil {
			t.Fatal(err)
		}
		return prom.String(), string(js), chrome.String()
	}
	p1, j1, c1 := render()
	p2, j2, c2 := render()
	if p1 != p2 {
		t.Error("prometheus export differs between identical runs")
	}
	if j1 != j2 {
		t.Error("JSON export differs between identical runs")
	}
	if c1 != c2 {
		t.Error("chrome trace differs between identical runs")
	}
}
