package obs

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"testing"
)

func TestObsCounterAndLevel(t *testing.T) {
	r := NewRegistry()
	k := Key{Name: "packets_sent_total", Node: 0, Proto: "cmam"}
	c := r.Counter(k)
	c.Inc()
	c.Add(2)
	if got := r.CounterValue(k); got != 3 {
		t.Fatalf("counter = %d, want 3", got)
	}
	if r.Counter(k) != c {
		t.Fatal("counter pointer not stable across lookups")
	}
	l := r.Level(Key{Name: "segments_open", Node: 0})
	l.Add(2)
	l.Add(-1)
	if l.Value() != 1 {
		t.Fatalf("level = %d, want 1", l.Value())
	}
	l.Set(7)
	if l.Value() != 7 {
		t.Fatalf("level = %d, want 7", l.Value())
	}
}

func TestObsHistogramBuckets(t *testing.T) {
	h := NewHistogram([]uint64{1, 4, 16})
	for _, v := range []uint64{0, 1, 2, 5, 100} {
		h.Observe(v)
	}
	// 0,1 <= 1; 2 <= 4; 5 <= 16; 100 -> +Inf.
	want := []uint64{2, 3, 4, 5}
	got := h.Cumulative()
	if len(got) != len(want) {
		t.Fatalf("cumulative has %d buckets, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("bucket %d = %d, want %d", i, got[i], want[i])
		}
	}
	if h.Count() != 5 || h.Sum() != 108 {
		t.Fatalf("count/sum = %d/%d, want 5/108", h.Count(), h.Sum())
	}
}

func TestObsKeyString(t *testing.T) {
	k := Key{Name: "protocol_events_total", Node: 1, Proto: "finite", Event: "finite.start"}
	want := `protocol_events_total{node="1",proto="finite",event="finite.start"}`
	if k.String() != want {
		t.Fatalf("key = %s, want %s", k, want)
	}
	bare := Key{Name: "run_rounds_total", Node: -1}
	if bare.String() != "run_rounds_total" {
		t.Fatalf("bare key = %s", bare)
	}
}

func TestObsTracerMonotonicTimestamps(t *testing.T) {
	tr := NewTracer(0)
	tr.Record(TraceEvent{Round: 0, Node: 0, Name: "a"})
	tr.Record(TraceEvent{Round: 0, Node: 0, Name: "b"})
	tr.Record(TraceEvent{Round: 3, Node: 1, Name: "c"})
	ev := tr.Events()
	if len(ev) != 3 {
		t.Fatalf("recorded %d events, want 3", len(ev))
	}
	if ev[0].TS != 0 || ev[1].TS != 1 || ev[2].TS != 3*RoundUnits {
		t.Fatalf("timestamps %d,%d,%d not monotonic round-scaled", ev[0].TS, ev[1].TS, ev[2].TS)
	}
	for i, e := range ev {
		if e.Seq != uint64(i+1) {
			t.Fatalf("event %d has seq %d", i, e.Seq)
		}
		if e.Phase != PhaseInstant {
			t.Fatalf("event %d phase %c, want instant", i, e.Phase)
		}
	}
}

// TestObsTracerSpanInstantInterleaving holds Record's clock invariant when
// PhaseComplete spans (which keep the caller's TS/Dur) interleave with
// instants: a span whose end passes the clock advances it, a span that ends
// in the past does not, and the next instant always lands strictly after
// everything recorded so far.
func TestObsTracerSpanInstantInterleaving(t *testing.T) {
	tr := NewTracer(0)
	tr.Record(TraceEvent{Round: 1, Name: "a"}) // instant at 100
	if tr.Now() != 1*RoundUnits {
		t.Fatalf("clock %d after first instant, want %d", tr.Now(), RoundUnits)
	}

	// A span ending beyond the clock advances it (the e.TS+e.Dur > lastTS
	// branch taken).
	tr.Record(TraceEvent{Phase: PhaseComplete, TS: 100, Dur: 250, Name: "span.long"})
	if tr.Now() != 350 {
		t.Fatalf("clock %d after long span, want 350", tr.Now())
	}

	// A span entirely in the past leaves the clock alone (branch not taken).
	tr.Record(TraceEvent{Phase: PhaseComplete, TS: 120, Dur: 10, Name: "span.past"})
	if tr.Now() != 350 {
		t.Fatalf("clock %d after past span, want 350 unchanged", tr.Now())
	}

	// The next instant's natural position (round 2 -> 200) is already
	// covered by the long span, so it must be bumped past the clock.
	tr.Record(TraceEvent{Round: 2, Name: "b"})
	// And a later round beyond the clock lands at its natural position.
	tr.Record(TraceEvent{Round: 4, Name: "c"})

	ev := tr.Events()
	if got := ev[3].TS; got != 351 {
		t.Fatalf("bumped instant at %d, want 351", got)
	}
	if got := ev[4].TS; got != 4*RoundUnits {
		t.Fatalf("later-round instant at %d, want %d", got, 4*RoundUnits)
	}
	// Spans keep the caller's TS/Dur verbatim.
	if ev[1].TS != 100 || ev[1].Dur != 250 || ev[2].TS != 120 || ev[2].Dur != 10 {
		t.Fatalf("span TS/Dur rewritten: %+v %+v", ev[1], ev[2])
	}
	// Instants are strictly monotonic across the whole stream.
	last := uint64(0)
	for i, e := range ev {
		if e.Phase != PhaseInstant {
			continue
		}
		if i > 0 && e.TS <= last {
			t.Fatalf("instant %d at TS %d not after %d", i, e.TS, last)
		}
		last = e.TS
	}
}

func TestObsTracerLimit(t *testing.T) {
	tr := NewTracer(2)
	for i := 0; i < 5; i++ {
		tr.Record(TraceEvent{Round: uint64(i), Name: "x"})
	}
	if tr.Len() != 2 || tr.Dropped() != 3 {
		t.Fatalf("len/dropped = %d/%d, want 2/3", tr.Len(), tr.Dropped())
	}
}

func TestObsNodeScopeSpans(t *testing.T) {
	h := NewHub()
	s := h.NodeScope(0)
	s.Event("finite.start")
	h.Tick()
	h.Tick()
	s.Event("finite.ack.recv")
	var span *TraceEvent
	for i := range h.Trace.Events() {
		if h.Trace.Events()[i].Phase == PhaseComplete {
			span = &h.Trace.Events()[i]
		}
	}
	if span == nil {
		t.Fatal("no PhaseComplete span recorded")
	}
	if span.Name != "finite.xfer.src" {
		t.Fatalf("span name %q", span.Name)
	}
	if span.Dur == 0 {
		t.Fatal("span has zero duration")
	}
	lat := h.Metrics.hists[Key{Name: "transfer_latency_rounds", Node: 0, Proto: "finite"}]
	if lat == nil || lat.Count() != 1 || lat.Sum() != 2 {
		t.Fatalf("transfer latency histogram = %+v, want one 2-round sample", lat)
	}
	// A second end without a begin is ignored.
	s.Event("finite.ack.recv")
	if lat.Count() != 1 {
		t.Fatal("unmatched span end produced a latency sample")
	}
}

func TestObsNilAndDisabledScopes(t *testing.T) {
	var s *NodeScope
	s.Event("finite.start") // must not panic
	s.PacketSent()
	s.SendQueueDepth(3)
	var ns *NetScope
	ns.Injected()
	ns.Backpressure(1)
	var cs *CtrlScope
	cs.CombineDone()
	cs.Ticks(4)

	h := NewHub()
	h.SetEnabled(false)
	sc := h.NodeScope(0)
	sc.Event("finite.start")
	sc.PacketSent()
	if h.Trace.Len() != 0 {
		t.Fatal("disabled hub recorded trace events")
	}
	if got := h.Metrics.CounterValue(Key{Name: "packets_sent_total", Node: 0, Proto: "cmam"}); got != 0 {
		t.Fatalf("disabled hub counted %d packets", got)
	}
}

func TestObsEventAxesCoverSpanRules(t *testing.T) {
	for name := range spanRules {
		if _, ok := eventAxes[name]; !ok {
			t.Errorf("span rule event %q has no axis attribution", name)
		}
	}
	if AxisForEvent("finite.ack.sent") != AxisFaultTol {
		t.Fatal("finite.ack.sent not attributed to fault tolerance")
	}
	if AxisForEvent("nonsense") != AxisOther {
		t.Fatal("unknown event not AxisOther")
	}
	if ProtoOfEvent("stream.ack.recv") != "stream" {
		t.Fatal("proto derivation broken")
	}
}

func TestObsPrometheusExport(t *testing.T) {
	h := NewHub()
	s := h.NodeScope(1)
	s.PacketSent()
	s.PacketSent()
	s.Event("finite.start")
	h.Metrics.Histogram(Key{Name: "transfer_latency_rounds", Node: 1, Proto: "finite"}, nil).Observe(5)

	var b bytes.Buffer
	if err := h.Metrics.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE msglayer_packets_sent_total counter",
		`msglayer_packets_sent_total{node="1",proto="cmam"} 2`,
		`msglayer_protocol_events_total{node="1",proto="finite",event="finite.start"} 1`,
		`msglayer_transfer_latency_rounds_bucket{node="1",proto="finite",le="8"} 1`,
		`msglayer_transfer_latency_rounds_bucket{node="1",proto="finite",le="+Inf"} 1`,
		`msglayer_transfer_latency_rounds_sum{node="1",proto="finite"} 5`,
		`msglayer_transfer_latency_rounds_count{node="1",proto="finite"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prometheus output missing %q\n%s", want, out)
		}
	}
	// Deterministic: a second render is byte-identical.
	var b2 bytes.Buffer
	if err := h.Metrics.WritePrometheus(&b2); err != nil {
		t.Fatal(err)
	}
	if b.String() != b2.String() {
		t.Fatal("prometheus export not deterministic")
	}
}

func TestObsMetricsJSONValid(t *testing.T) {
	h := NewHub()
	s := h.NodeScope(0)
	s.PacketSent()
	s.SendQueueDepth(2)
	data, err := h.Metrics.MetricsJSON()
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Metrics []JSONMetric `json:"metrics"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("metrics JSON does not parse: %v", err)
	}
	if len(doc.Metrics) == 0 {
		t.Fatal("metrics JSON empty")
	}
	found := false
	for _, m := range doc.Metrics {
		if m.Name == "packets_sent_total" && m.Value == 1 {
			found = true
		}
	}
	if !found {
		t.Fatalf("packets_sent_total missing from %s", data)
	}
}

func TestObsChromeTraceValid(t *testing.T) {
	h := NewHub()
	s := h.NodeScope(0)
	s.Event("finite.start")
	h.Tick()
	s.Event("finite.ack.recv")
	h.NetScope("cm5").Backpressure(1)

	var b bytes.Buffer
	if err := h.Trace.WriteChromeTrace(&b); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name  string         `json:"name"`
			Cat   string         `json:"cat"`
			Phase string         `json:"ph"`
			TS    *uint64        `json:"ts"`
			PID   int            `json:"pid"`
			TID   int            `json:"tid"`
			Args  map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(b.Bytes(), &doc); err != nil {
		t.Fatalf("chrome trace does not parse: %v", err)
	}
	var phases []string
	cats := map[string]bool{}
	for _, e := range doc.TraceEvents {
		phases = append(phases, e.Phase)
		cats[e.Cat] = true
		if e.Phase != "M" && e.TS == nil {
			t.Fatalf("event %s missing ts", e.Name)
		}
	}
	for _, want := range []string{"M", "i", "X"} {
		ok := false
		for _, p := range phases {
			if p == want {
				ok = true
			}
		}
		if !ok {
			t.Errorf("no %q-phase event in trace", want)
		}
	}
	if !cats["buffer_mgmt"] || !cats["fault_tol"] {
		t.Errorf("feature-axis categories missing: %v", cats)
	}
}

func TestObsHistogramQuantile(t *testing.T) {
	// Uniform 1..100 over the default bounds: rank 50 lands in the <=64
	// bucket; ranks 90 and 99 land in the <=128 bucket, whose bound
	// over-reports, so they cap at the exact max (100).
	h := NewHistogram(nil)
	for v := uint64(1); v <= 100; v++ {
		h.Observe(v)
	}
	for _, tc := range []struct {
		q    float64
		want uint64
	}{{0, 1}, {0.5, 64}, {0.9, 100}, {0.99, 100}, {1, 100}} {
		if got := h.Quantile(tc.q); got != tc.want {
			t.Errorf("uniform Quantile(%v) = %d, want %d", tc.q, got, tc.want)
		}
	}

	// Point mass: the bucket bound (4) exceeds the max, so every quantile
	// reports the exact maximum instead.
	pm := NewHistogram([]uint64{1, 4, 16})
	for i := 0; i < 10; i++ {
		pm.Observe(3)
	}
	for _, q := range []float64{0.01, 0.5, 0.99} {
		if got := pm.Quantile(q); got != 3 {
			t.Errorf("point-mass Quantile(%v) = %d, want 3", q, got)
		}
	}

	// Overflow bucket reports the exact max, not a bound.
	of := NewHistogram([]uint64{1, 2})
	of.Observe(1)
	of.Observe(500)
	if got := of.Quantile(0.99); got != 500 {
		t.Errorf("overflow Quantile(0.99) = %d, want 500", got)
	}
	if of.Max() != 500 {
		t.Errorf("Max = %d, want 500", of.Max())
	}

	// Empty histogram.
	if got := NewHistogram(nil).Quantile(0.5); got != 0 {
		t.Errorf("empty Quantile(0.5) = %d, want 0", got)
	}
}

func TestObsHistogramQuantileEdgeCases(t *testing.T) {
	for _, tc := range []struct {
		name    string
		bounds  []uint64
		observe []uint64
		q       float64
		want    uint64
	}{
		{"empty-q0", nil, nil, 0, 0},
		{"empty-q1", nil, nil, 1, 0},
		{"empty-nan", nil, nil, math.NaN(), 0},
		{"single-bucket-q0", []uint64{8}, []uint64{5}, 0, 5},
		{"single-bucket-q1", []uint64{8}, []uint64{5}, 1, 5},
		{"single-bucket-overflow", []uint64{8}, []uint64{3, 20}, 1, 20},
		{"q0-is-rank-one", []uint64{1, 2, 4}, []uint64{1, 2, 2, 4}, 0, 1},
		{"q1-is-max", []uint64{1, 2, 4}, []uint64{1, 2, 3}, 1, 3},
		{"nan-clamps-to-zero", []uint64{1, 2, 4}, []uint64{1, 4}, math.NaN(), 1},
		{"negative-clamps-to-zero", []uint64{1, 2, 4}, []uint64{1, 4}, -0.5, 1},
		{"above-one-clamps-to-one", []uint64{1, 2, 4}, []uint64{1, 4}, 3.5, 4},
		{"bound-capped-at-max", []uint64{10, 100}, []uint64{4}, 0.5, 4},
		{"overflow-reports-max", []uint64{1, 2}, []uint64{1, 500}, 0.99, 500},
	} {
		t.Run(tc.name, func(t *testing.T) {
			h := NewHistogram(tc.bounds)
			for _, v := range tc.observe {
				h.Observe(v)
			}
			if got := h.Quantile(tc.q); got != tc.want {
				t.Errorf("Quantile(%v) = %d, want %d", tc.q, got, tc.want)
			}
		})
	}
}

func TestObsExportersIncludeQuantiles(t *testing.T) {
	h := NewHub()
	hist := h.Metrics.Histogram(Key{Name: "transfer_latency_rounds", Node: 0, Proto: "finite"}, nil)
	for v := uint64(1); v <= 100; v++ {
		hist.Observe(v)
	}

	var b bytes.Buffer
	if err := h.Metrics.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE msglayer_transfer_latency_rounds_p50 gauge",
		`msglayer_transfer_latency_rounds_p50{node="0",proto="finite"} 64`,
		`msglayer_transfer_latency_rounds_p90{node="0",proto="finite"} 100`,
		`msglayer_transfer_latency_rounds_p99{node="0",proto="finite"} 100`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prometheus output missing %q\n%s", want, out)
		}
	}

	data, err := h.Metrics.MetricsJSON()
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Metrics []JSONMetric `json:"metrics"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, m := range doc.Metrics {
		if m.Kind == "histogram" && m.Name == "transfer_latency_rounds" {
			found = true
			if m.Quantiles["p50"] != 64 || m.Quantiles["p90"] != 100 || m.Quantiles["p99"] != 100 {
				t.Errorf("JSON quantiles = %v, want p50=64 p90=100 p99=100", m.Quantiles)
			}
		}
	}
	if !found {
		t.Fatal("histogram series missing from JSON export")
	}
}
