package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// metricHelp documents the known metric names for the Prometheus
// exposition's HELP lines.
var metricHelp = map[string]string{
	"packets_sent_total":      "packets pushed through the CMAM send path",
	"packets_received_total":  "packets dispatched by the CMAM poll path",
	"segment_allocs_total":    "communication segments allocated",
	"segment_frees_total":     "communication segments freed",
	"segments_open":           "communication segments currently open",
	"send_queue_depth":        "software send-queue depth (last sample)",
	"send_queue_depth_hist":   "software send-queue depth distribution",
	"recv_queue_depth":        "packets buffered in the network toward the node (last sample)",
	"recv_queue_depth_hist":   "network receive-queue depth distribution",
	"protocol_events_total":   "named protocol events by node, protocol, and event",
	"step_latency_rounds":     "rounds between consecutive protocol events of one protocol on one node",
	"transfer_latency_rounds": "rounds from transfer start to completion",
	"net_injected_total":      "packets accepted by the network substrate",
	"net_delivered_total":     "packets popped by receivers",
	"net_dropped_total":       "packets lost to injected faults",
	"net_corrupt_total":       "packets delivered with a failed CRC",
	"net_backpressure_total":  "injections refused for lack of buffering",
	"net_rejected_total":      "header packets refused by the destination",
	"net_hw_retries_total":    "transparent hardware retries (CR)",
	"ctrlnet_combines_total":  "control-network combine rounds completed",
	"ctrlnet_scans_total":     "control-network scan rounds completed",
	"ctrlnet_busy_total":      "control-network contributions refused busy",
	"ctrlnet_cycles_total":    "control-network hardware cycles ticked",
	"run_rounds_total":        "scheduler rounds executed by observed runs",
	"run_steps_total":         "stepper invocations executed by observed runs",
	"run_stalls_total":        "observed runs that exhausted their round budget",
	"trace_undescribed_total": "protocol events neither described nor deliberately skipped by the figure traces",
	"flitnet_idle_skipped":    "cycles the event-driven flit engine fast-forwarded instead of stepping",

	"flitnet_link_flits_total":     "flits moved across a router output link (event label = output port)",
	"flitnet_inflight_worms":       "worms currently in the flit network",
	"flitnet_inject_backlog_worms": "worms accepted by Inject but not yet head-injected",
	"flitnet_recvq_packets":        "delivered packets not yet drained by TryRecv",
	"flitnet_buffered_flits":       "flits resident in router input buffers (event label = virtual channel, when split)",
}

// MetricPrefix namespaces every exported series.
const MetricPrefix = "msglayer_"

// WritePrometheus renders the registry in the Prometheus text exposition
// format, deterministically ordered.
func (r *Registry) WritePrometheus(w io.Writer) error {
	write := func(format string, args ...any) error {
		_, err := fmt.Fprintf(w, format, args...)
		return err
	}
	typed := make(map[string]bool)
	header := func(name, kind string) error {
		if typed[name] {
			return nil
		}
		typed[name] = true
		help := metricHelp[name]
		if help == "" {
			for _, q := range r.exportQuantiles() {
				if base, ok := strings.CutSuffix(name, "_"+q.Suffix); ok && metricHelp[base] != "" {
					help = q.Suffix + " quantile of " + metricHelp[base]
				}
			}
		}
		if help != "" {
			if err := write("# HELP %s%s %s\n", MetricPrefix, name, help); err != nil {
				return err
			}
		}
		return write("# TYPE %s%s %s\n", MetricPrefix, name, kind)
	}

	for _, k := range sortedKeys(r.counters) {
		if err := header(k.Name, "counter"); err != nil {
			return err
		}
		if err := write("%s%s %d\n", MetricPrefix, k, r.counters[k].Value()); err != nil {
			return err
		}
	}
	for _, k := range sortedKeys(r.levels) {
		if err := header(k.Name, "gauge"); err != nil {
			return err
		}
		if err := write("%s%s %d\n", MetricPrefix, k, r.levels[k].Value()); err != nil {
			return err
		}
	}
	for _, k := range sortedKeys(r.hists) {
		if err := header(k.Name, "histogram"); err != nil {
			return err
		}
		h := r.hists[k]
		cum := h.Cumulative()
		for i, bound := range h.Bounds() {
			if err := write("%s%s_bucket{%s} %d\n", MetricPrefix, k.Name,
				appendLabel(k.labelString(), "le", strconv.FormatUint(bound, 10)), cum[i]); err != nil {
				return err
			}
		}
		if err := write("%s%s_bucket{%s} %d\n", MetricPrefix, k.Name,
			appendLabel(k.labelString(), "le", "+Inf"), cum[len(cum)-1]); err != nil {
			return err
		}
		if err := write("%s%s_sum%s %d\n", MetricPrefix, k.Name, braced(k.labelString()), h.Sum()); err != nil {
			return err
		}
		if err := write("%s%s_count%s %d\n", MetricPrefix, k.Name, braced(k.labelString()), h.Count()); err != nil {
			return err
		}
	}
	// Bucket-derived quantiles as their own gauge families, grouped per
	// family so the exposition stays well-formed.
	for _, q := range r.exportQuantiles() {
		for _, k := range sortedKeys(r.hists) {
			name := k.Name + "_" + q.Suffix
			if err := header(name, "gauge"); err != nil {
				return err
			}
			if err := write("%s%s%s %d\n", MetricPrefix, name, braced(k.labelString()), r.hists[k].Quantile(q.Q)); err != nil {
				return err
			}
		}
	}
	return nil
}

// ExportQuantile names one bucket-derived quantile the exporters emit
// alongside the raw bucket dumps; Suffix becomes the series-name suffix
// ("_p99") and the JSON quantile map key.
type ExportQuantile struct {
	Suffix string
	Q      float64
}

// defaultQuantiles is the historical export list; registries emit it until
// SetExportQuantiles overrides it, so existing goldens stay byte-stable.
var defaultQuantiles = []ExportQuantile{
	{"p50", 0.50},
	{"p90", 0.90},
	{"p99", 0.99},
}

// DefaultQuantiles returns the default export list (p50, p90, p99).
func DefaultQuantiles() []ExportQuantile {
	return append([]ExportQuantile(nil), defaultQuantiles...)
}

// ExtendedQuantiles returns the default list plus the p99.9 tail quantile.
func ExtendedQuantiles() []ExportQuantile {
	return append(DefaultQuantiles(), ExportQuantile{"p999", 0.999})
}

// SetExportQuantiles overrides the quantiles both exporters emit for this
// registry. nil restores the default list.
func (r *Registry) SetExportQuantiles(qs []ExportQuantile) { r.quantiles = qs }

// exportQuantiles resolves the effective export list.
func (r *Registry) exportQuantiles() []ExportQuantile {
	if r.quantiles != nil {
		return r.quantiles
	}
	return defaultQuantiles
}

// appendLabel adds one label pair to a rendered label list.
func appendLabel(labels, name, value string) string {
	pair := fmt.Sprintf("%s=%q", name, value)
	if labels == "" {
		return pair
	}
	return labels + "," + pair
}

// braced wraps a non-empty label list in braces.
func braced(labels string) string {
	if labels == "" {
		return ""
	}
	return "{" + labels + "}"
}

// JSONMetric is one exported metric series.
type JSONMetric struct {
	Name  string `json:"name"`
	Kind  string `json:"kind"`
	Node  *int   `json:"node,omitempty"`
	Proto string `json:"proto,omitempty"`
	Event string `json:"event,omitempty"`
	Value int64  `json:"value,omitempty"`
	// Histogram detail (kind == "histogram" only).
	Bounds []uint64 `json:"bounds,omitempty"`
	Counts []uint64 `json:"counts,omitempty"`
	Sum    uint64   `json:"sum,omitempty"`
	Count  uint64   `json:"count,omitempty"`
	// Quantiles holds the bucket-derived p50/p90/p99 estimates
	// (kind == "histogram" only).
	Quantiles map[string]uint64 `json:"quantiles,omitempty"`
}

// jsonKey fills the shared key fields.
func jsonKey(k Key, kind string) JSONMetric {
	m := JSONMetric{Name: k.Name, Kind: kind, Proto: k.Proto, Event: k.Event}
	if k.Node >= 0 {
		node := k.Node
		m.Node = &node
	}
	return m
}

// MetricsJSON renders the registry as a deterministic JSON document.
func (r *Registry) MetricsJSON() ([]byte, error) {
	return json.MarshalIndent(struct {
		Metrics []JSONMetric `json:"metrics"`
	}{r.JSONMetrics()}, "", "  ")
}

// JSONMetrics returns the registry's series in their exported form, in the
// deterministic export order — the in-process equivalent of MetricsJSON,
// for consumers (the diff engine) that want the series without a
// marshal/unmarshal round trip.
func (r *Registry) JSONMetrics() []JSONMetric {
	var out []JSONMetric
	for _, k := range sortedKeys(r.counters) {
		m := jsonKey(k, "counter")
		m.Value = int64(r.counters[k].Value())
		out = append(out, m)
	}
	for _, k := range sortedKeys(r.levels) {
		m := jsonKey(k, "gauge")
		m.Value = r.levels[k].Value()
		out = append(out, m)
	}
	for _, k := range sortedKeys(r.hists) {
		h := r.hists[k]
		m := jsonKey(k, "histogram")
		m.Bounds = h.Bounds()
		m.Counts = h.Cumulative()
		m.Sum = h.Sum()
		m.Count = h.Count()
		if h.Count() > 0 {
			qs := r.exportQuantiles()
			m.Quantiles = make(map[string]uint64, len(qs))
			for _, q := range qs {
				m.Quantiles[q.Suffix] = h.Quantile(q.Q)
			}
		}
		out = append(out, m)
	}
	return out
}

// chromeEvent is one entry of the Chrome trace-event format
// (https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU;
// loadable in chrome://tracing and https://ui.perfetto.dev).
type chromeEvent struct {
	Name  string         `json:"name"`
	Cat   string         `json:"cat,omitempty"`
	Phase string         `json:"ph"`
	TS    uint64         `json:"ts"`
	Dur   *uint64        `json:"dur,omitempty"`
	PID   int            `json:"pid"`
	TID   int            `json:"tid"`
	Scope string         `json:"s,omitempty"`
	Args  map[string]any `json:"args,omitempty"`
}

// chromePID is the synthetic process id the simulator exports under.
const chromePID = 1

// netTID is the synthetic thread machine- and network-wide events (Node
// == -1) are filed under, placed after the largest real node id seen.
func netTID(maxNode int) int { return maxNode + 1 }

// WriteChromeTrace renders the recorded events as Chrome trace-event JSON
// (the {"traceEvents": [...]} object form). Nodes appear as threads of one
// "msglayer sim" process; machine-wide events land on a trailing "net"
// thread; every event's category carries its Feature-axis attribution so
// the timeline can be filtered by the paper's axes.
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	maxNode := 0
	for _, e := range t.events {
		if e.Node > maxNode {
			maxNode = e.Node
		}
	}
	out := []chromeEvent{{
		Name: "process_name", Phase: "M", PID: chromePID,
		Args: map[string]any{"name": "msglayer sim"},
	}}
	seenTID := make(map[int]bool)
	tidOf := func(node int) int {
		if node < 0 {
			return netTID(maxNode)
		}
		return node
	}
	nameTID := func(node int) {
		tid := tidOf(node)
		if seenTID[tid] {
			return
		}
		seenTID[tid] = true
		label := fmt.Sprintf("node %d", node)
		if node < 0 {
			label = "machine/net"
		}
		out = append(out, chromeEvent{
			Name: "thread_name", Phase: "M", PID: chromePID, TID: tid,
			Args: map[string]any{"name": label},
		})
	}
	for _, e := range t.events {
		nameTID(e.Node)
		args := map[string]any{"round": e.Round, "seq": e.Seq, "proto": e.Proto}
		if e.MsgID != 0 {
			args["msg"] = e.MsgID
		}
		if e.PktID != 0 {
			args["pkt"] = e.PktID
		}
		if e.SpanID != 0 {
			args["span"] = e.SpanID
		}
		if e.Parent != 0 {
			args["parent"] = e.Parent
		}
		ce := chromeEvent{
			Name:  e.Name,
			Cat:   e.Axis.String(),
			Phase: string(rune(e.Phase)),
			TS:    e.TS,
			PID:   chromePID,
			TID:   tidOf(e.Node),
			Args:  args,
		}
		if e.Phase == PhaseInstant {
			ce.Scope = "t" // thread-scoped instant marker
		}
		if e.Phase == PhaseComplete {
			dur := e.Dur
			ce.Dur = &dur
		}
		out = append(out, ce)
	}
	doc := struct {
		TraceEvents     []chromeEvent  `json:"traceEvents"`
		DisplayTimeUnit string         `json:"displayTimeUnit"`
		OtherData       map[string]any `json:"otherData,omitempty"`
	}{
		TraceEvents:     out,
		DisplayTimeUnit: "ms",
	}
	if d := t.Dropped(); d > 0 {
		doc.OtherData = map[string]any{"droppedEvents": d}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(doc)
}
