// Package ni simulates the CM-5-style memory-mapped network interface of
// the paper's Figure 2: control/status registers and send/receive FIFOs on
// the processor-memory bus. A packet is injected by storing the destination
// node number and data words to the send buffer and confirming via a status
// read; packets are extracted with loads from the receive buffer.
//
// The NI moves real data between the processor and the network model. It
// does not charge instruction costs itself — the messaging layers charge
// calibrated bundles per protocol event (see internal/cost) — but it counts
// raw device accesses so tests can cross-check that the calibrated dev
// charges track actual NI traffic.
package ni

import (
	"errors"
	"fmt"

	"msglayer/internal/network"
)

// Access counters for the memory-mapped register file.
type Access struct {
	Writes      uint64 // stores to the send FIFO and control registers
	Reads       uint64 // loads from the receive FIFO
	StatusReads uint64 // loads of the status register
	CRCErrors   uint64 // corrupt packets detected and discarded on receive
}

// NI is one node's network interface.
type NI struct {
	node int
	net  network.Network

	// Send staging registers.
	sendDst    int
	sendTag    network.Tag
	sendHead   network.Word
	sendData   []network.Word
	sendStaged bool

	// Observability identity staged alongside the packet (StageTrace).
	// Pure simulator-side metadata: staging it models no device access and
	// costs no Access counters, so the calibrated dev-charge cross-checks
	// are unaffected.
	sendMsg, sendSpan, sendPkt uint64

	// Receive staging register: the packet at the head of the FIFO.
	recv      network.Packet
	recvValid bool

	access Access
}

// ErrNothingStaged reports a push with no staged destination.
var ErrNothingStaged = errors.New("ni: push with no staged packet")

// New attaches a network interface for the given node.
func New(node int, net network.Network) (*NI, error) {
	if node < 0 || node >= net.Nodes() {
		return nil, fmt.Errorf("ni: node %d out of range for %d-node network", node, net.Nodes())
	}
	return &NI{node: node, net: net, sendDst: -1}, nil
}

// MustNew is New that panics on bad arguments.
func MustNew(node int, net network.Network) *NI {
	n, err := New(node, net)
	if err != nil {
		panic(err)
	}
	return n
}

// Node returns the attached node id.
func (n *NI) Node() int { return n.node }

// Accesses returns the raw device-access counters.
func (n *NI) Accesses() Access { return n.access }

// StageDest stores the destination node number and message tag to the send
// buffer (one device store). Staging a destination begins a fresh packet:
// any previously staged head or data words are discarded, so a sender that
// failed to push can either retry Push as-is or simply stage the packet
// again from scratch.
func (n *NI) StageDest(dst int, tag network.Tag) {
	n.access.Writes++
	n.sendDst = dst
	n.sendTag = tag
	n.sendHead = 0
	n.sendData = nil
	n.sendStaged = true
	n.sendMsg, n.sendSpan, n.sendPkt = 0, 0, 0
}

// StageTrace attaches observability identity (message, parent span, packet
// id) to the staged packet. It models no device access — tracing must not
// perturb the Access counters the dev-charge cross-checks audit — and is
// cleared by StageDest along with the rest of the staging registers.
func (n *NI) StageTrace(msg, span, pkt uint64) {
	n.sendMsg, n.sendSpan, n.sendPkt = msg, span, pkt
}

// StageHead stores the protocol metadata word (one device store).
func (n *NI) StageHead(head network.Word) {
	n.access.Writes++
	n.sendHead = head
}

// StageData stores payload words to the send buffer using double-word
// stores: every two words cost one device store.
func (n *NI) StageData(words ...network.Word) {
	n.access.Writes += uint64(len(words)+1) / 2
	n.sendData = append(n.sendData, words...)
}

// Push commits the staged packet to the network and clears the staging
// registers on success. Backpressure and rejection leave the staged packet
// intact so the caller can retry the push after re-checking status.
func (n *NI) Push() error {
	if !n.sendStaged {
		return ErrNothingStaged
	}
	err := n.net.Inject(network.Packet{
		Src:  n.node,
		Dst:  n.sendDst,
		Tag:  n.sendTag,
		Head: n.sendHead,
		Data: n.sendData,
		Msg:  n.sendMsg,
		Span: n.sendSpan,
		Pkt:  n.sendPkt,
	})
	if err != nil {
		return err
	}
	n.sendDst = -1
	n.sendTag = 0
	n.sendHead = 0
	n.sendData = nil
	n.sendStaged = false
	n.sendMsg, n.sendSpan, n.sendPkt = 0, 0, 0
	return nil
}

// RecvTrace returns the observability identity carried by the staged
// received packet (all zero when tracing was off at the sender). Like
// StageTrace it models no device access.
func (n *NI) RecvTrace() (msg, span, pkt uint64) {
	if !n.recvValid {
		return 0, 0, 0
	}
	return n.recv.Msg, n.recv.Span, n.recv.Pkt
}

// SendOK reads the status register confirming the previous send: true when
// the staging buffer is empty (the packet left for the network).
func (n *NI) SendOK() bool {
	n.access.StatusReads++
	return !n.sendStaged
}

// RecvReady reads the status register for waiting packets, staging the next
// good one. Corrupt packets (failed CRC) are detected here, counted, and
// discarded — the CM-5 detects errors but cannot correct them, so software
// never sees the payload.
func (n *NI) RecvReady() bool {
	n.access.StatusReads++
	for !n.recvValid {
		p, ok := n.net.TryRecv(n.node)
		if !ok {
			return false
		}
		if p.Corrupt {
			n.access.CRCErrors++
			continue
		}
		n.recv = p
		n.recvValid = true
	}
	return true
}

// ReadMeta loads the source, tag, and metadata word of the staged packet
// (one device load). It panics if no packet is staged — a protocol bug, not
// a runtime condition.
func (n *NI) ReadMeta() (src int, tag network.Tag, head network.Word) {
	if !n.recvValid {
		panic("ni: ReadMeta with no staged packet")
	}
	n.access.Reads++
	return n.recv.Src, n.recv.Tag, n.recv.Head
}

// ReadData loads the staged packet's payload with double-word loads and
// consumes the packet, freeing the staging register.
func (n *NI) ReadData() []network.Word {
	if !n.recvValid {
		panic("ni: ReadData with no staged packet")
	}
	n.access.Reads += uint64(len(n.recv.Data)+1) / 2
	data := n.recv.Data
	n.recv = network.Packet{}
	n.recvValid = false
	return data
}

// Discard consumes the staged packet without reading its payload.
func (n *NI) Discard() {
	n.recv = network.Packet{}
	n.recvValid = false
}
