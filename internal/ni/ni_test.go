package ni

import (
	"errors"
	"testing"

	"msglayer/internal/network"
)

func newPair(t *testing.T) (*NI, *NI, *network.CM5Net) {
	t.Helper()
	net := network.MustCM5Net(network.CM5Config{Nodes: 2})
	return MustNew(0, net), MustNew(1, net), net
}

func TestNewRejectsBadNode(t *testing.T) {
	net := network.MustCM5Net(network.CM5Config{Nodes: 2})
	if _, err := New(2, net); err == nil {
		t.Error("accepted out-of-range node")
	}
	if _, err := New(-1, net); err == nil {
		t.Error("accepted negative node")
	}
}

func TestMustNewPanics(t *testing.T) {
	net := network.MustCM5Net(network.CM5Config{Nodes: 2})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MustNew(9, net)
}

func TestSendReceiveRoundTrip(t *testing.T) {
	src, dst, _ := newPair(t)

	src.StageDest(1, 3)
	src.StageHead(77)
	src.StageData(10, 20, 30, 40)
	if err := src.Push(); err != nil {
		t.Fatal(err)
	}
	if !src.SendOK() {
		t.Error("SendOK false after successful push")
	}

	if !dst.RecvReady() {
		t.Fatal("RecvReady false with a waiting packet")
	}
	from, tag, head := dst.ReadMeta()
	if from != 0 || tag != 3 || head != 77 {
		t.Errorf("meta = (%d,%d,%d)", from, tag, head)
	}
	data := dst.ReadData()
	if len(data) != 4 || data[0] != 10 || data[3] != 40 {
		t.Errorf("data = %v", data)
	}
	if dst.RecvReady() {
		t.Error("RecvReady true after consuming the only packet")
	}
}

func TestPushWithoutStagingFails(t *testing.T) {
	src, _, _ := newPair(t)
	if err := src.Push(); !errors.Is(err, ErrNothingStaged) {
		t.Errorf("Push = %v, want ErrNothingStaged", err)
	}
}

func TestPushBackpressureKeepsPacketStaged(t *testing.T) {
	net := network.MustCM5Net(network.CM5Config{Nodes: 2, Capacity: 1})
	src := MustNew(0, net)
	dst := MustNew(1, net)

	src.StageDest(1, 0)
	if err := src.Push(); err != nil {
		t.Fatal(err)
	}
	// Second packet hits the capacity limit.
	src.StageDest(1, 0)
	src.StageHead(5)
	if err := src.Push(); !errors.Is(err, network.ErrBackpressure) {
		t.Fatalf("Push = %v, want backpressure", err)
	}
	if src.SendOK() {
		t.Error("SendOK true while a packet is stuck in staging")
	}
	// Drain and retry the same staged packet.
	if !dst.RecvReady() {
		t.Fatal("first packet missing")
	}
	dst.Discard()
	if err := src.Push(); err != nil {
		t.Fatalf("retry push = %v", err)
	}
	if !dst.RecvReady() {
		t.Fatal("retried packet missing")
	}
	_, _, head := dst.ReadMeta()
	if head != 5 {
		t.Errorf("head = %d, want 5", head)
	}
}

func TestCorruptPacketsDetectedAndDiscarded(t *testing.T) {
	net := network.MustCM5Net(network.CM5Config{
		Nodes:  2,
		Faults: &network.EveryNth{N: 2, What: network.Corrupt},
	})
	src := MustNew(0, net)
	dst := MustNew(1, net)

	for i := 0; i < 4; i++ {
		src.StageDest(1, 0)
		src.StageHead(network.Word(i))
		if err := src.Push(); err != nil {
			t.Fatal(err)
		}
	}
	var got []network.Word
	for dst.RecvReady() {
		_, _, head := dst.ReadMeta()
		got = append(got, head)
		dst.Discard()
	}
	if len(got) != 2 || got[0] != 0 || got[1] != 2 {
		t.Errorf("delivered heads = %v, want [0 2]", got)
	}
	if dst.Accesses().CRCErrors != 2 {
		t.Errorf("CRCErrors = %d, want 2", dst.Accesses().CRCErrors)
	}
}

func TestAccessCounting(t *testing.T) {
	src, dst, _ := newPair(t)

	src.StageDest(1, 0)       // 1 write
	src.StageHead(0)          // 1 write
	src.StageData(1, 2, 3, 4) // 2 writes (double-word)
	if err := src.Push(); err != nil {
		t.Fatal(err)
	}
	src.SendOK() // 1 status read
	a := src.Accesses()
	if a.Writes != 4 || a.StatusReads != 1 || a.Reads != 0 {
		t.Errorf("source accesses = %+v", a)
	}

	dst.RecvReady() // 1 status read
	dst.ReadMeta()  // 1 read
	dst.ReadData()  // 2 reads
	a = dst.Accesses()
	if a.StatusReads != 1 || a.Reads != 3 {
		t.Errorf("destination accesses = %+v", a)
	}
}

func TestOddWordCountsRoundUp(t *testing.T) {
	src, dst, _ := newPair(t)
	src.StageDest(1, 0)
	src.StageData(1, 2, 3) // 3 words = 2 double-word stores
	if err := src.Push(); err != nil {
		t.Fatal(err)
	}
	if src.Accesses().Writes != 3 { // dest + 2 data stores
		t.Errorf("writes = %d, want 3", src.Accesses().Writes)
	}
	dst.RecvReady()
	if got := dst.ReadData(); len(got) != 3 {
		t.Errorf("data = %v", got)
	}
	if dst.Accesses().Reads != 2 {
		t.Errorf("reads = %d, want 2", dst.Accesses().Reads)
	}
}

func TestReadWithoutPacketPanics(t *testing.T) {
	_, dst, _ := newPair(t)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	dst.ReadMeta()
}

func TestReadDataWithoutPacketPanics(t *testing.T) {
	_, dst, _ := newPair(t)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	dst.ReadData()
}

func TestNodeAccessor(t *testing.T) {
	src, dst, _ := newPair(t)
	if src.Node() != 0 || dst.Node() != 1 {
		t.Errorf("Node() = %d, %d", src.Node(), dst.Node())
	}
}

func TestWorksOverCRNet(t *testing.T) {
	net := network.MustCRNet(network.CRConfig{Nodes: 2})
	src := MustNew(0, net)
	dst := MustNew(1, net)
	for i := 0; i < 3; i++ {
		src.StageDest(1, 1)
		src.StageHead(network.Word(i))
		if err := src.Push(); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 3; i++ {
		if !dst.RecvReady() {
			t.Fatalf("packet %d missing", i)
		}
		_, _, head := dst.ReadMeta()
		if head != network.Word(i) {
			t.Errorf("packet %d head = %d (CR must preserve order)", i, head)
		}
		dst.Discard()
	}
}

func TestPushRejectedKeepsStaged(t *testing.T) {
	net := network.MustCRNet(network.CRConfig{Nodes: 2})
	if err := net.SetAcceptor(1, func(network.Packet) bool { return false }); err != nil {
		t.Fatal(err)
	}
	src := MustNew(0, net)
	src.StageDest(1, 0)
	if err := src.Push(); !errors.Is(err, network.ErrRejected) {
		t.Fatalf("Push = %v, want ErrRejected", err)
	}
	// Acceptance opens up; the staged packet retries successfully.
	if err := net.SetAcceptor(1, nil); err != nil {
		t.Fatal(err)
	}
	if err := src.Push(); err != nil {
		t.Fatalf("retry = %v", err)
	}
}
