package trace

import (
	"testing"

	"msglayer/internal/obs"
)

// TestObsTraceEventAudit runs the four figure scenarios and asserts every
// emitted protocol event is either captioned in descriptions or listed in
// DeliberatelySkipped — no event is silently lost — and that the obs hook
// sees exactly the undescribed ones (none, for a healthy event map).
func TestObsTraceEventAudit(t *testing.T) {
	hub := obs.NewHub()
	SetObserver(hub)
	defer SetObserver(nil)

	traces := map[string]func() (Trace, error){
		"figure3": func() (Trace, error) { return Figure3(16) },
		"figure4": func() (Trace, error) { return Figure4(4) },
		"figure5": func() (Trace, error) { return Figure5(16) },
		"figure7": func() (Trace, error) { return Figure7(4) },
	}
	for name, run := range traces {
		tr, err := run()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for event, n := range tr.Undescribed {
			t.Errorf("%s emitted %q %d times: neither described nor deliberately skipped", name, event, n)
		}
	}

	// The obs counter mirrors the per-trace audit: healthy maps count zero.
	total := uint64(0)
	for event := range DeliberatelySkipped {
		total += hub.Metrics.CounterValue(obs.Key{
			Name: "trace_undescribed_total", Node: -1, Proto: "trace", Event: event,
		})
	}
	if total != 0 {
		t.Fatalf("deliberately skipped events were counted as undescribed (%d)", total)
	}
}

// TestObsTraceUndescribedCounted verifies the plumbing: an event name
// outside both maps is counted per trace and through the obs hub.
func TestObsTraceUndescribedCounted(t *testing.T) {
	hub := obs.NewHub()
	SetObserver(hub)
	defer SetObserver(nil)

	// Temporarily un-describe a quiet event to simulate a map gap.
	const victim = "crfinite.complete"
	if descriptions[victim] != "" {
		t.Fatalf("%s unexpectedly described", victim)
	}
	if !DeliberatelySkipped[victim] {
		t.Fatalf("%s should start deliberately skipped", victim)
	}
	delete(DeliberatelySkipped, victim)
	defer func() { DeliberatelySkipped[victim] = true }()

	tr, err := Figure5(16)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Undescribed[victim] == 0 {
		t.Fatalf("%s not counted in Trace.Undescribed: %v", victim, tr.Undescribed)
	}
	got := hub.Metrics.CounterValue(obs.Key{
		Name: "trace_undescribed_total", Node: -1, Proto: "trace", Event: victim,
	})
	if got == 0 {
		t.Fatal("undescribed event not counted through the obs hub")
	}
}

// TestObsTraceSkippedNamesAreKnown guards the maps against typos: every
// deliberately skipped name must be a real event the protocols can emit
// (attributed in the obs axis map), and no name may be in both maps.
func TestObsTraceSkippedNamesAreKnown(t *testing.T) {
	for name := range DeliberatelySkipped {
		if descriptions[name] != "" {
			t.Errorf("%q is both described and deliberately skipped", name)
		}
		if obs.ProtoOfEvent(name) == name {
			t.Errorf("%q does not look like a protocol event name", name)
		}
	}
}
