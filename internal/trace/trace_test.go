package trace

import (
	"strings"
	"testing"
)

// eventNames extracts the raw event sequence.
func eventNames(tr Trace) []string {
	names := make([]string, len(tr.Events))
	for i, e := range tr.Events {
		names[i] = e.Name
	}
	return names
}

// indexOf returns the first position of an event name, or -1.
func indexOf(names []string, want string) int {
	for i, n := range names {
		if n == want {
			return i
		}
	}
	return -1
}

func count(names []string, want string) int {
	c := 0
	for _, n := range names {
		if n == want {
			c++
		}
	}
	return c
}

func TestFigure3TraceStructure(t *testing.T) {
	tr, err := Figure3(8) // two packets
	if err != nil {
		t.Fatal(err)
	}
	names := eventNames(tr)

	// The six steps occur in protocol order.
	order := []string{
		"finite.start", "finite.allocreq.recv", "finite.segment.alloc",
		"finite.reply.sent", "finite.reply.recv", "finite.packet.sent",
		"finite.packet.recv", "finite.segment.free", "finite.ack.sent",
		"finite.ack.recv",
	}
	last := -1
	for _, step := range order {
		idx := indexOf(names, step)
		if idx < 0 {
			t.Fatalf("missing step %q in trace:\n%s", step, tr)
		}
		if idx < last {
			t.Errorf("step %q out of order in trace:\n%s", step, tr)
		}
		last = idx
	}
	if got := count(names, "finite.packet.sent"); got != 2 {
		t.Errorf("packets sent = %d, want 2", got)
	}
	// Rendered form mentions the figure and both roles.
	s := tr.String()
	if !strings.Contains(s, "Figure 3") || !strings.Contains(s, "src") || !strings.Contains(s, "dst") {
		t.Errorf("render missing parts:\n%s", s)
	}
}

func TestFigure4TraceStructure(t *testing.T) {
	tr, err := Figure4(4)
	if err != nil {
		t.Fatal(err)
	}
	names := eventNames(tr)
	for name, want := range map[string]int{
		"stream.srcbuffer":   4,
		"stream.packet.sent": 4,
		"stream.outoforder":  2,
		"stream.inorder":     2,
		"stream.drain":       2,
		"stream.ack.sent":    4,
		"stream.ack.recv":    4,
	} {
		if got := count(names, name); got != want {
			t.Errorf("%s = %d, want %d\n%s", name, got, want, tr)
		}
	}
	// Source buffering precedes sending for the first packet.
	if indexOf(names, "stream.srcbuffer") > indexOf(names, "stream.packet.sent") {
		t.Error("buffering should precede sending")
	}
}

func TestFigure5TraceStructure(t *testing.T) {
	tr, err := Figure5(12) // three packets
	if err != nil {
		t.Fatal(err)
	}
	names := eventNames(tr)
	if got := count(names, "crfinite.packet.sent"); got != 3 {
		t.Errorf("packets = %d, want 3", got)
	}
	if count(names, "crfinite.header.recv") != 1 || count(names, "crfinite.done") != 1 {
		t.Errorf("header/done counts wrong:\n%s", tr)
	}
	// No handshake, no acknowledgement events exist in the CR trace.
	for _, name := range names {
		if strings.Contains(name, ".ack") || strings.Contains(name, "alloc") {
			t.Errorf("CR trace contains software-overhead step %q", name)
		}
	}
}

func TestFigure7TraceStructure(t *testing.T) {
	tr, err := Figure7(3)
	if err != nil {
		t.Fatal(err)
	}
	names := eventNames(tr)
	if count(names, "crstream.packet.sent") != 3 || count(names, "crstream.packet.recv") != 3 {
		t.Errorf("trace counts wrong:\n%s", tr)
	}
	for _, name := range names {
		if strings.Contains(name, ".ack") || strings.Contains(name, "buffer") {
			t.Errorf("CR stream trace contains overhead step %q", name)
		}
	}
}

func TestTraceEventsCarrySeqAndNodes(t *testing.T) {
	tr, err := Figure3(4)
	if err != nil {
		t.Fatal(err)
	}
	for i, e := range tr.Events {
		if e.Seq != i+1 {
			t.Errorf("event %d has seq %d", i, e.Seq)
		}
		if e.Node != 0 && e.Node != 1 {
			t.Errorf("event %d on node %d", i, e.Node)
		}
		if e.Desc == "" {
			t.Errorf("event %q has no description", e.Name)
		}
	}
}
