// Package trace reconstructs the paper's protocol step diagrams (Figures
// 3, 4, 5, and 7) by running the real protocols on a two-node machine and
// recording the emitted protocol events in order. The output is the
// executed message flow, not a canned drawing: changing the protocols
// changes the traces.
package trace

import (
	"fmt"
	"strings"

	"msglayer/internal/cmam"
	"msglayer/internal/cost"
	"msglayer/internal/crmsg"
	"msglayer/internal/machine"
	"msglayer/internal/network"
	"msglayer/internal/obs"
	"msglayer/internal/protocols"
)

// Event is one recorded protocol event.
type Event struct {
	Seq  int
	Node int
	Name string
	Desc string
}

// Trace is an ordered protocol event log.
type Trace struct {
	Title  string
	Events []Event
	// Undescribed counts emitted events that are neither captioned in
	// descriptions nor listed in DeliberatelySkipped — events the figure
	// silently lost. A healthy trace has none.
	Undescribed map[string]int
}

// String renders the trace as an indented step list: source events on the
// left margin, destination events indented — the visual convention of the
// paper's figures.
func (tr Trace) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", tr.Title)
	for _, e := range tr.Events {
		indent := "  src  "
		if e.Node == 1 {
			indent = "            dst  "
		}
		fmt.Fprintf(&b, "%3d %s%s\n", e.Seq, indent, e.Desc)
	}
	return b.String()
}

// descriptions maps protocol event names to figure captions. Events not
// listed are omitted from traces (backpressure retries and the like).
var descriptions = map[string]string{
	"finite.start":         "1. send buffer-allocation request",
	"finite.allocreq.recv": "2. receive allocation request",
	"finite.segment.alloc": "2. allocate communication segment",
	"finite.reply.sent":    "3. reply with segment id",
	"finite.reply.recv":    "3. receive segment id",
	"finite.packet.sent":   "4. send data packet (offset carried)",
	"finite.packet.recv":   "4. store data at carried offset",
	"finite.segment.free":  "5. deallocate communication segment",
	"finite.ack.sent":      "6. send completion acknowledgement",
	"finite.ack.recv":      "6. receive acknowledgement, release copy",

	"stream.srcbuffer":   "1. buffer message for retransmission",
	"stream.packet.sent": "2. send sequenced packet",
	"stream.inorder":     "3. in-order arrival: invoke user handler",
	"stream.outoforder":  "3. out-of-order arrival: buffer packet",
	"stream.drain":       "3. deliver buffered packet in order",
	"stream.ack.sent":    "4. acknowledge, releasing source storage",
	"stream.ack.recv":    "4. acknowledgement frees source buffer",

	"crfinite.start":       "1. inject packets (header carries size)",
	"crfinite.packet.sent": "1. inject packet",
	"crfinite.header.recv": "2. header accepted: allocate buffer, store pointer",
	"crfinite.packet.recv": "3. store packet at cursor (order guaranteed)",
	"crfinite.done":        "3. last packet invokes user handler",
	"crfinite.rejected":    "x. header rejected: path torn down, retry",

	"crstream.packet.sent": "1. inject packet",
	"crstream.packet.recv": "2. deliver packet (order and delivery in hardware)",
}

// DeliberatelySkipped lists event names the figures intentionally omit:
// contention and fault recovery paths (retries, backpressure, duplicate
// suppression) that the paper's diagrams draw as the fault-free flow, plus
// observability-only markers. An emitted event in neither this set nor
// descriptions counts as undescribed — the audit test fails on it.
var DeliberatelySkipped = map[string]bool{
	"finite.backpressure": true,
	"finite.retry.alloc":  true,
	"finite.retry.data":   true,
	"finite.reack":        true,
	"finite.rereply":      true,
	"finite.stale.reply":  true,
	"finite.stale.ack":    true,

	"stream.backpressure": true,
	"stream.timeout":      true,
	"stream.retransmit":   true,
	"stream.duplicate":    true,
	"stream.nack.sent":    true,
	"stream.nack.recv":    true,

	"cmam.stale.xfer": true,

	"crfinite.backpressure": true,
	"crfinite.complete":     true, // observability span marker, not a protocol step
}

// observer, when set, receives a trace_undescribed_total counter bump for
// every undescribed event any figure run emits. Figure machines also
// attach it as their observability hub, so runs record full node scopes
// (packet counters, queue depths, protocol trace events) and tick the
// hub's round clock.
var observer *obs.Hub

// SetObserver installs (or clears, with nil) the hub figure runs record
// into.
func SetObserver(h *obs.Hub) { observer = h }

// recorder wires event listeners on both nodes of a machine.
type recorder struct {
	events      []Event
	undescribed map[string]int
}

func (r *recorder) attach(m *machine.Machine) {
	for _, n := range m.Nodes {
		node := n
		node.EventListener = func(name string) {
			desc, ok := descriptions[name]
			if !ok {
				if !DeliberatelySkipped[name] {
					if r.undescribed == nil {
						r.undescribed = make(map[string]int)
					}
					r.undescribed[name]++
					if observer != nil {
						observer.Metrics.Counter(obs.Key{
							Name: "trace_undescribed_total", Node: -1, Proto: "trace", Event: name,
						}).Inc()
					}
				}
				return
			}
			r.events = append(r.events, Event{
				Seq:  len(r.events) + 1,
				Node: node.ID,
				Name: name,
				Desc: desc,
			})
		}
	}
}

func twoNodeCM5(reorder network.ReorderPolicy) *machine.Machine {
	net := network.MustCM5Net(network.CM5Config{Nodes: 2, Reorder: reorder})
	m := machine.MustNew(net, cost.MustPaperSchedule(4))
	m.Node(0).SetRole(cost.Source)
	m.Node(1).SetRole(cost.Destination)
	if observer != nil {
		m.AttachObserver(observer)
	}
	return m
}

func twoNodeCR() (*machine.Machine, *network.CRNet) {
	net := network.MustCRNet(network.CRConfig{Nodes: 2})
	m := machine.MustNew(net, cost.MustPaperSchedule(4))
	m.Node(0).SetRole(cost.Source)
	m.Node(1).SetRole(cost.Destination)
	if observer != nil {
		m.AttachObserver(observer)
	}
	return m, net
}

func payload(words int) []network.Word {
	data := make([]network.Word, words)
	for i := range data {
		data[i] = network.Word(i)
	}
	return data
}

// Figure3 runs a small finite-sequence CMAM transfer and returns its step
// trace.
func Figure3(words int) (Trace, error) {
	m := twoNodeCM5(nil)
	rec := &recorder{}
	rec.attach(m)
	src := protocols.NewFinite(cmam.NewEndpoint(m.Node(0)))
	dst := protocols.NewFinite(cmam.NewEndpoint(m.Node(1)))
	tr, err := src.Start(1, payload(words))
	if err != nil {
		return Trace{}, err
	}
	err = m.Run(10000,
		machine.StepFunc(func() (bool, error) { return tr.Done(), src.Pump() }),
		machine.StepFunc(func() (bool, error) { return tr.Done(), dst.Pump() }),
	)
	if err != nil {
		return Trace{}, err
	}
	return Trace{
		Title:       fmt.Sprintf("Figure 3: finite sequence, multi-packet protocol (CMAM), %d words", words),
		Events:      rec.events,
		Undescribed: rec.undescribed,
	}, nil
}

// Figure4 runs a small indefinite-sequence CMAM stream (with the paper's
// pair-swap reordering) and returns its step trace.
func Figure4(packets int) (Trace, error) {
	m := twoNodeCM5(network.PairSwap())
	rec := &recorder{}
	rec.attach(m)
	src := protocols.MustNewStream(cmam.NewEndpoint(m.Node(0)), protocols.StreamConfig{})
	dst := protocols.MustNewStream(cmam.NewEndpoint(m.Node(1)), protocols.StreamConfig{})
	conn := src.Open(1, 0)
	for i := 0; i < packets; i++ {
		if err := conn.Send(payload(4)...); err != nil {
			return Trace{}, err
		}
	}
	err := m.Run(10000,
		machine.StepFunc(func() (bool, error) { return conn.Idle(), src.Pump() }),
		machine.StepFunc(func() (bool, error) { return conn.Idle(), dst.Pump() }),
	)
	if err != nil {
		return Trace{}, err
	}
	return Trace{
		Title:       fmt.Sprintf("Figure 4: indefinite sequence, multi-packet protocol (CMAM), %d packets", packets),
		Events:      rec.events,
		Undescribed: rec.undescribed,
	}, nil
}

// Figure5 runs a small finite-sequence transfer over the CR substrate.
func Figure5(words int) (Trace, error) {
	m, net := twoNodeCR()
	rec := &recorder{}
	rec.attach(m)
	done := false
	src, err := crmsg.NewFinite(cmam.NewEndpoint(m.Node(0)), net, crmsg.FiniteConfig{})
	if err != nil {
		return Trace{}, err
	}
	dst, err := crmsg.NewFinite(cmam.NewEndpoint(m.Node(1)), net, crmsg.FiniteConfig{
		OnReceive: func(int, []network.Word) { done = true },
	})
	if err != nil {
		return Trace{}, err
	}
	tr, err := src.Start(1, payload(words))
	if err != nil {
		return Trace{}, err
	}
	err = m.Run(10000,
		machine.StepFunc(func() (bool, error) { return tr.Done() && done, src.Pump() }),
		machine.StepFunc(func() (bool, error) { return tr.Done() && done, dst.Pump() }),
	)
	if err != nil {
		return Trace{}, err
	}
	return Trace{
		Title:       fmt.Sprintf("Figure 5: finite sequence protocol with high-level network features (CR), %d words", words),
		Events:      rec.events,
		Undescribed: rec.undescribed,
	}, nil
}

// Figure7 runs a small indefinite-sequence stream over the CR substrate.
func Figure7(packets int) (Trace, error) {
	m, _ := twoNodeCR()
	rec := &recorder{}
	rec.attach(m)
	delivered := 0
	src := crmsg.MustNewStream(cmam.NewEndpoint(m.Node(0)), crmsg.StreamConfig{})
	dst := crmsg.MustNewStream(cmam.NewEndpoint(m.Node(1)), crmsg.StreamConfig{
		OnDeliver: func(int, uint8, []network.Word) { delivered++ },
	})
	conn := src.Open(1, 0)
	for i := 0; i < packets; i++ {
		if err := conn.Send(payload(4)...); err != nil {
			return Trace{}, err
		}
	}
	err := m.Run(10000,
		machine.StepFunc(func() (bool, error) { return delivered == packets, src.Pump() }),
		machine.StepFunc(func() (bool, error) { return delivered == packets, dst.Pump() }),
	)
	if err != nil {
		return Trace{}, err
	}
	return Trace{
		Title:       fmt.Sprintf("Figure 7: indefinite sequence protocol with high-level network features (CR), %d packets", packets),
		Events:      rec.events,
		Undescribed: rec.undescribed,
	}, nil
}
