// Package ctrlnet simulates a CM-5-style control network: a combining tree
// separate from the data network that performs reductions, barriers, and
// broadcasts in hardware. The real CM-5 pairs its data network (the paper's
// subject) with exactly such a network, and it is the same design thesis
// the paper advocates — moving a communication service from the messaging
// layer into the network — applied to collective operations: a software
// all-reduce over active messages costs two Table 1 round trips per
// non-root node, while the control network combines contributions in the
// tree and hands every node the result for a few device accesses.
//
// The model is cycle-stepped like the flit simulator: contributions climb
// the tree one level per cycle, combine at internal nodes, and the result
// descends one level per cycle, so a full operation over N nodes takes
// 2*ceil(log_fanout(N)) cycles after the last contribution.
package ctrlnet

import (
	"errors"
	"fmt"

	"msglayer/internal/obs"
)

// Op is a combining operation supported by the tree hardware.
type Op uint8

// Combining operations of the CM-5 control network.
const (
	OpSum Op = iota
	OpMax
	OpAnd
	OpOr
	OpXor
)

// String names the op.
func (o Op) String() string {
	switch o {
	case OpSum:
		return "sum"
	case OpMax:
		return "max"
	case OpAnd:
		return "and"
	case OpOr:
		return "or"
	case OpXor:
		return "xor"
	default:
		return fmt.Sprintf("Op(%d)", uint8(o))
	}
}

func (o Op) combine(a, b uint32) uint32 {
	switch o {
	case OpSum:
		return a + b
	case OpMax:
		if a > b {
			return a
		}
		return b
	case OpAnd:
		return a & b
	case OpOr:
		return a | b
	case OpXor:
		return a ^ b
	default:
		return 0
	}
}

// Errors reported by the control network.
var (
	ErrOpMismatch   = errors.New("ctrlnet: nodes contributed different operations to one round")
	ErrBusy         = errors.New("ctrlnet: node already contributed to the current round")
	ErrRoundOpen    = errors.New("ctrlnet: previous result not yet consumed")
	errBadNode      = errors.New("ctrlnet: node out of range")
	errBadArguments = errors.New("ctrlnet: invalid configuration")
)

type roundState uint8

const (
	roundGathering  roundState = iota // waiting for contributions
	roundClimbing                     // partial results moving up the tree
	roundDescending                   // result moving down the tree
	roundDone                         // result available at the leaves
)

// Net is the control network.
type Net struct {
	nodes  int
	fanout int
	depth  int // tree levels above the leaves

	state       roundState
	op          Op
	contributed []bool
	pending     int // contributions still missing
	consumed    []bool
	remaining   int // results not yet read
	value       uint32
	phase       int // levels traversed in the current direction

	scan        *scanState
	scanReadyAt uint64

	cycle      uint64
	operations uint64 // completed combine rounds

	obs     *obs.CtrlScope
	onCycle func(cycle uint64)
}

// New builds a control network over the given number of nodes with the
// given tree fanout (the CM-5 used fanout 4).
func New(nodes, fanout int) (*Net, error) {
	if nodes < 1 || fanout < 2 {
		return nil, fmt.Errorf("%w: nodes=%d fanout=%d", errBadArguments, nodes, fanout)
	}
	depth := 0
	for span := 1; span < nodes; span *= fanout {
		depth++
	}
	return &Net{
		nodes:       nodes,
		fanout:      fanout,
		depth:       depth,
		contributed: make([]bool, nodes),
		consumed:    make([]bool, nodes),
		pending:     nodes,
		remaining:   nodes,
	}, nil
}

// MustNew is New that panics on invalid arguments.
func MustNew(nodes, fanout int) *Net {
	n, err := New(nodes, fanout)
	if err != nil {
		panic(err)
	}
	return n
}

// SetObserver installs (or clears, with nil) an observability scope that
// counts combines, scans, busy rejections, and hardware cycles.
func (n *Net) SetObserver(s *obs.CtrlScope) { n.obs = s }

// SetCycleListener installs (or clears, with nil) a callback fired with
// the new cycle number after every simulated cycle the clock advances.
// Timeline samplers hang off this hook; see internal/obs/timeline. With a
// listener attached Tick steps the clock cycle by cycle so that linear
// accounting (ctrlnet_cycles_total) and round completions land in exactly
// the windows a Tick(1) loop would put them in; without one, Tick keeps
// its O(1) batch jumps.
func (n *Net) SetCycleListener(fn func(cycle uint64)) { n.onCycle = fn }

// stepSegment advances the clock through one mutation-free stretch of
// steps cycles. Observed runs count each hardware tick and fire the cycle
// listener after every cycle except the last: the caller applies whatever
// state change lands on the final cycle first, then calls noteCycle, so a
// listener sees exactly what a cycle-by-cycle Tick loop would publish.
func (n *Net) stepSegment(steps int) {
	if n.onCycle == nil {
		n.cycle += uint64(steps)
		return
	}
	for i := 0; i < steps; i++ {
		n.obs.Ticks(1)
		n.cycle++
		if i < steps-1 {
			n.onCycle(n.cycle)
		}
	}
}

// noteCycle fires the cycle listener for the current cycle, closing out a
// stepSegment once the cycle's state changes have been applied.
func (n *Net) noteCycle() {
	if n.onCycle != nil {
		n.onCycle(n.cycle)
	}
}

// Nodes returns the number of attached nodes.
func (n *Net) Nodes() int { return n.nodes }

// Depth returns the tree height; a combine costs 2*Depth cycles of
// propagation.
func (n *Net) Depth() int { return n.depth }

// Cycle returns the current simulated cycle.
func (n *Net) Cycle() uint64 { return n.cycle }

// Operations returns the number of completed combine rounds.
func (n *Net) Operations() uint64 { return n.operations }

// Contribute enters a node's value into the current combine round. All
// nodes must use the same operation; the round begins combining once every
// node has contributed. A node may not contribute twice, and a new round
// cannot start until every node consumed the previous result — the CM-5
// control network is similarly a single shared resource.
func (n *Net) Contribute(node int, op Op, value uint32) error {
	if node < 0 || node >= n.nodes {
		return fmt.Errorf("%w: %d", errBadNode, node)
	}
	if n.scan != nil {
		n.obs.Busy()
		return ErrBusy // a scan holds the tree
	}
	switch n.state {
	case roundDone:
		return ErrRoundOpen
	case roundClimbing, roundDescending:
		n.obs.Busy()
		return ErrBusy
	}
	if n.contributed[node] {
		n.obs.Busy()
		return ErrBusy
	}
	if n.pending == n.nodes {
		// First contribution fixes the round's operation.
		n.op = op
		n.value = value
	} else {
		if op != n.op {
			return ErrOpMismatch
		}
		n.value = n.op.combine(n.value, value)
	}
	n.contributed[node] = true
	n.pending--
	if n.pending == 0 {
		if n.depth == 0 {
			// A single-leaf tree combines at the leaf itself.
			n.state = roundDone
			n.operations++
			n.obs.CombineDone()
		} else {
			n.state = roundClimbing
			n.phase = 0
		}
	}
	return nil
}

// Tick advances the combining hardware. The tree's per-cycle work is a
// pure function of the round state, so the whole remaining climb or descent
// advances in one jump: a Tick of any length costs O(1), the same
// event-driven treatment the flit engine's idle fast-forward applies.
// Observable behavior is identical to ticking cycle by cycle — the round
// completes (and the observer fires) at exactly the same cycle boundary.
func (n *Net) Tick(cycles int) {
	if n.onCycle == nil {
		n.obs.Ticks(cycles)
	}
	for cycles > 0 {
		switch n.state {
		case roundClimbing:
			steps := n.depth - n.phase
			if steps > cycles {
				steps = cycles
			}
			n.stepSegment(steps)
			cycles -= steps
			n.phase += steps
			if n.phase >= n.depth {
				n.state = roundDescending
				n.phase = 0
			}
			n.noteCycle()
		case roundDescending:
			steps := n.depth - n.phase
			if steps > cycles {
				steps = cycles
			}
			n.stepSegment(steps)
			cycles -= steps
			n.phase += steps
			if n.phase >= n.depth {
				n.state = roundDone
				n.operations++
				n.obs.CombineDone()
			}
			n.noteCycle()
		default:
			// Gathering or done: the tree is idle; the remaining cycles
			// are a single clock jump. Scans time out against n.cycle
			// (scanReadyAt), which this advances the same way.
			n.stepSegment(cycles)
			n.noteCycle()
			return
		}
	}
}

// Result reads the combine result at a node. It reports false while the
// round is still propagating. Each node reads the result exactly once; when
// every node has read it, the network is ready for the next round.
func (n *Net) Result(node int) (uint32, bool) {
	if node < 0 || node >= n.nodes || n.state != roundDone || n.consumed[node] {
		return 0, false
	}
	n.consumed[node] = true
	n.remaining--
	v := n.value
	if n.remaining == 0 {
		// Reset for the next round.
		n.state = roundGathering
		for i := range n.contributed {
			n.contributed[i] = false
			n.consumed[i] = false
		}
		n.pending = n.nodes
		n.remaining = n.nodes
	}
	return v, true
}

// Barrier is a combine with a don't-care value: Contribute with OpAnd of 1,
// result readable when everyone has arrived. Provided for readability.
func (n *Net) Barrier(node int) error { return n.Contribute(node, OpAnd, 1) }

// --- Scan (parallel prefix) -------------------------------------------

// scanState tracks one scan round; scans and combines share the tree, so
// only one of either kind is in flight at a time (enforced by reusing the
// round state machine).
type scanState struct {
	op      Op
	values  []uint32
	entered []bool
	pending int
	results []uint32
	read    []bool
	unread  int
}

// ScanContribute enters a node's value into a parallel-prefix (scan)
// operation, the second famous service of the CM-5 control network: node i
// receives op(v_0, ..., v_i) — an inclusive prefix by rank. The scan uses
// the same tree as combines and the same timing (2*Depth cycles after the
// last contribution); a combine and a scan cannot be in flight together.
func (n *Net) ScanContribute(node int, op Op, value uint32) error {
	if node < 0 || node >= n.nodes {
		return fmt.Errorf("%w: %d", errBadNode, node)
	}
	if n.scan == nil {
		switch n.state {
		case roundDone:
			return ErrRoundOpen
		case roundClimbing, roundDescending:
			n.obs.Busy()
			return ErrBusy
		}
		if n.pending != n.nodes {
			n.obs.Busy()
			return ErrBusy // a combine round is gathering
		}
		n.scan = &scanState{
			op:      op,
			values:  make([]uint32, n.nodes),
			entered: make([]bool, n.nodes),
			pending: n.nodes,
			read:    make([]bool, n.nodes),
			unread:  n.nodes,
		}
	}
	s := n.scan
	if s.results != nil {
		return ErrRoundOpen
	}
	if s.entered[node] {
		n.obs.Busy()
		return ErrBusy
	}
	if s.pending == n.nodes {
		s.op = op
	} else if op != s.op {
		return ErrOpMismatch
	}
	s.entered[node] = true
	s.values[node] = value
	s.pending--
	if s.pending == 0 {
		// The tree computes all prefixes during the up/down sweep; model
		// the result as ready after the same 2*Depth propagation.
		s.results = make([]uint32, n.nodes)
		acc := s.values[0]
		s.results[0] = acc
		for i := 1; i < n.nodes; i++ {
			acc = s.op.combine(acc, s.values[i])
			s.results[i] = acc
		}
		n.scanReadyAt = n.cycle + 2*uint64(n.depth)
	}
	return nil
}

// ScanResult reads a node's prefix result; false while propagating. Each
// node reads once; the tree frees when all have read.
func (n *Net) ScanResult(node int) (uint32, bool) {
	s := n.scan
	if s == nil || s.results == nil || node < 0 || node >= n.nodes {
		return 0, false
	}
	if n.cycle < n.scanReadyAt || s.read[node] {
		return 0, false
	}
	s.read[node] = true
	s.unread--
	v := s.results[node]
	if s.unread == 0 {
		n.scan = nil
		n.operations++
		n.obs.ScanDone()
	}
	return v, true
}

// --- Broadcast ----------------------------------------------------------

// Broadcast sends a value from one node to every node through the tree
// (descend-only: Depth cycles). It reuses the combine machinery: the root's
// contribution rides an OR-combine where every other node contributes the
// identity. Provided as the third control-network service; like combines
// and scans it holds the tree for one round.
func (n *Net) Broadcast(root int, value uint32) error {
	if root < 0 || root >= n.nodes {
		return fmt.Errorf("%w: %d", errBadNode, root)
	}
	for node := 0; node < n.nodes; node++ {
		v := uint32(0)
		if node == root {
			v = value
		}
		if err := n.Contribute(node, OpOr, v); err != nil {
			return err
		}
	}
	return nil
}
