package ctrlnet

import (
	"bytes"
	"fmt"
	"testing"

	"msglayer/internal/obs"
	"msglayer/internal/obs/timeline"
)

// runCtrlTimeline drives a fixed combine/scan/idle workload through a
// control network, ticking either in batch jumps or strictly cycle by
// cycle, and returns the rendered timeline plus the sampler.
func runCtrlTimeline(t *testing.T, nodes, fanout, interval int, stepped bool) (string, *timeline.Sampler) {
	t.Helper()
	n := MustNew(nodes, fanout)
	hub := obs.NewHub()
	n.SetObserver(hub.CtrlScope())
	s := timeline.New(hub.Metrics, timeline.Config{Interval: uint64(interval)})
	n.SetCycleListener(s.Advance)

	tick := func(cycles int) {
		if stepped {
			for i := 0; i < cycles; i++ {
				n.Tick(1)
			}
		} else {
			n.Tick(cycles)
		}
	}
	consume := func() {
		for node := 0; node < nodes; node++ {
			if _, ok := n.Result(node); !ok {
				t.Fatalf("node %d: result not ready", node)
			}
		}
	}

	// Three combine rounds separated by idle stretches, with busy
	// rejections sprinkled in while the tree is occupied.
	for round := 0; round < 3; round++ {
		for node := 0; node < nodes; node++ {
			if err := n.Contribute(node, OpSum, uint32(node+round)); err != nil {
				t.Fatalf("contribute: %v", err)
			}
		}
		tick(1)
		_ = n.Contribute(0, OpSum, 9) // busy: round in flight
		tick(2*n.Depth() - 1)
		consume()
		tick(7) // idle gap, deliberately off window alignment
	}
	tick(64) // long idle tail
	s.Flush(n.Cycle())
	var b bytes.Buffer
	if err := timeline.WriteJSON(&b, s.Snapshot()); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	return b.String(), s
}

// TestCtrlTimelineBatchSteppedEquivalence checks that the O(1) batch
// jumps in Tick publish exactly the timeline a cycle-by-cycle loop
// would: tick accounting distributes per cycle and combine completions
// land in the window of their completion cycle.
func TestCtrlTimelineBatchSteppedEquivalence(t *testing.T) {
	for _, tc := range []struct{ nodes, fanout, interval int }{
		{16, 4, 4},
		{16, 4, 5}, // windows straddle segment boundaries
		{64, 2, 3},
		{4, 4, 1},
	} {
		t.Run(fmt.Sprintf("n%d-f%d-i%d", tc.nodes, tc.fanout, tc.interval), func(t *testing.T) {
			batch, batchS := runCtrlTimeline(t, tc.nodes, tc.fanout, tc.interval, false)
			step, stepS := runCtrlTimeline(t, tc.nodes, tc.fanout, tc.interval, true)
			if batch != step {
				t.Errorf("timelines diverge:\n batch %d bytes\n stepped %d bytes", len(batch), len(step))
			}
			if err := batchS.Reconcile(); err != nil {
				t.Errorf("batch timeline does not reconcile: %v", err)
			}
			if err := stepS.Reconcile(); err != nil {
				t.Errorf("stepped timeline does not reconcile: %v", err)
			}
		})
	}
}
