package ctrlnet

import (
	"errors"
	"testing"
	"testing/quick"
)

func TestNewValidates(t *testing.T) {
	if _, err := New(0, 4); err == nil {
		t.Error("accepted zero nodes")
	}
	if _, err := New(4, 1); err == nil {
		t.Error("accepted fanout 1")
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MustNew(0, 0)
}

func TestDepth(t *testing.T) {
	for _, tc := range []struct{ nodes, fanout, depth int }{
		{1, 4, 0}, {2, 2, 1}, {4, 2, 2}, {8, 2, 3},
		{4, 4, 1}, {16, 4, 2}, {17, 4, 3}, {64, 4, 3},
	} {
		n := MustNew(tc.nodes, tc.fanout)
		if n.Depth() != tc.depth {
			t.Errorf("depth(%d,%d) = %d, want %d", tc.nodes, tc.fanout, n.Depth(), tc.depth)
		}
		if n.Nodes() != tc.nodes {
			t.Errorf("Nodes = %d", n.Nodes())
		}
	}
}

// drive contributes all values and ticks until every node reads the result.
func drive(t *testing.T, n *Net, op Op, values []uint32) []uint32 {
	t.Helper()
	for node, v := range values {
		if err := n.Contribute(node, op, v); err != nil {
			t.Fatalf("contribute %d: %v", node, err)
		}
	}
	results := make([]uint32, len(values))
	got := make([]bool, len(values))
	for cycle := 0; cycle < 1000; cycle++ {
		n.Tick(1)
		all := true
		for node := range values {
			if !got[node] {
				if v, ok := n.Result(node); ok {
					results[node] = v
					got[node] = true
				} else {
					all = false
				}
			}
		}
		if all {
			return results
		}
	}
	t.Fatal("combine never completed")
	return nil
}

func TestReduceSum(t *testing.T) {
	n := MustNew(8, 4)
	values := []uint32{1, 2, 3, 4, 5, 6, 7, 8}
	for _, r := range drive(t, n, OpSum, values) {
		if r != 36 {
			t.Fatalf("sum = %d, want 36", r)
		}
	}
	if n.Operations() != 1 {
		t.Errorf("operations = %d", n.Operations())
	}
}

func TestAllOps(t *testing.T) {
	values := []uint32{0b1100, 0b1010, 0b0110, 0b0001}
	want := map[Op]uint32{
		OpSum: 0b1100 + 0b1010 + 0b0110 + 0b0001,
		OpMax: 0b1100,
		OpAnd: 0b0000,
		OpOr:  0b1111,
		OpXor: 0b1100 ^ 0b1010 ^ 0b0110 ^ 0b0001,
	}
	for op, expect := range want {
		n := MustNew(4, 2)
		for _, r := range drive(t, n, op, values) {
			if r != expect {
				t.Errorf("%s = %d, want %d", op, r, expect)
			}
		}
	}
	if OpSum.String() != "sum" || Op(99).String() != "Op(99)" {
		t.Error("op strings wrong")
	}
	if Op(99).combine(1, 2) != 0 {
		t.Error("unknown op combine")
	}
}

func TestLatencyIsTwiceDepth(t *testing.T) {
	n := MustNew(16, 4) // depth 2
	for node := 0; node < 16; node++ {
		if err := n.Contribute(node, OpSum, 1); err != nil {
			t.Fatal(err)
		}
	}
	// Result must not be available before 2*depth cycles.
	n.Tick(2*n.Depth() - 1)
	if _, ok := n.Result(0); ok {
		t.Error("result available a cycle early")
	}
	n.Tick(1)
	if v, ok := n.Result(0); !ok || v != 16 {
		t.Errorf("result = %d, %v after 2*depth cycles", v, ok)
	}
}

func TestContributionErrors(t *testing.T) {
	n := MustNew(2, 2)
	if err := n.Contribute(5, OpSum, 1); err == nil {
		t.Error("accepted out-of-range node")
	}
	if err := n.Contribute(0, OpSum, 1); err != nil {
		t.Fatal(err)
	}
	if err := n.Contribute(0, OpSum, 1); !errors.Is(err, ErrBusy) {
		t.Errorf("double contribution = %v", err)
	}
	if err := n.Contribute(1, OpMax, 1); !errors.Is(err, ErrOpMismatch) {
		t.Errorf("mismatched op = %v", err)
	}
	if err := n.Contribute(1, OpSum, 2); err != nil {
		t.Fatal(err)
	}
	// Mid-propagation contributions are refused.
	if err := n.Contribute(0, OpSum, 1); !errors.Is(err, ErrBusy) {
		t.Errorf("mid-flight contribution = %v", err)
	}
	n.Tick(2 * n.Depth())
	// Round done but unconsumed: next round must wait.
	if err := n.Contribute(0, OpSum, 1); !errors.Is(err, ErrRoundOpen) {
		t.Errorf("contribution before consumption = %v", err)
	}
	if v, ok := n.Result(0); !ok || v != 3 {
		t.Fatalf("result = %d, %v", v, ok)
	}
	// Double read is refused.
	if _, ok := n.Result(0); ok {
		t.Error("double read succeeded")
	}
	if _, ok := n.Result(9); ok {
		t.Error("out-of-range read succeeded")
	}
	if v, ok := n.Result(1); !ok || v != 3 {
		t.Fatalf("result at node 1 = %d, %v", v, ok)
	}
}

func TestBackToBackRounds(t *testing.T) {
	n := MustNew(4, 2)
	for round := uint32(1); round <= 5; round++ {
		values := []uint32{round, round, round, round}
		for _, r := range drive(t, n, OpSum, values) {
			if r != 4*round {
				t.Fatalf("round %d = %d", round, r)
			}
		}
	}
	if n.Operations() != 5 {
		t.Errorf("operations = %d", n.Operations())
	}
}

func TestBarrierHelper(t *testing.T) {
	n := MustNew(3, 2)
	for node := 0; node < 3; node++ {
		if err := n.Barrier(node); err != nil {
			t.Fatal(err)
		}
	}
	n.Tick(2 * n.Depth())
	for node := 0; node < 3; node++ {
		if _, ok := n.Result(node); !ok {
			t.Fatalf("barrier not released at node %d", node)
		}
	}
}

func TestSingleNodeNetwork(t *testing.T) {
	n := MustNew(1, 4) // depth 0: combines complete immediately after Tick
	if err := n.Contribute(0, OpSum, 7); err != nil {
		t.Fatal(err)
	}
	n.Tick(1)
	if v, ok := n.Result(0); !ok || v != 7 {
		t.Errorf("result = %d, %v", v, ok)
	}
}

// Property: for random value sets, the tree's sum/max/xor agree with the
// sequential fold, at any fanout.
func TestCombineProperty(t *testing.T) {
	prop := func(raw []uint32, fanoutRaw uint8, opRaw uint8) bool {
		if len(raw) == 0 {
			return true
		}
		if len(raw) > 64 {
			raw = raw[:64]
		}
		op := Op(opRaw % 5)
		fanout := int(fanoutRaw%3) + 2
		n := MustNew(len(raw), fanout)
		for node, v := range raw {
			if err := n.Contribute(node, op, v); err != nil {
				return false
			}
		}
		n.Tick(2*n.Depth() + 1)
		want := raw[0]
		for _, v := range raw[1:] {
			want = op.combine(want, v)
		}
		for node := range raw {
			v, ok := n.Result(node)
			if !ok || v != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestScanPrefixSum(t *testing.T) {
	n := MustNew(5, 2)
	values := []uint32{1, 2, 3, 4, 5}
	for node, v := range values {
		if err := n.ScanContribute(node, OpSum, v); err != nil {
			t.Fatal(err)
		}
	}
	// Not ready before 2*depth cycles.
	if _, ok := n.ScanResult(0); ok {
		t.Error("scan result available before propagation")
	}
	n.Tick(2 * n.Depth())
	want := []uint32{1, 3, 6, 10, 15}
	for node := range values {
		v, ok := n.ScanResult(node)
		if !ok || v != want[node] {
			t.Errorf("scan[%d] = %d, %v; want %d", node, v, ok, want[node])
		}
	}
	// The tree frees after all reads: a combine may follow.
	if err := n.Contribute(0, OpSum, 1); err != nil {
		t.Errorf("combine after scan = %v", err)
	}
}

func TestScanMaxAndErrors(t *testing.T) {
	n := MustNew(3, 2)
	if err := n.ScanContribute(9, OpMax, 1); err == nil {
		t.Error("accepted out-of-range node")
	}
	if err := n.ScanContribute(0, OpMax, 5); err != nil {
		t.Fatal(err)
	}
	// A combine cannot start while the scan gathers.
	if err := n.Contribute(1, OpSum, 1); !errors.Is(err, ErrBusy) {
		t.Errorf("combine during scan = %v", err)
	}
	if err := n.ScanContribute(0, OpMax, 5); !errors.Is(err, ErrBusy) {
		t.Errorf("double scan contribution = %v", err)
	}
	if err := n.ScanContribute(1, OpSum, 1); !errors.Is(err, ErrOpMismatch) {
		t.Errorf("mismatched scan op = %v", err)
	}
	if err := n.ScanContribute(1, OpMax, 2); err != nil {
		t.Fatal(err)
	}
	if err := n.ScanContribute(2, OpMax, 1); err != nil {
		t.Fatal(err)
	}
	// Contributions after the round fills are refused until consumed.
	if err := n.ScanContribute(0, OpMax, 7); !errors.Is(err, ErrRoundOpen) {
		t.Errorf("scan contribution to full round = %v", err)
	}
	n.Tick(2 * n.Depth())
	want := []uint32{5, 5, 5}
	for node := range want {
		v, ok := n.ScanResult(node)
		if !ok || v != want[node] {
			t.Errorf("scan max[%d] = %d, %v", node, v, ok)
		}
	}
	// Double read refused.
	if _, ok := n.ScanResult(0); ok {
		t.Error("double scan read")
	}
}

func TestScanWhileCombineGathering(t *testing.T) {
	n := MustNew(2, 2)
	if err := n.Contribute(0, OpSum, 1); err != nil {
		t.Fatal(err)
	}
	if err := n.ScanContribute(1, OpSum, 1); !errors.Is(err, ErrBusy) {
		t.Errorf("scan during combine = %v", err)
	}
}

// Property: scans compute exact inclusive prefixes for any values.
func TestScanProperty(t *testing.T) {
	prop := func(raw []uint32, opRaw uint8) bool {
		if len(raw) == 0 {
			return true
		}
		if len(raw) > 48 {
			raw = raw[:48]
		}
		op := Op(opRaw % 5)
		n := MustNew(len(raw), 4)
		for node, v := range raw {
			if err := n.ScanContribute(node, op, v); err != nil {
				return false
			}
		}
		n.Tick(2*n.Depth() + 1)
		acc := raw[0]
		for node, v := range raw {
			if node > 0 {
				acc = op.combine(acc, v)
			}
			got, ok := n.ScanResult(node)
			if !ok || got != acc {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

func TestBroadcast(t *testing.T) {
	n := MustNew(6, 2)
	if err := n.Broadcast(2, 0xbeef); err != nil {
		t.Fatal(err)
	}
	n.Tick(2 * n.Depth())
	for node := 0; node < 6; node++ {
		v, ok := n.Result(node)
		if !ok || v != 0xbeef {
			t.Errorf("node %d broadcast = %#x, %v", node, v, ok)
		}
	}
	if err := n.Broadcast(9, 1); err == nil {
		t.Error("accepted out-of-range root")
	}
}

// TestTickBatchingEquivalence holds the O(1) batched Tick to the per-cycle
// semantics it replaced: for every split of a round's propagation into
// chunks, the cycle counter, operation counter, and the cycle at which the
// result becomes readable must be identical to ticking one cycle at a time.
func TestTickBatchingEquivalence(t *testing.T) {
	run := func(nodes, fanout int, chunks []int) (cycle, ops, doneAt uint64) {
		n := MustNew(nodes, fanout)
		for node := 0; node < nodes; node++ {
			if err := n.Contribute(node, OpSum, uint32(node)); err != nil {
				t.Fatal(err)
			}
		}
		doneAt = ^uint64(0)
		for _, c := range chunks {
			n.Tick(c)
			if _, ok := n.Result(0); ok {
				if doneAt == ^uint64(0) {
					doneAt = n.Cycle()
				}
				// Put the result back out of reach for the remaining
				// reads so the round state does not reset mid-test.
				for node := 1; node < nodes; node++ {
					if _, ok := n.Result(node); !ok {
						t.Fatalf("node %d could not read after node 0", node)
					}
				}
			}
		}
		return n.Cycle(), n.Operations(), doneAt
	}
	for _, tc := range []struct {
		nodes, fanout int
		chunks        []int
	}{
		{16, 4, []int{1, 1, 1, 1, 1, 1, 1, 1}},
		{16, 4, []int{8}},
		{16, 4, []int{3, 5}},
		{16, 4, []int{1, 1000}},
		{64, 2, []int{2, 2, 2, 2, 2, 2, 500}},
		{64, 2, []int{512}},
		{1, 4, []int{5}},
	} {
		perCycle := make([]int, 0)
		total := 0
		for _, c := range tc.chunks {
			total += c
		}
		for i := 0; i < total; i++ {
			perCycle = append(perCycle, 1)
		}
		refCycle, refOps, refDone := run(tc.nodes, tc.fanout, perCycle)
		gotCycle, gotOps, gotDone := run(tc.nodes, tc.fanout, tc.chunks)
		if gotCycle != refCycle || gotOps != refOps {
			t.Errorf("nodes=%d fanout=%d chunks=%v: cycle/ops=(%d,%d), per-cycle ref=(%d,%d)",
				tc.nodes, tc.fanout, tc.chunks, gotCycle, gotOps, refCycle, refOps)
		}
		// Chunked ticking can only observe readiness at chunk boundaries,
		// so compare against the reference's completion cycle rounded up
		// to the next boundary the chunked run actually sampled.
		if gotDone < refDone {
			t.Errorf("nodes=%d fanout=%d chunks=%v: result readable at %d, before per-cycle ref %d",
				tc.nodes, tc.fanout, tc.chunks, gotDone, refDone)
		}
	}
}

// TestTickBatchingScanTiming pins scan readiness against the batched clock:
// a scan is readable exactly at scanReadyAt whether the wait is ticked cycle
// by cycle or jumped in one call.
func TestTickBatchingScanTiming(t *testing.T) {
	for _, jump := range []bool{false, true} {
		n := MustNew(16, 4)
		for node := 0; node < 16; node++ {
			if err := n.ScanContribute(node, OpSum, 1); err != nil {
				t.Fatal(err)
			}
		}
		want := 2 * n.Depth()
		if jump {
			n.Tick(want - 1)
		} else {
			for i := 0; i < want-1; i++ {
				n.Tick(1)
			}
		}
		if _, ok := n.ScanResult(0); ok {
			t.Fatalf("jump=%v: scan readable one cycle early", jump)
		}
		n.Tick(1)
		if v, ok := n.ScanResult(5); !ok || v != 6 {
			t.Fatalf("jump=%v: scan result = (%d,%v), want (6,true)", jump, v, ok)
		}
	}
}
