// Package prof writes pprof CPU and allocation profiles for the command-line
// tools, with the same partial-file-safe semantics as the observability dump
// writers: a profile that fails to start, render, or close is removed rather
// than left behind truncated, and the error says which file was being
// written.
package prof

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// StartCPU begins writing a CPU profile to path and returns a stop function
// that finalizes it. Call stop exactly once, after the workload of interest;
// a stop error means the profile could not be written and the file has been
// removed.
func StartCPU(path string) (stop func() error, err error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("writing %s: %w", path, err)
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		f.Close()
		os.Remove(path)
		return nil, fmt.Errorf("writing %s: %w", path, err)
	}
	return func() error {
		pprof.StopCPUProfile()
		if err := f.Close(); err != nil {
			os.Remove(path)
			return fmt.Errorf("writing %s: %w", path, err)
		}
		return nil
	}, nil
}

// WriteHeap dumps the allocation profile (pprof "allocs", which includes the
// live heap) to path. It runs a garbage collection first so the in-use
// numbers reflect retained memory, matching `go test -memprofile`.
func WriteHeap(path string) error {
	runtime.GC()
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("writing %s: %w", path, err)
	}
	err = pprof.Lookup("allocs").WriteTo(f, 0)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(path)
		return fmt.Errorf("writing %s: %w", path, err)
	}
	return nil
}
