package prof

import (
	"os"
	"path/filepath"
	"testing"
)

func TestStartCPUWritesProfile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cpu.out")
	stop, err := StartCPU(path)
	if err != nil {
		t.Fatal(err)
	}
	// Burn a little CPU so the profile has something to sample.
	x := 0
	for i := 0; i < 1_000_000; i++ {
		x += i * i
	}
	_ = x
	if err := stop(); err != nil {
		t.Fatal(err)
	}
	info, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if info.Size() == 0 {
		t.Error("CPU profile is empty")
	}
}

func TestStartCPUUnwritablePathFails(t *testing.T) {
	if _, err := StartCPU(filepath.Join(t.TempDir(), "no", "such", "dir", "cpu.out")); err == nil {
		t.Fatal("expected an error for an unwritable path")
	}
}

func TestWriteHeapWritesProfile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "mem.out")
	if err := WriteHeap(path); err != nil {
		t.Fatal(err)
	}
	info, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if info.Size() == 0 {
		t.Error("heap profile is empty")
	}
}

func TestWriteHeapUnwritablePathFails(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "no", "such", "dir", "mem.out")
	if err := WriteHeap(path); err == nil {
		t.Fatal("expected an error for an unwritable path")
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Error("partial heap profile left behind")
	}
}
