package protocols

import (
	"errors"
	"fmt"

	"msglayer/internal/cmam"
	"msglayer/internal/cost"
	"msglayer/internal/network"
)

// Stream head-word packing: an 8-bit channel and a 24-bit sequence number.
const (
	streamSeqBits = 24
	streamSeqMask = 1<<streamSeqBits - 1
	maxStreamSeq  = streamSeqMask
)

// ErrWindowFull reports a send refused because the connection already has
// MaxUnacked packets awaiting acknowledgement; retry after pumping.
var ErrWindowFull = errors.New("protocols: stream send window full")

// StreamConfig tunes the indefinite-sequence protocol.
type StreamConfig struct {
	// MaxUnacked bounds the packets a connection may have in flight
	// awaiting acknowledgement — the sender-side half of end-to-end flow
	// control, limiting how much source buffering and receiver reorder
	// space a channel can consume. Zero means unbounded (the paper's
	// Table 2 configuration).
	MaxUnacked int
	// AckGroup is the group-acknowledgement size g: the receiver
	// acknowledges after every g in-order deliveries. The paper's Table 2
	// uses g = 1 (each packet has its own acknowledgement) and Section
	// 3.2 discusses amortizing with larger g at the cost of holding
	// source buffers longer. Defaults to 1.
	AckGroup int
	// NackThreshold is the number of distinct buffered (gap-blocked)
	// packets that convinces the receiver a packet was lost rather than
	// merely overtaken, triggering a negative acknowledgement. Benign
	// adaptive-routing reorder keeps buffers shallow; loss makes them
	// grow. Defaults to 4; a negative value disables NACKs.
	NackThreshold int
	// RetransmitAfter is the number of consecutive Pump calls without
	// acknowledgement progress after which the source retransmits its
	// oldest unacknowledged packet — the timeout backstop for lost
	// packets and lost NACKs. Zero disables timeouts.
	RetransmitAfter int
	// OnDeliver is the user handler invoked, in transmission order, for
	// every delivered packet. It runs at user level and is not charged.
	OnDeliver func(src int, ch uint8, data []network.Word)
}

// Stream is the per-node service implementing the indefinite-sequence
// multi-packet protocol of the paper's Figure 4: the source buffers each
// packet (supporting retransmission) and sends it with a sequence number;
// the receiver buffers out-of-order arrivals, delivers in order, and
// acknowledges so source buffers can be released.
type Stream struct {
	ep  *cmam.Endpoint
	cfg StreamConfig

	out map[connKey]*Conn
	in  map[connKey]*inConn
	err error
}

type connKey struct {
	peer int
	ch   uint8
}

// Conn is the source side of one ordered channel.
type Conn struct {
	s   *Stream
	dst int
	ch  uint8

	nextSeq  uint32
	unacked  map[uint32][]network.Word
	oldest   uint32   // lowest unacknowledged sequence
	sendq    []uint32 // assigned but not yet injected (backpressure)
	idlePump int      // Pump calls without ack progress
	closed   bool

	// seqMsg maps in-flight sequence numbers to their observability message
	// identities, so deferred injections and retransmissions attribute to
	// the Send that buffered them. Allocated lazily: nil while untraced.
	seqMsg map[uint32]uint64
}

// msgOf returns the message identity assigned to a sequence number, 0 when
// untraced.
func (c *Conn) msgOf(seq uint32) uint64 {
	if c.seqMsg == nil {
		return 0
	}
	return c.seqMsg[seq]
}

// inConn is the receiver side of one ordered channel.
type inConn struct {
	expected  uint32
	buffered  map[uint32][]network.Word
	delivered uint64
	sinceAck  int
	nackedFor uint32
	hasNacked bool
}

// NewStream installs the indefinite-sequence protocol on an endpoint.
func NewStream(ep *cmam.Endpoint, cfg StreamConfig) (*Stream, error) {
	if cfg.AckGroup <= 0 {
		cfg.AckGroup = 1
	}
	if cfg.NackThreshold == 0 {
		cfg.NackThreshold = 4
	}
	s := &Stream{
		ep:  ep,
		cfg: cfg,
		out: make(map[connKey]*Conn),
		in:  make(map[connKey]*inConn),
	}
	if err := ep.RegisterTag(TagStream, s.sink); err != nil {
		return nil, err
	}
	ep.Register(HStreamAck, s.handleAck)
	ep.Register(HStreamNack, s.handleNack)
	return s, nil
}

// MustNewStream is NewStream that panics on error; registration can only
// fail on a reserved tag, which is a programming error.
func MustNewStream(ep *cmam.Endpoint, cfg StreamConfig) *Stream {
	s, err := NewStream(ep, cfg)
	if err != nil {
		panic(err)
	}
	return s
}

func (s *Stream) sched() *cost.Schedule { return s.ep.Node().Sched }

// Open returns the source side of channel ch toward dst, creating it on
// first use.
func (s *Stream) Open(dst int, ch uint8) *Conn {
	key := connKey{dst, ch}
	if c, ok := s.out[key]; ok {
		return c
	}
	c := &Conn{s: s, dst: dst, ch: ch, unacked: make(map[uint32][]network.Word)}
	s.out[key] = c
	return c
}

// Send transmits one packet's worth of data (at most the hardware packet
// payload) on the channel. The data is copied into the source's
// retransmission buffer before injection, per Figure 4 step 1.
func (c *Conn) Send(data ...network.Word) error {
	if c.closed {
		return errors.New("protocols: send on closed stream")
	}
	if len(data) == 0 || len(data) > c.s.sched().PacketWords {
		return fmt.Errorf("protocols: stream send of %d words (packet payload is %d)",
			len(data), c.s.sched().PacketWords)
	}
	if c.nextSeq > maxStreamSeq {
		return fmt.Errorf("protocols: stream exhausted its %d-bit sequence space", streamSeqBits)
	}
	if max := c.s.cfg.MaxUnacked; max > 0 && len(c.unacked) >= max {
		return ErrWindowFull
	}
	node := c.s.ep.Node()
	seq := c.nextSeq
	c.nextSeq++

	// Each sequenced packet is one causal message: the buffering below, the
	// (possibly deferred) injection, any retransmission, and the eventual
	// acknowledgement all attribute to it.
	prevMsg := node.Obs.CurrentMsg()
	if msg := node.Obs.NewMsg(); msg != 0 {
		if c.seqMsg == nil {
			c.seqMsg = make(map[uint32]uint64)
		}
		c.seqMsg[seq] = msg
	}
	defer node.Obs.SwapMsg(prevMsg)

	// Step 1: buffer the message to support retransmission (fault
	// tolerance), plus sequence-number bookkeeping (in-order delivery)
	// and the base injection cost.
	node.Charge(cost.FaultTol, c.s.sched().SourceBufferPacket)
	node.Charge(cost.InOrder, c.s.sched().SeqPerPacket)
	node.Charge(cost.Base, c.s.sched().StreamSendPacket)
	node.Event("stream.srcbuffer")
	buf := make([]network.Word, len(data))
	copy(buf, data)
	c.unacked[seq] = buf

	c.sendq = append(c.sendq, seq)
	return c.flush()
}

// flush injects queued packets in order until backpressure.
func (c *Conn) flush() error {
	node := c.s.ep.Node()
	for len(c.sendq) > 0 {
		seq := c.sendq[0]
		data, ok := c.unacked[seq]
		if !ok {
			// Acked while queued (a retransmission raced ahead); skip.
			c.sendq = c.sendq[1:]
			continue
		}
		prev := node.Obs.SwapMsg(c.msgOf(seq))
		err := c.inject(seq, data)
		if errors.Is(err, network.ErrBackpressure) {
			node.Charge(cost.Base, retryProbe)
			node.Event("stream.backpressure")
			node.Obs.SwapMsg(prev)
			node.Obs.SendQueueDepth(len(c.sendq))
			return nil
		}
		if err != nil {
			node.Obs.SwapMsg(prev)
			return err
		}
		node.Event("stream.packet.sent")
		node.Obs.SwapMsg(prev)
		c.sendq = c.sendq[1:]
	}
	node.Obs.SendQueueDepth(0)
	return nil
}

// inject performs the raw send of one sequenced packet (step 2).
func (c *Conn) inject(seq uint32, data []network.Word) error {
	head := network.Word(c.ch)<<streamSeqBits | network.Word(seq&streamSeqMask)
	return c.s.ep.Send(c.dst, TagStream, head, data, cost.Base, nil)
}

// Unacked returns the number of packets awaiting acknowledgement.
func (c *Conn) Unacked() int { return len(c.unacked) }

// Idle reports whether everything sent has been injected and acknowledged.
func (c *Conn) Idle() bool { return len(c.unacked) == 0 && len(c.sendq) == 0 }

// Close marks the channel closed for further sends.
func (c *Conn) Close() { c.closed = true }

// Pump polls the endpoint, retries backpressured injections, and applies
// the retransmission timeout. Call repeatedly until connections are Idle.
func (s *Stream) Pump() error {
	if _, err := s.ep.Poll(0); err != nil {
		return err
	}
	if s.err != nil {
		err := s.err
		s.err = nil
		return err
	}
	for _, c := range s.out {
		if err := c.flush(); err != nil {
			return err
		}
		if len(c.unacked) == 0 {
			c.idlePump = 0
			continue
		}
		c.idlePump++
		if s.cfg.RetransmitAfter > 0 && c.idlePump >= s.cfg.RetransmitAfter {
			c.idlePump = 0
			if err := c.retransmit(c.oldest); err != nil {
				return err
			}
			s.ep.Node().Event("stream.timeout")
		}
	}
	return nil
}

// Step adapts the stream service to machine.Stepper semantics: done when
// every connection is idle.
func (s *Stream) Step() (bool, error) {
	if err := s.Pump(); err != nil {
		return false, err
	}
	for _, c := range s.out {
		if !c.Idle() {
			return false, nil
		}
	}
	return true, nil
}

// retransmit resends one buffered packet, charging fault tolerance. The
// event accompanies the charge (not the injection) so accounting can be
// reconstructed from event counts exactly.
func (c *Conn) retransmit(seq uint32) error {
	data, ok := c.unacked[seq]
	if !ok {
		return nil // already acknowledged
	}
	node := c.s.ep.Node()
	prev := node.Obs.SwapMsg(c.msgOf(seq))
	defer node.Obs.SwapMsg(prev)
	node.Charge(cost.FaultTol, c.s.sched().Retransmit)
	node.Event("stream.retransmit")
	err := c.inject(seq, data)
	if errors.Is(err, network.ErrBackpressure) {
		node.Charge(cost.Base, retryProbe)
		node.Event("stream.backpressure")
		return nil // the timeout will fire again
	}
	return err
}

// sink receives stream data packets (steps 3 and 4 at the receiver).
func (s *Stream) sink(src int, head network.Word, data []network.Word) error {
	node := s.ep.Node()
	ch := uint8(head >> streamSeqBits)
	seq := uint32(head & streamSeqMask)
	key := connKey{src, ch}
	in, ok := s.in[key]
	if !ok {
		in = &inConn{buffered: make(map[uint32][]network.Word)}
		s.in[key] = in
		// Per-channel reception-path setup.
		node.Charge(cost.Base, s.sched().StreamRecvFixed)
	}
	node.Charge(cost.Base, s.sched().StreamRecvPacket)

	switch {
	case seq == in.expected:
		node.Charge(cost.InOrder, s.sched().InOrderArrival)
		node.Event("stream.inorder")
		if err := s.deliver(src, ch, in, data); err != nil {
			return err
		}
		// Drain any buffered packets that are now in order.
		for {
			next, ok := in.buffered[in.expected]
			if !ok {
				break
			}
			delete(in.buffered, in.expected)
			node.Charge(cost.InOrder, s.sched().DrainBuffered)
			node.Event("stream.drain")
			if err := s.deliver(src, ch, in, next); err != nil {
				return err
			}
		}
	case seq < in.expected:
		// The sender is retransmitting something we already delivered —
		// our acknowledgement must have been lost. Re-acknowledge
		// cumulatively so the sender's buffers drain.
		node.Event("stream.duplicate")
		if in.expected > 0 {
			if err := s.ep.SendAM(src, HStreamAck, cost.FaultTol, s.sched().StreamAckSend,
				network.Word(ch), network.Word(in.expected-1)); err != nil {
				if errors.Is(err, network.ErrBackpressure) {
					node.Event("stream.backpressure")
					return nil
				}
				return err
			}
			in.sinceAck = 0
			node.Event("stream.ack.sent")
		}
	default:
		if _, dup := in.buffered[seq]; dup {
			node.Event("stream.duplicate")
			break
		}
		node.Charge(cost.InOrder, s.sched().OutOfOrderArrival)
		node.Event("stream.outoforder")
		buf := make([]network.Word, len(data))
		copy(buf, data)
		in.buffered[seq] = buf
	}

	// Loss suspicion: a growing reorder buffer means the expected packet
	// is not merely overtaken but gone.
	if s.cfg.NackThreshold > 0 && len(in.buffered) >= s.cfg.NackThreshold &&
		(!in.hasNacked || in.nackedFor != in.expected) {
		in.hasNacked = true
		in.nackedFor = in.expected
		if err := s.ep.SendAM(src, HStreamNack, cost.FaultTol, s.sched().StreamAckSend,
			network.Word(ch), network.Word(in.expected)); err != nil {
			if errors.Is(err, network.ErrBackpressure) {
				in.hasNacked = false // try again on a later packet
				return nil
			}
			return err
		}
		node.Event("stream.nack.sent")
	}
	return nil
}

// deliver hands one packet to the user in order and applies the
// acknowledgement policy (step 4: each packet, or each group, is
// acknowledged so source storage can be released).
func (s *Stream) deliver(src int, ch uint8, in *inConn, data []network.Word) error {
	node := s.ep.Node()
	if s.cfg.OnDeliver != nil {
		s.cfg.OnDeliver(src, ch, data)
	}
	in.expected++
	in.delivered++
	in.sinceAck++
	if in.sinceAck >= s.cfg.AckGroup {
		in.sinceAck = 0
		if err := s.ep.SendAM(src, HStreamAck, cost.FaultTol, s.sched().StreamAckSend,
			network.Word(ch), network.Word(in.expected-1)); err != nil {
			if errors.Is(err, network.ErrBackpressure) {
				// Charge was taken; the next delivery's acknowledgement
				// is cumulative, so correctness is unaffected.
				in.sinceAck = s.cfg.AckGroup
				node.Event("stream.backpressure")
				return nil
			}
			return err
		}
		node.Event("stream.ack.sent")
	}
	return nil
}

// handleAck runs at the source: a cumulative acknowledgement through a
// sequence number releases the retained copies.
func (s *Stream) handleAck(src int, args []network.Word) {
	node := s.ep.Node()
	node.Charge(cost.FaultTol, s.sched().StreamAckRecv)
	if len(args) != 2 {
		s.err = fmt.Errorf("protocols: malformed stream ack from node %d: %v", src, args)
		return
	}
	c, ok := s.out[connKey{src, uint8(args[0])}]
	if !ok {
		s.err = fmt.Errorf("protocols: stream ack for unknown channel %d from node %d", args[0], src)
		return
	}
	through := uint32(args[1])
	for seq := c.oldest; seq <= through; seq++ {
		delete(c.unacked, seq)
		delete(c.seqMsg, seq)
	}
	if through >= c.oldest {
		c.oldest = through + 1
	}
	c.idlePump = 0
	node.Event("stream.ack.recv")
}

// handleNack runs at the source: retransmit the requested packet.
func (s *Stream) handleNack(src int, args []network.Word) {
	node := s.ep.Node()
	node.Charge(cost.FaultTol, s.sched().StreamAckRecv)
	if len(args) != 2 {
		s.err = fmt.Errorf("protocols: malformed stream nack from node %d: %v", src, args)
		return
	}
	c, ok := s.out[connKey{src, uint8(args[0])}]
	if !ok {
		s.err = fmt.Errorf("protocols: stream nack for unknown channel %d from node %d", args[0], src)
		return
	}
	if err := c.retransmit(uint32(args[1])); err != nil {
		s.err = err
	}
	node.Event("stream.nack.recv")
}
