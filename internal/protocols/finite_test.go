package protocols

import (
	"testing"

	"msglayer/internal/cmam"
	"msglayer/internal/cost"
	"msglayer/internal/machine"
	"msglayer/internal/network"
)

// twoNode builds a two-node machine over the given network with roles set
// for a 0 -> 1 transfer.
func twoNode(t *testing.T, net network.Network) *machine.Machine {
	t.Helper()
	m := machine.MustNew(net, cost.MustPaperSchedule(net.PacketWords()))
	m.Node(0).SetRole(cost.Source)
	m.Node(1).SetRole(cost.Destination)
	return m
}

// pattern fills a test payload with recognizable words.
func pattern(words int) []network.Word {
	data := make([]network.Word, words)
	for i := range data {
		data[i] = network.Word(i*7 + 3)
	}
	return data
}

// runFinite performs one finite transfer of the given payload and returns
// the machine and what the receiver got.
func runFinite(t *testing.T, net network.Network, data []network.Word) (*machine.Machine, []network.Word) {
	t.Helper()
	m := twoNode(t, net)
	srcSvc := NewFinite(cmam.NewEndpoint(m.Node(0)))
	dstSvc := NewFinite(cmam.NewEndpoint(m.Node(1)))

	var received []network.Word
	dstSvc.OnReceive = func(src int, buf []network.Word) {
		if src != 0 {
			t.Errorf("OnReceive src = %d", src)
		}
		received = buf
	}

	tr, err := srcSvc.Start(1, data)
	if err != nil {
		t.Fatal(err)
	}
	err = machine.Run(100000,
		machine.StepFunc(func() (bool, error) { return tr.Done(), srcSvc.Pump() }),
		machine.StepFunc(func() (bool, error) { return tr.Done(), dstSvc.Pump() }),
	)
	if err != nil {
		t.Fatal(err)
	}
	if !tr.Done() {
		t.Fatal("transfer not done")
	}
	return m, received
}

// finiteWant returns the paper's Appendix A finite-sequence expectations
// for p packets of four words (see internal/cost/schedule_test.go for the
// derivation).
func finiteWant(p uint64) map[cost.Role]map[cost.Feature]cost.Vec {
	return map[cost.Role]map[cost.Feature]cost.Vec{
		cost.Source: {
			cost.Base:       cost.V(2, 1, 0).Add(cost.V(15, 2, 5).Scale(p)),
			cost.BufferMgmt: cost.V(36, 1, 10),
			cost.InOrder:    cost.V(2, 0, 0).Scale(p),
			cost.FaultTol:   cost.V(22, 0, 5),
		},
		cost.Destination: {
			cost.Base:       cost.V(14, 3, 1).Add(cost.V(12, 2, 4).Scale(p)),
			cost.BufferMgmt: cost.V(79, 12, 10),
			cost.InOrder:    cost.V(1, 0, 0).Add(cost.V(3, 0, 0).Scale(p)),
			cost.FaultTol:   cost.V(14, 1, 5),
		},
	}
}

func checkCells(t *testing.T, m *machine.Machine, want map[cost.Role]map[cost.Feature]cost.Vec) {
	t.Helper()
	gauges := map[cost.Role]*cost.Gauge{
		cost.Source:      m.Node(0).Gauge,
		cost.Destination: m.Node(1).Gauge,
	}
	for role, features := range want {
		for f, v := range features {
			if got := gauges[role].Cell(role, f); got != v {
				t.Errorf("%s/%s = %v, want %v", role, f, got, v)
			}
		}
	}
}

// The emergent instruction counts of a real 16-word transfer reproduce the
// paper's Table 2 / Table 3 finite-sequence column exactly.
func TestFiniteTransfer16WordsMatchesPaper(t *testing.T) {
	net := network.MustCM5Net(network.CM5Config{Nodes: 2})
	data := pattern(16)
	m, received := runFinite(t, net, data)

	if len(received) != 16 {
		t.Fatalf("received %d words", len(received))
	}
	for i := range data {
		if received[i] != data[i] {
			t.Fatalf("word %d = %d, want %d", i, received[i], data[i])
		}
	}
	checkCells(t, m, finiteWant(4))

	// Table 2 totals for the 16-word transfer (derived from Appendix A;
	// see DESIGN.md on the corrupted Table 2 panel): 173 source, 224
	// destination, 397 total.
	src := m.Node(0).Gauge.RoleTotal(cost.Source).Total()
	dst := m.Node(1).Gauge.RoleTotal(cost.Destination).Total()
	if src != 173 || dst != 224 {
		t.Errorf("totals = %d/%d, want 173/224", src, dst)
	}
}

// Same at 1024 words: Table 2's published totals 6221/5516/11737.
func TestFiniteTransfer1024WordsMatchesPaper(t *testing.T) {
	net := network.MustCM5Net(network.CM5Config{Nodes: 2})
	m, received := runFinite(t, net, pattern(1024))
	if len(received) != 1024 {
		t.Fatalf("received %d words", len(received))
	}
	checkCells(t, m, finiteWant(256))
	src := m.Node(0).Gauge.RoleTotal(cost.Source).Total()
	dst := m.Node(1).Gauge.RoleTotal(cost.Destination).Total()
	if src != 6221 || dst != 5516 || src+dst != 11737 {
		t.Errorf("totals = %d/%d/%d, want 6221/5516/11737", src, dst, src+dst)
	}
}

// The finite protocol's carried offsets make it immune to delivery order:
// identical results and identical costs under heavy reordering.
func TestFiniteTransferUnaffectedByReordering(t *testing.T) {
	plain := network.MustCM5Net(network.CM5Config{Nodes: 2})
	mPlain, _ := runFinite(t, plain, pattern(64))

	shuffled := network.MustCM5Net(network.CM5Config{Nodes: 2, Reorder: network.WindowShuffle(7, 99)})
	mShuffled, received := runFinite(t, shuffled, pattern(64))

	want := pattern(64)
	for i := range want {
		if received[i] != want[i] {
			t.Fatalf("reordered transfer corrupted word %d", i)
		}
	}
	if mPlain.TotalGauge().Total() != mShuffled.TotalGauge().Total() {
		t.Errorf("reordering changed finite-protocol cost: %v vs %v",
			mPlain.TotalGauge().Total(), mShuffled.TotalGauge().Total())
	}
}

// Packet counts and sizes that do not divide evenly still deliver exactly.
func TestFiniteTransferOddSizes(t *testing.T) {
	for _, words := range []int{1, 3, 5, 17, 101} {
		net := network.MustCM5Net(network.CM5Config{Nodes: 2})
		data := pattern(words)
		_, received := runFinite(t, net, data)
		if len(received) != words {
			t.Fatalf("words=%d: received %d", words, len(received))
		}
		for i := range data {
			if received[i] != data[i] {
				t.Fatalf("words=%d: word %d corrupted", words, i)
			}
		}
	}
}

// Finite network buffering backpressures the sender; the protocol retries
// and still completes with the data intact.
func TestFiniteTransferUnderBackpressure(t *testing.T) {
	net := network.MustCM5Net(network.CM5Config{Nodes: 2, Capacity: 2})
	data := pattern(64)
	m, received := runFinite(t, net, data)
	for i := range data {
		if received[i] != data[i] {
			t.Fatalf("word %d corrupted under backpressure", i)
		}
	}
	if m.Node(0).Gauge.Events("finite.backpressure") == 0 {
		t.Error("expected backpressure events with capacity 2")
	}
}

func TestFiniteStartValidation(t *testing.T) {
	net := network.MustCM5Net(network.CM5Config{Nodes: 2})
	m := twoNode(t, net)
	svc := NewFinite(cmam.NewEndpoint(m.Node(0)))
	if _, err := svc.Start(1, nil); err == nil {
		t.Error("Start accepted empty transfer")
	}
	if _, err := svc.Start(1, make([]network.Word, maxFiniteWords)); err == nil {
		t.Error("Start accepted transfer beyond the offset field")
	}
}

// Multiple concurrent transfers between the same pair of nodes complete
// independently.
func TestFiniteConcurrentTransfers(t *testing.T) {
	net := network.MustCM5Net(network.CM5Config{Nodes: 2})
	m := twoNode(t, net)
	srcSvc := NewFinite(cmam.NewEndpoint(m.Node(0)))
	dstSvc := NewFinite(cmam.NewEndpoint(m.Node(1)))

	var got [][]network.Word
	dstSvc.OnReceive = func(src int, buf []network.Word) { got = append(got, buf) }

	a, err := srcSvc.Start(1, pattern(8))
	if err != nil {
		t.Fatal(err)
	}
	b, err := srcSvc.Start(1, pattern(12))
	if err != nil {
		t.Fatal(err)
	}
	err = machine.Run(100000,
		machine.StepFunc(func() (bool, error) { return a.Done() && b.Done(), srcSvc.Pump() }),
		machine.StepFunc(func() (bool, error) { return a.Done() && b.Done(), dstSvc.Pump() }),
	)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("completed %d transfers, want 2", len(got))
	}
	sizes := map[int]bool{len(got[0]): true, len(got[1]): true}
	if !sizes[8] || !sizes[12] {
		t.Errorf("transfer sizes = %d, %d", len(got[0]), len(got[1]))
	}
}

// Transfers in both directions at once: each node is simultaneously a
// source and a destination.
func TestFiniteBidirectional(t *testing.T) {
	net := network.MustCM5Net(network.CM5Config{Nodes: 2})
	m := twoNode(t, net)
	svc0 := NewFinite(cmam.NewEndpoint(m.Node(0)))
	svc1 := NewFinite(cmam.NewEndpoint(m.Node(1)))

	var at0, at1 []network.Word
	svc0.OnReceive = func(_ int, buf []network.Word) { at0 = buf }
	svc1.OnReceive = func(_ int, buf []network.Word) { at1 = buf }

	f, err := svc0.Start(1, pattern(20))
	if err != nil {
		t.Fatal(err)
	}
	g, err := svc1.Start(0, pattern(24))
	if err != nil {
		t.Fatal(err)
	}
	err = machine.Run(100000,
		machine.StepFunc(func() (bool, error) { return f.Done() && g.Done(), svc0.Pump() }),
		machine.StepFunc(func() (bool, error) { return f.Done() && g.Done(), svc1.Pump() }),
	)
	if err != nil {
		t.Fatal(err)
	}
	if len(at1) != 20 || len(at0) != 24 {
		t.Errorf("received %d at node1, %d at node0; want 20, 24", len(at1), len(at0))
	}
}

// The per-packet event counts explain the cost totals: p data packets, one
// handshake round trip, one acknowledgement.
func TestFiniteEventCounts(t *testing.T) {
	net := network.MustCM5Net(network.CM5Config{Nodes: 2})
	m, _ := runFinite(t, net, pattern(16))
	src, dst := m.Node(0).Gauge, m.Node(1).Gauge
	if got := src.Events("finite.packet.sent"); got != 4 {
		t.Errorf("packets sent = %d, want 4", got)
	}
	if got := dst.Events("finite.packet.recv"); got != 4 {
		t.Errorf("packets received = %d, want 4", got)
	}
	if got := dst.Events("finite.ack.sent"); got != 1 {
		t.Errorf("acks sent = %d, want 1", got)
	}
	if got := src.Events("finite.ack.recv"); got != 1 {
		t.Errorf("acks received = %d, want 1", got)
	}
}
