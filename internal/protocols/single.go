package protocols

import (
	"fmt"

	"msglayer/internal/cmam"
	"msglayer/internal/network"
)

// SinglePacket runs the paper's single-packet delivery protocol once: the
// source sends a four-word datagram with CMAM_4 semantics and the
// destination polls it in, invoking the registered handler. Costs are
// exactly Table 1 — 20 instructions at the source and 27 at the
// destination — and, as the paper stresses, the packet is neither ordered
// nor overflow-safe nor reliable.
func SinglePacket(src, dst *cmam.Endpoint, h cmam.HandlerID, args ...network.Word) error {
	if err := src.AM4(dst.Node().ID, h, args...); err != nil {
		return err
	}
	got, err := dst.PollSingle()
	if err != nil {
		return err
	}
	if !got {
		// The CM-5 network gives no delivery guarantee; with fault
		// injection the datagram may simply be gone. Surface that
		// honestly rather than spinning.
		return fmt.Errorf("protocols: single-packet datagram from node %d never arrived (unreliable delivery)",
			src.Node().ID)
	}
	return nil
}
