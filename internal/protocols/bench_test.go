package protocols

import (
	"testing"

	"msglayer/internal/cmam"
	"msglayer/internal/cost"
	"msglayer/internal/machine"
	"msglayer/internal/network"
)

// BenchmarkStreamPacketRound measures the host cost of one full stream
// packet round: send, deliver, acknowledge, free — 115 simulated
// instructions of protocol work per iteration.
func BenchmarkStreamPacketRound(b *testing.B) {
	net := network.MustCM5Net(network.CM5Config{Nodes: 2})
	m := machine.MustNew(net, cost.MustPaperSchedule(4))
	src := MustNewStream(cmam.NewEndpoint(m.Node(0)), StreamConfig{})
	dst := MustNewStream(cmam.NewEndpoint(m.Node(1)), StreamConfig{})
	c := src.Open(1, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := c.Send(1, 2, 3, 4); err != nil {
			b.Fatal(err)
		}
		if err := dst.Pump(); err != nil {
			b.Fatal(err)
		}
		if err := src.Pump(); err != nil {
			b.Fatal(err)
		}
		if !c.Idle() {
			b.Fatal("packet not acknowledged")
		}
	}
}

// BenchmarkFiniteTransfer measures a full 1024-word reliable transfer
// (11737 simulated instructions) per iteration.
func BenchmarkFiniteTransfer(b *testing.B) {
	data := make([]network.Word, 1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net := network.MustCM5Net(network.CM5Config{Nodes: 2})
		m := machine.MustNew(net, cost.MustPaperSchedule(4))
		srcSvc := NewFinite(cmam.NewEndpoint(m.Node(0)))
		dstSvc := NewFinite(cmam.NewEndpoint(m.Node(1)))
		done := false
		dstSvc.OnReceive = func(int, []network.Word) { done = true }
		tr, err := srcSvc.Start(1, data)
		if err != nil {
			b.Fatal(err)
		}
		err = machine.Run(100000,
			machine.StepFunc(func() (bool, error) { return tr.Done() && done, srcSvc.Pump() }),
			machine.StepFunc(func() (bool, error) { return tr.Done() && done, dstSvc.Pump() }),
		)
		if err != nil {
			b.Fatal(err)
		}
	}
}
