package protocols

import (
	"errors"
	"testing"
	"testing/quick"

	"msglayer/internal/cmam"
	"msglayer/internal/cost"
	"msglayer/internal/machine"
	"msglayer/internal/network"
)

// streamRig is a two-node machine with stream services on both ends and a
// delivery recorder at node 1.
type streamRig struct {
	m         *machine.Machine
	src, dst  *Stream
	delivered [][]network.Word
}

func newStreamRig(t *testing.T, net network.Network, cfg StreamConfig) *streamRig {
	t.Helper()
	rig := &streamRig{m: twoNode(t, net)}
	rig.src = MustNewStream(cmam.NewEndpoint(rig.m.Node(0)), StreamConfig{
		AckGroup:        cfg.AckGroup,
		NackThreshold:   cfg.NackThreshold,
		RetransmitAfter: cfg.RetransmitAfter,
		MaxUnacked:      cfg.MaxUnacked,
	})
	cfg.OnDeliver = func(src int, ch uint8, data []network.Word) {
		buf := make([]network.Word, len(data))
		copy(buf, data)
		rig.delivered = append(rig.delivered, buf)
	}
	rig.dst = MustNewStream(cmam.NewEndpoint(rig.m.Node(1)), cfg)
	return rig
}

// run drives both services until the connection is idle.
func (r *streamRig) run(t *testing.T, c *Conn) {
	t.Helper()
	err := machine.Run(100000,
		machine.StepFunc(func() (bool, error) { return c.Idle(), r.src.Pump() }),
		machine.StepFunc(func() (bool, error) { return c.Idle(), r.dst.Pump() }),
	)
	if err != nil {
		t.Fatal(err)
	}
}

// sendPackets sends p four-word packets with recognizable contents.
func sendPackets(t *testing.T, c *Conn, p int) {
	t.Helper()
	for i := 0; i < p; i++ {
		base := network.Word(i * 4)
		if err := c.Send(base, base+1, base+2, base+3); err != nil {
			t.Fatal(err)
		}
	}
}

// checkDelivered verifies the receiver saw exactly the sent byte stream in
// transmission order.
func (r *streamRig) checkDelivered(t *testing.T, p int) {
	t.Helper()
	if len(r.delivered) != p {
		t.Fatalf("delivered %d packets, want %d", len(r.delivered), p)
	}
	for i, pkt := range r.delivered {
		base := network.Word(i * 4)
		if len(pkt) != 4 || pkt[0] != base || pkt[3] != base+3 {
			t.Fatalf("packet %d = %v (order or content violated)", i, pkt)
		}
	}
}

// indefiniteWant returns the paper's Appendix A indefinite-sequence
// expectations for p packets of four words with half arriving out of order.
func indefiniteWant(p uint64) map[cost.Role]map[cost.Feature]cost.Vec {
	half := p / 2
	return map[cost.Role]map[cost.Feature]cost.Vec{
		cost.Source: {
			cost.Base:     cost.V(14, 1, 5).Scale(p),
			cost.InOrder:  cost.V(2, 3, 0).Scale(p),
			cost.FaultTol: cost.V(22, 2, 5).Scale(p),
		},
		cost.Destination: {
			cost.Base: cost.V(12, 0, 1).Add(cost.V(10, 0, 4).Scale(p)),
			cost.InOrder: cost.V(5, 0, 0).Scale(p - half).
				Add(cost.V(20, 13, 0).Scale(half)).
				Add(cost.V(10, 10, 0).Scale(half)),
			cost.FaultTol: cost.V(14, 1, 5).Scale(p),
		},
	}
}

// The emergent instruction counts of a 16-word stream under the paper's
// half-out-of-order assumption reproduce Table 2's indefinite-sequence
// column: 216 source, 265 destination, 481 total.
func TestStream16WordsMatchesPaper(t *testing.T) {
	net := network.MustCM5Net(network.CM5Config{Nodes: 2, Reorder: network.PairSwap()})
	rig := newStreamRig(t, net, StreamConfig{})
	c := rig.src.Open(1, 0)
	sendPackets(t, c, 4)
	rig.run(t, c)
	rig.checkDelivered(t, 4)
	checkCells(t, rig.m, indefiniteWant(4))

	src := rig.m.Node(0).Gauge.RoleTotal(cost.Source).Total()
	dst := rig.m.Node(1).Gauge.RoleTotal(cost.Destination).Total()
	if src != 216 || dst != 265 || src+dst != 481 {
		t.Errorf("totals = %d/%d/%d, want 216/265/481", src, dst, src+dst)
	}
}

// At 1024 words (256 packets): 13824 source, 16141 destination, 29965.
func TestStream1024WordsMatchesPaper(t *testing.T) {
	net := network.MustCM5Net(network.CM5Config{Nodes: 2, Reorder: network.PairSwap()})
	rig := newStreamRig(t, net, StreamConfig{})
	c := rig.src.Open(1, 0)
	sendPackets(t, c, 256)
	rig.run(t, c)
	rig.checkDelivered(t, 256)
	checkCells(t, rig.m, indefiniteWant(256))

	src := rig.m.Node(0).Gauge.RoleTotal(cost.Source).Total()
	dst := rig.m.Node(1).Gauge.RoleTotal(cost.Destination).Total()
	if src != 13824 || dst != 16141 || src+dst != 29965 {
		t.Errorf("totals = %d/%d/%d, want 13824/16141/29965", src, dst, src+dst)
	}
}

// Event counts explain the totals: p sends, p/2 out-of-order arrivals, p/2
// drains, p acks.
func TestStreamEventCounts(t *testing.T) {
	net := network.MustCM5Net(network.CM5Config{Nodes: 2, Reorder: network.PairSwap()})
	rig := newStreamRig(t, net, StreamConfig{})
	c := rig.src.Open(1, 0)
	sendPackets(t, c, 8)
	rig.run(t, c)

	src, dst := rig.m.Node(0).Gauge, rig.m.Node(1).Gauge
	for name, want := range map[string]uint64{"stream.packet.sent": 8, "stream.ack.recv": 8} {
		if got := src.Events(name); got != want {
			t.Errorf("source %s = %d, want %d", name, got, want)
		}
	}
	for name, want := range map[string]uint64{
		"stream.inorder":    4,
		"stream.outoforder": 4,
		"stream.drain":      4,
		"stream.ack.sent":   8,
	} {
		if got := dst.Events(name); got != want {
			t.Errorf("destination %s = %d, want %d", name, got, want)
		}
	}
}

// Group acknowledgements (Section 3.2): with group size g the receiver
// sends p/g acks and the source processes p/g, cutting fault-tolerance cost
// while keeping delivery exact.
func TestStreamGroupAcks(t *testing.T) {
	const p = 16
	net := network.MustCM5Net(network.CM5Config{Nodes: 2, Reorder: network.PairSwap()})
	rig := newStreamRig(t, net, StreamConfig{AckGroup: 4})
	c := rig.src.Open(1, 0)
	sendPackets(t, c, p)
	rig.run(t, c)
	rig.checkDelivered(t, p)

	dst := rig.m.Node(1).Gauge
	if got := dst.Events("stream.ack.sent"); got != p/4 {
		t.Errorf("acks sent = %d, want %d", got, p/4)
	}
	// Destination fault tolerance: one ack-send bundle per group.
	want := cost.V(14, 1, 5).Scale(p / 4)
	if got := dst.Cell(cost.Destination, cost.FaultTol); got != want {
		t.Errorf("dst fault tol = %v, want %v", got, want)
	}
	// Source fault tolerance: per-packet buffering plus per-group ack
	// processing.
	wantSrc := cost.V(4, 2, 0).Scale(p).Add(cost.V(18, 0, 5).Scale(p / 4))
	if got := rig.m.Node(0).Gauge.Cell(cost.Source, cost.FaultTol); got != wantSrc {
		t.Errorf("src fault tol = %v, want %v", got, wantSrc)
	}
}

// In-order delivery survives arbitrary windowed shuffling.
func TestStreamUnderWindowShuffle(t *testing.T) {
	net := network.MustCM5Net(network.CM5Config{Nodes: 2, Reorder: network.WindowShuffle(9, 1234)})
	rig := newStreamRig(t, net, StreamConfig{NackThreshold: -1})
	c := rig.src.Open(1, 0)
	sendPackets(t, c, 64)
	rig.run(t, c)
	rig.checkDelivered(t, 64)
}

// A dropped packet is recovered through the receiver's negative
// acknowledgement and the stream still delivers exactly once, in order.
func TestStreamRecoversFromDropViaNack(t *testing.T) {
	plan := &network.TargetSeqs{Src: 0, Dst: 1, Seqs: map[uint64]network.Outcome{2: network.Drop}}
	net := network.MustCM5Net(network.CM5Config{Nodes: 2, Faults: plan})
	rig := newStreamRig(t, net, StreamConfig{NackThreshold: 3})
	c := rig.src.Open(1, 0)
	sendPackets(t, c, 12)
	rig.run(t, c)
	rig.checkDelivered(t, 12)

	if got := rig.m.Node(1).Gauge.Events("stream.nack.sent"); got == 0 {
		t.Error("expected a NACK to be sent")
	}
	if got := rig.m.Node(0).Gauge.Events("stream.retransmit"); got == 0 {
		t.Error("expected a retransmission")
	}
	// The retransmission is charged to fault tolerance over and above the
	// paper's fault-free per-packet costs.
	ft := rig.m.Node(0).Gauge.Cell(cost.Source, cost.FaultTol)
	faultFree := cost.V(22, 2, 5).Scale(12)
	if ft.Total() <= faultFree.Total() {
		t.Errorf("fault tolerance cost %d not above fault-free %d", ft.Total(), faultFree.Total())
	}
}

// A corrupted packet (detected and discarded by the NI) is recovered the
// same way.
func TestStreamRecoversFromCorruption(t *testing.T) {
	plan := &network.TargetSeqs{Src: 0, Dst: 1, Seqs: map[uint64]network.Outcome{5: network.Corrupt}}
	net := network.MustCM5Net(network.CM5Config{Nodes: 2, Faults: plan})
	rig := newStreamRig(t, net, StreamConfig{NackThreshold: 3})
	c := rig.src.Open(1, 0)
	sendPackets(t, c, 16)
	rig.run(t, c)
	rig.checkDelivered(t, 16)
}

// With NACKs disabled, the timeout backstop recovers the loss.
func TestStreamRecoversViaTimeout(t *testing.T) {
	plan := &network.TargetSeqs{Src: 0, Dst: 1, Seqs: map[uint64]network.Outcome{3: network.Drop}}
	net := network.MustCM5Net(network.CM5Config{Nodes: 2, Faults: plan})
	rig := newStreamRig(t, net, StreamConfig{NackThreshold: -1, RetransmitAfter: 8})
	c := rig.src.Open(1, 0)
	sendPackets(t, c, 8)
	rig.run(t, c)
	rig.checkDelivered(t, 8)
	if got := rig.m.Node(0).Gauge.Events("stream.timeout"); got == 0 {
		t.Error("expected a timeout retransmission")
	}
}

// Duplicates caused by spurious retransmission are delivered exactly once.
func TestStreamSuppressesDuplicates(t *testing.T) {
	net := network.MustCM5Net(network.CM5Config{Nodes: 2})
	// An aggressive timeout fires even though nothing was lost.
	rig := newStreamRig(t, net, StreamConfig{NackThreshold: -1, RetransmitAfter: 1})
	c := rig.src.Open(1, 0)
	// Send without pumping the receiver so the timeout has a chance.
	sendPackets(t, c, 4)
	if err := rig.src.Pump(); err != nil {
		t.Fatal(err)
	}
	if err := rig.src.Pump(); err != nil {
		t.Fatal(err)
	}
	rig.run(t, c)
	rig.checkDelivered(t, 4)
	if got := rig.m.Node(1).Gauge.Events("stream.duplicate"); got == 0 {
		t.Error("expected duplicate deliveries to be suppressed")
	}
}

func TestStreamSendValidation(t *testing.T) {
	net := network.MustCM5Net(network.CM5Config{Nodes: 2})
	rig := newStreamRig(t, net, StreamConfig{})
	c := rig.src.Open(1, 0)
	if err := c.Send(); err == nil {
		t.Error("accepted empty send")
	}
	if err := c.Send(1, 2, 3, 4, 5); err == nil {
		t.Error("accepted oversize send")
	}
	c.Close()
	if err := c.Send(1); err == nil {
		t.Error("accepted send on closed stream")
	}
}

func TestStreamOpenReturnsSameConn(t *testing.T) {
	net := network.MustCM5Net(network.CM5Config{Nodes: 2})
	rig := newStreamRig(t, net, StreamConfig{})
	if rig.src.Open(1, 0) != rig.src.Open(1, 0) {
		t.Error("Open created a duplicate connection")
	}
	if rig.src.Open(1, 0) == rig.src.Open(1, 1) {
		t.Error("different channels share a connection")
	}
}

// Two channels between the same pair of nodes are ordered independently.
func TestStreamMultipleChannels(t *testing.T) {
	net := network.MustCM5Net(network.CM5Config{Nodes: 2, Reorder: network.PairSwap()})
	m := twoNode(t, net)
	srcSvc := MustNewStream(cmam.NewEndpoint(m.Node(0)), StreamConfig{})
	perCh := map[uint8][]network.Word{}
	dstSvc := MustNewStream(cmam.NewEndpoint(m.Node(1)), StreamConfig{
		OnDeliver: func(src int, ch uint8, data []network.Word) {
			perCh[ch] = append(perCh[ch], data...)
		},
	})
	a := srcSvc.Open(1, 0)
	b := srcSvc.Open(1, 7)
	for i := 0; i < 6; i++ {
		if err := a.Send(network.Word(i)); err != nil {
			t.Fatal(err)
		}
		if err := b.Send(network.Word(100 + i)); err != nil {
			t.Fatal(err)
		}
	}
	err := machine.Run(100000,
		machine.StepFunc(func() (bool, error) { return a.Idle() && b.Idle(), srcSvc.Pump() }),
		machine.StepFunc(func() (bool, error) { return a.Idle() && b.Idle(), dstSvc.Pump() }),
	)
	if err != nil {
		t.Fatal(err)
	}
	for ch, base := range map[uint8]network.Word{0: 0, 7: 100} {
		got := perCh[ch]
		if len(got) != 6 {
			t.Fatalf("channel %d delivered %d words", ch, len(got))
		}
		for i, w := range got {
			if w != base+network.Word(i) {
				t.Errorf("channel %d word %d = %d", ch, i, w)
			}
		}
	}
}

// Property: for any payload sizes and shuffle seed, the receiver sees the
// exact transmitted sequence — the protocol's in-order, exactly-once
// contract under arbitrary benign reordering.
func TestStreamOrderingProperty(t *testing.T) {
	prop := func(sizes []uint8, seed int16, window uint8) bool {
		if len(sizes) == 0 {
			return true
		}
		if len(sizes) > 40 {
			sizes = sizes[:40]
		}
		net := network.MustCM5Net(network.CM5Config{
			Nodes:   2,
			Reorder: network.WindowShuffle(int(window%12)+1, int64(seed)),
		})
		m := machine.MustNew(net, cost.MustPaperSchedule(4))
		m.Node(0).SetRole(cost.Source)
		m.Node(1).SetRole(cost.Destination)
		srcSvc := MustNewStream(cmam.NewEndpoint(m.Node(0)), StreamConfig{NackThreshold: -1})
		var got []network.Word
		dstSvc := MustNewStream(cmam.NewEndpoint(m.Node(1)), StreamConfig{
			NackThreshold: -1,
			OnDeliver: func(_ int, _ uint8, data []network.Word) {
				got = append(got, data...)
			},
		})
		c := srcSvc.Open(1, 0)
		var want []network.Word
		next := network.Word(0)
		for _, sz := range sizes {
			words := int(sz)%4 + 1
			pkt := make([]network.Word, words)
			for i := range pkt {
				pkt[i] = next
				next++
			}
			want = append(want, pkt...)
			if err := c.Send(pkt...); err != nil {
				return false
			}
		}
		err := machine.Run(100000,
			machine.StepFunc(func() (bool, error) { return c.Idle(), srcSvc.Pump() }),
			machine.StepFunc(func() (bool, error) { return c.Idle(), dstSvc.Pump() }),
		)
		if err != nil {
			return false
		}
		if len(got) != len(want) {
			return false
		}
		for i := range want {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// The single-packet protocol wrapper: Table 1 costs, no services.
func TestSinglePacketProtocol(t *testing.T) {
	net := network.MustCM5Net(network.CM5Config{Nodes: 2})
	m := twoNode(t, net)
	src := cmam.NewEndpoint(m.Node(0))
	dst := cmam.NewEndpoint(m.Node(1))
	var got []network.Word
	dst.Register(1, func(_ int, args []network.Word) { got = args })

	if err := SinglePacket(src, dst, 1, 9, 8, 7, 6); err != nil {
		t.Fatal(err)
	}
	if len(got) != 4 || got[0] != 9 {
		t.Errorf("handler args = %v", got)
	}
	if total := m.TotalGauge().Total().Total(); total != 47 {
		t.Errorf("total cost = %d, want 47", total)
	}
}

// Single-packet delivery is unreliable: a dropped datagram is reported, not
// retried.
func TestSinglePacketUnreliable(t *testing.T) {
	net := network.MustCM5Net(network.CM5Config{
		Nodes:  2,
		Faults: &network.EveryNth{N: 1, What: network.Drop},
	})
	m := twoNode(t, net)
	src := cmam.NewEndpoint(m.Node(0))
	dst := cmam.NewEndpoint(m.Node(1))
	dst.Register(1, func(int, []network.Word) {})
	if err := SinglePacket(src, dst, 1, 1); err == nil {
		t.Error("dropped datagram went unreported")
	}
}

// The send window bounds in-flight packets: sends beyond MaxUnacked are
// refused until acknowledgements arrive, and the stream still delivers
// exactly and in order.
func TestStreamSendWindow(t *testing.T) {
	const window = 4
	const packets = 20
	net := network.MustCM5Net(network.CM5Config{Nodes: 2, Reorder: network.PairSwap()})
	rig := newStreamRig(t, net, StreamConfig{MaxUnacked: window})
	c := rig.src.Open(1, 0)

	sent := 0
	sawWindowFull := false
	err := machine.Run(100000,
		machine.StepFunc(func() (bool, error) {
			// Send as fast as the window allows.
			for sent < packets {
				base := network.Word(sent * 4)
				err := c.Send(base, base+1, base+2, base+3)
				if errors.Is(err, ErrWindowFull) {
					sawWindowFull = true
					break
				}
				if err != nil {
					return false, err
				}
				if c.Unacked() > window {
					t.Fatalf("window exceeded: %d > %d", c.Unacked(), window)
				}
				sent++
			}
			return sent == packets && c.Idle(), rig.src.Pump()
		}),
		machine.StepFunc(func() (bool, error) {
			return sent == packets && c.Idle(), rig.dst.Pump()
		}),
	)
	if err != nil {
		t.Fatal(err)
	}
	rig.checkDelivered(t, packets)
	if !sawWindowFull {
		t.Error("window never filled; test not exercising flow control")
	}
}
