// Package protocols implements the paper's three communication protocols on
// top of the CMAM layer, with full instruction-cost attribution:
//
//   - Single-packet delivery (Table 1): one four-word datagram. Cheapest
//     possible, but meets none of the user communication requirements.
//   - Finite sequence, multi-packet delivery (Figure 3): reliable
//     memory-to-memory transfer of a known-size message, paying for buffer
//     preallocation (deadlock/overflow safety), carried offsets (in-order
//     placement), and a completion acknowledgement (fault tolerance).
//   - Indefinite sequence, multi-packet delivery (Figure 4): an ordered,
//     reliable stream of packets (a socket-like channel), paying for
//     sequence numbers and reorder buffering (in-order delivery) and for
//     source buffering plus per-packet or group acknowledgements (fault
//     tolerance).
//
// Every protocol event charges the calibrated bundle from the node's
// cost.Schedule, so the Table 2 / Table 3 numbers emerge from the actual
// packet, acknowledgement, and out-of-order-arrival counts of a run.
package protocols

import (
	"msglayer/internal/cmam"
	"msglayer/internal/cost"
)

// Handler identifiers used by the protocols. User applications must avoid
// this range when registering their own handlers.
const (
	HFiniteAllocReq   cmam.HandlerID = 10
	HFiniteAllocReply cmam.HandlerID = 11
	HFiniteAck        cmam.HandlerID = 12
	HStreamAck        cmam.HandlerID = 20
	HStreamNack       cmam.HandlerID = 21
)

// TagStream is the hardware tag of indefinite-sequence data packets.
const TagStream = cmam.TagAM + 2 // distinct from TagAM and TagXfer

// retryProbe is the cost of discovering that an injection attempt
// backpressured: a status-register load and its test. It is charged only on
// the non-minimal execution path (finite network buffering), which the
// paper's tables exclude by assumption.
var retryProbe = cost.Items{
	{Cat: cost.Dev, Sub: cost.SubNIStatus, N: 1},
	{Cat: cost.Reg, Sub: cost.SubNIStatus, N: 2},
}
