package protocols

import (
	"errors"
	"fmt"

	"msglayer/internal/cmam"
	"msglayer/internal/cost"
	"msglayer/internal/network"
)

// FiniteID identifies one finite-sequence transfer, unique per source node.
type FiniteID uint16

// Finite is the per-node service implementing the finite-sequence
// multi-packet protocol of the paper's Figure 3:
//
//  1. the sender requests buffer allocation at the receiver,
//  2. the receiver allocates a communication segment,
//  3. and replies with the segment id,
//  4. the sender streams offset-carrying data packets,
//  5. the receiver deallocates the segment on completion,
//  6. and acknowledges, letting the sender release its copy of the data.
//
// Steps 1, 2, 3, and 5 are charged to buffer management, the carried
// offsets to in-order delivery, step 6 to fault tolerance, and the data
// packets to base cost — exactly the paper's attribution.
type Finite struct {
	ep *cmam.Endpoint

	// OnReceive is invoked at the destination when a transfer completes,
	// with the source node and the filled buffer. It runs at user level
	// and is not charged to the messaging layer.
	OnReceive func(src int, data []network.Word)
	// Allocate provides destination buffers; defaults to make. The
	// allocation itself is excluded from protocol cost, as in the paper.
	Allocate func(words int) []network.Word
	// RetransmitAfter is the number of consecutive Pump calls without
	// progress after which a stalled transfer retries its current step
	// (allocation request, data packets, or waiting for the lost
	// acknowledgement). Zero disables the timeout — the paper's minimal
	// fault-free path. Retransmissions are charged to fault tolerance;
	// the receiver deduplicates by transfer id and carried offsets, so
	// resends are idempotent.
	RetransmitAfter int

	nextID   FiniteID
	outgoing map[FiniteID]*FiniteTransfer
	incoming map[finKey]*finIncoming
	err      error // first deferred handler-side error
}

// finKey identifies an incoming transfer at the receiver.
type finKey struct {
	src int
	id  FiniteID
}

// finIncoming is the receiver's dedup record for one transfer.
type finIncoming struct {
	seg  cmam.SegmentID
	done bool
}

// Transfer states.
const (
	finiteWaitReply = iota
	finiteSending
	finiteWaitAck
	finiteDone
)

// FiniteTransfer is the source-side state of one transfer.
type FiniteTransfer struct {
	f     *Finite
	id    FiniteID
	dst   int
	data  []network.Word
	state int
	seg   cmam.SegmentID
	sent  int    // words injected so far
	msg   uint64 // observability message identity, 0 when untraced

	idle      int // pumps without progress, for the retransmission timeout
	lastState int
	lastSent  int
}

// Transfer-size limits imposed by the 16-bit offset field of the xfer head
// word.
const maxFiniteWords = 1 << 16

// NewFinite installs the finite-sequence protocol on an endpoint. Every
// node that sends or receives finite transfers needs its own instance.
func NewFinite(ep *cmam.Endpoint) *Finite {
	f := &Finite{
		ep:       ep,
		Allocate: func(words int) []network.Word { return make([]network.Word, words) },
		outgoing: make(map[FiniteID]*FiniteTransfer),
		incoming: make(map[finKey]*finIncoming),
	}
	ep.Register(HFiniteAllocReq, f.handleAllocReq)
	ep.Register(HFiniteAllocReply, f.handleAllocReply)
	ep.Register(HFiniteAck, f.handleAck)
	return f
}

// Start begins transferring data to dst (step 1). The data slice must stay
// unmodified until the transfer completes: the protocol's fault-tolerance
// guarantee is that the source retains the message until acknowledged.
func (f *Finite) Start(dst int, data []network.Word) (*FiniteTransfer, error) {
	if len(data) == 0 {
		return nil, errors.New("protocols: finite transfer of zero words")
	}
	if len(data) >= maxFiniteWords {
		return nil, fmt.Errorf("protocols: finite transfer of %d words exceeds the %d-word offset field",
			len(data), maxFiniteWords)
	}
	t := &FiniteTransfer{f: f, id: f.nextID, dst: dst, data: data, state: finiteWaitReply}
	f.nextID++
	f.outgoing[t.id] = t

	// The transfer is one causal message: everything from here to the final
	// acknowledgement attributes to this identity.
	obsScope := f.ep.Node().Obs
	prevMsg := obsScope.CurrentMsg()
	t.msg = obsScope.NewMsg()

	// Step 1: allocation request, charged to buffer management.
	err := f.ep.SendAM(dst, HFiniteAllocReq, cost.BufferMgmt, f.sched().AllocRequestSend,
		network.Word(t.id), network.Word(len(data)))
	if err != nil {
		obsScope.SwapMsg(prevMsg)
		delete(f.outgoing, t.id)
		return nil, err
	}
	f.ep.Node().Event("finite.start")
	obsScope.SwapMsg(prevMsg)
	return t, nil
}

// Done reports whether the transfer has been acknowledged.
func (t *FiniteTransfer) Done() bool { return t.state == finiteDone }

// Pump advances the protocol: it polls the endpoint for incoming packets
// and pushes outgoing data for transfers in the sending state. Call it
// repeatedly (for example from a machine.Stepper) until transfers report
// Done.
func (f *Finite) Pump() error {
	if _, err := f.ep.Poll(0); err != nil {
		return err
	}
	if f.err != nil {
		err := f.err
		f.err = nil
		return err
	}
	for _, t := range f.outgoing {
		if err := t.pump(); err != nil {
			return err
		}
	}
	return nil
}

// pump advances one outgoing transfer inside its message context, so data
// packets, backpressure probes, and retransmissions attribute to the
// transfer they belong to.
func (t *FiniteTransfer) pump() error {
	obsScope := t.f.ep.Node().Obs
	prev := obsScope.SwapMsg(t.msg)
	defer obsScope.SwapMsg(prev)
	if t.state == finiteSending {
		if err := t.pumpSend(); err != nil {
			return err
		}
	}
	return t.checkTimeout()
}

// checkTimeout applies the retransmission timeout to a stalled transfer.
func (t *FiniteTransfer) checkTimeout() error {
	if t.f.RetransmitAfter <= 0 || t.state == finiteDone {
		return nil
	}
	if t.state != t.lastState || t.sent != t.lastSent {
		t.lastState, t.lastSent = t.state, t.sent
		t.idle = 0
		return nil
	}
	t.idle++
	if t.idle < t.f.RetransmitAfter {
		return nil
	}
	t.idle = 0
	node := t.f.ep.Node()
	switch t.state {
	case finiteWaitReply:
		// The allocation request or its reply was lost: re-request. The
		// receiver deduplicates by transfer id.
		node.Charge(cost.FaultTol, t.f.sched().Retransmit)
		err := t.f.ep.SendAM(t.dst, HFiniteAllocReq, cost.FaultTol, nil,
			network.Word(t.id), network.Word(len(t.data)))
		if err != nil && !errors.Is(err, network.ErrBackpressure) {
			return err
		}
		node.Event("finite.retry.alloc")
	case finiteWaitAck:
		// Data packets or the acknowledgement were lost: resend the
		// retained copy. Carried offsets make duplicates idempotent, and
		// a receiver that already completed re-acknowledges when probed.
		n := t.f.sched().PacketWords
		for off := 0; off < len(t.data); off += n {
			end := off + n
			if end > len(t.data) {
				end = len(t.data)
			}
			node.Charge(cost.FaultTol, t.f.sched().Retransmit)
			err := t.f.ep.SendXfer(t.dst, t.seg, off, t.data[off:end], cost.FaultTol, nil)
			if errors.Is(err, network.ErrBackpressure) {
				node.Charge(cost.Base, retryProbe)
				return nil
			}
			if err != nil {
				return err
			}
		}
		// Probe with the (deduplicated) allocation request so a receiver
		// that already completed re-acknowledges a lost ack.
		err := t.f.ep.SendAM(t.dst, HFiniteAllocReq, cost.FaultTol, nil,
			network.Word(t.id), network.Word(len(t.data)))
		if err != nil && !errors.Is(err, network.ErrBackpressure) {
			return err
		}
		node.Event("finite.retry.data")
	}
	return nil
}

// Step adapts Pump to machine.Stepper semantics for a single transfer.
func (t *FiniteTransfer) Step() (bool, error) {
	if err := t.f.Pump(); err != nil {
		return false, err
	}
	return t.Done(), nil
}

func (f *Finite) sched() *cost.Schedule { return f.ep.Node().Sched }

// pumpSend injects data packets (step 4) until done or backpressured.
func (t *FiniteTransfer) pumpSend() error {
	n := t.f.sched().PacketWords
	node := t.f.ep.Node()
	for t.sent < len(t.data) {
		end := t.sent + n
		if end > len(t.data) {
			end = len(t.data)
		}
		err := t.f.ep.SendXfer(t.dst, t.seg, t.sent, t.data[t.sent:end], cost.Base, nil)
		if errors.Is(err, network.ErrBackpressure) {
			node.Charge(cost.Base, retryProbe)
			node.Event("finite.backpressure")
			return nil // try again next pump
		}
		if err != nil {
			return err
		}
		// Base per-packet injection cost plus the in-order offset
		// bookkeeping the carried-offset scheme costs the source.
		node.Charge(cost.Base, t.f.sched().XferSendPacket)
		node.Charge(cost.InOrder, t.f.sched().OffsetPerPacket)
		node.Event("finite.packet.sent")
		t.sent = end
	}
	t.state = finiteWaitAck
	return nil
}

// handleAllocReq runs at the destination (step 2 and 3).
func (f *Finite) handleAllocReq(src int, args []network.Word) {
	node := f.ep.Node()
	node.Charge(cost.BufferMgmt, f.sched().AllocRequestRecv)
	node.Event("finite.allocreq.recv")
	if len(args) != 2 {
		f.err = fmt.Errorf("protocols: malformed alloc request from node %d: %v", src, args)
		return
	}
	id := FiniteID(args[0])
	words := int(args[1])
	if words <= 0 || words >= maxFiniteWords {
		f.err = fmt.Errorf("protocols: alloc request from node %d for %d words", src, words)
		return
	}

	// Deduplicate retransmitted requests: re-reply (segment still open) or
	// re-acknowledge (transfer already completed, the ack was lost).
	key := finKey{src, id}
	if in, known := f.incoming[key]; known {
		node.Charge(cost.FaultTol, f.sched().Retransmit)
		if in.done {
			if err := f.ep.SendAM(src, HFiniteAck, cost.FaultTol, f.sched().XferAckSend,
				network.Word(id)); err != nil && !errors.Is(err, network.ErrBackpressure) {
				f.err = err
			}
			node.Event("finite.reack")
		} else {
			if err := f.ep.SendAM(src, HFiniteAllocReply, cost.FaultTol, f.sched().AllocReplySend,
				network.Word(id), network.Word(in.seg)); err != nil && !errors.Is(err, network.ErrBackpressure) {
				f.err = err
			}
			node.Event("finite.rereply")
		}
		return
	}

	buf := f.Allocate(words)

	// Fixed destination-side reception setup: the receive path and the
	// offset/count tracking are established once per transfer.
	node.Charge(cost.Base, f.sched().XferRecvFixed)
	node.Charge(cost.InOrder, f.sched().OffsetTrackFixed)

	// Step 2: associate a segment with the target buffer.
	node.Charge(cost.BufferMgmt, f.sched().SegmentAllocate)
	node.Event("finite.segment.alloc")
	record := &finIncoming{}
	f.incoming[key] = record
	var seg cmam.SegmentID
	seg, allocErr := f.ep.AllocSegment(buf, words,
		func(offset, words int) {
			node.Charge(cost.Base, f.sched().XferRecvPacket)
			node.Charge(cost.InOrder, f.sched().OffsetTrackPacket)
			node.Event("finite.packet.recv")
		},
		func() {
			// Step 5: free the communication segment.
			record.done = true
			node.Charge(cost.BufferMgmt, f.sched().SegmentDeallocate)
			node.Event("finite.segment.free")
			if err := f.ep.FreeSegment(seg); err != nil {
				f.err = err
				return
			}
			// Step 6: acknowledge, releasing the sender's copy.
			if err := f.ep.SendAM(src, HFiniteAck, cost.FaultTol, f.sched().XferAckSend,
				network.Word(id)); err != nil {
				f.err = err
				return
			}
			node.Event("finite.ack.sent")
			if f.OnReceive != nil {
				f.OnReceive(src, buf)
			}
		})
	if allocErr != nil {
		f.err = allocErr
		return
	}
	record.seg = seg

	// Step 3: reply with the segment id.
	if err := f.ep.SendAM(src, HFiniteAllocReply, cost.BufferMgmt, f.sched().AllocReplySend,
		network.Word(id), network.Word(seg)); err != nil {
		f.err = err
		return
	}
	node.Event("finite.reply.sent")
}

// handleAllocReply runs at the source (end of step 3).
func (f *Finite) handleAllocReply(src int, args []network.Word) {
	node := f.ep.Node()
	node.Charge(cost.BufferMgmt, f.sched().AllocReplyRecv)
	node.Event("finite.reply.recv")
	if len(args) != 2 {
		f.err = fmt.Errorf("protocols: malformed alloc reply from node %d: %v", src, args)
		return
	}
	t, ok := f.outgoing[FiniteID(args[0])]
	if !ok || t.state != finiteWaitReply {
		// A duplicate reply from the retransmission path; harmless.
		node.Event("finite.stale.reply")
		return
	}
	t.seg = cmam.SegmentID(args[1])
	t.state = finiteSending
	// Fixed source-side send-path setup.
	node.Charge(cost.Base, f.sched().XferSendFixed)
}

// handleAck runs at the source (end of step 6).
func (f *Finite) handleAck(src int, args []network.Word) {
	node := f.ep.Node()
	node.Charge(cost.FaultTol, f.sched().XferAckRecv)
	if len(args) != 1 {
		f.err = fmt.Errorf("protocols: malformed ack from node %d: %v", src, args)
		return
	}
	t, ok := f.outgoing[FiniteID(args[0])]
	if !ok || t.state != finiteWaitAck {
		// A duplicate acknowledgement from the retransmission path.
		node.Event("finite.stale.ack")
		return
	}
	t.state = finiteDone
	t.data = nil // the retained copy may now be released
	delete(f.outgoing, t.id)
	node.Event("finite.ack.recv")
}
