package protocols

import (
	"strings"
	"testing"

	"msglayer/internal/cmam"
	"msglayer/internal/cost"
	"msglayer/internal/machine"
	"msglayer/internal/network"
)

// sendRawAM injects a hand-built active message, bypassing the protocol's
// own senders, to exercise the malformed-message paths.
func sendRawAM(t *testing.T, ep *cmam.Endpoint, dst int, h cmam.HandlerID, args ...network.Word) {
	t.Helper()
	if err := ep.SendAM(dst, h, cost.Base, nil, args...); err != nil {
		t.Fatal(err)
	}
}

func TestFiniteMalformedMessages(t *testing.T) {
	cases := []struct {
		name string
		h    cmam.HandlerID
		args []network.Word
		want string
	}{
		{"alloc request arity", HFiniteAllocReq, []network.Word{1}, "malformed alloc request"},
		{"alloc request size", HFiniteAllocReq, []network.Word{1, 0}, "alloc request"},
		{"alloc request huge", HFiniteAllocReq, []network.Word{1, 1 << 20}, "alloc request"},
		{"alloc reply arity", HFiniteAllocReply, []network.Word{1}, "malformed alloc reply"},
		{"ack arity", HFiniteAck, nil, "malformed ack"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			net := network.MustCM5Net(network.CM5Config{Nodes: 2})
			m := twoNode(t, net)
			raw := cmam.NewEndpoint(m.Node(0))
			svc := NewFinite(cmam.NewEndpoint(m.Node(1)))
			sendRawAM(t, raw, 1, tc.h, tc.args...)
			err := svc.Pump()
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Errorf("Pump = %v, want %q", err, tc.want)
			}
			// The deferred error is consumed; the service recovers.
			if err := svc.Pump(); err != nil {
				t.Errorf("second Pump = %v", err)
			}
		})
	}
}

func TestStreamMalformedMessages(t *testing.T) {
	cases := []struct {
		name string
		h    cmam.HandlerID
		args []network.Word
		want string
	}{
		{"ack arity", HStreamAck, []network.Word{1}, "malformed stream ack"},
		{"ack unknown channel", HStreamAck, []network.Word{7, 0}, "unknown channel"},
		{"nack arity", HStreamNack, nil, "malformed stream nack"},
		{"nack unknown channel", HStreamNack, []network.Word{7, 0}, "unknown channel"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			net := network.MustCM5Net(network.CM5Config{Nodes: 2})
			m := twoNode(t, net)
			raw := cmam.NewEndpoint(m.Node(0))
			svc := MustNewStream(cmam.NewEndpoint(m.Node(1)), StreamConfig{})
			sendRawAM(t, raw, 1, tc.h, tc.args...)
			err := svc.Pump()
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Errorf("Pump = %v, want %q", err, tc.want)
			}
		})
	}
}

// The Stepper adapters drive protocols to completion through machine.Run's
// interface.
func TestStepperAdapters(t *testing.T) {
	net := network.MustCM5Net(network.CM5Config{Nodes: 2})
	m := twoNode(t, net)
	srcF := NewFinite(cmam.NewEndpoint(m.Node(0)))
	dstF := NewFinite(cmam.NewEndpoint(m.Node(1)))
	var got []network.Word
	dstF.OnReceive = func(_ int, buf []network.Word) { got = buf }
	tr, err := srcF.Start(1, pattern(8))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		done, err := tr.Step()
		if err != nil {
			t.Fatal(err)
		}
		if err := dstF.Pump(); err != nil {
			t.Fatal(err)
		}
		if done {
			break
		}
	}
	if !tr.Done() || len(got) != 8 {
		t.Fatalf("finite Step did not complete: done=%v got=%d", tr.Done(), len(got))
	}

	// Stream Step: done when all connections idle.
	net2 := network.MustCM5Net(network.CM5Config{Nodes: 2})
	m2 := twoNode(t, net2)
	srcS := MustNewStream(cmam.NewEndpoint(m2.Node(0)), StreamConfig{})
	dstS := MustNewStream(cmam.NewEndpoint(m2.Node(1)), StreamConfig{})
	c := srcS.Open(1, 0)
	if err := c.Send(1); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if _, err := dstS.Step(); err != nil {
			t.Fatal(err)
		}
		done, err := srcS.Step()
		if err != nil {
			t.Fatal(err)
		}
		if done {
			break
		}
	}
	if !c.Idle() {
		t.Fatal("stream Step did not complete")
	}
}

// NACK for an already-acknowledged packet is harmless (the retransmit
// finds nothing buffered).
func TestStreamNackForAckedPacket(t *testing.T) {
	net := network.MustCM5Net(network.CM5Config{Nodes: 2})
	rig := newStreamRig(t, net, StreamConfig{})
	c := rig.src.Open(1, 0)
	sendPackets(t, c, 2)
	rig.run(t, c)
	// Spurious NACK from the receiver for a long-acked sequence.
	raw := cmam.NewEndpoint(rig.m.Node(1))
	_ = raw // the stream's own endpoint handles the handlers; send from node1
	if err := rig.dst.ep.SendAM(0, HStreamNack, cost.FaultTol, nil, 0, 0); err != nil {
		t.Fatal(err)
	}
	if err := rig.src.Pump(); err != nil {
		t.Fatalf("spurious nack broke the source: %v", err)
	}
}

// Stray replies and acknowledgements (duplicates from the retransmission
// path) are tolerated, not errors.
func TestFiniteStaleMessagesTolerated(t *testing.T) {
	net := network.MustCM5Net(network.CM5Config{Nodes: 2})
	m := twoNode(t, net)
	raw := cmam.NewEndpoint(m.Node(0))
	svc := NewFinite(cmam.NewEndpoint(m.Node(1)))
	sendRawAM(t, raw, 1, HFiniteAllocReply, 42, 1)
	sendRawAM(t, raw, 1, HFiniteAck, 42)
	if err := svc.Pump(); err != nil {
		t.Fatalf("Pump = %v", err)
	}
	g := svc.ep.Node().Gauge
	if g.Events("finite.stale.reply") != 1 || g.Events("finite.stale.ack") != 1 {
		t.Errorf("stale events = %d, %d", g.Events("finite.stale.reply"), g.Events("finite.stale.ack"))
	}
}

// The finite protocol now survives packet loss end to end: any of the
// handshake, data, or acknowledgement packets may be dropped, and the
// timeout/dedup machinery recovers with byte-exact delivery.
func TestFiniteTransferSurvivesLoss(t *testing.T) {
	for _, lossSeq := range []uint64{0, 1, 2, 4, 6} {
		// Flow (0,1) packet #lossSeq is dropped: 0 = alloc request,
		// later indexes are data packets or timeout retransmissions.
		plan := &network.TargetSeqs{Src: 0, Dst: 1, Seqs: map[uint64]network.Outcome{lossSeq: network.Drop}}
		net := network.MustCM5Net(network.CM5Config{Nodes: 2, Faults: plan})
		m := twoNode(t, net)
		srcSvc := NewFinite(cmam.NewEndpoint(m.Node(0)))
		srcSvc.RetransmitAfter = 16
		dstSvc := NewFinite(cmam.NewEndpoint(m.Node(1)))
		var got []network.Word
		dstSvc.OnReceive = func(_ int, buf []network.Word) { got = buf }

		data := pattern(20)
		tr, err := srcSvc.Start(1, data)
		if err != nil {
			t.Fatal(err)
		}
		err = machine.Run(100000,
			machine.StepFunc(func() (bool, error) { return tr.Done(), srcSvc.Pump() }),
			machine.StepFunc(func() (bool, error) { return tr.Done(), dstSvc.Pump() }),
		)
		if err != nil {
			t.Fatalf("loss at %d: %v", lossSeq, err)
		}
		if len(got) != len(data) {
			t.Fatalf("loss at %d: received %d of %d", lossSeq, len(got), len(data))
		}
		for i := range data {
			if got[i] != data[i] {
				t.Fatalf("loss at %d: word %d corrupted", lossSeq, i)
			}
		}
	}
}

// A lost acknowledgement specifically: the transfer completes at the
// receiver, the ack vanishes, and the probe/re-ack path finishes the
// source side.
func TestFiniteTransferSurvivesLostAck(t *testing.T) {
	// Flow (1,0): the receiver's packets toward the source. Packet 1 is
	// the ack (packet 0 is the alloc reply).
	plan := &network.TargetSeqs{Src: 1, Dst: 0, Seqs: map[uint64]network.Outcome{1: network.Drop}}
	net := network.MustCM5Net(network.CM5Config{Nodes: 2, Faults: plan})
	m := twoNode(t, net)
	srcSvc := NewFinite(cmam.NewEndpoint(m.Node(0)))
	srcSvc.RetransmitAfter = 16
	dstSvc := NewFinite(cmam.NewEndpoint(m.Node(1)))
	var got []network.Word
	dstSvc.OnReceive = func(_ int, buf []network.Word) { got = buf }

	data := pattern(16)
	tr, err := srcSvc.Start(1, data)
	if err != nil {
		t.Fatal(err)
	}
	err = machine.Run(100000,
		machine.StepFunc(func() (bool, error) { return tr.Done(), srcSvc.Pump() }),
		machine.StepFunc(func() (bool, error) { return tr.Done(), dstSvc.Pump() }),
	)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 16 {
		t.Fatalf("received %d words", len(got))
	}
	if m.Node(1).Gauge.Events("finite.reack") == 0 {
		t.Error("expected a re-acknowledgement")
	}
	// The retransmission cost is visible in fault tolerance, above the
	// fault-free fixed 27 instructions.
	if ft := m.Node(0).Gauge.Cell(cost.Source, cost.FaultTol).Total(); ft <= 27 {
		t.Errorf("source fault tolerance = %d, expected retransmission charges", ft)
	}
}
