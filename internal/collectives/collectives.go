// Package collectives builds the higher-level communication operations of
// the paper's Section 2.1 — the services "message passing (C or FORTRAN)"
// programs and compilers expect — on top of the messaging layers:
// broadcast, scatter, gather, all-reduce, and barrier.
//
// Each collective is implemented twice over the same API surface: small
// control messages travel as single-packet active messages (cheap but, as
// the paper stresses, unordered and unreliable on the CM-5 substrate) and
// bulk payloads as finite-sequence transfers (reliable, overflow-safe,
// paying the Table 2 costs). Because every underlying primitive charges
// the calibrated schedule, a collective's end-to-end software cost is the
// paper's cost model composed over the communication pattern — which the
// tests check against closed forms.
package collectives

import (
	"errors"
	"fmt"

	"msglayer/internal/cmam"
	"msglayer/internal/cost"
	"msglayer/internal/ctrlnet"
	"msglayer/internal/machine"
	"msglayer/internal/network"
	"msglayer/internal/protocols"
)

// Handler identifiers used by the collectives; applications sharing an
// endpoint must avoid this range.
const (
	hBarrier   cmam.HandlerID = 30
	hReduceVal cmam.HandlerID = 31
	hBcastCtl  cmam.HandlerID = 32
)

// Comm is one node's participation in a communicator spanning all nodes of
// a machine. All nodes must construct their Comm before any collective
// starts, and all nodes must call the same collectives in the same order
// (MPI-style).
type Comm struct {
	ep     *cmam.Endpoint
	finite *protocols.Finite
	rank   int
	size   int

	// Barrier state.
	barrierSeen  map[uint32]int
	barrierEpoch uint32
	barrierAcked map[uint32]bool

	// Reduction state.
	reduceVals  map[uint32][]network.Word
	reduceEpoch uint32

	ctrl *ctrlnet.Net // optional hardware combining tree

	// Bulk reception state.
	bulk     map[uint32][]network.Word
	bulkCtl  map[uint32]bool
	bcastGen uint32

	err error
}

// New attaches a communicator to a node. The finite-sequence service is
// created internally; the endpoint must not already have one.
func New(ep *cmam.Endpoint, machineSize int) (*Comm, error) {
	if machineSize < 1 {
		return nil, fmt.Errorf("collectives: communicator over %d nodes", machineSize)
	}
	c := &Comm{
		ep:           ep,
		finite:       protocols.NewFinite(ep),
		rank:         ep.Node().ID,
		size:         machineSize,
		barrierSeen:  make(map[uint32]int),
		barrierAcked: make(map[uint32]bool),
		reduceVals:   make(map[uint32][]network.Word),
		bulk:         make(map[uint32][]network.Word),
		bulkCtl:      make(map[uint32]bool),
	}
	c.finite.OnReceive = func(src int, data []network.Word) {
		if len(data) < 1 {
			c.err = errors.New("collectives: bulk message without generation word")
			return
		}
		c.bulk[uint32(data[0])] = data[1:]
	}
	ep.Register(hBarrier, c.handleBarrier)
	ep.Register(hReduceVal, c.handleReduceVal)
	ep.Register(hBcastCtl, c.handleBcastCtl)
	return c, nil
}

// Rank returns this node's rank.
func (c *Comm) Rank() int { return c.rank }

// Size returns the communicator size.
func (c *Comm) Size() int { return c.size }

// Pump advances protocol work; the collectives' wait loops call it, and
// idle nodes must keep calling it for others to progress. When a control
// network is attached, pumping also advances the shared combining tree.
func (c *Comm) Pump() error {
	if err := c.finite.Pump(); err != nil {
		return err
	}
	if c.ctrl != nil {
		c.ctrl.Tick(1)
	}
	if c.err != nil {
		err := c.err
		c.err = nil
		return err
	}
	return nil
}

// Stepper adapts the communicator to machine.Run, finishing when done
// reports true.
func (c *Comm) Stepper(done func() bool) machine.Stepper {
	return machine.StepFunc(func() (bool, error) {
		if err := c.Pump(); err != nil {
			return false, err
		}
		return done(), nil
	})
}

// --- Barrier ---------------------------------------------------------

// recvCharge applies the Table 1 single-packet reception cost; every
// control message a collective receives is one polled active message.
func (c *Comm) recvCharge() {
	node := c.ep.Node()
	node.Charge(cost.Base, node.Sched.RecvSingle)
}

// handleBarrier counts arrivals at the root and releases at the leaves.
func (c *Comm) handleBarrier(src int, args []network.Word) {
	c.recvCharge()
	if len(args) != 2 {
		c.err = fmt.Errorf("collectives: malformed barrier message from %d", src)
		return
	}
	epoch := uint32(args[0])
	switch args[1] {
	case 0: // arrival at root
		c.barrierSeen[epoch]++
	case 1: // release from root
		c.barrierAcked[epoch] = true
	default:
		c.err = fmt.Errorf("collectives: bad barrier phase %d", args[1])
	}
}

// BarrierBegin initiates this node's participation in the next barrier and
// returns a completion predicate. Root is rank 0. The classic
// arrive-then-release pattern: every non-root sends an arrival active
// message to the root; when the root has all arrivals it broadcasts a
// release.
func (c *Comm) BarrierBegin() (done func() bool, err error) {
	epoch := c.barrierEpoch
	c.barrierEpoch++
	if c.rank == 0 {
		c.barrierSeen[epoch]++ // the root has arrived
		released := false
		return func() bool {
			if !released && c.barrierSeen[epoch] == c.size {
				for peer := 1; peer < c.size; peer++ {
					if err := c.ep.AM4(peer, hBarrier, network.Word(epoch), 1); err != nil {
						c.err = err
						return false
					}
				}
				released = true
				delete(c.barrierSeen, epoch)
			}
			return released
		}, nil
	}
	if err := c.ep.AM4(0, hBarrier, network.Word(epoch), 0); err != nil {
		return nil, err
	}
	passed := false
	return func() bool {
		if passed {
			return true
		}
		if c.barrierAcked[epoch] {
			delete(c.barrierAcked, epoch)
			passed = true
		}
		return passed
	}, nil
}

// --- Reduction -------------------------------------------------------

// Op is a reduction operator over words.
type Op func(a, b network.Word) network.Word

// Sum adds.
func Sum(a, b network.Word) network.Word { return a + b }

// Max keeps the larger word.
func Max(a, b network.Word) network.Word {
	if a > b {
		return a
	}
	return b
}

// handleReduceVal collects contributions at the root.
func (c *Comm) handleReduceVal(src int, args []network.Word) {
	c.recvCharge()
	if len(args) != 2 {
		c.err = fmt.Errorf("collectives: malformed reduce message from %d", src)
		return
	}
	epoch := uint32(args[0])
	c.reduceVals[epoch] = append(c.reduceVals[epoch], args[1])
}

// ReduceBegin contributes a value to an all-reduce and returns a predicate
// that reports completion and yields the result. Contributions travel as
// single-packet active messages to the root; the result returns the same
// way — 2(size-1) Table 1 round trips for the whole machine.
func (c *Comm) ReduceBegin(value network.Word, op Op) (func() (network.Word, bool), error) {
	epoch := c.reduceEpoch
	c.reduceEpoch++
	resultKey := epoch | 1<<31

	if c.rank == 0 {
		c.reduceVals[epoch] = append(c.reduceVals[epoch], value)
		broadcast := false
		return func() (network.Word, bool) {
			vals := c.reduceVals[epoch]
			if len(vals) < c.size {
				return 0, false
			}
			acc := vals[0]
			for _, v := range vals[1:] {
				acc = op(acc, v)
			}
			if !broadcast {
				for peer := 1; peer < c.size; peer++ {
					if err := c.ep.AM4(peer, hReduceVal, network.Word(resultKey), acc); err != nil {
						c.err = err
						return 0, false
					}
				}
				broadcast = true
			}
			return acc, true
		}, nil
	}
	if err := c.ep.AM4(0, hReduceVal, network.Word(epoch), value); err != nil {
		return nil, err
	}
	var result network.Word
	have := false
	return func() (network.Word, bool) {
		if have {
			return result, true
		}
		vals := c.reduceVals[resultKey]
		if len(vals) == 0 {
			return 0, false
		}
		result = vals[0]
		have = true
		delete(c.reduceVals, resultKey)
		return result, true
	}, nil
}

// --- Broadcast / scatter / gather ------------------------------------

// handleBcastCtl marks a bulk generation complete at a leaf.
func (c *Comm) handleBcastCtl(src int, args []network.Word) {
	c.recvCharge()
	if len(args) != 1 {
		c.err = fmt.Errorf("collectives: malformed control message from %d", src)
		return
	}
	c.bulkCtl[uint32(args[0])] = true
}

// BroadcastBegin (root side) sends data to every other node as concurrent
// finite-sequence transfers; non-roots call BroadcastRecv. Returns a
// completion predicate. Generation numbers distinguish successive bulk
// collectives.
func (c *Comm) BroadcastBegin(data []network.Word) (func() bool, error) {
	if c.rank != 0 {
		return nil, errors.New("collectives: BroadcastBegin on non-root")
	}
	gen := c.bcastGen
	c.bcastGen++
	payload := append([]network.Word{network.Word(gen)}, data...)
	transfers := make([]*protocols.FiniteTransfer, 0, c.size-1)
	for peer := 1; peer < c.size; peer++ {
		tr, err := c.finite.Start(peer, payload)
		if err != nil {
			return nil, err
		}
		transfers = append(transfers, tr)
	}
	return func() bool {
		for _, tr := range transfers {
			if !tr.Done() {
				return false
			}
		}
		return true
	}, nil
}

// BroadcastRecv (leaf side) returns a predicate yielding the payload of
// the next broadcast generation this node receives.
func (c *Comm) BroadcastRecv() func() ([]network.Word, bool) {
	gen := c.bcastGen
	c.bcastGen++
	var cached []network.Word
	have := false
	return func() ([]network.Word, bool) {
		if have {
			return cached, true
		}
		data, ok := c.bulk[gen]
		if !ok {
			return nil, false
		}
		delete(c.bulk, gen)
		cached = data
		have = true
		return cached, true
	}
}

// ScatterBegin (root) sends the i-th block to rank i; block i = 0 stays
// local and is returned immediately through the same predicate shape.
func (c *Comm) ScatterBegin(blocks [][]network.Word) (func() ([]network.Word, bool), error) {
	if c.rank != 0 {
		return nil, errors.New("collectives: ScatterBegin on non-root")
	}
	if len(blocks) != c.size {
		return nil, fmt.Errorf("collectives: scatter of %d blocks over %d ranks", len(blocks), c.size)
	}
	gen := c.bcastGen
	c.bcastGen++
	transfers := make([]*protocols.FiniteTransfer, 0, c.size-1)
	for peer := 1; peer < c.size; peer++ {
		payload := append([]network.Word{network.Word(gen)}, blocks[peer]...)
		tr, err := c.finite.Start(peer, payload)
		if err != nil {
			return nil, err
		}
		transfers = append(transfers, tr)
	}
	local := blocks[0]
	return func() ([]network.Word, bool) {
		for _, tr := range transfers {
			if !tr.Done() {
				return nil, false
			}
		}
		return local, true
	}, nil
}

// GatherBegin (leaf) contributes this node's block toward the root.
func (c *Comm) GatherBegin(block []network.Word) (func() bool, error) {
	if c.rank == 0 {
		return nil, errors.New("collectives: GatherBegin on root; use GatherRecv")
	}
	gen := c.bcastGen
	c.bcastGen++
	payload := append([]network.Word{network.Word(gen)}, block...)
	tr, err := c.finite.Start(0, payload)
	if err != nil {
		return nil, err
	}
	return tr.Done, nil
}

// GatherRecv (root) returns a predicate yielding all size-1 remote blocks
// (indexed by source rank) once they have arrived. The root's own block is
// the caller's to place.
func (c *Comm) GatherRecv() func() (map[int][]network.Word, bool) {
	gen := c.bcastGen
	c.bcastGen++
	collected := make(map[int][]network.Word)
	// Rebind the bulk sink to capture sources for this generation: the
	// default OnReceive drops the source, so gather installs its own.
	prev := c.finite.OnReceive
	c.finite.OnReceive = func(src int, data []network.Word) {
		if len(data) >= 1 && uint32(data[0]) == gen {
			collected[src] = data[1:]
			return
		}
		prev(src, data)
	}
	have := false
	return func() (map[int][]network.Word, bool) {
		if have {
			return collected, true
		}
		if len(collected) < c.size-1 {
			return nil, false
		}
		c.finite.OnReceive = prev
		have = true
		return collected, true
	}
}

// --- Hardware collectives (control network) ---------------------------

// Control-network access costs: contributing is two device stores plus
// setup; reading the combined result is a status load and test. These are
// the whole software cost of a hardware collective — the control network
// is to software reductions what Compressionless Routing is to the
// messaging layer.
var (
	hwContribute = cost.Items{
		{Cat: cost.Reg, Sub: cost.SubNISetup, N: 2},
		{Cat: cost.Dev, Sub: cost.SubNIWrite, N: 2},
	}
	hwResultPoll = cost.Items{
		{Cat: cost.Dev, Sub: cost.SubNIStatus, N: 1},
		{Cat: cost.Reg, Sub: cost.SubNIStatus, N: 2},
	}
)

// AttachControlNetwork gives this node access to a shared hardware
// combining tree (a CM-5-style control network). The network must span the
// same nodes as the communicator. HWReduceBegin and HWBarrierBegin become
// available; Pump ticks the shared tree.
func (c *Comm) AttachControlNetwork(cn *ctrlnet.Net) error {
	if cn.Nodes() != c.size {
		return fmt.Errorf("collectives: control network spans %d nodes, communicator %d", cn.Nodes(), c.size)
	}
	c.ctrl = cn
	return nil
}

// HWReduceBegin contributes to a hardware all-reduce on the control
// network. Every node pays a handful of device accesses instead of the
// software path's 2(size-1) single-packet round trips.
func (c *Comm) HWReduceBegin(value network.Word, op ctrlnet.Op) (func() (network.Word, bool), error) {
	if c.ctrl == nil {
		return nil, errors.New("collectives: no control network attached")
	}
	node := c.ep.Node()
	node.Charge(cost.Base, hwContribute)
	if err := c.ctrl.Contribute(c.rank, op, uint32(value)); err != nil {
		return nil, err
	}
	node.Event("collectives.hwreduce")
	have := false
	var result network.Word
	return func() (network.Word, bool) {
		if have {
			return result, true
		}
		v, ok := c.ctrl.Result(c.rank)
		if !ok {
			return 0, false
		}
		node.Charge(cost.Base, hwResultPoll)
		result = network.Word(v)
		have = true
		return result, true
	}, nil
}

// HWBarrierBegin synchronizes through the control network.
func (c *Comm) HWBarrierBegin() (func() bool, error) {
	pred, err := c.HWReduceBegin(1, ctrlnet.OpAnd)
	if err != nil {
		return nil, err
	}
	return func() bool {
		_, ok := pred()
		return ok
	}, nil
}

// HWScanBegin contributes to a hardware parallel-prefix (scan) on the
// control network: rank i receives op(v_0..v_i). Scans were a signature
// CM-5 control-network service (enumeration, load balancing, parallel
// allocation all build on them).
func (c *Comm) HWScanBegin(value network.Word, op ctrlnet.Op) (func() (network.Word, bool), error) {
	if c.ctrl == nil {
		return nil, errors.New("collectives: no control network attached")
	}
	node := c.ep.Node()
	node.Charge(cost.Base, hwContribute)
	if err := c.ctrl.ScanContribute(c.rank, op, uint32(value)); err != nil {
		return nil, err
	}
	node.Event("collectives.hwscan")
	have := false
	var result network.Word
	return func() (network.Word, bool) {
		if have {
			return result, true
		}
		v, ok := c.ctrl.ScanResult(c.rank)
		if !ok {
			return 0, false
		}
		node.Charge(cost.Base, hwResultPoll)
		result = network.Word(v)
		have = true
		return result, true
	}, nil
}
