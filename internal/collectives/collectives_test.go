package collectives

import (
	"testing"

	"msglayer/internal/cmam"
	"msglayer/internal/cost"
	"msglayer/internal/ctrlnet"
	"msglayer/internal/machine"
	"msglayer/internal/network"
)

// cluster builds an n-node machine with a communicator per node.
func cluster(t *testing.T, nodes int, cfg network.CM5Config) (*machine.Machine, []*Comm) {
	t.Helper()
	cfg.Nodes = nodes
	m := machine.MustNew(network.MustCM5Net(cfg), cost.MustPaperSchedule(4))
	comms := make([]*Comm, nodes)
	for i := 0; i < nodes; i++ {
		c, err := New(cmam.NewEndpoint(m.Node(i)), nodes)
		if err != nil {
			t.Fatal(err)
		}
		comms[i] = c
	}
	return m, comms
}

// drive pumps all communicators until done reports true.
func drive(t *testing.T, comms []*Comm, done func() bool) {
	t.Helper()
	steppers := make([]machine.Stepper, len(comms))
	for i, c := range comms {
		steppers[i] = c.Stepper(done)
	}
	if err := machine.Run(100000, steppers...); err != nil {
		t.Fatal(err)
	}
	if !done() {
		t.Fatal("collective did not complete")
	}
}

func TestNewValidates(t *testing.T) {
	m := machine.MustNew(network.MustCM5Net(network.CM5Config{Nodes: 1}), cost.MustPaperSchedule(4))
	if _, err := New(cmam.NewEndpoint(m.Node(0)), 0); err == nil {
		t.Error("accepted zero-size communicator")
	}
}

func TestRankAndSize(t *testing.T) {
	_, comms := cluster(t, 3, network.CM5Config{})
	for i, c := range comms {
		if c.Rank() != i || c.Size() != 3 {
			t.Errorf("comm %d: rank=%d size=%d", i, c.Rank(), c.Size())
		}
	}
}

func TestBarrier(t *testing.T) {
	_, comms := cluster(t, 5, network.CM5Config{})
	preds := make([]func() bool, len(comms))
	for i, c := range comms {
		p, err := c.BarrierBegin()
		if err != nil {
			t.Fatal(err)
		}
		preds[i] = p
	}
	drive(t, comms, func() bool {
		for _, p := range preds {
			if !p() {
				return false
			}
		}
		return true
	})
}

func TestBarrierRepeats(t *testing.T) {
	_, comms := cluster(t, 3, network.CM5Config{})
	for round := 0; round < 4; round++ {
		preds := make([]func() bool, len(comms))
		for i, c := range comms {
			p, err := c.BarrierBegin()
			if err != nil {
				t.Fatalf("round %d: %v", round, err)
			}
			preds[i] = p
		}
		drive(t, comms, func() bool {
			for _, p := range preds {
				if !p() {
					return false
				}
			}
			return true
		})
	}
}

func TestAllReduceSum(t *testing.T) {
	const nodes = 6
	_, comms := cluster(t, nodes, network.CM5Config{})
	preds := make([]func() (network.Word, bool), nodes)
	want := network.Word(0)
	for i, c := range comms {
		v := network.Word((i + 1) * 10)
		want += v
		p, err := c.ReduceBegin(v, Sum)
		if err != nil {
			t.Fatal(err)
		}
		preds[i] = p
	}
	drive(t, comms, func() bool {
		for _, p := range preds {
			if _, ok := p(); !ok {
				return false
			}
		}
		return true
	})
	for i, p := range preds {
		got, ok := p()
		if !ok || got != want {
			t.Errorf("rank %d: reduce = %d, %v; want %d", i, got, ok, want)
		}
	}
}

func TestAllReduceMax(t *testing.T) {
	_, comms := cluster(t, 4, network.CM5Config{})
	values := []network.Word{3, 99, 7, 12}
	preds := make([]func() (network.Word, bool), len(comms))
	for i, c := range comms {
		p, err := c.ReduceBegin(values[i], Max)
		if err != nil {
			t.Fatal(err)
		}
		preds[i] = p
	}
	drive(t, comms, func() bool {
		for _, p := range preds {
			if _, ok := p(); !ok {
				return false
			}
		}
		return true
	})
	for i, p := range preds {
		if got, _ := p(); got != 99 {
			t.Errorf("rank %d: max = %d", i, got)
		}
	}
}

func TestBroadcast(t *testing.T) {
	const nodes = 4
	_, comms := cluster(t, nodes, network.CM5Config{})
	data := make([]network.Word, 64)
	for i := range data {
		data[i] = network.Word(i * 2)
	}
	rootDone, err := comms[0].BroadcastBegin(data)
	if err != nil {
		t.Fatal(err)
	}
	leafPreds := make([]func() ([]network.Word, bool), 0, nodes-1)
	for _, c := range comms[1:] {
		leafPreds = append(leafPreds, c.BroadcastRecv())
	}
	drive(t, comms, func() bool {
		if !rootDone() {
			return false
		}
		for _, p := range leafPreds {
			if _, ok := p(); !ok {
				return false
			}
		}
		return true
	})
	// BroadcastRecv consumes on success, so re-running the predicates
	// after drive would report false; collect during a final check.
	// Instead verify via fresh receive state: each leaf already consumed
	// its payload inside drive's last done() call, so repeat delivery
	// checks use the captured values below.
	_ = leafPreds
}

func TestBroadcastDeliversPayload(t *testing.T) {
	const nodes = 3
	_, comms := cluster(t, nodes, network.CM5Config{})
	data := []network.Word{5, 6, 7, 8, 9}
	rootDone, err := comms[0].BroadcastBegin(data)
	if err != nil {
		t.Fatal(err)
	}
	got := make([][]network.Word, nodes)
	preds := make([]func() ([]network.Word, bool), nodes)
	for i, c := range comms[1:] {
		preds[i+1] = c.BroadcastRecv()
	}
	drive(t, comms, func() bool {
		if !rootDone() {
			return false
		}
		for i := 1; i < nodes; i++ {
			if got[i] == nil {
				if data, ok := preds[i](); ok {
					got[i] = data
				} else {
					return false
				}
			}
		}
		return true
	})
	for i := 1; i < nodes; i++ {
		if len(got[i]) != len(data) {
			t.Fatalf("rank %d got %d words", i, len(got[i]))
		}
		for j := range data {
			if got[i][j] != data[j] {
				t.Errorf("rank %d word %d = %d", i, j, got[i][j])
			}
		}
	}
}

func TestBroadcastBeginRejectsNonRoot(t *testing.T) {
	_, comms := cluster(t, 2, network.CM5Config{})
	if _, err := comms[1].BroadcastBegin([]network.Word{1}); err == nil {
		t.Error("non-root broadcast accepted")
	}
}

func TestScatterGatherRoundTrip(t *testing.T) {
	const nodes = 4
	const blockWords = 16
	_, comms := cluster(t, nodes, network.CM5Config{})

	blocks := make([][]network.Word, nodes)
	for r := range blocks {
		blocks[r] = make([]network.Word, blockWords)
		for i := range blocks[r] {
			blocks[r][i] = network.Word(r*1000 + i)
		}
	}

	// Scatter.
	rootPred, err := comms[0].ScatterBegin(blocks)
	if err != nil {
		t.Fatal(err)
	}
	leafBlocks := make([][]network.Word, nodes)
	leafPreds := make([]func() ([]network.Word, bool), nodes)
	for r := 1; r < nodes; r++ {
		leafPreds[r] = comms[r].BroadcastRecv()
	}
	drive(t, comms, func() bool {
		if b, ok := rootPred(); ok {
			leafBlocks[0] = b
		} else {
			return false
		}
		for r := 1; r < nodes; r++ {
			if leafBlocks[r] == nil {
				if b, ok := leafPreds[r](); ok {
					leafBlocks[r] = b
				} else {
					return false
				}
			}
		}
		return true
	})
	for r := 0; r < nodes; r++ {
		for i := range leafBlocks[r] {
			if leafBlocks[r][i] != network.Word(r*1000+i) {
				t.Fatalf("scatter rank %d word %d = %d", r, i, leafBlocks[r][i])
			}
		}
	}

	// Each rank doubles its block, then gathers back to root.
	for r := 0; r < nodes; r++ {
		for i := range leafBlocks[r] {
			leafBlocks[r][i] *= 2
		}
	}
	gatherDone := make([]func() bool, nodes)
	for r := 1; r < nodes; r++ {
		p, err := comms[r].GatherBegin(leafBlocks[r])
		if err != nil {
			t.Fatal(err)
		}
		gatherDone[r] = p
	}
	rootGather := comms[0].GatherRecv()
	var collected map[int][]network.Word
	drive(t, comms, func() bool {
		for r := 1; r < nodes; r++ {
			if !gatherDone[r]() {
				return false
			}
		}
		if collected == nil {
			if m, ok := rootGather(); ok {
				collected = m
			} else {
				return false
			}
		}
		return true
	})
	for r := 1; r < nodes; r++ {
		block := collected[r]
		if len(block) != blockWords {
			t.Fatalf("gathered rank %d has %d words", r, len(block))
		}
		for i := range block {
			if block[i] != network.Word(r*1000+i)*2 {
				t.Errorf("gathered rank %d word %d = %d", r, i, block[i])
			}
		}
	}
}

func TestScatterValidates(t *testing.T) {
	_, comms := cluster(t, 3, network.CM5Config{})
	if _, err := comms[1].ScatterBegin(nil); err == nil {
		t.Error("non-root scatter accepted")
	}
	if _, err := comms[0].ScatterBegin(make([][]network.Word, 2)); err == nil {
		t.Error("wrong block count accepted")
	}
}

func TestGatherBeginRejectsRoot(t *testing.T) {
	_, comms := cluster(t, 2, network.CM5Config{})
	if _, err := comms[0].GatherBegin([]network.Word{1}); err == nil {
		t.Error("root gather-begin accepted")
	}
}

// The reduce cost has a closed form over the calibrated schedule: 2(size-1)
// single-packet round trips = 2(size-1)(20+27) instructions machine-wide.
func TestReduceCostClosedForm(t *testing.T) {
	const nodes = 5
	m, comms := cluster(t, nodes, network.CM5Config{})
	preds := make([]func() (network.Word, bool), nodes)
	for i, c := range comms {
		p, err := c.ReduceBegin(1, Sum)
		if err != nil {
			t.Fatal(err)
		}
		preds[i] = p
	}
	drive(t, comms, func() bool {
		for _, p := range preds {
			if _, ok := p(); !ok {
				return false
			}
		}
		return true
	})
	// (size-1) arrivals + (size-1) result messages, each one AM4 send (20)
	// + one polled reception (27).
	want := uint64(2 * (nodes - 1) * 47)
	if got := m.TotalGauge().Total().Total(); got != want {
		t.Errorf("reduce cost = %d, want %d", got, want)
	}
}

// Collectives survive the network reordering the paper's substrate
// exhibits: bulk payloads ride the finite-sequence protocol, whose carried
// offsets are order-immune.
func TestBroadcastUnderReordering(t *testing.T) {
	const nodes = 3
	_, comms := cluster(t, nodes, network.CM5Config{Reorder: network.WindowShuffle(5, 77)})
	data := make([]network.Word, 32)
	for i := range data {
		data[i] = network.Word(i)
	}
	rootDone, err := comms[0].BroadcastBegin(data)
	if err != nil {
		t.Fatal(err)
	}
	preds := make([]func() ([]network.Word, bool), nodes)
	got := make([][]network.Word, nodes)
	for i, c := range comms[1:] {
		preds[i+1] = c.BroadcastRecv()
	}
	drive(t, comms, func() bool {
		if !rootDone() {
			return false
		}
		for r := 1; r < nodes; r++ {
			if got[r] == nil {
				if b, ok := preds[r](); ok {
					got[r] = b
				} else {
					return false
				}
			}
		}
		return true
	})
	for r := 1; r < nodes; r++ {
		for i := range data {
			if got[r][i] != data[i] {
				t.Fatalf("rank %d word %d corrupted under reordering", r, i)
			}
		}
	}
}

// Hardware all-reduce through the control network: exact result, and the
// whole machine pays a handful of device accesses per node instead of
// 2(size-1) single-packet round trips.
func TestHWReduce(t *testing.T) {
	const nodes = 8
	m, comms := cluster(t, nodes, network.CM5Config{})
	cn := ctrlnet.MustNew(nodes, 4)
	for _, c := range comms {
		if err := c.AttachControlNetwork(cn); err != nil {
			t.Fatal(err)
		}
	}
	preds := make([]func() (network.Word, bool), nodes)
	var want network.Word
	for i, c := range comms {
		v := network.Word(i * i)
		want += v
		p, err := c.HWReduceBegin(v, ctrlnet.OpSum)
		if err != nil {
			t.Fatal(err)
		}
		preds[i] = p
	}
	drive(t, comms, func() bool {
		for _, p := range preds {
			if _, ok := p(); !ok {
				return false
			}
		}
		return true
	})
	for i, p := range preds {
		if got, _ := p(); got != want {
			t.Errorf("rank %d hw reduce = %d, want %d", i, got, want)
		}
	}
	// Cost closed form: per node, one contribute (4 instr) + one result
	// poll (3 instr); zero network packets.
	wantCost := uint64(nodes * 7)
	if got := m.TotalGauge().Total().Total(); got != wantCost {
		t.Errorf("hw reduce machine cost = %d, want %d", got, wantCost)
	}
	if m.Net.Stats().Injected != 0 {
		t.Error("hardware reduce used the data network")
	}
}

func TestHWBarrier(t *testing.T) {
	const nodes = 5
	_, comms := cluster(t, nodes, network.CM5Config{})
	cn := ctrlnet.MustNew(nodes, 2)
	for _, c := range comms {
		if err := c.AttachControlNetwork(cn); err != nil {
			t.Fatal(err)
		}
	}
	preds := make([]func() bool, nodes)
	for i, c := range comms {
		p, err := c.HWBarrierBegin()
		if err != nil {
			t.Fatal(err)
		}
		preds[i] = p
	}
	drive(t, comms, func() bool {
		for _, p := range preds {
			if !p() {
				return false
			}
		}
		return true
	})
}

func TestHWReduceRequiresAttachment(t *testing.T) {
	_, comms := cluster(t, 2, network.CM5Config{})
	if _, err := comms[0].HWReduceBegin(1, ctrlnet.OpSum); err == nil {
		t.Error("hw reduce without control network accepted")
	}
	cn := ctrlnet.MustNew(3, 2) // wrong size
	if err := comms[0].AttachControlNetwork(cn); err == nil {
		t.Error("attached mismatched control network")
	}
}

// Software and hardware reduce agree on the result; the hardware path is
// drastically cheaper and the gap grows with machine size.
func TestHWReduceVsSoftwareCost(t *testing.T) {
	for _, nodes := range []int{4, 16} {
		mSW, sw := cluster(t, nodes, network.CM5Config{})
		preds := make([]func() (network.Word, bool), nodes)
		for i, c := range sw {
			p, err := c.ReduceBegin(network.Word(i), Sum)
			if err != nil {
				t.Fatal(err)
			}
			preds[i] = p
		}
		drive(t, sw, func() bool {
			for _, p := range preds {
				if _, ok := p(); !ok {
					return false
				}
			}
			return true
		})
		swCost := mSW.TotalGauge().Total().Total()
		wantSW := uint64(2 * (nodes - 1) * 47)
		if swCost != wantSW {
			t.Fatalf("nodes=%d software reduce = %d, want %d", nodes, swCost, wantSW)
		}

		mHW, hw := cluster(t, nodes, network.CM5Config{})
		cn := ctrlnet.MustNew(nodes, 4)
		hpreds := make([]func() (network.Word, bool), nodes)
		for i, c := range hw {
			if err := c.AttachControlNetwork(cn); err != nil {
				t.Fatal(err)
			}
			p, err := c.HWReduceBegin(network.Word(i), ctrlnet.OpSum)
			if err != nil {
				t.Fatal(err)
			}
			hpreds[i] = p
		}
		drive(t, hw, func() bool {
			for _, p := range hpreds {
				if _, ok := p(); !ok {
					return false
				}
			}
			return true
		})
		hwCost := mHW.TotalGauge().Total().Total()
		if hwCost != uint64(nodes*7) {
			t.Fatalf("nodes=%d hardware reduce = %d", nodes, hwCost)
		}
		if hwCost*4 > swCost {
			t.Errorf("nodes=%d: hardware reduce (%d) not dramatically cheaper than software (%d)",
				nodes, hwCost, swCost)
		}
	}
}

// Hardware scan: rank i receives the inclusive prefix sum of all ranks'
// contributions — the CM-5 enumeration idiom.
func TestHWScan(t *testing.T) {
	const nodes = 6
	_, comms := cluster(t, nodes, network.CM5Config{})
	cn := ctrlnet.MustNew(nodes, 4)
	preds := make([]func() (network.Word, bool), nodes)
	for i, c := range comms {
		if err := c.AttachControlNetwork(cn); err != nil {
			t.Fatal(err)
		}
		p, err := c.HWScanBegin(1, ctrlnet.OpSum) // enumerate: rank i gets i+1
		if err != nil {
			t.Fatal(err)
		}
		preds[i] = p
	}
	drive(t, comms, func() bool {
		for _, p := range preds {
			if _, ok := p(); !ok {
				return false
			}
		}
		return true
	})
	for i, p := range preds {
		if got, _ := p(); got != network.Word(i+1) {
			t.Errorf("rank %d scan = %d, want %d", i, got, i+1)
		}
	}
	// Without a control network the call is refused.
	_, bare := cluster(t, 2, network.CM5Config{})
	if _, err := bare[0].HWScanBegin(1, ctrlnet.OpSum); err == nil {
		t.Error("scan without control network accepted")
	}
}
