// Package machine assembles processing nodes — each an instruction-cost
// gauge, a calibration schedule, and a network interface — around a shared
// network substrate, and provides a deterministic round-robin scheduler for
// running messaging protocols to completion.
package machine

import (
	"errors"
	"fmt"

	"msglayer/internal/cost"
	"msglayer/internal/network"
	"msglayer/internal/ni"
	"msglayer/internal/obs"
)

// Node is one processing node of the simulated parallel machine.
type Node struct {
	// ID is the node number, 0-based.
	ID int
	// Gauge accumulates the node's dynamic instruction counts.
	Gauge *cost.Gauge
	// Sched is the calibration schedule the node's messaging layer
	// charges against.
	Sched *cost.Schedule
	// NI is the node's memory-mapped network interface.
	NI *ni.NI
	// ReplyNI, when non-nil, is a second interface onto a separate
	// network. The CM-5 provides two identical data networks; CMAM sends
	// requests on one and replies on the other, which makes round-trip
	// protocols deadlock-safe without software buffer reservation (the
	// paper's footnote 6). Built by NewDual.
	ReplyNI *ni.NI
	// EventListener, when set, observes every named protocol event in
	// emission order (the trace package uses this to reconstruct the
	// paper's protocol step diagrams).
	EventListener func(name string)
	// Obs, when non-nil, is the node's observability scope; every named
	// protocol event and the CMAM packet/segment hooks record through it.
	// Nil (the default) keeps the packet path free of observability cost.
	Obs *obs.NodeScope

	role cost.Role
}

// Role returns the node's current accounting role: whether its instruction
// charges count toward the Source or Destination column of the tables.
func (n *Node) Role() cost.Role { return n.role }

// SetRole sets the node's accounting role. A node that both sends and
// receives in one experiment (for example when acknowledging) keeps a single
// role — the paper attributes acknowledgement sends to the destination node
// and acknowledgement receptions to the source node, which is exactly the
// role each node holds for the transfer being accounted.
func (n *Node) SetRole(r cost.Role) { n.role = r }

// Charge records a calibrated bundle against the node's role and a feature.
func (n *Node) Charge(f cost.Feature, items cost.Items) {
	n.Gauge.Charge(n.role, f, items)
}

// Event records a named protocol event on the node's gauge and notifies the
// listener and observability scope, if any.
func (n *Node) Event(name string) {
	n.Gauge.CountEvent(name)
	if n.EventListener != nil {
		n.EventListener(name)
	}
	n.Obs.Event(name)
}

// HandleBegin enters the destination-handler context for a received packet
// carrying the given observability identity: until the matching HandleEnd,
// everything the handler records — including acknowledgements and replies
// it sends — is attributed to the packet's message, and a dispatch span
// linked to the sender's span marks the handler's execution. With no
// observer attached both calls are no-ops.
func (n *Node) HandleBegin(msg, link, pkt uint64) obs.DispatchCtx {
	return n.Obs.BeginDispatch("cmam.dispatch", msg, link, pkt)
}

// HandleEnd closes the dispatch begun by HandleBegin, restoring the node's
// previous message context.
func (n *Node) HandleEnd(ctx obs.DispatchCtx) {
	n.Obs.EndDispatch(ctx)
}

// Machine is a set of nodes sharing one network substrate.
type Machine struct {
	Net   network.Network
	Nodes []*Node

	hub *obs.Hub
}

// New builds a machine with one node per network endpoint. All nodes share
// the schedule; each gets its own gauge and NI.
func New(net network.Network, sched *cost.Schedule) (*Machine, error) {
	if net == nil || sched == nil {
		return nil, errors.New("machine: nil network or schedule")
	}
	if err := sched.Validate(); err != nil {
		return nil, err
	}
	if sched.PacketWords != net.PacketWords() {
		return nil, fmt.Errorf("machine: schedule packet size %d != network packet size %d",
			sched.PacketWords, net.PacketWords())
	}
	m := &Machine{Net: net}
	for id := 0; id < net.Nodes(); id++ {
		nic, err := ni.New(id, net)
		if err != nil {
			return nil, err
		}
		m.Nodes = append(m.Nodes, &Node{
			ID:    id,
			Gauge: cost.NewGauge(),
			Sched: sched,
			NI:    nic,
		})
	}
	return m, nil
}

// MustNew is New that panics on bad configuration.
func MustNew(net network.Network, sched *cost.Schedule) *Machine {
	m, err := New(net, sched)
	if err != nil {
		panic(err)
	}
	return m
}

// NewDual builds a machine whose nodes have two network interfaces: the
// primary (request) network and a separate reply network, modeling the
// CM-5's two data networks. Both networks must have the same node count
// and packet size.
func NewDual(request, reply network.Network, sched *cost.Schedule) (*Machine, error) {
	if reply == nil {
		return nil, errors.New("machine: nil reply network")
	}
	m, err := New(request, sched)
	if err != nil {
		return nil, err
	}
	if reply.Nodes() != request.Nodes() {
		return nil, fmt.Errorf("machine: reply network has %d nodes, request has %d",
			reply.Nodes(), request.Nodes())
	}
	if reply.PacketWords() != request.PacketWords() {
		return nil, fmt.Errorf("machine: reply network packet size %d != request %d",
			reply.PacketWords(), request.PacketWords())
	}
	for id, n := range m.Nodes {
		nic, err := ni.New(id, reply)
		if err != nil {
			return nil, err
		}
		n.ReplyNI = nic
	}
	return m, nil
}

// Node returns node id, panicking on out-of-range ids (a harness bug).
func (m *Machine) Node(id int) *Node {
	if id < 0 || id >= len(m.Nodes) {
		panic(fmt.Sprintf("machine: no node %d", id))
	}
	return m.Nodes[id]
}

// TotalGauge returns a fresh gauge holding the sum over all nodes.
func (m *Machine) TotalGauge() *cost.Gauge {
	total := cost.NewGauge()
	for _, n := range m.Nodes {
		total.Add(n.Gauge)
	}
	return total
}

// ResetGauges zeroes every node's gauge.
func (m *Machine) ResetGauges() {
	for _, n := range m.Nodes {
		n.Gauge.Reset()
	}
}

// AttachObserver wires an observability hub into the machine: every node
// gets a recording scope, and the network substrate gets one if it
// implements obs.NetInstrumentable. Passing nil detaches. Attach before
// running; the observed Run method ticks the hub's simulated clock and
// samples per-node receive-queue depths once per round.
func (m *Machine) AttachObserver(h *obs.Hub) {
	m.hub = h
	if h == nil {
		for _, n := range m.Nodes {
			n.Obs = nil
		}
		if ni, ok := m.Net.(obs.NetInstrumentable); ok {
			ni.SetObserver(nil)
		}
		return
	}
	for _, n := range m.Nodes {
		n.Obs = h.NodeScope(n.ID)
	}
	if ni, ok := m.Net.(obs.NetInstrumentable); ok {
		ni.SetObserver(h.NetScope(m.Net.Name()))
	}
}

// Observer returns the attached hub, nil if none.
func (m *Machine) Observer() *obs.Hub { return m.hub }

// Stepper is one unit of protocol work bound to the machine: each call
// performs a bounded amount of progress and reports whether the protocol
// has completed.
type Stepper interface {
	// Step performs one scheduling quantum and reports completion.
	Step() (done bool, err error)
}

// ErrStalled reports that Run exhausted its round budget with steppers
// still incomplete — a livelock or a budget set too low.
var ErrStalled = errors.New("machine: protocol stalled before completion")

// Run drives the steppers round-robin until all report done, making one
// Step call per incomplete stepper per round. It is the deterministic
// "machine cycle" of every experiment: the interleaving depends only on
// stepper order.
func Run(maxRounds int, steppers ...Stepper) error {
	done := make([]bool, len(steppers))
	for round := 0; round < maxRounds; round++ {
		allDone := true
		for i, s := range steppers {
			if done[i] {
				continue
			}
			d, err := s.Step()
			if err != nil {
				return err
			}
			done[i] = d
			if !d {
				allDone = false
			}
		}
		if allDone {
			return nil
		}
	}
	return ErrStalled
}

// StepFunc adapts a function to the Stepper interface.
type StepFunc func() (bool, error)

// Step implements Stepper.
func (f StepFunc) Step() (bool, error) { return f() }

// Run drives the steppers like the package-level Run but, when an
// observer hub is attached, also advances the hub's simulated clock once
// per round, samples per-node receive-queue depths (if the substrate
// implements obs.DepthProber), and counts rounds, steps, and stalls.
// Without a hub it defers to the package-level Run unchanged.
func (m *Machine) Run(maxRounds int, steppers ...Stepper) error {
	h := m.hub
	if h == nil || !h.Enabled() {
		return Run(maxRounds, steppers...)
	}
	rounds := h.Metrics.Counter(obs.Key{Name: "run_rounds_total", Node: -1})
	steps := h.Metrics.Counter(obs.Key{Name: "run_steps_total", Node: -1})
	stalls := h.Metrics.Counter(obs.Key{Name: "run_stalls_total", Node: -1})
	prober, _ := m.Net.(obs.DepthProber)

	done := make([]bool, len(steppers))
	for round := 0; round < maxRounds; round++ {
		allDone := true
		for i, s := range steppers {
			if done[i] {
				continue
			}
			d, err := s.Step()
			steps.Inc()
			if err != nil {
				return err
			}
			done[i] = d
			if !d {
				allDone = false
			}
		}
		rounds.Inc()
		if prober != nil {
			for _, n := range m.Nodes {
				n.Obs.RecvQueueDepth(prober.QueueDepth(n.ID))
			}
		}
		h.Tick()
		if allDone {
			return nil
		}
	}
	stalls.Inc()
	return ErrStalled
}
