package machine

import (
	"errors"
	"testing"

	"msglayer/internal/cost"
	"msglayer/internal/network"
)

func newMachine(t *testing.T, nodes int) *Machine {
	t.Helper()
	net := network.MustCM5Net(network.CM5Config{Nodes: nodes})
	return MustNew(net, cost.MustPaperSchedule(4))
}

func TestNewValidates(t *testing.T) {
	if _, err := New(nil, nil); err == nil {
		t.Error("accepted nil arguments")
	}
	net := network.MustCM5Net(network.CM5Config{Nodes: 2})
	if _, err := New(net, nil); err == nil {
		t.Error("accepted nil schedule")
	}
	// Mismatched packet sizes between schedule and network.
	if _, err := New(net, cost.MustPaperSchedule(8)); err == nil {
		t.Error("accepted schedule/network packet size mismatch")
	}
	// Corrupted schedule.
	bad := cost.MustPaperSchedule(4)
	bad.SendSingle = nil
	if _, err := New(net, bad); err == nil {
		t.Error("accepted invalid schedule")
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MustNew(nil, nil)
}

func TestMachineShape(t *testing.T) {
	m := newMachine(t, 4)
	if len(m.Nodes) != 4 {
		t.Fatalf("nodes = %d", len(m.Nodes))
	}
	for i, n := range m.Nodes {
		if n.ID != i {
			t.Errorf("node %d has ID %d", i, n.ID)
		}
		if n.Gauge == nil || n.NI == nil || n.Sched == nil {
			t.Errorf("node %d missing parts", i)
		}
		if n.NI.Node() != i {
			t.Errorf("node %d NI attached to %d", i, n.NI.Node())
		}
	}
	if m.Node(2).ID != 2 {
		t.Error("Node accessor wrong")
	}
}

func TestNodeAccessorPanics(t *testing.T) {
	m := newMachine(t, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	m.Node(5)
}

func TestRolesAndCharging(t *testing.T) {
	m := newMachine(t, 2)
	src, dst := m.Node(0), m.Node(1)
	src.SetRole(cost.Source)
	dst.SetRole(cost.Destination)

	src.Charge(cost.Base, src.Sched.SendSingle)
	dst.Charge(cost.Base, dst.Sched.RecvSingle)
	src.Event("sent")

	if got := src.Gauge.Cell(cost.Source, cost.Base).Total(); got != 20 {
		t.Errorf("source base = %d, want 20", got)
	}
	if got := dst.Gauge.Cell(cost.Destination, cost.Base).Total(); got != 27 {
		t.Errorf("destination base = %d, want 27", got)
	}
	if src.Gauge.Events("sent") != 1 {
		t.Error("event not recorded")
	}
	if src.Role() != cost.Source || dst.Role() != cost.Destination {
		t.Error("roles wrong")
	}

	total := m.TotalGauge()
	if got := total.Total().Total(); got != 47 {
		t.Errorf("machine total = %d, want 47", got)
	}

	m.ResetGauges()
	if got := m.TotalGauge().Total(); !got.IsZero() {
		t.Errorf("total after reset = %v", got)
	}
}

func TestRunRoundRobinUntilDone(t *testing.T) {
	var order []int
	mk := func(id, steps int) Stepper {
		remaining := steps
		return StepFunc(func() (bool, error) {
			order = append(order, id)
			remaining--
			return remaining <= 0, nil
		})
	}
	if err := Run(10, mk(1, 2), mk(2, 3), mk(3, 1)); err != nil {
		t.Fatal(err)
	}
	want := []int{1, 2, 3, 1, 2, 2}
	if len(order) != len(want) {
		t.Fatalf("order = %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestRunStalls(t *testing.T) {
	never := StepFunc(func() (bool, error) { return false, nil })
	if err := Run(5, never); !errors.Is(err, ErrStalled) {
		t.Errorf("Run = %v, want ErrStalled", err)
	}
}

func TestRunPropagatesErrors(t *testing.T) {
	boom := errors.New("boom")
	bad := StepFunc(func() (bool, error) { return false, boom })
	if err := Run(5, bad); !errors.Is(err, boom) {
		t.Errorf("Run = %v, want boom", err)
	}
}

func TestRunNoSteppers(t *testing.T) {
	if err := Run(1); err != nil {
		t.Errorf("Run with no steppers = %v", err)
	}
}

func TestNewDual(t *testing.T) {
	req := network.MustCM5Net(network.CM5Config{Nodes: 3})
	rep := network.MustCM5Net(network.CM5Config{Nodes: 3})
	m, err := NewDual(req, rep, cost.MustPaperSchedule(4))
	if err != nil {
		t.Fatal(err)
	}
	for i, n := range m.Nodes {
		if n.ReplyNI == nil {
			t.Fatalf("node %d missing reply NI", i)
		}
		if n.ReplyNI.Node() != i {
			t.Errorf("node %d reply NI attached to %d", i, n.ReplyNI.Node())
		}
	}
	// Validation failures.
	if _, err := NewDual(req, nil, cost.MustPaperSchedule(4)); err == nil {
		t.Error("nil reply network accepted")
	}
	if _, err := NewDual(req, network.MustCM5Net(network.CM5Config{Nodes: 2}),
		cost.MustPaperSchedule(4)); err == nil {
		t.Error("node-count mismatch accepted")
	}
	if _, err := NewDual(req, network.MustCM5Net(network.CM5Config{Nodes: 3, PacketWords: 8}),
		cost.MustPaperSchedule(4)); err == nil {
		t.Error("packet-size mismatch accepted")
	}
	// The request-network validation still applies first.
	if _, err := NewDual(nil, rep, cost.MustPaperSchedule(4)); err == nil {
		t.Error("nil request network accepted")
	}
}

func TestEventListener(t *testing.T) {
	m := newMachine(t, 1)
	var seen []string
	m.Node(0).EventListener = func(name string) { seen = append(seen, name) }
	m.Node(0).Event("a")
	m.Node(0).Event("b")
	if len(seen) != 2 || seen[0] != "a" || seen[1] != "b" {
		t.Errorf("listener saw %v", seen)
	}
	if m.Node(0).Gauge.Events("a") != 1 {
		t.Error("gauge missed the event")
	}
}
