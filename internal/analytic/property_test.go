package analytic

import (
	"testing"

	"msglayer/internal/cost"
)

// allProtocols enumerates the four modeled protocols for property sweeps.
var allProtocols = []Protocol{
	ProtoFiniteCMAM, ProtoIndefiniteCMAM, ProtoFiniteCR, ProtoIndefiniteCR,
}

// halfParams is the paper's Table 2 parameterization for a message size.
func halfParams(s *cost.Schedule, words int) Params {
	return Params{
		MessageWords: words,
		OutOfOrder:   HalfOutOfOrder(s, words),
		AckGroup:     1,
	}
}

// TestTotalMonotoneInMessageWords: every protocol's total cost is
// non-decreasing in the message size — more data never costs fewer
// instructions. Swept word by word so packet-boundary steps are covered.
func TestTotalMonotoneInMessageWords(t *testing.T) {
	for _, n := range []int{4, 16} {
		s := sched(t, n)
		for _, proto := range allProtocols {
			prev := uint64(0)
			for words := 1; words <= 8*n; words++ {
				b, err := Evaluate(proto, s, halfParams(s, words))
				if err != nil {
					t.Fatalf("%v n=%d words=%d: %v", proto, n, words, err)
				}
				total := b.Total().Total()
				if total < prev {
					t.Errorf("%v n=%d: total(%d words) = %d < total(%d words) = %d",
						proto, n, words, total, words-1, prev)
				}
				prev = total
			}
		}
	}
}

// TestIndefiniteCMAMNonIncreasingInAckGroup: grouping acknowledgements can
// only remove ack traffic, so the stream protocol's total is non-increasing
// in g, and the fault-tolerance row is where the savings land.
func TestIndefiniteCMAMNonIncreasingInAckGroup(t *testing.T) {
	s := sched(t, 4)
	const words = 256 // 64 packets
	prevTotal := ^uint64(0)
	prevFT := ^uint64(0)
	for g := 1; g <= 70; g++ {
		b, err := IndefiniteCMAM(s, Params{
			MessageWords: words,
			OutOfOrder:   HalfOutOfOrder(s, words),
			AckGroup:     g,
		})
		if err != nil {
			t.Fatalf("g=%d: %v", g, err)
		}
		total := b.Total().Total()
		ft := b.FeatureTotal(cost.FaultTol).Total()
		if total > prevTotal {
			t.Errorf("total(g=%d) = %d > total(g=%d) = %d", g, total, g-1, prevTotal)
		}
		if ft > prevFT {
			t.Errorf("fault-tol(g=%d) = %d > fault-tol(g=%d) = %d", g, ft, g-1, prevFT)
		}
		prevTotal, prevFT = total, ft
	}
	// Past p the whole transfer is one short group acknowledged with the
	// next transfer's data — zero acks — so the total plateaus.
	p := Packets(s, words)
	big, err := IndefiniteCMAM(s, Params{MessageWords: words, OutOfOrder: 0, AckGroup: p + 1})
	if err != nil {
		t.Fatal(err)
	}
	huge, err := IndefiniteCMAM(s, Params{MessageWords: words, OutOfOrder: 0, AckGroup: 10 * p})
	if err != nil {
		t.Fatal(err)
	}
	if big.Total().Total() != huge.Total().Total() {
		t.Errorf("g=p+1 total %d != g=10p total %d (expected ack-free plateau)",
			big.Total().Total(), huge.Total().Total())
	}
}

// TestPacketsBoundaries: the packet count at and around exact multiples of
// the payload, plus the degenerate single-word message.
func TestPacketsBoundaries(t *testing.T) {
	for _, n := range []int{2, 4, 16} { // payloads are positive even word counts
		s := sched(t, n)
		cases := []struct{ words, want int }{
			{1, 1},         // single-word message is always one packet
			{n, 1},         // exact single packet
			{n + 1, 2},     // one word over the boundary
			{2 * n, 2},     // exact multiple
			{2*n + 1, 3},   // just past an exact multiple
			{10 * n, 10},   // larger exact multiple
			{10*n - 1, 10}, // just under it still needs the tenth packet
		}
		for _, tc := range cases {
			if got := Packets(s, tc.words); got != tc.want {
				t.Errorf("n=%d: Packets(%d) = %d, want %d", n, tc.words, got, tc.want)
			}
		}
	}
}

// TestHalfOutOfOrderBoundaries: the Table 2 assumption rounds down, stays
// within [0, p], and a single-packet message is never out of order.
func TestHalfOutOfOrderBoundaries(t *testing.T) {
	s := sched(t, 4)
	for _, tc := range []struct{ words, want int }{
		{1, 0},  // one packet: 1/2 rounds down to none
		{4, 0},  // still one packet
		{5, 1},  // two packets: one reordered
		{12, 1}, // three packets round down
		{16, 2}, // four packets: exactly half
		{1024, 128},
	} {
		if got := HalfOutOfOrder(s, tc.words); got != tc.want {
			t.Errorf("HalfOutOfOrder(%d) = %d, want %d", tc.words, got, tc.want)
		}
	}
	// The assumption must always be a legal OutOfOrder value.
	for words := 1; words <= 64; words++ {
		p := Packets(s, words)
		if ooo := HalfOutOfOrder(s, words); ooo < 0 || ooo > p {
			t.Errorf("HalfOutOfOrder(%d) = %d outside [0,%d]", words, ooo, p)
		}
	}
}

// TestOutOfOrderCostsAtLeastInOrder: reordered arrivals pay buffering and a
// drain on top of the in-order path, so for a fixed message the stream
// protocol's total is non-decreasing in the out-of-order count.
func TestOutOfOrderCostsAtLeastInOrder(t *testing.T) {
	s := sched(t, 4)
	const words = 64
	p := Packets(s, words)
	prev := uint64(0)
	for ooo := 0; ooo <= p; ooo++ {
		b, err := IndefiniteCMAM(s, Params{MessageWords: words, OutOfOrder: ooo, AckGroup: 1})
		if err != nil {
			t.Fatalf("ooo=%d: %v", ooo, err)
		}
		total := b.Total().Total()
		if total < prev {
			t.Errorf("total(ooo=%d) = %d < total(ooo=%d) = %d", ooo, total, ooo-1, prev)
		}
		prev = total
	}
}
