package analytic

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"msglayer/internal/cost"
)

func sched(t *testing.T, n int) *cost.Schedule {
	t.Helper()
	return cost.MustPaperSchedule(n)
}

func TestPacketsAndHalf(t *testing.T) {
	s := sched(t, 4)
	for _, tc := range []struct{ words, packets int }{
		{1, 1}, {4, 1}, {5, 2}, {16, 4}, {1024, 256}, {1023, 256},
	} {
		if got := Packets(s, tc.words); got != tc.packets {
			t.Errorf("Packets(%d) = %d, want %d", tc.words, got, tc.packets)
		}
	}
	if got := HalfOutOfOrder(s, 16); got != 2 {
		t.Errorf("HalfOutOfOrder(16) = %d", got)
	}
}

func TestSingleCMAMIsTable1(t *testing.T) {
	b := SingleCMAM(sched(t, 4))
	if got := b.RoleTotal(cost.Source).Total(); got != 20 {
		t.Errorf("source = %d", got)
	}
	if got := b.RoleTotal(cost.Destination).Total(); got != 27 {
		t.Errorf("destination = %d", got)
	}
	if got := b.Overhead(); got != 0 {
		t.Errorf("single-packet overhead = %f, want 0 (base only)", got)
	}
}

// The analytic model reproduces every Table 2 total at the paper's
// configurations.
func TestModelReproducesTable2(t *testing.T) {
	s := sched(t, 4)
	cases := []struct {
		name           string
		proto          Protocol
		words          int
		src, dst, both uint64
	}{
		{"finite 16w", ProtoFiniteCMAM, 16, 173, 224, 397},
		{"finite 1024w", ProtoFiniteCMAM, 1024, 6221, 5516, 11737},
		{"indefinite 16w", ProtoIndefiniteCMAM, 16, 216, 265, 481},
		{"indefinite 1024w", ProtoIndefiniteCMAM, 1024, 13824, 16141, 29965},
	}
	for _, tc := range cases {
		prm := Params{MessageWords: tc.words, OutOfOrder: HalfOutOfOrder(s, tc.words), AckGroup: 1}
		b, err := Evaluate(tc.proto, s, prm)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		src := b.RoleTotal(cost.Source).Total()
		dst := b.RoleTotal(cost.Destination).Total()
		if src != tc.src || dst != tc.dst || src+dst != tc.both {
			t.Errorf("%s = %d/%d/%d, want %d/%d/%d", tc.name, src, dst, src+dst, tc.src, tc.dst, tc.both)
		}
	}
}

// Section 3.2's qualitative claims hold in the model: in-order delivery and
// fault tolerance account for ~70% of indefinite-sequence cost regardless of
// volume, and buffer management dominates small finite transfers.
func TestModelReproducesProseClaims(t *testing.T) {
	s := sched(t, 4)
	for _, words := range []int{16, 1024, 65532} {
		prm := Params{MessageWords: words, OutOfOrder: HalfOutOfOrder(s, words), AckGroup: 1}
		b, err := IndefiniteCMAM(s, prm)
		if err != nil {
			t.Fatal(err)
		}
		oh := b.Overhead()
		if oh < 0.65 || oh > 0.75 {
			t.Errorf("indefinite overhead at %d words = %.3f, want ~0.70", words, oh)
		}
	}
	// Group acknowledgements leave overhead significant (~40-50%).
	prm := Params{MessageWords: 1024, OutOfOrder: 128, AckGroup: 16}
	b, err := IndefiniteCMAM(s, prm)
	if err != nil {
		t.Fatal(err)
	}
	if oh := b.Overhead(); oh < 0.40 || oh > 0.60 {
		t.Errorf("grouped-ack overhead = %.3f, want 0.40-0.60", oh)
	}
	// Large finite transfers: messaging overhead ~10%.
	fb, err := FiniteCMAM(s, Params{MessageWords: 1024, AckGroup: 1})
	if err != nil {
		t.Fatal(err)
	}
	if oh := fb.Overhead(); oh < 0.08 || oh > 0.15 {
		t.Errorf("finite 1024w overhead = %.3f, want ~0.10-0.13", oh)
	}
}

// Figure 6: the CR implementations cost the CMAM base (slightly less at the
// destination), improving finite transfers by 10-50% by size and
// indefinite transfers by ~70%.
func TestModelReproducesFigure6(t *testing.T) {
	s := sched(t, 4)
	for _, tc := range []struct {
		words   int
		loCut   float64 // minimum expected improvement
		hiCut   float64 // maximum expected improvement
		protoCM Protocol
		protoCR Protocol
	}{
		{16, 0.45, 0.60, ProtoFiniteCMAM, ProtoFiniteCR},
		{1024, 0.10, 0.20, ProtoFiniteCMAM, ProtoFiniteCR},
		{16, 0.65, 0.75, ProtoIndefiniteCMAM, ProtoIndefiniteCR},
		{1024, 0.65, 0.75, ProtoIndefiniteCMAM, ProtoIndefiniteCR},
	} {
		prm := Params{MessageWords: tc.words, OutOfOrder: HalfOutOfOrder(s, tc.words), AckGroup: 1}
		cm, err := Evaluate(tc.protoCM, s, prm)
		if err != nil {
			t.Fatal(err)
		}
		cr, err := Evaluate(tc.protoCR, s, prm)
		if err != nil {
			t.Fatal(err)
		}
		improvement := 1 - float64(cr.Total().Total())/float64(cm.Total().Total())
		if improvement < tc.loCut || improvement > tc.hiCut {
			t.Errorf("%s->%s at %d words: improvement %.3f outside [%.2f, %.2f]",
				tc.protoCM, tc.protoCR, tc.words, improvement, tc.loCut, tc.hiCut)
		}
		// CR never charges in-order or fault-tolerance software.
		if !cr.FeatureTotal(cost.InOrder).IsZero() || !cr.FeatureTotal(cost.FaultTol).IsZero() {
			t.Errorf("%s charges overhead features", tc.protoCR)
		}
	}
}

// Figure 8 (right): for a 1024-word message as packet size goes 4 -> 128,
// finite overhead stays in single digits to low teens while indefinite
// overhead remains large (declining from ~70% toward ~50%).
func TestOverheadSweepFigure8(t *testing.T) {
	sizes := []int{4, 8, 16, 32, 64, 128}
	fin, err := OverheadSweep(ProtoFiniteCMAM, 1024, sizes)
	if err != nil {
		t.Fatal(err)
	}
	ind, err := OverheadSweep(ProtoIndefiniteCMAM, 1024, sizes)
	if err != nil {
		t.Fatal(err)
	}
	for i, n := range sizes {
		if fin[i].PacketWords != n || ind[i].PacketWords != n {
			t.Fatalf("sweep points out of order")
		}
		if fin[i].Overhead < 0.05 || fin[i].Overhead > 0.15 {
			t.Errorf("finite overhead at n=%d is %.3f, want 0.05-0.15", n, fin[i].Overhead)
		}
		if ind[i].Overhead < 0.45 || ind[i].Overhead > 0.72 {
			t.Errorf("indefinite overhead at n=%d is %.3f, want 0.45-0.72", n, ind[i].Overhead)
		}
	}
	// Overheads decline with packet size but indefinite stays significant.
	if !(ind[0].Overhead > ind[len(ind)-1].Overhead) {
		t.Error("indefinite overhead should decline with packet size")
	}
	if ind[len(ind)-1].Overhead < 0.40 {
		t.Error("indefinite overhead should remain significant at n=128")
	}
	// Totals shrink as packets get larger (fewer per-packet overheads).
	if !(fin[0].Total > fin[len(fin)-1].Total) {
		t.Error("finite total should shrink with packet size")
	}
}

// Section 5: an improved (on-chip) NI reduces base cost, which makes the
// messaging-layer overhead a larger fraction — the paper's paradox.
func TestImprovedNIRaisesOverheadFraction(t *testing.T) {
	s := sched(t, 4)
	im := s.WithImprovedNI(4)
	prm := Params{MessageWords: 1024, OutOfOrder: 128, AckGroup: 1}
	base, err := IndefiniteCMAM(s, prm)
	if err != nil {
		t.Fatal(err)
	}
	fast, err := IndefiniteCMAM(im, prm)
	if err != nil {
		t.Fatal(err)
	}
	if !(fast.Total().Total() < base.Total().Total()) {
		t.Error("improved NI should reduce total cost")
	}
	if !(fast.Overhead() > base.Overhead()) {
		t.Errorf("improved NI should raise the overhead fraction: %.3f vs %.3f",
			fast.Overhead(), base.Overhead())
	}
}

// Appendix A's weighted model: with dev accesses at five cycles the
// overhead fractions shift but the story is unchanged.
func TestWeightedOverhead(t *testing.T) {
	s := sched(t, 4)
	prm := Params{MessageWords: 1024, OutOfOrder: 128, AckGroup: 1}
	b, err := IndefiniteCMAM(s, prm)
	if err != nil {
		t.Fatal(err)
	}
	unit := b.WeightedOverhead(cost.Unit)
	cm5 := b.WeightedOverhead(cost.CM5)
	if math.Abs(unit-b.Overhead()) > 1e-12 {
		t.Errorf("unit-weighted overhead %f != unweighted %f", unit, b.Overhead())
	}
	if cm5 < 0.4 || cm5 > 0.8 {
		t.Errorf("cm5-weighted overhead = %f", cm5)
	}
}

func TestParamValidation(t *testing.T) {
	s := sched(t, 4)
	if _, err := FiniteCMAM(s, Params{MessageWords: 0}); err == nil {
		t.Error("accepted zero-word message")
	}
	if _, err := IndefiniteCMAM(s, Params{MessageWords: 16, OutOfOrder: 10}); err == nil {
		t.Error("accepted more out-of-order packets than packets")
	}
	if _, err := IndefiniteCMAM(s, Params{MessageWords: 16, OutOfOrder: -1}); err == nil {
		t.Error("accepted negative out-of-order count")
	}
	if _, err := IndefiniteCMAM(s, Params{MessageWords: 16, AckGroup: -2}); err == nil {
		t.Error("accepted negative ack group")
	}
	if _, err := Evaluate(Protocol(99), s, Params{MessageWords: 16}); err == nil {
		t.Error("accepted unknown protocol")
	}
	if _, err := OverheadSweep(ProtoFiniteCMAM, 1024, []int{3}); err == nil {
		t.Error("accepted odd packet size in sweep")
	}
}

func TestProtocolString(t *testing.T) {
	names := map[Protocol]string{
		ProtoFiniteCMAM:     "finite (CMAM)",
		ProtoIndefiniteCMAM: "indefinite (CMAM)",
		ProtoFiniteCR:       "finite (CR)",
		ProtoIndefiniteCR:   "indefinite (CR)",
	}
	for p, want := range names {
		if p.String() != want {
			t.Errorf("%d.String() = %q", p, p.String())
		}
	}
	if !strings.HasPrefix(Protocol(9).String(), "Protocol(") {
		t.Error("unknown protocol string")
	}
}

func TestFormulaRendersLinearDecomposition(t *testing.T) {
	s := sched(t, 4)
	out, err := Formula(ProtoFiniteCMAM, s)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"finite (CMAM)", "Base Cost", "Buffer Mgmt.", "p*{reg:15 mem:2 dev:5}"} {
		if !strings.Contains(out, want) {
			t.Errorf("Formula output missing %q:\n%s", want, out)
		}
	}
}

// Property: the model is exactly linear — evaluating at p packets equals
// the fixed part plus p times the marginal packet, for every cell and any
// message size.
func TestModelLinearityProperty(t *testing.T) {
	s := sched(t, 4)
	prop := func(raw uint16, protoRaw uint8) bool {
		words := int(raw%4096)*4 + 4 // multiples of the packet size
		proto := Protocol(protoRaw % 4)
		p := uint64(Packets(s, words))
		prm := Params{MessageWords: words, OutOfOrder: 0, AckGroup: 1}
		b, err := Evaluate(proto, s, prm)
		if err != nil {
			return false
		}
		one, err := Evaluate(proto, s, Params{MessageWords: s.PacketWords, AckGroup: 1})
		if err != nil {
			return false
		}
		two, err := Evaluate(proto, s, Params{MessageWords: 2 * s.PacketWords, AckGroup: 1})
		if err != nil {
			return false
		}
		perPkt := two.Total().Sub(one.Total())
		fixed := one.Total().Sub(perPkt)
		return b.Total() == fixed.Add(perPkt.Scale(p))
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// Protocol selection crossover: for one-packet messages the
// indefinite-sequence protocol (no handshake) is cheaper, but the finite
// protocol's fixed costs amortize within a few packets — the crossover
// falls between one and four packets at n = 4.
func TestProtocolCrossover(t *testing.T) {
	s := sched(t, 4)
	// Sanity: at 4 words finite is more expensive than indefinite.
	one := Params{MessageWords: 4, OutOfOrder: 0, AckGroup: 1}
	fin, err := FiniteCMAM(s, one)
	if err != nil {
		t.Fatal(err)
	}
	ind, err := IndefiniteCMAM(s, one)
	if err != nil {
		t.Fatal(err)
	}
	if fin.Total().Total() <= ind.Total().Total() {
		t.Fatalf("expected indefinite to win at one packet: finite %d vs indefinite %d",
			fin.Total().Total(), ind.Total().Total())
	}

	words, ok := CrossoverWords(ProtoFiniteCMAM, ProtoIndefiniteCMAM, s, 4096)
	if !ok {
		t.Fatal("no crossover found")
	}
	if words <= 4 || words > 16 {
		t.Errorf("finite/indefinite crossover at %d words, expected within (4, 16]", words)
	}
	// At and beyond the crossover, finite stays cheaper (per-packet
	// advantage grows with size).
	for _, w := range []int{words, 64, 1024} {
		prm := Params{MessageWords: w, OutOfOrder: HalfOutOfOrder(s, w), AckGroup: 1}
		f, _ := FiniteCMAM(s, prm)
		i, _ := IndefiniteCMAM(s, prm)
		if f.Total().Total() > i.Total().Total() {
			t.Errorf("finite more expensive at %d words", w)
		}
	}
	// CR stream beats everything at any size; no crossover against it.
	if _, ok := CrossoverWords(ProtoFiniteCMAM, ProtoIndefiniteCR, s, 1024); ok {
		t.Error("CMAM finite should never undercut the CR stream")
	}
}
