// Package analytic provides the closed-form generalization of the paper's
// cost model (Figure 8): end-to-end messaging cost as a function of the
// hardware packet payload size n, the packet count p, the fraction of
// packets arriving out of order, and the acknowledgement group size.
//
// The model is evaluated over the same calibration schedule the simulator
// charges, so the two agree exactly wherever the protocol's event counts
// match the model's assumptions; the experiments cross-validate this.
package analytic

import (
	"fmt"

	"msglayer/internal/cost"
)

// Params describe one modeled transfer.
type Params struct {
	// MessageWords is the total data volume transmitted.
	MessageWords int
	// OutOfOrder is the number of packets arriving out of transmission
	// order (each is buffered at the receiver and later drained). The
	// paper's Table 2 assumes half.
	OutOfOrder int
	// AckGroup is the group-acknowledgement size g (>= 1); the paper's
	// tables use 1.
	AckGroup int
}

// Breakdown is a role × feature cost table, the shape of Table 2.
type Breakdown map[cost.Role]map[cost.Feature]cost.Vec

// Packets returns p, the number of hardware packets a message needs.
func Packets(s *cost.Schedule, messageWords int) int {
	n := s.PacketWords
	return (messageWords + n - 1) / n
}

// HalfOutOfOrder returns the paper's Table 2 assumption for a message:
// half the packets (rounded down) arrive out of order.
func HalfOutOfOrder(s *cost.Schedule, messageWords int) int {
	return Packets(s, messageWords) / 2
}

func (p Params) validate(s *cost.Schedule) (packets uint64, ooo uint64, g uint64, err error) {
	if p.MessageWords <= 0 {
		return 0, 0, 0, fmt.Errorf("analytic: message of %d words", p.MessageWords)
	}
	pk := Packets(s, p.MessageWords)
	if p.OutOfOrder < 0 || p.OutOfOrder > pk {
		return 0, 0, 0, fmt.Errorf("analytic: %d out-of-order packets of %d", p.OutOfOrder, pk)
	}
	if p.AckGroup == 0 {
		p.AckGroup = 1
	}
	if p.AckGroup < 0 {
		return 0, 0, 0, fmt.Errorf("analytic: acknowledgement group %d", p.AckGroup)
	}
	return uint64(pk), uint64(p.OutOfOrder), uint64(p.AckGroup), nil
}

// SingleCMAM returns the Table 1 breakdown: one packet, base cost only.
func SingleCMAM(s *cost.Schedule) Breakdown {
	return Breakdown{
		cost.Source:      {cost.Base: s.SendSingle.Vec()},
		cost.Destination: {cost.Base: s.RecvSingle.Vec()},
	}
}

// FiniteCMAM models the finite-sequence multi-packet protocol on the CM-5
// substrate: fixed and per-packet base costs, the fixed buffer-management
// handshake, per-packet offset bookkeeping, and one acknowledgement.
// Arrival order does not matter (carried offsets), so OutOfOrder is
// ignored, as is AckGroup (there is exactly one acknowledgement).
func FiniteCMAM(s *cost.Schedule, prm Params) (Breakdown, error) {
	p, _, _, err := prm.validate(s)
	if err != nil {
		return nil, err
	}
	bufSrc := s.AllocRequestSend.Vec().Add(s.AllocReplyRecv.Vec())
	bufDst := s.AllocRequestRecv.Vec().
		Add(s.SegmentAllocate.Vec()).
		Add(s.AllocReplySend.Vec()).
		Add(s.SegmentDeallocate.Vec())
	return Breakdown{
		cost.Source: {
			cost.Base:       s.XferSendFixed.Vec().Add(s.XferSendPacket.Vec().Scale(p)),
			cost.BufferMgmt: bufSrc,
			cost.InOrder:    s.OffsetPerPacket.Vec().Scale(p),
			cost.FaultTol:   s.XferAckRecv.Vec(),
		},
		cost.Destination: {
			cost.Base:       s.XferRecvFixed.Vec().Add(s.XferRecvPacket.Vec().Scale(p)),
			cost.BufferMgmt: bufDst,
			cost.InOrder:    s.OffsetTrackFixed.Vec().Add(s.OffsetTrackPacket.Vec().Scale(p)),
			cost.FaultTol:   s.XferAckSend.Vec(),
		},
	}, nil
}

// IndefiniteCMAM models the indefinite-sequence protocol on the CM-5
// substrate: per-packet base costs, sequence numbers and reorder buffering
// for in-order delivery, and source buffering plus (grouped)
// acknowledgements for fault tolerance.
func IndefiniteCMAM(s *cost.Schedule, prm Params) (Breakdown, error) {
	p, ooo, g, err := prm.validate(s)
	if err != nil {
		return nil, err
	}
	acks := p / g // the tail short group is acknowledged with the next data
	inOrderArrivals := p - ooo
	return Breakdown{
		cost.Source: {
			cost.Base:    s.StreamSendPacket.Vec().Scale(p),
			cost.InOrder: s.SeqPerPacket.Vec().Scale(p),
			cost.FaultTol: s.SourceBufferPacket.Vec().Scale(p).
				Add(s.StreamAckRecv.Vec().Scale(acks)),
		},
		cost.Destination: {
			cost.Base: s.StreamRecvFixed.Vec().Add(s.StreamRecvPacket.Vec().Scale(p)),
			cost.InOrder: s.InOrderArrival.Vec().Scale(inOrderArrivals).
				Add(s.OutOfOrderArrival.Vec().Scale(ooo)).
				Add(s.DrainBuffered.Vec().Scale(ooo)),
			cost.FaultTol: s.StreamAckSend.Vec().Scale(acks),
		},
	}, nil
}

// FiniteCR models the finite-sequence protocol on the Compressionless-
// Routing substrate (Figure 5): base costs plus a pointer store.
func FiniteCR(s *cost.Schedule, prm Params) (Breakdown, error) {
	p, _, _, err := prm.validate(s)
	if err != nil {
		return nil, err
	}
	return Breakdown{
		cost.Source: {
			cost.Base: s.CRXferSendFixed.Vec().Add(s.CRXferSendPacket.Vec().Scale(p)),
		},
		cost.Destination: {
			cost.Base: s.CRXferRecvFixed.Vec().
				Add(s.CRXferRecvPacket.Vec().Scale(p)).
				Add(s.CRLastPacket.Vec()),
			cost.BufferMgmt: s.CRBufferRegister.Vec(),
		},
	}, nil
}

// IndefiniteCR models the indefinite-sequence protocol on the CR substrate
// (Figure 7): bare packet transmissions.
func IndefiniteCR(s *cost.Schedule, prm Params) (Breakdown, error) {
	p, _, _, err := prm.validate(s)
	if err != nil {
		return nil, err
	}
	return Breakdown{
		cost.Source: {
			cost.Base: s.CRStreamSend.Vec().Scale(p),
		},
		cost.Destination: {
			cost.Base: s.CRStreamRecvFixed.Vec().Add(s.CRStreamRecv.Vec().Scale(p)),
		},
	}, nil
}

// RoleTotal sums a breakdown column.
func (b Breakdown) RoleTotal(r cost.Role) cost.Vec {
	var v cost.Vec
	for _, cell := range b[r] {
		v = v.Add(cell)
	}
	return v
}

// FeatureTotal sums a breakdown row across roles.
func (b Breakdown) FeatureTotal(f cost.Feature) cost.Vec {
	var v cost.Vec
	for _, features := range b {
		v = v.Add(features[f])
	}
	return v
}

// Total sums the whole breakdown.
func (b Breakdown) Total() cost.Vec {
	return b.RoleTotal(cost.Source).Add(b.RoleTotal(cost.Destination))
}

// Overhead returns the messaging-layer overhead fraction — everything that
// is not base cost, as a fraction of the total — the y-axis of Figure 8's
// right-hand plot.
func (b Breakdown) Overhead() float64 {
	total := b.Total().Total()
	if total == 0 {
		return 0
	}
	base := b.FeatureTotal(cost.Base).Total()
	return 1 - float64(base)/float64(total)
}

// WeightedOverhead is Overhead under a cycle-cost model (Appendix A).
func (b Breakdown) WeightedOverhead(m cost.Model) float64 {
	total := m.Cost(b.Total())
	if total == 0 {
		return 0
	}
	base := m.Cost(b.FeatureTotal(cost.Base))
	return 1 - float64(base)/float64(total)
}

// SweepPoint is one x/y pair of Figure 8's right-hand plot.
type SweepPoint struct {
	PacketWords int
	Packets     int
	Total       uint64
	Overhead    float64
}

// Protocol selects a modeled protocol for sweeps.
type Protocol int

// Protocols available to OverheadSweep.
const (
	ProtoFiniteCMAM Protocol = iota
	ProtoIndefiniteCMAM
	ProtoFiniteCR
	ProtoIndefiniteCR
)

// String names the protocol as in the paper's legends.
func (p Protocol) String() string {
	switch p {
	case ProtoFiniteCMAM:
		return "finite (CMAM)"
	case ProtoIndefiniteCMAM:
		return "indefinite (CMAM)"
	case ProtoFiniteCR:
		return "finite (CR)"
	case ProtoIndefiniteCR:
		return "indefinite (CR)"
	default:
		return fmt.Sprintf("Protocol(%d)", int(p))
	}
}

// Evaluate models the protocol under the schedule and parameters.
func Evaluate(proto Protocol, s *cost.Schedule, prm Params) (Breakdown, error) {
	switch proto {
	case ProtoFiniteCMAM:
		return FiniteCMAM(s, prm)
	case ProtoIndefiniteCMAM:
		return IndefiniteCMAM(s, prm)
	case ProtoFiniteCR:
		return FiniteCR(s, prm)
	case ProtoIndefiniteCR:
		return IndefiniteCR(s, prm)
	default:
		return nil, fmt.Errorf("analytic: unknown protocol %d", proto)
	}
}

// OverheadSweep reproduces Figure 8 (right): the messaging overhead for a
// fixed message size as the hardware packet payload varies, keeping the
// paper's half-out-of-order assumption. The schedule for each point is the
// paper calibration regenerated at that packet size.
func OverheadSweep(proto Protocol, messageWords int, packetSizes []int) ([]SweepPoint, error) {
	points := make([]SweepPoint, 0, len(packetSizes))
	for _, n := range packetSizes {
		s, err := cost.NewPaperSchedule(n)
		if err != nil {
			return nil, err
		}
		prm := Params{
			MessageWords: messageWords,
			OutOfOrder:   HalfOutOfOrder(s, messageWords),
			AckGroup:     1,
		}
		b, err := Evaluate(proto, s, prm)
		if err != nil {
			return nil, err
		}
		points = append(points, SweepPoint{
			PacketWords: n,
			Packets:     Packets(s, messageWords),
			Total:       b.Total().Total(),
			Overhead:    b.Overhead(),
		})
	}
	return points, nil
}

// Formula renders the Figure 8 (left) generalized symbolic breakdown for a
// protocol: per-cell cost as fixed + p·(per-packet) vectors in terms of n.
// It is exact for the paper schedule at any even n because the schedule's
// data-movement terms scale as n/2 with all other coefficients constant.
func Formula(proto Protocol, s *cost.Schedule) (string, error) {
	prmOne := Params{MessageWords: s.PacketWords, OutOfOrder: 0, AckGroup: 1}
	one, err := Evaluate(proto, s, prmOne)
	if err != nil {
		return "", err
	}
	prmTwo := Params{MessageWords: 2 * s.PacketWords, OutOfOrder: 0, AckGroup: 1}
	two, err := Evaluate(proto, s, prmTwo)
	if err != nil {
		return "", err
	}
	out := fmt.Sprintf("%s, packet payload n=%d words, p packets:\n", proto, s.PacketWords)
	for _, r := range cost.Roles() {
		for _, f := range cost.Features() {
			a, b := one[r][f], two[r][f]
			per := b.Sub(a) // per-packet vector
			fixed := a.Sub(per)
			if fixed.IsZero() && per.IsZero() {
				continue
			}
			out += fmt.Sprintf("  %-12s %-14s %v + p*%v\n", r, f, fixed, per)
		}
	}
	return out, nil
}

// CrossoverWords finds the smallest message size (in words, stepping one
// packet at a time) at which protocol a becomes at least as cheap as
// protocol b under the schedule and the paper's half-out-of-order
// assumption, searching up to maxWords. It answers the "where do the
// crossovers fall" question for protocol selection: very small messages
// favor the handshake-free indefinite protocol, and the finite protocol's
// per-transfer costs amortize quickly.
func CrossoverWords(a, b Protocol, s *cost.Schedule, maxWords int) (int, bool) {
	n := s.PacketWords
	for words := n; words <= maxWords; words += n {
		prm := Params{
			MessageWords: words,
			OutOfOrder:   HalfOutOfOrder(s, words),
			AckGroup:     1,
		}
		ba, err := Evaluate(a, s, prm)
		if err != nil {
			return 0, false
		}
		bb, err := Evaluate(b, s, prm)
		if err != nil {
			return 0, false
		}
		if ba.Total().Total() <= bb.Total().Total() {
			return words, true
		}
	}
	return 0, false
}
