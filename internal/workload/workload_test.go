package workload

import (
	"testing"
	"testing/quick"
)

func rngFrom(seed uint64) func() uint64 {
	s := seed
	return func() uint64 {
		s = s*6364136223846793005 + 1442695040888963407
		return s >> 33
	}
}

func TestUniformNeverSelf(t *testing.T) {
	rng := rngFrom(1)
	for i := 0; i < 2000; i++ {
		src := i % 16
		dst, ok := (Uniform{}).Dest(src, 16, rng)
		if !ok {
			t.Fatal("uniform produced no destination")
		}
		if dst == src || dst < 0 || dst >= 16 {
			t.Fatalf("dst = %d for src %d", dst, src)
		}
	}
	if _, ok := (Uniform{}).Dest(0, 1, rng); ok {
		t.Error("uniform on a 1-node machine produced traffic")
	}
}

func TestUniformCoversAllDestinations(t *testing.T) {
	rng := rngFrom(7)
	seen := map[int]bool{}
	for i := 0; i < 500; i++ {
		dst, _ := (Uniform{}).Dest(3, 8, rng)
		seen[dst] = true
	}
	if len(seen) != 7 {
		t.Errorf("uniform reached %d of 7 destinations", len(seen))
	}
}

func TestHotspotBias(t *testing.T) {
	h := Hotspot{Node: 5, Permille: 800}
	rng := rngFrom(3)
	hot := 0
	const trials = 3000
	for i := 0; i < trials; i++ {
		dst, ok := h.Dest(1, 16, rng)
		if !ok {
			t.Fatal("no destination")
		}
		if dst == 5 {
			hot++
		}
	}
	// ~80% biased plus uniform spillover; allow slack.
	if hot < trials*7/10 {
		t.Errorf("hotspot received %d of %d", hot, trials)
	}
	// The hot node itself falls back to uniform.
	dst, ok := h.Dest(5, 16, rng)
	if !ok || dst == 5 {
		t.Errorf("hot node sent to %d, %v", dst, ok)
	}
}

func TestTranspose(t *testing.T) {
	// 16 nodes = 4x4 grid: node 1 = (1,0) -> (0,1) = node 4.
	dst, ok := (Transpose{}).Dest(1, 16, nil)
	if !ok || dst != 4 {
		t.Errorf("transpose(1) = %d, %v", dst, ok)
	}
	// Diagonal generates nothing.
	if _, ok := (Transpose{}).Dest(5, 16, nil); ok {
		t.Error("diagonal node produced traffic")
	}
	// Non-square machines generate nothing.
	if _, ok := (Transpose{}).Dest(0, 12, nil); ok {
		t.Error("non-square transpose produced traffic")
	}
}

func TestBitComplement(t *testing.T) {
	dst, ok := (BitComplement{}).Dest(0b0011, 16, nil)
	if !ok || dst != 0b1100 {
		t.Errorf("complement = %b", dst)
	}
	if _, ok := (BitComplement{}).Dest(0, 12, nil); ok {
		t.Error("non-power-of-two complement produced traffic")
	}
}

func TestNearestNeighbor(t *testing.T) {
	if dst, ok := (NearestNeighbor{}).Dest(7, 8, nil); !ok || dst != 0 {
		t.Errorf("neighbor(7) = %d", dst)
	}
	if _, ok := (NearestNeighbor{}).Dest(0, 1, nil); ok {
		t.Error("1-node neighbor produced traffic")
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"uniform", "transpose", "bitcomplement", "neighbor", "hotspot"} {
		p, err := ByName(name)
		if err != nil {
			t.Errorf("%s: %v", name, err)
		}
		if p == nil {
			t.Errorf("%s: nil pattern", name)
		}
	}
	p, err := ByName("hotspot:3:250")
	if err != nil {
		t.Fatal(err)
	}
	h, ok := p.(Hotspot)
	if !ok || h.Node != 3 || h.Permille != 250 {
		t.Errorf("parsed hotspot = %+v", p)
	}
	for _, bad := range []string{"", "ring", "hotspot:x", "hotspot:1:2000"} {
		if _, err := ByName(bad); err == nil {
			t.Errorf("ByName(%q) accepted", bad)
		}
	}
}

func TestGeneratorValidation(t *testing.T) {
	if _, err := NewGenerator(nil, 4, 0.1, 1); err == nil {
		t.Error("nil pattern accepted")
	}
	if _, err := NewGenerator(Uniform{}, 0, 0.1, 1); err == nil {
		t.Error("zero nodes accepted")
	}
	for _, load := range []float64{0, -0.5, 1.5} {
		if _, err := NewGenerator(Uniform{}, 4, load, 1); err == nil {
			t.Errorf("load %g accepted", load)
		}
	}
}

func TestGeneratorRateAndDeterminism(t *testing.T) {
	run := func() (int, []Arrival) {
		g, err := NewGenerator(Uniform{}, 16, 0.25, 99)
		if err != nil {
			t.Fatal(err)
		}
		total := 0
		var first []Arrival
		for c := 0; c < 2000; c++ {
			arr := g.Cycle()
			if c == 0 {
				first = arr
			}
			total += len(arr)
		}
		return total, first
	}
	totalA, firstA := run()
	totalB, firstB := run()
	if totalA != totalB || len(firstA) != len(firstB) {
		t.Fatal("generator not deterministic")
	}
	// Expected arrivals: 16 nodes * 2000 cycles * 0.25 = 8000 +- noise.
	if totalA < 7200 || totalA > 8800 {
		t.Errorf("arrivals = %d, want about 8000", totalA)
	}
}

// Property: every generated arrival is a valid, non-self pair, for any
// pattern and machine size.
func TestGeneratorProperty(t *testing.T) {
	patterns := []Pattern{Uniform{}, Hotspot{Node: 1, Permille: 300}, NearestNeighbor{}}
	prop := func(nodesRaw uint8, seed int16, pRaw uint8) bool {
		nodes := int(nodesRaw%30) + 2
		g, err := NewGenerator(patterns[int(pRaw)%len(patterns)], nodes, 0.5, int64(seed))
		if err != nil {
			return false
		}
		for c := 0; c < 50; c++ {
			for _, a := range g.Cycle() {
				if a.Src < 0 || a.Src >= nodes || a.Dst < 0 || a.Dst >= nodes || a.Src == a.Dst {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
