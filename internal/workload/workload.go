// Package workload provides the classic synthetic traffic patterns of
// interconnection-network evaluation — uniform random, hotspot, transpose,
// bit complement, and nearest neighbor — behind a seeded, deterministic
// generator. The netload tool and the network experiments share these
// patterns, mirroring how the routing literature the paper engages with
// ([8], [18], [23]) evaluates networks.
package workload

import (
	"fmt"
	"strings"
)

// Pattern maps a source node to a destination for one generated packet.
// Implementations must be deterministic given the generator's state.
type Pattern interface {
	// Name identifies the pattern ("uniform", "hotspot", ...).
	Name() string
	// Dest picks the destination for a packet from src in an n-node
	// machine, drawing randomness from rng as needed. ok is false when
	// the pattern generates no traffic for this source (for example the
	// hotspot node itself, or a fixed pattern mapping a node to itself).
	Dest(src, n int, rng func() uint64) (dst int, ok bool)
}

// Uniform sends each packet to a destination chosen uniformly at random
// among the other nodes.
type Uniform struct{}

// Name implements Pattern.
func (Uniform) Name() string { return "uniform" }

// Dest implements Pattern.
func (Uniform) Dest(src, n int, rng func() uint64) (int, bool) {
	if n < 2 {
		return 0, false
	}
	dst := int(rng()) % (n - 1)
	if dst >= src {
		dst++
	}
	return dst, true
}

// Hotspot sends a fraction of traffic to one hot node and the rest
// uniformly — the contention pattern behind the reorder demonstrations.
type Hotspot struct {
	// Node is the hot destination.
	Node int
	// Permille is the share of packets aimed at the hot node, in 1/1000.
	Permille int
}

// Name implements Pattern.
func (h Hotspot) Name() string { return fmt.Sprintf("hotspot(%d,%d‰)", h.Node, h.Permille) }

// Dest implements Pattern.
func (h Hotspot) Dest(src, n int, rng func() uint64) (int, bool) {
	if n < 2 {
		return 0, false
	}
	hot := h.Node % n
	if int(rng()%1000) < h.Permille && src != hot {
		return hot, true
	}
	return Uniform{}.Dest(src, n, rng)
}

// Transpose sends node (x, y) to node (y, x) on the square grid implied by
// the node count (matrix-transpose communication). Nodes on the diagonal
// generate no traffic.
type Transpose struct{}

// Name implements Pattern.
func (Transpose) Name() string { return "transpose" }

// Dest implements Pattern.
func (Transpose) Dest(src, n int, _ func() uint64) (int, bool) {
	side := 1
	for side*side < n {
		side++
	}
	if side*side != n {
		return 0, false // not a square machine
	}
	x, y := src%side, src/side
	dst := x*side + y
	return dst, dst != src
}

// BitComplement sends each node to its bitwise complement within the
// machine size (which must be a power of two) — the canonical worst case
// for dimension-order routing.
type BitComplement struct{}

// Name implements Pattern.
func (BitComplement) Name() string { return "bitcomplement" }

// Dest implements Pattern.
func (BitComplement) Dest(src, n int, _ func() uint64) (int, bool) {
	if n&(n-1) != 0 || n < 2 {
		return 0, false
	}
	return (n - 1) ^ src, true
}

// NearestNeighbor sends each node to its successor modulo the machine size
// — the benign pattern that loads every link equally.
type NearestNeighbor struct{}

// Name implements Pattern.
func (NearestNeighbor) Name() string { return "neighbor" }

// Dest implements Pattern.
func (NearestNeighbor) Dest(src, n int, _ func() uint64) (int, bool) {
	if n < 2 {
		return 0, false
	}
	return (src + 1) % n, true
}

// ByName resolves a pattern from its command-line name. Hotspot accepts
// "hotspot" (node 0, 500 permille) or "hotspot:<node>:<permille>".
func ByName(name string) (Pattern, error) {
	switch {
	case name == "uniform":
		return Uniform{}, nil
	case name == "transpose":
		return Transpose{}, nil
	case name == "bitcomplement":
		return BitComplement{}, nil
	case name == "neighbor":
		return NearestNeighbor{}, nil
	case name == "hotspot":
		return Hotspot{Node: 0, Permille: 500}, nil
	case strings.HasPrefix(name, "hotspot:"):
		var node, permille int
		if _, err := fmt.Sscanf(name, "hotspot:%d:%d", &node, &permille); err != nil {
			return nil, fmt.Errorf("workload: bad hotspot spec %q (want hotspot:<node>:<permille>)", name)
		}
		if permille < 0 || permille > 1000 {
			return nil, fmt.Errorf("workload: hotspot permille %d out of range", permille)
		}
		return Hotspot{Node: node, Permille: permille}, nil
	default:
		return nil, fmt.Errorf("workload: unknown pattern %q", name)
	}
}

// Generator produces a deterministic packet arrival process: each node
// offers load packets-per-cycle (Bernoulli per cycle) with destinations
// drawn from the pattern.
type Generator struct {
	pattern Pattern
	nodes   int
	gate    uint64 // injection threshold out of 2^31
	rng     uint64
}

// NewGenerator builds a generator; load is packets per node per cycle in
// (0, 1].
func NewGenerator(p Pattern, nodes int, load float64, seed int64) (*Generator, error) {
	if p == nil {
		return nil, fmt.Errorf("workload: nil pattern")
	}
	if nodes < 1 {
		return nil, fmt.Errorf("workload: %d nodes", nodes)
	}
	if load <= 0 || load > 1 {
		return nil, fmt.Errorf("workload: load %g out of (0, 1]", load)
	}
	return &Generator{
		pattern: p,
		nodes:   nodes,
		gate:    uint64(load * float64(uint64(1)<<31)),
		rng:     uint64(seed)*2654435761 + 1,
	}, nil
}

func (g *Generator) next() uint64 {
	g.rng = g.rng*6364136223846793005 + 1442695040888963407
	return g.rng >> 33
}

// Arrival is one generated packet.
type Arrival struct {
	Src, Dst int
}

// Cycle returns the packets arriving in one cycle (at most one per node).
func (g *Generator) Cycle() []Arrival {
	var out []Arrival
	for src := 0; src < g.nodes; src++ {
		if g.next()&0x7fffffff >= g.gate {
			continue
		}
		dst, ok := g.pattern.Dest(src, g.nodes, g.next)
		if !ok || dst == src {
			continue
		}
		out = append(out, Arrival{Src: src, Dst: dst})
	}
	return out
}
