package crmsg

import (
	"errors"
	"fmt"

	"msglayer/internal/cmam"
	"msglayer/internal/cost"
	"msglayer/internal/network"
)

// StreamConfig tunes a CR stream service.
type StreamConfig struct {
	// OnDeliver is the user handler invoked, in transmission order, for
	// every delivered packet. Order and reliability are hardware
	// guarantees here, so the software adds nothing to get them.
	OnDeliver func(src int, ch uint8, data []network.Word)
}

// Stream is the per-node CR indefinite-sequence service (Figure 7): the
// protocol is "implemented essentially for free on top of multiple
// single-packet transmissions" — no sequence numbers, no reorder buffering,
// no source buffering, no acknowledgements.
type Stream struct {
	ep  *cmam.Endpoint
	cfg StreamConfig

	out  map[connKey]*Conn
	seen map[connKey]bool // receiver channels whose fixed cost is charged
}

type connKey struct {
	peer int
	ch   uint8
}

// Conn is the source side of one CR channel.
type Conn struct {
	s      *Stream
	dst    int
	ch     uint8
	sendq  [][]network.Word // packets awaiting injection after backpressure
	sent   uint64
	closed bool

	// sendqMsg carries the observability message identity of each queued
	// packet, kept in lockstep with sendq. Empty while untraced.
	sendqMsg []uint64
}

// NewStream installs the CR stream protocol on an endpoint.
func NewStream(ep *cmam.Endpoint, cfg StreamConfig) (*Stream, error) {
	s := &Stream{
		ep:   ep,
		cfg:  cfg,
		out:  make(map[connKey]*Conn),
		seen: make(map[connKey]bool),
	}
	if err := ep.RegisterTag(TagStream, s.sink); err != nil {
		return nil, err
	}
	return s, nil
}

// MustNewStream is NewStream that panics on error.
func MustNewStream(ep *cmam.Endpoint, cfg StreamConfig) *Stream {
	s, err := NewStream(ep, cfg)
	if err != nil {
		panic(err)
	}
	return s
}

func (s *Stream) sched() *cost.Schedule { return s.ep.Node().Sched }

// Open returns the source side of channel ch toward dst.
func (s *Stream) Open(dst int, ch uint8) *Conn {
	key := connKey{dst, ch}
	if c, ok := s.out[key]; ok {
		return c
	}
	c := &Conn{s: s, dst: dst, ch: ch}
	s.out[key] = c
	return c
}

// Send transmits one packet's worth of data. On this substrate a
// successful injection is a delivery guarantee, so there is nothing to
// buffer and nothing to wait for.
func (c *Conn) Send(data ...network.Word) error {
	if c.closed {
		return errors.New("crmsg: send on closed stream")
	}
	if len(data) == 0 || len(data) > c.s.sched().PacketWords {
		return fmt.Errorf("crmsg: stream send of %d words (packet payload is %d)",
			len(data), c.s.sched().PacketWords)
	}
	node := c.s.ep.Node()
	// Each packet is one causal message; a queued packet remembers its
	// identity so the deferred injection attributes to the Send.
	prevMsg := node.Obs.CurrentMsg()
	msg := node.Obs.NewMsg()
	defer node.Obs.SwapMsg(prevMsg)
	node.Charge(cost.Base, c.s.sched().CRStreamSend)
	if len(c.sendq) > 0 {
		// Preserve injection order behind backpressured packets.
		buf := make([]network.Word, len(data))
		copy(buf, data)
		c.enqueue(buf, msg)
		return nil
	}
	err := c.inject(data)
	if errors.Is(err, network.ErrBackpressure) {
		node.Charge(cost.Base, retryProbe)
		buf := make([]network.Word, len(data))
		copy(buf, data)
		c.enqueue(buf, msg)
		return nil
	}
	return err
}

// enqueue appends a backpressured packet and its message identity.
func (c *Conn) enqueue(buf []network.Word, msg uint64) {
	c.sendq = append(c.sendq, buf)
	if msg != 0 || len(c.sendqMsg) > 0 {
		for len(c.sendqMsg) < len(c.sendq)-1 {
			c.sendqMsg = append(c.sendqMsg, 0)
		}
		c.sendqMsg = append(c.sendqMsg, msg)
	}
}

// dequeueMsg pops the message identity paired with the head of sendq.
func (c *Conn) dequeueMsg() uint64 {
	if len(c.sendqMsg) == 0 {
		return 0
	}
	msg := c.sendqMsg[0]
	c.sendqMsg = c.sendqMsg[1:]
	return msg
}

func (c *Conn) inject(data []network.Word) error {
	err := c.s.ep.Send(c.dst, TagStream, network.Word(c.ch), data, cost.Base, nil)
	if err == nil {
		c.sent++
		c.s.ep.Node().Event("crstream.packet.sent")
	}
	return err
}

// Idle reports whether every send has been injected.
func (c *Conn) Idle() bool { return len(c.sendq) == 0 }

// Sent returns the number of packets injected so far.
func (c *Conn) Sent() uint64 { return c.sent }

// Close marks the channel closed for further sends.
func (c *Conn) Close() { c.closed = true }

// Pump polls for incoming packets and retries backpressured injections.
func (s *Stream) Pump() error {
	if _, err := s.ep.Poll(0); err != nil {
		return err
	}
	node := s.ep.Node()
	for _, c := range s.out {
		for len(c.sendq) > 0 {
			var headMsg uint64
			if len(c.sendqMsg) > 0 {
				headMsg = c.sendqMsg[0]
			}
			prev := node.Obs.SwapMsg(headMsg)
			err := c.inject(c.sendq[0])
			node.Obs.SwapMsg(prev)
			if errors.Is(err, network.ErrBackpressure) {
				node.Charge(cost.Base, retryProbe)
				break
			}
			if err != nil {
				return err
			}
			c.sendq = c.sendq[1:]
			c.dequeueMsg()
		}
	}
	return nil
}

// Step adapts the service to machine.Stepper semantics: done when every
// connection is idle.
func (s *Stream) Step() (bool, error) {
	if err := s.Pump(); err != nil {
		return false, err
	}
	for _, c := range s.out {
		if !c.Idle() {
			return false, nil
		}
	}
	return true, nil
}

// sink receives stream packets: fixed per-channel setup, then a bare
// extraction and handler dispatch per packet.
func (s *Stream) sink(src int, head network.Word, data []network.Word) error {
	node := s.ep.Node()
	ch := uint8(head)
	key := connKey{src, ch}
	if !s.seen[key] {
		s.seen[key] = true
		node.Charge(cost.Base, s.sched().CRStreamRecvFixed)
	}
	node.Charge(cost.Base, s.sched().CRStreamRecv)
	node.Event("crstream.packet.recv")
	if s.cfg.OnDeliver != nil {
		s.cfg.OnDeliver(src, ch, data)
	}
	return nil
}
