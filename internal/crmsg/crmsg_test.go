package crmsg

import (
	"testing"

	"msglayer/internal/cmam"
	"msglayer/internal/cost"
	"msglayer/internal/machine"
	"msglayer/internal/network"
)

func twoNode(t *testing.T, net network.Network) *machine.Machine {
	t.Helper()
	m := machine.MustNew(net, cost.MustPaperSchedule(net.PacketWords()))
	m.Node(0).SetRole(cost.Source)
	m.Node(1).SetRole(cost.Destination)
	return m
}

func pattern(words int) []network.Word {
	data := make([]network.Word, words)
	for i := range data {
		data[i] = network.Word(i*5 + 1)
	}
	return data
}

func runFinite(t *testing.T, net network.Network, cfg FiniteConfig, words int) (*machine.Machine, []network.Word) {
	t.Helper()
	m := twoNode(t, net)
	var received []network.Word
	onReceive := cfg.OnReceive
	cfg.OnReceive = func(src int, buf []network.Word) {
		received = buf
		if onReceive != nil {
			onReceive(src, buf)
		}
	}
	srcSvc, err := NewFinite(cmam.NewEndpoint(m.Node(0)), net, FiniteConfig{})
	if err != nil {
		t.Fatal(err)
	}
	dstSvc, err := NewFinite(cmam.NewEndpoint(m.Node(1)), net, cfg)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := srcSvc.Start(1, pattern(words))
	if err != nil {
		t.Fatal(err)
	}
	err = machine.Run(100000,
		machine.StepFunc(func() (bool, error) { return tr.Done() && received != nil, srcSvc.Pump() }),
		machine.StepFunc(func() (bool, error) { return tr.Done() && received != nil, dstSvc.Pump() }),
	)
	if err != nil {
		t.Fatal(err)
	}
	return m, received
}

// crFiniteWant returns the expected CR finite-transfer cell values for p
// packets of four words: exactly the CMAM base cost at the source, slightly
// less at the destination, and buffer management reduced to a pointer store.
func crFiniteWant(p uint64) map[cost.Role]map[cost.Feature]cost.Vec {
	return map[cost.Role]map[cost.Feature]cost.Vec{
		cost.Source: {
			cost.Base:       cost.V(2, 1, 0).Add(cost.V(15, 2, 5).Scale(p)),
			cost.BufferMgmt: {},
			cost.InOrder:    {},
			cost.FaultTol:   {},
		},
		cost.Destination: {
			cost.Base:       cost.V(11, 2, 1).Add(cost.V(11, 2, 4).Scale(p)).Add(cost.V(6, 0, 0)),
			cost.BufferMgmt: cost.V(6, 2, 0),
			cost.InOrder:    {},
			cost.FaultTol:   {},
		},
	}
}

func checkCells(t *testing.T, m *machine.Machine, want map[cost.Role]map[cost.Feature]cost.Vec) {
	t.Helper()
	gauges := map[cost.Role]*cost.Gauge{
		cost.Source:      m.Node(0).Gauge,
		cost.Destination: m.Node(1).Gauge,
	}
	for role, features := range want {
		for f, v := range features {
			if got := gauges[role].Cell(role, f); got != v {
				t.Errorf("%s/%s = %v, want %v", role, f, got, v)
			}
		}
	}
}

// Figure 6, finite sequence: the CR implementation costs exactly the CMAM
// base cost (plus a pointer store), eliminating the handshake, the offsets,
// and the acknowledgement. Improvement vs CMAM's 397 at 16 words is ~53%,
// within the paper's 10–50%-by-size band at its small-message end.
func TestCRFinite16Words(t *testing.T) {
	net := network.MustCRNet(network.CRConfig{Nodes: 2})
	m, received := runFinite(t, net, FiniteConfig{}, 16)

	want := pattern(16)
	for i := range want {
		if received[i] != want[i] {
			t.Fatalf("word %d = %d, want %d", i, received[i], want[i])
		}
	}
	checkCells(t, m, crFiniteWant(4))
	total := m.TotalGauge().Total().Total()
	if total != 187 {
		t.Errorf("total = %d, want 187", total)
	}
}

// Figure 6, finite sequence at 1024 words: 10015 vs CMAM's 11737 (~15%
// improvement — the large-message end of the paper's band).
func TestCRFinite1024Words(t *testing.T) {
	net := network.MustCRNet(network.CRConfig{Nodes: 2})
	m, received := runFinite(t, net, FiniteConfig{}, 1024)
	if len(received) != 1024 {
		t.Fatalf("received %d words", len(received))
	}
	checkCells(t, m, crFiniteWant(256))
	total := m.TotalGauge().Total().Total()
	if total != 10015 {
		t.Errorf("total = %d, want 10015", total)
	}
}

// No in-order or fault-tolerance instructions are ever charged on the CR
// substrate — the services are hardware.
func TestCRFiniteChargesNoOverheadFeatures(t *testing.T) {
	net := network.MustCRNet(network.CRConfig{Nodes: 2})
	m, _ := runFinite(t, net, FiniteConfig{}, 64)
	for _, n := range m.Nodes {
		for _, f := range []cost.Feature{cost.InOrder, cost.FaultTol} {
			if got := n.Gauge.Cell(n.Role(), f); !got.IsZero() {
				t.Errorf("node %d charged %v to %s", n.ID, got, f)
			}
		}
	}
}

func TestCRFiniteOddSizes(t *testing.T) {
	for _, words := range []int{1, 5, 17, 103} {
		net := network.MustCRNet(network.CRConfig{Nodes: 2})
		_, received := runFinite(t, net, FiniteConfig{}, words)
		want := pattern(words)
		if len(received) != words {
			t.Fatalf("words=%d: received %d", words, len(received))
		}
		for i := range want {
			if received[i] != want[i] {
				t.Fatalf("words=%d: word %d corrupted", words, i)
			}
		}
	}
}

func TestCRFiniteStartValidation(t *testing.T) {
	net := network.MustCRNet(network.CRConfig{Nodes: 2})
	m := twoNode(t, net)
	svc, err := NewFinite(cmam.NewEndpoint(m.Node(0)), net, FiniteConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := svc.Start(1, nil); err == nil {
		t.Error("accepted empty transfer")
	}
	if _, err := svc.Start(1, make([]network.Word, maxWords)); err == nil {
		t.Error("accepted oversize transfer")
	}
}

// Header rejection: a resource-limited receiver rejects a second transfer's
// header while the first is still open; the sender retries and both
// transfers finish. No deadlock, no preallocation handshake — this is the
// CR property that replaces buffer management.
func TestCRFiniteHeaderRejection(t *testing.T) {
	// Capacity 2 stalls the first transfer (3 packets) mid-flight, so the
	// receiver has an open incoming transfer when the second one starts.
	net := network.MustCRNet(network.CRConfig{Nodes: 2, Capacity: 2})
	m := twoNode(t, net)

	var got [][]network.Word
	srcSvc, err := NewFinite(cmam.NewEndpoint(m.Node(0)), net, FiniteConfig{})
	if err != nil {
		t.Fatal(err)
	}
	dstSvc, err := NewFinite(cmam.NewEndpoint(m.Node(1)), net, FiniteConfig{
		MaxConcurrent: 1,
		OnReceive:     func(src int, buf []network.Word) { got = append(got, buf) },
	})
	if err != nil {
		t.Fatal(err)
	}

	a, err := srcSvc.Start(1, pattern(12)) // 3 packets; only 2 fit
	if err != nil {
		t.Fatal(err)
	}
	if err := dstSvc.Pump(); err != nil { // receiver opens transfer a
		t.Fatal(err)
	}
	b, err := srcSvc.Start(1, pattern(8)) // header rejected: a still open
	if err != nil {
		t.Fatal(err)
	}
	if b.Rejections() == 0 {
		t.Fatal("second header should have been rejected while the first transfer is open")
	}

	err = machine.Run(100000,
		machine.StepFunc(func() (bool, error) {
			return a.Done() && b.Done() && len(got) == 2, srcSvc.Pump()
		}),
		machine.StepFunc(func() (bool, error) {
			return a.Done() && b.Done() && len(got) == 2, dstSvc.Pump()
		}),
	)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("completed %d transfers, want 2", len(got))
	}
	if len(got[0]) != 12 || len(got[1]) != 8 {
		t.Errorf("transfer sizes = %d, %d; want 12, 8", len(got[0]), len(got[1]))
	}
	if m.Node(0).Gauge.Events("crfinite.rejected") == 0 {
		t.Error("rejection event not recorded")
	}
}
