package crmsg

import (
	"testing"

	"msglayer/internal/cmam"
	"msglayer/internal/cost"
	"msglayer/internal/machine"
	"msglayer/internal/network"
)

type crStreamRig struct {
	m         *machine.Machine
	src, dst  *Stream
	delivered [][]network.Word
}

func newCRStreamRig(t *testing.T, net network.Network) *crStreamRig {
	t.Helper()
	rig := &crStreamRig{m: twoNode(t, net)}
	rig.src = MustNewStream(cmam.NewEndpoint(rig.m.Node(0)), StreamConfig{})
	rig.dst = MustNewStream(cmam.NewEndpoint(rig.m.Node(1)), StreamConfig{
		OnDeliver: func(src int, ch uint8, data []network.Word) {
			buf := make([]network.Word, len(data))
			copy(buf, data)
			rig.delivered = append(rig.delivered, buf)
		},
	})
	return rig
}

func (r *crStreamRig) run(t *testing.T, c *Conn, wantPackets int) {
	t.Helper()
	err := machine.Run(100000,
		machine.StepFunc(func() (bool, error) {
			return c.Idle() && len(r.delivered) == wantPackets, r.src.Pump()
		}),
		machine.StepFunc(func() (bool, error) {
			return c.Idle() && len(r.delivered) == wantPackets, r.dst.Pump()
		}),
	)
	if err != nil {
		t.Fatal(err)
	}
}

// Figure 6, indefinite sequence: CR eliminates sequencing, reorder
// buffering, source buffering, and acknowledgements — software cost drops
// to base data movement, ~70% below CMAM (143 vs 481 at 16 words).
func TestCRStream16Words(t *testing.T) {
	net := network.MustCRNet(network.CRConfig{Nodes: 2})
	rig := newCRStreamRig(t, net)
	c := rig.src.Open(1, 0)
	for i := 0; i < 4; i++ {
		base := network.Word(i * 4)
		if err := c.Send(base, base+1, base+2, base+3); err != nil {
			t.Fatal(err)
		}
	}
	rig.run(t, c, 4)

	for i, pkt := range rig.delivered {
		if pkt[0] != network.Word(i*4) {
			t.Fatalf("packet %d out of order: %v", i, pkt)
		}
	}

	src := rig.m.Node(0).Gauge.RoleTotal(cost.Source)
	dst := rig.m.Node(1).Gauge.RoleTotal(cost.Destination)
	if src != cost.V(14, 1, 5).Scale(4) {
		t.Errorf("source = %v", src)
	}
	wantDst := cost.V(10, 0, 1).Add(cost.V(9, 0, 4).Scale(4))
	if dst != wantDst {
		t.Errorf("destination = %v, want %v", dst, wantDst)
	}
	if total := src.Total() + dst.Total(); total != 143 {
		t.Errorf("total = %d, want 143", total)
	}
}

// At 1024 words: 8459 vs CMAM's 29965, a 71.8% reduction (the paper's ~70%).
func TestCRStream1024Words(t *testing.T) {
	net := network.MustCRNet(network.CRConfig{Nodes: 2})
	rig := newCRStreamRig(t, net)
	c := rig.src.Open(1, 0)
	for i := 0; i < 256; i++ {
		if err := c.Send(1, 2, 3, 4); err != nil {
			t.Fatal(err)
		}
	}
	rig.run(t, c, 256)
	total := rig.m.TotalGauge().Total().Total()
	if total != 8459 {
		t.Errorf("total = %d, want 8459", total)
	}
	// Only Base is ever charged.
	for _, n := range rig.m.Nodes {
		for _, f := range []cost.Feature{cost.BufferMgmt, cost.InOrder, cost.FaultTol} {
			if got := n.Gauge.Cell(n.Role(), f); !got.IsZero() {
				t.Errorf("node %d charged %v to %s", n.ID, got, f)
			}
		}
	}
}

// Transient network faults are recovered in hardware, invisible to the
// stream: exact delivery, base-only cost, retries counted by the substrate.
func TestCRStreamTransparentFaults(t *testing.T) {
	net := network.MustCRNet(network.CRConfig{
		Nodes:           2,
		TransientFaults: &network.EveryNth{N: 3, What: network.Drop},
	})
	rig := newCRStreamRig(t, net)
	c := rig.src.Open(1, 0)
	for i := 0; i < 12; i++ {
		if err := c.Send(network.Word(i)); err != nil {
			t.Fatal(err)
		}
	}
	rig.run(t, c, 12)
	for i, pkt := range rig.delivered {
		if len(pkt) != 1 || pkt[0] != network.Word(i) {
			t.Fatalf("delivery %d = %v", i, pkt)
		}
	}
	if net.Stats().HWRetries == 0 {
		t.Error("expected hardware retries")
	}
	if got := rig.m.Node(0).Gauge.Cell(cost.Source, cost.FaultTol); !got.IsZero() {
		t.Errorf("software charged for hardware fault recovery: %v", got)
	}
}

func TestCRStreamBackpressureRetries(t *testing.T) {
	net := network.MustCRNet(network.CRConfig{Nodes: 2, Capacity: 2})
	rig := newCRStreamRig(t, net)
	c := rig.src.Open(1, 0)
	for i := 0; i < 10; i++ {
		if err := c.Send(network.Word(i)); err != nil {
			t.Fatal(err)
		}
	}
	if c.Idle() {
		t.Fatal("expected backpressure with capacity 2")
	}
	rig.run(t, c, 10)
	for i, pkt := range rig.delivered {
		if pkt[0] != network.Word(i) {
			t.Fatalf("delivery %d = %v (order violated under backpressure)", i, pkt)
		}
	}
	if c.Sent() != 10 {
		t.Errorf("Sent = %d", c.Sent())
	}
}

func TestCRStreamValidation(t *testing.T) {
	net := network.MustCRNet(network.CRConfig{Nodes: 2})
	rig := newCRStreamRig(t, net)
	c := rig.src.Open(1, 0)
	if err := c.Send(); err == nil {
		t.Error("accepted empty send")
	}
	if err := c.Send(1, 2, 3, 4, 5); err == nil {
		t.Error("accepted oversize send")
	}
	c.Close()
	if err := c.Send(1); err == nil {
		t.Error("accepted send on closed stream")
	}
	if rig.src.Open(1, 0) != c {
		t.Error("Open created a duplicate connection")
	}
}

// Channels multiplex independently, each paying its own fixed cost once.
func TestCRStreamChannels(t *testing.T) {
	net := network.MustCRNet(network.CRConfig{Nodes: 2})
	m := twoNode(t, net)
	src := MustNewStream(cmam.NewEndpoint(m.Node(0)), StreamConfig{})
	byCh := map[uint8][]network.Word{}
	dst := MustNewStream(cmam.NewEndpoint(m.Node(1)), StreamConfig{
		OnDeliver: func(_ int, ch uint8, data []network.Word) {
			byCh[ch] = append(byCh[ch], data...)
		},
	})
	a, b := src.Open(1, 1), src.Open(1, 2)
	for i := 0; i < 3; i++ {
		if err := a.Send(network.Word(i)); err != nil {
			t.Fatal(err)
		}
		if err := b.Send(network.Word(10 + i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := dst.Pump(); err != nil {
		t.Fatal(err)
	}
	if len(byCh[1]) != 3 || len(byCh[2]) != 3 {
		t.Fatalf("per-channel deliveries: %v", byCh)
	}
	// Fixed reception cost charged once per channel: 2 channels.
	fixed := cost.V(10, 0, 1).Scale(2)
	perPkt := cost.V(9, 0, 4).Scale(6)
	if got := m.Node(1).Gauge.RoleTotal(cost.Destination); got != fixed.Add(perPkt) {
		t.Errorf("destination = %v, want %v", got, fixed.Add(perPkt))
	}
}
