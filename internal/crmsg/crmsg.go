// Package crmsg implements the paper's Section 4 messaging layer: the same
// three protocols rebuilt on a routing substrate with Compressionless-
// Routing-style high-level services — order-preserving transmission,
// deadlock freedom independent of packet acceptance, and fault-tolerant
// packet delivery.
//
// With those services in hardware, the software collapses to data movement:
//
//   - Finite-sequence transfers (Figure 5) need no allocation handshake
//     (the destination may reject a transfer's header packet without
//     deadlocking the network), no offsets or sequence numbers (the
//     network preserves order), and no acknowledgement (injection implies
//     delivery). Buffer management shrinks to storing the buffer pointer
//     in a table.
//   - Indefinite-sequence streams (Figure 7) are bare packet injections.
//   - Single-packet delivery costs exactly what it costs on the CM-5 — but
//     now meets all the user communication requirements.
package crmsg

import (
	"errors"
	"fmt"

	"msglayer/internal/cmam"
	"msglayer/internal/cost"
	"msglayer/internal/network"
)

// Hardware tags used by the CR layer.
const (
	// TagHead marks a finite transfer's header packet: its head word
	// carries the transfer id and total size, and the destination's
	// resource check may reject it.
	TagHead network.Tag = 4
	// TagData marks subsequent finite-transfer data packets.
	TagData network.Tag = 5
	// TagStream marks indefinite-sequence stream packets.
	TagStream network.Tag = 6
)

// retryProbe is the status-check cost of discovering a rejected or
// backpressured injection; like the CMAM layer's retry path it lies outside
// the paper's minimal-cost tables.
var retryProbe = cost.Items{
	{Cat: cost.Dev, Sub: cost.SubNIStatus, N: 1},
	{Cat: cost.Reg, Sub: cost.SubNIStatus, N: 2},
}

// AcceptorSetter is the piece of the CR substrate the receiver uses to
// install its header-acceptance check; *network.CRNet implements it.
type AcceptorSetter interface {
	SetAcceptor(node int, a network.Acceptor) error
}

// FiniteConfig tunes a CR finite-transfer service.
type FiniteConfig struct {
	// MaxConcurrent bounds simultaneously open incoming transfers; header
	// packets beyond it are rejected (and retried by the sender). Zero
	// means unbounded.
	MaxConcurrent int
	// OnReceive is invoked at the destination when a transfer completes.
	OnReceive func(src int, data []network.Word)
	// Allocate provides destination buffers; defaults to make.
	Allocate func(words int) []network.Word
}

// Finite is the per-node CR finite-sequence service (Figure 5).
type Finite struct {
	ep  *cmam.Endpoint
	cfg FiniteConfig

	nextID   uint16
	outgoing map[uint16]*Transfer
	incoming map[inKey]*inXfer
	err      error
}

type inKey struct {
	src int
	id  uint16
}

type inXfer struct {
	buf    []network.Word
	cursor int
}

// Transfer is the source-side state of one CR finite transfer.
type Transfer struct {
	f        *Finite
	id       uint16
	dst      int
	data     []network.Word
	sent     int  // words injected (header counts its payload)
	headerIn bool // header accepted by the destination
	rejected uint64
	msg      uint64 // observability message identity, 0 when untraced
}

const maxWords = 1 << 16 // the head word carries a 16-bit size

// NewFinite installs the CR finite-sequence protocol on an endpoint whose
// machine runs over a CR substrate. The acceptance check is installed on
// the substrate if it supports one.
func NewFinite(ep *cmam.Endpoint, sub network.Network, cfg FiniteConfig) (*Finite, error) {
	if cfg.Allocate == nil {
		cfg.Allocate = func(words int) []network.Word { return make([]network.Word, words) }
	}
	f := &Finite{
		ep:       ep,
		cfg:      cfg,
		outgoing: make(map[uint16]*Transfer),
		incoming: make(map[inKey]*inXfer),
	}
	if err := ep.RegisterTag(TagHead, f.sinkHead); err != nil {
		return nil, err
	}
	if err := ep.RegisterTag(TagData, f.sinkData); err != nil {
		return nil, err
	}
	if setter, ok := sub.(AcceptorSetter); ok {
		if err := setter.SetAcceptor(ep.Node().ID, f.accept); err != nil {
			return nil, err
		}
	}
	return f, nil
}

// accept is the hardware-level resource check consulted when a header
// packet begins to arrive. Rejection costs the receiver nothing: the
// message path is torn down in the network.
func (f *Finite) accept(p network.Packet) bool {
	if p.Tag != TagHead {
		return true
	}
	return f.cfg.MaxConcurrent <= 0 || len(f.incoming) < f.cfg.MaxConcurrent
}

func (f *Finite) sched() *cost.Schedule { return f.ep.Node().Sched }

// Start begins a transfer. Unlike the CMAM protocol there is no handshake:
// the first (header) packet carries the size, and once every packet is
// injected the data is guaranteed delivered — no source buffering, no
// acknowledgement.
func (f *Finite) Start(dst int, data []network.Word) (*Transfer, error) {
	if len(data) == 0 {
		return nil, errors.New("crmsg: finite transfer of zero words")
	}
	if len(data) >= maxWords {
		return nil, fmt.Errorf("crmsg: finite transfer of %d words exceeds the %d-word size field",
			len(data), maxWords)
	}
	t := &Transfer{f: f, id: f.nextID, dst: dst, data: data}
	f.nextID++
	f.outgoing[t.id] = t
	// One transfer is one causal message, from the header injection through
	// the last packet.
	obsScope := f.ep.Node().Obs
	prevMsg := obsScope.CurrentMsg()
	t.msg = obsScope.NewMsg()
	f.ep.Node().Charge(cost.Base, f.sched().CRXferSendFixed)
	f.ep.Node().Event("crfinite.start")
	err := f.pumpOne(t)
	obsScope.SwapMsg(prevMsg)
	return t, err
}

// Done reports whether every packet has been injected — which, on this
// substrate, is delivery.
func (t *Transfer) Done() bool { return t.headerIn && t.sent >= len(t.data) }

// Rejections returns how many times the destination rejected the header.
func (t *Transfer) Rejections() uint64 { return t.rejected }

// Pump advances all outgoing transfers and polls for incoming packets.
func (f *Finite) Pump() error {
	if _, err := f.ep.Poll(0); err != nil {
		return err
	}
	if f.err != nil {
		err := f.err
		f.err = nil
		return err
	}
	for _, t := range f.outgoing {
		prev := f.ep.Node().Obs.SwapMsg(t.msg)
		err := f.pumpOne(t)
		f.ep.Node().Obs.SwapMsg(prev)
		if err != nil {
			return err
		}
	}
	return nil
}

// Step adapts a transfer to machine.Stepper semantics.
func (t *Transfer) Step() (bool, error) {
	if err := t.f.Pump(); err != nil {
		return false, err
	}
	return t.Done(), nil
}

func (f *Finite) pumpOne(t *Transfer) error {
	n := f.sched().PacketWords
	node := f.ep.Node()
	for !t.Done() {
		end := t.sent + n
		if end > len(t.data) {
			end = len(t.data)
		}
		var err error
		if !t.headerIn {
			head := network.Word(t.id)<<16 | network.Word(len(t.data))
			err = f.ep.Send(t.dst, TagHead, head, t.data[t.sent:end], cost.Base, nil)
		} else {
			err = f.ep.Send(t.dst, TagData, network.Word(t.id), t.data[t.sent:end], cost.Base, nil)
		}
		switch {
		case errors.Is(err, network.ErrRejected):
			// The destination had no resources; the path was torn down
			// and the packet never entered the network. Retry later.
			t.rejected++
			node.Charge(cost.Base, f.sched().CRRetryBookkeep)
			node.Charge(cost.Base, retryProbe)
			node.Event("crfinite.rejected")
			return nil
		case errors.Is(err, network.ErrBackpressure):
			node.Charge(cost.Base, retryProbe)
			node.Event("crfinite.backpressure")
			return nil
		case err != nil:
			return err
		}
		node.Charge(cost.Base, f.sched().CRXferSendPacket)
		node.Event("crfinite.packet.sent")
		t.headerIn = true
		t.sent = end
	}
	if t.sent >= len(t.data) {
		delete(f.outgoing, t.id)
		// Source-side completion marker: on this substrate injection is
		// delivery, so the last packet entering the network completes the
		// transfer as seen from the source. The event charges nothing; it
		// closes the crfinite.xfer.src observability span.
		node.Event("crfinite.complete")
	}
	return nil
}

// sinkHead receives a transfer's header packet: allocate, register, store.
func (f *Finite) sinkHead(src int, head network.Word, data []network.Word) error {
	node := f.ep.Node()
	id := uint16(head >> 16)
	words := int(head & (maxWords - 1))
	if words <= 0 {
		return fmt.Errorf("crmsg: header from node %d with size %d", src, words)
	}
	key := inKey{src, id}
	if _, dup := f.incoming[key]; dup {
		return fmt.Errorf("crmsg: duplicate header for transfer %d from node %d", id, src)
	}

	// Fixed reception-path setup plus the whole of buffer management:
	// store the buffer pointer in the transfer table. The allocation
	// itself is excluded, as in the paper.
	node.Charge(cost.Base, f.sched().CRXferRecvFixed)
	node.Charge(cost.BufferMgmt, f.sched().CRBufferRegister)
	in := &inXfer{buf: f.cfg.Allocate(words)}
	f.incoming[key] = in
	node.Event("crfinite.header.recv")

	return f.store(src, key, in, data)
}

// sinkData receives subsequent packets in order.
func (f *Finite) sinkData(src int, head network.Word, data []network.Word) error {
	key := inKey{src, uint16(head)}
	in, ok := f.incoming[key]
	if !ok {
		return fmt.Errorf("crmsg: data for unknown transfer %d from node %d", head, src)
	}
	return f.store(src, key, in, data)
}

// store places a packet's payload at the cursor — in-order delivery makes
// offsets unnecessary — and finishes the transfer on the last packet.
func (f *Finite) store(src int, key inKey, in *inXfer, data []network.Word) error {
	node := f.ep.Node()
	node.Charge(cost.Base, f.sched().CRXferRecvPacket)
	node.Event("crfinite.packet.recv")
	if in.cursor+len(data) > len(in.buf) {
		return fmt.Errorf("crmsg: transfer %d from node %d overruns its %d-word buffer",
			key.id, src, len(in.buf))
	}
	copy(in.buf[in.cursor:], data)
	in.cursor += len(data)
	if in.cursor == len(in.buf) {
		// The arrival of the last packet invokes the specialized
		// last-packet handler.
		node.Charge(cost.Base, f.sched().CRLastPacket)
		delete(f.incoming, key)
		node.Event("crfinite.done")
		if f.cfg.OnReceive != nil {
			f.cfg.OnReceive(src, in.buf)
		}
	}
	return nil
}
