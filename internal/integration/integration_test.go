// Package integration runs the full messaging stack — cost schedule, NI,
// CMAM layer, protocols — over the flit-level wormhole networks instead of
// the behavioral substrates, cross-validating the two levels of the
// reproduction: the instruction counts charged by the protocols must be
// explained exactly by whatever delivery behavior the routers actually
// produced.
package integration

import (
	"testing"

	"msglayer/internal/cmam"
	"msglayer/internal/cost"
	"msglayer/internal/crmsg"
	"msglayer/internal/flitnet"
	"msglayer/internal/machine"
	"msglayer/internal/network"
	"msglayer/internal/protocols"
	"msglayer/internal/topology"
)

// flitMachine assembles a machine over a flit-level network.
func flitMachine(t *testing.T, cfg flitnet.Config) (*machine.Machine, *flitnet.Net) {
	t.Helper()
	// A deep inject queue keeps the paper's minimal execution path: no
	// injection backpressure, so no retry-probe charges.
	if cfg.InjectQueue == 0 {
		cfg.InjectQueue = 4096
	}
	net := flitnet.MustNew(cfg)
	m := machine.MustNew(net, cost.MustPaperSchedule(net.PacketWords()))
	return m, net
}

// ticker advances the flit network each scheduling round.
func ticker(net *flitnet.Net, done func() bool) machine.Stepper {
	return machine.StepFunc(func() (bool, error) {
		net.Tick(1)
		return done(), nil
	})
}

// pattern builds a recognizable payload.
func pattern(words int) []network.Word {
	data := make([]network.Word, words)
	for i := range data {
		data[i] = network.Word(i*11 + 5)
	}
	return data
}

// The finite-sequence protocol's costs are delivery-order independent
// (carried offsets), so over a real wormhole fat tree with adaptive
// routing it must still charge exactly the paper's Table 2 values.
func TestFiniteCMAMOverFlitFatTree(t *testing.T) {
	m, net := flitMachine(t, flitnet.Config{
		Topology: topology.MustFatTree(4, 2),
		Mode:     flitnet.Adaptive,
	})
	src, dst := m.Node(0), m.Node(15)
	src.SetRole(cost.Source)
	dst.SetRole(cost.Destination)

	srcSvc := protocols.NewFinite(cmam.NewEndpoint(src))
	dstSvc := protocols.NewFinite(cmam.NewEndpoint(dst))
	var received []network.Word
	dstSvc.OnReceive = func(_ int, buf []network.Word) { received = buf }

	data := pattern(64) // 16 packets
	tr, err := srcSvc.Start(15, data)
	if err != nil {
		t.Fatal(err)
	}
	done := tr.Done
	err = machine.Run(100000,
		machine.StepFunc(func() (bool, error) { return done(), srcSvc.Pump() }),
		machine.StepFunc(func() (bool, error) { return done(), dstSvc.Pump() }),
		ticker(net, done),
	)
	if err != nil {
		t.Fatal(err)
	}
	for i := range data {
		if received[i] != data[i] {
			t.Fatalf("word %d corrupted over the flit network", i)
		}
	}
	if src.Gauge.Events("finite.backpressure") != 0 {
		t.Fatal("unexpected backpressure; cost assertions assume the minimal path")
	}

	// Exactly the Table 2 cells at p = 16.
	const p = 16
	wantSrc := map[cost.Feature]cost.Vec{
		cost.Base:       cost.V(2, 1, 0).Add(cost.V(15, 2, 5).Scale(p)),
		cost.BufferMgmt: cost.V(36, 1, 10),
		cost.InOrder:    cost.V(2, 0, 0).Scale(p),
		cost.FaultTol:   cost.V(22, 0, 5),
	}
	wantDst := map[cost.Feature]cost.Vec{
		cost.Base:       cost.V(14, 3, 1).Add(cost.V(12, 2, 4).Scale(p)),
		cost.BufferMgmt: cost.V(79, 12, 10),
		cost.InOrder:    cost.V(1, 0, 0).Add(cost.V(3, 0, 0).Scale(p)),
		cost.FaultTol:   cost.V(14, 1, 5),
	}
	for f, v := range wantSrc {
		if got := src.Gauge.Cell(cost.Source, f); got != v {
			t.Errorf("src %s = %v, want %v", f, got, v)
		}
	}
	for f, v := range wantDst {
		if got := dst.Gauge.Cell(cost.Destination, f); got != v {
			t.Errorf("dst %s = %v, want %v", f, got, v)
		}
	}
}

// The indefinite-sequence protocol over the adaptive fat tree under
// hotspot contention: delivery must be exact and in order, and the
// destination's in-order delivery cost must be explained exactly by the
// out-of-order arrivals the routers actually produced.
func TestStreamCMAMOverFlitFatTreeWithContention(t *testing.T) {
	m, net := flitMachine(t, flitnet.Config{
		Topology:    topology.MustFatTree(4, 2),
		Mode:        flitnet.Adaptive,
		BufferFlits: 3,
	})
	const dstNode = 15
	sources := []int{3, 7, 11}
	const packets = 40

	dst := m.Node(dstNode)
	dst.SetRole(cost.Destination)
	delivered := map[int][]network.Word{}
	dstSvc := protocols.MustNewStream(cmam.NewEndpoint(dst), protocols.StreamConfig{
		NackThreshold: -1,
		OnDeliver: func(src int, _ uint8, data []network.Word) {
			delivered[src] = append(delivered[src], data[0])
		},
	})

	type sender struct {
		svc  *protocols.Stream
		conn *protocols.Conn
	}
	senders := make([]sender, len(sources))
	for i, s := range sources {
		node := m.Node(s)
		node.SetRole(cost.Source)
		svc := protocols.MustNewStream(cmam.NewEndpoint(node), protocols.StreamConfig{NackThreshold: -1})
		conn := svc.Open(dstNode, 0)
		for seq := 0; seq < packets; seq++ {
			if err := conn.Send(network.Word(seq)); err != nil {
				t.Fatal(err)
			}
		}
		senders[i] = sender{svc, conn}
	}

	done := func() bool {
		for _, s := range senders {
			if !s.conn.Idle() {
				return false
			}
		}
		return true
	}
	steppers := []machine.Stepper{
		machine.StepFunc(func() (bool, error) { return done(), dstSvc.Pump() }),
		ticker(net, done),
	}
	for _, s := range senders {
		svc := s.svc
		steppers = append(steppers, machine.StepFunc(func() (bool, error) { return done(), svc.Pump() }))
	}
	if err := machine.Run(1_000_000, steppers...); err != nil {
		t.Fatal(err)
	}

	// Every flow delivered exactly, in order, despite router-level
	// reordering.
	for _, s := range sources {
		seqs := delivered[s]
		if len(seqs) != packets {
			t.Fatalf("flow %d delivered %d of %d", s, len(seqs), packets)
		}
		for i, w := range seqs {
			if w != network.Word(i) {
				t.Fatalf("flow %d delivery %d = %d (user-visible order violated)", s, i, w)
			}
		}
	}

	// The mechanism really reordered: the protocol had to buffer.
	ooo := dst.Gauge.Events("stream.outoforder")
	drains := dst.Gauge.Events("stream.drain")
	if ooo == 0 {
		t.Error("no out-of-order arrivals; hotspot contention not exercised")
	}
	if ooo != drains {
		t.Errorf("ooo %d != drains %d (every buffered packet drains once)", ooo, drains)
	}

	// Cross-validation: the destination's in-order cell equals the event
	// counts composed with the schedule — whatever the network did.
	inorder := dst.Gauge.Events("stream.inorder")
	want := cost.V(5, 0, 0).Scale(inorder).
		Add(cost.V(20, 13, 0).Scale(ooo)).
		Add(cost.V(10, 10, 0).Scale(drains))
	if got := dst.Gauge.Cell(cost.Destination, cost.InOrder); got != want {
		t.Errorf("dst in-order = %v, want %v from events (in=%d ooo=%d drain=%d)",
			got, want, inorder, ooo, drains)
	}
}

// The CR messaging layer over the CR-mode flit network: in-order, reliable,
// rejection-capable hardware carries the Figure 5 protocol with the exact
// Section 4 costs.
func TestCRFiniteOverFlitMesh(t *testing.T) {
	m, net := flitMachine(t, flitnet.Config{
		Topology: topology.MustMesh(4, 2),
		Mode:     flitnet.CR,
	})
	src, dst := m.Node(0), m.Node(7)
	src.SetRole(cost.Source)
	dst.SetRole(cost.Destination)

	srcSvc, err := crmsg.NewFinite(cmam.NewEndpoint(src), net, crmsg.FiniteConfig{})
	if err != nil {
		t.Fatal(err)
	}
	var received []network.Word
	dstSvc, err := crmsg.NewFinite(cmam.NewEndpoint(dst), net, crmsg.FiniteConfig{
		OnReceive: func(_ int, buf []network.Word) { received = buf },
	})
	if err != nil {
		t.Fatal(err)
	}

	data := pattern(32) // 8 packets
	tr, err := srcSvc.Start(7, data)
	if err != nil {
		t.Fatal(err)
	}
	done := func() bool { return tr.Done() && received != nil }
	err = machine.Run(100000,
		machine.StepFunc(func() (bool, error) { return done(), srcSvc.Pump() }),
		machine.StepFunc(func() (bool, error) { return done(), dstSvc.Pump() }),
		ticker(net, done),
	)
	if err != nil {
		t.Fatal(err)
	}
	for i := range data {
		if received[i] != data[i] {
			t.Fatalf("word %d corrupted", i)
		}
	}

	// Exact Section 4 costs at p = 8, and zero overhead features.
	const p = 8
	if got := src.Gauge.Cell(cost.Source, cost.Base); got != cost.V(2, 1, 0).Add(cost.V(15, 2, 5).Scale(p)) {
		t.Errorf("src base = %v", got)
	}
	wantDstBase := cost.V(11, 2, 1).Add(cost.V(11, 2, 4).Scale(p)).Add(cost.V(6, 0, 0))
	if got := dst.Gauge.Cell(cost.Destination, cost.Base); got != wantDstBase {
		t.Errorf("dst base = %v, want %v", got, wantDstBase)
	}
	if got := dst.Gauge.Cell(cost.Destination, cost.BufferMgmt); got != cost.V(6, 2, 0) {
		t.Errorf("dst buffer mgmt = %v", got)
	}
	for _, f := range []cost.Feature{cost.InOrder, cost.FaultTol} {
		if got := src.Gauge.Cell(cost.Source, f).Add(dst.Gauge.Cell(cost.Destination, f)); !got.IsZero() {
			t.Errorf("%s charged %v on the CR substrate", f, got)
		}
	}
}

// Header rejection end to end at the flit level: a resource-limited
// receiver rejects a second transfer's header inside the router fabric;
// the worm is killed, retried, and both transfers complete.
func TestCRFiniteFlitHeaderRejection(t *testing.T) {
	m, net := flitMachine(t, flitnet.Config{
		Topology:     topology.MustMesh(3, 1),
		Mode:         flitnet.CR,
		RetryBackoff: 4,
	})
	src, dst := m.Node(0), m.Node(2)
	src.SetRole(cost.Source)
	dst.SetRole(cost.Destination)

	other := m.Node(1)
	other.SetRole(cost.Source)

	svcA, err := crmsg.NewFinite(cmam.NewEndpoint(src), net, crmsg.FiniteConfig{})
	if err != nil {
		t.Fatal(err)
	}
	svcB, err := crmsg.NewFinite(cmam.NewEndpoint(other), net, crmsg.FiniteConfig{})
	if err != nil {
		t.Fatal(err)
	}
	var got [][]network.Word
	dstSvc, err := crmsg.NewFinite(cmam.NewEndpoint(dst), net, crmsg.FiniteConfig{
		MaxConcurrent: 1,
		OnReceive:     func(_ int, buf []network.Word) { got = append(got, buf) },
	})
	if err != nil {
		t.Fatal(err)
	}

	// Phase 1: a long transfer from node 0 opens at the receiver.
	a, err := svcA.Start(2, pattern(40)) // 10 packets, draining serially
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10000 && dst.Gauge.Events("crfinite.header.recv") == 0; i++ {
		net.Tick(1)
		if err := svcA.Pump(); err != nil {
			t.Fatal(err)
		}
		if err := dstSvc.Pump(); err != nil {
			t.Fatal(err)
		}
	}
	if dst.Gauge.Events("crfinite.header.recv") == 0 {
		t.Fatal("first transfer never opened at the receiver")
	}

	// Phase 2: a second transfer from node 1 — its header hits a full
	// receiver inside the router fabric and is rejected.
	b, err := svcB.Start(2, pattern(8))
	if err != nil {
		t.Fatal(err)
	}
	done := func() bool { return a.Done() && b.Done() && len(got) == 2 }
	err = machine.Run(1_000_000,
		machine.StepFunc(func() (bool, error) { return done(), svcA.Pump() }),
		machine.StepFunc(func() (bool, error) { return done(), svcB.Pump() }),
		machine.StepFunc(func() (bool, error) { return done(), dstSvc.Pump() }),
		ticker(net, done),
	)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("completed %d transfers", len(got))
	}
	if len(got[0]) != 40 || len(got[1]) != 8 {
		t.Errorf("transfer sizes = %d, %d; want 40, 8", len(got[0]), len(got[1]))
	}
	if net.Stats().Rejected == 0 || net.FlitStats().Kills == 0 {
		t.Errorf("expected flit-level kills and rejections: %+v", net.FlitStats())
	}
}
