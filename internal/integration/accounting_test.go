package integration

import (
	"testing"
	"testing/quick"

	"msglayer/internal/cmam"
	"msglayer/internal/cost"
	"msglayer/internal/machine"
	"msglayer/internal/network"
	"msglayer/internal/protocols"
)

// The central accounting invariant, checked across random configurations:
// whatever the network does (reorder policy, packet losses, ack grouping),
// every gauge cell equals the calibrated schedule composed with the run's
// actual event counts. The tables are trustworthy because this holds for
// arbitrary executions, not just the paper's configurations.
func TestStreamAccountingConsistencyProperty(t *testing.T) {
	prop := func(packetsRaw, ackRaw uint8, seed int16, windowRaw uint8, lossy bool) bool {
		packets := int(packetsRaw%60) + 4
		ackGroup := []int{1, 2, 4}[int(ackRaw)%3]
		window := int(windowRaw%10) + 2

		cfg := network.CM5Config{
			Nodes:   2,
			Reorder: network.WindowShuffle(window, int64(seed)),
		}
		if lossy {
			cfg.Faults = &network.EveryNth{N: 17, What: network.Drop}
		}
		net := network.MustCM5Net(cfg)
		m := machine.MustNew(net, cost.MustPaperSchedule(4))
		m.Node(0).SetRole(cost.Source)
		m.Node(1).SetRole(cost.Destination)

		src := protocols.MustNewStream(cmam.NewEndpoint(m.Node(0)), protocols.StreamConfig{
			AckGroup: ackGroup, NackThreshold: 3, RetransmitAfter: 64,
		})
		delivered := 0
		dst := protocols.MustNewStream(cmam.NewEndpoint(m.Node(1)), protocols.StreamConfig{
			AckGroup: ackGroup, NackThreshold: 3,
			OnDeliver: func(int, uint8, []network.Word) { delivered++ },
		})
		conn := src.Open(1, 0)
		for i := 0; i < packets; i++ {
			if err := conn.Send(1, 2, 3, 4); err != nil {
				return false
			}
		}
		err := machine.Run(1_000_000,
			machine.StepFunc(func() (bool, error) { return conn.Idle() && delivered == packets, src.Pump() }),
			machine.StepFunc(func() (bool, error) { return conn.Idle() && delivered == packets, dst.Pump() }),
		)
		if err != nil || delivered != packets {
			return false
		}

		s := m.Node(0).Sched
		sg, dg := m.Node(0).Gauge, m.Node(1).Gauge

		// Destination in-order cell = events x schedule.
		wantDstOrd := s.InOrderArrival.Vec().Scale(dg.Events("stream.inorder")).
			Add(s.OutOfOrderArrival.Vec().Scale(dg.Events("stream.outoforder"))).
			Add(s.DrainBuffered.Vec().Scale(dg.Events("stream.drain")))
		if dg.Cell(cost.Destination, cost.InOrder) != wantDstOrd {
			return false
		}
		// Destination fault tolerance = acks sent (including duplicate-
		// triggered re-acks and NACKs, which share the send bundle).
		ackSends := dg.Events("stream.ack.sent") + dg.Events("stream.nack.sent")
		if dg.Cell(cost.Destination, cost.FaultTol) != s.StreamAckSend.Vec().Scale(ackSends) {
			return false
		}
		// Source fault tolerance = buffered packets + processed acks/nacks
		// + retransmissions.
		buffered := sg.Events("stream.srcbuffer")
		acksRecv := sg.Events("stream.ack.recv") + sg.Events("stream.nack.recv")
		retrans := sg.Events("stream.retransmit")
		wantSrcFT := s.SourceBufferPacket.Vec().Scale(buffered).
			Add(s.StreamAckRecv.Vec().Scale(acksRecv)).
			Add(s.Retransmit.Vec().Scale(retrans))
		if sg.Cell(cost.Source, cost.FaultTol) != wantSrcFT {
			return false
		}
		// Source base = injections (originals; retransmitted sends charge
		// fault tolerance) and in-order = per-buffered-packet sequencing.
		if sg.Cell(cost.Source, cost.Base).Sub(retryProbeSpend(sg)) !=
			s.StreamSendPacket.Vec().Scale(buffered) {
			return false
		}
		if sg.Cell(cost.Source, cost.InOrder) != s.SeqPerPacket.Vec().Scale(buffered) {
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// retryProbeSpend returns the base-cost charges attributable to injection
// backpressure probes (the only other contributor to the source's Base
// cell in a stream run).
func retryProbeSpend(g *cost.Gauge) cost.Vec {
	n := g.Events("stream.backpressure")
	return cost.Vec{Reg: 2 * n, Dev: n}
}
