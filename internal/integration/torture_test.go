package integration

import (
	"errors"
	"math/rand"
	"testing"

	"msglayer/internal/cmam"
	"msglayer/internal/cost"
	"msglayer/internal/machine"
	"msglayer/internal/network"
	"msglayer/internal/protocols"
)

// TestTortureMixedTraffic drives finite transfers and ordered streams
// between many node pairs simultaneously, over a CM-5 substrate with
// reordering, packet loss, corruption, and tight buffering — and requires
// byte-exact, in-order delivery of everything. The machine interleaving,
// workload, and fault pattern are all seeded, so failures reproduce.
func TestTortureMixedTraffic(t *testing.T) {
	for _, seed := range []int64{1, 7, 42} {
		seed := seed
		t.Run("", func(t *testing.T) { tortureOnce(t, seed) })
	}
}

func tortureOnce(t *testing.T, seed int64) {
	const nodes = 8
	rng := rand.New(rand.NewSource(seed))

	net := network.MustCM5Net(network.CM5Config{
		Nodes:    nodes,
		Reorder:  network.WindowShuffle(5, seed),
		Faults:   network.NewSeededRate(0.02, seed+1),
		Capacity: 64,
	})
	m := machine.MustNew(net, cost.MustPaperSchedule(4))

	// Per-node services.
	type nodeSvcs struct {
		finite *protocols.Finite
		stream *protocols.Stream
	}
	svcs := make([]nodeSvcs, nodes)
	gotFinite := make([]map[int][]network.Word, nodes)
	gotStream := make([]map[int][]network.Word, nodes)
	for i := 0; i < nodes; i++ {
		i := i
		gotFinite[i] = map[int][]network.Word{}
		gotStream[i] = map[int][]network.Word{}
		ep := cmam.NewEndpoint(m.Node(i))
		fin := protocols.NewFinite(ep)
		fin.RetransmitAfter = 128
		fin.OnReceive = func(src int, buf []network.Word) {
			gotFinite[i][src] = append(gotFinite[i][src], buf...)
		}
		str := protocols.MustNewStream(ep, protocols.StreamConfig{
			NackThreshold:   4,
			RetransmitAfter: 128,
			OnDeliver: func(src int, _ uint8, data []network.Word) {
				gotStream[i][src] = append(gotStream[i][src], data...)
			},
		})
		svcs[i] = nodeSvcs{fin, str}
	}

	// The workload: every node sends one finite transfer and one stream
	// to a random distinct peer.
	type finiteJob struct {
		tr   *protocols.FiniteTransfer
		dst  int
		data []network.Word
	}
	type streamJob struct {
		conn *protocols.Conn
		dst  int
		data []network.Word
	}
	var finites []finiteJob
	var streams []streamJob
	for src := 0; src < nodes; src++ {
		dst := (src + 1 + rng.Intn(nodes-1)) % nodes
		words := (rng.Intn(40) + 1) * 4
		data := make([]network.Word, words)
		for i := range data {
			data[i] = network.Word(src<<16 | i)
		}
		tr, err := svcs[src].finite.Start(dst, data)
		if err != nil {
			t.Fatal(err)
		}
		finites = append(finites, finiteJob{tr, dst, data})

		sdst := (src + 1 + rng.Intn(nodes-1)) % nodes
		packets := rng.Intn(30) + 2
		sdata := make([]network.Word, 0, packets*4)
		conn := svcs[src].stream.Open(sdst, uint8(src))
		streams = append(streams, streamJob{conn, sdst, nil})
		for p := 0; p < packets; p++ {
			chunk := make([]network.Word, rng.Intn(4)+1)
			for i := range chunk {
				chunk[i] = network.Word(src<<20 | len(sdata) + i)
			}
			sdata = append(sdata, chunk...)
			if err := conn.Send(chunk...); err != nil {
				t.Fatal(err)
			}
		}
		streams[len(streams)-1].data = sdata
	}

	done := func() bool {
		for _, j := range finites {
			if !j.tr.Done() {
				return false
			}
		}
		for _, j := range streams {
			if !j.conn.Idle() {
				return false
			}
		}
		return true
	}
	steppers := make([]machine.Stepper, 0, nodes)
	for i := range svcs {
		svc := svcs[i]
		steppers = append(steppers, machine.StepFunc(func() (bool, error) {
			if err := svc.finite.Pump(); err != nil {
				// The single-network substrate can drop the protocol's
				// own control messages; losses of handshake packets are
				// outside the finite protocol's recovery model, so a
				// lost-allocation stall would surface here.
				if !errors.Is(err, network.ErrBackpressure) {
					return false, err
				}
			}
			if err := svc.stream.Pump(); err != nil {
				return false, err
			}
			return done(), nil
		}))
	}
	if err := machine.Run(2_000_000, steppers...); err != nil {
		t.Fatalf("seed %d: %v", seed, err)
	}

	// Verify every payload byte-exactly, in order.
	for src, j := range finites {
		got := gotFinite[j.dst][src]
		if len(got) != len(j.data) {
			t.Fatalf("seed %d: finite %d->%d delivered %d of %d words",
				seed, src, j.dst, len(got), len(j.data))
		}
		for i := range j.data {
			if got[i] != j.data[i] {
				t.Fatalf("seed %d: finite %d->%d word %d corrupted", seed, src, j.dst, i)
			}
		}
	}
	for src, j := range streams {
		got := gotStream[j.dst][src]
		if len(got) != len(j.data) {
			t.Fatalf("seed %d: stream %d->%d delivered %d of %d words",
				seed, src, j.dst, len(got), len(j.data))
		}
		for i := range j.data {
			if got[i] != j.data[i] {
				t.Fatalf("seed %d: stream %d->%d word %d out of order", seed, src, j.dst, i)
			}
		}
	}
}
