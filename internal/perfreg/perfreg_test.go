package perfreg

import (
	"path/filepath"
	"runtime"
	"strings"
	"testing"
)

// tinyConfig keeps recording fast in tests: few reps, small transfers, and
// no allocation benchmarks (those get their own smoke test). Parallel is
// left at the GOMAXPROCS default so the suite exercises the fanned path.
func tinyConfig() RecordConfig {
	return RecordConfig{Label: "test", Reps: 2, Words: 16, NetloadCycles: 100, SkipBenches: true}
}

// record is a cached tiny snapshot so the suite pays for one recording.
var recorded *Snapshot

func recordOnce(t *testing.T) *Snapshot {
	t.Helper()
	if recorded == nil {
		s, err := Record(tinyConfig())
		if err != nil {
			t.Fatal(err)
		}
		recorded = s
	}
	return recorded
}

func TestPerfregRecordShape(t *testing.T) {
	s := recordOnce(t)
	if s.Schema != SchemaVersion {
		t.Fatalf("schema = %d, want %d", s.Schema, SchemaVersion)
	}
	if len(s.Scenarios) != 7 {
		t.Fatalf("got %d scenarios, want 7", len(s.Scenarios))
	}
	for _, sc := range s.Scenarios {
		if len(sc.Sim) == 0 {
			t.Errorf("%s: no sim metrics", sc.Name)
		}
		if sc.Name == TwinScenario {
			// The twin scenario carries only the calibration accuracy
			// aggregates: no host samples (evaluation is closed form) and
			// no instruction totals.
			if len(sc.Host.WallNS) != 0 {
				t.Errorf("%s: unexpected host samples", sc.Name)
			}
			if sc.Sim["twin_net_points"] == 0 || sc.Sim["twin_proto_points"] == 0 {
				t.Errorf("%s: point counts missing: %v", sc.Name, sc.Sim)
			}
			continue
		}
		if len(sc.Host.WallNS) != 2 || len(sc.Host.Allocs) != 2 || len(sc.Host.AllocBytes) != 2 {
			t.Errorf("%s: host samples %d/%d/%d, want 2 each",
				sc.Name, len(sc.Host.WallNS), len(sc.Host.Allocs), len(sc.Host.AllocBytes))
		}
		if sc.Name != NetloadScenario {
			if sc.Sim["instr/total"] == 0 {
				t.Errorf("%s: zero total instruction count", sc.Name)
			}
			if sc.Sim["timeline/digest"] == 0 || sc.Sim["timeline/windows"] == 0 {
				t.Errorf("%s: timeline digest missing: digest=%d windows=%d",
					sc.Name, sc.Sim["timeline/digest"], sc.Sim["timeline/windows"])
			}
		} else {
			if sc.Sim["net/deterministic/delivered"] == 0 {
				t.Errorf("%s: zero delivered packets: %v", sc.Name, sc.Sim)
			}
			for _, mode := range []string{"deterministic", "adaptive", "cr"} {
				if sc.Sim["net/"+mode+"/timeline_digest"] == 0 || sc.Sim["net/"+mode+"/timeline_windows"] == 0 {
					t.Errorf("%s: %s timeline digest missing: %v", sc.Name, mode, sc.Sim)
				}
			}
		}
	}
}

func TestPerfregRoundTripAndIdenticalCompare(t *testing.T) {
	s := recordOnce(t)
	path := filepath.Join(t.TempDir(), "snap.json")
	if err := s.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Compare(s, loaded, CompareOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Pass {
		t.Fatalf("identical snapshots failed the gate:\n%s", rep)
	}
	if rep.SimChecked == 0 || rep.SimEqual != rep.SimChecked {
		t.Fatalf("sim equality: %d/%d", rep.SimEqual, rep.SimChecked)
	}
	if !strings.Contains(rep.String(), "verdict: PASS") {
		t.Fatalf("report missing PASS verdict:\n%s", rep)
	}
}

// clone deep-copies a snapshot through its JSON representation.
func clone(t *testing.T, s *Snapshot) *Snapshot {
	t.Helper()
	path := filepath.Join(t.TempDir(), "clone.json")
	if err := s.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	c, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestPerfregSimDriftFails(t *testing.T) {
	s := recordOnce(t)
	bad := clone(t, s)
	// Inject a +20% instruction-cost regression into one scenario.
	sim := bad.Scenarios[1].Sim
	sim["instr/total"] = sim["instr/total"] * 12 / 10
	rep, err := Compare(s, bad, CompareOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Pass {
		t.Fatalf("+20%% sim drift passed the gate:\n%s", rep)
	}
	if !strings.Contains(rep.String(), "DRIFT") || !strings.Contains(rep.String(), "verdict: FAIL") {
		t.Fatalf("report does not call out the drift:\n%s", rep)
	}
}

func TestPerfregMissingMetricAndScenarioFail(t *testing.T) {
	s := recordOnce(t)
	bad := clone(t, s)
	delete(bad.Scenarios[0].Sim, "instr/total")
	bad.Scenarios = bad.Scenarios[:len(bad.Scenarios)-1]
	rep, err := Compare(s, bad, CompareOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Pass {
		t.Fatal("missing metric and scenario passed the gate")
	}
}

func TestPerfregHostGate(t *testing.T) {
	s := recordOnce(t)

	// A clear, consistent +50% wall regression must fail...
	slow := clone(t, s)
	for i := range slow.Scenarios {
		slow.Scenarios[i].Host.WallNS = []float64{1500, 1501, 1502, 1499, 1498}
	}
	base := clone(t, s)
	for i := range base.Scenarios {
		base.Scenarios[i].Host.WallNS = []float64{1000, 1001, 1002, 999, 998}
	}
	rep, err := Compare(base, slow, CompareOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Pass {
		t.Fatalf("+50%% host regression passed:\n%s", rep)
	}

	// ...unless the gate runs sim-only (the CI mode)...
	rep, err = Compare(base, slow, CompareOptions{SimOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Pass {
		t.Fatalf("sim-only compare failed on host noise:\n%s", rep)
	}

	// ...or the threshold allows it.
	rep, err = Compare(base, slow, CompareOptions{HostThreshold: 0.60})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Pass {
		t.Fatalf("+50%% regression failed a +60%% threshold:\n%s", rep)
	}
}

func TestPerfregIncomparableSnapshots(t *testing.T) {
	s := recordOnce(t)
	other := clone(t, s)
	other.Words = s.Words + 1
	if _, err := Compare(s, other, CompareOptions{}); err == nil {
		t.Fatal("snapshots with different words compared without error")
	}
}

func TestPerfregSerialRecordingMatchesParallel(t *testing.T) {
	cfg := tinyConfig()
	cfg.Parallel = 1
	serial, err := Record(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s := recordOnce(t)
	rep, err := Compare(serial, s, CompareOptions{SimOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Pass {
		t.Fatalf("parallel recording drifted from serial sim metrics:\n%s", rep)
	}
}

func TestPerfregBenchGate(t *testing.T) {
	s := recordOnce(t)
	old := clone(t, s)
	old.Benches = []BenchResult{{Name: "flitnet-tick-steady", NsPerOp: 1000, AllocsPerOp: 0}}

	// Slower but allocation-free: ns/op is not gated.
	slower := clone(t, s)
	slower.Benches = []BenchResult{{Name: "flitnet-tick-steady", NsPerOp: 5000, AllocsPerOp: 0}}
	rep, err := Compare(old, slower, CompareOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Pass {
		t.Fatalf("ns/op growth failed the gate:\n%s", rep)
	}

	// One new allocation per op: fails, on any machine.
	leaky := clone(t, s)
	leaky.Benches = []BenchResult{{Name: "flitnet-tick-steady", NsPerOp: 900, AllocsPerOp: 1}}
	rep, err = Compare(old, leaky, CompareOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Pass {
		t.Fatalf("allocs/op regression passed the gate:\n%s", rep)
	}
	if !strings.Contains(rep.String(), "ALLOC REGRESSION") {
		t.Fatalf("report does not call out the allocation regression:\n%s", rep)
	}

	// A bench the old snapshot tracked must not silently disappear.
	gone := clone(t, s)
	rep, err = Compare(old, gone, CompareOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Pass {
		t.Fatal("dropped bench passed the gate")
	}

	// Benches absent from the old snapshot (schema 1) are informational.
	rep, err = Compare(gone, slower, CompareOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Pass {
		t.Fatalf("new bench failed against a bench-less baseline:\n%s", rep)
	}
}

func TestPerfregParallelMismatchSkipsHostGate(t *testing.T) {
	s := recordOnce(t)
	base := clone(t, s)
	base.Parallel = 1
	for i := range base.Scenarios {
		base.Scenarios[i].Host.WallNS = []float64{1000, 1001, 1002, 999, 998}
	}
	slow := clone(t, s)
	slow.Parallel = 4
	for i := range slow.Scenarios {
		slow.Scenarios[i].Host.WallNS = []float64{1500, 1501, 1502, 1499, 1498}
	}
	rep, err := Compare(base, slow, CompareOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Pass {
		t.Fatalf("host gate fired across different recording parallelism:\n%s", rep)
	}
	if !strings.Contains(rep.String(), "host metrics not gated") {
		t.Fatalf("report does not explain the skipped host gate:\n%s", rep)
	}
}

func TestPerfregRecordBenchesSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation benchmarks take a couple of seconds")
	}
	benches := recordBenches()
	if len(benches) != 10 {
		t.Fatalf("got %d benches, want 10", len(benches))
	}
	byName := make(map[string]BenchResult, len(benches))
	for _, b := range benches {
		byName[b.Name] = b
		if b.AllocsPerOp != 0 {
			t.Errorf("%s: %d allocs/op (%d B/op), want 0 — a hot path regressed", b.Name, b.AllocsPerOp, b.BytesPerOp)
		}
		if b.NsPerOp <= 0 {
			t.Errorf("%s: ns/op = %v", b.Name, b.NsPerOp)
		}
	}
	idle, dense := byName[BenchTickIdle], byName[BenchTickIdleDense]
	if idle.NsPerOp <= 0 || dense.NsPerOp/idle.NsPerOp < idleSpeedupFloor {
		t.Errorf("idle fast-forward speedup %.1fx under the %.0fx floor (dense %.0f ns/op, event %.0f ns/op)",
			dense.NsPerOp/idle.NsPerOp, idleSpeedupFloor, dense.NsPerOp, idle.NsPerOp)
	}
	serial, sharded := byName[BenchTickLarge], byName[BenchTickLargeShard4]
	if sharded.NsPerOp <= 0 {
		t.Errorf("sharded scaling bench unmeasurable: %.0f ns/op", sharded.NsPerOp)
	} else if runtime.GOMAXPROCS(0) >= shardSpeedupMinProcs && serial.NsPerOp/sharded.NsPerOp < shardSpeedupFloor {
		t.Errorf("sharded tick speedup %.2fx under the %.1fx floor at GOMAXPROCS=%d (serial %.0f ns/op, 4-shard %.0f ns/op)",
			serial.NsPerOp/sharded.NsPerOp, shardSpeedupFloor, runtime.GOMAXPROCS(0), serial.NsPerOp, sharded.NsPerOp)
	} else {
		t.Logf("sharded tick speedup %.2fx at GOMAXPROCS=%d (serial %.0f ns/op, 4-shard %.0f ns/op)",
			serial.NsPerOp/sharded.NsPerOp, runtime.GOMAXPROCS(0), serial.NsPerOp, sharded.NsPerOp)
	}
}

// TestPerfregShardSpeedupGate exercises the within-snapshot sharded-engine
// gate: a healthy ratio passes, a collapsed one fails — but only for
// snapshots recorded on machines with enough processors for the shards to
// actually run concurrently. Small-machine and pre-schema-5 snapshots get
// an informational row.
func TestPerfregShardSpeedupGate(t *testing.T) {
	old := recordOnce(t)
	scaling := func(serialNs, shardNs float64, maxProcs int) *Snapshot {
		s := clone(t, old)
		s.MaxProcs = maxProcs
		s.Benches = []BenchResult{
			{Name: BenchTickLarge, NsPerOp: serialNs},
			{Name: BenchTickLargeShard4, NsPerOp: shardNs},
		}
		return s
	}

	rep, err := Compare(old, scaling(1000, 300, 8), CompareOptions{SimOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Pass {
		t.Fatalf("3.3x speedup failed the gate:\n%s", rep)
	}
	if !strings.Contains(rep.String(), "sharded tick 3.33x") {
		t.Fatalf("report does not show the speedup:\n%s", rep)
	}

	rep, err = Compare(old, scaling(1000, 800, 8), CompareOptions{SimOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Pass {
		t.Fatalf("1.25x speedup passed the %.1fx floor:\n%s", shardSpeedupFloor, rep)
	}

	// Same collapsed ratio on a one-processor recording: informational only.
	rep, err = Compare(old, scaling(1000, 800, 1), CompareOptions{SimOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Pass {
		t.Fatalf("small-machine snapshot was gated on the shard speedup:\n%s", rep)
	}
	if !strings.Contains(rep.String(), "not gated: snapshot recorded at GOMAXPROCS=1") {
		t.Fatalf("report does not explain why the gate is off:\n%s", rep)
	}

	// No scaling benches recorded (pre-schema-5 snapshot): nothing to gate.
	rep, err = Compare(old, clone(t, old), CompareOptions{SimOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Pass {
		t.Fatalf("bench-less snapshots failed the shard gate:\n%s", rep)
	}
}

// TestPerfregIdleSpeedupGate exercises the within-snapshot fast-forward
// gate: a healthy ratio passes, a collapsed one fails, and snapshots from
// before the benches existed are not gated.
func TestPerfregIdleSpeedupGate(t *testing.T) {
	old := recordOnce(t)
	healthy := clone(t, old)
	healthy.Benches = []BenchResult{
		{Name: BenchTickIdle, NsPerOp: 10},
		{Name: BenchTickIdleDense, NsPerOp: 1000},
	}
	rep, err := Compare(old, healthy, CompareOptions{SimOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Pass {
		t.Fatalf("100x speedup failed the gate:\n%s", rep)
	}
	if !strings.Contains(rep.String(), "idle fast-forward 100x") {
		t.Fatalf("report does not show the speedup:\n%s", rep)
	}

	collapsed := clone(t, old)
	collapsed.Benches = []BenchResult{
		{Name: BenchTickIdle, NsPerOp: 500},
		{Name: BenchTickIdleDense, NsPerOp: 1000},
	}
	rep, err = Compare(old, collapsed, CompareOptions{SimOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Pass {
		t.Fatalf("2x speedup passed the %vx floor:\n%s", idleSpeedupFloor, rep)
	}

	// No idle benches recorded (pre-schema-3 snapshot): nothing to gate.
	rep, err = Compare(old, clone(t, old), CompareOptions{SimOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Pass {
		t.Fatalf("bench-less snapshots failed the idle gate:\n%s", rep)
	}
}

func TestPerfregSchema1Accepted(t *testing.T) {
	s := recordOnce(t)
	v1 := clone(t, s)
	v1.Schema = 1
	v1.Parallel = 0
	v1.Benches = nil
	path := filepath.Join(t.TempDir(), "v1.json")
	if err := v1.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := ReadFile(path)
	if err != nil {
		t.Fatalf("schema-1 snapshot rejected: %v", err)
	}
	if loaded.parallelism() != 1 {
		t.Fatalf("legacy snapshot parallelism = %d, want 1", loaded.parallelism())
	}
}

func TestPerfregSchemaRejected(t *testing.T) {
	s := recordOnce(t)
	bad := clone(t, s)
	bad.Schema = SchemaVersion + 1
	path := filepath.Join(t.TempDir(), "bad.json")
	if err := bad.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadFile(path); err == nil {
		t.Fatal("unknown schema accepted")
	}
}
