package perfreg

import "math"

// Mean returns the arithmetic mean, 0 for an empty sample.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Variance returns the unbiased sample variance, 0 for fewer than two
// observations.
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var s float64
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(len(xs)-1)
}

// WelchT computes Welch's unequal-variance t-test between two samples:
// the t statistic, the Welch–Satterthwaite degrees of freedom, and the
// two-sided p-value. Degenerate inputs (fewer than two observations on a
// side, or zero variance on both sides) report p = 1 when the means are
// equal and p = 0 when they differ — the deterministic limit of the test.
func WelchT(a, b []float64) (t, df, p float64) {
	if len(a) < 2 || len(b) < 2 {
		if Mean(a) == Mean(b) {
			return 0, 0, 1
		}
		return math.Inf(1), 0, 0
	}
	va, vb := Variance(a), Variance(b)
	na, nb := float64(len(a)), float64(len(b))
	sa, sb := va/na, vb/nb
	se2 := sa + sb
	if se2 == 0 {
		if Mean(a) == Mean(b) {
			return 0, na + nb - 2, 1
		}
		return math.Inf(1), na + nb - 2, 0
	}
	t = (Mean(a) - Mean(b)) / math.Sqrt(se2)
	df = se2 * se2 / (sa*sa/(na-1) + sb*sb/(nb-1))
	p = 2 * studentTTail(math.Abs(t), df)
	if p > 1 {
		p = 1
	}
	return t, df, p
}

// studentTTail returns P(T > t) for Student's t-distribution with df
// degrees of freedom, via the regularized incomplete beta function.
func studentTTail(t, df float64) float64 {
	if math.IsInf(t, 1) {
		return 0
	}
	if t <= 0 {
		return 0.5
	}
	x := df / (df + t*t)
	return 0.5 * regIncBeta(df/2, 0.5, x)
}

// tQuantile returns the q-quantile (q in (0.5, 1)) of Student's t with df
// degrees of freedom by bisection on the tail probability.
func tQuantile(q, df float64) float64 {
	if df <= 0 {
		return 0
	}
	tail := 1 - q
	lo, hi := 0.0, 1e6
	for i := 0; i < 200 && hi-lo > 1e-9*(1+lo); i++ {
		mid := (lo + hi) / 2
		if studentTTail(mid, df) > tail {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2
}

// MeanCI returns the sample mean and the half-width of its confidence
// interval at the given confidence level (e.g. 0.95), using the Student-t
// critical value. Samples with fewer than two observations report a zero
// half-width.
func MeanCI(xs []float64, confidence float64) (mean, half float64) {
	mean = Mean(xs)
	n := float64(len(xs))
	if n < 2 {
		return mean, 0
	}
	crit := tQuantile(1-(1-confidence)/2, n-1)
	return mean, crit * math.Sqrt(Variance(xs)/n)
}

// regIncBeta computes the regularized incomplete beta function I_x(a, b)
// with the continued-fraction expansion (Numerical Recipes betacf).
func regIncBeta(a, b, x float64) float64 {
	if x <= 0 {
		return 0
	}
	if x >= 1 {
		return 1
	}
	lbeta, _ := math.Lgamma(a + b)
	la, _ := math.Lgamma(a)
	lb, _ := math.Lgamma(b)
	front := math.Exp(lbeta - la - lb + a*math.Log(x) + b*math.Log(1-x))
	if x < (a+1)/(a+b+2) {
		return front * betaCF(a, b, x) / a
	}
	return 1 - front*betaCF(b, a, 1-x)/b
}

// betaCF evaluates the continued fraction for the incomplete beta function
// by the modified Lentz method.
func betaCF(a, b, x float64) float64 {
	const (
		maxIter = 300
		eps     = 3e-14
		tiny    = 1e-300
	)
	qab, qap, qam := a+b, a+1, a-1
	c := 1.0
	d := 1 - qab*x/qap
	if math.Abs(d) < tiny {
		d = tiny
	}
	d = 1 / d
	h := d
	for m := 1; m <= maxIter; m++ {
		fm := float64(m)
		m2 := 2 * fm
		aa := fm * (b - fm) * x / ((qam + m2) * (a + m2))
		d = 1 + aa*d
		if math.Abs(d) < tiny {
			d = tiny
		}
		c = 1 + aa/c
		if math.Abs(c) < tiny {
			c = tiny
		}
		d = 1 / d
		h *= d * c
		aa = -(a + fm) * (qab + fm) * x / ((a + m2) * (qap + m2))
		d = 1 + aa*d
		if math.Abs(d) < tiny {
			d = tiny
		}
		c = 1 + aa/c
		if math.Abs(c) < tiny {
			c = tiny
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < eps {
			break
		}
	}
	return h
}
