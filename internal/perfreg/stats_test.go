package perfreg

import (
	"math"
	"testing"
)

func approx(t *testing.T, name string, got, want, tol float64) {
	t.Helper()
	if math.Abs(got-want) > tol {
		t.Errorf("%s = %v, want %v (±%v)", name, got, want, tol)
	}
}

func TestStatsMeanVariance(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	approx(t, "mean", Mean(xs), 5, 1e-12)
	approx(t, "variance", Variance(xs), 32.0/7, 1e-12)
	if Mean(nil) != 0 || Variance([]float64{3}) != 0 {
		t.Fatal("degenerate samples should report 0")
	}
}

func TestStatsStudentTTail(t *testing.T) {
	// With df=1 the t-distribution is standard Cauchy: P(T>1) = 1/4.
	approx(t, "tail(1, df=1)", studentTTail(1, 1), 0.25, 1e-9)
	// Median.
	approx(t, "tail(0, df=7)", studentTTail(0, 7), 0.5, 1e-12)
	// Large df approaches the normal distribution: P(Z>1.96) ~ 0.025.
	approx(t, "tail(1.96, df=1e6)", studentTTail(1.96, 1e6), 0.025, 1e-3)
	if got := studentTTail(math.Inf(1), 5); got != 0 {
		t.Fatalf("tail(inf) = %v, want 0", got)
	}
}

func TestStatsTQuantile(t *testing.T) {
	// Classic table values.
	approx(t, "t(0.975, df=1)", tQuantile(0.975, 1), 12.706, 0.01)
	approx(t, "t(0.975, df=4)", tQuantile(0.975, 4), 2.776, 0.005)
	approx(t, "t(0.975, df=1e6)", tQuantile(0.975, 1e6), 1.960, 0.005)
}

func TestStatsWelch(t *testing.T) {
	// Unequal sizes and variances; reference values computed with the
	// textbook Welch formulas: t = -2.9881, df = 25.246, p ~ 0.0062.
	a := []float64{27.5, 21.0, 19.0, 23.6, 17.0, 17.9, 16.9, 20.1, 21.9, 22.6, 23.1, 19.6, 19.0, 21.7, 21.4}
	b := []float64{27.1, 22.0, 20.8, 23.4, 23.4, 23.5, 25.8, 22.0, 24.8, 20.2, 21.9, 22.8, 23.2, 19.8, 28.2, 23.8, 25.5, 23.3, 23.9, 22.8}
	tt, df, p := WelchT(a, b)
	approx(t, "welch t", tt, -2.9881, 0.001)
	approx(t, "welch df", df, 25.246, 0.01)
	approx(t, "welch p", p, 0.0062, 0.0005)

	// Identical samples: no evidence of difference.
	if _, _, p := WelchT(a, a); p != 1 {
		t.Fatalf("p(identical) = %v, want 1", p)
	}
	// Deterministic limit: single observations, different values.
	if _, _, p := WelchT([]float64{1}, []float64{2}); p != 0 {
		t.Fatalf("p(deterministic diff) = %v, want 0", p)
	}
	if _, _, p := WelchT([]float64{3}, []float64{3}); p != 1 {
		t.Fatalf("p(deterministic equal) = %v, want 1", p)
	}
	// Zero variance both sides, equal means.
	if _, _, p := WelchT([]float64{5, 5, 5}, []float64{5, 5, 5}); p != 1 {
		t.Fatalf("p(zero variance equal) = %v, want 1", p)
	}
}

func TestStatsMeanCI(t *testing.T) {
	// n=5, sd=1: half-width = t(0.975,4) * 1/sqrt(5) ~ 1.2416.
	xs := []float64{-1.264911064, -0.632455532, 0, 0.632455532, 1.264911064} // mean 0, var 1
	m, half := MeanCI(xs, 0.95)
	approx(t, "ci mean", m, 0, 1e-9)
	approx(t, "ci half", half, 2.776/math.Sqrt(5), 0.01)
	if _, half := MeanCI([]float64{7}, 0.95); half != 0 {
		t.Fatalf("single-sample CI half-width = %v, want 0", half)
	}
}

func TestStatsRegIncBeta(t *testing.T) {
	// I_x(1,1) = x.
	approx(t, "I_0.3(1,1)", regIncBeta(1, 1, 0.3), 0.3, 1e-12)
	// I_x(2,2) = 3x^2 - 2x^3.
	approx(t, "I_0.4(2,2)", regIncBeta(2, 2, 0.4), 3*0.16-2*0.064, 1e-9)
	// Symmetry: I_x(a,b) = 1 - I_{1-x}(b,a).
	approx(t, "symmetry", regIncBeta(2.5, 3.5, 0.3), 1-regIncBeta(3.5, 2.5, 0.7), 1e-9)
}
