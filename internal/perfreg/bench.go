package perfreg

import (
	"testing"

	"msglayer/internal/flitnet"
	"msglayer/internal/network"
	"msglayer/internal/sim"
	"msglayer/internal/topology"
)

// BenchResult is one allocation benchmark recorded via testing.Benchmark.
// AllocsPerOp is the gated number: the simulator's hot paths promise a
// steady state that allocates nothing, and any PR that breaks the promise
// fails the compare. NsPerOp and BytesPerOp are informational — wall time
// is machine noise, and byte counts shift with Go runtime versions.
type BenchResult struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
}

// recordBenches runs the allocation benchmarks the PR gate tracks: the
// flit simulator's steady-state tick and the event kernel's
// schedule/cancel/fire churn. testing.Benchmark scales the op counts the
// same way `go test -bench` does, so a recording costs about a wall-clock
// second per bench.
func recordBenches() []BenchResult {
	return []BenchResult{
		benchResult("flitnet-tick-steady", benchFlitnetTick),
		benchResult("sim-kernel-churn", benchKernelChurn),
	}
}

func benchResult(name string, fn func(b *testing.B)) BenchResult {
	r := testing.Benchmark(fn)
	return BenchResult{
		Name:        name,
		NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
		AllocsPerOp: r.AllocsPerOp(),
		BytesPerOp:  r.AllocedBytesPerOp(),
	}
}

// benchFlitnetTick is the exported-API twin of the flitnet package's
// BenchmarkTickOnce: one simulator cycle plus receive drain with worms in
// flight on the canonical 16-node fat tree. Re-seeding when the network
// drains happens outside the timer, so allocs/op covers the tick and
// receive paths alone.
func benchFlitnetTick(b *testing.B) {
	net, err := flitnet.New(flitnet.Config{Topology: topology.MustFatTree(4, 2), Mode: flitnet.Adaptive})
	if err != nil {
		b.Fatal(err)
	}
	payload := []network.Word{1, 2, 3, 4}
	inflight := 0
	drain := func() {
		for node := 0; node < 16; node++ {
			for {
				if _, ok := net.TryRecv(node); !ok {
					break
				}
				inflight--
			}
		}
	}
	reseed := func() {
		for src := 0; src < 16; src++ {
			if net.Inject(network.Packet{Src: src, Dst: 15 - src, Data: payload}) == nil {
				inflight++
			}
		}
	}
	reseed()
	// Warm the pools and flow tables before measuring.
	for i := 0; i < 2000; i++ {
		net.Tick(1)
		drain()
		if inflight == 0 {
			reseed()
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net.Tick(1)
		drain()
		if inflight == 0 {
			b.StopTimer()
			reseed()
			b.StartTimer()
		}
	}
}

// noopEvent is package-level so scheduling it allocates no closure.
var noopEvent = func(sim.Time) {}

// benchKernelChurn is the exported-API twin of the sim package's
// BenchmarkKernelChurn: schedule a window of events, cancel half, fire the
// rest — the protocol-timer churn the value-based heap keeps free of
// allocation.
func benchKernelChurn(b *testing.B) {
	k := sim.NewKernel()
	const window = 64
	handles := make([]sim.Handle, 0, window)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		handles = append(handles, k.After(sim.Time(i%16)+1, noopEvent))
		if len(handles) == window {
			for j, h := range handles {
				if j%2 == 0 {
					k.Cancel(h)
				}
			}
			handles = handles[:0]
			for k.Step() {
			}
		}
	}
}
