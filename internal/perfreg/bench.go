package perfreg

import (
	"testing"

	"msglayer/internal/flitnet"
	"msglayer/internal/network"
	"msglayer/internal/obs"
	"msglayer/internal/obs/monitor"
	"msglayer/internal/obs/timeline"
	"msglayer/internal/sim"
	"msglayer/internal/topology"
	"msglayer/internal/twin"
)

// BenchResult is one allocation benchmark recorded via testing.Benchmark.
// AllocsPerOp is the gated number: the simulator's hot paths promise a
// steady state that allocates nothing, and any PR that breaks the promise
// fails the compare. NsPerOp and BytesPerOp are informational — wall time
// is machine noise, and byte counts shift with Go runtime versions.
type BenchResult struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
}

// Bench names the compare gate treats specially: the idle fast-forward and
// sharded-engine speedups are gated within one snapshot — each new-engine
// bench against its baseline recorded in the same run on the same machine,
// so wall-clock ratios are meaningful.
const (
	BenchTickIdle        = "flitnet-tick-idle"
	BenchTickIdleDense   = "flitnet-tick-idle-dense"
	BenchTickSparse      = "flitnet-tick-sparse"
	BenchTickLarge       = "flitnet-tick-large"
	BenchTickLargeShard4 = "flitnet-tick-large-shard4"
	BenchTwinEval        = "twin-eval"
	BenchMonitorEval     = "monitor-eval"
)

// recordBenches runs the allocation benchmarks the PR gate tracks: the
// flit simulator's steady-state tick, the event kernel's
// schedule/cancel/fire churn, and the event-driven engine's idle and
// sparse workloads (with the dense reference recorded alongside as the
// idle baseline). testing.Benchmark scales the op counts the same way
// `go test -bench` does, so a recording costs about a wall-clock second
// per bench.
func recordBenches() []BenchResult {
	return []BenchResult{
		benchResult("flitnet-tick-steady", benchFlitnetTick),
		benchResult("sim-kernel-churn", benchKernelChurn),
		benchResult(BenchTickIdle, func(b *testing.B) { benchFlitnetIdle(b, false) }),
		benchResult(BenchTickIdleDense, func(b *testing.B) { benchFlitnetIdle(b, true) }),
		benchResult(BenchTickSparse, benchFlitnetSparse),
		benchResult(BenchTickLarge, func(b *testing.B) { benchFlitnetLarge(b, 1) }),
		benchResult(BenchTickLargeShard4, func(b *testing.B) { benchFlitnetLarge(b, 4) }),
		benchResult("timeline-sample", benchTimelineSample),
		benchResult(BenchTwinEval, benchTwinEval),
		benchResult(BenchMonitorEval, benchMonitorEval),
	}
}

// twinSink keeps the compiler from eliding the closed-form evaluation.
var twinSink float64

// benchTwinEval times one analytic-twin network prediction at an
// off-knot load, where the PCHIP segments actually interpolate. The twin
// promises O(1) zero-allocation evaluation; the allocs gate holds it to
// that.
func benchTwinEval(b *testing.B) {
	regime := twin.CalibratedRegimes()[0]
	point := twin.NetPoint{Regime: regime, Load: 0.123, Cycles: twin.CalCycles}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pred, err := point.PredictNet()
		if err != nil {
			b.Fatal(err)
		}
		twinSink += pred.MeanLatency
	}
}

func benchResult(name string, fn func(b *testing.B)) BenchResult {
	r := testing.Benchmark(fn)
	return BenchResult{
		Name:        name,
		NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
		AllocsPerOp: r.AllocsPerOp(),
		BytesPerOp:  r.AllocedBytesPerOp(),
	}
}

// benchFlitnetTick is the exported-API twin of the flitnet package's
// BenchmarkTickOnce: one simulator cycle plus receive drain with worms in
// flight on the canonical 16-node fat tree. Re-seeding when the network
// drains happens outside the timer, so allocs/op covers the tick and
// receive paths alone.
func benchFlitnetTick(b *testing.B) {
	net, err := flitnet.New(flitnet.Config{Topology: topology.MustFatTree(4, 2), Mode: flitnet.Adaptive})
	if err != nil {
		b.Fatal(err)
	}
	payload := []network.Word{1, 2, 3, 4}
	inflight := 0
	drain := func() {
		for node := 0; node < 16; node++ {
			for {
				if _, ok := net.TryRecv(node); !ok {
					break
				}
				inflight--
			}
		}
	}
	reseed := func() {
		for src := 0; src < 16; src++ {
			if net.Inject(network.Packet{Src: src, Dst: 15 - src, Data: payload}) == nil {
				inflight++
			}
		}
	}
	reseed()
	// Warm the pools and flow tables before measuring.
	for i := 0; i < 2000; i++ {
		net.Tick(1)
		drain()
		if inflight == 0 {
			reseed()
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net.Tick(1)
		drain()
		if inflight == 0 {
			b.StopTimer()
			reseed()
			b.StartTimer()
		}
	}
}

// benchFlitnetIdle is the exported-API twin of the flitnet package's
// BenchmarkTickIdle/BenchmarkTickIdleDense: advancing a 256-router mesh
// whose only pending worm sleeps in a retry backoff a million cycles out,
// 1024 cycles per op. The event engine fast-forwards the idle stretch in
// O(1); the dense reference pays the full per-cycle topology scan — the
// ratio is the speedup the compare gate holds at ≥ 10×.
func benchFlitnetIdle(b *testing.B, dense bool) {
	net, err := flitnet.New(flitnet.Config{
		Topology:       topology.MustMesh(16, 16),
		Mode:           flitnet.CR,
		RetryBackoff:   1 << 20,
		KillTimeout:    4,
		PacketWords:    16,
		DenseReference: dense,
	})
	if err != nil {
		b.Fatal(err)
	}
	long := make([]network.Word, 16)
	if err := net.Inject(network.Packet{Src: 0, Dst: 15, Data: long}); err != nil {
		b.Fatal(err)
	}
	if err := net.Inject(network.Packet{Src: 1, Dst: 15, Data: long}); err != nil {
		b.Fatal(err)
	}
	net.Tick(256)
	if net.Pending() == 0 || net.FlitStats().Kills == 0 {
		b.Fatal("idle workload did not park a worm in backoff")
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net.Tick(1024)
	}
}

// benchFlitnetSparse is the exported-API twin of the flitnet package's
// BenchmarkTickSparse: one cycle of a 256-router mesh at roughly 1% lane
// occupancy — a handful of long worms crossing an otherwise empty mesh.
func benchFlitnetSparse(b *testing.B) {
	net, err := flitnet.New(flitnet.Config{
		Topology:    topology.MustMesh(16, 16),
		Mode:        flitnet.Deterministic,
		PacketWords: 32,
	})
	if err != nil {
		b.Fatal(err)
	}
	payload := make([]network.Word, 30)
	injected := uint64(0)
	reseed := func() {
		for node := 0; node < 256; node++ {
			for {
				if _, ok := net.TryRecv(node); !ok {
					break
				}
			}
		}
		for _, src := range []int{0, 17, 34, 51} {
			if err := net.Inject(network.Packet{Src: src, Dst: 255 - src, Data: payload}); err != nil {
				b.Fatal(err)
			}
			injected++
		}
	}
	// All worms delivered means the network is drained (deterministic mode
	// never drops; LatencyCount ticks at delivery, unlike Delivered which
	// counts receives). Reseeding outside the timer keeps the measured op
	// the sparse tick itself.
	drained := func() bool { return net.FlitStats().LatencyCount == injected }
	reseed()
	for i := 0; i < 2000; i++ {
		if drained() {
			reseed()
		}
		net.Tick(1)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if drained() {
			b.StopTimer()
			reseed()
			b.StartTimer()
		}
		net.Tick(1)
	}
}

// benchFlitnetLarge is the exported-API twin of the flitnet package's
// BenchmarkTickLarge/BenchmarkTickSharded4: one cycle of a 1024-router
// mesh under heavy bisection traffic, serial against four shards. Both
// engines produce byte-identical results, so the pair isolates the wall
// clock of the parallel route phase; the compare gate holds the ratio at
// 2x within one snapshot — but only on machines with at least four
// processors, where the shards actually run concurrently.
func benchFlitnetLarge(b *testing.B, shards int) {
	net, err := flitnet.New(flitnet.Config{
		Topology:    topology.MustMesh(32, 32),
		Mode:        flitnet.Deterministic,
		PacketWords: 8,
		Shards:      shards,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer net.Close()
	payload := make([]network.Word, 6)
	injected := uint64(0)
	reseed := func() {
		for node := 0; node < 1024; node++ {
			for {
				if _, ok := net.TryRecv(node); !ok {
					break
				}
			}
		}
		for src := 0; src < 1024; src++ {
			if err := net.Inject(network.Packet{Src: src, Dst: 1023 - src, Data: payload}); err != nil {
				b.Fatal(err)
			}
			if err := net.Inject(network.Packet{Src: src, Dst: (src + 512) % 1024, Data: payload}); err != nil {
				b.Fatal(err)
			}
			injected += 2
		}
	}
	drained := func() bool { return net.FlitStats().LatencyCount == injected }
	reseed()
	for i := 0; i < 2000; i++ {
		if drained() {
			reseed()
		}
		net.Tick(1)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if drained() {
			b.StopTimer()
			reseed()
			b.StartTimer()
		}
		net.Tick(1)
	}
}

// benchTimelineSample is the exported-API twin of the timeline package's
// BenchmarkSamplerAdvance: every op mutates a working set of counters, a
// gauge, and a histogram, then advances a 1-cycle-window sampler — the
// worst case, closing a window per op. Steady-state sampling promises zero
// allocations; the timeline rotates via Reset (also allocation-free, it
// keeps capacity) once the retained windows reach a server-like working
// size, so a long measured pass cannot grow the arenas.
func benchTimelineSample(b *testing.B) {
	reg := obs.NewRegistry()
	counters := make([]*obs.Counter, 8)
	for i := range counters {
		counters[i] = reg.Counter(obs.Key{Name: "protocol_events_total", Node: i, Proto: "finite", Event: "finite.start"})
	}
	lvl := reg.Level(obs.Key{Name: "flitnet_inflight_worms", Node: -1, Proto: "flitnet"})
	h := reg.Histogram(obs.Key{Name: "lat", Node: 0, Proto: "finite"}, nil)
	s := timeline.New(reg, timeline.Config{Interval: 1})
	const rotateAt = 1 << 15
	cycle := uint64(0)
	loop := func(n int) {
		for i := 0; i < n; i++ {
			cycle++
			counters[i%len(counters)].Inc()
			lvl.Set(int64(i & 7))
			h.Observe(uint64(i % 300))
			s.Advance(cycle)
			if s.Windows() >= rotateAt {
				s.Reset(cycle)
			}
		}
	}
	loop(rotateAt) // grow every arena to its steady working size
	s.Reset(cycle)
	b.ReportAllocs()
	b.ResetTimer()
	loop(b.N)
}

// benchMonitorEval is the exported-API twin of the monitor package's
// TestMonitorEvalAllocs: every op mutates the counters and histogram the
// canonical rules watch, then advances a 1-cycle-window sampler with the
// SLO monitor riding the window stream — closing a window and evaluating
// every rule per op. Steady-state evaluation promises zero allocations;
// the workload is tuned so no rule fires (incident opening is the allowed
// cold path).
func benchMonitorEval(b *testing.B) {
	reg := obs.NewRegistry()
	delivered := reg.Counter(obs.Key{Name: "net_delivered_total", Node: -1, Proto: "bench"})
	injected := reg.Counter(obs.Key{Name: "net_injected_total", Node: -1, Proto: "bench"})
	h := reg.Histogram(obs.Key{Name: "transfer_latency_rounds", Node: -1, Proto: "bench"}, nil)
	s := timeline.New(reg, timeline.Config{Interval: 1})
	mon, err := monitor.New(monitor.CanonicalRules())
	if err != nil {
		b.Fatal(err)
	}
	mon.Attach(s)
	const rotateAt = 1 << 15
	cycle := uint64(0)
	loop := func(n int) {
		for i := 0; i < n; i++ {
			cycle++
			delivered.Add(3)
			injected.Add(3)
			h.Observe(cycle % 64)
			s.Advance(cycle)
			if s.Windows() >= rotateAt {
				s.Reset(cycle)
			}
		}
	}
	loop(rotateAt) // grow arenas, compile series dispatch, warm burn rings
	s.Reset(cycle)
	b.ReportAllocs()
	b.ResetTimer()
	loop(b.N)
	b.StopTimer()
	if mon.IncidentCount() != 0 {
		b.Fatalf("bench workload fired %d incidents; the measured path must stay steady-state", mon.IncidentCount())
	}
}

// noopEvent is package-level so scheduling it allocates no closure.
var noopEvent = func(sim.Time) {}

// benchKernelChurn is the exported-API twin of the sim package's
// BenchmarkKernelChurn: schedule a window of events, cancel half, fire the
// rest — the protocol-timer churn the value-based heap keeps free of
// allocation.
func benchKernelChurn(b *testing.B) {
	k := sim.NewKernel()
	const window = 64
	handles := make([]sim.Handle, 0, window)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		handles = append(handles, k.After(sim.Time(i%16)+1, noopEvent))
		if len(handles) == window {
			for j, h := range handles {
				if j%2 == 0 {
					k.Cancel(h)
				}
			}
			handles = handles[:0]
			for k.Step() {
			}
		}
	}
}
